#include "common/logging.hpp"

#include <cstdio>
#include <utility>

namespace abcast {

namespace {

std::shared_ptr<const LogSink> default_sink() {
  return std::make_shared<const LogSink>(
      [](LogLevel level, const std::string& msg) {
        std::fprintf(stderr, "[%s] %s\n", to_string(level), msg.c_str());
      });
}

}  // namespace

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() : sink_(default_sink()) {}

void Logger::set_sink(LogSink sink) {
  auto next = sink ? std::make_shared<const LogSink>(std::move(sink))
                   : default_sink();
  std::lock_guard<std::mutex> lock(mu_);
  sink_ = std::move(next);
}

void Logger::set_trace_sink(LogSink sink) {
  const bool installed = static_cast<bool>(sink);
  auto next =
      installed ? std::make_shared<const LogSink>(std::move(sink)) : nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    trace_sink_ = std::move(next);
  }
  trace_routed_.store(installed, std::memory_order_release);
}

std::shared_ptr<const LogSink> Logger::current_sink() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sink_;
}

std::shared_ptr<const LogSink> Logger::current_trace_sink() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trace_sink_;
}

void Logger::write(LogLevel level, const std::string& msg) {
  if (level == LogLevel::kTrace) {
    if (auto trace = current_trace_sink()) {
      (*trace)(level, msg);
      return;
    }
  }
  if (!enabled(level)) return;
  const auto sink = current_sink();  // copy, then invoke outside the lock
  (*sink)(level, msg);
}

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace abcast
