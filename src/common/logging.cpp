#include "common/logging.hpp"

#include <cstdio>

namespace abcast {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() {
  sink_ = [](LogLevel level, const std::string& msg) {
    std::fprintf(stderr, "[%s] %s\n", to_string(level), msg.c_str());
  };
}

void Logger::set_sink(LogSink sink) {
  if (sink) {
    sink_ = std::move(sink);
  } else {
    sink_ = [](LogLevel level, const std::string& msg) {
      std::fprintf(stderr, "[%s] %s\n", to_string(level), msg.c_str());
    };
  }
}

void Logger::write(LogLevel level, const std::string& msg) {
  if (enabled(level)) sink_(level, msg);
}

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace abcast
