// Invariant checking that throws instead of aborting, so tests can assert on
// violations and the simulator can surface them with context.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace abcast {

/// Thrown when an internal invariant is violated. Indicates a bug in this
/// library, never a recoverable runtime condition.
class InvariantViolation : public std::logic_error {
 public:
  explicit InvariantViolation(const std::string& what)
      : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantViolation(os.str());
}
}  // namespace detail

}  // namespace abcast

#define ABCAST_CHECK(expr)                                              \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::abcast::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
    }                                                                   \
  } while (false)

#define ABCAST_CHECK_MSG(expr, msg)                                     \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::abcast::detail::check_failed(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                   \
  } while (false)
