#include "common/codec.hpp"

// All of codec is header-only today; this TU anchors the target and keeps a
// place for future out-of-line helpers.
namespace abcast {}
