// Fundamental value types shared by every module.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

namespace abcast {

/// Identifies a process in the group. Processes are numbered 0..n-1.
using ProcessId = std::uint32_t;

/// Sentinel for "no process".
inline constexpr ProcessId kNoProcess = std::numeric_limits<ProcessId>::max();

/// Virtual or real time in nanoseconds since the start of the run.
using TimePoint = std::int64_t;

/// A span of time in nanoseconds.
using Duration = std::int64_t;

inline constexpr Duration nanos(std::int64_t v) { return v; }
inline constexpr Duration micros(std::int64_t v) { return v * 1'000; }
inline constexpr Duration millis(std::int64_t v) { return v * 1'000'000; }
inline constexpr Duration seconds(std::int64_t v) { return v * 1'000'000'000; }

/// Raw byte buffer used for payloads and serialized records.
using Bytes = std::vector<std::uint8_t>;

/// Unique identity of an application message: (sender, per-sender sequence).
/// The paper assumes all messages are distinct and suggests exactly this pair.
/// MsgId ordering is also the protocol's "predetermined deterministic rule"
/// for ordering messages decided within the same Consensus round.
struct MsgId {
  ProcessId sender = kNoProcess;
  std::uint64_t seq = 0;

  friend auto operator<=>(const MsgId&, const MsgId&) = default;
};

struct MsgIdHash {
  std::size_t operator()(const MsgId& id) const noexcept {
    std::uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 0x100000001b3ull;
    };
    mix(id.sender);
    mix(id.seq);
    return static_cast<std::size_t>(h);
  }
};

inline std::string to_string(const MsgId& id) {
  return "m(" + std::to_string(id.sender) + "," + std::to_string(id.seq) + ")";
}

}  // namespace abcast
