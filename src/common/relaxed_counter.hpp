// Relaxed-atomic counter slot for metrics structs.
//
// AbMetrics / ConsensusMetrics fields are incremented on the owning host's
// event-loop thread while MetricsRegistry::snapshot() dereferences the bound
// slot from whatever thread asked for the snapshot (a test, a bench, an
// export endpoint). A plain uint64_t makes that a data race under the rt/udp
// runtimes; RelaxedU64 keeps the hot path a single relaxed fetch_add (same
// cost as the plain increment on x86/ARM) while making the cross-thread read
// well-defined.
//
// Per-field relaxed ordering is exactly the guarantee metrics want: each
// counter is individually coherent, and a snapshot is a loose point-in-time
// view, not a transactionally consistent cut across counters.
#pragma once

#include <atomic>
#include <cstdint>

namespace abcast {

class RelaxedU64 {
 public:
  constexpr RelaxedU64(std::uint64_t v = 0) noexcept : v_(v) {}  // NOLINT(google-explicit-constructor)

  // Copyable so metrics structs stay aggregate-like (snapshots/diffs copy
  // them); a copy reads the source with relaxed ordering.
  RelaxedU64(const RelaxedU64& o) noexcept : v_(o.load()) {}
  RelaxedU64& operator=(const RelaxedU64& o) noexcept {
    v_.store(o.load(), std::memory_order_relaxed);
    return *this;
  }

  RelaxedU64& operator=(std::uint64_t v) noexcept {
    v_.store(v, std::memory_order_relaxed);
    return *this;
  }
  RelaxedU64& operator+=(std::uint64_t by) noexcept {
    v_.fetch_add(by, std::memory_order_relaxed);
    return *this;
  }

  operator std::uint64_t() const noexcept { return load(); }  // NOLINT(google-explicit-constructor)
  std::uint64_t load() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_;
};

}  // namespace abcast
