// Bounds-checked binary serialization.
//
// Every wire message and every stable-storage record in this library is
// encoded with BufWriter and decoded with BufReader. Integers are written
// little-endian at fixed width; variable-length data is length-prefixed.
// BufReader throws CodecError on any out-of-bounds or malformed read, so a
// truncated or corrupted buffer can never cause undefined behaviour.
#pragma once

#include <cstdint>
#include <cstring>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace abcast {

/// Thrown by BufReader on truncated or malformed input.
class CodecError : public std::runtime_error {
 public:
  explicit CodecError(const std::string& what) : std::runtime_error(what) {}
};

/// Bounds-checked narrowing for u32 length/count fields. Hand-rolled
/// incremental encoders (anything not going through BufWriter::vec/map/
/// bytes/str) must use this instead of a bare static_cast so an oversized
/// container throws CodecError rather than silently truncating the prefix
/// and desynchronizing the decoder.
inline std::uint32_t checked_u32(std::size_t n) {
  if (n > 0xFFFFFFFFull) throw CodecError("length exceeds u32");
  return static_cast<std::uint32_t>(n);
}

/// Appends fixed-width little-endian primitives and length-prefixed blobs to
/// an owned byte buffer.
class BufWriter {
 public:
  BufWriter() = default;

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { put_le(v); }
  void u32(std::uint32_t v) { put_le(v); }
  void u64(std::uint64_t v) { put_le(v); }
  void i64(std::int64_t v) { put_le(static_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }

  void bytes(const Bytes& b) {
    u32(checked_len(b.size()));
    buf_.insert(buf_.end(), b.begin(), b.end());
  }

  void str(std::string_view s) {
    u32(checked_len(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  void msg_id(const MsgId& id) {
    u32(id.sender);
    u64(id.seq);
  }

  /// Writes a length prefix followed by per-element encodings.
  template <typename T, typename Fn>
  void vec(const std::vector<T>& v, Fn&& encode_one) {
    u32(checked_len(v.size()));
    for (const auto& e : v) encode_one(*this, e);
  }

  template <typename K, typename V, typename Fn>
  void map(const std::map<K, V>& m, Fn&& encode_one) {
    u32(checked_len(m.size()));
    for (const auto& [k, v] : m) encode_one(*this, k, v);
  }

  const Bytes& data() const& { return buf_; }
  Bytes take() && { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  template <typename T>
  void put_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  static std::uint32_t checked_len(std::size_t n) { return checked_u32(n); }

  Bytes buf_;
};

/// Reads the encodings produced by BufWriter; throws CodecError on any
/// truncation or overrun. Non-owning: the source buffer must outlive it.
///
/// Allocation-bomb resistance: every length prefix is validated against the
/// bytes actually remaining BEFORE any reservation, scaled by the smallest
/// possible element encoding (count()), nested containers are capped at
/// kMaxDecodeDepth, and the sum of all claimed lengths across one decode is
/// budgeted at kClaimFactor x the buffer size. A legitimate encoding claims
/// each payload byte once per nesting level, so honest messages stay far
/// under the budget; a hostile prefix can never make allocation exceed a
/// small multiple of the input it paid for.
class BufReader {
 public:
  explicit BufReader(const Bytes& b) : data_(b.data()), size_(b.size()) {}
  BufReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  /// Deepest legal container nesting during one decode. Real messages nest
  /// three or four levels; anything deeper is a malformed or hostile input.
  static constexpr std::size_t kMaxDecodeDepth = 32;
  /// Total claimed length prefixes may not exceed this multiple of the
  /// buffer size (each nesting level may legitimately re-claim the bytes
  /// under it, so the factor tracks kMaxDecodeDepth's practical use).
  static constexpr std::size_t kClaimFactor = 8;

  std::uint8_t u8() { return get<std::uint8_t>(); }
  std::uint16_t u16() { return get<std::uint16_t>(); }
  std::uint32_t u32() { return get<std::uint32_t>(); }
  std::uint64_t u64() { return get<std::uint64_t>(); }
  std::int64_t i64() { return static_cast<std::int64_t>(get<std::uint64_t>()); }

  bool boolean() {
    const auto v = u8();
    if (v > 1) throw CodecError("malformed bool");
    return v == 1;
  }

  Bytes bytes() {
    const auto n = length();
    Bytes out(data_ + pos_, data_ + pos_ + n);
    pos_ += n;
    return out;
  }

  std::string str() {
    const auto n = length();
    std::string out(reinterpret_cast<const char*>(data_) + pos_, n);
    pos_ += n;
    return out;
  }

  MsgId msg_id() {
    MsgId id;
    id.sender = u32();
    id.seq = u64();
    return id;
  }

  /// Reads a u32 element count and validates it against the bytes actually
  /// remaining before the caller allocates anything: a count is only
  /// plausible if `count * min_elem_bytes` elements could still follow.
  /// Decoders with a known fixed-width element pass its size; structured
  /// decoders pass the smallest possible element encoding (>= 1).
  std::uint32_t count(std::size_t min_elem_bytes) {
    const auto n = u32();
    if (min_elem_bytes < 1) min_elem_bytes = 1;
    if (n > remaining() / min_elem_bytes) {
      throw CodecError("container count exceeds buffer");
    }
    claim(static_cast<std::size_t>(n) * min_elem_bytes);
    return n;
  }

  template <typename T, typename Fn>
  std::vector<T> vec(Fn&& decode_one) {
    // Element encodings are at least one byte; count() rejects absurd
    // counts before allocating, so corrupted input cannot trigger a huge
    // allocation.
    const auto n = count(1);
    const DepthGuard depth(*this);
    std::vector<T> out;
    out.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) out.push_back(decode_one(*this));
    return out;
  }

  template <typename K, typename V, typename Fn>
  std::map<K, V> map(Fn&& decode_one) {
    const auto n = count(1);
    const DepthGuard depth(*this);
    std::map<K, V> out;
    for (std::uint32_t i = 0; i < n; ++i) {
      auto [k, v] = decode_one(*this);
      out.emplace(std::move(k), std::move(v));
    }
    return out;
  }

  std::size_t remaining() const { return size_ - pos_; }
  bool done() const { return pos_ == size_; }

  /// Asserts the whole buffer has been consumed; call at the end of a
  /// structured decode to catch trailing garbage.
  void expect_done() const {
    if (!done()) throw CodecError("trailing bytes after decode");
  }

 private:
  /// Scopes one container level: vec/map bump the nesting depth for the
  /// duration of their element loop so a recursive (or corrupted) encoding
  /// cannot recurse without bound.
  class DepthGuard {
   public:
    explicit DepthGuard(BufReader& r) : r_(r) {
      if (r_.depth_ >= kMaxDecodeDepth) {
        throw CodecError("container nesting too deep");
      }
      ++r_.depth_;
    }
    ~DepthGuard() { --r_.depth_; }
    DepthGuard(const DepthGuard&) = delete;
    DepthGuard& operator=(const DepthGuard&) = delete;

   private:
    BufReader& r_;
  };

  /// Accounts a validated length claim against the whole-decode budget.
  void claim(std::size_t n) {
    claimed_ += n;
    if (claimed_ > kClaimFactor * size_ + 64) {
      throw CodecError("claimed lengths exceed decode budget");
    }
  }

  template <typename T>
  T get() {
    if (remaining() < sizeof(T)) throw CodecError("read past end of buffer");
    T v{};
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<T>(data_[pos_ + i]) << (8 * i)));
    }
    pos_ += sizeof(T);
    return v;
  }

  std::size_t length() {
    const auto n = u32();
    if (n > remaining()) throw CodecError("blob length exceeds buffer");
    claim(n);
    return n;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
  std::size_t claimed_ = 0;
};

/// Convenience: encode a message struct that exposes encode(BufWriter&).
template <typename T>
Bytes encode_to_bytes(const T& msg) {
  BufWriter w;
  msg.encode(w);
  return std::move(w).take();
}

/// Convenience: decode a message struct that exposes a static
/// decode(BufReader&) factory, verifying full consumption.
template <typename T>
T decode_from_bytes(const Bytes& b) {
  BufReader r(b);
  T msg = T::decode(r);
  r.expect_done();
  return msg;
}

}  // namespace abcast
