// Deterministic random number generation.
//
// Every source of randomness in the simulator flows through one Rng seeded
// from the run configuration, so a (seed, config) pair fully determines a
// run. Protocol code itself never needs randomness.
#pragma once

#include <cstdint>
#include <random>

#include "common/check.hpp"

namespace abcast {

/// Thin wrapper over a 64-bit Mersenne Twister with convenience samplers.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    ABCAST_CHECK(lo <= hi);
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform real in [0, 1).
  double uniform01() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform01() < p;
  }

  /// Exponentially distributed duration with the given mean (> 0). Used for
  /// Poisson arrival processes and crash/recovery schedules.
  std::int64_t exponential(std::int64_t mean) {
    ABCAST_CHECK(mean > 0);
    std::exponential_distribution<double> d(1.0 / static_cast<double>(mean));
    const double v = d(engine_);
    // Clamp to at least 1ns so timers always make progress.
    return v < 1.0 ? 1 : static_cast<std::int64_t>(v);
  }

  /// Derives an independent child generator; used to give each host its own
  /// stream so adding randomness in one place does not perturb others.
  Rng fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace abcast
