// CRC-32 (IEEE 802.3 polynomial) for stable-storage record integrity.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/types.hpp"

namespace abcast {

/// Computes the CRC-32 of a byte range (reflected, IEEE polynomial, the same
/// CRC used by zlib/gzip). Used to detect torn or corrupted storage records.
std::uint32_t crc32(const std::uint8_t* data, std::size_t size);

inline std::uint32_t crc32(const Bytes& b) { return crc32(b.data(), b.size()); }

}  // namespace abcast
