// Minimal leveled logging with a pluggable sink.
//
// The simulator installs a sink that prefixes virtual time and process id;
// tests install a capturing sink; benches leave logging off (the default
// level is kWarn, and formatting work is skipped for disabled levels).
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace abcast {

enum class LogLevel { kTrace, kDebug, kInfo, kWarn, kError, kOff };

using LogSink = std::function<void(LogLevel, const std::string&)>;

/// Global logger configuration. Not thread-safe to reconfigure while logging
/// concurrently; configure once at startup (rt runtime logs under its lock).
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }
  bool enabled(LogLevel level) const { return level >= level_ && level_ != LogLevel::kOff; }

  /// Replaces the sink; passing nullptr restores the default stderr sink.
  void set_sink(LogSink sink);

  void write(LogLevel level, const std::string& msg);

 private:
  Logger();
  LogLevel level_ = LogLevel::kWarn;
  LogSink sink_;
};

const char* to_string(LogLevel level);

}  // namespace abcast

// Usage: ABCAST_LOG(kDebug, "round " << k << " decided");
#define ABCAST_LOG(level_name, expr)                                       \
  do {                                                                     \
    auto& logger_ = ::abcast::Logger::instance();                          \
    if (logger_.enabled(::abcast::LogLevel::level_name)) {                 \
      std::ostringstream os_;                                              \
      os_ << expr;                                                         \
      logger_.write(::abcast::LogLevel::level_name, os_.str());            \
    }                                                                      \
  } while (false)
