// Minimal leveled logging with a pluggable sink.
//
// The simulator installs a sink that prefixes virtual time and process id;
// tests install a capturing sink; benches leave logging off (the default
// level is kWarn, and formatting work is skipped for disabled levels).
//
// Thread-safe to reconfigure while the rt runtime logs concurrently: the
// level is atomic, and sinks are swapped under a mutex via shared_ptr so a
// writer that raced a swap finishes on the old sink instead of a dangling
// one. Sinks are invoked outside the lock — a sink may itself log or
// reconfigure without deadlocking.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>

namespace abcast {

enum class LogLevel { kTrace, kDebug, kInfo, kWarn, kError, kOff };

using LogSink = std::function<void(LogLevel, const std::string&)>;

/// Global logger configuration.
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }
  LogLevel level() const { return level_.load(std::memory_order_relaxed); }

  bool enabled(LogLevel level) const {
    if (level == LogLevel::kTrace && trace_routed()) return true;
    const LogLevel threshold = this->level();
    return level >= threshold && threshold != LogLevel::kOff;
  }

  /// Replaces the sink; passing nullptr restores the default stderr sink.
  void set_sink(LogSink sink);

  /// Installs a dedicated consumer for kTrace messages (used by
  /// obs::route_trace_logs to feed a TraceRecorder). While installed, kTrace
  /// is enabled regardless of the level threshold and kTrace messages go to
  /// this sink INSTEAD of the regular one. nullptr uninstalls.
  void set_trace_sink(LogSink sink);
  bool trace_routed() const {
    return trace_routed_.load(std::memory_order_acquire);
  }

  void write(LogLevel level, const std::string& msg);

 private:
  Logger();

  std::shared_ptr<const LogSink> current_sink() const;
  std::shared_ptr<const LogSink> current_trace_sink() const;

  std::atomic<LogLevel> level_{LogLevel::kWarn};
  std::atomic<bool> trace_routed_{false};
  mutable std::mutex mu_;
  std::shared_ptr<const LogSink> sink_;
  std::shared_ptr<const LogSink> trace_sink_;
};

const char* to_string(LogLevel level);

}  // namespace abcast

// Usage: ABCAST_LOG(kDebug, "round " << k << " decided");
#define ABCAST_LOG(level_name, expr)                                       \
  do {                                                                     \
    auto& logger_ = ::abcast::Logger::instance();                          \
    if (logger_.enabled(::abcast::LogLevel::level_name)) {                 \
      std::ostringstream os_;                                              \
      os_ << expr;                                                         \
      logger_.write(::abcast::LogLevel::level_name, os_.str());            \
    }                                                                      \
  } while (false)
