// Offline checker for merged per-node protocol traces.
//
// Audits the paper's Atomic Broadcast properties (§3) on the artifacts of
// any run — including the rt/UDP cluster, where the in-process oracle cannot
// see inside processes:
//
//   * Integrity      — no node delivers the same message twice (within an
//                      incarnation; recovery replay legitimately re-delivers
//                      at the SAME position) nor at two different positions.
//   * Total Order    — the global position -> message mapping is a function,
//                      and each message occupies one global position.
//   * Validity       — a broadcast message is eventually delivered; if the
//                      broadcaster may have crashed before the message
//                      reached anyone this degrades to a warning (the paper
//                      only obliges processes that stay up).
//   * Termination    — under require_quiesced, every node that is up at the
//                      end of the trace has reached the global maximum
//                      position.
//   * LogMinimality  — the basic protocol (Fig. 2) performs no AB-layer log
//                      writes, and every consensus instance logs its
//                      proposal at most once per incarnation.
//
// Position continuity is also enforced: within an incarnation, delivery
// positions advance by exactly one, except for a single jump immediately
// after recovery replay or a state-transfer adoption.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "obs/trace.hpp"

namespace abcast::obs {

struct CheckOptions {
  /// Basic protocol (Fig. 2): any "ab/" log write is a violation.
  bool basic_protocol = false;
  /// The trace ends in a quiesced state (all nodes up, nothing in flight):
  /// enables the strict Termination and Validity checks.
  bool require_quiesced = false;
  /// When non-zero: every state-transfer chunk send (kStateTransfer with
  /// detail send_chunk/send_snap, whose arg is the wire payload size) must
  /// stay at or below this many bytes, or a "StateBound" violation is
  /// reported. Set it to the run's Options::max_state_bytes to prove no
  /// catch-up datagram could have been dropped by the transport's frame
  /// limit.
  std::size_t max_state_chunk_bytes = 0;
};

struct Violation {
  std::string property;  // "Integrity", "TotalOrder", ...
  ProcessId node = kNoProcess;
  std::uint64_t seq = 0;  // seq of the offending event on that node
  std::string message;
};

std::string to_string(const Violation& v);

struct CheckStats {
  std::size_t nodes = 0;
  std::size_t events = 0;
  std::size_t broadcasts = 0;
  std::size_t delivers = 0;
  std::size_t unique_delivered = 0;
  std::size_t decides = 0;
  std::size_t log_writes = 0;
  std::uint64_t max_position = 0;  // delivered positions span [0, max_position)
};

struct CheckReport {
  std::vector<Violation> violations;
  std::vector<std::string> warnings;
  CheckStats stats;

  bool ok() const { return violations.empty(); }
};

/// Checks a merged trace (events from any number of nodes, in any order;
/// per-node order is recovered from the recorder-stamped seq).
CheckReport check_trace(const std::vector<TraceEvent>& events,
                        const CheckOptions& options = {});

/// Multi-group variant for sharded runs (DESIGN.md §13): splits the merged
/// trace into per-group sub-traces by the event's group tag (tag g+1 marks
/// group g; tag 0 is a host event), replays host lifecycle events
/// (crash/recover) into every group, routes host-recorded log writes by
/// their "g<gid>/" storage-scope prefix (stripped before matching), and
/// runs check_trace on each group — every group must independently satisfy
/// the paper's properties. Diagnostics are prefixed with "g<gid>".
///
/// On top, a CrossShard rule audits two-group atomic ops (kCrossShard
/// events; arg = pair id, k = partner group, detail = hold|apply):
///   * every apply at a (node, group) was preceded by a hold of the same
///     pair there (effects only at the merge point);
///   * all events of one pair agree on its owner-group set;
///   * under require_quiesced, a pair with any hold or apply anywhere has
///     holds AND applies in BOTH owning groups — both effects became
///     visible, or (had every holder crashed unrecovered) neither would.
CheckReport check_sharded_trace(const std::vector<TraceEvent>& events,
                                std::uint32_t n_groups,
                                const CheckOptions& options = {});

}  // namespace abcast::obs
