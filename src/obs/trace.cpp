#include "obs/trace.hpp"

#include <array>
#include <cctype>
#include <istream>
#include <limits>
#include <ostream>
#include <utility>

#include "common/codec.hpp"
#include "common/logging.hpp"

namespace abcast::obs {

namespace {

struct KindName {
  EventKind kind;
  const char* name;
};

constexpr std::array<KindName, 14> kKindNames = {{
    {EventKind::kBroadcast, "broadcast"},
    {EventKind::kGossipSend, "gossip_send"},
    {EventKind::kGossipRecv, "gossip_recv"},
    {EventKind::kPropose, "propose"},
    {EventKind::kLogWrite, "log_write"},
    {EventKind::kDecide, "decide"},
    {EventKind::kDeliver, "deliver"},
    {EventKind::kCheckpoint, "checkpoint"},
    {EventKind::kStateTransfer, "state_transfer"},
    {EventKind::kCrash, "crash"},
    {EventKind::kRecoverBegin, "recover_begin"},
    {EventKind::kRecoverEnd, "recover_end"},
    {EventKind::kLogLine, "log_line"},
    {EventKind::kCrossShard, "cross_shard"},
}};

void append_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(static_cast<unsigned char>(c) >> 4) & 0xF];
          out += hex[static_cast<unsigned char>(c) & 0xF];
        } else {
          out += c;
        }
        break;
    }
  }
}

}  // namespace

const char* to_string(EventKind kind) {
  for (const auto& kn : kKindNames) {
    if (kn.kind == kind) return kn.name;
  }
  return "?";
}

bool event_kind_from_string(std::string_view s, EventKind& out) {
  for (const auto& kn : kKindNames) {
    if (s == kn.name) {
      out = kn.kind;
      return true;
    }
  }
  return false;
}

TraceRecorder::TraceRecorder(ProcessId node, std::size_t capacity)
    : node_(node), capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_ < 1024 ? capacity_ : 1024);
}

void TraceRecorder::set_clock(std::function<TimePoint()> clock) {
  std::lock_guard<std::mutex> lock(mu_);
  clock_ = std::move(clock);
}

void TraceRecorder::record(EventKind kind, TimePoint t, std::uint64_t k,
                           MsgId msg, std::uint64_t arg, std::string detail) {
  record_grouped(0, kind, t, k, msg, arg, std::move(detail));
}

void TraceRecorder::record_grouped(std::uint32_t group, EventKind kind,
                                   TimePoint t, std::uint64_t k, MsgId msg,
                                   std::uint64_t arg, std::string detail) {
  TraceEvent e;
  e.kind = kind;
  e.node = node_;
  e.t = t;
  e.k = k;
  e.msg = msg;
  e.arg = arg;
  e.group = group;
  e.detail = std::move(detail);

  std::lock_guard<std::mutex> lock(mu_);
  e.seq = total_++;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(e));
  } else {
    ring_[head_] = std::move(e);
    head_ = (head_ + 1) % capacity_;
  }
}

void TraceRecorder::log_line(std::string line) {
  TimePoint t = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (clock_) t = clock_();
  }
  record(EventKind::kLogLine, t, 0, MsgId{}, 0, std::move(line));
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::uint64_t TraceRecorder::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

std::uint64_t TraceRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_ - ring_.size();
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  head_ = 0;
  total_ = 0;
}

void TraceRecorder::write_jsonl(std::ostream& os) const {
  for (const auto& e : events()) os << event_to_json(e) << '\n';
}

std::string event_to_json(const TraceEvent& e) {
  std::string out = "{\"node\":" + std::to_string(e.node);
  out += ",\"seq\":" + std::to_string(e.seq);
  out += ",\"t\":" + std::to_string(e.t);
  out += ",\"kind\":\"";
  out += to_string(e.kind);
  out += "\",\"k\":" + std::to_string(e.k);
  out += ",\"arg\":" + std::to_string(e.arg);
  if (e.group != 0) out += ",\"group\":" + std::to_string(e.group);
  if (e.has_msg()) {
    out += ",\"msg\":\"" + std::to_string(e.msg.sender) + ":" +
           std::to_string(e.msg.seq) + "\"";
  }
  if (!e.detail.empty()) {
    out += ",\"detail\":\"";
    append_escaped(out, e.detail);
    out += "\"";
  }
  out += "}";
  return out;
}

namespace {

// Minimal parser for the flat one-line objects event_to_json emits. Not a
// general JSON parser: values are unsigned/signed integers or strings, no
// nesting, no literals.
class LineParser {
 public:
  LineParser(std::string_view line, std::size_t lineno)
      : s_(line), lineno_(lineno) {}

  TraceEvent parse() {
    TraceEvent e;
    bool saw_kind = false;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      fail("empty object");
    }
    while (true) {
      const std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      if (key == "node") {
        e.node = static_cast<ProcessId>(parse_uint());
      } else if (key == "seq") {
        e.seq = parse_uint();
      } else if (key == "t") {
        e.t = parse_int();
      } else if (key == "k") {
        e.k = parse_uint();
      } else if (key == "arg") {
        e.arg = parse_uint();
      } else if (key == "group") {
        e.group = static_cast<std::uint32_t>(parse_uint());
      } else if (key == "kind") {
        const std::string name = parse_string();
        if (!event_kind_from_string(name, e.kind)) {
          fail("unknown event kind '" + name + "'");
        }
        saw_kind = true;
      } else if (key == "msg") {
        const std::string v = parse_string();
        const auto colon = v.find(':');
        if (colon == std::string::npos) fail("malformed msg id '" + v + "'");
        const std::uint64_t sender = digits_to_u64(v.substr(0, colon));
        if (sender > std::numeric_limits<ProcessId>::max()) {
          fail("msg sender out of range in '" + v + "'");
        }
        e.msg.sender = static_cast<ProcessId>(sender);
        e.msg.seq = digits_to_u64(v.substr(colon + 1));
      } else if (key == "detail") {
        e.detail = parse_string();
      } else {
        // Unknown key: skip its value so the format can grow.
        if (peek() == '"') {
          parse_string();
        } else {
          parse_int();
        }
      }
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        skip_ws();
        continue;
      }
      expect('}');
      break;
    }
    if (!saw_kind) fail("missing \"kind\"");
    return e;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw CodecError("trace line " + std::to_string(lineno_) + ": " + why);
  }

  char peek() const {
    if (pos_ >= s_.size()) fail("unexpected end of line");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (c == '\\') {
        const char esc = peek();
        ++pos_;
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
            unsigned v = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = s_[pos_++];
              v <<= 4;
              if (h >= '0' && h <= '9') {
                v |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                v |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                v |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                fail("bad \\u escape");
              }
            }
            if (v > 0xFF) fail("\\u escape beyond latin-1 unsupported");
            out += static_cast<char>(v);
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
  }

  std::uint64_t parse_uint() {
    const std::int64_t v = parse_int();
    if (v < 0) fail("expected non-negative integer");
    return static_cast<std::uint64_t>(v);
  }

  // All-digits string -> u64 with overflow rejection (the msg-id halves;
  // external traces put arbitrary text here, so std::stoull's exceptions
  // would escape the CodecError diagnostic contract).
  std::uint64_t digits_to_u64(const std::string& digits) const {
    if (digits.empty()) fail("empty number in msg id");
    std::uint64_t v = 0;
    for (const char c : digits) {
      if (c < '0' || c > '9') fail("malformed msg id part '" + digits + "'");
      const auto d = static_cast<std::uint64_t>(c - '0');
      if (v > (std::numeric_limits<std::uint64_t>::max() - d) / 10) {
        fail("msg id part out of range '" + digits + "'");
      }
      v = v * 10 + d;
    }
    return v;
  }

  std::int64_t parse_int() {
    bool neg = false;
    if (peek() == '-') {
      neg = true;
      ++pos_;
    }
    if (!std::isdigit(static_cast<unsigned char>(peek()))) {
      fail("expected digit");
    }
    // Accumulate as u64 with an explicit overflow check, then bound by the
    // signed range: magnitude <= 2^63 for negatives (INT64_MIN), <= 2^63-1
    // for positives. The old unchecked accumulate-and-negate both wrapped
    // silently and hit signed-negation UB on -2^63.
    std::uint64_t v = 0;
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      const auto d = static_cast<std::uint64_t>(s_[pos_] - '0');
      if (v > (std::numeric_limits<std::uint64_t>::max() - d) / 10) {
        fail("integer out of range");
      }
      v = v * 10 + d;
      ++pos_;
    }
    if (neg) {
      constexpr std::uint64_t kMinMag = 1ull << 63;
      if (v > kMinMag) fail("integer out of range");
      if (v == kMinMag) return std::numeric_limits<std::int64_t>::min();
      return -static_cast<std::int64_t>(v);
    }
    if (v > static_cast<std::uint64_t>(
                std::numeric_limits<std::int64_t>::max())) {
      fail("integer out of range");
    }
    return static_cast<std::int64_t>(v);
  }

  std::string_view s_;
  std::size_t lineno_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<TraceEvent> parse_trace_jsonl(std::istream& is) {
  std::vector<TraceEvent> out;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    std::size_t first = 0;
    while (first < line.size() &&
           std::isspace(static_cast<unsigned char>(line[first]))) {
      ++first;
    }
    if (first == line.size()) continue;
    out.push_back(LineParser(line, lineno).parse());
  }
  return out;
}

void route_trace_logs(TraceRecorder* rec) {
  auto& logger = Logger::instance();
  if (rec == nullptr) {
    logger.set_trace_sink(nullptr);
    return;
  }
  logger.set_trace_sink(
      [rec](LogLevel, const std::string& msg) { rec->log_line(msg); });
}

}  // namespace abcast::obs
