#include "obs/metrics.hpp"

#include <algorithm>
#include <ostream>

namespace abcast::obs {

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

std::int64_t Snapshot::value(const std::string& name,
                             const Labels& labels) const {
  for (const auto& e : entries_) {
    if (e.type != MetricType::kHistogram && e.name == name &&
        e.labels == labels) {
      return e.value;
    }
  }
  return 0;
}

std::int64_t Snapshot::sum_by_name(const std::string& name) const {
  std::int64_t total = 0;
  for (const auto& e : entries_) {
    if (e.type != MetricType::kHistogram && e.name == name) total += e.value;
  }
  return total;
}

Snapshot Snapshot::diff(const Snapshot& base) const {
  Snapshot out;
  for (const auto& e : entries_) {
    const SnapshotEntry* b = nullptr;
    for (const auto& be : base.entries_) {
      if (be.type == e.type && be.name == e.name && be.labels == e.labels) {
        b = &be;
        break;
      }
    }
    SnapshotEntry d = e;
    if (b != nullptr) {
      switch (e.type) {
        case MetricType::kCounter:
          d.value = e.value - b->value;
          break;
        case MetricType::kGauge:
          break;  // gauges are instantaneous; keep current value
        case MetricType::kHistogram: {
          d.count = e.count - b->count;
          d.sum = e.sum - b->sum;
          std::vector<std::pair<std::size_t, std::uint64_t>> buckets;
          for (const auto& [idx, cnt] : e.buckets) {
            std::uint64_t prev = 0;
            for (const auto& [bidx, bcnt] : b->buckets) {
              if (bidx == idx) {
                prev = bcnt;
                break;
              }
            }
            if (cnt > prev) buckets.emplace_back(idx, cnt - prev);
          }
          d.buckets = std::move(buckets);
          break;
        }
      }
    }
    out.entries_.push_back(std::move(d));
  }
  return out;
}

namespace {

void write_labels(std::ostream& os, const Labels& labels) {
  if (labels.empty()) return;
  os << '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) os << ',';
    first = false;
    os << k << "=\"" << v << '"';
  }
  os << '}';
}

void write_json_name(std::ostream& os, const SnapshotEntry& e) {
  os << '"' << e.name;
  for (const auto& [k, v] : e.labels) os << '|' << k << '=' << v;
  os << '"';
}

}  // namespace

void Snapshot::write_text(std::ostream& os) const {
  for (const auto& e : entries_) {
    os << e.name;
    write_labels(os, e.labels);
    if (e.type == MetricType::kHistogram) {
      os << " count=" << e.count << " sum=" << e.sum;
      for (const auto& [idx, cnt] : e.buckets) {
        os << " le" << Histogram::bucket_bound(idx) << '=' << cnt;
      }
      os << '\n';
    } else {
      os << ' ' << e.value << '\n';
    }
  }
}

void Snapshot::write_json(std::ostream& os) const {
  os << '{';
  bool first = true;
  for (const auto& e : entries_) {
    if (!first) os << ',';
    first = false;
    write_json_name(os, e);
    os << ':';
    if (e.type == MetricType::kHistogram) {
      os << "{\"count\":" << e.count << ",\"sum\":" << e.sum << ",\"buckets\":{";
      bool bfirst = true;
      for (const auto& [idx, cnt] : e.buckets) {
        if (!bfirst) os << ',';
        bfirst = false;
        os << '"' << Histogram::bucket_bound(idx) << "\":" << cnt;
      }
      os << "}}";
    } else {
      os << e.value;
    }
  }
  os << '}';
}

MetricsGroup::MetricsGroup(MetricsGroup&& other) noexcept
    : registry_(other.registry_), group_id_(other.group_id_) {
  other.registry_ = nullptr;
  other.group_id_ = 0;
}

MetricsGroup& MetricsGroup::operator=(MetricsGroup&& other) noexcept {
  if (this != &other) {
    reset();
    registry_ = other.registry_;
    group_id_ = other.group_id_;
    other.registry_ = nullptr;
    other.group_id_ = 0;
  }
  return *this;
}

MetricsGroup::~MetricsGroup() { reset(); }

void MetricsGroup::bind(std::string name, Labels labels,
                        const RelaxedU64* slot) {
  if (registry_ == nullptr) return;
  registry_->add_binding(group_id_,
                         {std::move(name), std::move(labels)}, slot);
}

void MetricsGroup::reset() {
  if (registry_ != nullptr) {
    registry_->drop_group(group_id_);
    registry_ = nullptr;
    group_id_ = 0;
  }
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[Key{name, labels}];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[Key{name, labels}];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[Key{name, labels}];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsGroup MetricsRegistry::group() {
  MetricsGroup g(this);
  std::lock_guard<std::mutex> lock(mu_);
  g.group_id_ = next_group_id_++;
  return g;
}

void MetricsRegistry::add_binding(std::uint64_t group_id, Key key,
                                  const RelaxedU64* slot) {
  std::lock_guard<std::mutex> lock(mu_);
  bindings_.push_back(Binding{std::move(key), slot, group_id});
}

void MetricsRegistry::drop_group(std::uint64_t group_id) {
  std::lock_guard<std::mutex> lock(mu_);
  std::erase_if(bindings_,
                [group_id](const Binding& b) { return b.group_id == group_id; });
}

Snapshot MetricsRegistry::snapshot() const {
  Snapshot out;
  std::lock_guard<std::mutex> lock(mu_);
  // Bound slots under the same (name, labels) sum together: several
  // incarnations of the same logical metric may be live at once (e.g. two
  // sim hosts binding with identical labels would be a caller bug, but a
  // re-bound slot after recovery plus a stale not-yet-dropped one is not).
  std::map<Key, std::uint64_t> bound;
  for (const auto& b : bindings_) bound[b.key] += b.slot->load();

  for (const auto& [key, value] : bound) {
    SnapshotEntry e;
    e.name = key.name;
    e.labels = key.labels;
    e.type = MetricType::kCounter;
    e.value = static_cast<std::int64_t>(value);
    out.entries_.push_back(std::move(e));
  }
  for (const auto& [key, c] : counters_) {
    SnapshotEntry e;
    e.name = key.name;
    e.labels = key.labels;
    e.type = MetricType::kCounter;
    e.value = static_cast<std::int64_t>(c->value());
    out.entries_.push_back(std::move(e));
  }
  for (const auto& [key, g] : gauges_) {
    SnapshotEntry e;
    e.name = key.name;
    e.labels = key.labels;
    e.type = MetricType::kGauge;
    e.value = g->value();
    out.entries_.push_back(std::move(e));
  }
  for (const auto& [key, h] : histograms_) {
    SnapshotEntry e;
    e.name = key.name;
    e.labels = key.labels;
    e.type = MetricType::kHistogram;
    e.count = h->count();
    e.sum = h->sum();
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      const auto cnt = h->bucket_count(b);
      if (cnt != 0) e.buckets.emplace_back(b, cnt);
    }
    out.entries_.push_back(std::move(e));
  }
  std::sort(out.entries_.begin(), out.entries_.end(),
            [](const SnapshotEntry& a, const SnapshotEntry& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.labels < b.labels;
            });
  return out;
}

}  // namespace abcast::obs
