#include "obs/windowed.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace abcast::obs {

Duration latency_percentile(std::vector<Duration> samples, double q) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  if (q <= 0.0) return samples.front();
  if (q >= 1.0) return samples.back();
  // Nearest-rank: the smallest sample with at least ceil(q*n) samples <= it.
  const auto n = samples.size();
  auto rank = static_cast<std::size_t>(
      static_cast<double>(n) * q + 0.999999);  // ceil without <cmath>
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  return samples[rank - 1];
}

namespace {

WindowedLatency::Window summarize(TimePoint start, TimePoint end,
                                  std::vector<Duration> samples) {
  WindowedLatency::Window w;
  w.start = start;
  w.end = end;
  w.count = samples.size();
  if (samples.empty()) return w;
  w.max = *std::max_element(samples.begin(), samples.end());
  w.p50 = latency_percentile(samples, 0.50);
  w.p99 = latency_percentile(samples, 0.99);
  w.p999 = latency_percentile(std::move(samples), 0.999);
  return w;
}

}  // namespace

WindowedLatency::WindowedLatency(TimePoint origin, Duration width)
    : origin_(origin), width_(width) {
  ABCAST_CHECK_MSG(width > 0, "window width must be positive");
}

void WindowedLatency::record(TimePoint at, Duration latency) {
  const TimePoint rel = at - origin_;
  // floor division (samples before the origin land in negative windows).
  std::int64_t idx = rel / width_;
  if (rel < 0 && rel % width_ != 0) idx -= 1;
  buckets_[idx].push_back(latency);
  total_ += 1;
}

std::vector<WindowedLatency::Window> WindowedLatency::windows() const {
  std::vector<Window> out;
  out.reserve(buckets_.size());
  for (const auto& [idx, samples] : buckets_) {
    out.push_back(summarize(origin_ + idx * width_,
                            origin_ + (idx + 1) * width_, samples));
  }
  return out;
}

WindowedLatency::Window WindowedLatency::overall() const {
  std::vector<Duration> all;
  all.reserve(total_);
  TimePoint start = 0;
  TimePoint end = 0;
  if (!buckets_.empty()) {
    start = origin_ + buckets_.begin()->first * width_;
    end = origin_ + (buckets_.rbegin()->first + 1) * width_;
  }
  for (const auto& [idx, samples] : buckets_) {
    (void)idx;
    all.insert(all.end(), samples.begin(), samples.end());
  }
  return summarize(start, end, std::move(all));
}

}  // namespace abcast::obs
