// Windowed latency quantiles for open-loop SLO accounting.
//
// End-of-run percentiles hide exactly what an adversarial scenario creates:
// a ten-second brownout averaged away by minutes of healthy traffic. This
// accumulator buckets samples into fixed wall-clock (virtual-time) windows
// and reports p50/p99/p999 *per window*, so a stall shows up in the window
// where it happened. Exact quantiles by sorting per window — sample counts
// in simulation are small enough that sketches would be over-engineering.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/types.hpp"

namespace abcast::obs {

/// Exact quantile of an UNSORTED sample set (nearest-rank on a sorted
/// copy); q in [0,1]. Returns 0 for an empty set.
Duration latency_percentile(std::vector<Duration> samples, double q);

class WindowedLatency {
 public:
  /// Windows are [origin + i*width, origin + (i+1)*width).
  WindowedLatency(TimePoint origin, Duration width);

  /// Records one latency sample stamped with its completion time.
  void record(TimePoint at, Duration latency);

  struct Window {
    TimePoint start = 0;
    TimePoint end = 0;  // exclusive
    std::uint64_t count = 0;
    Duration p50 = 0;
    Duration p99 = 0;
    Duration p999 = 0;
    Duration max = 0;
  };

  /// Per-window quantiles, in time order. Windows with no samples are
  /// omitted (an open-loop driver that stopped delivering shows up as a
  /// gap, which is the honest rendering of a stall).
  std::vector<Window> windows() const;

  /// Quantiles over every sample regardless of window.
  Window overall() const;

  std::uint64_t total_samples() const { return total_; }

 private:
  TimePoint origin_;
  Duration width_;
  std::map<std::int64_t, std::vector<Duration>> buckets_;  // index -> samples
  std::uint64_t total_ = 0;
};

}  // namespace abcast::obs
