// Labeled metrics registry: counters, gauges, log2-bucket histograms.
//
// Two ways to get a metric into the registry:
//
//  * Owned instruments — counter()/gauge()/histogram() get-or-create a slot
//    keyed by (name, labels). The returned handle is a stable pointer that
//    survives for the registry's lifetime, so a metric accumulates across
//    process incarnations (crash destroys the node object, not the registry).
//
//  * Bindings — bind() registers a read-only view onto a RelaxedU64 counter
//    field that already lives in some struct (AbMetrics, ConsensusMetrics).
//    The hot path stays a plain `field += 1` (a relaxed fetch_add); the
//    registry only reads the slot at snapshot time — the slot must be a
//    RelaxedU64 because snapshot() runs on whatever thread asked for it,
//    concurrent with hot-path increments. Because the bound slot
//    dies with its owner, binders hold a MetricsGroup whose destructor
//    removes the bindings (declare the group LAST in the owning class so it
//    unbinds before the slots are destroyed).
//
// Snapshots are consistent point-in-time copies supporting diff (for
// per-phase deltas in benches), sum_by_name (labels collapsed), and text /
// JSON export.
#pragma once

#include <array>
#include <atomic>

#include "common/relaxed_counter.hpp"
#include <bit>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace abcast::obs {

/// Sorted key=value label set; part of a metric's identity.
using Labels = std::map<std::string, std::string>;

/// Monotonically increasing counter. inc() is a relaxed atomic add — cheap
/// enough for protocol hot paths.
class Counter {
 public:
  void inc(std::uint64_t by = 1) { v_.fetch_add(by, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-value-wins gauge.
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t by) { v_.fetch_add(by, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Histogram with logarithmic (power-of-two) buckets: observation v lands in
/// bucket bit_width(v), i.e. bucket b counts values in [2^(b-1), 2^b).
/// Bucket 0 counts zeros. 65 buckets cover the full uint64 range.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  void observe(std::uint64_t v) {
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  static std::size_t bucket_index(std::uint64_t v) {
    return static_cast<std::size_t>(std::bit_width(v));
  }

  /// Inclusive upper bound of bucket b (v <= bound lands in b or lower).
  static std::uint64_t bucket_bound(std::size_t b) {
    if (b == 0) return 0;
    if (b >= 64) return ~std::uint64_t{0};
    return (std::uint64_t{1} << b) - 1;
  }

  std::uint64_t count() const;
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t bucket_count(std::size_t b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_{0};
};

enum class MetricType : std::uint8_t { kCounter, kGauge, kHistogram };

/// One metric in a Snapshot.
struct SnapshotEntry {
  std::string name;
  Labels labels;
  MetricType type = MetricType::kCounter;
  std::int64_t value = 0;                          // counter/gauge
  std::uint64_t count = 0, sum = 0;                // histogram
  std::vector<std::pair<std::size_t, std::uint64_t>> buckets;  // non-empty only
};

/// Point-in-time copy of every metric in a registry.
class Snapshot {
 public:
  const std::vector<SnapshotEntry>& entries() const { return entries_; }

  /// Counter/gauge value for an exact (name, labels) match; 0 if absent.
  std::int64_t value(const std::string& name, const Labels& labels = {}) const;

  /// Sum of all counter/gauge entries sharing `name`, labels collapsed.
  std::int64_t sum_by_name(const std::string& name) const;

  /// this - base, counter/histogram entries only (gauges keep their current
  /// value). Entries absent from `base` are kept whole.
  Snapshot diff(const Snapshot& base) const;

  /// One line per metric: name{label="v",...} value.
  void write_text(std::ostream& os) const;

  /// Single JSON object: flat for counters/gauges, nested for histograms.
  void write_json(std::ostream& os) const;

 private:
  friend class MetricsRegistry;
  std::vector<SnapshotEntry> entries_;
};

class MetricsRegistry;

/// RAII handle over a set of bind() registrations. Destroying (or reset())
/// removes them from the registry. Movable, not copyable.
class MetricsGroup {
 public:
  MetricsGroup() = default;
  MetricsGroup(MetricsGroup&& other) noexcept;
  MetricsGroup& operator=(MetricsGroup&& other) noexcept;
  MetricsGroup(const MetricsGroup&) = delete;
  MetricsGroup& operator=(const MetricsGroup&) = delete;
  ~MetricsGroup();

  /// Binds a live counter slot under (name, labels). No-op on a default
  /// (registry-less) group, so callers can bind unconditionally.
  void bind(std::string name, Labels labels, const RelaxedU64* slot);

  /// Removes all bindings made through this group.
  void reset();

  bool attached() const { return registry_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit MetricsGroup(MetricsRegistry* registry) : registry_(registry) {}
  MetricsRegistry* registry_ = nullptr;
  std::uint64_t group_id_ = 0;
};

/// Process- or cluster-wide metrics registry. Thread-safe; instrument
/// handles returned by counter()/gauge()/histogram() remain valid for the
/// registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  Histogram& histogram(const std::string& name, const Labels& labels = {});

  /// Creates a group for bind() registrations (see MetricsGroup).
  MetricsGroup group();

  Snapshot snapshot() const;

 private:
  friend class MetricsGroup;

  struct Key {
    std::string name;
    Labels labels;
    friend auto operator<=>(const Key&, const Key&) = default;
  };

  struct Binding {
    Key key;
    const RelaxedU64* slot;
    std::uint64_t group_id;
  };

  void add_binding(std::uint64_t group_id, Key key, const RelaxedU64* slot);
  void drop_group(std::uint64_t group_id);

  mutable std::mutex mu_;
  std::map<Key, std::unique_ptr<Counter>> counters_;
  std::map<Key, std::unique_ptr<Gauge>> gauges_;
  std::map<Key, std::unique_ptr<Histogram>> histograms_;
  std::vector<Binding> bindings_;
  std::uint64_t next_group_id_ = 1;
};

}  // namespace abcast::obs
