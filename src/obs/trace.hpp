// Structured protocol event tracing.
//
// Every process records a bounded ring of TraceEvents (the observability
// counterpart of the paper's event-based pseudocode): broadcasts, gossip,
// proposals, log operations, decisions, deliveries, checkpoints, state
// transfers and crash/recovery transitions. The recorder lives in the HOST
// (outside the crash boundary), so one trace spans every incarnation of a
// process — exactly what the offline checker (trace_check.hpp,
// tools/tracecheck) needs to audit the paper's properties after a run,
// including runs of the rt/UDP cluster where the in-process oracle cannot
// see inside processes.
//
// Traces export as JSONL (one event per line) and parse back losslessly, so
// per-node files from independent processes can be merged and checked.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace abcast::obs {

/// Protocol event taxonomy (see DESIGN.md "Observability").
enum class EventKind : std::uint8_t {
  kBroadcast,      // A-broadcast(m) invoked          msg=id, k=current round
  kGossipSend,     // gossip multisent                k=round, arg=|Unordered|
  kGossipRecv,     // gossip received                 k=sender round, arg=from
  kPropose,        // consensus proposal first logged k=instance, arg=crc32
  kLogWrite,       // stable-storage put completed    detail=key, arg=bytes
  kDecide,         // consensus decision learned      k=instance, arg=crc32,
                   //                                 detail=local|learned
  kDeliver,        // A-deliver(m)                    msg=id, k=round, arg=pos
  kCheckpoint,     // (k, Agreed) checkpoint          k, arg=total,
                   //                                 detail=take|load
  kStateTransfer,  // catch-up session chunk.
                   // Sends: detail=send_chunk|send_snap, arg=payload bytes
                   // (the offline checker bounds these, see CheckOptions::
                   // max_state_chunk_bytes). Adoptions: detail=adopt_chunk
                   // (tail applied, arg=new total) | adopt_snap (peer app
                   // checkpoint installed, arg=its count). Legacy one-shot
                   // details (send|send_trim|adopt|adopt_trim) remain
                   // recognized by the checker for old traces.
  kCrash,          // process crashed (host event)
  kRecoverBegin,   // recovery starting (host event)
  kRecoverEnd,     // recovery finished               arg=replayed rounds
  kLogLine,        // a kTrace-level log line routed here (detail=text)
  kCrossShard,     // cross-shard pair op transition  arg=pair id,
                   //                                 k=partner group,
                   //                                 detail=hold|apply
};

const char* to_string(EventKind kind);

/// Parses the to_string form back; returns false on unknown names.
bool event_kind_from_string(std::string_view s, EventKind& out);

struct TraceEvent {
  EventKind kind{};
  ProcessId node = kNoProcess;
  std::uint64_t seq = 0;  // per-node order, stamped by the recorder
  TimePoint t = 0;        // virtual (sim) or steady-clock (rt) time
  std::uint64_t k = 0;    // round / consensus instance where meaningful
  MsgId msg{};            // sender == kNoProcess means "no message"
  std::uint64_t arg = 0;  // kind-specific (see EventKind comments)
  std::uint32_t group = 0;  // AB group id in multi-group runs (0 otherwise)
  std::string detail;     // kind-specific (storage key, direction, text)

  bool has_msg() const { return msg.sender != kNoProcess; }
};

/// Bounded per-process ring buffer of TraceEvents. Oldest events are
/// overwritten once `capacity` is reached (dropped() counts them — a checker
/// run should assert it is zero, or treat the trace as truncated).
///
/// Thread-safe: record() and readers take an internal mutex, so the rt
/// runtime's host threads and an external snapshotter can share a recorder.
class TraceRecorder {
 public:
  TraceRecorder(ProcessId node, std::size_t capacity);
  virtual ~TraceRecorder() = default;

  ProcessId node() const { return node_; }
  std::size_t capacity() const { return capacity_; }

  /// Clock used to stamp events recorded without an explicit time
  /// (log_line()). Optional; unset means those events carry t = 0.
  void set_clock(std::function<TimePoint()> clock);

  /// Virtual so facades (GroupTaggedRecorder) can stamp extra context on
  /// events flowing out of a protocol stack that only sees `TraceRecorder*`.
  virtual void record(EventKind kind, TimePoint t, std::uint64_t k = 0,
                      MsgId msg = MsgId{}, std::uint64_t arg = 0,
                      std::string detail = {});

  /// record() plus an explicit group tag (multi-group stacks; see
  /// src/group/). Group 0 is the untagged default.
  void record_grouped(std::uint32_t group, EventKind kind, TimePoint t,
                      std::uint64_t k = 0, MsgId msg = MsgId{},
                      std::uint64_t arg = 0, std::string detail = {});

  /// Records a kLogLine event (the Logger's kTrace routing target).
  void log_line(std::string line);

  /// Events currently held, oldest first.
  std::vector<TraceEvent> events() const;

  std::uint64_t total_recorded() const;
  std::uint64_t dropped() const;
  void clear();

  /// Writes the held events as JSONL, one event per line.
  void write_jsonl(std::ostream& os) const;

 private:
  const ProcessId node_;
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::function<TimePoint()> clock_;
  std::vector<TraceEvent> ring_;  // grows to capacity_, then wraps
  std::size_t head_ = 0;          // next write slot once full
  std::uint64_t total_ = 0;       // lifetime events (seq source)
};

/// Facade that forwards every event to a parent recorder with a fixed group
/// tag. One per (node, group) in a multi-group stack: the per-group
/// NodeStack records through it unchanged, the parent ring keeps a single
/// per-node seq order across all groups, and the offline checker can split
/// the merged trace back into per-group sub-traces. The parent must outlive
/// the facade.
class GroupTaggedRecorder final : public TraceRecorder {
 public:
  GroupTaggedRecorder(TraceRecorder& parent, std::uint32_t group)
      : TraceRecorder(parent.node(), 1), parent_(parent), group_(group) {}

  std::uint32_t group() const { return group_; }

  void record(EventKind kind, TimePoint t, std::uint64_t k = 0,
              MsgId msg = MsgId{}, std::uint64_t arg = 0,
              std::string detail = {}) override {
    parent_.record_grouped(group_, kind, t, k, msg, arg, std::move(detail));
  }

 private:
  TraceRecorder& parent_;
  const std::uint32_t group_;
};

/// Serializes one event as a single JSON line (no trailing newline).
std::string event_to_json(const TraceEvent& e);

/// Parses JSONL produced by write_jsonl/event_to_json. Blank lines are
/// skipped. Throws CodecError (with a line number) on malformed input.
std::vector<TraceEvent> parse_trace_jsonl(std::istream& is);

/// Routes ABCAST_LOG(kTrace, ...) lines into `rec` as kLogLine events (and
/// enables the kTrace level regardless of the logger's threshold). Pass
/// nullptr to uninstall. The recorder must outlive the routing.
void route_trace_logs(TraceRecorder* rec);

}  // namespace abcast::obs
