#include "obs/trace_check.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <string_view>
#include <unordered_map>

namespace abcast::obs {

std::string to_string(const Violation& v) {
  std::string out = v.property;
  out += ": ";
  out += v.message;
  if (v.node != kNoProcess) {
    out += " (node " + std::to_string(v.node) + ", seq " +
           std::to_string(v.seq) + ")";
  }
  return out;
}

namespace {

bool is_adopt(const TraceEvent& e) {
  return e.kind == EventKind::kStateTransfer &&
         (e.detail == "adopt" || e.detail == "adopt_trim" ||
          e.detail == "adopt_chunk" || e.detail == "adopt_snap");
}

bool is_chunk_send(const TraceEvent& e) {
  return e.kind == EventKind::kStateTransfer &&
         (e.detail == "send_chunk" || e.detail == "send_snap");
}

}  // namespace

CheckReport check_trace(const std::vector<TraceEvent>& events,
                        const CheckOptions& options) {
  CheckReport report;
  report.stats.events = events.size();

  // Group per node, order by recorder-stamped seq.
  std::map<ProcessId, std::vector<const TraceEvent*>> by_node;
  for (const auto& e : events) by_node[e.node].push_back(&e);
  for (auto& [node, evs] : by_node) {
    std::sort(evs.begin(), evs.end(),
              [](const TraceEvent* a, const TraceEvent* b) {
                return a->seq < b->seq;
              });
  }
  report.stats.nodes = by_node.size();

  auto violate = [&report](std::string property, const TraceEvent& e,
                           std::string message) {
    report.violations.push_back(Violation{std::move(property), e.node, e.seq,
                                          std::move(message)});
  };

  // Global cross-node order maps. Positions form the agreed sequence, so the
  // pair (position -> message) must be a bijection across the whole system.
  std::map<std::uint64_t, std::pair<MsgId, ProcessId>> pos_to_msg;
  std::unordered_map<MsgId, std::uint64_t, MsgIdHash> msg_to_pos;
  // Agreement on consensus decisions: instance k -> crc of decided value.
  std::map<std::uint64_t, std::pair<std::uint64_t, ProcessId>> decided_crc;

  std::unordered_map<MsgId, const TraceEvent*, MsgIdHash> broadcasts;
  std::set<MsgId> delivered_anywhere;

  struct NodeTally {
    std::uint64_t reached = 0;  // max position known delivered/covered
    bool up = true;             // lifecycle state at end of trace
    bool has_crash = false;
    std::uint64_t last_crash_seq = 0;
  };
  std::map<ProcessId, NodeTally> tallies;

  for (const auto& [node, evs] : by_node) {
    NodeTally& tally = tallies[node];

    // Per-incarnation delivery state.
    std::uint64_t segment = 0;
    std::uint64_t expected_pos = 0;
    bool allow_jump = false;
    // msg -> (position, segment) of first delivery on this node.
    std::unordered_map<MsgId, std::pair<std::uint64_t, std::uint64_t>,
                       MsgIdHash>
        first_delivery;
    std::set<std::pair<std::uint64_t, std::uint64_t>> seen_in_segment;
    // (segment, consensus instance) -> proposal log-write count.
    std::map<std::pair<std::uint64_t, std::uint64_t>, std::size_t> prop_writes;

    for (const TraceEvent* ep : evs) {
      const TraceEvent& e = *ep;
      switch (e.kind) {
        case EventKind::kBroadcast:
          ++report.stats.broadcasts;
          if (e.has_msg()) broadcasts.emplace(e.msg, &e);
          break;

        case EventKind::kDeliver: {
          ++report.stats.delivers;
          const std::uint64_t pos = e.arg;

          // Integrity within this node.
          auto [it, inserted] =
              first_delivery.try_emplace(e.msg, pos, segment);
          if (!inserted) {
            if (it->second.first != pos) {
              violate("Integrity", e,
                      "node delivers " + abcast::to_string(e.msg) +
                          " at position " + std::to_string(pos) +
                          " after delivering it at position " +
                          std::to_string(it->second.first));
            } else if (it->second.second == segment) {
              violate("Integrity", e,
                      "node delivers " + abcast::to_string(e.msg) +
                          " twice within one incarnation (position " +
                          std::to_string(pos) + ")");
            }
            // Same position, earlier incarnation: legitimate recovery replay.
          }
          if (!seen_in_segment.emplace(segment, pos).second) {
            violate("Integrity", e,
                    "two deliveries at position " + std::to_string(pos) +
                        " within one incarnation");
          }

          // Position continuity.
          if (pos != expected_pos && !allow_jump) {
            violate("TotalOrder", e,
                    "delivery position " + std::to_string(pos) +
                        " breaks continuity (expected " +
                        std::to_string(expected_pos) + ")");
          }
          expected_pos = pos + 1;
          allow_jump = false;

          // Global total order.
          auto [pit, pos_fresh] =
              pos_to_msg.try_emplace(pos, e.msg, e.node);
          if (!pos_fresh && pit->second.first != e.msg) {
            violate("TotalOrder", e,
                    "position " + std::to_string(pos) + " holds " +
                        abcast::to_string(e.msg) + " here but " +
                        abcast::to_string(pit->second.first) + " on node " +
                        std::to_string(pit->second.second));
          }
          auto [mit, msg_fresh] = msg_to_pos.try_emplace(e.msg, pos);
          if (!msg_fresh && mit->second != pos) {
            violate("TotalOrder", e,
                    abcast::to_string(e.msg) + " delivered at position " +
                        std::to_string(pos) + " here but at position " +
                        std::to_string(mit->second) + " elsewhere");
          }

          delivered_anywhere.insert(e.msg);
          tally.reached = std::max(tally.reached, pos + 1);
          report.stats.max_position =
              std::max(report.stats.max_position, pos + 1);
          break;
        }

        case EventKind::kDecide: {
          ++report.stats.decides;
          auto [it, fresh] =
              decided_crc.try_emplace(e.k, e.arg, e.node);
          if (!fresh && it->second.first != e.arg) {
            violate("Agreement", e,
                    "consensus instance " + std::to_string(e.k) +
                        " decided value crc " + std::to_string(e.arg) +
                        " here but crc " + std::to_string(it->second.first) +
                        " on node " + std::to_string(it->second.second));
          }
          break;
        }

        case EventKind::kLogWrite: {
          ++report.stats.log_writes;
          if (options.basic_protocol && e.detail.rfind("ab/", 0) == 0) {
            violate("LogMinimality", e,
                    "AB-layer log write '" + e.detail +
                        "' in the basic protocol (Fig. 2 logs nothing at the "
                        "AB layer)");
          }
          constexpr std::string_view kPropPrefix = "cons/prop/";
          if (e.detail.size() > kPropPrefix.size() &&
              e.detail.rfind(kPropPrefix, 0) == 0 &&
              std::isdigit(static_cast<unsigned char>(
                  e.detail[kPropPrefix.size()]))) {
            const std::uint64_t k = std::stoull(
                e.detail.substr(kPropPrefix.size()));
            if (++prop_writes[{segment, k}] > 1) {
              violate("LogMinimality", e,
                      "consensus instance " + std::to_string(k) +
                          " logged its proposal more than once within one "
                          "incarnation");
            }
          }
          break;
        }

        case EventKind::kStateTransfer:
          if (is_adopt(e)) {
            allow_jump = true;
            tally.reached = std::max(tally.reached, e.arg);
            // Installing a checkpoint wholesale-replaces the Agreed queue
            // on top of a fresh application state — a reset, so it opens a
            // new delivery segment ("adopt" is the legacy one-shot install,
            // "adopt_snap" the chunked snapshot install; trimmed/chunked
            // tail adoptions only extend the sequence).
            if (e.detail == "adopt" || e.detail == "adopt_snap") ++segment;
          }
          if (is_chunk_send(e) && options.max_state_chunk_bytes != 0 &&
              e.arg > options.max_state_chunk_bytes) {
            violate("StateBound", e,
                    "state chunk of " + std::to_string(e.arg) +
                        " payload bytes exceeds the configured bound of " +
                        std::to_string(options.max_state_chunk_bytes));
          }
          break;

        case EventKind::kCheckpoint:
          tally.reached = std::max(tally.reached, e.arg);
          break;

        case EventKind::kCrash:
          tally.up = false;
          tally.has_crash = true;
          tally.last_crash_seq = e.seq;
          ++segment;  // a post-crash incarnation (if any) is a new segment
          allow_jump = true;
          break;

        case EventKind::kRecoverBegin:
          tally.up = true;  // provisional; kCrash flips it back
          ++segment;
          allow_jump = true;
          seen_in_segment.clear();
          break;

        case EventKind::kRecoverEnd:
          tally.up = true;
          break;

        case EventKind::kGossipSend:
        case EventKind::kGossipRecv:
        case EventKind::kPropose:
        case EventKind::kLogLine:
        case EventKind::kCrossShard:  // audited by check_sharded_trace
          break;
      }
    }
  }

  report.stats.unique_delivered = delivered_anywhere.size();

  // Validity: every broadcast message is eventually delivered somewhere —
  // unless the broadcaster crashed after broadcasting, in which case the
  // message may legitimately have been lost with the process (the basic
  // protocol keeps Unordered in volatile memory).
  for (const auto& [msg, ev] : broadcasts) {
    if (delivered_anywhere.count(msg) != 0) continue;
    const NodeTally& tally = tallies[ev->node];
    const bool may_be_lost =
        tally.has_crash && tally.last_crash_seq > ev->seq;
    if (options.require_quiesced && !may_be_lost) {
      report.violations.push_back(
          Violation{"Validity", ev->node, ev->seq,
                    abcast::to_string(msg) +
                        " was broadcast but never delivered anywhere"});
    } else {
      report.warnings.push_back(
          "Validity: " + abcast::to_string(msg) +
          " broadcast by node " + std::to_string(ev->node) +
          " was never delivered" +
          (may_be_lost ? " (broadcaster crashed afterwards; may be lost)"
                       : " (trace may be truncated)"));
    }
  }

  // Integrity, second half: nothing is delivered that was not broadcast.
  for (const auto& msg : delivered_anywhere) {
    if (broadcasts.count(msg) != 0) continue;
    if (by_node.count(msg.sender) == 0) {
      report.warnings.push_back(
          "Integrity: " + abcast::to_string(msg) +
          " delivered but its sender's trace is absent (partial merge?)");
    } else {
      report.violations.push_back(
          Violation{"Integrity", msg.sender, 0,
                    abcast::to_string(msg) +
                        " was delivered but never broadcast"});
    }
  }

  // Termination-progress: in a quiesced trace every node that ends up must
  // have reached the global maximum position.
  if (options.require_quiesced) {
    std::uint64_t global_max = 0;
    for (const auto& [node, tally] : tallies) {
      global_max = std::max(global_max, tally.reached);
    }
    for (const auto& [node, tally] : tallies) {
      if (!tally.up) continue;
      if (tally.reached < global_max) {
        report.violations.push_back(Violation{
            "Termination", node, 0,
            "node is up but reached only position " +
                std::to_string(tally.reached) + " of " +
                std::to_string(global_max)});
      }
    }
  }

  // Positions delivered must form a prefix [0, max) somewhere in the system
  // when quiesced — a hole means the order relation is not total.
  if (options.require_quiesced) {
    for (std::uint64_t p = 0; p < report.stats.max_position; ++p) {
      if (pos_to_msg.count(p) == 0) {
        report.violations.push_back(Violation{
            "TotalOrder", kNoProcess, 0,
            "no delivery observed for position " + std::to_string(p) +
                " although position " +
                std::to_string(report.stats.max_position - 1) +
                " was delivered"});
      }
    }
  }

  return report;
}

namespace {

/// Parses a "g<gid>/" storage-scope prefix; returns true and strips it.
bool split_group_scope(std::string& detail, std::uint32_t& gid) {
  if (detail.size() < 3 || detail[0] != 'g' ||
      !std::isdigit(static_cast<unsigned char>(detail[1]))) {
    return false;
  }
  std::size_t i = 1;
  std::uint64_t g = 0;
  while (i < detail.size() &&
         std::isdigit(static_cast<unsigned char>(detail[i]))) {
    g = g * 10 + static_cast<std::uint64_t>(detail[i] - '0');
    ++i;
  }
  if (i >= detail.size() || detail[i] != '/') return false;
  gid = static_cast<std::uint32_t>(g);
  detail.erase(0, i + 1);
  return true;
}

bool is_lifecycle(EventKind kind) {
  return kind == EventKind::kCrash || kind == EventKind::kRecoverBegin ||
         kind == EventKind::kRecoverEnd;
}

}  // namespace

CheckReport check_sharded_trace(const std::vector<TraceEvent>& events,
                                std::uint32_t n_groups,
                                const CheckOptions& options) {
  CheckReport report;
  report.stats.events = events.size();
  if (n_groups == 0) n_groups = 1;

  std::vector<std::vector<TraceEvent>> per_group(n_groups);
  std::set<ProcessId> nodes;

  // Cross-shard bookkeeping. Keyed by pair id; `holds`/`applies` collect
  // (node, group); `owners` is the owner set announced by the events.
  struct PairAudit {
    std::set<std::pair<ProcessId, std::uint32_t>> holds;
    std::set<std::pair<ProcessId, std::uint32_t>> applies;
    std::set<std::uint32_t> owners;
    bool owner_conflict = false;
    const TraceEvent* sample = nullptr;
  };
  std::map<std::uint64_t, PairAudit> pairs;

  for (const auto& e : events) {
    nodes.insert(e.node);
    if (e.group != 0) {
      const std::uint32_t gid = e.group - 1;
      if (gid >= n_groups) {
        report.violations.push_back(Violation{
            "GroupTag", e.node, e.seq,
            "event tagged with group " + std::to_string(gid) +
                " but the run has only " + std::to_string(n_groups) +
                " groups"});
        continue;
      }
      if (e.kind == EventKind::kCrossShard) {
        PairAudit& audit = pairs[e.arg];
        if (audit.sample == nullptr) {
          audit.sample = &e;
          audit.owners = {gid, static_cast<std::uint32_t>(e.k)};
        } else if (audit.owners.count(gid) == 0 ||
                   audit.owners.count(static_cast<std::uint32_t>(e.k)) == 0) {
          audit.owner_conflict = true;
        }
        if (e.detail == "hold") {
          audit.holds.emplace(e.node, gid);
        } else if (e.detail == "apply") {
          audit.applies.emplace(e.node, gid);
        }
        continue;  // not part of any single group's AB property audit
      }
      per_group[gid].push_back(e);
      continue;
    }
    // Host-recorded events. Lifecycle transitions affect every group's
    // incarnation accounting; log writes carry the group in their
    // storage-scope prefix (ScopedStorage "g<gid>"), which must be stripped
    // so the per-group LogMinimality matching ("cons/prop/", "ab/") works.
    if (is_lifecycle(e.kind)) {
      for (auto& bucket : per_group) bucket.push_back(e);
      continue;
    }
    if (e.kind == EventKind::kLogWrite) {
      TraceEvent routed = e;
      std::uint32_t gid = 0;
      if (split_group_scope(routed.detail, gid) && gid < n_groups) {
        per_group[gid].push_back(std::move(routed));
      } else {
        report.warnings.push_back(
            "GroupTag: log write '" + e.detail + "' on node " +
            std::to_string(e.node) + " has no routable group scope");
      }
      continue;
    }
    // Other host events (log lines, host-level markers) have no bearing on
    // any single group's order properties.
  }

  // Per-group property audit; diagnostics prefixed so a violation names the
  // group whose order it breaks.
  for (std::uint32_t g = 0; g < n_groups; ++g) {
    CheckReport sub = check_trace(per_group[g], options);
    const std::string prefix = "g" + std::to_string(g) + ": ";
    for (auto& v : sub.violations) {
      v.message = prefix + v.message;
      report.violations.push_back(std::move(v));
    }
    for (auto& w : sub.warnings) {
      report.warnings.push_back(prefix + std::move(w));
    }
    report.stats.broadcasts += sub.stats.broadcasts;
    report.stats.delivers += sub.stats.delivers;
    report.stats.unique_delivered += sub.stats.unique_delivered;
    report.stats.decides += sub.stats.decides;
    report.stats.log_writes += sub.stats.log_writes;
    report.stats.max_position =
        std::max(report.stats.max_position, sub.stats.max_position);
  }
  report.stats.nodes = nodes.size();

  // CrossShard atomicity.
  for (const auto& [pair_id, audit] : pairs) {
    auto violate = [&](std::string message) {
      report.violations.push_back(
          Violation{"CrossShard", audit.sample->node, audit.sample->seq,
                    "pair " + std::to_string(pair_id) + ": " +
                        std::move(message)});
    };
    if (audit.owner_conflict) {
      violate("events disagree on the pair's owning groups");
      continue;
    }
    for (const auto& site : audit.applies) {
      if (audit.holds.count(site) == 0) {
        violate("effect applied at node " + std::to_string(site.first) +
                " group " + std::to_string(site.second) +
                " without a preceding hold there");
      }
    }
    if (options.require_quiesced) {
      for (const std::uint32_t owner : audit.owners) {
        bool held = false;
        bool applied = false;
        for (const auto& site : audit.holds) held |= site.second == owner;
        for (const auto& site : audit.applies) {
          applied |= site.second == owner;
        }
        if (!held) {
          violate("no hold ever delivered in owning group " +
                  std::to_string(owner));
        } else if (!applied) {
          violate("held but never applied in owning group " +
                  std::to_string(owner) +
                  " — one-sided effect at quiescence");
        }
      }
    }
  }

  return report;
}

}  // namespace abcast::obs
