#include "obs/trace_check.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <string_view>
#include <unordered_map>

namespace abcast::obs {

std::string to_string(const Violation& v) {
  std::string out = v.property;
  out += ": ";
  out += v.message;
  if (v.node != kNoProcess) {
    out += " (node " + std::to_string(v.node) + ", seq " +
           std::to_string(v.seq) + ")";
  }
  return out;
}

namespace {

bool is_adopt(const TraceEvent& e) {
  return e.kind == EventKind::kStateTransfer &&
         (e.detail == "adopt" || e.detail == "adopt_trim" ||
          e.detail == "adopt_chunk" || e.detail == "adopt_snap");
}

bool is_chunk_send(const TraceEvent& e) {
  return e.kind == EventKind::kStateTransfer &&
         (e.detail == "send_chunk" || e.detail == "send_snap");
}

}  // namespace

CheckReport check_trace(const std::vector<TraceEvent>& events,
                        const CheckOptions& options) {
  CheckReport report;
  report.stats.events = events.size();

  // Group per node, order by recorder-stamped seq.
  std::map<ProcessId, std::vector<const TraceEvent*>> by_node;
  for (const auto& e : events) by_node[e.node].push_back(&e);
  for (auto& [node, evs] : by_node) {
    std::sort(evs.begin(), evs.end(),
              [](const TraceEvent* a, const TraceEvent* b) {
                return a->seq < b->seq;
              });
  }
  report.stats.nodes = by_node.size();

  auto violate = [&report](std::string property, const TraceEvent& e,
                           std::string message) {
    report.violations.push_back(Violation{std::move(property), e.node, e.seq,
                                          std::move(message)});
  };

  // Global cross-node order maps. Positions form the agreed sequence, so the
  // pair (position -> message) must be a bijection across the whole system.
  std::map<std::uint64_t, std::pair<MsgId, ProcessId>> pos_to_msg;
  std::unordered_map<MsgId, std::uint64_t, MsgIdHash> msg_to_pos;
  // Agreement on consensus decisions: instance k -> crc of decided value.
  std::map<std::uint64_t, std::pair<std::uint64_t, ProcessId>> decided_crc;

  std::unordered_map<MsgId, const TraceEvent*, MsgIdHash> broadcasts;
  std::set<MsgId> delivered_anywhere;

  struct NodeTally {
    std::uint64_t reached = 0;  // max position known delivered/covered
    bool up = true;             // lifecycle state at end of trace
    bool has_crash = false;
    std::uint64_t last_crash_seq = 0;
  };
  std::map<ProcessId, NodeTally> tallies;

  for (const auto& [node, evs] : by_node) {
    NodeTally& tally = tallies[node];

    // Per-incarnation delivery state.
    std::uint64_t segment = 0;
    std::uint64_t expected_pos = 0;
    bool allow_jump = false;
    // msg -> (position, segment) of first delivery on this node.
    std::unordered_map<MsgId, std::pair<std::uint64_t, std::uint64_t>,
                       MsgIdHash>
        first_delivery;
    std::set<std::pair<std::uint64_t, std::uint64_t>> seen_in_segment;
    // (segment, consensus instance) -> proposal log-write count.
    std::map<std::pair<std::uint64_t, std::uint64_t>, std::size_t> prop_writes;

    for (const TraceEvent* ep : evs) {
      const TraceEvent& e = *ep;
      switch (e.kind) {
        case EventKind::kBroadcast:
          ++report.stats.broadcasts;
          if (e.has_msg()) broadcasts.emplace(e.msg, &e);
          break;

        case EventKind::kDeliver: {
          ++report.stats.delivers;
          const std::uint64_t pos = e.arg;

          // Integrity within this node.
          auto [it, inserted] =
              first_delivery.try_emplace(e.msg, pos, segment);
          if (!inserted) {
            if (it->second.first != pos) {
              violate("Integrity", e,
                      "node delivers " + abcast::to_string(e.msg) +
                          " at position " + std::to_string(pos) +
                          " after delivering it at position " +
                          std::to_string(it->second.first));
            } else if (it->second.second == segment) {
              violate("Integrity", e,
                      "node delivers " + abcast::to_string(e.msg) +
                          " twice within one incarnation (position " +
                          std::to_string(pos) + ")");
            }
            // Same position, earlier incarnation: legitimate recovery replay.
          }
          if (!seen_in_segment.emplace(segment, pos).second) {
            violate("Integrity", e,
                    "two deliveries at position " + std::to_string(pos) +
                        " within one incarnation");
          }

          // Position continuity.
          if (pos != expected_pos && !allow_jump) {
            violate("TotalOrder", e,
                    "delivery position " + std::to_string(pos) +
                        " breaks continuity (expected " +
                        std::to_string(expected_pos) + ")");
          }
          expected_pos = pos + 1;
          allow_jump = false;

          // Global total order.
          auto [pit, pos_fresh] =
              pos_to_msg.try_emplace(pos, e.msg, e.node);
          if (!pos_fresh && pit->second.first != e.msg) {
            violate("TotalOrder", e,
                    "position " + std::to_string(pos) + " holds " +
                        abcast::to_string(e.msg) + " here but " +
                        abcast::to_string(pit->second.first) + " on node " +
                        std::to_string(pit->second.second));
          }
          auto [mit, msg_fresh] = msg_to_pos.try_emplace(e.msg, pos);
          if (!msg_fresh && mit->second != pos) {
            violate("TotalOrder", e,
                    abcast::to_string(e.msg) + " delivered at position " +
                        std::to_string(pos) + " here but at position " +
                        std::to_string(mit->second) + " elsewhere");
          }

          delivered_anywhere.insert(e.msg);
          tally.reached = std::max(tally.reached, pos + 1);
          report.stats.max_position =
              std::max(report.stats.max_position, pos + 1);
          break;
        }

        case EventKind::kDecide: {
          ++report.stats.decides;
          auto [it, fresh] =
              decided_crc.try_emplace(e.k, e.arg, e.node);
          if (!fresh && it->second.first != e.arg) {
            violate("Agreement", e,
                    "consensus instance " + std::to_string(e.k) +
                        " decided value crc " + std::to_string(e.arg) +
                        " here but crc " + std::to_string(it->second.first) +
                        " on node " + std::to_string(it->second.second));
          }
          break;
        }

        case EventKind::kLogWrite: {
          ++report.stats.log_writes;
          if (options.basic_protocol && e.detail.rfind("ab/", 0) == 0) {
            violate("LogMinimality", e,
                    "AB-layer log write '" + e.detail +
                        "' in the basic protocol (Fig. 2 logs nothing at the "
                        "AB layer)");
          }
          constexpr std::string_view kPropPrefix = "cons/prop/";
          if (e.detail.size() > kPropPrefix.size() &&
              e.detail.rfind(kPropPrefix, 0) == 0 &&
              std::isdigit(static_cast<unsigned char>(
                  e.detail[kPropPrefix.size()]))) {
            const std::uint64_t k = std::stoull(
                e.detail.substr(kPropPrefix.size()));
            if (++prop_writes[{segment, k}] > 1) {
              violate("LogMinimality", e,
                      "consensus instance " + std::to_string(k) +
                          " logged its proposal more than once within one "
                          "incarnation");
            }
          }
          break;
        }

        case EventKind::kStateTransfer:
          if (is_adopt(e)) {
            allow_jump = true;
            tally.reached = std::max(tally.reached, e.arg);
            // Installing a checkpoint wholesale-replaces the Agreed queue
            // on top of a fresh application state — a reset, so it opens a
            // new delivery segment ("adopt" is the legacy one-shot install,
            // "adopt_snap" the chunked snapshot install; trimmed/chunked
            // tail adoptions only extend the sequence).
            if (e.detail == "adopt" || e.detail == "adopt_snap") ++segment;
          }
          if (is_chunk_send(e) && options.max_state_chunk_bytes != 0 &&
              e.arg > options.max_state_chunk_bytes) {
            violate("StateBound", e,
                    "state chunk of " + std::to_string(e.arg) +
                        " payload bytes exceeds the configured bound of " +
                        std::to_string(options.max_state_chunk_bytes));
          }
          break;

        case EventKind::kCheckpoint:
          tally.reached = std::max(tally.reached, e.arg);
          break;

        case EventKind::kCrash:
          tally.up = false;
          tally.has_crash = true;
          tally.last_crash_seq = e.seq;
          ++segment;  // a post-crash incarnation (if any) is a new segment
          allow_jump = true;
          break;

        case EventKind::kRecoverBegin:
          tally.up = true;  // provisional; kCrash flips it back
          ++segment;
          allow_jump = true;
          seen_in_segment.clear();
          break;

        case EventKind::kRecoverEnd:
          tally.up = true;
          break;

        case EventKind::kGossipSend:
        case EventKind::kGossipRecv:
        case EventKind::kPropose:
        case EventKind::kLogLine:
          break;
      }
    }
  }

  report.stats.unique_delivered = delivered_anywhere.size();

  // Validity: every broadcast message is eventually delivered somewhere —
  // unless the broadcaster crashed after broadcasting, in which case the
  // message may legitimately have been lost with the process (the basic
  // protocol keeps Unordered in volatile memory).
  for (const auto& [msg, ev] : broadcasts) {
    if (delivered_anywhere.count(msg) != 0) continue;
    const NodeTally& tally = tallies[ev->node];
    const bool may_be_lost =
        tally.has_crash && tally.last_crash_seq > ev->seq;
    if (options.require_quiesced && !may_be_lost) {
      report.violations.push_back(
          Violation{"Validity", ev->node, ev->seq,
                    abcast::to_string(msg) +
                        " was broadcast but never delivered anywhere"});
    } else {
      report.warnings.push_back(
          "Validity: " + abcast::to_string(msg) +
          " broadcast by node " + std::to_string(ev->node) +
          " was never delivered" +
          (may_be_lost ? " (broadcaster crashed afterwards; may be lost)"
                       : " (trace may be truncated)"));
    }
  }

  // Integrity, second half: nothing is delivered that was not broadcast.
  for (const auto& msg : delivered_anywhere) {
    if (broadcasts.count(msg) != 0) continue;
    if (by_node.count(msg.sender) == 0) {
      report.warnings.push_back(
          "Integrity: " + abcast::to_string(msg) +
          " delivered but its sender's trace is absent (partial merge?)");
    } else {
      report.violations.push_back(
          Violation{"Integrity", msg.sender, 0,
                    abcast::to_string(msg) +
                        " was delivered but never broadcast"});
    }
  }

  // Termination-progress: in a quiesced trace every node that ends up must
  // have reached the global maximum position.
  if (options.require_quiesced) {
    std::uint64_t global_max = 0;
    for (const auto& [node, tally] : tallies) {
      global_max = std::max(global_max, tally.reached);
    }
    for (const auto& [node, tally] : tallies) {
      if (!tally.up) continue;
      if (tally.reached < global_max) {
        report.violations.push_back(Violation{
            "Termination", node, 0,
            "node is up but reached only position " +
                std::to_string(tally.reached) + " of " +
                std::to_string(global_max)});
      }
    }
  }

  // Positions delivered must form a prefix [0, max) somewhere in the system
  // when quiesced — a hole means the order relation is not total.
  if (options.require_quiesced) {
    for (std::uint64_t p = 0; p < report.stats.max_position; ++p) {
      if (pos_to_msg.count(p) == 0) {
        report.violations.push_back(Violation{
            "TotalOrder", kNoProcess, 0,
            "no delivery observed for position " + std::to_string(p) +
                " although position " +
                std::to_string(report.stats.max_position - 1) +
                " was delivered"});
      }
    }
  }

  return report;
}

}  // namespace abcast::obs
