#include "net/udp_env.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <future>
#include <stdexcept>

#include "common/check.hpp"
#include "common/codec.hpp"

namespace abcast::net {
namespace {

constexpr std::size_t kMaxDatagram = 64 * 1024;

int make_udp_socket(const std::string& host, std::uint16_t port,
                    std::uint16_t* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) throw std::runtime_error("socket() failed");
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("bad address: " + host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    throw std::runtime_error("bind() failed on " + host + ":" +
                             std::to_string(port));
  }
  sockaddr_in actual{};
  socklen_t len = sizeof actual;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&actual), &len);
  *bound_port = ntohs(actual.sin_port);
  return fd;
}

}  // namespace

UdpHost::UdpHost(UdpConfig config)
    : config_(std::move(config)),
      rng_(config_.seed * 7919 + config_.self),
      storage_(config_.storage_factory ? config_.storage_factory()
                                       : std::make_unique<MemStableStorage>()),
      epoch_(std::chrono::steady_clock::now()) {
  ABCAST_CHECK(config_.self < config_.peers.size());

  const auto& me = config_.peers[config_.self];
  fd_ = make_udp_socket(me.host, me.port, &local_port_);

  // Resolve peers once; index = pid.
  for (const auto& peer : config_.peers) {
    std::uint32_t ip = 0;
    if (::inet_pton(AF_INET, peer.host.c_str(), &ip) != 1) {
      ::close(fd_);
      throw std::runtime_error("bad peer address: " + peer.host);
    }
    peer_addrs_.emplace_back(ip, peer.port);
  }

  if (::pipe(wake_fds_) != 0) {
    ::close(fd_);
    throw std::runtime_error("pipe() failed");
  }
  const int wf = ::fcntl(wake_fds_[0], F_GETFL, 0);
  ::fcntl(wake_fds_[0], F_SETFL, wf | O_NONBLOCK);

  thread_ = std::thread([this] { loop(); });
}

UdpHost::~UdpHost() {
  shutdown();
  if (fd_ >= 0) ::close(fd_);
  if (wake_fds_[0] >= 0) ::close(wake_fds_[0]);
  if (wake_fds_[1] >= 0) ::close(wake_fds_[1]);
}

void UdpHost::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  wake();
  if (thread_.joinable()) thread_.join();
}

void UdpHost::wake() {
  const char b = 1;
  [[maybe_unused]] const auto n = ::write(wake_fds_[1], &b, 1);
}

TimePoint UdpHost::now() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

TimerId UdpHost::schedule_after(Duration delay, std::function<void()> fn) {
  if (delay < 0) delay = 0;
  std::uint64_t id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Task t;
    t.due = now() + delay;
    t.seq = next_seq_++;
    t.incarnation = incarnation_;
    t.fn = std::move(fn);
    id = t.seq;
    tasks_.push(std::move(t));
  }
  wake();
  return id;
}

void UdpHost::cancel_timer(TimerId id) {
  std::lock_guard<std::mutex> lock(mu_);
  cancelled_.push_back(id);
}

Bytes UdpHost::make_frame(const Wire& msg) const {
  BufWriter w;
  w.u32(config_.self);  // frame: sender pid + wire
  msg.encode(w);
  return std::move(w).take();
}

void UdpHost::send_frame(ProcessId to, const Bytes& frame) {
  if (frame.size() > kMaxDatagram) {
    send_failures_.fetch_add(1);  // UDP cannot carry it; drop (unreliable)
    return;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = peer_addrs_[to].first;
  addr.sin_port = htons(peer_addrs_[to].second);
  const auto n =
      ::sendto(fd_, frame.data(), frame.size(), 0,
               reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
  if (n < 0) send_failures_.fetch_add(1);  // full buffers etc.: a lost
                                           // datagram, which UDP permits
}

void UdpHost::send(ProcessId to, const Wire& msg) {
  ABCAST_CHECK(to < peer_addrs_.size());
  send_frame(to, make_frame(msg));
}

void UdpHost::multisend(const Wire& msg) {
  const Bytes frame = make_frame(msg);  // one encode for all recipients
  for (ProcessId to = 0; to < group_size(); ++to) send_frame(to, frame);
}

void UdpHost::start_node(const NodeFactory& factory, bool recovering) {
  std::promise<void> done;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Task t;
    t.due = now();
    t.seq = next_seq_++;
    t.fn = [this, &factory, recovering, &done] {
      ABCAST_CHECK_MSG(node_ == nullptr, "udp node already up");
      node_ = factory(*this);
      up_.store(true);
      node_->start(recovering);
      done.set_value();
    };
    tasks_.push(std::move(t));
  }
  wake();
  done.get_future().get();
}

void UdpHost::crash_node() {
  std::promise<void> done;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Task t;
    t.due = now();
    t.seq = next_seq_++;
    t.fn = [this, &done] {
      ABCAST_CHECK_MSG(node_ != nullptr, "udp node already down");
      up_.store(false);
      node_.reset();
      {
        std::lock_guard<std::mutex> inner(mu_);
        incarnation_ += 1;
        cancelled_.clear();
      }
      done.set_value();
    };
    tasks_.push(std::move(t));
  }
  wake();
  done.get_future().get();
}

bool UdpHost::call(const std::function<void()>& fn) {
  ABCAST_CHECK(std::this_thread::get_id() != thread_.get_id());
  std::promise<bool> done;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Task t;
    t.due = now();
    t.seq = next_seq_++;
    t.fn = [this, &fn, &done] {
      if (node_ == nullptr) {
        done.set_value(false);
        return;
      }
      fn();
      done.set_value(true);
    };
    tasks_.push(std::move(t));
  }
  wake();
  return done.get_future().get();
}

void UdpHost::drain_socket() {
  std::uint8_t buf[kMaxDatagram];
  for (;;) {
    const auto n = ::recvfrom(fd_, buf, sizeof buf, 0, nullptr, nullptr);
    if (n <= 0) return;  // EWOULDBLOCK or error: nothing more to read
    if (node_ == nullptr) continue;  // down: arriving datagrams are lost
    try {
      BufReader r(buf, static_cast<std::size_t>(n));
      const ProcessId from = r.u32();
      const Wire wire = Wire::decode(r);
      r.expect_done();
      if (from >= config_.peers.size()) continue;
      node_->on_message(from, wire);
    } catch (const CodecError&) {
      // Malformed datagram (stray traffic): drop, as UDP semantics allow.
    }
  }
}

void UdpHost::loop() {
  for (;;) {
    // Compute poll timeout from the earliest due task.
    int timeout_ms = 1000;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_) return;
      if (!tasks_.empty()) {
        const auto wait = tasks_.top().due - now();
        timeout_ms = wait <= 0 ? 0 : static_cast<int>(wait / 1'000'000 + 1);
      }
    }

    pollfd fds[2];
    fds[0] = {fd_, POLLIN, 0};
    fds[1] = {wake_fds_[0], POLLIN, 0};
    ::poll(fds, 2, timeout_ms);

    if (fds[1].revents & POLLIN) {
      std::uint8_t sink[64];
      while (::read(wake_fds_[0], sink, sizeof sink) > 0) {
      }
    }
    if (fds[0].revents & POLLIN) drain_socket();

    // Run everything due.
    for (;;) {
      Task task;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (stop_) return;
        if (tasks_.empty() || tasks_.top().due > now()) break;
        task = tasks_.top();
        tasks_.pop();
        if (task.incarnation != 0) {
          if (task.incarnation != incarnation_) continue;
          bool was_cancelled = false;
          for (auto it = cancelled_.begin(); it != cancelled_.end(); ++it) {
            if (*it == task.seq) {
              cancelled_.erase(it);
              was_cancelled = true;
              break;
            }
          }
          if (was_cancelled) continue;
          if (node_ == nullptr) continue;
        }
      }
      task.fn();
    }
  }
}

std::vector<std::unique_ptr<UdpHost>> make_local_udp_cluster(
    std::uint32_t n, std::uint64_t seed) {
  ABCAST_CHECK(n >= 1);
  // Bind all sockets up front so every host knows the full peer table...
  // except UdpHost binds in its constructor, so instead reserve ports by
  // binding scratch sockets, reading them back, and releasing just before
  // the real bind. To avoid the release/rebind race entirely, bind the
  // real ports sequentially: host i is constructed with the ports of hosts
  // 0..i-1 known and its own port 0 — but then earlier hosts would not
  // know later ports. The robust approach: pick ports first by binding
  // and KEEPING scratch sockets with SO_REUSEADDR... UDP rebind while the
  // scratch socket is open fails. Simplest correct scheme: bind scratch
  // sockets, record ports, close ALL, then construct hosts immediately.
  // The window for another process to steal an ephemeral port is
  // negligible for tests/demos; a production deployment uses fixed ports.
  std::vector<std::uint16_t> ports(n, 0);
  {
    std::vector<int> scratch;
    for (std::uint32_t i = 0; i < n; ++i) {
      std::uint16_t port = 0;
      scratch.push_back(make_udp_socket("127.0.0.1", 0, &port));
      ports[i] = port;
    }
    for (const int fd : scratch) ::close(fd);
  }
  std::vector<UdpPeer> peers;
  for (std::uint32_t i = 0; i < n; ++i) {
    peers.push_back(UdpPeer{"127.0.0.1", ports[i]});
  }
  std::vector<std::unique_ptr<UdpHost>> hosts;
  for (std::uint32_t i = 0; i < n; ++i) {
    UdpConfig cfg;
    cfg.self = i;
    cfg.peers = peers;
    cfg.seed = seed;
    hosts.push_back(std::make_unique<UdpHost>(cfg));
  }
  return hosts;
}

}  // namespace abcast::net
