#include "net/udp_env.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <future>
#include <stdexcept>

#include "common/check.hpp"
#include "common/codec.hpp"

namespace abcast::net {
namespace {

constexpr std::size_t kMaxDatagram = 64 * 1024;

int make_udp_socket(const std::string& host, std::uint16_t port,
                    std::uint16_t* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) throw std::runtime_error("socket() failed");
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("bad address: " + host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    throw std::runtime_error("bind() failed on " + host + ":" +
                             std::to_string(port));
  }
  sockaddr_in actual{};
  socklen_t len = sizeof actual;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&actual), &len);
  *bound_port = ntohs(actual.sin_port);
  return fd;
}

}  // namespace

UdpHost::UdpHost(UdpConfig config)
    : config_(std::move(config)),
      rng_(config_.seed * 7919 + config_.self),
      storage_(config_.storage_factory ? config_.storage_factory()
                                       : std::make_unique<MemStableStorage>()),
      epoch_(std::chrono::steady_clock::now()) {
  ABCAST_CHECK(config_.self < config_.peers.size());

  if (config_.prebound_fd >= 0) {
    // Adopt a socket bound by the caller (make_local_udp_cluster binds the
    // whole peer table before constructing any host).
    fd_ = config_.prebound_fd;
    const int flags = ::fcntl(fd_, F_GETFL, 0);
    ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
    sockaddr_in actual{};
    socklen_t len = sizeof actual;
    ::getsockname(fd_, reinterpret_cast<sockaddr*>(&actual), &len);
    local_port_ = ntohs(actual.sin_port);
  } else {
    const auto& me = config_.peers[config_.self];
    fd_ = make_udp_socket(me.host, me.port, &local_port_);
  }

  // Resolve peers once; index = pid.
  for (const auto& peer : config_.peers) {
    std::uint32_t ip = 0;
    if (::inet_pton(AF_INET, peer.host.c_str(), &ip) != 1) {
      ::close(fd_);
      throw std::runtime_error("bad peer address: " + peer.host);
    }
    peer_addrs_.emplace_back(ip, peer.port);
  }

  if (config_.batch.enabled) {
    ABCAST_CHECK(config_.batch.recv_batch >= 1);
    ABCAST_CHECK(config_.batch.send_batch >= 1);
    recv_ring_.assign(config_.batch.recv_batch, Bytes(kMaxDatagram));
    recv_hdrs_.resize(config_.batch.recv_batch);
    recv_iovs_.resize(config_.batch.recv_batch);
    recv_addrs_.resize(config_.batch.recv_batch);
    send_hdrs_.resize(config_.batch.send_batch);
    send_iovs_.resize(config_.batch.send_batch);
    send_addrs_.resize(config_.batch.send_batch);
  }

  if (config_.registry != nullptr) {
    const obs::Labels labels{{"node", std::to_string(config_.self)}};
    metrics_group_ = config_.registry->group();
    metrics_group_.bind("net_send_syscalls", labels, &metrics_.send_syscalls);
    metrics_group_.bind("net_send_datagrams", labels,
                        &metrics_.send_datagrams);
    metrics_group_.bind("net_send_failures", labels, &metrics_.send_failures);
    metrics_group_.bind("net_recv_syscalls", labels, &metrics_.recv_syscalls);
    metrics_group_.bind("net_recv_datagrams", labels,
                        &metrics_.recv_datagrams);
    metrics_group_.bind("net_recv_errors", labels, &metrics_.recv_errors);
  }

  if (::pipe(wake_fds_) != 0) {
    ::close(fd_);
    throw std::runtime_error("pipe() failed");
  }
  const int wf = ::fcntl(wake_fds_[0], F_GETFL, 0);
  ::fcntl(wake_fds_[0], F_SETFL, wf | O_NONBLOCK);

  thread_ = std::thread([this] { loop(); });
}

UdpHost::~UdpHost() {
  shutdown();
  if (fd_ >= 0) ::close(fd_);
  if (wake_fds_[0] >= 0) ::close(wake_fds_[0]);
  if (wake_fds_[1] >= 0) ::close(wake_fds_[1]);
}

void UdpHost::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  wake();
  if (thread_.joinable()) thread_.join();
}

void UdpHost::wake() {
  const char b = 1;
  [[maybe_unused]] const auto n = ::write(wake_fds_[1], &b, 1);
}

TimePoint UdpHost::now() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

TimerId UdpHost::schedule_after(Duration delay, std::function<void()> fn) {
  if (delay < 0) delay = 0;
  std::uint64_t id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Task t;
    t.due = now() + delay;
    t.seq = next_seq_++;
    t.incarnation = incarnation_;
    t.fn = std::move(fn);
    id = t.seq;
    live_timers_.insert(id);
    tasks_.push(std::move(t));
  }
  wake();
  return id;
}

void UdpHost::cancel_timer(TimerId id) {
  std::lock_guard<std::mutex> lock(mu_);
  // Erasing from the live set both cancels the timer and bounds the
  // bookkeeping: an id for a timer that already fired (or belonged to a
  // previous incarnation) is simply absent, so cancel-after-fire is a no-op
  // instead of a leaked tombstone.
  live_timers_.erase(id);
}

std::size_t UdpHost::pending_timer_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_timers_.size();
}

Bytes UdpHost::make_frame(const Wire& msg) const {
  BufWriter w;
  w.u32(config_.self);  // frame: sender pid + wire
  msg.encode(w);
  return std::move(w).take();
}

void UdpHost::fill_dest(ProcessId to, sockaddr_in* addr) const {
  std::memset(addr, 0, sizeof *addr);
  addr->sin_family = AF_INET;
  addr->sin_addr.s_addr = peer_addrs_[to].first;
  addr->sin_port = htons(peer_addrs_[to].second);
}

void UdpHost::send_frame(ProcessId to, const Bytes& frame) {
  if (frame.size() > kMaxDatagram) {
    metrics_.send_failures += 1;  // UDP cannot carry it; drop (unreliable)
    return;
  }
  sockaddr_in addr;
  fill_dest(to, &addr);
  const auto n =
      ::sendto(fd_, frame.data(), frame.size(), 0,
               reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
  metrics_.send_syscalls += 1;
  if (n < 0) {
    metrics_.send_failures += 1;  // full buffers etc.: a lost
                                  // datagram, which UDP permits
  } else {
    metrics_.send_datagrams += 1;
  }
}

void UdpHost::queue_frame(ProcessId to, const SharedBytes& frame) {
  if (frame.size() > kMaxDatagram) {
    metrics_.send_failures += 1;
    return;
  }
  send_queue_.push_back(PendingSend{to, frame});
}

void UdpHost::send(ProcessId to, const Wire& msg) {
  ABCAST_CHECK(to < peer_addrs_.size());
  if (config_.batch.enabled) {
    queue_frame(to, SharedBytes(make_frame(msg)));
  } else {
    send_frame(to, make_frame(msg));
  }
}

void UdpHost::multisend(const Wire& msg) {
  if (config_.batch.enabled) {
    // One encode, one refcounted frame, group_size() queue entries — and
    // (send_batch permitting) one sendmmsg for the lot at the pass flush.
    const SharedBytes frame(make_frame(msg));
    for (ProcessId to = 0; to < group_size(); ++to) queue_frame(to, frame);
    return;
  }
  const Bytes frame = make_frame(msg);  // one encode for all recipients
  for (ProcessId to = 0; to < group_size(); ++to) send_frame(to, frame);
}

void UdpHost::flush_send_queue() {
  std::size_t done = 0;
  while (done < send_queue_.size()) {
    const std::size_t batch = std::min<std::size_t>(
        config_.batch.send_batch, send_queue_.size() - done);
    for (std::size_t i = 0; i < batch; ++i) {
      const PendingSend& p = send_queue_[done + i];
      const Bytes& frame = p.frame.get();
      send_iovs_[i].iov_base = const_cast<std::uint8_t*>(frame.data());
      send_iovs_[i].iov_len = frame.size();
      fill_dest(p.to, &send_addrs_[i]);
      std::memset(&send_hdrs_[i], 0, sizeof send_hdrs_[i]);
      send_hdrs_[i].msg_hdr.msg_name = &send_addrs_[i];
      send_hdrs_[i].msg_hdr.msg_namelen = sizeof send_addrs_[i];
      send_hdrs_[i].msg_hdr.msg_iov = &send_iovs_[i];
      send_hdrs_[i].msg_hdr.msg_iovlen = 1;
    }
    const int sent = ::sendmmsg(fd_, send_hdrs_.data(),
                                static_cast<unsigned>(batch), 0);
    metrics_.send_syscalls += 1;
    if (sent < 0) {
      if (errno == EINTR) continue;
      // EAGAIN / hard error: drop the rest of the queue. Same contract as
      // the unbatched path's failed sendto — a lost datagram, which the
      // protocol's retransmission machinery already tolerates.
      metrics_.send_failures += send_queue_.size() - done;
      break;
    }
    metrics_.send_datagrams += static_cast<std::uint64_t>(sent);
    done += static_cast<std::size_t>(sent);
  }
  send_queue_.clear();
}

void UdpHost::flush_io() {
  // Durability BEFORE visibility: a deferred-sync storage backend must make
  // this pass's log records crash-proof before any datagram that could
  // reveal them leaves the process (DESIGN.md §16). Throwing here follows
  // the StorageIoError contract: log either completes or the process dies.
  storage_->flush();
  if (!send_queue_.empty()) flush_send_queue();
}

void UdpHost::start_node(const NodeFactory& factory, bool recovering) {
  std::promise<void> done;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Task t;
    t.due = now();
    t.seq = next_seq_++;
    t.fn = [this, &factory, recovering, &done] {
      ABCAST_CHECK_MSG(node_ == nullptr, "udp node already up");
      node_ = factory(*this);
      up_.store(true);
      node_->start(recovering);
      done.set_value();
    };
    tasks_.push(std::move(t));
  }
  wake();
  done.get_future().get();
}

void UdpHost::crash_node() {
  std::promise<void> done;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Task t;
    t.due = now();
    t.seq = next_seq_++;
    t.fn = [this, &done] {
      ABCAST_CHECK_MSG(node_ != nullptr, "udp node already down");
      up_.store(false);
      node_.reset();
      send_queue_.clear();  // unsent datagrams die with the process
      {
        std::lock_guard<std::mutex> inner(mu_);
        incarnation_ += 1;
        live_timers_.clear();  // ids of the dead incarnation can never fire
      }
      done.set_value();
    };
    tasks_.push(std::move(t));
  }
  wake();
  done.get_future().get();
}

bool UdpHost::call(const std::function<void()>& fn) {
  ABCAST_CHECK(std::this_thread::get_id() != thread_.get_id());
  std::promise<bool> done;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Task t;
    t.due = now();
    t.seq = next_seq_++;
    t.fn = [this, &fn, &done] {
      if (node_ == nullptr) {
        done.set_value(false);
        return;
      }
      fn();
      done.set_value(true);
    };
    tasks_.push(std::move(t));
  }
  wake();
  return done.get_future().get();
}

void UdpHost::handle_datagram(const std::uint8_t* data, std::size_t size) {
  if (node_ == nullptr) return;  // down: arriving datagrams are lost
  try {
    BufReader r(data, size);
    const ProcessId from = r.u32();
    const Wire wire = Wire::decode(r);
    r.expect_done();
    if (from >= config_.peers.size()) return;
    node_->on_message(from, wire);
  } catch (const CodecError&) {
    // Malformed datagram (stray traffic): drop, as UDP semantics allow.
  }
}

void UdpHost::drain_socket() {
  if (config_.batch.enabled) {
    drain_socket_batched();
    return;
  }
  std::uint8_t buf[kMaxDatagram];
  for (;;) {
    const auto n = ::recvfrom(fd_, buf, sizeof buf, 0, nullptr, nullptr);
    metrics_.recv_syscalls += 1;
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno != EAGAIN && errno != EWOULDBLOCK) metrics_.recv_errors += 1;
      return;  // would-block: socket drained; real errors are counted
    }
    metrics_.recv_datagrams += 1;
    handle_datagram(buf, static_cast<std::size_t>(n));
  }
}

void UdpHost::drain_socket_batched() {
  const unsigned batch = config_.batch.recv_batch;
  for (;;) {
    for (unsigned i = 0; i < batch; ++i) {
      recv_iovs_[i].iov_base = recv_ring_[i].data();
      recv_iovs_[i].iov_len = recv_ring_[i].size();
      std::memset(&recv_hdrs_[i], 0, sizeof recv_hdrs_[i]);
      recv_hdrs_[i].msg_hdr.msg_name = &recv_addrs_[i];
      recv_hdrs_[i].msg_hdr.msg_namelen = sizeof recv_addrs_[i];
      recv_hdrs_[i].msg_hdr.msg_iov = &recv_iovs_[i];
      recv_hdrs_[i].msg_hdr.msg_iovlen = 1;
    }
    const int n = ::recvmmsg(fd_, recv_hdrs_.data(), batch, 0, nullptr);
    metrics_.recv_syscalls += 1;
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno != EAGAIN && errno != EWOULDBLOCK) metrics_.recv_errors += 1;
      return;
    }
    metrics_.recv_datagrams += static_cast<std::uint64_t>(n);
    for (int i = 0; i < n; ++i) {
      handle_datagram(recv_ring_[static_cast<std::size_t>(i)].data(),
                      recv_hdrs_[static_cast<std::size_t>(i)].msg_len);
    }
    if (static_cast<unsigned>(n) < batch) return;  // socket drained
  }
}

void UdpHost::loop() {
  for (;;) {
    // End-of-pass I/O barrier: everything the previous pass logged becomes
    // durable, then everything it queued goes out, then we sleep.
    flush_io();

    // Compute poll timeout from the earliest due task.
    int timeout_ms = 1000;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_) return;
      if (!tasks_.empty()) {
        const auto wait = tasks_.top().due - now();
        timeout_ms = wait <= 0 ? 0 : static_cast<int>(wait / 1'000'000 + 1);
      }
    }

    pollfd fds[2];
    fds[0] = {fd_, POLLIN, 0};
    fds[1] = {wake_fds_[0], POLLIN, 0};
    const int pr = ::poll(fds, 2, timeout_ms);
    if (pr < 0) {
      if (errno == EINTR) continue;
      // Unspecified revents on failure: fall through with the zeroed
      // revents so due tasks still run, rather than reading garbage.
      fds[0].revents = 0;
      fds[1].revents = 0;
    }

    if (fds[1].revents & POLLIN) {
      std::uint8_t sink[64];
      while (::read(wake_fds_[0], sink, sizeof sink) > 0) {
      }
    }
    if (fds[0].revents & POLLIN) drain_socket();

    // Run everything due.
    for (;;) {
      Task task;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (stop_) return;
        if (tasks_.empty() || tasks_.top().due > now()) break;
        task = tasks_.top();
        tasks_.pop();
        if (task.incarnation != 0) {
          if (task.incarnation != incarnation_) continue;
          // Fire only timers still alive; erasing keeps the table bounded
          // by outstanding timers (cancel/fire both remove the entry).
          if (live_timers_.erase(task.seq) == 0) continue;
          if (node_ == nullptr) continue;
        }
      }
      task.fn();
    }
  }
}

std::vector<std::unique_ptr<UdpHost>> make_local_udp_cluster(
    std::uint32_t n, std::uint64_t seed, const UdpBatchConfig& batch,
    obs::MetricsRegistry* registry,
    std::function<std::unique_ptr<StableStorage>()> storage_factory) {
  ABCAST_CHECK(n >= 1);
  // Bind every socket up front, then hand the live fds to the hosts via
  // UdpConfig::prebound_fd. Each port is bound exactly once and never
  // released, so the old reserve/close/rebind race (another process
  // grabbing the port inside the window) cannot happen.
  std::vector<int> fds(n, -1);
  std::vector<std::uint16_t> ports(n, 0);
  for (std::uint32_t i = 0; i < n; ++i) {
    fds[i] = make_udp_socket("127.0.0.1", 0, &ports[i]);
  }
  std::vector<UdpPeer> peers;
  for (std::uint32_t i = 0; i < n; ++i) {
    peers.push_back(UdpPeer{"127.0.0.1", ports[i]});
  }
  std::vector<std::unique_ptr<UdpHost>> hosts;
  for (std::uint32_t i = 0; i < n; ++i) {
    UdpConfig cfg;
    cfg.self = i;
    cfg.peers = peers;
    cfg.seed = seed;
    cfg.batch = batch;
    cfg.prebound_fd = fds[i];
    cfg.registry = registry;
    cfg.storage_factory = storage_factory;
    try {
      hosts.push_back(std::make_unique<UdpHost>(cfg));
    } catch (...) {
      for (std::uint32_t j = i; j < n; ++j) ::close(fds[j]);
      throw;
    }
    fds[i] = -1;  // ownership transferred
  }
  return hosts;
}

}  // namespace abcast::net
