// Real network transport: the Env interface over UDP sockets.
//
// The paper's transport (§3.1) is an unreliable, duplicating, non-FIFO
// datagram service with fair-lossy channels — which is exactly what UDP
// is. This host runs one process of the group over a real socket: every
// protocol retransmission mechanism (gossip, consensus retries, decided
// backoff, fill ticks) that the simulator exercised against injected loss
// here covers genuine kernel-buffer drops and datagram loss.
//
// Structure mirrors the rt runtime: one event-loop thread per host,
// poll()-driven with the timer queue's next deadline as the poll timeout.
// Datagrams are framed as [u32 sender pid][Wire]; anything malformed or
// from an unknown peer is dropped (CodecError can never propagate past the
// loop — unreliable transport semantics).
//
// Batched I/O (DESIGN.md §16): with UdpBatchConfig::enabled the host
// coalesces syscalls at both ends of the hot path. Outbound frames queue on
// a loop-thread-only send queue and are flushed with sendmmsg() once per
// event-loop pass — each mmsghdr carries its own destination, so one
// syscall covers every recipient of a multisend plus everything else the
// pass produced. Inbound, recvmmsg() drains up to recv_batch datagrams per
// syscall into a preallocated buffer ring feeding the same decode path.
// The flush point doubles as the storage durability barrier: each pass runs
// storage().flush() BEFORE releasing queued datagrams, so a deferred-sync
// backend (SegmentedLogStorage) is externally indistinguishable from a
// synchronous one — classic group commit.
//
// Limitations (documented, inherent to UDP): a datagram larger than the
// ~64 KB UDP limit cannot be sent and is silently dropped, so deployments
// with long histories should enable application checkpointing + trimmed
// state transfer to keep state messages small.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <tuple>
#include <unordered_set>
#include <vector>

#include "common/relaxed_counter.hpp"
#include "common/rng.hpp"
#include "env/env.hpp"
#include "obs/metrics.hpp"
#include "storage/mem_storage.hpp"

// Forward-declared here so the header stays free of <sys/socket.h>; defined
// in the .cpp against the real kernel structs.
struct mmsghdr;
struct iovec;
struct sockaddr_in;

namespace abcast::net {

/// A peer endpoint (IPv4). Index in the peer table = ProcessId.
struct UdpPeer {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

/// Syscall batching knobs. Off by default: the one-syscall-per-datagram
/// path remains the reference behavior; benches and tests flip this on to
/// measure/exercise the batched engine.
struct UdpBatchConfig {
  bool enabled = false;
  /// Max datagrams drained per recvmmsg() call (buffer ring size).
  std::uint32_t recv_batch = 16;
  /// Max datagrams flushed per sendmmsg() call.
  std::uint32_t send_batch = 16;
};

/// Transport-level counters, bound into the metrics registry (when one is
/// configured) under net_* names — see EXPERIMENTS.md metrics index. The
/// syscall/datagram pairs are what the batching bench reads: batching on
/// should show send_syscalls << send_datagrams.
struct NetMetrics {
  RelaxedU64 send_syscalls;   // sendto/sendmmsg calls issued
  RelaxedU64 send_datagrams;  // datagrams handed to the kernel
  RelaxedU64 send_failures;   // oversized or kernel-rejected datagrams
  RelaxedU64 recv_syscalls;   // recvfrom/recvmmsg calls issued
  RelaxedU64 recv_datagrams;  // datagrams received
  RelaxedU64 recv_errors;     // receive-side errno other than would-block
};

struct UdpConfig {
  ProcessId self = 0;
  std::vector<UdpPeer> peers;
  std::uint64_t seed = 1;
  /// Stable storage for this host; defaults to MemStableStorage.
  std::function<std::unique_ptr<StableStorage>()> storage_factory;
  UdpBatchConfig batch;
  /// An already-bound UDP socket to adopt instead of binding
  /// peers[self] (ownership transfers; the host closes it). This is how
  /// make_local_udp_cluster avoids the classic reserve/release/rebind port
  /// race: every socket is bound exactly once, before any host starts.
  int prebound_fd = -1;
  /// Optional registry for net_* counter bindings; must outlive the host.
  obs::MetricsRegistry* registry = nullptr;
};

class UdpHost final : public Env {
 public:
  /// Binds a socket to peers[config.self] (port 0 = ephemeral; see
  /// local_port()) — or adopts config.prebound_fd — and starts the event
  /// loop. Throws std::runtime_error on socket errors.
  explicit UdpHost(UdpConfig config);
  ~UdpHost() override;

  // Env (called from the event-loop thread only)
  ProcessId self() const override { return config_.self; }
  std::uint32_t group_size() const override {
    return static_cast<std::uint32_t>(config_.peers.size());
  }
  TimePoint now() const override;
  TimerId schedule_after(Duration delay, std::function<void()> fn) override;
  void cancel_timer(TimerId id) override;
  void send(ProcessId to, const Wire& msg) override;
  /// Frames the datagram once ([u32 self][Wire]) and sends it to every
  /// peer — one encode per multisend instead of one per recipient. Under
  /// batching the copies are queue entries sharing one refcounted frame.
  void multisend(const Wire& msg) override;
  StableStorage& storage() override { return *storage_; }
  Rng& rng() override { return rng_; }
  obs::MetricsRegistry* metrics_registry() override {
    return config_.registry;
  }

  // ---- lifecycle (external threads) --------------------------------------
  /// Constructs the protocol stack via `factory` and starts it.
  void start_node(const NodeFactory& factory, bool recovering);
  /// Crash: destroys the stack (volatile state dies); the socket stays
  /// open but arriving datagrams are dropped, like the paper's model.
  void crash_node();

  /// Runs `fn` on the event-loop thread and waits; false if down.
  bool call(const std::function<void()>& fn);

  bool is_up() const { return up_.load(); }
  /// The actually bound port (useful when configured with port 0).
  std::uint16_t local_port() const { return local_port_; }
  NodeApp* node_unsafe() { return node_.get(); }

  /// Datagrams that failed to send (e.g. oversized) — observability for
  /// the UDP size limitation.
  std::uint64_t send_failures() const {
    return metrics_.send_failures.load();
  }
  const NetMetrics& net_metrics() const { return metrics_; }

  /// Timer-table entries currently alive (scheduled and neither fired nor
  /// cancelled). Regression hook for the cancelled-timer leak: stays
  /// bounded by the number of OUTSTANDING timers no matter how many
  /// cancel/fire cycles have run.
  std::size_t pending_timer_entries() const;

  void shutdown();

 private:
  struct Task {
    TimePoint due = 0;
    std::uint64_t seq = 0;
    std::uint64_t incarnation = 0;  // 0 = not incarnation-bound
    std::function<void()> fn;

    bool operator>(const Task& o) const {
      return std::tie(due, seq) > std::tie(o.due, o.seq);
    }
  };

  /// One queued outbound datagram (batched mode). The frame is refcounted:
  /// a multisend queues group_size() entries over a single encode.
  struct PendingSend {
    ProcessId to = 0;
    SharedBytes frame;
  };

  void loop();
  void drain_socket();
  void drain_socket_batched();
  void handle_datagram(const std::uint8_t* data, std::size_t size);
  /// The per-pass I/O barrier: storage flush first (durability), THEN the
  /// queued datagrams (visibility). No-ops when batching is off except for
  /// the storage flush, which deferred-sync backends always need.
  void flush_io();
  void flush_send_queue();
  void wake();
  Bytes make_frame(const Wire& msg) const;
  void send_frame(ProcessId to, const Bytes& frame);
  void queue_frame(ProcessId to, const SharedBytes& frame);
  void fill_dest(ProcessId to, sockaddr_in* addr) const;

  UdpConfig config_;
  Rng rng_;
  std::unique_ptr<StableStorage> storage_;
  int fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // self-pipe to interrupt poll()
  std::uint16_t local_port_ = 0;
  std::vector<std::pair<std::uint32_t, std::uint16_t>> peer_addrs_;
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mu_;
  std::priority_queue<Task, std::vector<Task>, std::greater<>> tasks_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t incarnation_ = 1;
  /// Incarnation-bound timers scheduled but not yet fired or cancelled.
  /// cancel_timer erases; the pop path fires only ids still present. This
  /// replaces the old grow-only cancelled-ids list, whose entries leaked
  /// whenever a timer fired (or died with its incarnation) after cancel.
  std::unordered_set<std::uint64_t> live_timers_;
  bool stop_ = false;

  std::atomic<bool> up_{false};
  NetMetrics metrics_;
  obs::MetricsGroup metrics_group_;
  std::unique_ptr<NodeApp> node_;  // event-loop thread only

  // Batched-I/O state, event-loop thread only (Env serializes callbacks).
  std::vector<PendingSend> send_queue_;
  std::vector<Bytes> recv_ring_;  // recv_batch preallocated datagram buffers
  std::vector<mmsghdr> send_hdrs_, recv_hdrs_;
  std::vector<iovec> send_iovs_, recv_iovs_;
  std::vector<sockaddr_in> send_addrs_, recv_addrs_;

  std::thread thread_;  // declared last: joins before members die
};

/// Convenience for tests and demos: builds n hosts on ephemeral localhost
/// ports and wires their peer tables together. All sockets are bound before
/// any host is constructed (via UdpConfig::prebound_fd), so there is no
/// window where a reserved port could be lost to another process.
std::vector<std::unique_ptr<UdpHost>> make_local_udp_cluster(
    std::uint32_t n, std::uint64_t seed = 1, const UdpBatchConfig& batch = {},
    obs::MetricsRegistry* registry = nullptr,
    std::function<std::unique_ptr<StableStorage>()> storage_factory = {});

}  // namespace abcast::net
