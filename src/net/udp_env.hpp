// Real network transport: the Env interface over UDP sockets.
//
// The paper's transport (§3.1) is an unreliable, duplicating, non-FIFO
// datagram service with fair-lossy channels — which is exactly what UDP
// is. This host runs one process of the group over a real socket: every
// protocol retransmission mechanism (gossip, consensus retries, decided
// backoff, fill ticks) that the simulator exercised against injected loss
// here covers genuine kernel-buffer drops and datagram loss.
//
// Structure mirrors the rt runtime: one event-loop thread per host,
// poll()-driven with the timer queue's next deadline as the poll timeout.
// Datagrams are framed as [u32 sender pid][Wire]; anything malformed or
// from an unknown peer is dropped (CodecError can never propagate past the
// loop — unreliable transport semantics).
//
// Limitations (documented, inherent to UDP): a datagram larger than the
// ~64 KB UDP limit cannot be sent and is silently dropped, so deployments
// with long histories should enable application checkpointing + trimmed
// state transfer to keep state messages small.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "env/env.hpp"
#include "storage/mem_storage.hpp"

namespace abcast::net {

/// A peer endpoint (IPv4). Index in the peer table = ProcessId.
struct UdpPeer {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

struct UdpConfig {
  ProcessId self = 0;
  std::vector<UdpPeer> peers;
  std::uint64_t seed = 1;
  /// Stable storage for this host; defaults to MemStableStorage.
  std::function<std::unique_ptr<StableStorage>()> storage_factory;
};

class UdpHost final : public Env {
 public:
  /// Binds a socket to peers[config.self] (port 0 = ephemeral; see
  /// local_port()) and starts the event loop. Throws std::runtime_error on
  /// socket errors.
  explicit UdpHost(UdpConfig config);
  ~UdpHost() override;

  // Env (called from the event-loop thread only)
  ProcessId self() const override { return config_.self; }
  std::uint32_t group_size() const override {
    return static_cast<std::uint32_t>(config_.peers.size());
  }
  TimePoint now() const override;
  TimerId schedule_after(Duration delay, std::function<void()> fn) override;
  void cancel_timer(TimerId id) override;
  void send(ProcessId to, const Wire& msg) override;
  /// Frames the datagram once ([u32 self][Wire]) and sendto()s it to every
  /// peer — one encode per multisend instead of one per recipient.
  void multisend(const Wire& msg) override;
  StableStorage& storage() override { return *storage_; }
  Rng& rng() override { return rng_; }

  // ---- lifecycle (external threads) --------------------------------------
  /// Constructs the protocol stack via `factory` and starts it.
  void start_node(const NodeFactory& factory, bool recovering);
  /// Crash: destroys the stack (volatile state dies); the socket stays
  /// open but arriving datagrams are dropped, like the paper's model.
  void crash_node();

  /// Runs `fn` on the event-loop thread and waits; false if down.
  bool call(const std::function<void()>& fn);

  bool is_up() const { return up_.load(); }
  /// The actually bound port (useful when configured with port 0).
  std::uint16_t local_port() const { return local_port_; }
  NodeApp* node_unsafe() { return node_.get(); }

  /// Datagrams that failed to send (e.g. oversized) — observability for
  /// the UDP size limitation.
  std::uint64_t send_failures() const { return send_failures_.load(); }

  void shutdown();

 private:
  struct Task {
    TimePoint due = 0;
    std::uint64_t seq = 0;
    std::uint64_t incarnation = 0;  // 0 = not incarnation-bound
    std::function<void()> fn;

    bool operator>(const Task& o) const {
      return std::tie(due, seq) > std::tie(o.due, o.seq);
    }
  };

  void loop();
  void drain_socket();
  void wake();
  Bytes make_frame(const Wire& msg) const;
  void send_frame(ProcessId to, const Bytes& frame);

  UdpConfig config_;
  Rng rng_;
  std::unique_ptr<StableStorage> storage_;
  int fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // self-pipe to interrupt poll()
  std::uint16_t local_port_ = 0;
  std::vector<std::pair<std::uint32_t, std::uint16_t>> peer_addrs_;
  std::chrono::steady_clock::time_point epoch_;

  std::mutex mu_;
  std::priority_queue<Task, std::vector<Task>, std::greater<>> tasks_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t incarnation_ = 1;
  std::vector<std::uint64_t> cancelled_;
  bool stop_ = false;

  std::atomic<bool> up_{false};
  std::atomic<std::uint64_t> send_failures_{0};
  std::unique_ptr<NodeApp> node_;  // event-loop thread only
  std::thread thread_;
};

/// Convenience for tests and demos: builds n hosts on ephemeral localhost
/// ports and wires their peer tables together.
std::vector<std::unique_ptr<UdpHost>> make_local_udp_cluster(
    std::uint32_t n, std::uint64_t seed = 1);

}  // namespace abcast::net
