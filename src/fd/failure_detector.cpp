#include "fd/failure_detector.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/codec.hpp"
#include "common/logging.hpp"
#include "storage/durable_counter.hpp"

namespace abcast {
namespace {

constexpr const char* kEpochKey = "epoch";

struct HeartbeatMsg {
  std::uint64_t epoch = 0;

  void encode(BufWriter& w) const { w.u64(epoch); }
  static HeartbeatMsg decode(BufReader& r) { return HeartbeatMsg{r.u64()}; }
};

}  // namespace

EpochFailureDetector::EpochFailureDetector(Env& env, FdConfig config)
    : env_(env), config_(config), storage_(env.storage(), "fd"),
      peers_(env.group_size()) {
  ABCAST_CHECK(config_.heartbeat_period > 0);
  ABCAST_CHECK(config_.initial_timeout > 0);
}

void EpochFailureDetector::start(bool recovering) {
  (void)recovering;  // the epoch record itself tells us whether we lived before
  // Dual-slot counter: a torn write can never roll the epoch back, which
  // would reuse incarnation numbers (and therefore message ids) and make
  // the duplicate-suppression logic drop fresh messages.
  epoch_ = DurableCounter(storage_, kEpochKey).bump();

  const TimePoint now = env_.now();
  for (ProcessId p = 0; p < env_.group_size(); ++p) {
    auto& st = peers_[p];
    st.timeout = config_.initial_timeout;
    // Start optimistic: trust everyone until the first timeout expires.
    st.trusted = true;
    st.last_heard = now;
  }
  tick();
}

void EpochFailureDetector::tick() {
  env_.multisend(make_wire(MsgType::kFdHeartbeat, HeartbeatMsg{epoch_}));

  const TimePoint now = env_.now();
  for (ProcessId p = 0; p < env_.group_size(); ++p) {
    if (p == env_.self()) continue;
    auto& st = peers_[p];
    if (st.trusted && now - st.last_heard > st.timeout) {
      st.trusted = false;
      ABCAST_LOG(kDebug, "fd@" << env_.self() << " suspects " << p);
    }
  }

  env_.schedule_after(config_.heartbeat_period, [this] { tick(); });
}

void EpochFailureDetector::on_message(ProcessId from, const Wire& msg) {
  ABCAST_CHECK(msg.type == MsgType::kFdHeartbeat);
  const auto hb = decode_from_bytes<HeartbeatMsg>(msg.payload);
  auto& st = peers_[from];
  const bool was_suspected = st.ever_heard && !st.trusted && from != env_.self();
  if (was_suspected && hb.epoch == st.epoch) {
    // The peer was alive all along — we were too impatient. Back off.
    wrong_suspicions_ += 1;
    st.timeout += config_.timeout_increment;
  }
  st.last_heard = env_.now();
  st.epoch = std::max(st.epoch, hb.epoch);
  st.trusted = true;
  st.ever_heard = true;
}

bool EpochFailureDetector::trusted(ProcessId p) const {
  ABCAST_CHECK(p < peers_.size());
  if (p == env_.self()) return true;
  return peers_[p].trusted;
}

ProcessId EpochFailureDetector::leader() const {
  for (ProcessId p = 0; p < env_.group_size(); ++p) {
    if (trusted(p)) return p;
  }
  return env_.self();
}

std::vector<ProcessId> EpochFailureDetector::trusted_set() const {
  std::vector<ProcessId> out;
  for (ProcessId p = 0; p < env_.group_size(); ++p) {
    if (trusted(p)) out.push_back(p);
  }
  return out;
}

std::uint64_t EpochFailureDetector::epoch_of(ProcessId p) const {
  ABCAST_CHECK(p < peers_.size());
  if (p == env_.self()) return epoch_;
  return peers_[p].epoch;
}

}  // namespace abcast
