// Pluggable failure-detector interface.
//
// The paper's protocol "does not require the explicit use of failure
// detectors (although those are required to solve the Consensus problem) —
// thus it is not bound to any particular failure detection mechanism"
// (§3.5). Two detector families from the literature it cites are provided:
//
//   * EpochFailureDetector — unbounded output (epoch counters), in the
//     style of Aguilera-Chen-Toueg [1]: observers can tell "still up" from
//     "crashed and recovered", and the epoch doubles as a free incarnation
//     number for the upper layers.
//   * SuspectListDetector — bounded output (just a suspect list), in the
//     style of Hurfin-Mostefaoui-Raynal [11] / Oliveira et al. [14]: no
//     epochs, so the stack must log its own incarnation counter instead.
#pragma once

#include <memory>
#include <vector>

#include "env/env.hpp"
#include "fd/leader_oracle.hpp"

namespace abcast {

struct FdConfig;  // defined in failure_detector.hpp

class FailureDetector : public LeaderOracle {
 public:
  /// Starts heartbeating and monitoring. Call once per incarnation.
  virtual void start(bool recovering) = 0;

  virtual bool handles(MsgType type) const = 0;
  virtual void on_message(ProcessId from, const Wire& msg) = 0;

  /// All currently trusted processes (always includes self).
  virtual std::vector<ProcessId> trusted_set() const = 0;

  /// This process's incarnation number, if the detector maintains one
  /// (epoch-based detectors log it in stable storage); 0 when the detector
  /// has bounded output and the caller must supply its own.
  virtual std::uint64_t incarnation() const { return 0; }

  /// Wrong-suspicion count — an accuracy metric for experiments.
  virtual std::uint64_t wrong_suspicions() const = 0;
};

enum class FdKind { kEpoch, kSuspectList };

const char* to_string(FdKind kind);

std::unique_ptr<FailureDetector> make_failure_detector(FdKind kind, Env& env,
                                                       const FdConfig& config);

}  // namespace abcast
