// Epoch-based failure detector for the crash-recovery model.
//
// Follows the style of Aguilera, Chen & Toueg (DISC'98): each process keeps
// an *epoch* counter in stable storage, bumped on every recovery, and
// periodically multicasts a heartbeat carrying it. A peer is trusted while
// heartbeats keep arriving within an adaptive timeout; the timeout grows
// whenever a suspicion proves wrong, which yields eventual accuracy once
// message delays stabilize. Epochs let observers distinguish "still up"
// from "crashed and came back" — the unbounded-output idea that avoids
// having to predict the future behaviour of bad processes.
//
// The detector also exports an Ω-style leader hint (smallest trusted id),
// consumed by the consensus engines through the LeaderOracle interface.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "env/env.hpp"
#include "fd/failure_detector_base.hpp"
#include "fd/leader_oracle.hpp"
#include "storage/scoped_storage.hpp"

namespace abcast {

struct FdConfig {
  /// Heartbeat multicast period.
  Duration heartbeat_period = millis(20);
  /// Initial per-peer suspicion timeout.
  Duration initial_timeout = millis(100);
  /// Added to a peer's timeout each time a suspicion of it proves wrong.
  Duration timeout_increment = millis(50);
};

class EpochFailureDetector final : public FailureDetector {
 public:
  /// `storage` scope used: "fd/". The detector logs exactly one record (its
  /// epoch) per start/recovery.
  EpochFailureDetector(Env& env, FdConfig config);

  /// Loads and bumps the epoch, then starts the heartbeat task. Call once.
  void start(bool recovering) override;

  /// True for datagram types this module consumes.
  bool handles(MsgType type) const override {
    return type == MsgType::kFdHeartbeat;
  }
  void on_message(ProcessId from, const Wire& msg) override;

  // LeaderOracle
  bool trusted(ProcessId p) const override;
  ProcessId leader() const override;

  /// All currently trusted processes (always includes self).
  std::vector<ProcessId> trusted_set() const override;

  /// This process's incarnation number (1 on first start).
  std::uint64_t epoch() const { return epoch_; }
  std::uint64_t incarnation() const override { return epoch_; }

  /// Last epoch heard from `p` (0 if never heard).
  std::uint64_t epoch_of(ProcessId p) const;

  /// Number of times a suspicion proved wrong (peer came back within the
  /// same epoch) — an accuracy metric for experiments.
  std::uint64_t wrong_suspicions() const override {
    return wrong_suspicions_;
  }

 private:
  struct PeerState {
    TimePoint last_heard = 0;
    Duration timeout = 0;
    std::uint64_t epoch = 0;
    bool trusted = false;
    bool ever_heard = false;
  };

  void tick();

  Env& env_;
  FdConfig config_;
  ScopedStorage storage_;
  std::uint64_t epoch_ = 0;
  std::vector<PeerState> peers_;
  std::uint64_t wrong_suspicions_ = 0;
};

}  // namespace abcast
