// Bounded-output failure detector: a plain suspect list (paper §3.5,
// citing Hurfin-Mostefaoui-Raynal and Oliveira-Guerraoui-Schiper).
//
// Heartbeats carry no epoch, so the output is bounded — but, as the paper
// notes, such detectors cannot distinguish a recovered process from one
// that never crashed. Operationally that means every flap looks like a
// wrong suspicion and grows the adaptive timeout, and the stack must log
// its own incarnation number (one extra log op per recovery compared with
// the epoch detector — reported by the E1 experiment when configured).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "fd/failure_detector.hpp"
#include "fd/failure_detector_base.hpp"

namespace abcast {

class SuspectListDetector final : public FailureDetector {
 public:
  SuspectListDetector(Env& env, FdConfig config);

  void start(bool recovering) override;
  bool handles(MsgType type) const override {
    return type == MsgType::kFdAlive;
  }
  void on_message(ProcessId from, const Wire& msg) override;

  // LeaderOracle
  bool trusted(ProcessId p) const override;
  ProcessId leader() const override;

  std::vector<ProcessId> trusted_set() const override;
  std::uint64_t wrong_suspicions() const override {
    return wrong_suspicions_;
  }

  /// The bounded output itself: currently suspected processes.
  std::vector<ProcessId> suspects() const;

 private:
  struct PeerState {
    TimePoint last_heard = 0;
    Duration timeout = 0;
    bool trusted = false;
  };

  void tick();

  Env& env_;
  FdConfig config_;
  std::vector<PeerState> peers_;
  std::uint64_t wrong_suspicions_ = 0;
};

}  // namespace abcast
