#include "fd/suspect_list_detector.hpp"

#include "common/check.hpp"
#include "common/codec.hpp"
#include "fd/failure_detector.hpp"

namespace abcast {

SuspectListDetector::SuspectListDetector(Env& env, FdConfig config)
    : env_(env), config_(config), peers_(env.group_size()) {
  ABCAST_CHECK(config_.heartbeat_period > 0);
  ABCAST_CHECK(config_.initial_timeout > 0);
}

void SuspectListDetector::start(bool recovering) {
  (void)recovering;  // nothing persistent: bounded output, no epoch log
  const TimePoint now = env_.now();
  for (auto& st : peers_) {
    st.timeout = config_.initial_timeout;
    st.trusted = true;
    st.last_heard = now;
  }
  tick();
}

void SuspectListDetector::tick() {
  // An empty payload is enough: presence is the only information carried.
  env_.multisend(Wire{MsgType::kFdAlive, {}});

  const TimePoint now = env_.now();
  for (ProcessId p = 0; p < env_.group_size(); ++p) {
    if (p == env_.self()) continue;
    auto& st = peers_[p];
    if (st.trusted && now - st.last_heard > st.timeout) {
      st.trusted = false;
    }
  }
  env_.schedule_after(config_.heartbeat_period, [this] { tick(); });
}

void SuspectListDetector::on_message(ProcessId from, const Wire& msg) {
  ABCAST_CHECK(msg.type == MsgType::kFdAlive);
  auto& st = peers_[from];
  if (!st.trusted && from != env_.self()) {
    // Without epochs we cannot tell "was up all along" from "crashed and
    // recovered": every flap must be treated as a possible wrong suspicion,
    // so the timeout grows on all of them (the cost of bounded output the
    // paper alludes to in §3.5).
    wrong_suspicions_ += 1;
    st.timeout += config_.timeout_increment;
  }
  st.last_heard = env_.now();
  st.trusted = true;
}

bool SuspectListDetector::trusted(ProcessId p) const {
  ABCAST_CHECK(p < peers_.size());
  if (p == env_.self()) return true;
  return peers_[p].trusted;
}

ProcessId SuspectListDetector::leader() const {
  for (ProcessId p = 0; p < env_.group_size(); ++p) {
    if (trusted(p)) return p;
  }
  return env_.self();
}

std::vector<ProcessId> SuspectListDetector::trusted_set() const {
  std::vector<ProcessId> out;
  for (ProcessId p = 0; p < env_.group_size(); ++p) {
    if (trusted(p)) out.push_back(p);
  }
  return out;
}

std::vector<ProcessId> SuspectListDetector::suspects() const {
  std::vector<ProcessId> out;
  for (ProcessId p = 0; p < env_.group_size(); ++p) {
    if (!trusted(p)) out.push_back(p);
  }
  return out;
}

// --------------------------------------------------------------- factory

const char* to_string(FdKind kind) {
  switch (kind) {
    case FdKind::kEpoch: return "epoch";
    case FdKind::kSuspectList: return "suspect-list";
  }
  return "?";
}

std::unique_ptr<FailureDetector> make_failure_detector(
    FdKind kind, Env& env, const FdConfig& config) {
  switch (kind) {
    case FdKind::kEpoch:
      return std::make_unique<EpochFailureDetector>(env, config);
    case FdKind::kSuspectList:
      return std::make_unique<SuspectListDetector>(env, config);
  }
  return nullptr;
}

}  // namespace abcast
