// Minimal oracle interface the consensus engines consume.
//
// The paper stresses that its Atomic Broadcast is "not bound to any
// particular failure detection mechanism"; consensus engines therefore
// depend only on this interface, and the epoch failure detector is just one
// implementation.
#pragma once

#include "common/types.hpp"

namespace abcast {

class LeaderOracle {
 public:
  virtual ~LeaderOracle() = default;

  /// True if this process currently believes `p` is up.
  virtual bool trusted(ProcessId p) const = 0;

  /// The process this oracle currently nominates to drive agreement
  /// (an Ω-style hint: eventually all good processes nominate the same
  /// good process). Always returns some process id.
  virtual ProcessId leader() const = 0;
};

}  // namespace abcast
