// Real-time runtime: the same protocol stacks driven by threads and the
// steady clock instead of the discrete-event simulator.
//
// Each process is a host with its own event-loop thread; all protocol
// callbacks (start, on_message, timers) run on that thread, preserving the
// single-threaded execution model the stacks assume. Hosts exchange Wire
// datagrams over an in-process loopback network with configurable delay,
// loss and duplication — the same fair-lossy channel semantics as the
// simulator, at wall-clock speed. Crash/recovery destroys and rebuilds the
// stack exactly like the simulated host does.
//
// This runtime exists to demonstrate (and test) that the protocol code is
// not simulator-bound; production transports (UDP sockets, etc.) would
// implement the same Env interface.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "env/env.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "storage/mem_storage.hpp"

namespace abcast::rt {

struct RtNetConfig {
  Duration delay_min = micros(100);
  Duration delay_max = millis(2);
  double drop_prob = 0.0;
  double dup_prob = 0.0;
};

struct RtConfig {
  std::uint32_t n = 3;
  std::uint64_t seed = 1;
  RtNetConfig net;
  /// Per-process stable storage; defaults to MemStableStorage (which here
  /// survives crash()/recover() but not process exit). Use
  /// FileStableStorage for on-disk durability.
  std::function<std::unique_ptr<StableStorage>(ProcessId)> storage_factory;
  /// Per-host protocol trace ring capacity (events); 0 disables tracing.
  std::size_t trace_capacity = 0;
};

class RtCluster;

class RtHost final : public Env {
 public:
  RtHost(RtCluster& cluster, ProcessId id);
  ~RtHost() override;

  // Env (called from the host thread only)
  ProcessId self() const override { return id_; }
  std::uint32_t group_size() const override;
  TimePoint now() const override;
  TimerId schedule_after(Duration delay, std::function<void()> fn) override;
  void cancel_timer(TimerId id) override;
  void send(ProcessId to, const Wire& msg) override;
  StableStorage& storage() override {
    return tracing_storage_ ? static_cast<StableStorage&>(*tracing_storage_)
                            : *storage_;
  }
  Rng& rng() override { return rng_; }
  obs::TraceRecorder* tracer() override { return recorder_.get(); }
  obs::MetricsRegistry* metrics_registry() override;

  /// This host's protocol trace, or nullptr when trace_capacity == 0.
  /// TraceRecorder is internally synchronized, so any thread may read it.
  obs::TraceRecorder* recorder() { return recorder_.get(); }

  /// Runs `fn` on the host thread (from any thread); no-op result if the
  /// host is down when the task is picked up and `only_if_up` is set.
  void post(std::function<void()> fn, bool only_if_up = true);

  /// Runs `fn` on the host thread and waits for it to finish. Returns false
  /// (without running) if the host is down.
  bool call(const std::function<void()>& fn);

  bool is_up() const { return up_.load(); }

  /// The hosted protocol stack. Host-thread only: call this exclusively
  /// from inside a call()/post() body (where it is guaranteed non-null for
  /// call()). Cast to the concrete NodeApp type the factory produces.
  NodeApp* node_unsafe() { return node_.get(); }

  /// Stops the event loop and joins the thread (idempotent). The cluster
  /// shuts every host down before destroying any of them so no in-flight
  /// task can touch a dead peer.
  void shutdown();

 private:
  friend class RtCluster;

  struct Task {
    TimePoint due = 0;
    std::uint64_t seq = 0;
    std::uint64_t incarnation = 0;  // 0 = not incarnation-bound (messages)
    bool only_if_up = true;
    std::function<void()> fn;

    bool operator>(const Task& o) const {
      return std::tie(due, seq) > std::tie(o.due, o.seq);
    }
  };

  void loop();
  void start_node(const NodeFactory& factory, bool recovering);
  void crash_node();
  void enqueue(Task task);
  void enqueue_message(TimePoint due, ProcessId from, Wire msg);

  RtCluster& cluster_;
  ProcessId id_;
  Rng rng_;
  std::unique_ptr<StableStorage> storage_;
  std::unique_ptr<obs::TraceRecorder> recorder_;    // survives crashes
  std::unique_ptr<TracingStorage> tracing_storage_;  // wraps storage_

  std::mutex mu_;
  std::condition_variable cv_;
  std::priority_queue<Task, std::vector<Task>, std::greater<>> tasks_;
  std::uint64_t next_seq_ = 1;
  // Bumped on crash so pending timers go stale. Starts at 1: a task whose
  // incarnation field is 0 is a network delivery, not a timer.
  std::uint64_t incarnation_ = 1;
  std::uint64_t cancelled_floor_seq_ = 0;
  std::vector<std::uint64_t> cancelled_;
  bool stop_ = false;

  std::atomic<bool> up_{false};
  std::unique_ptr<NodeApp> node_;  // touched on host thread only
  std::thread thread_;
};

class RtCluster {
 public:
  explicit RtCluster(RtConfig config);
  ~RtCluster();

  RtCluster(const RtCluster&) = delete;
  RtCluster& operator=(const RtCluster&) = delete;

  void set_node_factory(NodeFactory factory) { factory_ = std::move(factory); }

  void start_all();
  void start(ProcessId p);
  void crash(ProcessId p);
  void recover(ProcessId p);

  /// Blocks the calling thread until `pred` (evaluated on the caller, so it
  /// must be thread-safe) holds or the wall-clock timeout expires.
  bool wait_for(const std::function<bool()>& pred, Duration timeout,
                Duration poll = millis(5)) const;

  RtHost& host(ProcessId p);
  std::uint32_t n() const { return config_.n; }
  TimePoint now() const;

  /// Cluster-wide metrics registry (outside every crash boundary;
  /// thread-safe).
  obs::MetricsRegistry& metrics_registry() { return registry_; }

 private:
  friend class RtHost;

  void transmit(ProcessId from, ProcessId to, const Wire& msg, Rng& rng);

  RtConfig config_;
  std::chrono::steady_clock::time_point epoch_;
  obs::MetricsRegistry registry_;
  NodeFactory factory_;
  std::vector<std::unique_ptr<RtHost>> hosts_;
};

}  // namespace abcast::rt
