#include "rt/rt_cluster.hpp"

#include <chrono>
#include <future>

#include "common/check.hpp"

namespace abcast::rt {

using Clock = std::chrono::steady_clock;

// ----------------------------------------------------------------- RtHost

RtHost::RtHost(RtCluster& cluster, ProcessId id)
    : cluster_(cluster), id_(id),
      rng_(cluster.config_.seed * 1000003 + id),
      storage_(cluster.config_.storage_factory
                   ? cluster.config_.storage_factory(id)
                   : std::make_unique<MemStableStorage>()) {
  if (cluster.config_.trace_capacity > 0) {
    recorder_ = std::make_unique<obs::TraceRecorder>(
        id, cluster.config_.trace_capacity);
    recorder_->set_clock([this] { return now(); });
    tracing_storage_ = std::make_unique<TracingStorage>(
        *storage_, *recorder_, [this] { return now(); });
  }
  thread_ = std::thread([this] { loop(); });
}

obs::MetricsRegistry* RtHost::metrics_registry() {
  return &cluster_.metrics_registry();
}

RtHost::~RtHost() { shutdown(); }

void RtHost::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

std::uint32_t RtHost::group_size() const { return cluster_.n(); }

TimePoint RtHost::now() const { return cluster_.now(); }

TimerId RtHost::schedule_after(Duration delay, std::function<void()> fn) {
  if (delay < 0) delay = 0;
  std::lock_guard<std::mutex> lock(mu_);
  Task t;
  t.due = now() + delay;
  t.seq = next_seq_++;
  t.incarnation = incarnation_;
  t.only_if_up = true;
  t.fn = std::move(fn);
  const TimerId id = t.seq;
  tasks_.push(std::move(t));
  cv_.notify_all();
  return id;
}

void RtHost::cancel_timer(TimerId id) {
  std::lock_guard<std::mutex> lock(mu_);
  cancelled_.push_back(id);
}

void RtHost::send(ProcessId to, const Wire& msg) {
  cluster_.transmit(id_, to, msg, rng_);
}

void RtHost::enqueue(Task task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    task.seq = next_seq_++;
    tasks_.push(std::move(task));
  }
  cv_.notify_all();
}

void RtHost::enqueue_message(TimePoint due, ProcessId from, Wire msg) {
  Task t;
  t.due = due;
  t.incarnation = 0;  // network delivery: dropped (not deferred) when down
  t.only_if_up = true;
  t.fn = [this, from, m = std::move(msg)] {
    if (node_) node_->on_message(from, m);
  };
  enqueue(std::move(t));
}

void RtHost::post(std::function<void()> fn, bool only_if_up) {
  Task t;
  t.due = now();
  t.incarnation = 0;
  t.only_if_up = only_if_up;
  t.fn = [this, only_if_up, f = std::move(fn)] {
    if (only_if_up && node_ == nullptr) return;
    f();
  };
  enqueue(std::move(t));
}

bool RtHost::call(const std::function<void()>& fn) {
  // External threads only; calling from the host thread would self-deadlock.
  ABCAST_CHECK(std::this_thread::get_id() != thread_.get_id());
  std::promise<bool> done;
  Task t;
  t.due = now();
  t.incarnation = 0;
  t.only_if_up = false;
  t.fn = [this, &fn, &done] {
    if (node_ == nullptr) {
      done.set_value(false);
      return;
    }
    fn();
    done.set_value(true);
  };
  enqueue(std::move(t));
  return done.get_future().get();
}

void RtHost::start_node(const NodeFactory& factory, bool recovering) {
  ABCAST_CHECK(std::this_thread::get_id() != thread_.get_id());
  std::promise<void> done;
  Task t;
  t.due = now();
  t.incarnation = 0;
  t.only_if_up = false;
  t.fn = [this, &factory, recovering, &done] {
    ABCAST_CHECK_MSG(node_ == nullptr, "rt process already up");
    if (recovering && recorder_) {
      recorder_->record(obs::EventKind::kRecoverBegin, now());
    }
    node_ = factory(*this);
    up_.store(true);
    node_->start(recovering);
    if (recovering && recorder_) {
      recorder_->record(obs::EventKind::kRecoverEnd, now());
    }
    done.set_value();
  };
  enqueue(std::move(t));
  done.get_future().get();
}

void RtHost::crash_node() {
  ABCAST_CHECK(std::this_thread::get_id() != thread_.get_id());
  std::promise<void> done;
  Task t;
  t.due = now();
  t.incarnation = 0;
  t.only_if_up = false;
  t.fn = [this, &done] {
    ABCAST_CHECK_MSG(node_ != nullptr, "rt process already down");
    up_.store(false);
    node_.reset();  // volatile state dies here
    if (recorder_) recorder_->record(obs::EventKind::kCrash, now());
    {
      std::lock_guard<std::mutex> lock(mu_);
      incarnation_ += 1;  // pending timers become stale
      cancelled_.clear();
    }
    done.set_value();
  };
  enqueue(std::move(t));
  done.get_future().get();
}

void RtHost::loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    if (tasks_.empty()) {
      cv_.wait(lock);
      continue;
    }
    const TimePoint due = tasks_.top().due;
    const TimePoint current = now();
    if (due > current) {
      cv_.wait_for(lock, std::chrono::nanoseconds(due - current));
      continue;
    }
    Task task = tasks_.top();
    tasks_.pop();
    // Timer bookkeeping: skip cancelled or stale-incarnation timers.
    if (task.incarnation != 0) {
      if (task.incarnation != incarnation_) continue;
      bool was_cancelled = false;
      for (auto it = cancelled_.begin(); it != cancelled_.end(); ++it) {
        if (*it == task.seq) {
          cancelled_.erase(it);
          was_cancelled = true;
          break;
        }
      }
      if (was_cancelled) continue;
      if (node_ == nullptr) continue;
    }
    lock.unlock();
    task.fn();
    lock.lock();
  }
}

// -------------------------------------------------------------- RtCluster

RtCluster::RtCluster(RtConfig config)
    : config_(std::move(config)), epoch_(Clock::now()) {
  ABCAST_CHECK(config_.n >= 1);
  hosts_.reserve(config_.n);
  for (ProcessId p = 0; p < config_.n; ++p) {
    hosts_.push_back(std::make_unique<RtHost>(*this, p));
  }
}

RtCluster::~RtCluster() {
  for (auto& h : hosts_) h->shutdown();
}

TimePoint RtCluster::now() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              epoch_)
      .count();
}

RtHost& RtCluster::host(ProcessId p) {
  ABCAST_CHECK(p < hosts_.size());
  return *hosts_[p];
}

void RtCluster::start_all() {
  for (ProcessId p = 0; p < config_.n; ++p) start(p);
}

void RtCluster::start(ProcessId p) {
  ABCAST_CHECK_MSG(static_cast<bool>(factory_), "node factory not set");
  host(p).start_node(factory_, /*recovering=*/false);
}

void RtCluster::crash(ProcessId p) { host(p).crash_node(); }

void RtCluster::recover(ProcessId p) {
  ABCAST_CHECK_MSG(static_cast<bool>(factory_), "node factory not set");
  host(p).start_node(factory_, /*recovering=*/true);
}

bool RtCluster::wait_for(const std::function<bool()>& pred, Duration timeout,
                         Duration poll) const {
  const TimePoint deadline = now() + timeout;
  while (now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::nanoseconds(poll));
  }
  return pred();
}

void RtCluster::transmit(ProcessId from, ProcessId to, const Wire& msg,
                         Rng& rng) {
  ABCAST_CHECK(to < config_.n);
  RtHost& target = host(to);
  if (from == to) {
    target.enqueue_message(now(), from, msg);
    return;
  }
  const RtNetConfig& net = config_.net;
  if (rng.chance(net.drop_prob)) return;
  target.enqueue_message(now() + rng.uniform(net.delay_min, net.delay_max),
                         from, msg);
  if (rng.chance(net.dup_prob)) {
    target.enqueue_message(now() + rng.uniform(net.delay_min, net.delay_max),
                           from, msg);
  }
}

}  // namespace abcast::rt
