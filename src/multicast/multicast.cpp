#include "multicast/multicast.hpp"

#include <algorithm>
#include <tuple>

#include "common/check.hpp"
#include "common/codec.hpp"
#include "core/app_msg.hpp"

namespace abcast::multicast {
namespace {

// Intra-group control messages ride as AB payloads under these tags.
constexpr std::uint32_t kProposeTag = 0x4D475052;  // "MGPR"
constexpr std::uint32_t kFinalTag = 0x4D47464E;    // "MGFN"

struct ProposeMsg {
  McId id;
  std::vector<std::uint32_t> dests;
  Bytes payload;

  Bytes encode_payload() const {
    BufWriter w;
    w.u32(kProposeTag);
    w.msg_id(id);
    w.vec(dests, [](BufWriter& ww, std::uint32_t g) { ww.u32(g); });
    w.bytes(payload);
    return std::move(w).take();
  }
};

struct FinalMsg {
  McId id;
  std::uint64_t ts = 0;

  Bytes encode_payload() const {
    BufWriter w;
    w.u32(kFinalTag);
    w.msg_id(id);
    w.u64(ts);
    return std::move(w).take();
  }
};

// Inter-group datagram: pushes one group's proposal (and the multicast
// itself, so unseeded groups can bootstrap it).
struct FillMsg {
  McId id;
  std::uint32_t from_group = 0;
  std::uint64_t proposed_ts = 0;
  std::vector<std::uint32_t> dests;
  Bytes payload;

  void encode(BufWriter& w) const {
    w.msg_id(id);
    w.u32(from_group);
    w.u64(proposed_ts);
    w.vec(dests, [](BufWriter& ww, std::uint32_t g) { ww.u32(g); });
    w.bytes(payload);
  }
  static FillMsg decode(BufReader& r) {
    FillMsg m;
    m.id = r.msg_id();
    m.from_group = r.u32();
    m.proposed_ts = r.u64();
    m.dests = r.vec<std::uint32_t>([](BufReader& rr) { return rr.u32(); });
    m.payload = r.bytes();
    return m;
  }
};

}  // namespace

// ----------------------------------------------------------- MulticastNode

MulticastNode::MulticastNode(Env& env, const GroupTopology& topology,
                             MulticastConfig config, McDeliverFn deliver)
    : env_(env), topology_(topology),
      group_id_(topology_.group_of(env.self())),
      group_env_(env, topology_.groups[group_id_]) {
  topology_.validate(env.group_size());
  service_ = std::make_unique<MulticastService>(env_, topology_, group_id_,
                                                config, std::move(deliver));
  stack_ = std::make_unique<core::NodeStack>(group_env_, config.stack,
                                             *service_);
  service_->bind(stack_.get());
}

MulticastNode::~MulticastNode() = default;

void MulticastNode::start(bool recovering) {
  stack_->start(recovering);
  service_->start();
}

void MulticastNode::on_message(ProcessId from, const Wire& msg) {
  if (service_->handles(msg.type)) {
    service_->on_message(from, msg);
    return;
  }
  // Group-stack traffic arrives from group members only; translate the
  // global pid into the member index the stack expects.
  stack_->on_message(group_env_.member_index(from), msg);
}

McId MulticastNode::mcast(Bytes payload,
                          std::vector<std::uint32_t> dest_groups) {
  return service_->mcast(std::move(payload), std::move(dest_groups));
}

// -------------------------------------------------------- MulticastService

MulticastService::MulticastService(Env& env, const GroupTopology& topology,
                                   std::uint32_t group_id,
                                   MulticastConfig config,
                                   McDeliverFn deliver)
    : env_(env), topology_(topology), group_id_(group_id), config_(config),
      deliver_(std::move(deliver)) {
  ABCAST_CHECK(config_.fill_period > 0);
  // The multicast state must be reconstructible from the AB delivery
  // sequence alone; app-level checkpoint folding would hide the control
  // messages replay needs.
  ABCAST_CHECK_MSG(!config_.stack.ab.app_checkpointing,
                   "multicast does not support app_checkpointing");
  ABCAST_CHECK_MSG(!config_.stack.ab.checkpointing,
                   "multicast does not support (k, Agreed) checkpointing");
}

void MulticastService::start() {
  ABCAST_CHECK_MSG(stack_ != nullptr, "service not bound to a stack");
  fill_tick();
}

McId MulticastService::mcast(Bytes payload,
                             std::vector<std::uint32_t> dest_groups) {
  std::sort(dest_groups.begin(), dest_groups.end());
  dest_groups.erase(std::unique(dest_groups.begin(), dest_groups.end()),
                    dest_groups.end());
  ABCAST_CHECK_MSG(!dest_groups.empty(), "multicast needs destinations");
  for (const auto g : dest_groups) {
    ABCAST_CHECK_MSG(g < topology_.group_count(), "unknown group");
  }
  ABCAST_CHECK_MSG(std::find(dest_groups.begin(), dest_groups.end(),
                             group_id_) != dest_groups.end(),
                   "the initiator's own group must be a destination");

  mcast_counter_ += 1;
  ProposeMsg propose;
  propose.id = McId{env_.self(),
                    core::make_seq(stack_->incarnation(), mcast_counter_)};
  propose.dests = std::move(dest_groups);
  propose.payload = std::move(payload);
  stack_->ab().broadcast(propose.encode_payload());
  return propose.id;
}

// Every group-AB delivery lands here — the multicast state machine is a
// deterministic fold over this sequence, which is what makes recovery
// replay rebuild it exactly.
void MulticastService::deliver(const core::AppMsg& msg) {
  BufReader r(msg.payload);
  const std::uint32_t tag = r.u32();
  if (tag == kProposeTag) {
    const McId id = r.msg_id();
    auto dests = r.vec<std::uint32_t>([](BufReader& rr) { return rr.u32(); });
    Bytes payload = r.bytes();
    r.expect_done();
    on_propose(id, std::move(payload), std::move(dests));
  } else if (tag == kFinalTag) {
    const McId id = r.msg_id();
    const std::uint64_t ts = r.u64();
    r.expect_done();
    on_final(id, ts);
  } else {
    ABCAST_CHECK_MSG(false, "unknown multicast control tag");
  }
}

void MulticastService::on_propose(const McId& id, Bytes payload,
                                  std::vector<std::uint32_t> dests) {
  if (!known_.insert(id).second) return;  // duplicate PROPOSE broadcast
  clock_ += 1;
  Pending p;
  p.payload = std::move(payload);
  p.dests = std::move(dests);
  p.proposed_ts = clock_;
  auto [it, inserted] = pending_.emplace(id, std::move(p));
  ABCAST_CHECK(inserted);
  maybe_finalize(id, it->second);
  try_deliver();
}

void MulticastService::on_final(const McId& id, std::uint64_t ts) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;  // duplicate FINAL; already processed
  if (it->second.final_ts.has_value()) return;
  ABCAST_CHECK_MSG(ts >= it->second.proposed_ts,
                   "final timestamp below our proposal");
  it->second.final_ts = ts;
  clock_ = std::max(clock_, ts);
  try_deliver();
}

void MulticastService::maybe_finalize(const McId& id, Pending& p) {
  if (p.final_ts.has_value() || p.final_broadcast) return;
  // Single-group multicast: our proposal IS the final timestamp; no
  // exchange and no extra broadcast needed.
  if (p.dests.size() == 1) {
    ABCAST_CHECK(p.dests[0] == group_id_);
    p.final_ts = p.proposed_ts;
    return;
  }
  for (const auto g : p.dests) {
    if (g != group_id_ && p.remote.count(g) == 0) return;
  }
  std::uint64_t final_ts = p.proposed_ts;
  for (const auto& [g, ts] : p.remote) final_ts = std::max(final_ts, ts);
  stack_->ab().broadcast(FinalMsg{id, final_ts}.encode_payload());
  p.final_broadcast = true;
}

void MulticastService::try_deliver() {
  for (;;) {
    // The finalized message with the smallest (ts, id)...
    const McId* best_id = nullptr;
    const Pending* best = nullptr;
    for (const auto& [id, p] : pending_) {
      if (!p.final_ts.has_value()) continue;
      if (best == nullptr || std::tie(*p.final_ts, id) <
                                 std::tie(*best->final_ts, *best_id)) {
        best_id = &id;
        best = &p;
      }
    }
    if (best == nullptr) return;
    // ...is deliverable only if no still-open message could end up with a
    // smaller final timestamp (a final is never below its proposal).
    for (const auto& [id, p] : pending_) {
      if (p.final_ts.has_value()) continue;
      if (std::tie(p.proposed_ts, id) < std::tie(*best->final_ts, *best_id)) {
        return;
      }
    }
    McDelivery out;
    out.id = *best_id;
    out.payload = best->payload;
    out.final_ts = *best->final_ts;
    out.dest_groups = best->dests;
    done_proposed_.emplace(*best_id, best->proposed_ts);
    pending_.erase(*best_id);
    delivered_count_ += 1;
    if (deliver_) deliver_(out);
  }
}

void MulticastService::send_fill(const McId& id, const Pending& p,
                                 std::uint32_t to_group) {
  FillMsg fill;
  fill.id = id;
  fill.from_group = group_id_;
  fill.proposed_ts = p.proposed_ts;
  fill.dests = p.dests;
  fill.payload = p.payload;
  const Wire wire = make_wire(MsgType::kMgFill, fill);
  for (const ProcessId member : topology_.groups[to_group]) {
    env_.send(member, wire);
  }
}

void MulticastService::fill_tick() {
  // Push our proposal to every destination group we have not heard from —
  // retried forever (fair-lossy channels; peers may be down or recovering).
  for (const auto& [id, p] : pending_) {
    for (const auto g : p.dests) {
      if (g == group_id_) continue;
      if (p.remote.count(g) == 0) send_fill(id, p, g);
    }
  }
  env_.schedule_after(config_.fill_period, [this] { fill_tick(); });
}

void MulticastService::on_message(ProcessId global_from, const Wire& msg) {
  ABCAST_CHECK(msg.type == MsgType::kMgFill);
  const auto fill = decode_from_bytes<FillMsg>(msg.payload);
  ABCAST_CHECK(fill.from_group < topology_.group_count());
  if (fill.from_group == group_id_) return;  // stray

  auto it = pending_.find(fill.id);
  if (it != pending_.end()) {
    it->second.remote.emplace(fill.from_group, fill.proposed_ts);
    maybe_finalize(fill.id, it->second);
    try_deliver();
  } else if (known_.count(fill.id) == 0) {
    // First we hear of this multicast (e.g. the initiator crashed before
    // reaching our group): bootstrap it through our group's AB. The remote
    // proposal itself will be re-learned through the fill exchange once
    // the PROPOSE is delivered.
    const bool ours = std::find(fill.dests.begin(), fill.dests.end(),
                                group_id_) != fill.dests.end();
    if (ours) {
      ProposeMsg propose;
      propose.id = fill.id;
      propose.dests = fill.dests;
      propose.payload = fill.payload;
      stack_->ab().broadcast(propose.encode_payload());
    }
  }

  // Whoever fills us is missing OUR proposal for this multicast (they only
  // push to groups they have not heard from): answer directly.
  std::uint64_t our_ts = 0;
  if (it != pending_.end()) {
    our_ts = it->second.proposed_ts;
  } else if (auto done = done_proposed_.find(fill.id);
             done != done_proposed_.end()) {
    our_ts = done->second;
  } else {
    return;  // nothing to answer yet
  }
  FillMsg reply;
  reply.id = fill.id;
  reply.from_group = group_id_;
  reply.proposed_ts = our_ts;
  if (it != pending_.end()) {
    reply.dests = it->second.dests;
    reply.payload = it->second.payload;
  } else {
    reply.dests = fill.dests;
    reply.payload = fill.payload;
  }
  env_.send(global_from, make_wire(MsgType::kMgFill, reply));
}

}  // namespace abcast::multicast
