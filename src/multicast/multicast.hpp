// Total-order multicast to distinct groups (paper §6.4).
//
// The paper: "The problem of efficiently implementing atomic multicast
// across different groups in crash (no-recovery) asynchronous systems has
// been solved in several papers [6, 17]. Since these solutions are based
// on a Consensus primitive, it is possible to extend them to crash-recovery
// systems using an approach similar to the one that has been followed
// here." This module does exactly that, following the timestamp scheme of
// [17] (Rodrigues-Guerraoui-Schiper, "Scalable Atomic Multicast") with
// every group-local step driven through the group's crash-recovery Atomic
// Broadcast:
//
//   1. PROPOSE — the multicast is A-broadcast inside each destination
//      group; on delivery the group's replicated logical clock advances and
//      becomes the group's *proposed timestamp* for the message.
//   2. Exchange — members push (group, proposed ts) to the other
//      destination groups with periodically retried FILL datagrams; a FILL
//      also carries the whole multicast, so a group that never saw it can
//      bootstrap it (this is what makes an initiator crash harmless).
//   3. FINAL — once a member holds proposals from every destination group
//      it A-broadcasts the final timestamp (the max) in its own group.
//   4. Delivery — messages are app-delivered in (final ts, id) order, as
//      soon as no still-pending message could receive a smaller final
//      timestamp (Skeen's deliverability condition).
//
// Crash-recovery for free: all per-group multicast state (clock, pending
// set, proposed/final timestamps) is a deterministic function of the
// group's AB delivery sequence, so the AB layer's replay rebuilds it after
// a crash; only the FILL retry timers are volatile and restart on
// recovery.
//
// Guarantee: messages sharing at least one destination group are delivered
// in the same relative order at *all* their destinations; per group,
// delivery is totally ordered.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>

#include "core/delivery_sink.hpp"
#include "core/node_stack.hpp"
#include "multicast/group_env.hpp"

namespace abcast::multicast {

/// Identity of a multicast: the AppMsg id of the PROPOSE that first
/// entered the initiator's group (globally unique).
using McId = MsgId;

struct McDelivery {
  McId id;
  Bytes payload;
  std::uint64_t final_ts = 0;
  std::vector<std::uint32_t> dest_groups;
};

using McDeliverFn = std::function<void(const McDelivery&)>;

struct MulticastConfig {
  /// Period of the FILL retry task (inter-group proposal exchange).
  Duration fill_period = millis(40);
  core::StackConfig stack;
};

class MulticastService;

/// The per-process node: a group-scoped protocol stack plus the multicast
/// layer. Construct via factory in a simulation/rt host.
class MulticastNode final : public NodeApp {
 public:
  /// `topology` must list disjoint groups covering this process.
  MulticastNode(Env& env, const GroupTopology& topology,
                MulticastConfig config, McDeliverFn deliver);
  ~MulticastNode() override;

  void start(bool recovering) override;
  void on_message(ProcessId from, const Wire& msg) override;

  /// Multicasts `payload` to `dest_groups` (which must include this
  /// process's own group — the initiator anchors the message there).
  /// Returns the multicast id; completion is the McDeliverFn upcall.
  McId mcast(Bytes payload, std::vector<std::uint32_t> dest_groups);

  MulticastService& service() { return *service_; }
  core::NodeStack& stack() { return *stack_; }
  std::uint32_t group() const { return group_id_; }

 private:
  Env& env_;
  GroupTopology topology_;
  std::uint32_t group_id_;
  GroupEnv group_env_;
  std::unique_ptr<MulticastService> service_;  // is the stack's sink
  std::unique_ptr<core::NodeStack> stack_;
};

/// The multicast state machine of one group member. Exposed for tests;
/// normal use goes through MulticastNode.
class MulticastService final : public core::DeliverySink {
 public:
  MulticastService(Env& env, const GroupTopology& topology,
                   std::uint32_t group_id, MulticastConfig config,
                   McDeliverFn deliver);

  /// Wires the group stack (whose AB carries the control messages).
  void bind(core::NodeStack* stack) { stack_ = stack; }

  void start();

  McId mcast(Bytes payload, std::vector<std::uint32_t> dest_groups);

  // DeliverySink: every group-AB delivery flows through here.
  void deliver(const core::AppMsg& msg) override;

  bool handles(MsgType type) const { return type == MsgType::kMgFill; }
  void on_message(ProcessId global_from, const Wire& msg);

  // Introspection for tests/benches.
  std::uint64_t clock() const { return clock_; }
  std::size_t pending_count() const { return pending_.size(); }
  std::uint64_t delivered_count() const { return delivered_count_; }

 private:
  struct Pending {
    Bytes payload;
    std::vector<std::uint32_t> dests;
    std::uint64_t proposed_ts = 0;                 // our group's proposal
    std::map<std::uint32_t, std::uint64_t> remote; // group -> proposed ts
    std::optional<std::uint64_t> final_ts;
    bool final_broadcast = false;  // we already A-broadcast FINAL
  };

  void on_propose(const McId& id, Bytes payload,
                  std::vector<std::uint32_t> dests);
  void on_final(const McId& id, std::uint64_t ts);
  void maybe_finalize(const McId& id, Pending& p);
  void try_deliver();
  void fill_tick();
  void send_fill(const McId& id, const Pending& p, std::uint32_t to_group);

  Env& env_;  // the GLOBAL env (fill datagrams cross groups)
  GroupTopology topology_;
  std::uint32_t group_id_;
  MulticastConfig config_;
  McDeliverFn deliver_;
  core::NodeStack* stack_ = nullptr;

  std::uint64_t clock_ = 0;
  std::map<McId, Pending> pending_;
  // Completed multicasts: proposed ts kept so late FILL queries can still
  // be answered after delivery.
  std::map<McId, std::uint64_t> done_proposed_;
  std::set<McId> known_;  // PROPOSE dedup (pending or done)
  std::uint64_t delivered_count_ = 0;
  std::uint64_t mcast_counter_ = 0;  // per-incarnation initiation counter
};

}  // namespace abcast::multicast
