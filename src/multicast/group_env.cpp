#include "multicast/group_env.hpp"

#include <set>

namespace abcast::multicast {

std::uint32_t GroupTopology::group_of(ProcessId pid) const {
  for (std::uint32_t g = 0; g < groups.size(); ++g) {
    for (const ProcessId member : groups[g]) {
      if (member == pid) return g;
    }
  }
  ABCAST_CHECK_MSG(false, "process belongs to no group");
  return 0;
}

void GroupTopology::validate(std::uint32_t n) const {
  ABCAST_CHECK_MSG(!groups.empty(), "topology has no groups");
  std::set<ProcessId> seen;
  for (const auto& group : groups) {
    ABCAST_CHECK_MSG(!group.empty(), "empty group");
    for (const ProcessId pid : group) {
      ABCAST_CHECK_MSG(pid < n, "group member out of range");
      ABCAST_CHECK_MSG(seen.insert(pid).second,
                       "groups must be disjoint");
    }
  }
}

GroupEnv::GroupEnv(Env& parent, std::vector<ProcessId> members)
    : parent_(parent), members_(std::move(members)) {
  for (ProcessId i = 0; i < members_.size(); ++i) {
    if (members_[i] == parent_.self()) self_index_ = i;
  }
  ABCAST_CHECK_MSG(self_index_ != kNoProcess,
                   "process is not a member of its own group");
}

ProcessId GroupEnv::member_index(ProcessId global_pid) const {
  for (ProcessId i = 0; i < members_.size(); ++i) {
    if (members_[i] == global_pid) return i;
  }
  ABCAST_CHECK_MSG(false, "pid not in group");
  return kNoProcess;
}

}  // namespace abcast::multicast
