// Group-scoped view of a host Env.
//
// Total-order multicast to distinct groups (paper §6.4) runs one Atomic
// Broadcast stack per group. GroupEnv narrows a process's host environment
// to its group: the inner stack sees `group_size() == |group|` and member
// indices 0..|group|-1, while sends are translated to global process ids.
// Timers, storage and randomness pass straight through (one stack per
// process, so no key collisions).
#pragma once

#include <vector>

#include "common/check.hpp"
#include "env/env.hpp"

namespace abcast::multicast {

/// Disjoint partition of the global process space into groups.
struct GroupTopology {
  std::vector<std::vector<ProcessId>> groups;

  std::uint32_t group_count() const {
    return static_cast<std::uint32_t>(groups.size());
  }

  /// Group containing the global process `pid`; checks membership.
  std::uint32_t group_of(ProcessId pid) const;

  /// Validates disjointness and non-emptiness against `n` processes.
  void validate(std::uint32_t n) const;
};

class GroupEnv final : public Env {
 public:
  /// `members` lists the global pids of this process's group; `parent`
  /// must contain `parent.self()` among them and outlive this adapter.
  GroupEnv(Env& parent, std::vector<ProcessId> members);

  ProcessId self() const override { return self_index_; }
  std::uint32_t group_size() const override {
    return static_cast<std::uint32_t>(members_.size());
  }
  TimePoint now() const override { return parent_.now(); }
  TimerId schedule_after(Duration delay, std::function<void()> fn) override {
    return parent_.schedule_after(delay, std::move(fn));
  }
  void cancel_timer(TimerId id) override { parent_.cancel_timer(id); }
  void send(ProcessId to, const Wire& msg) override {
    ABCAST_CHECK(to < members_.size());
    parent_.send(members_[to], msg);
  }
  StableStorage& storage() override { return parent_.storage(); }
  Rng& rng() override { return parent_.rng(); }

  /// Translates a global pid into the member index (checks membership).
  ProcessId member_index(ProcessId global_pid) const;

 private:
  Env& parent_;
  std::vector<ProcessId> members_;
  ProcessId self_index_ = kNoProcess;
};

}  // namespace abcast::multicast
