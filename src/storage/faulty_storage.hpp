// Storage fault injection: the decorator that makes the crash-recovery
// window around each `log` operation testable.
//
// Wraps any StableStorage and, under scripted crash-points or RNG-driven
// rates, produces the realistic failures a naive durability assumption
// misses:
//
//   * crash-points — the process crashes AT its k-th storage operation,
//     in one of three phases: before the write touched the medium, mid-way
//     through a torn write, or after the write completed but before the
//     caller's next instruction ran. Realized by throwing SimulatedCrash,
//     which the simulated host catches and converts into a process crash.
//   * torn puts — the key is left holding the old value, an empty value, a
//     truncated prefix, or a bit-flipped copy of the new record;
//   * clean I/O errors — the operation throws StorageIoError and the medium
//     is untouched;
//   * silent write corruption — the put "succeeds" but stores a torn
//     record (firmware that lies about durability);
//   * bit rot — get() returns the record with one flipped bit;
//   * disk-full — puts beyond a byte budget fail with StorageIoError.
//
// The decorator sits between the protocol's ScopedStorage views and the
// real backend, so every layer's records are exposed to every fault.
#pragma once

#include <memory>
#include <optional>

#include "common/rng.hpp"
#include "env/stable_storage.hpp"

namespace abcast {

/// Thrown by an armed crash-point. Deliberately NOT derived from
/// std::exception so generic handlers cannot swallow it: only the simulated
/// host (or a harness that knows what it is doing) may catch it and crash
/// the process.
struct SimulatedCrash {
  std::uint64_t op_index = 0;  // the storage operation that was executing
};

/// Where, relative to the targeted storage operation, the crash lands.
enum class CrashPhase : std::uint8_t {
  kBeforeOp,   // medium untouched (crash before write / before rename)
  kTornWrite,  // put half-applied: old, empty, truncated, or corrupt value
  kAfterOp,    // operation fully applied, caller never saw it return
};

/// RNG-driven fault rates; all default to "no faults".
struct StorageFaultProfile {
  double put_io_error_prob = 0.0;
  double get_io_error_prob = 0.0;
  double erase_io_error_prob = 0.0;
  /// put claims success but the stored record is torn (empty / truncated /
  /// bit-flipped); detected only when someone reads it back.
  double silent_torn_put_prob = 0.0;
  /// get returns the record with one flipped bit (non-sticky rot: the
  /// stored bytes are unchanged, the returned copy is damaged).
  double read_bit_flip_prob = 0.0;
  /// Once cumulative payload bytes written exceed this budget, every
  /// further put fails with StorageIoError. 0 means unlimited.
  std::uint64_t disk_full_after_bytes = 0;
  /// Slow disk: every put/get/erase accrues a uniform delay in
  /// [op_delay_min_ns, op_delay_max_ns]. The decorator has no clock, so the
  /// delay is banked in `pending_delay()` for the host to drain: the simulated
  /// host folds it into its busy window so later sends, timers, and inbound
  /// deliveries are pushed past the stall. 0/0 disables the mode.
  std::int64_t op_delay_min_ns = 0;
  std::int64_t op_delay_max_ns = 0;
  /// With this probability an op additionally hits a long stall of
  /// `stall_ns` (a device hiccup: firmware GC, fsync storm), banked the
  /// same way.
  double stall_prob = 0.0;
  std::int64_t stall_ns = 0;

  bool any() const {
    return put_io_error_prob > 0 || get_io_error_prob > 0 ||
           erase_io_error_prob > 0 || silent_torn_put_prob > 0 ||
           read_bit_flip_prob > 0 || disk_full_after_bytes > 0 ||
           op_delay_max_ns > 0 || stall_prob > 0;
  }
};

struct StorageFaultStats {
  std::uint64_t total_ops = 0;  // attempts, including failed ones
  std::uint64_t io_errors = 0;
  std::uint64_t torn_puts = 0;       // silent + crash-point torn writes
  std::uint64_t bit_flips = 0;
  std::uint64_t disk_full_failures = 0;
  std::uint64_t crash_points_fired = 0;
  std::uint64_t stalls = 0;                 // long-stall events injected
  std::uint64_t delay_injected_ns = 0;      // total banked latency, ever
};

class FaultyStorage final : public StableStorage {
 public:
  /// Takes ownership of the backend. `rng` drives all randomized faults;
  /// fork it from the host's stream for determinism.
  FaultyStorage(std::unique_ptr<StableStorage> inner, Rng rng);

  void set_profile(const StorageFaultProfile& profile) { profile_ = profile; }
  const StorageFaultProfile& profile() const { return profile_; }

  /// The wrapped backend, for harness inspection (e.g. per-scope stats of a
  /// MemStableStorage) and for corrupting records behind the decorator.
  StableStorage& inner() { return *inner_; }

  // ---- crash-points ------------------------------------------------------
  /// Arms a crash at the `op_index`-th operation of this storage's lifetime
  /// (1-based, counted across process incarnations — the counter survives
  /// crashes because the storage does). Only one crash-point is armed at a
  /// time; re-arming replaces the previous one.
  void arm_crash_at_op(std::uint64_t op_index, CrashPhase phase);

  /// Arms a crash `ops_from_now` operations in the future (1 = the very
  /// next operation).
  void arm_crash_in(std::uint64_t ops_from_now, CrashPhase phase);

  void disarm_crash_point();
  bool crash_point_armed() const { return crash_at_op_ != 0; }

  /// Operations attempted so far (the crash-point counter's clock).
  std::uint64_t op_count() const { return fault_stats_.total_ops; }

  const StorageFaultStats& fault_stats() const { return fault_stats_; }

  // ---- slow disk ---------------------------------------------------------
  /// Latency banked by slow/stalling ops since the last drain. The owner
  /// (the simulated host) is expected to call take_pending_delay() after
  /// each protocol callback and convert the sum into busy time.
  std::int64_t pending_delay_ns() const { return pending_delay_ns_; }
  std::int64_t take_pending_delay() {
    const std::int64_t d = pending_delay_ns_;
    pending_delay_ns_ = 0;
    return d;
  }

  // ---- StableStorage -----------------------------------------------------
  void put(std::string_view key, const Bytes& value) override;
  std::optional<Bytes> get(std::string_view key) override;
  void erase(std::string_view key) override;
  /// Forwarded verbatim: flush is a durability barrier, not a log op, so it
  /// neither advances the crash-point counter nor draws from the fault RNG
  /// (seeded sweeps stay bit-identical whether the backend defers syncs).
  void flush() override { inner_->flush(); }
  std::vector<std::string> keys_with_prefix(std::string_view prefix) override;
  std::uint64_t footprint_bytes() override;
  /// Per-contract operation counters as seen by the caller; failed
  /// operations are not counted (they never "happened").
  const StorageStats& stats() const override { return inner_->stats(); }

 private:
  /// Counts the op; accrues slow-disk latency when configured.
  /// Returns the op's index.
  std::uint64_t begin_op();
  bool crash_due(std::uint64_t op_index) const {
    return crash_at_op_ != 0 && op_index >= crash_at_op_;
  }
  [[noreturn]] void fire_crash_point(std::uint64_t op_index);
  /// Writes a torn version of (key, value) to the backend: one of old kept
  /// (no-op), empty, truncated prefix, or single-bit-flipped copy.
  void tear_put(std::string_view key, const Bytes& value);

  std::unique_ptr<StableStorage> inner_;
  Rng rng_;
  StorageFaultProfile profile_;
  StorageFaultStats fault_stats_;
  std::uint64_t bytes_budget_used_ = 0;
  std::int64_t pending_delay_ns_ = 0;
  std::uint64_t crash_at_op_ = 0;  // 0 = disarmed
  CrashPhase crash_phase_ = CrashPhase::kBeforeOp;
};

}  // namespace abcast
