// File-backed stable storage for real deployments and the rt runtime.
//
// One file per record under a root directory. Writes are crash-atomic:
// the record is written to a temporary file, fsync'd, then renamed over the
// final path. Each file carries a small header with a magic, the payload
// length, and a CRC-32; a torn or corrupted record is detected on read and
// treated as absent (reported via corrupt_records()).
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>

#include "env/stable_storage.hpp"

namespace abcast {

class FileStableStorage final : public StableStorage {
 public:
  /// Opens (creating if needed) the storage rooted at `dir`. Leftover
  /// temporary files from an interrupted write are removed.
  explicit FileStableStorage(const std::filesystem::path& dir,
                             bool fsync_writes = true);

  void put(std::string_view key, const Bytes& value) override;
  std::optional<Bytes> get(std::string_view key) override;
  void erase(std::string_view key) override;
  std::vector<std::string> keys_with_prefix(std::string_view prefix) override;
  std::uint64_t footprint_bytes() override;
  const StorageStats& stats() const override { return stats_; }

  /// Number of records found corrupted (bad magic/length/CRC) by get().
  std::uint64_t corrupt_records() const { return corrupt_records_; }

  const std::filesystem::path& root() const { return root_; }

 private:
  std::filesystem::path path_for(std::string_view key) const;
  static std::string escape_key(std::string_view key);
  static std::optional<std::string> unescape_key(const std::string& name);

  std::filesystem::path root_;
  bool fsync_writes_;
  StorageStats stats_;
  std::uint64_t corrupt_records_ = 0;
  std::uint64_t next_tmp_ = 0;
};

}  // namespace abcast
