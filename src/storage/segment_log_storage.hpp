// Group-commit segmented-log stable storage (ROADMAP item 3, DESIGN.md §16).
//
// FileStableStorage pays one tmp-file + fsync + rename + dir-fsync per log
// operation — the measured floor once pipelining keeps α proposal logs in
// flight. This backend replaces the file-per-record layout with an
// append-only segmented log: every put/erase appends one checksummed sealed
// record to the current segment, and durability is a *sync point* that can
// be shared by many records:
//
//   * SyncMode::kEachPut   — fdatasync inside every put (the paper's "log
//                            completes before returning", one sync per op);
//   * SyncMode::kGroupCommit — put blocks until a background flusher has
//                            synced past its record; while one fdatasync is
//                            in flight every concurrent put appends and
//                            queues, so the NEXT sync covers them all (one
//                            fdatasync across N concurrent proposers);
//   * SyncMode::kDeferred  — put never syncs; the host calls flush() at its
//                            I/O barrier (before releasing outbound
//                            datagrams / completing an A-broadcast), which
//                            coalesces one fdatasync across every record the
//                            event-loop pass appended — the α in-flight
//                            proposal-log writes of a pipelined pass;
//   * SyncMode::kNone      — no syncing (benchmarks, simulator backends).
//
// The full record map is also kept in memory (like MemStableStorage), so
// get/keys_with_prefix never touch the disk; the log exists purely for
// crash durability. Recovery scans the segments in id order, replaying
// put/erase records and stopping a segment's scan at the first record whose
// CRC-32 seal fails — a torn tail is truncated away (PR 1's sealed-record
// discipline: a damaged record reads as if the operation never completed).
// Overwrites and tombstones leave dead bytes behind; when the dead ratio
// crosses the configured threshold, compaction rewrites the live map into a
// fresh segment and unlinks the old ones (crash-safe: old segments are
// removed only after the replacement is durable, and replaying both is
// idempotent because later segments win).
//
// Thread safety: unlike the other backends, every method is internally
// locked — kGroupCommit exists precisely so multiple proposer threads can
// log concurrently and share sync points.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "env/stable_storage.hpp"

namespace abcast {

enum class SyncMode : std::uint8_t {
  kNone,         // never sync (benchmarks, sim backends)
  kEachPut,      // fdatasync inside every put/erase
  kGroupCommit,  // background flusher; put blocks until durable, syncs coalesce
  kDeferred,     // sync only at flush(); host must order flush before sends
};

struct SegmentedLogConfig {
  std::filesystem::path dir;
  SyncMode sync = SyncMode::kEachPut;
  /// Roll to a new segment once the current one exceeds this many bytes.
  std::uint64_t segment_bytes = 8ull << 20;
  /// Compact when dead bytes exceed this fraction of the on-disk log...
  double compact_dead_ratio = 0.5;
  /// ...but never below this absolute size (tiny logs aren't worth it).
  std::uint64_t compact_min_bytes = 256 * 1024;
};

struct SegLogStats {
  std::uint64_t appends = 0;        // records written (puts + tombstones)
  std::uint64_t bytes_appended = 0; // framed record bytes, incl. compaction
  std::uint64_t fsyncs = 0;         // fdatasync calls, all causes
  std::uint64_t group_commits = 0;  // puts whose durability rode a shared sync
  std::uint64_t segments_created = 0;
  std::uint64_t compactions = 0;
  std::uint64_t recovered_records = 0;  // valid records replayed at open
  std::uint64_t torn_tail_records = 0;  // truncated at open (torn tail)
};

class SegmentedLogStorage final : public StableStorage {
 public:
  /// Opens (creating if needed) the log rooted at `cfg.dir` and replays the
  /// existing segments. Throws StorageIoError when the directory or a
  /// segment cannot be opened.
  explicit SegmentedLogStorage(SegmentedLogConfig cfg);
  ~SegmentedLogStorage() override;

  // ---- StableStorage -----------------------------------------------------
  void put(std::string_view key, const Bytes& value) override;
  std::optional<Bytes> get(std::string_view key) override;
  void erase(std::string_view key) override;
  void flush() override;
  std::vector<std::string> keys_with_prefix(std::string_view prefix) override;
  std::uint64_t footprint_bytes() override;
  const StorageStats& stats() const override { return stats_; }

  const SegLogStats& seg_stats() const { return seg_stats_; }
  const std::filesystem::path& root() const { return cfg_.dir; }
  /// On-disk bytes across all live segments (dead records included until
  /// compaction reclaims them).
  std::uint64_t disk_bytes() const;

 private:
  struct Rec {
    Bytes value;
    std::uint64_t disk_size = 0;  // framed record size in the log
  };

  // All private helpers assume mu_ is held.
  void open_fresh_segment();
  void append_record(std::string_view key, const Bytes* value);
  Bytes frame_record(std::string_view key, const Bytes* value) const;
  void write_all(int fd, const Bytes& data, const char* what);
  void sync_fd(int fd, const char* what);
  void maybe_compact();
  void compact();
  void replay_segments();
  /// Replays one segment file into the map; returns the byte offset of the
  /// first damaged record (== file size when the whole segment is clean).
  std::uint64_t replay_one(const std::filesystem::path& path);
  void sync_dir();

  /// Blocks until the flusher has synced past `seq` (kGroupCommit).
  void await_durable(std::uint64_t seq, std::unique_lock<std::mutex>& lock);
  void flusher_loop();

  SegmentedLogConfig cfg_;
  StorageStats stats_;
  SegLogStats seg_stats_;

  mutable std::mutex mu_;
  std::map<std::string, Rec, std::less<>> records_;
  std::uint64_t live_disk_bytes_ = 0;   // framed size of live put records
  std::uint64_t total_disk_bytes_ = 0;  // framed size of everything on disk
  std::uint64_t next_segment_ = 0;
  std::uint64_t current_segment_bytes_ = 0;
  int fd_ = -1;
  bool dirty_ = false;  // unsynced appends on fd_ (kDeferred bookkeeping)

  // Group-commit plumbing. appended_seq_ counts records; durable_seq_ is
  // the highest record the flusher has synced past. The roll/compaction
  // paths sync the outgoing fd before switching, so the flusher only ever
  // needs to sync the current one.
  std::uint64_t appended_seq_ = 0;
  std::uint64_t durable_seq_ = 0;
  bool stop_ = false;
  std::condition_variable flusher_cv_;  // work for the flusher
  std::condition_variable commit_cv_;   // durable_seq_ advanced
  std::thread flusher_;
};

}  // namespace abcast
