// Torn-write-resilient monotone counter over two alternating slots.
//
// Epoch/incarnation counters are the one piece of durable state whose loss
// is silently catastrophic: a reused incarnation number reuses message ids,
// and the vector-clock duplicate suppression will then *drop fresh
// messages*, violating Validity. A single-record counter is exposed to
// exactly that failure when a torn put destroys the previous value.
//
// DurableCounter writes each new value to the slot NOT holding the current
// maximum, so any single torn/corrupt write can only lose the value being
// written — the surviving slot still holds the last acknowledged one and
// the next bump moves strictly past it. Both slots corrupt (two independent
// media faults) is the only losing case.
#pragma once

#include <cstdint>
#include <string>

#include "common/codec.hpp"
#include "env/stable_storage.hpp"
#include "storage/sealed_record.hpp"

namespace abcast {

class DurableCounter {
 public:
  /// Operates on keys `<key>.a` / `<key>.b` of `storage` (which must
  /// outlive this object).
  DurableCounter(StableStorage& storage, std::string key)
      : storage_(storage), key_a_(key + ".a"), key_b_(key + ".b") {}

  /// Highest durably recorded value, 0 if none (or all slots damaged).
  std::uint64_t load() {
    bool a_valid = false;
    const std::uint64_t a = read_slot(key_a_, a_valid);
    bool b_valid = false;
    const std::uint64_t b = read_slot(key_b_, b_valid);
    corrupt_slots_ = (a_valid ? 0u : 1u) + (b_valid ? 0u : 1u);
    write_to_a_ = !a_valid || (b_valid && b >= a);
    return std::max(a_valid ? a : 0, b_valid ? b : 0);
  }

  /// Durably records `load() + 1` (one put) and returns it.
  std::uint64_t bump() { return store(load() + 1); }

  /// Durably records `v` in the alternate slot (one put after the embedded
  /// load()). `v` must be monotone — a torn write then loses at most this
  /// advance, never the previously recorded value.
  ///
  /// The write is VERIFIED by reading the slot back, and retried if the
  /// readback fails the seal: a storage layer that lies about durability
  /// (put "succeeds" but stores a torn record) would otherwise let the
  /// caller act on `v` while the medium still resolves to the previous
  /// value — for an epoch counter that is a reused incarnation after the
  /// next crash. Bounded retries: a disk that lies every time is beyond
  /// any counter scheme.
  std::uint64_t store(std::uint64_t v) {
    load();  // refresh the slot choice against the current media state
    BufWriter w;
    w.u64(v);
    const Bytes record = seal_record(w.data());
    const std::string& key = write_to_a_ ? key_a_ : key_b_;
    for (int attempt = 0; attempt < 3; ++attempt) {
      storage_.put(key, record);
      bool valid = false;
      if (read_slot(key, valid) == v && valid) break;
    }
    return v;
  }

  /// Slots found damaged by the last load()/bump() (0, 1, or 2).
  std::uint32_t corrupt_slots() const { return corrupt_slots_; }

 private:
  std::uint64_t read_slot(const std::string& key, bool& valid) {
    // A failed seal is re-read once: non-sticky read rot (the medium is
    // intact, only the returned copy was damaged) vanishes on retry, while
    // a genuinely torn record fails both times. Without the retry a single
    // transient flip on the max slot would silently fall back to the older
    // slot — for an epoch counter that means a REUSED incarnation.
    for (int attempt = 0; attempt < 2; ++attempt) {
      valid = false;
      auto rec = storage_.get(key);
      if (!rec) {
        valid = true;  // absent is a clean state, not damage
        return 0;
      }
      auto payload = unseal_record(*rec);
      if (!payload) continue;
      try {
        BufReader r(*payload);
        const std::uint64_t v = r.u64();
        r.expect_done();
        valid = true;
        return v;
      } catch (const CodecError&) {
      }
    }
    return 0;
  }

  StableStorage& storage_;
  std::string key_a_;
  std::string key_b_;
  bool write_to_a_ = true;
  std::uint32_t corrupt_slots_ = 0;
};

}  // namespace abcast
