#include "storage/file_storage.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <system_error>

#include "common/codec.hpp"
#include "common/crc32.hpp"

namespace abcast {
namespace fs = std::filesystem;

namespace {

constexpr std::uint32_t kMagic = 0x41424331;  // "ABC1"
constexpr const char* kTmpSuffix = ".tmp";

bool is_unreserved(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
}

int hex_val(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

void fsync_fd(int fd, const fs::path& what) {
  if (::fsync(fd) != 0) {
    throw StorageIoError("fsync failed for " + what.string());
  }
}

void fsync_dir(const fs::path& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) throw StorageIoError("open dir failed: " + dir.string());
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  if (!ok) throw StorageIoError("fsync dir failed: " + dir.string());
}

}  // namespace

FileStableStorage::FileStableStorage(const fs::path& dir, bool fsync_writes)
    : root_(dir), fsync_writes_(fsync_writes) {
  std::error_code ec;
  fs::create_directories(root_, ec);
  if (ec) throw StorageIoError("cannot create " + root_.string());
  // Remove temporaries left by a crash mid-put; the rename never happened,
  // so the old record (if any) is still the authoritative one.
  for (const auto& entry : fs::directory_iterator(root_)) {
    if (entry.path().extension() == kTmpSuffix) {
      fs::remove(entry.path(), ec);
    }
  }
}

// Keys may contain '/' and other path-hostile characters; store each record
// as a flat file whose name percent-encodes anything unreserved.
std::string FileStableStorage::escape_key(std::string_view key) {
  std::string out;
  out.reserve(key.size());
  for (const char c : key) {
    if (is_unreserved(c)) {
      out.push_back(c);
    } else {
      char buf[4];
      std::snprintf(buf, sizeof buf, "%%%02X",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buf;
    }
  }
  return out;
}

std::optional<std::string> FileStableStorage::unescape_key(
    const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (std::size_t i = 0; i < name.size(); ++i) {
    if (name[i] == '%') {
      if (i + 2 >= name.size()) return std::nullopt;
      const int hi = hex_val(name[i + 1]);
      const int lo = hex_val(name[i + 2]);
      if (hi < 0 || lo < 0) return std::nullopt;
      out.push_back(static_cast<char>(hi * 16 + lo));
      i += 2;
    } else if (is_unreserved(name[i])) {
      out.push_back(name[i]);
    } else {
      return std::nullopt;
    }
  }
  return out;
}

fs::path FileStableStorage::path_for(std::string_view key) const {
  return root_ / escape_key(key);
}

void FileStableStorage::put(std::string_view key, const Bytes& value) {
  // Record layout: magic, key (for self-description), payload, CRC of
  // everything before the CRC field.
  BufWriter w;
  w.u32(kMagic);
  w.str(key);
  w.bytes(value);
  Bytes record = std::move(w).take();
  const std::uint32_t crc = crc32(record);
  BufWriter tail;
  tail.u32(crc);
  const Bytes& tail_bytes = tail.data();
  record.insert(record.end(), tail_bytes.begin(), tail_bytes.end());

  const fs::path final_path = path_for(key);
  const fs::path tmp_path =
      root_ / (escape_key(key) + "." + std::to_string(next_tmp_++) + kTmpSuffix);

  const int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw StorageIoError("cannot create " + tmp_path.string());
  std::size_t off = 0;
  while (off < record.size()) {
    const ssize_t n = ::write(fd, record.data() + off, record.size() - off);
    if (n <= 0) {
      ::close(fd);
      throw StorageIoError("write failed for " + tmp_path.string());
    }
    off += static_cast<std::size_t>(n);
  }
  if (fsync_writes_) fsync_fd(fd, tmp_path);
  ::close(fd);

  std::error_code ec;
  fs::rename(tmp_path, final_path, ec);
  if (ec) throw StorageIoError("rename failed for " + final_path.string());
  if (fsync_writes_) fsync_dir(root_);

  stats_.put_ops += 1;
  stats_.bytes_written += key.size() + value.size();
}

std::optional<Bytes> FileStableStorage::get(std::string_view key) {
  stats_.get_ops += 1;
  const fs::path path = path_for(key);

  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  if (ec) return std::nullopt;  // absent

  Bytes raw(size);
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return std::nullopt;
  std::size_t off = 0;
  while (off < raw.size()) {
    const ssize_t n = ::read(fd, raw.data() + off, raw.size() - off);
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
  ::close(fd);

  if (off != raw.size() || raw.size() < 8) {
    corrupt_records_ += 1;
    return std::nullopt;
  }

  // Verify trailing CRC over the body.
  const std::size_t body_len = raw.size() - 4;
  BufReader crc_r(raw.data() + body_len, 4);
  const std::uint32_t stored_crc = crc_r.u32();
  if (crc32(raw.data(), body_len) != stored_crc) {
    corrupt_records_ += 1;
    return std::nullopt;
  }

  try {
    BufReader r(raw.data(), body_len);
    if (r.u32() != kMagic) {
      corrupt_records_ += 1;
      return std::nullopt;
    }
    const std::string stored_key = r.str();
    if (stored_key != key) {
      corrupt_records_ += 1;
      return std::nullopt;
    }
    Bytes value = r.bytes();
    r.expect_done();
    return value;
  } catch (const CodecError&) {
    corrupt_records_ += 1;
    return std::nullopt;
  }
}

void FileStableStorage::erase(std::string_view key) {
  stats_.erase_ops += 1;
  std::error_code ec;
  fs::remove(path_for(key), ec);
  if (fsync_writes_) fsync_dir(root_);
}

std::vector<std::string> FileStableStorage::keys_with_prefix(
    std::string_view prefix) {
  std::vector<std::string> out;
  for (const auto& entry : fs::directory_iterator(root_)) {
    if (!entry.is_regular_file()) continue;
    if (entry.path().extension() == kTmpSuffix) continue;
    auto key = unescape_key(entry.path().filename().string());
    if (!key) continue;
    if (key->compare(0, prefix.size(), prefix) == 0) {
      out.push_back(std::move(*key));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::uint64_t FileStableStorage::footprint_bytes() {
  std::uint64_t total = 0;
  for (const auto& entry : fs::directory_iterator(root_)) {
    if (!entry.is_regular_file()) continue;
    std::error_code ec;
    const auto sz = entry.file_size(ec);
    if (!ec) total += sz;
  }
  return total;
}

}  // namespace abcast
