#include "storage/mem_storage.hpp"

namespace abcast {

StorageStats& MemStableStorage::scope_entry(std::string_view key) {
  const auto slash = key.find('/');
  const std::string_view scope =
      slash == std::string_view::npos ? key : key.substr(0, slash);
  auto it = by_scope_.find(scope);
  if (it == by_scope_.end()) {
    it = by_scope_.emplace(std::string(scope), StorageStats{}).first;
  }
  return it->second;
}

StorageStats MemStableStorage::scope_stats(std::string_view scope) const {
  auto it = by_scope_.find(scope);
  return it == by_scope_.end() ? StorageStats{} : it->second;
}

void MemStableStorage::put(std::string_view key, const Bytes& value) {
  stats_.put_ops += 1;
  stats_.bytes_written += key.size() + value.size();
  auto& scope = scope_entry(key);
  scope.put_ops += 1;
  scope.bytes_written += key.size() + value.size();
  records_.insert_or_assign(std::string(key), value);
}

std::optional<Bytes> MemStableStorage::get(std::string_view key) {
  stats_.get_ops += 1;
  auto it = records_.find(key);
  if (it == records_.end()) return std::nullopt;
  return it->second;
}

void MemStableStorage::erase(std::string_view key) {
  stats_.erase_ops += 1;
  auto it = records_.find(key);
  if (it != records_.end()) records_.erase(it);
}

std::vector<std::string> MemStableStorage::keys_with_prefix(
    std::string_view prefix) {
  std::vector<std::string> out;
  for (auto it = records_.lower_bound(prefix); it != records_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(it->first);
  }
  return out;
}

std::uint64_t MemStableStorage::footprint_bytes() {
  std::uint64_t total = 0;
  for (const auto& [k, v] : records_) total += k.size() + v.size();
  return total;
}

void MemStableStorage::reset() {
  records_.clear();
  stats_ = StorageStats{};
  by_scope_.clear();
}

}  // namespace abcast
