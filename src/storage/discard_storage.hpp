// Stable storage that stores nothing.
//
// Models the crash-stop (no-recovery) world of Chandra-Toueg: a process
// that never recovers never reads its log, so writes can be discarded. The
// operation counters still run, letting experiments report how many log
// operations a protocol *requested* even when durability is off.
#pragma once

#include "env/stable_storage.hpp"

namespace abcast {

class DiscardStorage final : public StableStorage {
 public:
  void put(std::string_view key, const Bytes& value) override {
    stats_.put_ops += 1;
    stats_.bytes_written += key.size() + value.size();
  }
  std::optional<Bytes> get(std::string_view key) override {
    (void)key;
    stats_.get_ops += 1;
    return std::nullopt;
  }
  void erase(std::string_view key) override {
    (void)key;
    stats_.erase_ops += 1;
  }
  std::vector<std::string> keys_with_prefix(std::string_view) override {
    return {};
  }
  std::uint64_t footprint_bytes() override { return 0; }
  const StorageStats& stats() const override { return stats_; }

 private:
  StorageStats stats_;
};

}  // namespace abcast
