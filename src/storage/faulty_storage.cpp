#include "storage/faulty_storage.hpp"

#include <string>

namespace abcast {

FaultyStorage::FaultyStorage(std::unique_ptr<StableStorage> inner, Rng rng)
    : inner_(std::move(inner)), rng_(std::move(rng)) {}

void FaultyStorage::arm_crash_at_op(std::uint64_t op_index, CrashPhase phase) {
  crash_at_op_ = op_index;
  crash_phase_ = phase;
}

void FaultyStorage::arm_crash_in(std::uint64_t ops_from_now,
                                 CrashPhase phase) {
  arm_crash_at_op(op_count() + (ops_from_now == 0 ? 1 : ops_from_now), phase);
}

void FaultyStorage::disarm_crash_point() { crash_at_op_ = 0; }

std::uint64_t FaultyStorage::begin_op() {
  fault_stats_.total_ops += 1;
  // Slow-disk accrual. Every RNG draw is gated on the knob being set so a
  // profile without latency leaves the fault RNG stream bit-identical to
  // builds before this mode existed (seeded tests depend on that).
  if (profile_.op_delay_max_ns > 0) {
    const std::int64_t lo =
        profile_.op_delay_min_ns < 0 ? 0 : profile_.op_delay_min_ns;
    const std::int64_t hi = profile_.op_delay_max_ns < lo
                                ? lo
                                : profile_.op_delay_max_ns;
    const std::int64_t d = rng_.uniform(lo, hi);
    pending_delay_ns_ += d;
    fault_stats_.delay_injected_ns += static_cast<std::uint64_t>(d);
  }
  if (profile_.stall_prob > 0 && rng_.chance(profile_.stall_prob) &&
      profile_.stall_ns > 0) {
    pending_delay_ns_ += profile_.stall_ns;
    fault_stats_.stalls += 1;
    fault_stats_.delay_injected_ns +=
        static_cast<std::uint64_t>(profile_.stall_ns);
  }
  return fault_stats_.total_ops;
}

void FaultyStorage::fire_crash_point(std::uint64_t op_index) {
  disarm_crash_point();  // one-shot: recovery must not re-crash at this op
  fault_stats_.crash_points_fired += 1;
  throw SimulatedCrash{op_index};
}

void FaultyStorage::tear_put(std::string_view key, const Bytes& value) {
  fault_stats_.torn_puts += 1;
  switch (rng_.uniform(0, 3)) {
    case 0:
      // Old value kept: an atomic backend (write-then-rename) crashed
      // before the rename. The medium is untouched.
      return;
    case 1:
      inner_->put(key, Bytes{});
      return;
    case 2: {
      // Strict truncated prefix (possibly empty when the record is tiny).
      const auto cut =
          value.empty()
              ? std::size_t{0}
              : static_cast<std::size_t>(rng_.uniform(
                    0, static_cast<std::int64_t>(value.size()) - 1));
      inner_->put(key, Bytes(value.begin(),
                             value.begin() + static_cast<std::ptrdiff_t>(cut)));
      return;
    }
    default: {
      // Full length, one flipped bit.
      Bytes damaged = value;
      if (damaged.empty()) damaged.push_back(0xFF);
      const auto byte = static_cast<std::size_t>(
          rng_.uniform(0, static_cast<std::int64_t>(damaged.size()) - 1));
      damaged[byte] ^= static_cast<std::uint8_t>(1u << rng_.uniform(0, 7));
      inner_->put(key, damaged);
      return;
    }
  }
}

void FaultyStorage::put(std::string_view key, const Bytes& value) {
  const std::uint64_t op = begin_op();
  if (crash_due(op)) {
    switch (crash_phase_) {
      case CrashPhase::kBeforeOp:
        fire_crash_point(op);
      case CrashPhase::kTornWrite:
        tear_put(key, value);
        fire_crash_point(op);
      case CrashPhase::kAfterOp:
        inner_->put(key, value);
        fire_crash_point(op);
    }
  }
  if (profile_.disk_full_after_bytes != 0) {
    bytes_budget_used_ += key.size() + value.size();
    if (bytes_budget_used_ > profile_.disk_full_after_bytes) {
      fault_stats_.disk_full_failures += 1;
      throw StorageIoError("disk full (injected) writing " + std::string(key));
    }
  }
  if (rng_.chance(profile_.put_io_error_prob)) {
    fault_stats_.io_errors += 1;
    throw StorageIoError("put failed (injected) for " + std::string(key));
  }
  if (rng_.chance(profile_.silent_torn_put_prob)) {
    tear_put(key, value);
    return;  // the caller believes the write completed
  }
  inner_->put(key, value);
}

std::optional<Bytes> FaultyStorage::get(std::string_view key) {
  const std::uint64_t op = begin_op();
  if (crash_due(op)) {
    // Reads have no torn phase; kAfterOp still crashes before the caller
    // can use the value, so every phase reduces to "crash at this read".
    fire_crash_point(op);
  }
  if (rng_.chance(profile_.get_io_error_prob)) {
    fault_stats_.io_errors += 1;
    throw StorageIoError("get failed (injected) for " + std::string(key));
  }
  auto value = inner_->get(key);
  if (value && !value->empty() && rng_.chance(profile_.read_bit_flip_prob)) {
    fault_stats_.bit_flips += 1;
    const auto byte = static_cast<std::size_t>(
        rng_.uniform(0, static_cast<std::int64_t>(value->size()) - 1));
    (*value)[byte] ^= static_cast<std::uint8_t>(1u << rng_.uniform(0, 7));
  }
  return value;
}

void FaultyStorage::erase(std::string_view key) {
  const std::uint64_t op = begin_op();
  if (crash_due(op)) {
    if (crash_phase_ == CrashPhase::kAfterOp) inner_->erase(key);
    fire_crash_point(op);
  }
  if (rng_.chance(profile_.erase_io_error_prob)) {
    fault_stats_.io_errors += 1;
    throw StorageIoError("erase failed (injected) for " + std::string(key));
  }
  inner_->erase(key);
}

std::vector<std::string> FaultyStorage::keys_with_prefix(
    std::string_view prefix) {
  return inner_->keys_with_prefix(prefix);
}

std::uint64_t FaultyStorage::footprint_bytes() {
  return inner_->footprint_bytes();
}

}  // namespace abcast
