// Prefix-scoped view of a StableStorage with its own operation counters.
//
// Each protocol layer (failure detector, consensus, atomic broadcast) logs
// through its own scope, so experiments can attribute every log operation to
// a layer — the measurement behind the paper's claim that Atomic Broadcast
// adds *no* log operations beyond those of Consensus.
#pragma once

#include <string>

#include "env/stable_storage.hpp"

namespace abcast {

class ScopedStorage final : public StableStorage {
 public:
  /// Creates a view over `inner` where every key is prefixed by `scope` +
  /// '/'. The inner storage must outlive this view.
  ScopedStorage(StableStorage& inner, std::string scope)
      : inner_(inner), prefix_(std::move(scope)) {
    prefix_.push_back('/');
  }

  void put(std::string_view key, const Bytes& value) override {
    stats_.put_ops += 1;
    stats_.bytes_written += key.size() + value.size();
    inner_.put(prefix_ + std::string(key), value);
  }

  std::optional<Bytes> get(std::string_view key) override {
    stats_.get_ops += 1;
    return inner_.get(prefix_ + std::string(key));
  }

  void erase(std::string_view key) override {
    stats_.erase_ops += 1;
    inner_.erase(prefix_ + std::string(key));
  }

  void flush() override { inner_.flush(); }

  std::vector<std::string> keys_with_prefix(std::string_view prefix) override {
    auto keys = inner_.keys_with_prefix(prefix_ + std::string(prefix));
    for (auto& k : keys) k.erase(0, prefix_.size());
    return keys;
  }

  std::uint64_t footprint_bytes() override {
    // Sum of this scope's records only; reads do not count against the
    // scope's own get statistics.
    std::uint64_t total = 0;
    for (const auto& k : inner_.keys_with_prefix(prefix_)) {
      if (auto v = inner_.get(k)) total += k.size() + v->size();
    }
    return total;
  }

  const StorageStats& stats() const override { return stats_; }

 private:
  StableStorage& inner_;
  std::string prefix_;
  StorageStats stats_;
};

}  // namespace abcast
