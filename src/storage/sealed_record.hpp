// Self-validating stable-storage records.
//
// A backend's own integrity checks (FileStableStorage's magic+CRC) protect
// against torn files, but nothing protects a record travelling through a
// backend that lies — bit rot below the filesystem, a torn write on a
// non-atomic store, or the injected faults of FaultyStorage. Sealing adds a
// CRC-32 trailer at the *protocol* layer, so every reader can distinguish
// "this record is what I logged" from "this record is damaged" and fall
// back to the paper's recovery path (replay / re-run the instance) instead
// of decoding garbage.
#pragma once

#include <optional>

#include "common/crc32.hpp"
#include "common/types.hpp"

namespace abcast {

/// Appends a CRC-32 of `payload` so corruption is detectable on read.
inline Bytes seal_record(Bytes payload) {
  const std::uint32_t crc = crc32(payload);
  for (int i = 0; i < 4; ++i) {
    payload.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
  }
  return payload;
}

/// Strips and verifies the trailer; nullopt means the record is damaged
/// (truncated, bit-flipped, or overwritten with garbage) and must be treated
/// as if the log operation never completed.
inline std::optional<Bytes> unseal_record(const Bytes& raw) {
  if (raw.size() < 4) return std::nullopt;
  const std::size_t body = raw.size() - 4;
  std::uint32_t stored = 0;
  for (int i = 3; i >= 0; --i) {
    stored = (stored << 8) | raw[body + static_cast<std::size_t>(i)];
  }
  if (crc32(raw.data(), body) != stored) return std::nullopt;
  return Bytes(raw.begin(), raw.begin() + static_cast<std::ptrdiff_t>(body));
}

}  // namespace abcast
