#include "storage/segment_log_storage.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <system_error>
#include <vector>

#include "common/codec.hpp"
#include "storage/sealed_record.hpp"

namespace abcast {
namespace fs = std::filesystem;

namespace {

constexpr std::uint8_t kRecPut = 1;
constexpr std::uint8_t kRecErase = 2;
constexpr const char* kSegPrefix = "seg-";
constexpr const char* kSegSuffix = ".log";

fs::path segment_path(const fs::path& dir, std::uint64_t id) {
  char name[32];
  std::snprintf(name, sizeof name, "%s%012llu%s", kSegPrefix,
                static_cast<unsigned long long>(id), kSegSuffix);
  return dir / name;
}

/// seg-NNNNNNNNNNNN.log -> NNNNNNNNNNNN, or nullopt for foreign files.
std::optional<std::uint64_t> segment_id(const fs::path& path) {
  const std::string name = path.filename().string();
  const std::string prefix = kSegPrefix;
  const std::string suffix = kSegSuffix;
  if (name.size() <= prefix.size() + suffix.size()) return std::nullopt;
  if (name.compare(0, prefix.size(), prefix) != 0) return std::nullopt;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return std::nullopt;
  }
  std::uint64_t id = 0;
  for (std::size_t i = prefix.size(); i < name.size() - suffix.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return std::nullopt;
    id = id * 10 + static_cast<std::uint64_t>(name[i] - '0');
  }
  return id;
}

}  // namespace

SegmentedLogStorage::SegmentedLogStorage(SegmentedLogConfig cfg)
    : cfg_(std::move(cfg)) {
  std::error_code ec;
  fs::create_directories(cfg_.dir, ec);
  if (ec) throw StorageIoError("cannot create " + cfg_.dir.string());
  replay_segments();
  open_fresh_segment();
  if (cfg_.sync == SyncMode::kGroupCommit) {
    flusher_ = std::thread([this] { flusher_loop(); });
  }
}

SegmentedLogStorage::~SegmentedLogStorage() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Best-effort final barrier so a clean shutdown leaves nothing in the
    // page cache only (destruction is not a crash).
    if (dirty_ && fd_ >= 0 && cfg_.sync != SyncMode::kNone) {
      ::fdatasync(fd_);
      dirty_ = false;
    }
    stop_ = true;
  }
  flusher_cv_.notify_all();
  commit_cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
  if (fd_ >= 0) ::close(fd_);
}

// ---- record framing --------------------------------------------------------

Bytes SegmentedLogStorage::frame_record(std::string_view key,
                                        const Bytes* value) const {
  BufWriter body;
  body.u8(value != nullptr ? kRecPut : kRecErase);
  body.str(key);
  if (value != nullptr) body.bytes(*value);
  const Bytes sealed = seal_record(std::move(body).take());
  BufWriter framed;
  framed.bytes(sealed);  // [u32 len][sealed body] — the segment frame
  return std::move(framed).take();
}

void SegmentedLogStorage::write_all(int fd, const Bytes& data,
                                    const char* what) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n <= 0) throw StorageIoError(std::string("write failed for ") + what);
    off += static_cast<std::size_t>(n);
  }
}

void SegmentedLogStorage::sync_fd(int fd, const char* what) {
  if (::fdatasync(fd) != 0) {
    throw StorageIoError(std::string("fdatasync failed for ") + what);
  }
  seg_stats_.fsyncs += 1;
}

void SegmentedLogStorage::sync_dir() {
  const int fd = ::open(cfg_.dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) throw StorageIoError("open dir failed: " + cfg_.dir.string());
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  if (!ok) throw StorageIoError("fsync dir failed: " + cfg_.dir.string());
}

// ---- segment lifecycle -----------------------------------------------------

void SegmentedLogStorage::open_fresh_segment() {
  if (fd_ >= 0) {
    // Seal the outgoing segment: everything in it becomes durable before
    // the switch, so sync points only ever cover the current fd.
    if (dirty_ && cfg_.sync != SyncMode::kNone) sync_fd(fd_, "segment");
    dirty_ = false;
    ::close(fd_);
    fd_ = -1;
  }
  const fs::path path = segment_path(cfg_.dir, next_segment_);
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) throw StorageIoError("cannot create " + path.string());
  next_segment_ += 1;
  current_segment_bytes_ = 0;
  seg_stats_.segments_created += 1;
}

void SegmentedLogStorage::append_record(std::string_view key,
                                        const Bytes* value) {
  const Bytes framed = frame_record(key, value);
  write_all(fd_, framed, "segment");
  dirty_ = true;
  seg_stats_.appends += 1;
  seg_stats_.bytes_appended += framed.size();
  current_segment_bytes_ += framed.size();
  total_disk_bytes_ += framed.size();

  // Update the live map and the dead-byte accounting.
  const auto it = records_.find(key);
  if (it != records_.end()) live_disk_bytes_ -= it->second.disk_size;
  if (value != nullptr) {
    Rec rec;
    rec.value = *value;
    rec.disk_size = framed.size();
    live_disk_bytes_ += framed.size();
    if (it != records_.end()) {
      it->second = std::move(rec);
    } else {
      records_.emplace(std::string(key), std::move(rec));
    }
  } else if (it != records_.end()) {
    records_.erase(it);
  }

  if (current_segment_bytes_ >= cfg_.segment_bytes) open_fresh_segment();
  maybe_compact();
}

void SegmentedLogStorage::maybe_compact() {
  if (total_disk_bytes_ < cfg_.compact_min_bytes) return;
  const std::uint64_t dead = total_disk_bytes_ - live_disk_bytes_;
  if (static_cast<double>(dead) <
      cfg_.compact_dead_ratio * static_cast<double>(total_disk_bytes_)) {
    return;
  }
  compact();
}

void SegmentedLogStorage::compact() {
  // Write the whole live map into a fresh segment, make it durable, THEN
  // unlink the older segments. A crash at any point is safe: replay walks
  // segments in id order, so replaying a surviving old segment plus a
  // partial compacted one just re-applies a subset of the same records.
  const std::uint64_t doomed_below = next_segment_;
  open_fresh_segment();  // seals + closes the outgoing segment
  std::uint64_t compacted_bytes = 0;
  for (auto& [key, rec] : records_) {
    const Bytes framed = frame_record(key, &rec.value);
    write_all(fd_, framed, "compacted segment");
    rec.disk_size = framed.size();
    compacted_bytes += framed.size();
    seg_stats_.bytes_appended += framed.size();
  }
  if (cfg_.sync != SyncMode::kNone) {
    sync_fd(fd_, "compacted segment");
    sync_dir();
  }
  dirty_ = false;
  current_segment_bytes_ = compacted_bytes;
  live_disk_bytes_ = compacted_bytes;
  total_disk_bytes_ = compacted_bytes;

  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(cfg_.dir, ec)) {
    const auto id = segment_id(entry.path());
    if (id && *id < doomed_below) fs::remove(entry.path(), ec);
  }
  if (cfg_.sync != SyncMode::kNone) sync_dir();
  seg_stats_.compactions += 1;

  // The compacted segment may itself be over the roll threshold; let the
  // next append roll it rather than recursing here.
}

// ---- recovery --------------------------------------------------------------

void SegmentedLogStorage::replay_segments() {
  std::vector<std::pair<std::uint64_t, fs::path>> segments;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(cfg_.dir, ec)) {
    if (!entry.is_regular_file()) continue;
    if (const auto id = segment_id(entry.path())) {
      segments.emplace_back(*id, entry.path());
      next_segment_ = std::max(next_segment_, *id + 1);
    }
  }
  std::sort(segments.begin(), segments.end());
  for (const auto& [id, path] : segments) {
    const std::uint64_t good_prefix = replay_one(path);
    std::error_code trunc_ec;
    const auto size = fs::file_size(path, trunc_ec);
    if (!trunc_ec && good_prefix < size) {
      // Torn tail: the record was mid-write when the process died, so the
      // operation never completed. Truncate so the damage cannot shadow
      // future replays.
      fs::resize_file(path, good_prefix, trunc_ec);
    }
  }
  // live/total accounting after replay: every surviving record's framed
  // size counts as both live and total (tombstones and overwritten records
  // were already dropped from the map; their dead bytes remain on disk
  // until the next compaction, which total_disk_bytes_ must reflect).
  total_disk_bytes_ = 0;
  for (const auto& [id, path] : segments) {
    std::error_code size_ec;
    const auto size = fs::file_size(path, size_ec);
    if (!size_ec) total_disk_bytes_ += size;
  }
  live_disk_bytes_ = 0;
  for (const auto& [key, rec] : records_) live_disk_bytes_ += rec.disk_size;
}

std::uint64_t SegmentedLogStorage::replay_one(const fs::path& path) {
  std::error_code ec;
  const auto file_size = fs::file_size(path, ec);
  if (ec) return 0;
  Bytes raw(file_size);
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw StorageIoError("cannot open " + path.string());
  std::size_t off = 0;
  while (off < raw.size()) {
    const ssize_t n = ::read(fd, raw.data() + off, raw.size() - off);
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
  ::close(fd);
  raw.resize(off);

  std::size_t pos = 0;
  while (pos + 4 <= raw.size()) {
    BufReader len_r(raw.data() + pos, 4);
    const std::uint32_t len = len_r.u32();
    if (len < 4 || pos + 4 + len > raw.size()) break;  // torn length/tail
    const Bytes sealed(raw.begin() + static_cast<std::ptrdiff_t>(pos + 4),
                       raw.begin() + static_cast<std::ptrdiff_t>(pos + 4 + len));
    const auto body = unseal_record(sealed);
    if (!body) break;  // CRC failure: the append never completed
    try {
      BufReader r(*body);
      const std::uint8_t type = r.u8();
      std::string key = r.str();
      if (type == kRecPut) {
        Rec rec;
        rec.value = r.bytes();
        r.expect_done();
        rec.disk_size = 4 + len;
        records_.insert_or_assign(std::move(key), std::move(rec));
      } else if (type == kRecErase) {
        r.expect_done();
        records_.erase(key);
      } else {
        break;  // unknown type: treat like a damaged record
      }
    } catch (const CodecError&) {
      break;
    }
    seg_stats_.recovered_records += 1;
    pos += 4 + len;
  }
  if (pos < raw.size()) seg_stats_.torn_tail_records += 1;
  return pos;
}

// ---- durability ------------------------------------------------------------

void SegmentedLogStorage::await_durable(std::uint64_t seq,
                                        std::unique_lock<std::mutex>& lock) {
  if (durable_seq_ < seq) {
    flusher_cv_.notify_one();
    commit_cv_.wait(lock, [this, seq] { return durable_seq_ >= seq || stop_; });
  }
}

void SegmentedLogStorage::flusher_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    flusher_cv_.wait(lock,
                     [this] { return stop_ || appended_seq_ > durable_seq_; });
    if (stop_) return;
    const std::uint64_t target = appended_seq_;
    const int fd = fd_;
    // Sync outside the lock: appends from other proposers land on the
    // (O_APPEND) fd meanwhile and ride the NEXT sync — the coalescing that
    // makes group commit pay. The roll path seals an outgoing fd before
    // closing it, so `fd` stays valid: open_fresh_segment only runs inside
    // put/erase/compact, which hold mu_... but they may close fd_ while we
    // sync. Guard by syncing a dup so a concurrent roll cannot invalidate it.
    const int dup_fd = ::dup(fd);
    lock.unlock();
    const bool ok = dup_fd >= 0 && ::fdatasync(dup_fd) == 0;
    if (dup_fd >= 0) ::close(dup_fd);
    lock.lock();
    if (ok) {
      seg_stats_.fsyncs += 1;
      if (target > durable_seq_) {
        seg_stats_.group_commits += target - durable_seq_ - 1;
        durable_seq_ = target;
      }
      if (durable_seq_ == appended_seq_) dirty_ = false;
      commit_cv_.notify_all();
    }
    // On sync failure keep durable_seq_ put: waiting puts stay blocked until
    // shutdown (a sync error on a log device is not recoverable in-protocol).
    if (!ok && !stop_) {
      stop_ = true;
      commit_cv_.notify_all();
      return;
    }
  }
}

// ---- StableStorage ---------------------------------------------------------

void SegmentedLogStorage::put(std::string_view key, const Bytes& value) {
  std::unique_lock<std::mutex> lock(mu_);
  if (stop_) throw StorageIoError("segmented log is shut down");
  append_record(key, &value);
  appended_seq_ += 1;
  const std::uint64_t my_seq = appended_seq_;
  stats_.put_ops += 1;
  stats_.bytes_written += key.size() + value.size();
  switch (cfg_.sync) {
    case SyncMode::kNone:
    case SyncMode::kDeferred:
      break;
    case SyncMode::kEachPut:
      sync_fd(fd_, "segment");
      dirty_ = false;
      durable_seq_ = my_seq;
      break;
    case SyncMode::kGroupCommit:
      await_durable(my_seq, lock);
      if (durable_seq_ < my_seq) {
        throw StorageIoError("segmented log sync failed");
      }
      break;
  }
}

std::optional<Bytes> SegmentedLogStorage::get(std::string_view key) {
  std::unique_lock<std::mutex> lock(mu_);
  stats_.get_ops += 1;
  const auto it = records_.find(key);
  if (it == records_.end()) return std::nullopt;
  return it->second.value;
}

void SegmentedLogStorage::erase(std::string_view key) {
  std::unique_lock<std::mutex> lock(mu_);
  if (stop_) throw StorageIoError("segmented log is shut down");
  stats_.erase_ops += 1;
  if (records_.find(key) == records_.end()) return;  // nothing to tombstone
  append_record(key, nullptr);
  appended_seq_ += 1;
  const std::uint64_t my_seq = appended_seq_;
  switch (cfg_.sync) {
    case SyncMode::kNone:
    case SyncMode::kDeferred:
      break;
    case SyncMode::kEachPut:
      sync_fd(fd_, "segment");
      dirty_ = false;
      durable_seq_ = my_seq;
      break;
    case SyncMode::kGroupCommit:
      await_durable(my_seq, lock);
      break;
  }
}

void SegmentedLogStorage::flush() {
  std::unique_lock<std::mutex> lock(mu_);
  if (!dirty_ || fd_ < 0) return;
  switch (cfg_.sync) {
    case SyncMode::kNone:
      return;  // explicitly unsynced (benchmarks / sim backends)
    case SyncMode::kEachPut:
      return;  // every op already synced inline
    case SyncMode::kGroupCommit:
      await_durable(appended_seq_, lock);
      return;
    case SyncMode::kDeferred:
      sync_fd(fd_, "segment");
      dirty_ = false;
      if (appended_seq_ > durable_seq_) {
        seg_stats_.group_commits += appended_seq_ - durable_seq_ - 1;
        durable_seq_ = appended_seq_;
      }
      return;
  }
}

std::vector<std::string> SegmentedLogStorage::keys_with_prefix(
    std::string_view prefix) {
  std::unique_lock<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (auto it = records_.lower_bound(prefix); it != records_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(it->first);
  }
  return out;
}

std::uint64_t SegmentedLogStorage::footprint_bytes() {
  std::unique_lock<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [key, rec] : records_) {
    total += key.size() + rec.value.size();
  }
  return total;
}

std::uint64_t SegmentedLogStorage::disk_bytes() const {
  std::unique_lock<std::mutex> lock(mu_);
  return total_disk_bytes_;
}

}  // namespace abcast
