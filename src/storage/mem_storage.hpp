// In-memory stable storage for the simulator.
//
// "Stable" here means: the object is owned by the simulated *host*, not by
// the protocol stack, so it survives simulated crashes (which destroy the
// stack). It is lost only when the whole simulation ends — matching the
// paper's model where stable storage is unaffected by crashes.
#pragma once

#include <map>
#include <string>

#include "env/stable_storage.hpp"

namespace abcast {

class MemStableStorage final : public StableStorage {
 public:
  MemStableStorage() = default;

  void put(std::string_view key, const Bytes& value) override;
  std::optional<Bytes> get(std::string_view key) override;
  void erase(std::string_view key) override;
  std::vector<std::string> keys_with_prefix(std::string_view prefix) override;
  std::uint64_t footprint_bytes() override;
  const StorageStats& stats() const override { return stats_; }

  /// Wipes all records and counters. Models provisioning a fresh node; never
  /// called across a simulated crash.
  void reset();

  /// Cumulative per-scope statistics, where a key's scope is everything
  /// before its first '/' ("cons", "ab", "fd"). Unlike the ScopedStorage
  /// counters these survive simulated crashes, so experiments can attribute
  /// every log operation of a whole run to a protocol layer.
  const std::map<std::string, StorageStats, std::less<>>& by_scope() const {
    return by_scope_;
  }
  StorageStats scope_stats(std::string_view scope) const;

 private:
  StorageStats& scope_entry(std::string_view key);

  std::map<std::string, Bytes, std::less<>> records_;
  StorageStats stats_;
  std::map<std::string, StorageStats, std::less<>> by_scope_;
};

}  // namespace abcast
