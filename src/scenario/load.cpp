#include "scenario/load.hpp"

namespace abcast::scenario {

struct LoadDriver::State {
  harness::Cluster& cluster;
  LoadClause spec;
  Rng rng;
  LoadStats stats;
  std::vector<Submission> submissions;
  std::uint64_t next_client = 0;

  State(harness::Cluster& c, const LoadClause& s, Rng r)
      : cluster(c), spec(s), rng(std::move(r)) {}
};

LoadDriver::LoadDriver(harness::Cluster& cluster, const LoadClause& spec,
                       Rng rng)
    : state_(std::make_shared<State>(cluster, spec, std::move(rng))) {}

const LoadStats& LoadDriver::stats() const { return state_->stats; }

const std::vector<Submission>& LoadDriver::submissions() const {
  return state_->submissions;
}

void LoadDriver::install() {
  auto st = state_;
  st->cluster.sim().at(st->spec.at, [st] { arrive(st); });
}

void LoadDriver::arrive(const std::shared_ptr<State>& st) {
  auto& sim = st->cluster.sim();
  const TimePoint now = sim.now();
  if (now >= st->spec.at + st->spec.hold) return;  // window over: stop

  st->stats.arrivals += 1;
  // Round-robin session assignment; each session's home node is fixed, so
  // a clause with many clients spreads arrivals over every process.
  const std::uint64_t client = st->next_client++ % st->spec.clients;
  const auto node = static_cast<ProcessId>(client % sim.n());

  if (sim.host(node).is_up()) {
    st->stats.submitted += 1;
    const std::uint64_t crashes = sim.host(node).stats().crashes;
    auto attempt = st->cluster.broadcast_may_crash(
        node, Bytes(st->spec.bytes, static_cast<std::uint8_t>(client)));
    st->submissions.push_back(
        {attempt.id, node, attempt.completed, now, crashes});
    if (attempt.completed) st->stats.completed += 1;
  } else {
    st->stats.rejected_down += 1;
  }

  // Open loop: the next arrival is scheduled regardless of what happened
  // to this one. Mean gap is the clause's; zero draws are bumped to 1ns so
  // the event loop always advances.
  Duration gap = st->rng.exponential(st->spec.mean_gap);
  if (gap <= 0) gap = 1;
  sim.after(gap, [st] { arrive(st); });
}

}  // namespace abcast::scenario
