#include "scenario/load.hpp"

#include <algorithm>

#include "apps/kv_store.hpp"

namespace abcast::scenario {

std::string pick_key(Rng& rng, std::uint32_t keys, double hot) {
  if (keys == 0) keys = 1;
  std::uint32_t span = keys;
  if (hot > 0.0 && rng.chance(hot)) {
    span = std::max<std::uint32_t>(1, keys / 16);
  }
  const auto i = static_cast<std::uint32_t>(
      rng.uniform(0, static_cast<std::int64_t>(span) - 1));
  return "k" + std::to_string(i);
}

struct LoadDriver::State {
  harness::Cluster& cluster;
  LoadClause spec;
  Rng rng;
  LoadStats stats;
  std::vector<Submission> submissions;
  std::uint64_t next_client = 0;

  State(harness::Cluster& c, const LoadClause& s, Rng r)
      : cluster(c), spec(s), rng(std::move(r)) {}
};

LoadDriver::LoadDriver(harness::Cluster& cluster, const LoadClause& spec,
                       Rng rng)
    : state_(std::make_shared<State>(cluster, spec, std::move(rng))) {}

const LoadStats& LoadDriver::stats() const { return state_->stats; }

const std::vector<Submission>& LoadDriver::submissions() const {
  return state_->submissions;
}

void LoadDriver::install() {
  auto st = state_;
  st->cluster.sim().at(st->spec.at, [st] { arrive(st); });
}

void LoadDriver::arrive(const std::shared_ptr<State>& st) {
  auto& sim = st->cluster.sim();
  const TimePoint now = sim.now();
  if (now >= st->spec.at + st->spec.hold) return;  // window over: stop

  st->stats.arrivals += 1;
  // Round-robin session assignment; each session's home node is fixed, so
  // a clause with many clients spreads arrivals over every process.
  const std::uint64_t client = st->next_client++ % st->spec.clients;
  const auto node = static_cast<ProcessId>(client % sim.n());

  if (sim.host(node).is_up()) {
    st->stats.submitted += 1;
    const std::uint64_t crashes = sim.host(node).stats().crashes;
    // Keyed mode submits a real KV put (same workload shape as the sharded
    // driver); raw mode keeps the original opaque payload and draws nothing
    // extra from the RNG, so pre-existing scenario schedules are unchanged.
    Bytes payload =
        st->spec.keys != 0
            ? apps::KvCommand::put(
                  pick_key(st->rng, st->spec.keys, st->spec.hot),
                  std::string(st->spec.bytes, 'v'))
            : Bytes(st->spec.bytes, static_cast<std::uint8_t>(client));
    auto attempt = st->cluster.broadcast_may_crash(node, std::move(payload));
    st->submissions.push_back(
        {attempt.id, node, attempt.completed, now, crashes});
    if (attempt.completed) st->stats.completed += 1;
  } else {
    st->stats.rejected_down += 1;
  }

  // Open loop: the next arrival is scheduled regardless of what happened
  // to this one. Mean gap is the clause's; zero draws are bumped to 1ns so
  // the event loop always advances.
  Duration gap = st->rng.exponential(st->spec.mean_gap);
  if (gap <= 0) gap = 1;
  sim.after(gap, [st] { arrive(st); });
}

// ---- sharded driver ------------------------------------------------------

/// One arrival in eight is a cross-shard pair; keeps single-shard traffic
/// dominant (the scaling story) while every run still commits pairs.
constexpr double kPairFraction = 0.125;

struct ShardedLoadDriver::State {
  group::ShardedCluster& cluster;
  LoadClause spec;
  Rng rng;
  LoadStats stats;
  std::vector<ShardedSubmission> submissions;
  std::uint64_t next_client = 0;

  State(group::ShardedCluster& c, const LoadClause& s, Rng r)
      : cluster(c), spec(s), rng(std::move(r)) {
    if (spec.keys == 0) spec.keys = 64;  // keyless load would hit one group
  }
};

ShardedLoadDriver::ShardedLoadDriver(group::ShardedCluster& cluster,
                                     const LoadClause& spec, Rng rng)
    : state_(std::make_shared<State>(cluster, spec, std::move(rng))) {}

const LoadStats& ShardedLoadDriver::stats() const { return state_->stats; }

const std::vector<ShardedSubmission>& ShardedLoadDriver::submissions() const {
  return state_->submissions;
}

void ShardedLoadDriver::install() {
  auto st = state_;
  st->cluster.sim().at(st->spec.at, [st] { arrive(st); });
}

void ShardedLoadDriver::arrive(const std::shared_ptr<State>& st) {
  auto& sim = st->cluster.sim();
  const TimePoint now = sim.now();
  if (now >= st->spec.at + st->spec.hold) return;

  st->stats.arrivals += 1;
  const std::uint64_t client = st->next_client++ % st->spec.clients;
  const auto node = static_cast<ProcessId>(client % sim.n());

  if (sim.host(node).is_up()) {
    const std::string value(st->spec.bytes, 'v');
    if (st->rng.chance(kPairFraction)) {
      const std::string key_a = pick_key(st->rng, st->spec.keys,
                                         st->spec.hot);
      const std::string key_b = pick_key(st->rng, st->spec.keys,
                                         st->spec.hot);
      st->stats.pairs_submitted += 1;
      auto attempt = st->cluster.submit_pair_may_crash(
          node, key_a, apps::KvCommand::put(key_a, value), key_b,
          apps::KvCommand::put(key_b, value));
      if (attempt.completed) st->stats.pairs_completed += 1;
    } else {
      const std::string key = pick_key(st->rng, st->spec.keys, st->spec.hot);
      st->stats.submitted += 1;
      const std::uint64_t crashes = sim.host(node).stats().crashes;
      auto attempt = st->cluster.submit_may_crash(
          node, key, apps::KvCommand::put(key, value));
      st->submissions.push_back({attempt.id, attempt.group, node,
                                 attempt.completed, now, crashes});
      if (attempt.completed) st->stats.completed += 1;
    }
  } else {
    st->stats.rejected_down += 1;
  }

  Duration gap = st->rng.exponential(st->spec.mean_gap);
  if (gap <= 0) gap = 1;
  sim.after(gap, [st] { arrive(st); });
}

}  // namespace abcast::scenario
