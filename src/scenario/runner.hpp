// Executes a Scenario against a simulated cluster and audits the run.
//
// The contract: the generator is the adversary, the checker is the oracle.
// run_scenario() installs every clause as simulation events, drives the
// open-loop load, and at the scenario horizon stops injecting: partitions
// heal, gray/slow-disk profiles reset, crash-points disarm (timer skew is
// permanent — it is a property of the host, not a fault window), every
// down process is pumped through recovery. The run then drains: all
// *required* submissions must deliver everywhere, the cluster must
// quiesce, and the merged protocol trace must pass `check_trace` strictly.
//
// Required submissions are the ones the paper's Termination property
// obliges: a broadcast that completed at a process which never crashed
// afterwards must be delivered. Under the alternative protocol
// (log_unordered) a completed broadcast is durable, so every completed
// submission is required regardless of later crashes.
#pragma once

#include <string>
#include <vector>

#include "obs/trace_check.hpp"
#include "obs/windowed.hpp"
#include "scenario/load.hpp"
#include "scenario/scenario.hpp"

namespace abcast::scenario {

struct RunOptions {
  /// Width of the SLO latency windows.
  Duration window = millis(100);
  /// Budget for each drain phase (deliveries, then quiescence).
  Duration drain_timeout = seconds(120);
  /// Per-host trace ring capacity; must be large enough that nothing
  /// drops, or the strict checker verdict is meaningless.
  std::size_t trace_capacity = 1 << 17;
  /// Per-process stable-storage backend override (default: in-memory).
  /// This is how a sweep cell runs the whole oracle-checked scenario suite
  /// against a real on-disk backend (e.g. SegmentedLogStorage), with the
  /// FaultyStorage decorator layered on top as usual.
  std::function<std::unique_ptr<StableStorage>(ProcessId)> storage_factory;
};

struct RunResult {
  // ---- verdicts (ok() is the sweep's pass criterion) --------------------
  bool delivered = false;  // every required submission delivered everywhere
  bool quiesced = false;
  bool checker_ok = false;
  /// First failure in human terms; empty when ok(). An oracle violation
  /// (total order / integrity / validity, thrown mid-run) lands here too.
  std::string failure;

  // ---- what the run did -------------------------------------------------
  LoadStats load;
  std::uint64_t required = 0;     // submissions whose delivery was demanded
  std::uint64_t delivered_global = 0;  // length of the global order
  std::uint64_t events_fired = 0;
  /// FNV-1a over the global delivery order: two runs of the same scenario
  /// must produce the same digest (the determinism regression hook).
  std::uint64_t order_digest = 0;
  obs::CheckStats check_stats;

  // ---- SLO accounting ---------------------------------------------------
  std::vector<obs::WindowedLatency::Window> windows;
  obs::WindowedLatency::Window overall;

  bool ok() const { return delivered && quiesced && checker_ok; }
};

RunResult run_scenario(const Scenario& s, const RunOptions& opts = {});

}  // namespace abcast::scenario
