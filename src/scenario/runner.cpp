#include "scenario/runner.hpp"

#include <exception>
#include <memory>

#include "harness/fixture.hpp"

namespace abcast::scenario {

namespace {

/// Channel spice applied to every scenario run: the paper's fair-lossy,
/// duplicating network, mild enough that the load driver's arrivals (not
/// the channel) dominate the schedule. Fixed constants — the serialized
/// scenario line plus these constants fully determine a run.
constexpr double kDropProb = 0.005;
constexpr double kDupProb = 0.005;

/// Retries recovery of `p` until it sticks (a recovery can die on its own
/// storage fault; the paper allows crashing during recovery).
void recover_until_up(sim::Simulation* sim, ProcessId p) {
  if (sim->host(p).is_up()) return;
  if (sim->recover(p)) return;
  sim->after(millis(20), [sim, p] { recover_until_up(sim, p); });
}

/// Installs one clause's events. Events at or past the horizon are not
/// scheduled: the horizon cleanup supersedes them (and a fault that would
/// START during the drain would make the drain unsound).
struct Installer {
  sim::Simulation* sim;
  Duration horizon;

  void operator()(const PartitionClause& cl) const {
    if (cl.at >= horizon) return;
    auto* s = sim;
    const auto side = cl.side;
    const auto mode = cl.mode;
    sim->at(cl.at, [s, side, mode] { s->partition(side, mode); });
    const Duration heal = cl.at + cl.hold;
    if (heal < horizon) {
      sim->at(heal, [s, side, mode] { s->unpartition(side, mode); });
    }
  }

  void operator()(const FlapClause& cl) const {
    auto* s = sim;
    const Duration half = cl.period / 2 > 0 ? cl.period / 2 : 1;
    for (std::uint32_t i = 0; i < cl.count; ++i) {
      const Duration down = cl.at + 2 * static_cast<Duration>(i) * half;
      const Duration up = down + half;
      if (down >= horizon) break;
      sim->at(down, [s, a = cl.a, b = cl.b] { s->block_link(a, b); });
      // The restore is scheduled even at/past the horizon: leaving a link
      // blocked can only hurt liveness, and heal_partition at the horizon
      // clears it anyway — this is just the belt to that brace.
      sim->at(up, [s, a = cl.a, b = cl.b] { s->unblock_link(a, b); });
    }
  }

  void operator()(const GrayClause& cl) const {
    if (cl.at >= horizon) return;
    auto* s = sim;
    sim->at(cl.at, [s, n = cl.node, f = cl.rx_factor] {
      s->set_rx_delay_factor(n, f);
    });
    const Duration end = cl.at + cl.hold;
    if (end < horizon) {
      sim->at(end, [s, n = cl.node] { s->set_rx_delay_factor(n, 1.0); });
    }
  }

  void operator()(const SkewClause&) const {
    // Applied before start (timers armed at start must already be skewed);
    // see run_scenario.
  }

  void operator()(const DiskClause& cl) const {
    if (cl.at >= horizon) return;
    auto* s = sim;
    sim->at(cl.at, [s, cl] {
      auto profile = s->storage_faults(cl.node).profile();
      profile.op_delay_min_ns = cl.delay_min;
      profile.op_delay_max_ns = cl.delay_max;
      profile.stall_prob = cl.stall_prob;
      profile.stall_ns = cl.stall;
      s->storage_faults(cl.node).set_profile(profile);
    });
    const Duration end = cl.at + cl.hold;
    if (end < horizon) {
      sim->at(end, [s, n = cl.node] {
        auto profile = s->storage_faults(n).profile();
        profile.op_delay_min_ns = 0;
        profile.op_delay_max_ns = 0;
        profile.stall_prob = 0.0;
        profile.stall_ns = 0;
        s->storage_faults(n).set_profile(profile);
      });
    }
  }

  void operator()(const BurstClause& cl) const {
    if (cl.at >= horizon) return;
    auto* s = sim;
    const auto victims = cl.victims;
    sim->at(cl.at, [s, victims] {
      for (const ProcessId v : victims) {
        if (s->host(v).is_up()) s->crash(v);
      }
    });
    const Duration back = cl.at + cl.down;
    if (back < horizon) {
      sim->at(back, [s, victims] {
        for (const ProcessId v : victims) recover_until_up(s, v);
      });
    }  // else: the horizon recovery pump brings them back
  }

  void operator()(const StormClause& cl) const {
    auto* s = sim;
    for (std::uint32_t i = 0; i < cl.times; ++i) {
      const Duration arm = cl.at + static_cast<Duration>(i) * cl.gap;
      if (arm >= horizon) break;
      sim->at(arm, [s, cl] {
        s->storage_faults(cl.node).arm_crash_in(cl.ops_ahead, cl.phase);
      });
      // Half a gap later, whatever died is pushed back through recovery
      // (which may itself die on the next armed point — that's the storm).
      const Duration mend = arm + cl.gap / 2;
      if (mend < horizon) {
        sim->at(mend, [s, n = cl.node] { recover_until_up(s, n); });
      }
    }
  }

  void operator()(const LoadClause&) const {
    // Load clauses are driven by LoadDriver, not scheduled here.
  }

  void operator()(const WinClause&) const {
    // Configuration, not a timed fault: pipeline_window is applied to the
    // cluster config before start (like skew); see run_scenario.
  }
};

/// The pipelining window a scenario requests (win(a=N) clause), default 1.
std::uint64_t scenario_window(const Scenario& s) {
  std::uint64_t alpha = 1;
  for (const auto& clause : s.clauses) {
    if (const auto* w = std::get_if<WinClause>(&clause)) alpha = w->alpha;
  }
  return alpha;
}

std::uint64_t fnv1a_order(const std::vector<MsgId>& order) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h = (h ^ v) * 1099511628211ull;
  };
  for (const auto& id : order) {
    mix(id.sender);
    mix(id.seq);
  }
  return h;
}

/// The multi-group twin of run_scenario's body (s.groups > 1). Same fault
/// installation, horizon cleanup, and recovery pump over the raw sim; the
/// audits differ because there is no live oracle between app and stack:
/// delivery of required submissions is checked per owning group, replica
/// convergence by shard digest equality, and safety by the strict
/// check_sharded_trace (per-group order + cross-shard atomicity).
RunResult run_sharded_scenario(const Scenario& s, const RunOptions& opts) {
  RunResult result;

  group::ShardedClusterConfig cfg;
  cfg.sim.n = s.n;
  cfg.sim.seed = s.seed * 2654435761ull + 1;
  cfg.sim.trace_capacity = opts.trace_capacity;
  cfg.sim.storage_factory = opts.storage_factory;
  cfg.sim.net.drop_prob = kDropProb;
  cfg.sim.net.dup_prob = kDupProb;
  cfg.node.layout = group::GroupConfig::uniform(s.n, s.groups);
  cfg.node.stack.engine = s.engine;
  if (s.alternative) {
    cfg.node.stack.ab = core::Options::alternative();
    cfg.node.stack.ab.checkpoint_period = millis(50);
  }
  if (s.digest_gossip) {
    cfg.node.stack.ab.digest_gossip = true;
    cfg.node.stack.ab.suppress_idle_gossip = true;
  }
  cfg.node.stack.ab.pipeline_window = scenario_window(s);
  const std::size_t max_state_bytes = cfg.node.stack.ab.max_state_bytes;

  group::ShardedCluster c(cfg);
  auto* sim = &c.sim();

  for (const auto& clause : s.clauses) {
    if (const auto* sk = std::get_if<SkewClause>(&clause)) {
      sim->set_timer_scale(sk->node, sk->scale);
    }
  }

  c.start_all();

  const Installer install{sim, s.horizon};
  for (const auto& clause : s.clauses) std::visit(install, clause);

  Rng load_rng(s.seed * 7919ull + 23);
  std::vector<std::unique_ptr<ShardedLoadDriver>> drivers;
  for (const auto& clause : s.clauses) {
    if (const auto* ld = std::get_if<LoadClause>(&clause)) {
      LoadClause clamped = *ld;
      if (clamped.at >= s.horizon) continue;
      if (clamped.at + clamped.hold > s.horizon) {
        clamped.hold = s.horizon - clamped.at;
      }
      drivers.push_back(
          std::make_unique<ShardedLoadDriver>(c, clamped, load_rng.fork()));
      drivers.back()->install();
    }
  }

  try {
    sim->run_until(s.horizon);

    // ---- horizon: stop injecting ---------------------------------------
    sim->heal_partition();
    for (ProcessId p = 0; p < sim->n(); ++p) {
      sim->set_rx_delay_factor(p, 1.0);
      sim->storage_faults(p).disarm_crash_point();
      auto profile = sim->storage_faults(p).profile();
      profile.op_delay_min_ns = 0;
      profile.op_delay_max_ns = 0;
      profile.stall_prob = 0.0;
      profile.stall_ns = 0;
      sim->storage_faults(p).set_profile(profile);
    }
    for (int tries = 0; tries < 200; ++tries) {
      bool all_up = true;
      for (ProcessId p = 0; p < sim->n(); ++p) {
        if (!sim->host(p).is_up()) {
          all_up = false;
          sim->recover(p);
        }
      }
      if (all_up) break;
      sim->run_for(millis(10));
    }
    for (ProcessId p = 0; p < sim->n(); ++p) {
      if (!sim->host(p).is_up()) {
        result.failure = "recovery keeps dying at p" + std::to_string(p);
        return result;
      }
    }

    // ---- required deliveries -------------------------------------------
    std::vector<std::pair<std::uint32_t, MsgId>> required;
    for (const auto& d : drivers) {
      result.load.arrivals += d->stats().arrivals;
      result.load.submitted += d->stats().submitted;
      result.load.completed += d->stats().completed;
      result.load.rejected_down += d->stats().rejected_down;
      result.load.pairs_submitted += d->stats().pairs_submitted;
      result.load.pairs_completed += d->stats().pairs_completed;
      for (const auto& sub : d->submissions()) {
        if (!sub.completed) continue;
        if (s.alternative ||
            sim->host(sub.node).stats().crashes ==
                sub.node_crashes_at_submit) {
          required.emplace_back(sub.group, sub.id);
        }
      }
    }
    result.required = required.size();
    // (Pair submissions carry no MsgId upward; their obligations are the
    // per-group Validity of their broadcasts plus the CrossShard rule.)

    result.delivered = sim->run_until_pred(
        [&c, &required] {
          for (const auto& [g, id] : required) {
            if (!c.delivered_everywhere(g, id)) return false;
          }
          return true;
        },
        sim->now() + opts.drain_timeout);
    if (!result.delivered) {
      result.failure = "required submissions not delivered everywhere";
      return result;
    }
    result.quiesced = c.await_quiesced(opts.drain_timeout);
    if (!result.quiesced) {
      result.failure = "cluster failed to quiesce";
      return result;
    }
  } catch (const std::exception& e) {
    result.failure = e.what();
    return result;
  }

  result.delivered_global = c.aggregate_delivered();
  // Convergence digest: fold each shard's replica-checked KV digest (the
  // shard_digest call itself asserts replicas agree).
  std::uint64_t h = 1469598103934665603ull;
  for (std::uint32_t g = 0; g < s.groups; ++g) {
    h = (h ^ g) * 1099511628211ull;
    h = (h ^ c.shard_digest(g)) * 1099511628211ull;
  }
  result.order_digest = h;
  result.events_fired = sim->events_fired();

  // ---- the oracle proper: strict offline sharded trace check ------------
  if (c.trace_dropped() != 0) {
    result.failure = "trace ring dropped events; raise trace_capacity";
    return result;
  }
  obs::CheckOptions check;
  check.require_quiesced = true;
  check.basic_protocol = !s.alternative;
  if (s.alternative) {
    check.max_state_chunk_bytes = max_state_bytes;
  }
  const auto report =
      obs::check_sharded_trace(c.collect_trace(), s.groups, check);
  result.check_stats = report.stats;
  result.checker_ok = report.ok();
  if (!result.checker_ok) {
    result.failure = obs::to_string(report.violations[0]);
  }
  return result;
}

}  // namespace

RunResult run_scenario(const Scenario& s, const RunOptions& opts) {
  if (s.groups > 1) return run_sharded_scenario(s, opts);

  RunResult result;

  harness::ClusterConfig cfg;
  cfg.sim.n = s.n;
  cfg.sim.seed = s.seed * 2654435761ull + 1;
  cfg.sim.trace_capacity = opts.trace_capacity;
  cfg.sim.storage_factory = opts.storage_factory;
  cfg.sim.net.drop_prob = kDropProb;
  cfg.sim.net.dup_prob = kDupProb;
  cfg.stack.engine = s.engine;
  if (s.alternative) {
    cfg.stack.ab = core::Options::alternative();
    cfg.stack.ab.checkpoint_period = millis(50);
  }
  if (s.digest_gossip) {
    cfg.stack.ab.digest_gossip = true;
    cfg.stack.ab.suppress_idle_gossip = true;
  }
  cfg.stack.ab.pipeline_window = scenario_window(s);

  harness::Cluster c(cfg);
  auto* sim = &c.sim();

  // Skew is a host property, applied before any timer is armed.
  for (const auto& clause : s.clauses) {
    if (const auto* sk = std::get_if<SkewClause>(&clause)) {
      sim->set_timer_scale(sk->node, sk->scale);
    }
  }

  c.start_all();

  const Installer install{sim, s.horizon};
  for (const auto& clause : s.clauses) std::visit(install, clause);

  // Load drivers, deterministically seeded per clause position.
  Rng load_rng(s.seed * 7919ull + 23);
  std::vector<std::unique_ptr<LoadDriver>> drivers;
  for (const auto& clause : s.clauses) {
    if (const auto* ld = std::get_if<LoadClause>(&clause)) {
      LoadClause clamped = *ld;
      // Arrivals must not outlive the horizon: the drain phase measures
      // the protocol, not a still-firing workload.
      if (clamped.at >= s.horizon) continue;
      if (clamped.at + clamped.hold > s.horizon) {
        clamped.hold = s.horizon - clamped.at;
      }
      drivers.push_back(
          std::make_unique<LoadDriver>(c, clamped, load_rng.fork()));
      drivers.back()->install();
    }
  }

  try {
    sim->run_until(s.horizon);

    // ---- horizon: stop injecting ---------------------------------------
    sim->heal_partition();
    for (ProcessId p = 0; p < sim->n(); ++p) {
      sim->set_rx_delay_factor(p, 1.0);
      sim->storage_faults(p).disarm_crash_point();
      auto profile = sim->storage_faults(p).profile();
      profile.op_delay_min_ns = 0;
      profile.op_delay_max_ns = 0;
      profile.stall_prob = 0.0;
      profile.stall_ns = 0;
      sim->storage_faults(p).set_profile(profile);
    }
    // Recovery pump: every process must come (and stay) up.
    for (int tries = 0; tries < 200; ++tries) {
      bool all_up = true;
      for (ProcessId p = 0; p < sim->n(); ++p) {
        if (!sim->host(p).is_up()) {
          all_up = false;
          sim->recover(p);
        }
      }
      if (all_up) break;
      sim->run_for(millis(10));
    }
    for (ProcessId p = 0; p < sim->n(); ++p) {
      if (!sim->host(p).is_up()) {
        result.failure = "recovery keeps dying at p" + std::to_string(p);
        return result;
      }
    }

    // ---- required deliveries -------------------------------------------
    std::vector<MsgId> required;
    for (const auto& d : drivers) {
      result.load.arrivals += d->stats().arrivals;
      result.load.submitted += d->stats().submitted;
      result.load.completed += d->stats().completed;
      result.load.rejected_down += d->stats().rejected_down;
      for (const auto& sub : d->submissions()) {
        if (!sub.completed) continue;
        // log_unordered (alternative protocol) makes a completed broadcast
        // durable; otherwise demand it only if the submitting process
        // never crashed after the call (paper Termination obliges only
        // processes that stay up).
        if (s.alternative ||
            sim->host(sub.node).stats().crashes ==
                sub.node_crashes_at_submit) {
          required.push_back(sub.id);
        }
      }
    }
    result.required = required.size();

    result.delivered =
        c.await_delivery(required, {}, opts.drain_timeout);
    if (!result.delivered) {
      result.failure = "required submissions not delivered everywhere";
      return result;
    }
    result.quiesced = c.await_quiesced(opts.drain_timeout);
    if (!result.quiesced) {
      result.failure = "cluster failed to quiesce";
      return result;
    }
    c.oracle().check();
  } catch (const std::exception& e) {
    // An oracle invariant (total order / integrity / validity) or a
    // harness check tripped mid-run.
    result.failure = e.what();
    return result;
  }

  result.delivered_global = c.oracle().global_order().size();
  result.order_digest = fnv1a_order(c.oracle().global_order());
  result.events_fired = sim->events_fired();

  // ---- SLO accounting ---------------------------------------------------
  obs::WindowedLatency wl(0, opts.window);
  for (const auto& tl : c.oracle().timed_latencies()) {
    wl.record(tl.delivered_at, tl.latency);
  }
  result.windows = wl.windows();
  result.overall = wl.overall();

  // ---- the oracle proper: strict offline trace check --------------------
  if (c.trace_dropped() != 0) {
    result.failure = "trace ring dropped events; raise trace_capacity";
    return result;
  }
  obs::CheckOptions check;
  check.require_quiesced = true;
  check.basic_protocol = !s.alternative;
  if (s.alternative) {
    check.max_state_chunk_bytes = cfg.stack.ab.max_state_bytes;
  }
  const auto report = obs::check_trace(c.collect_trace(), check);
  result.check_stats = report.stats;
  result.checker_ok = report.ok();
  if (!result.checker_ok) {
    result.failure = obs::to_string(report.violations[0]);
  }
  return result;
}

}  // namespace abcast::scenario
