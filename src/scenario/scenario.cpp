#include "scenario/scenario.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <type_traits>

#include "common/rng.hpp"

namespace abcast::scenario {

namespace {

// Adversarial-input budget (scenario lines arrive from sweep configs and
// the fuzzers, not just generate_scenario): a line the harness would accept
// must stay small enough that replaying it is always cheap.
constexpr std::size_t kMaxLineBytes = 64 * 1024;
constexpr std::size_t kMaxClauses = 128;
constexpr std::size_t kMaxPids = 256;
// Loose sanity cap for rate/scale factors; real scenarios use single-digit
// factors, and unbounded values turn the simulated clock degenerate.
constexpr double kMaxFactor = 1e6;

// ---- serialization helpers ----------------------------------------------

/// Smallest exact unit: "250ms", "80us", "1s", "0s". Always integral.
std::string fmt_dur(Duration d) {
  if (d == 0) return "0s";
  if (d % seconds(1) == 0) return std::to_string(d / seconds(1)) + "s";
  if (d % millis(1) == 0) return std::to_string(d / millis(1)) + "ms";
  if (d % micros(1) == 0) return std::to_string(d / micros(1)) + "us";
  return std::to_string(d) + "ns";
}

/// %.15g round-trips every value the generator emits (short decimals) and
/// every double a hand-written scenario plausibly contains.
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.15g", v);
  return buf;
}

std::string fmt_pids(const std::vector<ProcessId>& pids) {
  std::string out;
  for (std::size_t i = 0; i < pids.size(); ++i) {
    if (i != 0) out += '|';
    out += std::to_string(pids[i]);
  }
  return out;
}

const char* fmt_mode(sim::PartitionMode m) {
  switch (m) {
    case sim::PartitionMode::kSymmetric: return "sym";
    case sim::PartitionMode::kInbound: return "in";
    case sim::PartitionMode::kOutbound: return "out";
  }
  return "sym";
}

const char* fmt_phase(CrashPhase p) {
  switch (p) {
    case CrashPhase::kBeforeOp: return "before";
    case CrashPhase::kTornWrite: return "torn";
    case CrashPhase::kAfterOp: return "after";
  }
  return "before";
}

// ---- parsing helpers -----------------------------------------------------

struct Parser {
  std::string error;

  bool fail(const std::string& why) {
    if (error.empty()) error = why;
    return false;
  }

  bool u64(const std::string& s, std::uint64_t& out) {
    if (s.empty()) return fail("empty integer");
    char* end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (errno != 0 || end != s.c_str() + s.size()) {
      return fail("bad integer '" + s + "'");
    }
    out = v;
    return true;
  }

  bool u32(const std::string& s, std::uint32_t& out) {
    std::uint64_t v = 0;
    if (!u64(s, v)) return false;
    if (v > 0xffffffffull) return fail("integer '" + s + "' out of range");
    out = static_cast<std::uint32_t>(v);
    return true;
  }

  bool pid(const std::string& s, ProcessId& out) { return u32(s, out); }

  bool real(const std::string& s, double& out) {
    if (s.empty()) return fail("empty number");
    char* end = nullptr;
    errno = 0;
    const double v = std::strtod(s.c_str(), &end);
    if (errno != 0 || end != s.c_str() + s.size()) {
      return fail("bad number '" + s + "'");
    }
    // strtod happily accepts "nan"/"inf"; no clause has a meaningful
    // non-finite parameter, and nan breaks the serialize/parse fixpoint.
    if (!std::isfinite(v)) return fail("non-finite number '" + s + "'");
    out = v;
    return true;
  }

  bool dur(const std::string& s, Duration& out) {
    std::size_t unit = s.size();
    while (unit > 0 && (s[unit - 1] < '0' || s[unit - 1] > '9')) unit -= 1;
    const std::string digits = s.substr(0, unit);
    const std::string suffix = s.substr(unit);
    std::uint64_t v = 0;
    if (!u64(digits, v)) return fail("bad duration '" + s + "'");
    Duration scale = 0;
    if (suffix == "ns") scale = 1;
    else if (suffix == "us") scale = micros(1);
    else if (suffix == "ms") scale = millis(1);
    else if (suffix == "s") scale = seconds(1);
    else return fail("bad duration unit '" + s + "'");
    if (v > static_cast<std::uint64_t>(INT64_MAX / scale)) {
      return fail("duration '" + s + "' overflows");
    }
    out = static_cast<Duration>(v) * scale;
    return true;
  }

  bool pids(const std::string& s, std::vector<ProcessId>& out) {
    out.clear();
    std::size_t pos = 0;
    while (pos <= s.size()) {
      const std::size_t bar = s.find('|', pos);
      const std::string tok =
          s.substr(pos, bar == std::string::npos ? std::string::npos
                                                 : bar - pos);
      ProcessId p = 0;
      if (!pid(tok, p)) return false;
      if (out.size() >= kMaxPids) return fail("process list too long");
      out.push_back(p);
      if (bar == std::string::npos) break;
      pos = bar + 1;
    }
    if (out.empty()) return fail("empty process list");
    return true;
  }

  bool mode(const std::string& s, sim::PartitionMode& out) {
    if (s == "sym") out = sim::PartitionMode::kSymmetric;
    else if (s == "in") out = sim::PartitionMode::kInbound;
    else if (s == "out") out = sim::PartitionMode::kOutbound;
    else return fail("bad partition mode '" + s + "'");
    return true;
  }

  bool phase(const std::string& s, CrashPhase& out) {
    if (s == "before") out = CrashPhase::kBeforeOp;
    else if (s == "torn") out = CrashPhase::kTornWrite;
    else if (s == "after") out = CrashPhase::kAfterOp;
    else return fail("bad crash phase '" + s + "'");
    return true;
  }
};

/// Splits "k1=v1,k2=v2" into pairs; no nesting, values contain no commas.
bool split_kvs(const std::string& body,
               std::vector<std::pair<std::string, std::string>>& out,
               Parser& p) {
  out.clear();
  if (body.empty()) return true;
  std::size_t pos = 0;
  while (pos <= body.size()) {
    const std::size_t comma = body.find(',', pos);
    const std::string item =
        body.substr(pos, comma == std::string::npos ? std::string::npos
                                                    : comma - pos);
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0) {
      return p.fail("expected key=value, got '" + item + "'");
    }
    out.emplace_back(item.substr(0, eq), item.substr(eq + 1));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return true;
}

/// Looks up a required key; fails with the clause kind in the message.
bool need(const std::vector<std::pair<std::string, std::string>>& kvs,
          const std::string& kind, const std::string& key, std::string& out,
          Parser& p) {
  for (const auto& [k, v] : kvs) {
    if (k == key) {
      out = v;
      return true;
    }
  }
  return p.fail(kind + ": missing " + key);
}

/// Looks up an optional key; absence is not an error.
bool opt(const std::vector<std::pair<std::string, std::string>>& kvs,
         const std::string& key, std::string& out) {
  for (const auto& [k, v] : kvs) {
    if (k == key) {
      out = v;
      return true;
    }
  }
  return false;
}

}  // namespace

const char* clause_kind(const Clause& c) {
  return std::visit(
      [](const auto& cl) -> const char* {
        using T = std::decay_t<decltype(cl)>;
        if constexpr (std::is_same_v<T, PartitionClause>) return "part";
        else if constexpr (std::is_same_v<T, FlapClause>) return "flap";
        else if constexpr (std::is_same_v<T, GrayClause>) return "gray";
        else if constexpr (std::is_same_v<T, SkewClause>) return "skew";
        else if constexpr (std::is_same_v<T, DiskClause>) return "disk";
        else if constexpr (std::is_same_v<T, BurstClause>) return "burst";
        else if constexpr (std::is_same_v<T, StormClause>) return "storm";
        else if constexpr (std::is_same_v<T, WinClause>) return "win";
        else return "load";
      },
      c);
}

std::string Scenario::serialize() const {
  std::ostringstream out;
  out << "scn1 seed=" << seed << " n=" << n
      << " horizon=" << fmt_dur(horizon)
      << " engine=" << (engine == ConsensusKind::kPaxos ? "paxos"
                                                              : "coord")
      << " variant=" << (alternative ? "alt" : "basic")
      << " gossip=" << (digest_gossip ? "digest" : "full");
  if (groups != 1) out << " groups=" << groups;
  for (const auto& c : clauses) {
    out << ' ' << clause_kind(c) << '(';
    std::visit(
        [&out](const auto& cl) {
          using T = std::decay_t<decltype(cl)>;
          if constexpr (std::is_same_v<T, PartitionClause>) {
            out << "at=" << fmt_dur(cl.at) << ",for=" << fmt_dur(cl.hold)
                << ",side=" << fmt_pids(cl.side)
                << ",mode=" << fmt_mode(cl.mode);
          } else if constexpr (std::is_same_v<T, FlapClause>) {
            out << "at=" << fmt_dur(cl.at) << ",a=" << cl.a << ",b=" << cl.b
                << ",period=" << fmt_dur(cl.period)
                << ",count=" << cl.count;
          } else if constexpr (std::is_same_v<T, GrayClause>) {
            out << "at=" << fmt_dur(cl.at) << ",for=" << fmt_dur(cl.hold)
                << ",node=" << cl.node
                << ",rx=" << fmt_double(cl.rx_factor);
          } else if constexpr (std::is_same_v<T, SkewClause>) {
            out << "node=" << cl.node << ",scale=" << fmt_double(cl.scale);
          } else if constexpr (std::is_same_v<T, DiskClause>) {
            out << "at=" << fmt_dur(cl.at) << ",for=" << fmt_dur(cl.hold)
                << ",node=" << cl.node << ",min=" << fmt_dur(cl.delay_min)
                << ",max=" << fmt_dur(cl.delay_max)
                << ",stallp=" << fmt_double(cl.stall_prob)
                << ",stall=" << fmt_dur(cl.stall);
          } else if constexpr (std::is_same_v<T, BurstClause>) {
            out << "at=" << fmt_dur(cl.at)
                << ",victims=" << fmt_pids(cl.victims)
                << ",down=" << fmt_dur(cl.down);
          } else if constexpr (std::is_same_v<T, StormClause>) {
            out << "at=" << fmt_dur(cl.at) << ",node=" << cl.node
                << ",ops=" << cl.ops_ahead
                << ",phase=" << fmt_phase(cl.phase)
                << ",times=" << cl.times << ",gap=" << fmt_dur(cl.gap);
          } else if constexpr (std::is_same_v<T, WinClause>) {
            out << "a=" << cl.alpha;
          } else {  // LoadClause
            out << "at=" << fmt_dur(cl.at) << ",for=" << fmt_dur(cl.hold)
                << ",gap=" << fmt_dur(cl.mean_gap)
                << ",clients=" << cl.clients << ",bytes=" << cl.bytes;
            // Keyed-mode fields only when active — older lines stay valid
            // and generate_scenario's serializations are byte-identical.
            if (cl.keys != 0) {
              out << ",keys=" << cl.keys << ",hot=" << fmt_double(cl.hot);
            }
          }
        },
        c);
    out << ')';
  }
  return out.str();
}

std::optional<Scenario> Scenario::parse(const std::string& line,
                                        std::string* error) {
  Parser p;
  Scenario s;
  s.clauses.clear();

  auto bail = [&]() -> std::optional<Scenario> {
    if (error != nullptr) *error = p.error.empty() ? "parse error" : p.error;
    return std::nullopt;
  };

  if (line.size() > kMaxLineBytes) {
    p.fail("line exceeds " + std::to_string(kMaxLineBytes) + " bytes");
    return bail();
  }

  std::istringstream in(line);
  std::string tok;
  if (!(in >> tok) || tok != "scn1") {
    p.fail("expected 'scn1' header, got '" + tok + "'");
    return bail();
  }

  std::vector<std::pair<std::string, std::string>> kvs;
  while (in >> tok) {
    const std::size_t paren = tok.find('(');
    if (paren == std::string::npos) {
      // header field
      const std::size_t eq = tok.find('=');
      if (eq == std::string::npos || eq == 0) {
        p.fail("expected field or clause, got '" + tok + "'");
        return bail();
      }
      const std::string key = tok.substr(0, eq);
      const std::string val = tok.substr(eq + 1);
      bool ok = true;
      if (key == "seed") ok = p.u64(val, s.seed);
      else if (key == "n") ok = p.u32(val, s.n);
      else if (key == "horizon") ok = p.dur(val, s.horizon);
      else if (key == "engine") {
        if (val == "paxos") s.engine = ConsensusKind::kPaxos;
        else if (val == "coord") s.engine = ConsensusKind::kCoord;
        else ok = p.fail("bad engine '" + val + "'");
      } else if (key == "variant") {
        if (val == "alt") s.alternative = true;
        else if (val == "basic") s.alternative = false;
        else ok = p.fail("bad variant '" + val + "'");
      } else if (key == "gossip") {
        if (val == "digest") s.digest_gossip = true;
        else if (val == "full") s.digest_gossip = false;
        else ok = p.fail("bad gossip mode '" + val + "'");
      } else if (key == "groups") {
        ok = p.u32(val, s.groups);
      } else {
        ok = p.fail("unknown field '" + key + "'");
      }
      if (!ok) return bail();
      continue;
    }

    // clause: kind(body)
    if (tok.back() != ')') {
      p.fail("unterminated clause '" + tok + "'");
      return bail();
    }
    if (s.clauses.size() >= kMaxClauses) {
      p.fail("more than " + std::to_string(kMaxClauses) + " clauses");
      return bail();
    }
    const std::string kind = tok.substr(0, paren);
    const std::string body =
        tok.substr(paren + 1, tok.size() - paren - 2);
    if (!split_kvs(body, kvs, p)) return bail();
    std::string v1, v2, v3, v4, v5, v6, v7;

    if (kind == "part") {
      PartitionClause cl;
      if (!need(kvs, kind, "at", v1, p) || !p.dur(v1, cl.at) ||
          !need(kvs, kind, "for", v2, p) || !p.dur(v2, cl.hold) ||
          !need(kvs, kind, "side", v3, p) || !p.pids(v3, cl.side) ||
          !need(kvs, kind, "mode", v4, p) || !p.mode(v4, cl.mode)) {
        return bail();
      }
      s.clauses.emplace_back(cl);
    } else if (kind == "flap") {
      FlapClause cl;
      if (!need(kvs, kind, "at", v1, p) || !p.dur(v1, cl.at) ||
          !need(kvs, kind, "a", v2, p) || !p.pid(v2, cl.a) ||
          !need(kvs, kind, "b", v3, p) || !p.pid(v3, cl.b) ||
          !need(kvs, kind, "period", v4, p) || !p.dur(v4, cl.period) ||
          !need(kvs, kind, "count", v5, p) || !p.u32(v5, cl.count)) {
        return bail();
      }
      s.clauses.emplace_back(cl);
    } else if (kind == "gray") {
      GrayClause cl;
      if (!need(kvs, kind, "at", v1, p) || !p.dur(v1, cl.at) ||
          !need(kvs, kind, "for", v2, p) || !p.dur(v2, cl.hold) ||
          !need(kvs, kind, "node", v3, p) || !p.pid(v3, cl.node) ||
          !need(kvs, kind, "rx", v4, p) || !p.real(v4, cl.rx_factor)) {
        return bail();
      }
      s.clauses.emplace_back(cl);
    } else if (kind == "skew") {
      SkewClause cl;
      if (!need(kvs, kind, "node", v1, p) || !p.pid(v1, cl.node) ||
          !need(kvs, kind, "scale", v2, p) || !p.real(v2, cl.scale)) {
        return bail();
      }
      s.clauses.emplace_back(cl);
    } else if (kind == "disk") {
      DiskClause cl;
      if (!need(kvs, kind, "at", v1, p) || !p.dur(v1, cl.at) ||
          !need(kvs, kind, "for", v2, p) || !p.dur(v2, cl.hold) ||
          !need(kvs, kind, "node", v3, p) || !p.pid(v3, cl.node) ||
          !need(kvs, kind, "min", v4, p) || !p.dur(v4, cl.delay_min) ||
          !need(kvs, kind, "max", v5, p) || !p.dur(v5, cl.delay_max) ||
          !need(kvs, kind, "stallp", v6, p) || !p.real(v6, cl.stall_prob) ||
          !need(kvs, kind, "stall", v7, p) || !p.dur(v7, cl.stall)) {
        return bail();
      }
      s.clauses.emplace_back(cl);
    } else if (kind == "burst") {
      BurstClause cl;
      if (!need(kvs, kind, "at", v1, p) || !p.dur(v1, cl.at) ||
          !need(kvs, kind, "victims", v2, p) || !p.pids(v2, cl.victims) ||
          !need(kvs, kind, "down", v3, p) || !p.dur(v3, cl.down)) {
        return bail();
      }
      s.clauses.emplace_back(cl);
    } else if (kind == "storm") {
      StormClause cl;
      if (!need(kvs, kind, "at", v1, p) || !p.dur(v1, cl.at) ||
          !need(kvs, kind, "node", v2, p) || !p.pid(v2, cl.node) ||
          !need(kvs, kind, "ops", v3, p) || !p.u32(v3, cl.ops_ahead) ||
          !need(kvs, kind, "phase", v4, p) || !p.phase(v4, cl.phase) ||
          !need(kvs, kind, "times", v5, p) || !p.u32(v5, cl.times) ||
          !need(kvs, kind, "gap", v6, p) || !p.dur(v6, cl.gap)) {
        return bail();
      }
      s.clauses.emplace_back(cl);
    } else if (kind == "load") {
      LoadClause cl;
      if (!need(kvs, kind, "at", v1, p) || !p.dur(v1, cl.at) ||
          !need(kvs, kind, "for", v2, p) || !p.dur(v2, cl.hold) ||
          !need(kvs, kind, "gap", v3, p) || !p.dur(v3, cl.mean_gap) ||
          !need(kvs, kind, "clients", v4, p) || !p.u32(v4, cl.clients) ||
          !need(kvs, kind, "bytes", v5, p) || !p.u32(v5, cl.bytes)) {
        return bail();
      }
      if (opt(kvs, "keys", v6) && !p.u32(v6, cl.keys)) return bail();
      if (opt(kvs, "hot", v7) && !p.real(v7, cl.hot)) return bail();
      s.clauses.emplace_back(cl);
    } else if (kind == "win") {
      WinClause cl;
      if (!need(kvs, kind, "a", v1, p) || !p.u32(v1, cl.alpha)) {
        return bail();
      }
      s.clauses.emplace_back(cl);
    } else {
      p.fail("unknown clause kind '" + kind + "'");
      return bail();
    }
  }

  // Structural sanity: every referenced process must exist.
  if (s.n == 0) {
    p.fail("n must be >= 1");
    return bail();
  }
  if (s.groups == 0) {
    p.fail("groups must be >= 1");
    return bail();
  }
  for (const auto& c : s.clauses) {
    bool ok = std::visit(
        [&s](const auto& cl) {
          using T = std::decay_t<decltype(cl)>;
          if constexpr (std::is_same_v<T, PartitionClause>) {
            for (const ProcessId q : cl.side) {
              if (q >= s.n) return false;
            }
          } else if constexpr (std::is_same_v<T, FlapClause>) {
            return cl.a < s.n && cl.b < s.n && cl.a != cl.b &&
                   cl.period > 0;
          } else if constexpr (std::is_same_v<T, GrayClause>) {
            return cl.node < s.n && cl.rx_factor >= 0.0 &&
                   cl.rx_factor <= kMaxFactor;
          } else if constexpr (std::is_same_v<T, SkewClause>) {
            return cl.node < s.n && cl.scale > 0.0 &&
                   cl.scale <= kMaxFactor;
          } else if constexpr (std::is_same_v<T, DiskClause>) {
            return cl.node < s.n && cl.delay_max >= cl.delay_min &&
                   cl.stall_prob >= 0.0 && cl.stall_prob <= 1.0;
          } else if constexpr (std::is_same_v<T, BurstClause>) {
            for (const ProcessId q : cl.victims) {
              if (q >= s.n) return false;
            }
          } else if constexpr (std::is_same_v<T, StormClause>) {
            return cl.node < s.n && cl.ops_ahead >= 1;
          } else if constexpr (std::is_same_v<T, WinClause>) {
            return cl.alpha >= 1;
          } else {  // LoadClause
            // hot without keys would not survive serialize() (which omits
            // both when keys == 0), breaking the one-line-repro fixpoint.
            return cl.mean_gap > 0 && cl.clients >= 1 && cl.hot >= 0.0 &&
                   cl.hot <= 1.0 && (cl.keys != 0 || cl.hot == 0.0);
          }
          return true;
        },
        c);
    if (!ok) {
      p.fail(std::string(clause_kind(c)) + ": invalid parameters");
      return bail();
    }
  }
  return s;
}

// ---- the adversary -------------------------------------------------------

namespace {

/// A double with two decimals in [lo, hi] — short enough to serialize
/// exactly and read comfortably in a failure log.
double pick_real(Rng& rng, double lo, double hi) {
  const auto lo_c = static_cast<std::int64_t>(lo * 100.0);
  const auto hi_c = static_cast<std::int64_t>(hi * 100.0);
  return static_cast<double>(rng.uniform(lo_c, hi_c)) / 100.0;
}

std::vector<ProcessId> pick_subset(Rng& rng, std::uint32_t n,
                                   std::uint32_t min_size,
                                   std::uint32_t max_size) {
  const auto size = static_cast<std::uint32_t>(
      rng.uniform(min_size, max_size));
  std::vector<ProcessId> all;
  for (ProcessId p = 0; p < n; ++p) all.push_back(p);
  // Partial Fisher-Yates: the first `size` entries are the subset.
  for (std::uint32_t i = 0; i < size; ++i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform(i, static_cast<std::int64_t>(n) - 1));
    std::swap(all[i], all[j]);
  }
  all.resize(size);
  return all;
}

Clause make_clause(Rng& rng, std::size_t kind, const Scenario& s) {
  const auto pick_node = [&rng, &s]() {
    return static_cast<ProcessId>(
        rng.uniform(0, static_cast<std::int64_t>(s.n) - 1));
  };
  const auto pick_at = [&rng, &s]() {
    return millis(rng.uniform(50, s.horizon / millis(1) / 2));
  };
  switch (kind) {
    case 0: {
      PartitionClause cl;
      cl.at = pick_at();
      cl.hold = millis(rng.uniform(100, 350));
      cl.side = pick_subset(rng, s.n, 1, s.n - 1);
      const std::int64_t m = rng.uniform(0, 2);
      cl.mode = m == 0 ? sim::PartitionMode::kSymmetric
                       : (m == 1 ? sim::PartitionMode::kInbound
                                 : sim::PartitionMode::kOutbound);
      return cl;
    }
    case 1: {
      FlapClause cl;
      cl.at = pick_at();
      cl.a = pick_node();
      cl.b = static_cast<ProcessId>((cl.a + 1 +
                                     static_cast<std::uint32_t>(rng.uniform(
                                         0, static_cast<std::int64_t>(s.n) -
                                                2))) %
                                    s.n);
      cl.period = millis(rng.uniform(20, 80));
      cl.count = static_cast<std::uint32_t>(rng.uniform(2, 5));
      return cl;
    }
    case 2: {
      GrayClause cl;
      cl.at = pick_at();
      cl.hold = millis(rng.uniform(100, 350));
      cl.node = pick_node();
      cl.rx_factor = pick_real(rng, 2.0, 20.0);
      return cl;
    }
    case 3: {
      SkewClause cl;
      cl.node = pick_node();
      cl.scale = pick_real(rng, 0.7, 1.5);
      return cl;
    }
    case 4: {
      DiskClause cl;
      cl.at = pick_at();
      cl.hold = millis(rng.uniform(100, 350));
      cl.node = pick_node();
      cl.delay_min = micros(rng.uniform(50, 200));
      cl.delay_max = cl.delay_min + micros(rng.uniform(0, 2000));
      cl.stall_prob = pick_real(rng, 0.0, 0.05);
      cl.stall = millis(rng.uniform(5, 40));
      return cl;
    }
    case 5: {
      BurstClause cl;
      cl.at = pick_at();
      cl.victims = pick_subset(rng, s.n, 1, s.n - 1);
      cl.down = millis(rng.uniform(50, 250));
      return cl;
    }
    case 6: {
      StormClause cl;
      cl.at = pick_at();
      cl.node = pick_node();
      cl.ops_ahead = static_cast<std::uint32_t>(rng.uniform(2, 8));
      const std::int64_t ph = rng.uniform(0, 2);
      cl.phase = ph == 0 ? CrashPhase::kBeforeOp
                         : (ph == 1 ? CrashPhase::kTornWrite
                                    : CrashPhase::kAfterOp);
      cl.times = static_cast<std::uint32_t>(rng.uniform(1, 3));
      cl.gap = millis(rng.uniform(60, 150));
      return cl;
    }
    default: {
      // Extra load clause: a second arrival process (different tempo).
      LoadClause cl;
      cl.at = millis(rng.uniform(0, 100));
      cl.hold = millis(rng.uniform(200, 500));
      cl.mean_gap = millis(rng.uniform(4, 20));
      cl.clients = static_cast<std::uint32_t>(1 << rng.uniform(0, 6));
      cl.bytes = static_cast<std::uint32_t>(rng.uniform(8, 64));
      return cl;
    }
  }
}

}  // namespace

Scenario generate_scenario(std::uint64_t seed) {
  Scenario s;
  s.seed = seed;
  // Cross the protocol axes uniformly, the same parities trace_sweep uses,
  // so consecutive seed ranges cover engine x variant x gossip evenly.
  s.engine = (seed % 2) ? ConsensusKind::kCoord
                        : ConsensusKind::kPaxos;
  s.alternative = ((seed / 2) % 2) != 0;
  s.digest_gossip = ((seed / 4) % 2) != 0;
  s.n = (seed % 10 == 7) ? 5 : 3;
  // The pipelining-window axis (α ∈ {1, 4, 16}): a deterministic seed digit
  // like the axes above, emitted as a clause only when α != 1 so every
  // pre-window scenario line is unchanged. Two thirds of the sweep runs
  // pipelined, crossing α with engine × variant × gossip × fault mix.
  switch ((seed / 8) % 3) {
    case 1: s.clauses.emplace_back(WinClause{4}); break;
    case 2: s.clauses.emplace_back(WinClause{16}); break;
    default: break;
  }

  Rng rng(seed * 0x9e3779b97f4a7c15ull + 0xabcbadull);
  s.horizon = millis(rng.uniform(600, 1000));

  // The primary open-loop load clause: always present, spans most of the
  // horizon so faults land under traffic.
  {
    LoadClause load;
    load.at = millis(rng.uniform(0, 40));
    load.hold = s.horizon - load.at - millis(100);
    load.mean_gap = millis(rng.uniform(2, 12));
    load.clients = static_cast<std::uint32_t>(1 << rng.uniform(3, 10));
    load.bytes = static_cast<std::uint32_t>(rng.uniform(8, 64));
    s.clauses.emplace_back(load);
  }

  // One guaranteed clause per seed, rotating through every fault kind (and
  // the extra-load kind) so any 8 consecutive seeds cover all kinds; then
  // 1..3 more drawn at random.
  constexpr std::size_t kKinds = 8;
  s.clauses.push_back(make_clause(rng, seed % kKinds, s));
  const std::int64_t extra = rng.uniform(1, 3);
  for (std::int64_t i = 0; i < extra; ++i) {
    s.clauses.push_back(make_clause(
        rng, static_cast<std::size_t>(rng.uniform(0, kKinds - 1)), s));
  }
  return s;
}

}  // namespace abcast::scenario
