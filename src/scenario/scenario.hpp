// Adversarial scenario DSL (DESIGN.md §12).
//
// A Scenario is a declarative description of one hostile run: the cluster
// shape, the protocol configuration under test, and a list of fault clauses
// (asymmetric partitions, flapping links, gray failure, clock skew, slow
// disks, correlated crash bursts, crash-point storms) plus an open-loop
// load clause. Scenarios come from two places and are interchangeable:
//
//   * generate_scenario(seed) — the adversary: a single RNG seed expands
//     into a parameterized scenario, so a 100-seed sweep explores hundreds
//     of distinct hostile schedules with no hand-written plans;
//   * parse() — the reproducer: every scenario serializes to one line of
//     text (`scn1 seed=42 n=3 ... gray(at=100ms,for=250ms,node=1,rx=8.5)`),
//     printed on failure, so any red sweep seed replays from the log.
//
// The semantics of each clause live in runner.cpp; this header is only the
// data model, its generator, and the (de)serializer. serialize() and
// parse() are exact inverses for every representable scenario — the
// round-trip is enforced per clause kind by ablint rule 5.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/types.hpp"
#include "core/node_stack.hpp"
#include "storage/faulty_storage.hpp"
#include "sim/simulation.hpp"

namespace abcast::scenario {

/// Every clause kind the DSL knows, by its serialized keyword. ablint's
/// scenario-roundtrip rule walks this array and requires a
/// `// ablint:scenario-roundtrip <kind>` round-trip test for each entry;
/// add the test when you add the kind.
constexpr const char* kScenarioClauseKinds[] = {
    "part", "flap", "gray", "skew", "disk", "burst", "storm", "load", "win",
};

/// part(at,for,side,mode): partition {side} from the rest at `at`, heal
/// exactly that cut `for` later. mode=sym|in|out selects which directions
/// across the cut are blocked (see sim::PartitionMode).
struct PartitionClause {
  Duration at = 0;
  Duration hold = 0;
  std::vector<ProcessId> side;
  sim::PartitionMode mode = sim::PartitionMode::kSymmetric;
  bool operator==(const PartitionClause&) const = default;
};

/// flap(at,a,b,period,count): the directed link a->b flaps: blocked for
/// one half-period, restored for the next, `count` full cycles starting at
/// `at`. Ends restored. One-way on purpose — a flapping link that drops
/// only one direction is the nastiest variant.
struct FlapClause {
  Duration at = 0;
  ProcessId a = 0;
  ProcessId b = 0;
  Duration period = 0;
  std::uint32_t count = 0;
  bool operator==(const FlapClause&) const = default;
};

/// gray(at,for,node,rx): gray failure — `node` is slow, not dead: every
/// datagram addressed to it takes rx× the nominal channel delay for the
/// window. Timers and sends still run; peers see a laggard, not a corpse.
struct GrayClause {
  Duration at = 0;
  Duration hold = 0;
  ProcessId node = 0;
  double rx_factor = 1.0;
  bool operator==(const GrayClause&) const = default;
};

/// skew(node,scale): `node`'s clock runs off-rate for the whole run —
/// every protocol timer delay is multiplied by `scale` (>1 slow clock,
/// <1 fast). Persistent by design: skew is a property of the host.
struct SkewClause {
  ProcessId node = 0;
  double scale = 1.0;
  bool operator==(const SkewClause&) const = default;
};

/// disk(at,for,node,min,max,stallp,stall): slow disk — during the window
/// every storage op on `node` accrues a uniform [min,max] delay and, with
/// probability stallp, an additional `stall` hiccup. Realized through the
/// FaultyStorage latency mode; the host stalls past the accrued time.
struct DiskClause {
  Duration at = 0;
  Duration hold = 0;
  ProcessId node = 0;
  Duration delay_min = 0;
  Duration delay_max = 0;
  double stall_prob = 0.0;
  Duration stall = 0;
  bool operator==(const DiskClause&) const = default;
};

/// burst(at,victims,down): correlated crash burst — every victim crashes
/// at the same instant (shared rack, shared power feed) and recovery is
/// attempted `down` later.
struct BurstClause {
  Duration at = 0;
  std::vector<ProcessId> victims;
  Duration down = 0;
  bool operator==(const BurstClause&) const = default;
};

/// storm(at,node,ops,phase,times,gap): crash-point storm — starting at
/// `at` and re-arming every `gap`, `node`'s storage is armed to crash
/// `ops` operations later in `phase`, `times` times in a row. The process
/// keeps dying mid-log-write and recovering into the next armed crash.
struct StormClause {
  Duration at = 0;
  ProcessId node = 0;
  std::uint32_t ops_ahead = 1;
  CrashPhase phase = CrashPhase::kBeforeOp;
  std::uint32_t times = 1;
  Duration gap = 0;
  bool operator==(const StormClause&) const = default;
};

/// load(at,for,gap,clients,bytes[,keys,hot]): open-loop load — arrivals
/// with exponential inter-arrival time (mean `gap`) from `clients`
/// simulated client sessions, each submission a `bytes`-byte A-broadcast
/// at the session's home node. Open-loop: arrivals do not wait for
/// completions, so a stalled cluster accumulates latency instead of
/// hiding it.
///
/// Keyed mode (keys > 0): each arrival is a KV put against a key drawn
/// from a `keys`-sized key space (see pick_key); in a sharded run the key
/// hash picks the owning group, so this is what exercises the router's
/// distribution. `hot` in [0,1] sends that fraction of arrivals to a
/// small hot subset (skewed workloads collapse onto few shards).
struct LoadClause {
  Duration at = 0;
  Duration hold = 0;
  Duration mean_gap = millis(5);
  std::uint32_t clients = 1;
  std::uint32_t bytes = 16;
  std::uint32_t keys = 0;  // 0 = raw payload mode (no keyed routing)
  double hot = 0.0;
  bool operator==(const LoadClause&) const = default;
};

/// win(a): run the whole cluster with Options::pipeline_window = a — α
/// consensus rounds in flight concurrently (DESIGN.md §14). Like skew, a
/// property of the configuration applied before start, not a timed fault;
/// the sweeps cross it into hostile schedules so pipelined windows face
/// crash-recovery churn.
struct WinClause {
  std::uint32_t alpha = 1;
  bool operator==(const WinClause&) const = default;
};

using Clause = std::variant<PartitionClause, FlapClause, GrayClause,
                            SkewClause, DiskClause, BurstClause, StormClause,
                            LoadClause, WinClause>;

/// The serialized keyword of a clause ("part", "flap", ...).
const char* clause_kind(const Clause& c);

struct Scenario {
  std::uint64_t seed = 1;   // drives the sim's RNG and the load driver
  std::uint32_t n = 3;
  Duration horizon = millis(900);  // all fault activity ends by here
  ConsensusKind engine = ConsensusKind::kPaxos;
  bool alternative = false;   // Options::alternative() vs Options::basic()
  bool digest_gossip = false;
  /// Groups in a sharded run (DESIGN.md §13). 1 = the classic single-group
  /// stack; >1 runs ShardedKvNodes over a uniform layout and audits with
  /// check_sharded_trace. Serialized only when not 1, so every existing
  /// scenario line (and generate_scenario's output) is unchanged.
  std::uint32_t groups = 1;
  std::vector<Clause> clauses;

  bool operator==(const Scenario&) const = default;

  /// One line, fully reproducing the scenario: parse(serialize()) == *this.
  std::string serialize() const;

  /// Parses a serialized scenario line; on failure returns nullopt and,
  /// when `error` is non-null, a human-readable reason.
  static std::optional<Scenario> parse(const std::string& line,
                                       std::string* error = nullptr);
};

/// The adversary: expands one seed into a scenario. Deterministic; the
/// engine/variant/gossip axes are crossed uniformly (seed, seed/2, seed/4
/// parities, matching the trace_sweep convention), the pipelining window
/// α ∈ {1, 4, 16} by (seed/8) mod 3 (emitted as a win() clause when not 1),
/// and the clause mix is drawn from the seed's RNG with every fault kind
/// guaranteed to appear within any 8 consecutive seeds.
Scenario generate_scenario(std::uint64_t seed);

}  // namespace abcast::scenario
