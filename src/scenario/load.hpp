// Open-loop load driver for scenario runs.
//
// A closed-loop driver (submit, wait, submit) measures a polite client
// that backs off exactly when the cluster struggles — it cannot see a
// brownout. This driver is open-loop: arrivals follow an exponential
// inter-arrival process anchored to virtual time, independent of
// completions, fanned out over a pool of simulated client sessions (each
// with a fixed home node). A stalled cluster therefore accumulates queued
// work and the windowed latency quantiles show the stall instead of
// averaging it away.
//
// Submissions go through Cluster::broadcast_may_crash, so a client whose
// home node dies mid-call sees the crash (the submission is recorded as
// incomplete); a client whose home node is down on arrival is rejected —
// exactly a connection refused.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "group/sharded_cluster.hpp"
#include "harness/fixture.hpp"
#include "scenario/scenario.hpp"

namespace abcast::scenario {

struct LoadStats {
  std::uint64_t arrivals = 0;       // every scheduled arrival
  std::uint64_t submitted = 0;      // broadcast attempted (node was up)
  std::uint64_t completed = 0;      // broadcast returned without crashing
  std::uint64_t rejected_down = 0;  // home node down on arrival
  std::uint64_t pairs_submitted = 0;  // cross-shard pair attempts (sharded)
  std::uint64_t pairs_completed = 0;  // both broadcasts returned
};

/// Draws a key from the clause's key space: "k<i>" with i uniform over
/// [0, keys), except a `hot` fraction of draws collapses onto the first
/// max(1, keys/16) keys. Shared by the load drivers and bench_shards so a
/// router-balance expectation in a test matches what the drivers submit.
std::string pick_key(Rng& rng, std::uint32_t keys, double hot);

/// One accepted submission, with the context needed to decide later
/// whether its delivery may be demanded (see runner.cpp).
struct Submission {
  MsgId id{};
  ProcessId node = 0;
  bool completed = false;
  TimePoint at = 0;
  std::uint64_t node_crashes_at_submit = 0;
};

/// Installs one LoadClause onto a running cluster. The driver owns only a
/// shared state block kept alive by its self-scheduling events, so it may
/// be destroyed before the simulation finishes draining.
///
/// Keyed mode (spec.keys > 0) submits KvCommand puts against pick_key keys
/// instead of raw payload bytes; over the single-group cluster this only
/// changes the payload, but it keeps the workload identical to the sharded
/// driver's for apples-to-apples scenario comparisons.
class LoadDriver {
 public:
  /// `rng` must be forked deterministically from the scenario seed.
  LoadDriver(harness::Cluster& cluster, const LoadClause& spec, Rng rng);

  /// Schedules the arrival process; call once, before running the sim.
  void install();

  const LoadStats& stats() const;
  const std::vector<Submission>& submissions() const;

 private:
  struct State;
  static void arrive(const std::shared_ptr<State>& st);

  std::shared_ptr<State> state_;
};

/// One accepted sharded submission; `group` is where delivery must later
/// be demanded (the runner checks delivered_everywhere(group, id)).
struct ShardedSubmission {
  MsgId id{};
  std::uint32_t group = 0;
  ProcessId node = 0;
  bool completed = false;
  TimePoint at = 0;
  std::uint64_t node_crashes_at_submit = 0;
};

/// The multi-group twin of LoadDriver: arrivals are keyed KV puts routed
/// by the submitting node's GroupRouter, and one arrival in eight is a
/// cross-shard pair op (two puts, atomic across their owning shards) so
/// hostile schedules always exercise the two-group commit. Raw-payload
/// clauses (keys == 0) get a default 64-key space — a sharded run without
/// keys would drive exactly one group.
class ShardedLoadDriver {
 public:
  ShardedLoadDriver(group::ShardedCluster& cluster, const LoadClause& spec,
                    Rng rng);

  void install();

  const LoadStats& stats() const;
  const std::vector<ShardedSubmission>& submissions() const;

 private:
  struct State;
  static void arrive(const std::shared_ptr<State>& st);

  std::shared_ptr<State> state_;
};

}  // namespace abcast::scenario
