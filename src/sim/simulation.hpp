// Deterministic simulation of an asynchronous crash-recovery system.
//
// Models exactly the system of Section 2 of the paper:
//   * processes that are up or down; a crash loses volatile memory (the
//     protocol object is destroyed) and every message that arrives while the
//     process is down is lost;
//   * stable storage that survives crashes;
//   * fair-lossy, duplicating, non-FIFO channels with arbitrary finite
//     delays between every pair of processes.
//
// The run is fully deterministic given (seed, configuration, fault plan).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "env/env.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/scheduler.hpp"
#include "storage/faulty_storage.hpp"
#include "storage/mem_storage.hpp"

namespace abcast::sim {

/// Which directions of a partition cut are blocked. The asymmetric modes
/// model one-way network failures (a dead receive queue, a misconfigured
/// firewall rule): the affected side keeps transmitting into the void.
enum class PartitionMode {
  kSymmetric,  // both directions blocked across the cut (classic split)
  kInbound,    // only traffic INTO `members` is blocked; they can talk out
  kOutbound,   // only traffic OUT OF `members` is blocked; they still hear
};

/// Channel behaviour. The defaults give a lossy but lively network.
struct NetConfig {
  Duration delay_min = millis(1);
  Duration delay_max = millis(10);
  /// Probability an individual datagram is silently dropped.
  double drop_prob = 0.0;
  /// Probability an individual datagram is delivered twice.
  double dup_prob = 0.0;
  /// Local (self) delivery latency; self sends are never dropped.
  Duration self_delay = micros(10);
};

struct SimConfig {
  std::uint32_t n = 3;
  std::uint64_t seed = 1;
  NetConfig net;
  /// Per-process stable storage; defaults to MemStableStorage. Supply
  /// DiscardStorage for crash-stop baselines or FileStableStorage for
  /// durability integration tests. Every host's storage is wrapped in a
  /// FaultyStorage decorator (a passthrough until faults are configured).
  std::function<std::unique_ptr<StableStorage>(ProcessId)> storage_factory;
  /// RNG-driven storage fault rates applied to every host's decorator.
  StorageFaultProfile storage_faults;
  /// Per-host protocol trace ring capacity (events); 0 disables tracing.
  /// Recorders live in the host, outside the crash boundary, so one trace
  /// spans every incarnation of a process.
  std::size_t trace_capacity = 0;
};

/// Aggregate network counters for bandwidth-style experiments.
struct NetStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_channel = 0;   // lost by the lossy channel
  std::uint64_t dropped_down = 0;      // receiver was down on arrival
  std::uint64_t dropped_partition = 0; // link administratively blocked
  std::uint64_t duplicated = 0;
  std::uint64_t bytes_sent = 0;
  /// Sends and bytes per message type — attributes traffic to protocol
  /// layers (heartbeats vs consensus vs gossip vs state transfer ...).
  std::map<MsgType, std::uint64_t> sent_by_type;
  std::map<MsgType, std::uint64_t> bytes_by_type;

  std::uint64_t sent_of(MsgType t) const {
    auto it = sent_by_type.find(t);
    return it == sent_by_type.end() ? 0 : it->second;
  }
};

/// Per-process lifecycle counters.
struct HostStats {
  std::uint64_t crashes = 0;
  std::uint64_t recoveries = 0;
  /// Crashes caused by a storage fault (armed crash-point or an escaping
  /// StorageIoError), including those that interrupted a recovery.
  std::uint64_t storage_crashes = 0;
  /// Recovery attempts that themselves died on a storage fault.
  std::uint64_t failed_recoveries = 0;
};

class Simulation;

/// The Env a simulated process hands to its protocol stack.
class SimHost final : public Env {
 public:
  SimHost(Simulation& sim, ProcessId id);

  // Env
  ProcessId self() const override { return id_; }
  std::uint32_t group_size() const override;
  TimePoint now() const override;
  TimerId schedule_after(Duration delay, std::function<void()> fn) override;
  void cancel_timer(TimerId id) override;
  void send(ProcessId to, const Wire& msg) override;
  StableStorage& storage() override {
    return tracing_storage_ ? static_cast<StableStorage&>(*tracing_storage_)
                            : *storage_;
  }
  Rng& rng() override { return rng_; }
  obs::TraceRecorder* tracer() override { return recorder_.get(); }
  obs::MetricsRegistry* metrics_registry() override;

  bool is_up() const { return node_ != nullptr; }
  const HostStats& stats() const { return stats_; }

  /// This host's protocol trace, or nullptr when trace_capacity == 0.
  obs::TraceRecorder* recorder() { return recorder_.get(); }

  /// The fault-injection decorator every storage op flows through; arm
  /// crash-points / set per-host profiles here.
  FaultyStorage& faulty_storage() { return *storage_; }

  /// The undecorated backend (e.g. the MemStableStorage whose per-scope
  /// counters the harness reads).
  StableStorage& raw_storage() { return storage_->inner(); }

  /// Gray-failure knob: inbound datagrams to this host have their channel
  /// delay multiplied by `factor` (>= 0; 1 = nominal). Models a node whose
  /// receive path is slow rather than dead.
  void set_rx_delay_factor(double factor) { rx_delay_factor_ = factor; }
  double rx_delay_factor() const { return rx_delay_factor_; }

  /// Clock/timer skew knob: every delay this host's protocol stack passes
  /// to schedule_after is multiplied by `scale` (> 0). scale > 1 is a slow
  /// clock (timers fire late), scale < 1 a fast one.
  void set_timer_scale(double scale) { timer_scale_ = scale; }
  double timer_scale() const { return timer_scale_; }

  /// Virtual time up to which this host is stalled on its (slow) storage;
  /// sends/timers scheduled earlier are pushed past it. See DESIGN.md §12.
  TimePoint busy_until() const { return busy_until_; }

  /// Converts a SimulatedCrash/StorageIoError that escaped into HARNESS
  /// code (e.g. a test calling broadcast() on a host with an armed
  /// crash-point) into the usual storage-fault crash.
  void crash_from_storage_fault();

 private:
  friend class Simulation;

  /// Returns false when the start/recovery itself died on a storage fault
  /// (the host stays down; stable storage keeps whatever was written).
  bool start(const NodeFactory& factory, bool recovering);
  void crash();
  void deliver(ProcessId from, const Wire& msg);

  /// Folds the storage decorator's accrued slow-disk latency into
  /// busy_until_ and returns how far past `now` this host is stalled
  /// (0 when idle). Called on every send/schedule/delivery so the stall
  /// defers exactly the activity that follows the slow operation.
  Duration consume_busy_delay();

  Simulation& sim_;
  ProcessId id_;
  Rng rng_;
  std::unique_ptr<FaultyStorage> storage_;
  std::unique_ptr<obs::TraceRecorder> recorder_;       // survives crashes
  std::unique_ptr<TracingStorage> tracing_storage_;    // wraps storage_
  std::unique_ptr<NodeApp> node_;
  std::set<Scheduler::Token> live_timers_;
  HostStats stats_;
  double rx_delay_factor_ = 1.0;
  double timer_scale_ = 1.0;
  TimePoint busy_until_ = 0;
};

class Simulation {
 public:
  explicit Simulation(SimConfig config);
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Installs the protocol-stack factory used at every start and recovery.
  void set_node_factory(NodeFactory factory) { factory_ = std::move(factory); }

  /// Starts all processes at time 0 (recovering = false).
  void start_all();

  /// Starts one process (initial start).
  void start(ProcessId p);

  // ---- fault injection -------------------------------------------------
  /// Crashes `p` now: its protocol object is destroyed, its timers are
  /// cancelled, and datagrams arriving while it is down are lost.
  void crash(ProcessId p);

  /// Recovers `p` now: a fresh protocol stack is built over the surviving
  /// stable storage and started with recovering = true. Returns false when
  /// the recovery itself crashed on a storage fault (the host stays down;
  /// retry later — the paper's model allows a process to crash during its
  /// own recovery procedure).
  bool recover(ProcessId p);

  void crash_at(TimePoint t, ProcessId p);
  void recover_at(TimePoint t, ProcessId p);

  /// Arms a crash-point on `p`'s storage: the process crashes at its
  /// `op_index`-th storage operation (lifetime count), in the given phase.
  void crash_at_storage_op(ProcessId p, std::uint64_t op_index,
                           CrashPhase phase) {
    host(p).faulty_storage().arm_crash_at_op(op_index, phase);
  }

  /// Per-host fault-injection decorator (arm crash-points, set profiles).
  FaultyStorage& storage_faults(ProcessId p) {
    return host(p).faulty_storage();
  }

  /// Administratively blocks/unblocks the directed link from `a` to `b`.
  void block_link(ProcessId a, ProcessId b);
  void unblock_link(ProcessId a, ProcessId b);

  /// Partitions the group into {members} vs the rest. The default blocks
  /// both directions across the cut; the asymmetric modes block only one
  /// (see PartitionMode). heal_partition removes ALL blocks; use
  /// heal_link / unpartition for surgical repair.
  void partition(const std::vector<ProcessId>& members,
                 PartitionMode mode = PartitionMode::kSymmetric);
  void heal_partition();

  /// Unblocks both directions of one link (per-link heal: a partial repair
  /// that can leave the rest of a cut in place).
  void heal_link(ProcessId a, ProcessId b);

  /// Removes exactly the blocks partition(members, mode) installed, leaving
  /// blocks from other sources (flapping links, other cuts) untouched.
  void unpartition(const std::vector<ProcessId>& members,
                   PartitionMode mode = PartitionMode::kSymmetric);

  /// Per-host gray-failure / skew knobs (see SimHost).
  void set_rx_delay_factor(ProcessId p, double factor) {
    host(p).set_rx_delay_factor(factor);
  }
  void set_timer_scale(ProcessId p, double scale) {
    host(p).set_timer_scale(scale);
  }

  // ---- execution -------------------------------------------------------
  /// Runs until virtual time `t` (events at exactly `t` included).
  void run_until(TimePoint t);
  void run_for(Duration d) { run_until(now() + d); }

  /// Runs until `pred()` holds (checked after every event) or `deadline`
  /// passes. Returns true if the predicate held.
  bool run_until_pred(const std::function<bool()>& pred, TimePoint deadline);

  /// Fires a single event; returns false when no events remain.
  bool step() { return scheduler_.step(); }

  /// Schedules an arbitrary callback (test hooks, workload generators).
  Scheduler::Token at(TimePoint t, std::function<void()> fn) {
    return scheduler_.schedule_at(t, std::move(fn));
  }
  Scheduler::Token after(Duration d, std::function<void()> fn) {
    return scheduler_.schedule_after(d, std::move(fn));
  }

  // ---- introspection ----------------------------------------------------
  TimePoint now() const { return scheduler_.now(); }
  std::uint32_t n() const { return config_.n; }
  const SimConfig& config() const { return config_; }
  SimHost& host(ProcessId p);
  const NetStats& net_stats() const { return net_stats_; }
  /// Cluster-wide metrics registry (outside every crash boundary).
  obs::MetricsRegistry& metrics_registry() { return registry_; }
  Rng& rng() { return rng_; }
  std::uint64_t events_fired() const { return scheduler_.fired(); }

  /// Protocol stack of `p`, or nullptr while down. Cast to the concrete
  /// stack type to inspect state in tests.
  NodeApp* node(ProcessId p);

 private:
  friend class SimHost;

  void transmit(ProcessId from, ProcessId to, const Wire& msg,
                Duration sender_stall);

  /// Installs or removes the directed cross-cut blocks of one partition.
  void apply_partition(const std::vector<ProcessId>& members,
                       PartitionMode mode, bool install);

  SimConfig config_;
  Rng rng_;
  Scheduler scheduler_;
  obs::MetricsRegistry registry_;
  NodeFactory factory_;
  std::vector<std::unique_ptr<SimHost>> hosts_;
  std::set<std::pair<ProcessId, ProcessId>> blocked_links_;
  NetStats net_stats_;
};

}  // namespace abcast::sim
