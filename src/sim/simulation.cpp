#include "sim/simulation.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/logging.hpp"

namespace abcast::sim {

namespace {

/// Scales a non-negative duration by a non-negative factor, saturating
/// instead of overflowing (a 1e9 skew on a 60s timer must not wrap).
Duration scale_duration(Duration d, double factor) {
  if (d <= 0 || factor <= 0.0) return 0;
  const double scaled = static_cast<double>(d) * factor;
  constexpr double kMax = 9.0e18;  // < INT64_MAX, safely representable
  if (scaled >= kMax) return static_cast<Duration>(kMax);
  return static_cast<Duration>(scaled);
}

}  // namespace

// ---------------------------------------------------------------- SimHost

SimHost::SimHost(Simulation& sim, ProcessId id)
    : sim_(sim), id_(id), rng_(sim.rng().fork()),
      storage_(std::make_unique<FaultyStorage>(
          sim.config().storage_factory
              ? sim.config().storage_factory(id)
              : std::make_unique<MemStableStorage>(),
          rng_.fork())) {
  storage_->set_profile(sim.config().storage_faults);
  if (sim.config().trace_capacity > 0) {
    recorder_ =
        std::make_unique<obs::TraceRecorder>(id, sim.config().trace_capacity);
    recorder_->set_clock([this] { return now(); });
    // Trace completed log writes through the fault decorator, so a put that
    // crashes the process records nothing (log completes or process dies).
    tracing_storage_ = std::make_unique<TracingStorage>(
        *storage_, *recorder_, [this] { return now(); });
  }
}

obs::MetricsRegistry* SimHost::metrics_registry() {
  return &sim_.metrics_registry();
}

std::uint32_t SimHost::group_size() const { return sim_.n(); }

TimePoint SimHost::now() const { return sim_.scheduler_.now(); }

TimerId SimHost::schedule_after(Duration delay, std::function<void()> fn) {
  ABCAST_CHECK_MSG(node_ != nullptr, "down process cannot schedule timers");
  // Timer skew scales the requested delay (a slow clock fires late); a
  // pending slow-disk stall pushes the timer past the stall — the process
  // could not have armed it before resuming.
  const Duration effective =
      scale_duration(delay < 0 ? 0 : delay, timer_scale_) +
      consume_busy_delay();
  // Wrap so the token is forgotten once fired, and the callback is skipped
  // if the host crashed (crash cancels, but belt-and-braces for reentrancy:
  // a crash executed from within this very callback chain).
  const auto token_holder = std::make_shared<Scheduler::Token>(0);
  auto token = sim_.scheduler_.schedule_after(
      effective, [this, fn = std::move(fn), token_holder]() {
        live_timers_.erase(*token_holder);
        if (node_ == nullptr) return;  // crashed between firing and running
        try {
          fn();
          consume_busy_delay();  // trailing slow ops stall the host now
        } catch (const SimulatedCrash&) {
          crash_from_storage_fault();
        } catch (const StorageIoError&) {
          // A log operation that fails leaves the process in an undefined
          // durable/volatile mix; the paper's model has only one answer:
          // the process crashes (and recovers from whatever was logged).
          crash_from_storage_fault();
        }
      });
  *token_holder = token;
  live_timers_.insert(token);
  return token;
}

void SimHost::cancel_timer(TimerId id) {
  live_timers_.erase(id);
  sim_.scheduler_.cancel(id);
}

void SimHost::send(ProcessId to, const Wire& msg) {
  ABCAST_CHECK_MSG(node_ != nullptr, "down process cannot send");
  ABCAST_CHECK_MSG(to < sim_.n(), "send target out of range");
  // A datagram sent after a slow storage operation leaves the host only
  // once the stall has passed.
  sim_.transmit(id_, to, msg, consume_busy_delay());
}

Duration SimHost::consume_busy_delay() {
  const Duration pending = storage_->take_pending_delay();
  if (pending > 0) {
    const TimePoint base = std::max(busy_until_, now());
    busy_until_ = base + pending;
  }
  const TimePoint t = now();
  return busy_until_ > t ? busy_until_ - t : 0;
}

bool SimHost::start(const NodeFactory& factory, bool recovering) {
  ABCAST_CHECK_MSG(node_ == nullptr, "process already up");
  if (recovering && recorder_) {
    recorder_->record(obs::EventKind::kRecoverBegin, now());
  }
  node_ = factory(*this);
  ABCAST_CHECK(node_ != nullptr);
  if (recovering) stats_.recoveries += 1;
  try {
    node_->start(recovering);
  } catch (const SimulatedCrash&) {
    crash_from_storage_fault();
    if (recovering) stats_.failed_recoveries += 1;
    return false;
  } catch (const StorageIoError&) {
    crash_from_storage_fault();
    if (recovering) stats_.failed_recoveries += 1;
    return false;
  }
  if (recovering && recorder_) {
    recorder_->record(obs::EventKind::kRecoverEnd, now());
  }
  consume_busy_delay();  // a slow recovery replay stalls the fresh stack
  return true;
}

void SimHost::crash() {
  ABCAST_CHECK_MSG(node_ != nullptr, "process already down");
  // Destroying the stack loses all volatile state; cancelling the timers
  // models the death of all pending local activity.
  node_.reset();
  for (const auto token : live_timers_) sim_.scheduler_.cancel(token);
  live_timers_.clear();
  // A reboot clears the device queue: the in-progress stall dies with the
  // incarnation (the latency *profile* on the decorator persists).
  busy_until_ = 0;
  storage_->take_pending_delay();
  stats_.crashes += 1;
  if (recorder_) recorder_->record(obs::EventKind::kCrash, now());
}

void SimHost::crash_from_storage_fault() {
  // Reached only after the exception fully unwound out of protocol code,
  // so destroying the stack here is safe.
  crash();
  stats_.storage_crashes += 1;
}

void SimHost::deliver(ProcessId from, const Wire& msg) {
  if (node_ == nullptr) return;  // lost: arrived while down (paper §2.1)
  // A host stalled on its disk consumes nothing until the stall passes:
  // the datagram waits in the receive buffer (and is lost if the host
  // crashes first — exactly the kernel-buffer behaviour).
  const Duration wait = consume_busy_delay();
  if (wait > 0) {
    sim_.scheduler_.schedule_after(
        wait, [this, from, copy = msg]() { deliver(from, copy); });
    return;
  }
  try {
    node_->on_message(from, msg);
    consume_busy_delay();  // trailing slow ops stall the host now
  } catch (const SimulatedCrash&) {
    crash_from_storage_fault();
  } catch (const StorageIoError&) {
    crash_from_storage_fault();
  }
}

// ------------------------------------------------------------- Simulation

Simulation::Simulation(SimConfig config)
    : config_(config), rng_(config.seed) {
  ABCAST_CHECK(config_.n >= 1);
  ABCAST_CHECK(config_.net.delay_min >= 0);
  ABCAST_CHECK(config_.net.delay_max >= config_.net.delay_min);
  hosts_.reserve(config_.n);
  for (ProcessId p = 0; p < config_.n; ++p) {
    hosts_.push_back(std::make_unique<SimHost>(*this, p));
  }
}

Simulation::~Simulation() = default;

SimHost& Simulation::host(ProcessId p) {
  ABCAST_CHECK(p < hosts_.size());
  return *hosts_[p];
}

NodeApp* Simulation::node(ProcessId p) { return host(p).node_.get(); }

void Simulation::start_all() {
  for (ProcessId p = 0; p < config_.n; ++p) start(p);
}

void Simulation::start(ProcessId p) {
  ABCAST_CHECK_MSG(static_cast<bool>(factory_), "node factory not set");
  host(p).start(factory_, /*recovering=*/false);
}

void Simulation::crash(ProcessId p) { host(p).crash(); }

bool Simulation::recover(ProcessId p) {
  ABCAST_CHECK_MSG(static_cast<bool>(factory_), "node factory not set");
  return host(p).start(factory_, /*recovering=*/true);
}

void Simulation::crash_at(TimePoint t, ProcessId p) {
  at(t, [this, p] {
    if (host(p).is_up()) crash(p);
  });
}

void Simulation::recover_at(TimePoint t, ProcessId p) {
  at(t, [this, p] {
    if (!host(p).is_up()) recover(p);
  });
}

void Simulation::block_link(ProcessId a, ProcessId b) {
  blocked_links_.insert({a, b});
}

void Simulation::unblock_link(ProcessId a, ProcessId b) {
  blocked_links_.erase({a, b});
}

void Simulation::apply_partition(const std::vector<ProcessId>& members,
                                 PartitionMode mode, bool install) {
  const std::set<ProcessId> side(members.begin(), members.end());
  for (ProcessId a = 0; a < config_.n; ++a) {
    for (ProcessId b = 0; b < config_.n; ++b) {
      if (a == b) continue;
      if (side.count(a) == side.count(b)) continue;  // same side of the cut
      // Directed link a -> b crosses the cut. Which directions the mode
      // blocks: kInbound only those terminating inside `members`,
      // kOutbound only those originating there.
      const bool into_members = side.count(b) != 0;
      const bool blocked = mode == PartitionMode::kSymmetric ||
                           (mode == PartitionMode::kInbound && into_members) ||
                           (mode == PartitionMode::kOutbound && !into_members);
      if (!blocked) continue;
      if (install) {
        blocked_links_.insert({a, b});
      } else {
        blocked_links_.erase({a, b});
      }
    }
  }
}

void Simulation::partition(const std::vector<ProcessId>& members,
                           PartitionMode mode) {
  apply_partition(members, mode, /*install=*/true);
}

void Simulation::unpartition(const std::vector<ProcessId>& members,
                             PartitionMode mode) {
  apply_partition(members, mode, /*install=*/false);
}

void Simulation::heal_partition() { blocked_links_.clear(); }

void Simulation::heal_link(ProcessId a, ProcessId b) {
  unblock_link(a, b);
  unblock_link(b, a);
}

void Simulation::transmit(ProcessId from, ProcessId to, const Wire& msg,
                          Duration sender_stall) {
  net_stats_.sent += 1;
  const std::uint64_t bytes = msg.payload.size() + sizeof(std::uint16_t);
  net_stats_.bytes_sent += bytes;
  net_stats_.sent_by_type[msg.type] += 1;
  net_stats_.bytes_by_type[msg.type] += bytes;

  if (from != to && blocked_links_.count({from, to}) != 0) {
    net_stats_.dropped_partition += 1;
    return;
  }

  const NetConfig& net = config_.net;
  // Gray failure: the receiver's rx factor inflates the channel delay of
  // everything addressed to it (sampled at send time, so a run stays
  // deterministic); the sender's disk stall delays the departure itself.
  const double rx_factor = hosts_[to]->rx_delay_factor();
  auto schedule_copy = [this, from, to, &msg, sender_stall,
                        rx_factor](Duration delay) {
    // The Wire is copied into the event: channels may hold messages long
    // after the sender's stack is gone. The copy only bumps the payload
    // refcount — a multisend's bytes are encoded once and shared by every
    // recipient's (and every duplicate's) in-flight event.
    scheduler_.schedule_after(
        sender_stall + scale_duration(delay, rx_factor),
        [this, from, to, copy = msg]() {
          if (!hosts_[to]->is_up()) {
            net_stats_.dropped_down += 1;
            return;
          }
          net_stats_.delivered += 1;
          hosts_[to]->deliver(from, copy);
        });
  };

  if (from == to) {
    // Local delivery never traverses the lossy channel.
    schedule_copy(net.self_delay);
    return;
  }

  if (rng_.chance(net.drop_prob)) {
    net_stats_.dropped_channel += 1;
    return;
  }
  schedule_copy(rng_.uniform(net.delay_min, net.delay_max));
  if (rng_.chance(net.dup_prob)) {
    net_stats_.duplicated += 1;
    schedule_copy(rng_.uniform(net.delay_min, net.delay_max));
  }
}

void Simulation::run_until(TimePoint t) {
  while (auto next = scheduler_.next_time()) {
    if (*next > t) break;
    scheduler_.step();
  }
  // Idle gap: the clock still reaches t, so run_for() makes progress even
  // when nothing is scheduled.
  scheduler_.advance_to(t);
}

bool Simulation::run_until_pred(const std::function<bool()>& pred,
                                TimePoint deadline) {
  if (pred()) return true;
  while (auto next = scheduler_.next_time()) {
    if (*next > deadline) break;
    scheduler_.step();
    if (pred()) return true;
  }
  return false;
}

}  // namespace abcast::sim
