#include "sim/simulation.hpp"

#include "common/check.hpp"
#include "common/logging.hpp"

namespace abcast::sim {

// ---------------------------------------------------------------- SimHost

SimHost::SimHost(Simulation& sim, ProcessId id)
    : sim_(sim), id_(id), rng_(sim.rng().fork()),
      storage_(std::make_unique<FaultyStorage>(
          sim.config().storage_factory
              ? sim.config().storage_factory(id)
              : std::make_unique<MemStableStorage>(),
          rng_.fork())) {
  storage_->set_profile(sim.config().storage_faults);
  if (sim.config().trace_capacity > 0) {
    recorder_ =
        std::make_unique<obs::TraceRecorder>(id, sim.config().trace_capacity);
    recorder_->set_clock([this] { return now(); });
    // Trace completed log writes through the fault decorator, so a put that
    // crashes the process records nothing (log completes or process dies).
    tracing_storage_ = std::make_unique<TracingStorage>(
        *storage_, *recorder_, [this] { return now(); });
  }
}

obs::MetricsRegistry* SimHost::metrics_registry() {
  return &sim_.metrics_registry();
}

std::uint32_t SimHost::group_size() const { return sim_.n(); }

TimePoint SimHost::now() const { return sim_.scheduler_.now(); }

TimerId SimHost::schedule_after(Duration delay, std::function<void()> fn) {
  ABCAST_CHECK_MSG(node_ != nullptr, "down process cannot schedule timers");
  // Wrap so the token is forgotten once fired, and the callback is skipped
  // if the host crashed (crash cancels, but belt-and-braces for reentrancy:
  // a crash executed from within this very callback chain).
  const auto token_holder = std::make_shared<Scheduler::Token>(0);
  auto token = sim_.scheduler_.schedule_after(
      delay, [this, fn = std::move(fn), token_holder]() {
        live_timers_.erase(*token_holder);
        if (node_ == nullptr) return;  // crashed between firing and running
        try {
          fn();
        } catch (const SimulatedCrash&) {
          crash_from_storage_fault();
        } catch (const StorageIoError&) {
          // A log operation that fails leaves the process in an undefined
          // durable/volatile mix; the paper's model has only one answer:
          // the process crashes (and recovers from whatever was logged).
          crash_from_storage_fault();
        }
      });
  *token_holder = token;
  live_timers_.insert(token);
  return token;
}

void SimHost::cancel_timer(TimerId id) {
  live_timers_.erase(id);
  sim_.scheduler_.cancel(id);
}

void SimHost::send(ProcessId to, const Wire& msg) {
  ABCAST_CHECK_MSG(node_ != nullptr, "down process cannot send");
  ABCAST_CHECK_MSG(to < sim_.n(), "send target out of range");
  sim_.transmit(id_, to, msg);
}

bool SimHost::start(const NodeFactory& factory, bool recovering) {
  ABCAST_CHECK_MSG(node_ == nullptr, "process already up");
  if (recovering && recorder_) {
    recorder_->record(obs::EventKind::kRecoverBegin, now());
  }
  node_ = factory(*this);
  ABCAST_CHECK(node_ != nullptr);
  if (recovering) stats_.recoveries += 1;
  try {
    node_->start(recovering);
  } catch (const SimulatedCrash&) {
    crash_from_storage_fault();
    if (recovering) stats_.failed_recoveries += 1;
    return false;
  } catch (const StorageIoError&) {
    crash_from_storage_fault();
    if (recovering) stats_.failed_recoveries += 1;
    return false;
  }
  if (recovering && recorder_) {
    recorder_->record(obs::EventKind::kRecoverEnd, now());
  }
  return true;
}

void SimHost::crash() {
  ABCAST_CHECK_MSG(node_ != nullptr, "process already down");
  // Destroying the stack loses all volatile state; cancelling the timers
  // models the death of all pending local activity.
  node_.reset();
  for (const auto token : live_timers_) sim_.scheduler_.cancel(token);
  live_timers_.clear();
  stats_.crashes += 1;
  if (recorder_) recorder_->record(obs::EventKind::kCrash, now());
}

void SimHost::crash_from_storage_fault() {
  // Reached only after the exception fully unwound out of protocol code,
  // so destroying the stack here is safe.
  crash();
  stats_.storage_crashes += 1;
}

void SimHost::deliver(ProcessId from, const Wire& msg) {
  if (node_ == nullptr) return;  // lost: arrived while down (paper §2.1)
  try {
    node_->on_message(from, msg);
  } catch (const SimulatedCrash&) {
    crash_from_storage_fault();
  } catch (const StorageIoError&) {
    crash_from_storage_fault();
  }
}

// ------------------------------------------------------------- Simulation

Simulation::Simulation(SimConfig config)
    : config_(config), rng_(config.seed) {
  ABCAST_CHECK(config_.n >= 1);
  ABCAST_CHECK(config_.net.delay_min >= 0);
  ABCAST_CHECK(config_.net.delay_max >= config_.net.delay_min);
  hosts_.reserve(config_.n);
  for (ProcessId p = 0; p < config_.n; ++p) {
    hosts_.push_back(std::make_unique<SimHost>(*this, p));
  }
}

Simulation::~Simulation() = default;

SimHost& Simulation::host(ProcessId p) {
  ABCAST_CHECK(p < hosts_.size());
  return *hosts_[p];
}

NodeApp* Simulation::node(ProcessId p) { return host(p).node_.get(); }

void Simulation::start_all() {
  for (ProcessId p = 0; p < config_.n; ++p) start(p);
}

void Simulation::start(ProcessId p) {
  ABCAST_CHECK_MSG(static_cast<bool>(factory_), "node factory not set");
  host(p).start(factory_, /*recovering=*/false);
}

void Simulation::crash(ProcessId p) { host(p).crash(); }

bool Simulation::recover(ProcessId p) {
  ABCAST_CHECK_MSG(static_cast<bool>(factory_), "node factory not set");
  return host(p).start(factory_, /*recovering=*/true);
}

void Simulation::crash_at(TimePoint t, ProcessId p) {
  at(t, [this, p] {
    if (host(p).is_up()) crash(p);
  });
}

void Simulation::recover_at(TimePoint t, ProcessId p) {
  at(t, [this, p] {
    if (!host(p).is_up()) recover(p);
  });
}

void Simulation::block_link(ProcessId a, ProcessId b) {
  blocked_links_.insert({a, b});
}

void Simulation::unblock_link(ProcessId a, ProcessId b) {
  blocked_links_.erase({a, b});
}

void Simulation::partition(const std::vector<ProcessId>& members) {
  const std::set<ProcessId> side(members.begin(), members.end());
  for (ProcessId a = 0; a < config_.n; ++a) {
    for (ProcessId b = 0; b < config_.n; ++b) {
      if (a == b) continue;
      if (side.count(a) != side.count(b)) {
        blocked_links_.insert({a, b});
      }
    }
  }
}

void Simulation::heal_partition() { blocked_links_.clear(); }

void Simulation::transmit(ProcessId from, ProcessId to, const Wire& msg) {
  net_stats_.sent += 1;
  const std::uint64_t bytes = msg.payload.size() + sizeof(std::uint16_t);
  net_stats_.bytes_sent += bytes;
  net_stats_.sent_by_type[msg.type] += 1;
  net_stats_.bytes_by_type[msg.type] += bytes;

  if (from != to && blocked_links_.count({from, to}) != 0) {
    net_stats_.dropped_partition += 1;
    return;
  }

  const NetConfig& net = config_.net;
  auto schedule_copy = [this, from, to, &msg](Duration delay) {
    // The Wire is copied into the event: channels may hold messages long
    // after the sender's stack is gone. The copy only bumps the payload
    // refcount — a multisend's bytes are encoded once and shared by every
    // recipient's (and every duplicate's) in-flight event.
    scheduler_.schedule_after(delay, [this, from, to, copy = msg]() {
      if (!hosts_[to]->is_up()) {
        net_stats_.dropped_down += 1;
        return;
      }
      net_stats_.delivered += 1;
      hosts_[to]->deliver(from, copy);
    });
  };

  if (from == to) {
    // Local delivery never traverses the lossy channel.
    schedule_copy(net.self_delay);
    return;
  }

  if (rng_.chance(net.drop_prob)) {
    net_stats_.dropped_channel += 1;
    return;
  }
  schedule_copy(rng_.uniform(net.delay_min, net.delay_max));
  if (rng_.chance(net.dup_prob)) {
    net_stats_.duplicated += 1;
    schedule_copy(rng_.uniform(net.delay_min, net.delay_max));
  }
}

void Simulation::run_until(TimePoint t) {
  while (auto next = scheduler_.next_time()) {
    if (*next > t) break;
    scheduler_.step();
  }
  // Idle gap: the clock still reaches t, so run_for() makes progress even
  // when nothing is scheduled.
  scheduler_.advance_to(t);
}

bool Simulation::run_until_pred(const std::function<bool()>& pred,
                                TimePoint deadline) {
  if (pred()) return true;
  while (auto next = scheduler_.next_time()) {
    if (*next > deadline) break;
    scheduler_.step();
    if (pred()) return true;
  }
  return false;
}

}  // namespace abcast::sim
