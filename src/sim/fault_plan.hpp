// Crash/recovery fault injection.
//
// Two flavours: scripted plans (exact times, for targeted tests) and random
// churn (exponential MTBF/MTTR, for property sweeps and the fault-rate
// experiments). The random injector can be told to always keep a quorum of
// processes up, which is the liveness precondition of the underlying
// Consensus ("majority of good processes").
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "sim/simulation.hpp"

namespace abcast::sim {

enum class FaultKind { kCrash, kRecover };

struct FaultEvent {
  TimePoint at = 0;
  ProcessId process = 0;
  FaultKind kind = FaultKind::kCrash;
};

/// Installs a scripted list of crash/recover events. Events targeting a
/// process already in the requested state are ignored.
void install_fault_script(Simulation& sim, const std::vector<FaultEvent>& plan);

struct ChurnConfig {
  /// Mean time between failures of one process (exponential).
  Duration mtbf = seconds(5);
  /// Mean time to recover after a crash (exponential).
  Duration mttr = millis(500);
  /// Churn is active in [start, stop).
  TimePoint start = 0;
  TimePoint stop = std::numeric_limits<TimePoint>::max();
  /// At most this many processes down at once; 0 means "strict minority"
  /// (i.e., preserve a majority up — the Consensus liveness condition).
  std::uint32_t max_down = 0;
  /// Processes subject to churn; empty means all.
  std::vector<ProcessId> victims;
};

/// Installs random crash/recovery churn driven by the simulation's RNG.
/// Returned handle keeps the injector alive; destroy after the run.
class ChurnInjector {
 public:
  ChurnInjector(Simulation& sim, ChurnConfig config);

  std::uint64_t crashes_injected() const { return state_->crashes; }

 private:
  struct State {
    Simulation* sim;
    ChurnConfig config;
    std::uint32_t down_now = 0;
    std::uint64_t crashes = 0;
  };

  static void arm_crash(const std::shared_ptr<State>& state, ProcessId p);
  static void arm_recover(const std::shared_ptr<State>& state, ProcessId p);

  std::shared_ptr<State> state_;
};

}  // namespace abcast::sim
