// Crash/recovery fault injection.
//
// Two flavours: scripted plans (exact times, for targeted tests) and random
// churn (exponential MTBF/MTTR, for property sweeps and the fault-rate
// experiments). The random injector can be told to always keep a quorum of
// processes up, which is the liveness precondition of the underlying
// Consensus ("majority of good processes").
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "sim/simulation.hpp"

namespace abcast::sim {

enum class FaultKind { kCrash, kRecover, kCrashAtStorageOp };

struct FaultEvent {
  TimePoint at = 0;
  ProcessId process = 0;
  FaultKind kind = FaultKind::kCrash;
  /// kCrashAtStorageOp only: the process crashes at its `op_index`-th
  /// storage operation counted from `at` (1 = the very next one), in the
  /// given phase. Lands the crash inside the log window instead of between
  /// operations, which plain kCrash can never do.
  std::uint64_t op_index = 1;
  CrashPhase phase = CrashPhase::kBeforeOp;
};

/// Installs a scripted list of crash/recover events. Events targeting a
/// process already in the requested state are ignored.
void install_fault_script(Simulation& sim, const std::vector<FaultEvent>& plan);

struct ChurnConfig {
  /// Mean time between failures of one process (exponential).
  Duration mtbf = seconds(5);
  /// Mean time to recover after a crash (exponential).
  Duration mttr = millis(500);
  /// Churn is active in [start, stop).
  TimePoint start = 0;
  TimePoint stop = std::numeric_limits<TimePoint>::max();
  /// At most this many processes down at once; 0 means "strict minority"
  /// (i.e., preserve a majority up — the Consensus liveness condition).
  std::uint32_t max_down = 0;
  /// Processes subject to churn; empty means all.
  std::vector<ProcessId> victims;
  /// Probability a churn crash is delivered as a storage crash-point (the
  /// process dies AT one of its next few log operations, in a random phase)
  /// instead of an immediate kill between operations.
  double storage_crash_prob = 0.0;
  /// Storage crash-points land within the next [1, window] operations.
  std::uint64_t storage_crash_op_window = 4;
  /// If the victim performs no storage operation within this deadline the
  /// armed crash-point is abandoned and the process is killed outright, so
  /// churn keeps its rate even over idle processes.
  Duration storage_crash_deadline = millis(200);
};

/// Installs random crash/recovery churn driven by the simulation's RNG.
/// Returned handle keeps the injector alive; destroy after the run.
class ChurnInjector {
 public:
  ChurnInjector(Simulation& sim, ChurnConfig config);

  std::uint64_t crashes_injected() const { return state_->crashes; }
  /// Crashes delivered as storage crash-points (subset of crashes_injected;
  /// some may have fallen back to an outright kill at the deadline).
  std::uint64_t storage_crashes_armed() const {
    return state_->storage_crashes;
  }
  /// Recovery attempts that themselves died on a storage fault and were
  /// retried.
  std::uint64_t failed_recoveries() const { return state_->failed_recoveries; }

 private:
  struct State {
    Simulation* sim;
    ChurnConfig config;
    std::uint32_t down_now = 0;
    std::uint64_t crashes = 0;
    std::uint64_t storage_crashes = 0;
    std::uint64_t failed_recoveries = 0;
  };

  static void arm_crash(const std::shared_ptr<State>& state, ProcessId p);
  static void arm_recover(const std::shared_ptr<State>& state, ProcessId p);

  std::shared_ptr<State> state_;
};

/// Keeps the group alive under rate-driven storage faults: periodically
/// recovers any process found down. Pairs with StorageFaultProfile sweeps
/// (where crashes come from escaping faults at unpredictable times) the way
/// ChurnInjector pairs with scripted MTBF/MTTR churn. A recovery that itself
/// dies on a storage fault is simply retried at the next tick.
class AutoMedic {
 public:
  explicit AutoMedic(Simulation& sim, Duration check_interval = millis(100));

  std::uint64_t recoveries() const { return state_->recoveries; }

 private:
  struct State {
    Simulation* sim;
    Duration interval;
    std::uint64_t recoveries = 0;
  };

  static void arm(const std::shared_ptr<State>& state);

  std::shared_ptr<State> state_;
};

}  // namespace abcast::sim
