#include "sim/scheduler.hpp"

#include "common/check.hpp"

namespace abcast::sim {

Scheduler::Token Scheduler::schedule_at(TimePoint t, std::function<void()> fn) {
  if (t < now_) t = now_;
  const Token token = next_token_++;
  events_.emplace(Key{t, token}, std::move(fn));
  token_time_.emplace(token, t);
  return token;
}

void Scheduler::cancel(Token token) {
  auto it = token_time_.find(token);
  if (it == token_time_.end()) return;
  events_.erase(Key{it->second, token});
  token_time_.erase(it);
}

void Scheduler::advance_to(TimePoint t) {
  if (t <= now_) return;
  ABCAST_CHECK_MSG(events_.empty() || events_.begin()->first.first >= t,
                   "cannot advance past a pending event");
  now_ = t;
}

bool Scheduler::step() {
  if (events_.empty()) return false;
  auto it = events_.begin();
  const auto [t, token] = it->first;
  ABCAST_CHECK(t >= now_);
  now_ = t;
  auto fn = std::move(it->second);
  events_.erase(it);
  token_time_.erase(token);
  fired_ += 1;
  fn();
  return true;
}

}  // namespace abcast::sim
