// Discrete-event scheduler with deterministic ordering.
//
// Events at the same virtual time fire in scheduling order (a monotonically
// increasing sequence number breaks ties), so a run is fully determined by
// the seed and configuration — the property every "same seed, same trace"
// test depends on.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <unordered_map>
#include <utility>

#include "common/types.hpp"

namespace abcast::sim {

class Scheduler {
 public:
  using Token = std::uint64_t;

  /// Schedules `fn` at absolute virtual time `t` (clamped to now). Returns a
  /// token usable with cancel().
  Token schedule_at(TimePoint t, std::function<void()> fn);

  Token schedule_after(Duration d, std::function<void()> fn) {
    return schedule_at(now_ + (d < 0 ? 0 : d), std::move(fn));
  }

  /// Cancels a pending event; no-op if it already fired or was cancelled.
  void cancel(Token token);

  /// Fires the earliest pending event, advancing virtual time to it.
  /// Returns false if no events are pending.
  bool step();

  /// Advances virtual time to `t` without firing anything (no pending event
  /// may be earlier). Lets run_until(t) move the clock through idle gaps.
  void advance_to(TimePoint t);

  TimePoint now() const { return now_; }

  /// Virtual time of the earliest pending event, if any.
  std::optional<TimePoint> next_time() const {
    if (events_.empty()) return std::nullopt;
    return events_.begin()->first.first;
  }

  bool empty() const { return events_.empty(); }
  std::size_t pending() const { return events_.size(); }
  std::uint64_t fired() const { return fired_; }

 private:
  using Key = std::pair<TimePoint, Token>;

  TimePoint now_ = 0;
  Token next_token_ = 1;
  std::uint64_t fired_ = 0;
  std::map<Key, std::function<void()>> events_;
  std::unordered_map<Token, TimePoint> token_time_;
};

}  // namespace abcast::sim
