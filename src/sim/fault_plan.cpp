#include "sim/fault_plan.hpp"

#include "common/check.hpp"

namespace abcast::sim {

void install_fault_script(Simulation& sim,
                          const std::vector<FaultEvent>& plan) {
  for (const auto& ev : plan) {
    ABCAST_CHECK(ev.process < sim.n());
    switch (ev.kind) {
      case FaultKind::kCrash:
        sim.crash_at(ev.at, ev.process);
        break;
      case FaultKind::kRecover:
        sim.recover_at(ev.at, ev.process);
        break;
    }
  }
}

ChurnInjector::ChurnInjector(Simulation& sim, ChurnConfig config) {
  if (config.victims.empty()) {
    for (ProcessId p = 0; p < sim.n(); ++p) config.victims.push_back(p);
  }
  if (config.max_down == 0) {
    // Strict minority: with n processes, keep at least floor(n/2)+1 up.
    config.max_down = (sim.n() - 1) / 2;
  }
  state_ = std::make_shared<State>();
  state_->sim = &sim;
  state_->config = std::move(config);
  for (const ProcessId p : state_->config.victims) {
    ABCAST_CHECK(p < sim.n());
    arm_crash(state_, p);
  }
}

void ChurnInjector::arm_crash(const std::shared_ptr<State>& state,
                              ProcessId p) {
  Simulation& sim = *state->sim;
  const Duration wait = sim.rng().exponential(state->config.mtbf);
  TimePoint when = sim.now() + wait;
  if (when < state->config.start) when = state->config.start + wait;
  if (when >= state->config.stop) return;  // churn window over
  sim.at(when, [state, p] {
    Simulation& s = *state->sim;
    if (s.host(p).is_up() && state->down_now < state->config.max_down) {
      s.crash(p);
      state->down_now += 1;
      state->crashes += 1;
      arm_recover(state, p);
    } else {
      // Could not crash now (already down, or quorum guard); retry later.
      arm_crash(state, p);
    }
  });
}

void ChurnInjector::arm_recover(const std::shared_ptr<State>& state,
                                ProcessId p) {
  Simulation& sim = *state->sim;
  const Duration wait = sim.rng().exponential(state->config.mttr);
  sim.after(wait, [state, p] {
    Simulation& s = *state->sim;
    if (!s.host(p).is_up()) {
      s.recover(p);
      state->down_now -= 1;
    }
    arm_crash(state, p);
  });
}

}  // namespace abcast::sim
