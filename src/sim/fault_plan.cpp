#include "sim/fault_plan.hpp"

#include "common/check.hpp"

namespace abcast::sim {

void install_fault_script(Simulation& sim,
                          const std::vector<FaultEvent>& plan) {
  for (const auto& ev : plan) {
    ABCAST_CHECK(ev.process < sim.n());
    switch (ev.kind) {
      case FaultKind::kCrash:
        sim.crash_at(ev.at, ev.process);
        break;
      case FaultKind::kRecover:
        sim.recover_at(ev.at, ev.process);
        break;
      case FaultKind::kCrashAtStorageOp: {
        const ProcessId p = ev.process;
        const std::uint64_t ops = ev.op_index == 0 ? 1 : ev.op_index;
        const CrashPhase phase = ev.phase;
        sim.at(ev.at, [&sim, p, ops, phase] {
          if (sim.host(p).is_up()) {
            sim.storage_faults(p).arm_crash_in(ops, phase);
          }
        });
        break;
      }
    }
  }
}

ChurnInjector::ChurnInjector(Simulation& sim, ChurnConfig config) {
  if (config.victims.empty()) {
    for (ProcessId p = 0; p < sim.n(); ++p) config.victims.push_back(p);
  }
  if (config.max_down == 0) {
    // Strict minority: with n processes, keep at least floor(n/2)+1 up.
    config.max_down = (sim.n() - 1) / 2;
  }
  state_ = std::make_shared<State>();
  state_->sim = &sim;
  state_->config = std::move(config);
  for (const ProcessId p : state_->config.victims) {
    ABCAST_CHECK(p < sim.n());
    arm_crash(state_, p);
  }
}

void ChurnInjector::arm_crash(const std::shared_ptr<State>& state,
                              ProcessId p) {
  Simulation& sim = *state->sim;
  const Duration wait = sim.rng().exponential(state->config.mtbf);
  TimePoint when = sim.now() + wait;
  if (when < state->config.start) when = state->config.start + wait;
  if (when >= state->config.stop) return;  // churn window over
  sim.at(when, [state, p] {
    Simulation& s = *state->sim;
    if (!s.host(p).is_up() || state->down_now >= state->config.max_down) {
      // Could not crash now (already down, or quorum guard); retry later.
      arm_crash(state, p);
      return;
    }
    // The down slot is reserved immediately in both branches — a pending
    // storage crash-point counts against max_down from the moment it is
    // armed, so the quorum guard can never be overshot by crash-points in
    // flight.
    state->down_now += 1;
    state->crashes += 1;
    if (s.rng().chance(state->config.storage_crash_prob)) {
      state->storage_crashes += 1;
      const auto window =
          state->config.storage_crash_op_window == 0
              ? std::uint64_t{1}
              : state->config.storage_crash_op_window;
      const auto ops = static_cast<std::uint64_t>(
          s.rng().uniform(1, static_cast<std::int64_t>(window)));
      const auto phase = static_cast<CrashPhase>(s.rng().uniform(0, 2));
      s.storage_faults(p).arm_crash_in(ops, phase);
      // Recovery (and the idle-process fallback kill) happen at the
      // deadline: by then the crash-point has either fired or is abandoned.
      s.after(state->config.storage_crash_deadline, [state, p] {
        Simulation& s2 = *state->sim;
        if (s2.host(p).is_up()) {
          s2.storage_faults(p).disarm_crash_point();
          s2.crash(p);
        }
        arm_recover(state, p);
      });
    } else {
      s.crash(p);
      arm_recover(state, p);
    }
  });
}

void ChurnInjector::arm_recover(const std::shared_ptr<State>& state,
                                ProcessId p) {
  Simulation& sim = *state->sim;
  const Duration wait = sim.rng().exponential(state->config.mttr);
  sim.after(wait, [state, p] {
    Simulation& s = *state->sim;
    if (s.host(p).is_up() || s.recover(p)) {
      // Up again (recovered now, or was never successfully crashed because
      // an armed crash-point found it already down); release the slot.
      state->down_now -= 1;
      arm_crash(state, p);
    } else {
      // The recovery itself died on a storage fault: the host stays down
      // and keeps its reserved slot; try again after another MTTR draw.
      state->failed_recoveries += 1;
      arm_recover(state, p);
    }
  });
}

// ------------------------------------------------------------- AutoMedic

AutoMedic::AutoMedic(Simulation& sim, Duration check_interval) {
  state_ = std::make_shared<State>();
  state_->sim = &sim;
  state_->interval = check_interval;
  arm(state_);
}

void AutoMedic::arm(const std::shared_ptr<State>& state) {
  Simulation& sim = *state->sim;
  sim.after(state->interval, [state] {
    Simulation& s = *state->sim;
    for (ProcessId p = 0; p < s.n(); ++p) {
      if (!s.host(p).is_up() && s.recover(p)) state->recoveries += 1;
    }
    arm(state);
  });
}

}  // namespace abcast::sim
