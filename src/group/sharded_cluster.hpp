// One-call sharded cluster setup: a Simulation running ShardedKvNodes.
//
// The single-group harness (harness::Cluster) wires a live Oracle between
// the stack and the test; here the application IS the sink (ShardSink), so
// safety is certified offline instead: per-group total order and
// cross-shard atomicity by obs::check_sharded_trace over the merged trace,
// convergence by shard digest equality across replicas. The cluster exposes
// the same crash-tolerant submission and quiesce conveniences the scenario
// runner needs.
#pragma once

#include <string_view>
#include <vector>

#include "group/sharded_kv.hpp"
#include "sim/simulation.hpp"

namespace abcast::group {

struct ShardedClusterConfig {
  sim::SimConfig sim;
  ShardedKvOptions node;
};

class ShardedCluster {
 public:
  explicit ShardedCluster(ShardedClusterConfig config);

  void start_all() { sim_.start_all(); }

  sim::Simulation& sim() { return sim_; }
  const ShardedClusterConfig& config() const { return config_; }
  const GroupConfig& layout() const { return config_.node.layout; }

  /// The sharded node of `p`, or nullptr while p is down.
  ShardedKvNode* node(ProcessId p);

  /// Crash-tolerant submission (mirrors Cluster::broadcast_may_crash): a
  /// SimulatedCrash / StorageIoError inside the call is converted into the
  /// usual host crash. The id is captured BEFORE the broadcast, so a
  /// submission interrupted after its log op is still accounted for.
  struct SubmitAttempt {
    MsgId id{};
    std::uint32_t group = 0;
    bool completed = false;
  };
  SubmitAttempt submit_may_crash(ProcessId p, std::string_view key,
                                 Bytes kv_command);

  struct PairAttempt {
    std::uint64_t pair_id = 0;
    std::uint32_t group_a = 0;
    std::uint32_t group_b = 0;
    bool completed = false;  // both broadcasts returned
  };
  PairAttempt submit_pair_may_crash(ProcessId p, std::string_view key_a,
                                    Bytes cmd_a, std::string_view key_b,
                                    Bytes cmd_b);

  /// True once `id` is delivered in group `g` at every node serving g.
  bool delivered_everywhere(std::uint32_t g, const MsgId& id);

  /// Runs until every node is up, every group's delivery sequences are
  /// equally long with nothing unordered, and every shard has applied all
  /// its holds (no pending cross-shard queue entries). Returns false on
  /// timeout.
  bool await_quiesced(Duration timeout = seconds(60));

  /// KV digest of shard `g`, asserting equality across all serving nodes
  /// (call only when quiesced).
  std::uint64_t shard_digest(std::uint32_t g);

  /// Sum over groups of that group's agreed-sequence length — the
  /// aggregate ordering throughput numerator (call when quiesced).
  std::uint64_t aggregate_delivered();

  std::vector<obs::TraceEvent> collect_trace();
  std::uint64_t trace_dropped();

 private:
  ShardedClusterConfig config_;
  sim::Simulation sim_;
};

}  // namespace abcast::group
