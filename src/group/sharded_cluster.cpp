#include "group/sharded_cluster.hpp"

#include "common/check.hpp"

namespace abcast::group {

ShardedCluster::ShardedCluster(ShardedClusterConfig config)
    : config_(std::move(config)), sim_(config_.sim) {
  ABCAST_CHECK(config_.node.layout.n_nodes == config_.sim.n);
  sim_.set_node_factory([this](Env& env) {
    return std::make_unique<ShardedKvNode>(env, config_.node);
  });
}

ShardedKvNode* ShardedCluster::node(ProcessId p) {
  // The factory above only ever creates ShardedKvNodes.
  return static_cast<ShardedKvNode*>(sim_.node(p));
}

ShardedCluster::SubmitAttempt ShardedCluster::submit_may_crash(
    ProcessId p, std::string_view key, Bytes kv_command) {
  ShardedKvNode* n = node(p);
  ABCAST_CHECK_MSG(n != nullptr, "submit from a down process");
  SubmitAttempt out;
  out.group = n->router().group_of_key(key);
  out.id = n->stack(out.group).ab().next_broadcast_id();
  try {
    const MsgId actual = n->submit_to_group(out.group, std::move(kv_command));
    ABCAST_CHECK(actual == out.id);
    out.completed = true;
  } catch (const SimulatedCrash&) {
    sim_.host(p).crash_from_storage_fault();
  } catch (const StorageIoError&) {
    sim_.host(p).crash_from_storage_fault();
  }
  return out;
}

ShardedCluster::PairAttempt ShardedCluster::submit_pair_may_crash(
    ProcessId p, std::string_view key_a, Bytes cmd_a, std::string_view key_b,
    Bytes cmd_b) {
  ShardedKvNode* n = node(p);
  ABCAST_CHECK_MSG(n != nullptr, "submit from a down process");
  PairAttempt out;
  const std::uint32_t ga = n->router().group_of_key(key_a);
  const std::uint32_t gb = n->router().group_of_key(key_b);
  out.group_a = ga < gb ? ga : gb;
  out.group_b = ga < gb ? gb : ga;
  try {
    out.pair_id = n->submit_pair(key_a, std::move(cmd_a), key_b,
                                 std::move(cmd_b));
    out.completed = true;
  } catch (const SimulatedCrash&) {
    sim_.host(p).crash_from_storage_fault();
  } catch (const StorageIoError&) {
    sim_.host(p).crash_from_storage_fault();
  }
  return out;
}

bool ShardedCluster::delivered_everywhere(std::uint32_t g, const MsgId& id) {
  for (const ProcessId p : layout().members[g]) {
    ShardedKvNode* n = node(p);
    if (n == nullptr || !n->stack(g).ab().is_delivered(id)) return false;
  }
  return true;
}

bool ShardedCluster::await_quiesced(Duration timeout) {
  return sim_.run_until_pred(
      [&] {
        for (ProcessId p = 0; p < sim_.n(); ++p) {
          if (node(p) == nullptr) return false;
        }
        for (std::uint32_t g = 0; g < layout().n_groups; ++g) {
          std::uint64_t total = 0;
          bool first = true;
          for (const ProcessId p : layout().members[g]) {
            auto& ab = node(p)->stack(g).ab();
            if (ab.unordered_size() != 0) return false;
            if (first) {
              total = ab.agreed().total();
              first = false;
            } else if (ab.agreed().total() != total) {
              return false;
            }
          }
        }
        // Every delivered cross-shard hold must also have applied: a
        // non-empty pending queue means a pair is still waiting on its
        // partner (possibly on a repair re-broadcast still in flight).
        for (ProcessId p = 0; p < sim_.n(); ++p) {
          if (!node(p)->drained()) return false;
        }
        return true;
      },
      sim_.now() + timeout);
}

std::uint64_t ShardedCluster::shard_digest(std::uint32_t g) {
  std::uint64_t digest = 0;
  bool first = true;
  for (const ProcessId p : layout().members[g]) {
    ShardedKvNode* n = node(p);
    ABCAST_CHECK_MSG(n != nullptr, "shard_digest with a down replica");
    const std::uint64_t d = n->shard(g).digest();
    if (first) {
      digest = d;
      first = false;
    } else {
      ABCAST_CHECK_MSG(d == digest, "shard replicas diverged");
    }
  }
  return digest;
}

std::uint64_t ShardedCluster::aggregate_delivered() {
  std::uint64_t total = 0;
  for (std::uint32_t g = 0; g < layout().n_groups; ++g) {
    const ProcessId p = layout().members[g].front();
    ShardedKvNode* n = node(p);
    ABCAST_CHECK(n != nullptr);
    total += n->stack(g).ab().agreed().total();
  }
  return total;
}

std::vector<obs::TraceEvent> ShardedCluster::collect_trace() {
  std::vector<obs::TraceEvent> merged;
  for (ProcessId p = 0; p < sim_.n(); ++p) {
    auto* rec = sim_.host(p).recorder();
    ABCAST_CHECK_MSG(rec != nullptr,
                     "collect_trace requires sim.trace_capacity > 0");
    auto events = rec->events();
    merged.insert(merged.end(), events.begin(), events.end());
  }
  return merged;
}

std::uint64_t ShardedCluster::trace_dropped() {
  std::uint64_t dropped = 0;
  for (ProcessId p = 0; p < sim_.n(); ++p) {
    if (auto* rec = sim_.host(p).recorder()) dropped += rec->dropped();
  }
  return dropped;
}

}  // namespace abcast::group
