// Partitioned KV over N Atomic Broadcast groups, with cross-shard atomic
// operations via two-group deterministic commit (DESIGN.md §13).
//
// Single-shard commands are routed by key hash to the owning group and
// applied in that group's total order — N independent orders, N× the
// aggregate ordering throughput. A cross-shard op is broadcast in BOTH
// owning groups with an identical self-contained payload; each shard
// delivers it as a *hold* at its local order position and the effect
// applies at the deterministic merge point: a shard applies the head of its
// pending queue once the partner shard (on the same node) has delivered its
// hold. Because each shard only ever applies queue heads, the sequence of
// effects at a shard is a pure function of its group's delivery order —
// replicas converge regardless of cross-group timing, and messages decided
// in one Consensus round enter the queue in MsgId order (the paper's
// deterministic rule), so pair-id ordering breaks all remaining ties.
//
// Crash-recovery: holds are volatile but reconstructed for free — the
// per-group `Agreed` replay re-delivers them, and application checkpoints
// serialize the pending queue + completed-pair set, so a rejoining replica
// rebuilds exactly the merge state it crashed with. If the submitter dies
// between the two broadcasts, any replica that holds the op repairs the
// lagging group by re-broadcasting the (self-contained) payload there;
// delivery dedups by pair id, so repair is idempotent.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string_view>
#include <vector>

#include "apps/kv_store.hpp"
#include "common/relaxed_counter.hpp"
#include "core/delivery_sink.hpp"
#include "core/node_stack.hpp"
#include "group/group_config.hpp"
#include "group/group_env.hpp"
#include "group/group_wire.hpp"
#include "obs/metrics.hpp"

namespace abcast::group {

/// Node-level multi-group counters, indexed in EXPERIMENTS.md under the
/// ab_group_ prefix (ablint rule metrics-indexed).
struct GroupMetrics {
  RelaxedU64 envelopes_rx;    // envelopes demuxed to a local stack
  RelaxedU64 envelope_drops;  // malformed / unknown group / bogus sender
  RelaxedU64 submitted;       // single-shard commands routed + broadcast
  RelaxedU64 pair_submitted;  // cross-shard ops submitted at this node
  RelaxedU64 pair_holds;      // holds registered (delivery + replay)
  RelaxedU64 pair_applies;    // pair effects applied at a local shard
  RelaxedU64 pair_dups;       // duplicate pair deliveries dropped
  RelaxedU64 pair_repairs;    // repair re-broadcasts into a lagging group
  RelaxedU64 malformed;       // undecodable shard commands skipped
};

class ShardSink;

/// Volatile per-node registry of cross-shard pair state, shared by the
/// node's shards. Rebuilt after every crash by the per-group Agreed replay
/// and checkpoint re-installation (the ShardSink upcalls below), so it never
/// needs its own logging.
class PairTracker {
 public:
  enum class Status : std::uint8_t { kNone, kHeld, kDone };

  void attach(std::uint32_t gid, ShardSink* sink) { sinks_[gid] = sink; }

  /// A hold became pending at shard `gid` (fresh delivery, replay, or
  /// checkpoint reconstruction). Pokes the partner shard's drain — it may
  /// have been blocked at its head waiting for exactly this hold.
  void on_hold(std::uint32_t gid, const ShardCommandMsg& op, TimePoint now);

  /// Shard `gid` applied the pair's effect.
  void on_complete(std::uint32_t gid, std::uint64_t pair_id);

  Status status(std::uint64_t pair_id, std::uint32_t gid) const;

  /// The merge-point predicate: the partner shard on this node has at least
  /// delivered its hold (or already applied).
  bool partner_ready(std::uint64_t pair_id, std::uint32_t partner_gid) const {
    return status(pair_id, partner_gid) != Status::kNone;
  }

  struct LaggingPair {
    ShardCommandMsg op;
    std::uint32_t lagging_group = 0;
  };
  /// Pairs held by one local shard whose partner group shows no hold after
  /// `grace` — candidates for repair re-broadcast. Rate-limited: a pair is
  /// re-reported only once per `grace` window.
  std::vector<LaggingPair> lagging(TimePoint now, Duration grace);

 private:
  struct PairInfo {
    ShardCommandMsg op;  // empty (kind-default) until a hold supplies it
    bool have_op = false;
    std::map<std::uint32_t, Status> status;  // per owning group, this node
    TimePoint first_hold = 0;
    TimePoint last_repair = 0;
  };
  std::map<std::uint32_t, ShardSink*> sinks_;
  std::map<std::uint64_t, PairInfo> pairs_;
};

/// One group's shard: the group-order application of KvStore plus the
/// pending queue realizing the two-group commit. Lives inside the crash
/// boundary; all durable state flows through take/install_checkpoint and
/// the Agreed replay.
class ShardSink final : public core::DeliverySink {
 public:
  /// `genv` is the group's host env (its tracer tags events with the
  /// group); tracker and metrics are owned by the enclosing node.
  ShardSink(Env& genv, std::uint32_t gid, PairTracker& tracker,
            GroupMetrics& metrics);

  void deliver(const core::AppMsg& msg) override;
  Bytes take_checkpoint() override;
  void install_checkpoint(const Bytes& state) override;

  /// Applies every ready op at the queue head. Re-entrancy safe (a drain
  /// may poke the partner whose drain pokes back); called by the tracker
  /// when a partner hold lands.
  void drain();

  const apps::KvStore& kv() const { return kv_; }
  std::uint32_t gid() const { return gid_; }
  bool drained() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }
  std::uint64_t digest() const { return kv_.digest(); }

 private:
  bool head_ready() const;
  void apply_head();
  void trace_pair(const char* what, const ShardCommandMsg& op);

  Env& env_;
  const std::uint32_t gid_;
  PairTracker& tracker_;
  GroupMetrics& metrics_;
  apps::KvStore kv_;
  std::deque<ShardCommandMsg> queue_;  // delivered, not yet applied
  std::set<std::uint64_t> completed_;  // pair ids applied at this shard
  bool draining_ = false;
  bool repoke_ = false;
};

struct ShardedKvOptions {
  GroupConfig layout;
  /// Per-group stack configuration (every group runs the same profile).
  core::StackConfig stack;
  /// Cadence of the hold-repair scan, and how long a one-sided hold must
  /// lag before its payload is re-broadcast into the partner group.
  Duration repair_interval = millis(150);
  Duration repair_grace = millis(300);
};

/// The multi-group NodeApp: one GroupHostEnv + ShardSink + NodeStack per
/// group this node serves, a demux routing kGroupEnvelope datagrams to the
/// right stack, key-hash submission routing, and the cross-shard commit
/// machinery. Transports see a single ordinary NodeApp.
class ShardedKvNode final : public NodeApp {
 public:
  ShardedKvNode(Env& env, ShardedKvOptions options);

  void start(bool recovering) override;
  void on_message(ProcessId from, const Wire& msg) override;

  /// Routes `kv_command` (KvCommand bytes) to the group owning `key`.
  /// This node must serve that group (uniform layouts always do).
  MsgId submit(std::string_view key, Bytes kv_command);
  MsgId submit_to_group(std::uint32_t g, Bytes kv_command);

  /// Cross-shard atomic op: `cmd_a` applies at key_a's shard and `cmd_b`
  /// at key_b's shard, both or (if no shard ever delivers) neither.
  /// Returns the pair id. This node must serve both owning groups.
  std::uint64_t submit_pair(std::string_view key_a, Bytes cmd_a,
                            std::string_view key_b, Bytes cmd_b);

  const GroupRouter& router() const { return router_; }
  const GroupConfig& layout() const { return options_.layout; }
  bool serves(std::uint32_t g) const { return find_slot(g) != nullptr; }
  core::NodeStack& stack(std::uint32_t g);
  ShardSink& shard(std::uint32_t g);
  const ShardSink& shard(std::uint32_t g) const;
  /// Groups served by this node, in slot order.
  std::vector<std::uint32_t> local_groups() const;
  /// True when every local shard has applied everything it delivered.
  bool drained() const;
  const GroupMetrics& metrics() const { return metrics_; }

 private:
  struct Slot {
    std::uint32_t gid;
    GroupHostEnv genv;
    ShardSink sink;
    core::NodeStack stack;

    Slot(Env& parent, std::uint32_t g, std::vector<ProcessId> members,
         PairTracker& tracker, GroupMetrics& metrics,
         const core::StackConfig& config)
        : gid(g),
          genv(parent, g, std::move(members)),
          sink(genv, g, tracker, metrics),
          stack(genv, config, sink) {}
  };

  Slot* find_slot(std::uint32_t g);
  const Slot* find_slot(std::uint32_t g) const;
  void arm_repair_timer();
  void run_repair();

  Env& env_;
  ShardedKvOptions options_;
  GroupRouter router_;
  GroupMetrics metrics_;
  PairTracker tracker_;
  std::vector<std::unique_ptr<Slot>> slots_;
  TimerId repair_timer_ = 0;
  obs::MetricsGroup metrics_group_;  // declared last: unbinds before slots
};

}  // namespace abcast::group
