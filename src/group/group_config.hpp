// Static multi-group layout and key routing.
//
// One membership (the node set 0..n_nodes-1) hosts N independent Atomic
// Broadcast groups — the Derecho subgroup/shard layout shape: a
// subgroup_shard_layout-style table lists, per group, the global node ids
// serving it, in member-index order. Each serving node runs one full
// NodeStack per group (failure detector + consensus + AB), so every group
// keeps the paper's crash-recovery guarantees independently; the layout is
// static for a run (reconfiguration is out of scope).
//
// GroupRouter is the client-side half: keys hash to group ids (FNV-1a mod
// N), so a partitioned KV spreads its keyspace across the N total orders.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace abcast::group {

struct GroupConfig {
  std::uint32_t n_nodes = 0;
  std::uint32_t n_groups = 0;
  /// members[g] = global ProcessIds serving group g, in member-index order
  /// (a per-group stack addresses its peers by index into this row).
  std::vector<std::vector<ProcessId>> members;

  /// Every node serves every group — full replication, N orders. This is
  /// the layout the sharded KV and the scenario runner use: any node can
  /// submit to (and repair) any group.
  static GroupConfig uniform(std::uint32_t n_nodes, std::uint32_t n_groups);

  /// Groups stripe over overlapping windows of `replicas` consecutive nodes
  /// (group g = nodes g, g+1, …, g+replicas-1 mod n). Exercises layouts
  /// where nodes serve only a subset of groups.
  static GroupConfig striped(std::uint32_t n_nodes, std::uint32_t n_groups,
                             std::uint32_t replicas);

  bool serves(ProcessId node, std::uint32_t g) const;

  /// Index of `node` within members[g]; aborts if the node does not serve g.
  std::uint32_t member_index(std::uint32_t g, ProcessId node) const;

  /// Groups served by `node`, ascending.
  std::vector<std::uint32_t> groups_of(ProcessId node) const;

  /// Structural sanity: every row non-empty, ids in range, no duplicates.
  bool valid() const;
};

/// Deterministic key → group routing shared by every client and replica
/// (the merge rule depends on all parties agreeing on owners). Owns its
/// copy of the layout, so it may outlive the config it was built from
/// (constructing one straight off GroupConfig::uniform(...) is fine).
class GroupRouter {
 public:
  explicit GroupRouter(GroupConfig config) : config_(std::move(config)) {
    ABCAST_CHECK(config_.n_groups > 0);
  }

  /// FNV-1a over the key bytes; stable across platforms and runs.
  static std::uint64_t key_hash(std::string_view key);

  std::uint32_t group_of_key(std::string_view key) const {
    return static_cast<std::uint32_t>(key_hash(key) % config_.n_groups);
  }

  const GroupConfig& config() const { return config_; }

 private:
  GroupConfig config_;
};

}  // namespace abcast::group
