#include "group/group_config.hpp"

#include <algorithm>
#include <set>

namespace abcast::group {

GroupConfig GroupConfig::uniform(std::uint32_t n_nodes,
                                 std::uint32_t n_groups) {
  ABCAST_CHECK(n_nodes > 0 && n_groups > 0);
  GroupConfig c;
  c.n_nodes = n_nodes;
  c.n_groups = n_groups;
  c.members.resize(n_groups);
  for (auto& row : c.members) {
    row.resize(n_nodes);
    for (ProcessId p = 0; p < n_nodes; ++p) row[p] = p;
  }
  return c;
}

GroupConfig GroupConfig::striped(std::uint32_t n_nodes,
                                 std::uint32_t n_groups,
                                 std::uint32_t replicas) {
  ABCAST_CHECK(n_nodes > 0 && n_groups > 0);
  ABCAST_CHECK(replicas > 0 && replicas <= n_nodes);
  GroupConfig c;
  c.n_nodes = n_nodes;
  c.n_groups = n_groups;
  c.members.resize(n_groups);
  for (std::uint32_t g = 0; g < n_groups; ++g) {
    for (std::uint32_t i = 0; i < replicas; ++i) {
      c.members[g].push_back((g + i) % n_nodes);
    }
    // Member order must be deterministic but need not be sorted; keep the
    // stripe rotation so member 0 differs across groups (spreads the
    // proposer role when the stacks elect by index).
  }
  return c;
}

bool GroupConfig::serves(ProcessId node, std::uint32_t g) const {
  if (g >= members.size()) return false;
  const auto& row = members[g];
  return std::find(row.begin(), row.end(), node) != row.end();
}

std::uint32_t GroupConfig::member_index(std::uint32_t g,
                                        ProcessId node) const {
  ABCAST_CHECK(g < members.size());
  const auto& row = members[g];
  const auto it = std::find(row.begin(), row.end(), node);
  ABCAST_CHECK_MSG(it != row.end(), "node does not serve this group");
  return static_cast<std::uint32_t>(it - row.begin());
}

std::vector<std::uint32_t> GroupConfig::groups_of(ProcessId node) const {
  std::vector<std::uint32_t> out;
  for (std::uint32_t g = 0; g < members.size(); ++g) {
    if (serves(node, g)) out.push_back(g);
  }
  return out;
}

bool GroupConfig::valid() const {
  if (n_nodes == 0 || n_groups == 0) return false;
  if (members.size() != n_groups) return false;
  for (const auto& row : members) {
    if (row.empty()) return false;
    std::set<ProcessId> seen;
    for (const ProcessId p : row) {
      if (p >= n_nodes) return false;
      if (!seen.insert(p).second) return false;
    }
  }
  return true;
}

std::uint64_t GroupRouter::key_hash(std::string_view key) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : key) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace abcast::group
