// Per-group host environment facade.
//
// Each group's NodeStack runs against a GroupHostEnv instead of the real
// host Env. The facade (a) renames the process id space — a stack addresses
// its peers by member index into the group's row of the layout, not by
// global node id; (b) wraps every outgoing datagram in a kGroupEnvelope so
// the receiving node's demux can route it to the right stack; (c) scopes
// stable storage under "g<gid>/" so N stacks share one physical log without
// key collisions; and (d) tags every trace event with the group id so the
// offline checker can split the merged per-node trace into per-group
// sub-traces.
//
// The facade lives INSIDE the crash boundary (owned by the multi-group
// NodeApp), so a crash destroys all groups' volatile state at once — one
// node, one failure domain, exactly like the paper's single-group model
// seen N times.
#pragma once

#include <optional>
#include <vector>

#include "common/check.hpp"
#include "env/env.hpp"
#include "group/group_wire.hpp"
#include "obs/trace.hpp"
#include "storage/scoped_storage.hpp"

namespace abcast::group {

class GroupHostEnv final : public Env {
 public:
  /// `members` is the layout row for this group (global node ids in member
  /// order); `parent` must outlive the facade and contain self() in the row.
  GroupHostEnv(Env& parent, std::uint32_t gid, std::vector<ProcessId> members)
      : parent_(parent),
        gid_(gid),
        members_(std::move(members)),
        storage_(parent.storage(), "g" + std::to_string(gid)) {
    for (std::uint32_t i = 0; i < members_.size(); ++i) {
      if (members_[i] == parent_.self()) self_index_ = i;
    }
    ABCAST_CHECK_MSG(self_index_ != kNoProcess,
                     "node does not serve this group");
    if (auto* rec = parent_.tracer()) {
      // Trace group tags are gid+1: tag 0 means "untagged host event" in
      // the merged trace, so real group 0 must not collide with it.
      tagged_.emplace(*rec, gid_ + 1);
    }
  }

  std::uint32_t gid() const { return gid_; }
  const std::vector<ProcessId>& members() const { return members_; }

  ProcessId self() const override { return self_index_; }
  std::uint32_t group_size() const override {
    return static_cast<std::uint32_t>(members_.size());
  }
  TimePoint now() const override { return parent_.now(); }

  TimerId schedule_after(Duration delay, std::function<void()> fn) override {
    return parent_.schedule_after(delay, std::move(fn));
  }
  void cancel_timer(TimerId id) override { parent_.cancel_timer(id); }

  void send(ProcessId to, const Wire& msg) override {
    ABCAST_CHECK(to < members_.size());
    parent_.send(members_[to], wrap(msg));
  }

  /// Encodes the envelope ONCE; the per-member copies share the payload
  /// (SharedBytes), preserving the copy-free multisend property.
  void multisend(const Wire& msg) override {
    const Wire wrapped = wrap(msg);
    for (const ProcessId global : members_) parent_.send(global, wrapped);
  }

  StableStorage& storage() override { return storage_; }
  Rng& rng() override { return parent_.rng(); }

  obs::TraceRecorder* tracer() override {
    return tagged_ ? &*tagged_ : nullptr;
  }

  /// Per-group stacks do NOT see the cluster registry: N stacks per node
  /// would collide on (name, labels) bindings. Node-level aggregates are
  /// bound by the owning NodeApp instead (GroupMetrics).
  obs::MetricsRegistry* metrics_registry() override { return nullptr; }

 private:
  Wire wrap(const Wire& inner) const {
    return make_wire(kGroupEnvelope, GroupEnvelopeMsg{gid_, inner});
  }

  Env& parent_;
  const std::uint32_t gid_;
  const std::vector<ProcessId> members_;
  ProcessId self_index_ = kNoProcess;
  ScopedStorage storage_;
  std::optional<obs::GroupTaggedRecorder> tagged_;
};

}  // namespace abcast::group
