#include "group/sharded_kv.hpp"

#include <algorithm>
#include <utility>

namespace abcast::group {

// ---------------------------------------------------------------- tracker

void PairTracker::on_hold(std::uint32_t gid, const ShardCommandMsg& op,
                          TimePoint now) {
  auto& info = pairs_[op.pair_id];
  if (!info.have_op) {
    info.op = op;
    info.have_op = true;
  }
  if (info.first_hold == 0) info.first_hold = now;
  auto& st = info.status[gid];
  if (st == Status::kNone) st = Status::kHeld;

  const std::uint32_t partner = gid == op.group_a ? op.group_b : op.group_a;
  const auto it = sinks_.find(partner);
  ABCAST_CHECK_MSG(it != sinks_.end(),
                   "cross-shard op spans a group not served locally");
  it->second->drain();
}

void PairTracker::on_complete(std::uint32_t gid, std::uint64_t pair_id) {
  pairs_[pair_id].status[gid] = Status::kDone;
}

PairTracker::Status PairTracker::status(std::uint64_t pair_id,
                                        std::uint32_t gid) const {
  const auto it = pairs_.find(pair_id);
  if (it == pairs_.end()) return Status::kNone;
  const auto st = it->second.status.find(gid);
  return st == it->second.status.end() ? Status::kNone : st->second;
}

std::vector<PairTracker::LaggingPair> PairTracker::lagging(TimePoint now,
                                                           Duration grace) {
  std::vector<LaggingPair> out;
  for (auto& [pair_id, info] : pairs_) {
    if (!info.have_op || info.op.group_a == info.op.group_b) continue;
    if (now - info.first_hold < grace) continue;
    if (info.last_repair != 0 && now - info.last_repair < grace) continue;
    for (const std::uint32_t g : {info.op.group_a, info.op.group_b}) {
      const auto st = info.status.find(g);
      if (st == info.status.end() || st->second == Status::kNone) {
        out.push_back({info.op, g});
        info.last_repair = now;
      }
    }
  }
  return out;
}

// ------------------------------------------------------------------ shard

ShardSink::ShardSink(Env& genv, std::uint32_t gid, PairTracker& tracker,
                     GroupMetrics& metrics)
    : env_(genv), gid_(gid), tracker_(tracker), metrics_(metrics) {}

void ShardSink::trace_pair(const char* what, const ShardCommandMsg& op) {
  if (auto* rec = env_.tracer()) {
    const std::uint32_t partner =
        gid_ == op.group_a ? op.group_b : op.group_a;
    rec->record(obs::EventKind::kCrossShard, env_.now(), partner, MsgId{},
                op.pair_id, what);
  }
}

void ShardSink::deliver(const core::AppMsg& msg) {
  ShardCommandMsg op;
  try {
    op = decode_from_bytes<ShardCommandMsg>(msg.payload);
  } catch (const CodecError&) {
    metrics_.malformed += 1;
    return;
  }
  if (op.kind == ShardCommandMsg::Kind::kPairOp) {
    // Repair re-broadcasts make a pair deliverable more than once per
    // group; the pair id makes the second delivery a no-op.
    if (tracker_.status(op.pair_id, gid_) != PairTracker::Status::kNone ||
        completed_.count(op.pair_id) != 0) {
      metrics_.pair_dups += 1;
      return;
    }
    metrics_.pair_holds += 1;
    trace_pair("hold", op);
    queue_.push_back(std::move(op));
    tracker_.on_hold(gid_, queue_.back(), env_.now());
  } else {
    queue_.push_back(std::move(op));
  }
  drain();
}

bool ShardSink::head_ready() const {
  const ShardCommandMsg& op = queue_.front();
  if (op.kind != ShardCommandMsg::Kind::kPairOp) return true;
  const std::uint32_t partner = gid_ == op.group_a ? op.group_b : op.group_a;
  return tracker_.partner_ready(op.pair_id, partner);
}

void ShardSink::apply_head() {
  ShardCommandMsg op = std::move(queue_.front());
  queue_.pop_front();
  if (op.kind != ShardCommandMsg::Kind::kPairOp) {
    kv_.apply(op.cmd);
    return;
  }
  if (op.group_a == op.group_b) {
    // Degenerate pair: both keys hash to this shard; the two commands apply
    // back-to-back at one order position.
    kv_.apply(op.cmd_a);
    kv_.apply(op.cmd_b);
  } else {
    kv_.apply(gid_ == op.group_a ? op.cmd_a : op.cmd_b);
  }
  completed_.insert(op.pair_id);
  metrics_.pair_applies += 1;
  trace_pair("apply", op);
  tracker_.on_complete(gid_, op.pair_id);
}

void ShardSink::drain() {
  if (draining_) {
    repoke_ = true;
    return;
  }
  draining_ = true;
  do {
    repoke_ = false;
    while (!queue_.empty() && head_ready()) apply_head();
  } while (repoke_);
  draining_ = false;
}

Bytes ShardSink::take_checkpoint() {
  BufWriter w;
  w.bytes(kv_.snapshot());
  w.u32(checked_u32(queue_.size()));
  for (const auto& op : queue_) op.encode(w);
  w.u32(checked_u32(completed_.size()));
  for (const std::uint64_t id : completed_) w.u64(id);
  return std::move(w).take();
}

void ShardSink::install_checkpoint(const Bytes& state) {
  kv_.restore(Bytes{});
  queue_.clear();
  completed_.clear();
  if (state.empty()) return;  // A-checkpoint(⊥): initial state

  BufReader r(state);
  kv_.restore(r.bytes());
  const auto n_pending = r.u32();
  for (std::uint32_t i = 0; i < n_pending; ++i) {
    queue_.push_back(ShardCommandMsg::decode(r));
  }
  const auto n_done = r.u32();
  for (std::uint32_t i = 0; i < n_done; ++i) completed_.insert(r.u64());
  r.expect_done();

  // Rebuild the (volatile) tracker's view of this shard: completed pairs
  // keep satisfying the partner's merge predicate, and reconstructed holds
  // re-arm it. The hold trace keeps the checker's "apply implies a hold at
  // this shard" rule sound on traces that begin at a checkpoint.
  for (const std::uint64_t id : completed_) tracker_.on_complete(gid_, id);
  for (const auto& op : queue_) {
    if (op.kind != ShardCommandMsg::Kind::kPairOp) continue;
    metrics_.pair_holds += 1;
    trace_pair("hold", op);
    tracker_.on_hold(gid_, op, env_.now());
  }
  drain();
}

// ------------------------------------------------------------------- node

namespace {

std::uint64_t mix_pair_id(ProcessId self, std::uint32_t ga, std::uint32_t gb,
                          std::uint64_t seq) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ull;
  };
  mix(self);
  mix(ga);
  mix(gb);
  mix(seq);
  return h;
}

}  // namespace

ShardedKvNode::ShardedKvNode(Env& env, ShardedKvOptions options)
    : env_(env), options_(std::move(options)), router_(options_.layout) {
  ABCAST_CHECK_MSG(options_.layout.valid(), "invalid group layout");
  ABCAST_CHECK(options_.layout.n_nodes == env_.group_size());
  for (const std::uint32_t g : options_.layout.groups_of(env_.self())) {
    slots_.push_back(std::make_unique<Slot>(env_, g,
                                            options_.layout.members[g],
                                            tracker_, metrics_,
                                            options_.stack));
    tracker_.attach(g, &slots_.back()->sink);
  }
  if (auto* reg = env_.metrics_registry()) {
    metrics_group_ = reg->group();
    const obs::Labels labels{{"node", std::to_string(env_.self())}};
    metrics_group_.bind("ab_group_envelopes_rx", labels,
                        &metrics_.envelopes_rx);
    metrics_group_.bind("ab_group_envelope_drops", labels,
                        &metrics_.envelope_drops);
    metrics_group_.bind("ab_group_submitted", labels, &metrics_.submitted);
    metrics_group_.bind("ab_group_pair_submitted", labels,
                        &metrics_.pair_submitted);
    metrics_group_.bind("ab_group_pair_holds", labels, &metrics_.pair_holds);
    metrics_group_.bind("ab_group_pair_applies", labels,
                        &metrics_.pair_applies);
    metrics_group_.bind("ab_group_pair_dups", labels, &metrics_.pair_dups);
    metrics_group_.bind("ab_group_pair_repairs", labels,
                        &metrics_.pair_repairs);
    metrics_group_.bind("ab_group_malformed", labels, &metrics_.malformed);
  }
}

void ShardedKvNode::start(bool recovering) {
  for (auto& slot : slots_) slot->stack.start(recovering);
  arm_repair_timer();
}

void ShardedKvNode::on_message(ProcessId from, const Wire& msg) {
  if (msg.type != kGroupEnvelope) {
    metrics_.envelope_drops += 1;
    return;
  }
  GroupEnvelopeMsg envelope;
  try {
    envelope = decode_from_bytes<GroupEnvelopeMsg>(msg.payload);
  } catch (const CodecError&) {
    metrics_.envelope_drops += 1;
    return;
  }
  Slot* slot = find_slot(envelope.group);
  if (slot == nullptr) {
    metrics_.envelope_drops += 1;
    return;
  }
  // Translate the global sender id into the group's member index space.
  const auto& row = options_.layout.members[envelope.group];
  const auto it = std::find(row.begin(), row.end(), from);
  if (it == row.end()) {
    metrics_.envelope_drops += 1;
    return;
  }
  metrics_.envelopes_rx += 1;
  slot->stack.on_message(static_cast<ProcessId>(it - row.begin()),
                         envelope.inner);
}

MsgId ShardedKvNode::submit(std::string_view key, Bytes kv_command) {
  return submit_to_group(router_.group_of_key(key), std::move(kv_command));
}

MsgId ShardedKvNode::submit_to_group(std::uint32_t g, Bytes kv_command) {
  Slot* slot = find_slot(g);
  ABCAST_CHECK_MSG(slot != nullptr,
                   "submitting node does not serve the target group");
  metrics_.submitted += 1;
  return slot->stack.ab().broadcast(
      encode_to_bytes(ShardCommandMsg::plain(std::move(kv_command))));
}

std::uint64_t ShardedKvNode::submit_pair(std::string_view key_a, Bytes cmd_a,
                                         std::string_view key_b,
                                         Bytes cmd_b) {
  std::uint32_t ga = router_.group_of_key(key_a);
  std::uint32_t gb = router_.group_of_key(key_b);
  if (ga > gb) {
    std::swap(ga, gb);
    std::swap(cmd_a, cmd_b);
  }
  Slot* sa = find_slot(ga);
  Slot* sb = find_slot(gb);
  ABCAST_CHECK_MSG(sa != nullptr && sb != nullptr,
                   "cross-shard op requires serving both owning groups");
  const std::uint64_t pair_id =
      mix_pair_id(env_.self(), ga, gb, sa->stack.ab().next_broadcast_id().seq);
  const Bytes payload = encode_to_bytes(ShardCommandMsg::pair(
      pair_id, ga, std::move(cmd_a), gb, std::move(cmd_b)));
  metrics_.pair_submitted += 1;
  sa->stack.ab().broadcast(payload);
  if (gb != ga) sb->stack.ab().broadcast(payload);
  return pair_id;
}

core::NodeStack& ShardedKvNode::stack(std::uint32_t g) {
  Slot* slot = find_slot(g);
  ABCAST_CHECK(slot != nullptr);
  return slot->stack;
}

ShardSink& ShardedKvNode::shard(std::uint32_t g) {
  Slot* slot = find_slot(g);
  ABCAST_CHECK(slot != nullptr);
  return slot->sink;
}

const ShardSink& ShardedKvNode::shard(std::uint32_t g) const {
  const Slot* slot = find_slot(g);
  ABCAST_CHECK(slot != nullptr);
  return slot->sink;
}

std::vector<std::uint32_t> ShardedKvNode::local_groups() const {
  std::vector<std::uint32_t> out;
  out.reserve(slots_.size());
  for (const auto& slot : slots_) out.push_back(slot->gid);
  return out;
}

bool ShardedKvNode::drained() const {
  for (const auto& slot : slots_) {
    if (!slot->sink.drained()) return false;
  }
  return true;
}

ShardedKvNode::Slot* ShardedKvNode::find_slot(std::uint32_t g) {
  for (auto& slot : slots_) {
    if (slot->gid == g) return slot.get();
  }
  return nullptr;
}

const ShardedKvNode::Slot* ShardedKvNode::find_slot(std::uint32_t g) const {
  for (const auto& slot : slots_) {
    if (slot->gid == g) return slot.get();
  }
  return nullptr;
}

void ShardedKvNode::arm_repair_timer() {
  repair_timer_ = env_.schedule_after(options_.repair_interval, [this] {
    run_repair();
    arm_repair_timer();
  });
}

void ShardedKvNode::run_repair() {
  for (const auto& lag :
       tracker_.lagging(env_.now(), options_.repair_grace)) {
    Slot* slot = find_slot(lag.lagging_group);
    if (slot == nullptr) continue;
    metrics_.pair_repairs += 1;
    slot->stack.ab().broadcast(encode_to_bytes(lag.op));
  }
}

}  // namespace abcast::group
