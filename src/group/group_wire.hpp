// Wire-tag home of the multi-group layer (see ablint rule wire-tag-home:
// kGroup* tags are pinned to this file).
//
// The group layer adds exactly ONE tag to the shared MsgType namespace: the
// envelope. Every datagram of every per-group protocol stack is wrapped as
//
//     Wire{kGroupEnvelope, encode(GroupEnvelopeMsg{group, inner})}
//
// by the per-group host env on the way out, and unwrapped by the
// ShardedKvNode demux on the way in. Transports (sim, rt, UDP) see one
// opaque Wire per datagram and need no changes — the whole multiplexing
// lives inside the NodeApp crash boundary.
#pragma once

#include <cstdint>

#include "common/codec.hpp"
#include "env/wire.hpp"

namespace abcast::group {

/// The group layer's envelope tag. The value 112 is reserved for it in the
/// MsgType enum (env/wire.hpp); the definition lives here, next to the
/// payload layout and the demux that owns it.
inline constexpr MsgType kGroupEnvelope = static_cast<MsgType>(112);

/// Payload of a kGroupEnvelope datagram: which group's stack the inner
/// message belongs to, plus the inner message verbatim.
struct GroupEnvelopeMsg {
  std::uint32_t group = 0;
  Wire inner;

  void encode(BufWriter& w) const {
    w.u32(group);
    inner.encode(w);
  }
  static GroupEnvelopeMsg decode(BufReader& r) {
    GroupEnvelopeMsg m;
    m.group = r.u32();
    m.inner = Wire::decode(r);
    return m;
  }
};

/// Command carried as the AppMsg payload inside a group's Atomic Broadcast
/// by the sharded KV (src/group/sharded_kv.hpp). Not a datagram of its own —
/// it rides the ordered stream — but it crosses the wire inside proposals
/// and gossip, so it gets the same codec discipline and round-trip test.
struct ShardCommandMsg {
  enum class Kind : std::uint8_t {
    kPlain = 1,   // single-shard command: apply `cmd` on delivery
    kPairOp = 2,  // cross-shard atomic op (two-group deterministic commit)
  };

  Kind kind = Kind::kPlain;
  Bytes cmd;  // kPlain: the KvCommand bytes for this shard

  // kPairOp: the SAME payload is broadcast in both owning groups, so any
  // replica of either group can re-broadcast it into the lagging partner
  // group (hold repair) without reconstructing anything.
  std::uint64_t pair_id = 0;  // globally unique (derived from a MsgId)
  std::uint32_t group_a = 0;  // lower-numbered owning group
  std::uint32_t group_b = 0;  // higher-numbered owning group
  Bytes cmd_a;                // command applied by group_a's shard
  Bytes cmd_b;                // command applied by group_b's shard

  void encode(BufWriter& w) const {
    w.u8(static_cast<std::uint8_t>(kind));
    w.bytes(cmd);
    w.u64(pair_id);
    w.u32(group_a);
    w.u32(group_b);
    w.bytes(cmd_a);
    w.bytes(cmd_b);
  }
  static ShardCommandMsg decode(BufReader& r) {
    ShardCommandMsg m;
    const auto k = r.u8();
    if (k != 1 && k != 2) throw CodecError("malformed ShardCommandMsg kind");
    m.kind = static_cast<Kind>(k);
    m.cmd = r.bytes();
    m.pair_id = r.u64();
    m.group_a = r.u32();
    m.group_b = r.u32();
    m.cmd_a = r.bytes();
    m.cmd_b = r.bytes();
    return m;
  }

  static ShardCommandMsg plain(Bytes command) {
    ShardCommandMsg m;
    m.kind = Kind::kPlain;
    m.cmd = std::move(command);
    return m;
  }
  static ShardCommandMsg pair(std::uint64_t pair_id, std::uint32_t group_a,
                              Bytes cmd_a, std::uint32_t group_b,
                              Bytes cmd_b) {
    ShardCommandMsg m;
    m.kind = Kind::kPairOp;
    m.pair_id = pair_id;
    m.group_a = group_a;
    m.group_b = group_b;
    m.cmd_a = std::move(cmd_a);
    m.cmd_b = std::move(cmd_b);
    return m;
  }
};

}  // namespace abcast::group
