#include "env/env.hpp"

// Interface-only module; this TU anchors the library target.
namespace abcast {}
