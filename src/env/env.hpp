// Host environment seen by protocol code.
//
// Protocol modules (failure detector, consensus, atomic broadcast, apps) are
// written against Env + NodeApp only, so the same objects run under the
// deterministic simulator (src/sim) and the threaded real-time runtime
// (src/rt).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "env/stable_storage.hpp"
#include "env/wire.hpp"

namespace abcast {

namespace obs {
class TraceRecorder;
class MetricsRegistry;
}  // namespace obs

/// Handle for a pending timer; 0 is never a valid id.
using TimerId = std::uint64_t;

/// Per-process host services. All callbacks into protocol code (timers,
/// message delivery) are serialized by the host: a protocol object never
/// needs its own locking.
class Env {
 public:
  virtual ~Env() = default;

  Env() = default;
  Env(const Env&) = delete;
  Env& operator=(const Env&) = delete;

  /// This process's identity, in 0..group_size()-1.
  virtual ProcessId self() const = 0;

  /// Number of processes in the group (the paper's Π).
  virtual std::uint32_t group_size() const = 0;

  /// Current time (virtual in the simulator, steady-clock in rt).
  virtual TimePoint now() const = 0;

  /// Runs `fn` once after `delay`, unless cancelled or the process crashes
  /// first (a crash silently cancels all pending timers — they are volatile
  /// state).
  virtual TimerId schedule_after(Duration delay,
                                 std::function<void()> fn) = 0;

  /// Cancels a pending timer; no-op if already fired or cancelled.
  virtual void cancel_timer(TimerId id) = 0;

  /// Unreliable send (the paper's transport): the message may be lost,
  /// duplicated, or arbitrarily delayed, but the channel is fair — a message
  /// sent infinitely often is received infinitely often.
  virtual void send(ProcessId to, const Wire& msg) = 0;

  /// The paper's `multisend` macro: best-effort send to every process,
  /// including self. The payload is encoded once by the caller and shared
  /// across recipients (Wire carries refcounted bytes); hosts that must
  /// re-frame per datagram (e.g. UDP) override this to frame once too.
  virtual void multisend(const Wire& msg) {
    for (ProcessId p = 0; p < group_size(); ++p) send(p, msg);
  }

  /// This process's stable storage (survives crashes).
  virtual StableStorage& storage() = 0;

  /// Host-provided deterministic randomness (for jitter etc.).
  virtual Rng& rng() = 0;

  /// Protocol event recorder for this process, or nullptr when tracing is
  /// off. Lives in the host, OUTSIDE the crash boundary: the trace spans
  /// every incarnation of the process.
  virtual obs::TraceRecorder* tracer() { return nullptr; }

  /// Cluster-wide metrics registry, or nullptr when none is installed.
  /// Also outside the crash boundary (see obs/metrics.hpp on bindings).
  virtual obs::MetricsRegistry* metrics_registry() { return nullptr; }
};

/// A protocol stack instance hosted on one process.
///
/// Lifecycle: the host constructs the NodeApp (via NodeFactory), calls
/// start() exactly once, then delivers messages via on_message(). On a crash
/// the host *destroys* the object — losing all volatile state by
/// construction — and on recovery constructs a fresh instance with
/// recovering=true.
class NodeApp {
 public:
  virtual ~NodeApp() = default;

  NodeApp() = default;
  NodeApp(const NodeApp&) = delete;
  NodeApp& operator=(const NodeApp&) = delete;

  /// Called once after construction. `recovering` is true when this process
  /// has been up before (i.e., stable storage may hold logged state).
  virtual void start(bool recovering) = 0;

  /// Called for each datagram consumed from the input buffer.
  virtual void on_message(ProcessId from, const Wire& msg) = 0;
};

/// Creates the protocol stack for a process; invoked at initial start and at
/// every recovery. The Env pointer remains valid for the NodeApp's lifetime.
using NodeFactory = std::function<std::unique_ptr<NodeApp>(Env&)>;

}  // namespace abcast
