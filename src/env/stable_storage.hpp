// Stable storage abstraction (the paper's log / retrieve primitives).
//
// A process's stable storage survives crashes; everything else (volatile
// memory, in-flight messages, timers) is lost. The paper's efficiency
// argument is counted in *log operations*, so every implementation keeps a
// StorageStats the experiments read.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "obs/trace.hpp"

namespace abcast {

/// Thrown on unrecoverable I/O errors (directory not writable, rename
/// failure, injected faults). Corrupted *records* are not errors — they read
/// as absent. In the paper's model a log operation either completes or the
/// process crashes, so hosts translate an escaping StorageIoError into a
/// process crash.
class StorageIoError : public std::runtime_error {
 public:
  explicit StorageIoError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Operation and footprint accounting for a stable storage instance.
/// `put_ops` is the paper's "number of log operations".
struct StorageStats {
  std::uint64_t put_ops = 0;
  std::uint64_t get_ops = 0;
  std::uint64_t erase_ops = 0;
  std::uint64_t bytes_written = 0;

  StorageStats& operator+=(const StorageStats& o) {
    put_ops += o.put_ops;
    get_ops += o.get_ops;
    erase_ops += o.erase_ops;
    bytes_written += o.bytes_written;
    return *this;
  }
};

/// Keyed record store with atomic overwrite semantics.
///
/// `put` is the paper's `log`: after it returns, the record survives any
/// subsequent crash. `get` is the paper's `retrieve`. Keys are structured
/// paths like "ab/proposed/42" so `keys_with_prefix` can enumerate, e.g.,
/// all logged proposals during recovery.
class StableStorage {
 public:
  virtual ~StableStorage() = default;

  StableStorage() = default;
  StableStorage(const StableStorage&) = delete;
  StableStorage& operator=(const StableStorage&) = delete;

  /// Durably writes `value` under `key`, replacing any previous record
  /// atomically (a crash leaves either the old or the new value, never a
  /// mix). Counted as one log operation.
  virtual void put(std::string_view key, const Bytes& value) = 0;

  /// Reads the record under `key`, or nullopt if absent.
  virtual std::optional<Bytes> get(std::string_view key) = 0;

  /// Durably removes the record under `key` (no-op if absent).
  virtual void erase(std::string_view key) = 0;

  /// Durability barrier for backends with a deferred sync point (the
  /// group-commit segmented log): after flush() returns, every put/erase
  /// issued before it survives any subsequent crash. Backends whose put is
  /// already synchronous-durable keep the default no-op. Hosts order
  /// flush() BEFORE releasing any externally visible action (outbound
  /// datagrams, a completed A-broadcast) so a deferred-sync backend is
  /// indistinguishable from a synchronous one to every other process — the
  /// group-commit soundness argument, DESIGN.md §16.
  virtual void flush() {}

  /// All stored keys beginning with `prefix`, in lexicographic order.
  virtual std::vector<std::string> keys_with_prefix(
      std::string_view prefix) = 0;

  /// Current footprint in bytes (sum of stored key+value sizes). Drives the
  /// log-size-growth experiment (paper §5.2).
  virtual std::uint64_t footprint_bytes() = 0;

  virtual const StorageStats& stats() const = 0;
};

/// Decorator that records a kLogWrite trace event for every *completed* put.
/// Wraps the host's outermost storage (under the fault injector, so a put
/// that crashes the process records nothing — matching the paper's "log
/// completes or the process crashes"). Keys arrive already layer-prefixed
/// ("ab/...", "cons/...", "fd/..."), which is what lets the offline checker
/// attribute log operations to layers.
class TracingStorage final : public StableStorage {
 public:
  TracingStorage(StableStorage& inner, obs::TraceRecorder& recorder,
                 std::function<TimePoint()> clock)
      : inner_(inner), recorder_(recorder), clock_(std::move(clock)) {}

  void put(std::string_view key, const Bytes& value) override {
    inner_.put(key, value);
    recorder_.record(obs::EventKind::kLogWrite, clock_ ? clock_() : 0, 0,
                     MsgId{}, value.size(), std::string(key));
  }

  std::optional<Bytes> get(std::string_view key) override {
    return inner_.get(key);
  }

  void erase(std::string_view key) override { inner_.erase(key); }

  void flush() override { inner_.flush(); }

  std::vector<std::string> keys_with_prefix(std::string_view prefix) override {
    return inner_.keys_with_prefix(prefix);
  }

  std::uint64_t footprint_bytes() override { return inner_.footprint_bytes(); }

  const StorageStats& stats() const override { return inner_.stats(); }

 private:
  StableStorage& inner_;
  obs::TraceRecorder& recorder_;
  std::function<TimePoint()> clock_;
};

}  // namespace abcast
