// Wire-level message envelope shared by all protocol layers.
#pragma once

#include <cstdint>
#include <memory>

#include "common/codec.hpp"
#include "common/types.hpp"

namespace abcast {

/// Immutable, reference-counted byte buffer. A multisend encodes its payload
/// ONCE and every per-recipient copy of the Wire (host queues, simulated
/// channel events, duplicate deliveries) shares the same allocation — copying
/// a Wire is a refcount bump, not a buffer copy. Converts implicitly from
/// Bytes (taking ownership) and to `const Bytes&` (for decoding), so payload
/// call sites read exactly as they did when the payload was a plain Bytes.
class SharedBytes {
 public:
  SharedBytes() = default;
  SharedBytes(Bytes b)  // NOLINT(google-explicit-constructor)
      : data_(std::make_shared<const Bytes>(std::move(b))) {}
  SharedBytes(std::initializer_list<std::uint8_t> il)
      : data_(std::make_shared<const Bytes>(il)) {}

  const Bytes& get() const { return data_ ? *data_ : empty(); }
  operator const Bytes&() const { return get(); }  // NOLINT
  std::size_t size() const { return get().size(); }

  /// Number of Wires sharing this buffer (0 for the empty payload).
  long use_count() const { return data_.use_count(); }

 private:
  static const Bytes& empty() {
    static const Bytes kEmpty;
    return kEmpty;
  }
  std::shared_ptr<const Bytes> data_;
};

/// Discriminates protocol messages on the wire. All layers share one
/// namespace so a host can dispatch a received datagram to the right module
/// without protocol-specific framing.
enum class MsgType : std::uint16_t {
  // Failure detectors (src/fd)
  kFdHeartbeat = 1,  // epoch detector: carries the sender's epoch
  kFdAlive = 2,      // suspect-list detector: bounded output, no epoch

  // Paxos consensus engine (src/consensus)
  kPaxosPrepare = 16,
  kPaxosPromise = 17,
  kPaxosAccept = 18,
  kPaxosAccepted = 19,
  kPaxosNack = 20,
  kPaxosDecided = 21,
  kPaxosDecidedAck = 22,

  // Rotating-coordinator consensus engine (src/consensus)
  kCoordEstimate = 32,
  kCoordNewEstimate = 33,
  kCoordAck = 34,
  kCoordNack = 35,
  kCoordDecide = 36,
  kCoordDecideAck = 37,

  // Atomic broadcast (src/core)
  kAbGossip = 48,       // full-set gossip (Options::digest_gossip == false)
  // 49 (kAbState) retired: the one-shot whole-AgreedLog state datagram could
  // exceed the transport frame limit; replaced by the chunked catch-up
  // session below. Do not reuse the tag.
  kAbGossipDigest = 50, // digest / delta anti-entropy gossip
  kAbStateChunk = 51,   // one bounded chunk of a §5.3 catch-up session

  // Crash-stop Chandra-Toueg-style baseline (src/core)
  kCsRelay = 64,

  // Multi-group total order multicast (src/multicast): the inter-group
  // proposal push / fill datagram. Intra-group control rides inside the
  // group's Atomic Broadcast payloads.
  kMgFill = 80,

  // Quorum-based replication (src/apps/quorum): weighted-voting data path.
  // Configuration (vote reassignment) rides inside Atomic Broadcast.
  kQrRead = 96,
  kQrReadReply = 97,
  kQrWrite = 98,
  kQrWriteAck = 99,
  kQrStaleEpoch = 100,

  // 112 is reserved for the multi-group envelope (kGroupEnvelope); the tag
  // is defined in src/group/group_wire.hpp, its wire-tag home.
};

/// A datagram: a message-type tag plus an opaque serialized payload. The
/// payload codec is owned by the layer that owns the MsgType. The payload is
/// refcounted (see SharedBytes), so hosts may copy Wires freely.
struct Wire {
  MsgType type{};
  SharedBytes payload;

  void encode(BufWriter& w) const {
    w.u16(static_cast<std::uint16_t>(type));
    w.bytes(payload);
  }

  static Wire decode(BufReader& r) {
    Wire msg;
    msg.type = static_cast<MsgType>(r.u16());
    msg.payload = r.bytes();
    return msg;
  }
};

/// Builds a Wire from a payload struct exposing encode(BufWriter&).
template <typename T>
Wire make_wire(MsgType type, const T& payload) {
  return Wire{type, encode_to_bytes(payload)};
}

}  // namespace abcast
