// Rotating-coordinator consensus engine (Chandra-Toueg ◇S style, adapted to
// crash-recovery in the manner of Aguilera-Chen-Toueg and
// Hurfin-Mostefaoui-Raynal).
//
// Instance k proceeds in rounds r = 0,1,...; the coordinator of round r is
// process r mod n. Each participant sends its timestamped estimate to the
// coordinator; the coordinator picks the estimate with the highest
// timestamp from a majority, broadcasts it, and decides once a majority has
// *logged* and acknowledged the adoption. Participants advance to round r+1
// when the failure detector suspects the coordinator and the round has
// stalled. The per-instance record (round, estimate, timestamp) is logged
// on every adoption and round advance, *before* the corresponding ack —
// that ordering is what makes agreement uniform across crashes.
//
// Compared to PaxosEngine this trades more log operations per instance for
// a fixed coordinator schedule (no leader oracle needed to pick a driver,
// only to suspect one) — exactly the kind of engine diversity the paper's
// black-box claim is about.
#pragma once

#include <map>
#include <set>

#include "consensus/engine_base.hpp"

namespace abcast {

class CoordEngine final : public EngineBase {
 public:
  CoordEngine(Env& env, const LeaderOracle& oracle, ConsensusConfig config);

  bool handles(MsgType type) const override {
    return type >= MsgType::kCoordEstimate && type <= MsgType::kCoordDecideAck;
  }

 protected:
  void engine_start(bool recovering) override;
  void engine_propose(InstanceId k, const Bytes& value) override;
  void engine_tick() override;
  void engine_message(ProcessId from, const Wire& msg) override;
  void engine_decided(InstanceId k) override;
  void engine_truncate(InstanceId k) override;
  void engine_quarantined_message(ProcessId from, const Wire& msg) override;

 private:
  struct Instance {
    // Persistent (mirrored in "st/<k>"): current round, adopted estimate.
    std::uint64_t round = 0;
    bool has_est = false;
    Bytes est;
    std::uint64_t ts = 0;  // round in which est was adopted (0 = initial)

    // Volatile.
    bool active = false;           // participating (proposed or adopted)
    TimePoint round_started = 0;
    TimePoint last_estimate_sent = 0;
    // Coordinator state for `round` (only used when we coordinate it).
    std::map<ProcessId, std::pair<std::uint64_t, Bytes>> estimates;
    bool sent_newest = false;
    Bytes newest;
    std::set<ProcessId> acks;
    std::set<ProcessId> nacks;
  };

  ProcessId coord_of(std::uint64_t round) const {
    return static_cast<ProcessId>(round % env_.group_size());
  }

  Instance& instance(InstanceId k) { return instances_[k]; }
  void persist(InstanceId k, const Instance& inst);
  void send_estimate(InstanceId k, Instance& inst);
  void enter_round(InstanceId k, Instance& inst, std::uint64_t round);
  void advance_round(InstanceId k, Instance& inst);
  void catch_up(InstanceId k, Instance& inst, std::uint64_t round);
  void coordinate(InstanceId k, Instance& inst);

  std::map<InstanceId, Instance> instances_;
};

}  // namespace abcast
