// Wire formats for every consensus-layer datagram payload.
//
// One header holds all of them — the shared decided/ack pair (EngineBase),
// the Paxos message set, and the rotating-coordinator message set — so each
// layout has exactly one definition site, next to its peers, and is
// reachable from tests/wire_roundtrip_test.cpp. tools/ablint enforces both
// properties (wire-tag homes, registered round-trip tests). The MsgType tag
// each payload rides under is defined in env/wire.hpp.
#pragma once

#include <cstdint>

#include "common/codec.hpp"
#include "common/types.hpp"

namespace abcast::consensus_wire {

using InstanceId = std::uint64_t;

// ---- shared by both engines (EngineBase) ----------------------------------

/// kPaxosDecided / kCoordDecide payload: a decision broadcast until every
/// peer has acked it.
struct DecidedMsg {
  InstanceId k = 0;
  Bytes value;

  void encode(BufWriter& w) const {
    w.u64(k);
    w.bytes(value);
  }
  static DecidedMsg decode(BufReader& r) {
    DecidedMsg m;
    m.k = r.u64();
    m.value = r.bytes();
    return m;
  }
};

/// kPaxosDecidedAck / kCoordDecideAck payload.
struct DecidedAckMsg {
  InstanceId k = 0;

  void encode(BufWriter& w) const { w.u64(k); }
  static DecidedAckMsg decode(BufReader& r) { return DecidedAckMsg{r.u64()}; }
};

// ---- Paxos engine ---------------------------------------------------------

struct PrepareMsg {
  InstanceId k = 0;
  std::uint64_t ballot = 0;
  void encode(BufWriter& w) const {
    w.u64(k);
    w.u64(ballot);
  }
  static PrepareMsg decode(BufReader& r) {
    PrepareMsg m;
    m.k = r.u64();
    m.ballot = r.u64();
    return m;
  }
};

struct PromiseMsg {
  InstanceId k = 0;
  std::uint64_t ballot = 0;
  std::uint64_t accepted_ballot = 0;
  Bytes accepted_value;
  void encode(BufWriter& w) const {
    w.u64(k);
    w.u64(ballot);
    w.u64(accepted_ballot);
    w.bytes(accepted_value);
  }
  static PromiseMsg decode(BufReader& r) {
    PromiseMsg m;
    m.k = r.u64();
    m.ballot = r.u64();
    m.accepted_ballot = r.u64();
    m.accepted_value = r.bytes();
    return m;
  }
};

struct AcceptMsg {
  InstanceId k = 0;
  std::uint64_t ballot = 0;
  Bytes value;
  void encode(BufWriter& w) const {
    w.u64(k);
    w.u64(ballot);
    w.bytes(value);
  }
  static AcceptMsg decode(BufReader& r) {
    AcceptMsg m;
    m.k = r.u64();
    m.ballot = r.u64();
    m.value = r.bytes();
    return m;
  }
};

struct AcceptedMsg {
  InstanceId k = 0;
  std::uint64_t ballot = 0;
  void encode(BufWriter& w) const {
    w.u64(k);
    w.u64(ballot);
  }
  static AcceptedMsg decode(BufReader& r) {
    AcceptedMsg m;
    m.k = r.u64();
    m.ballot = r.u64();
    return m;
  }
};

struct NackMsg {
  InstanceId k = 0;
  std::uint64_t promised = 0;
  void encode(BufWriter& w) const {
    w.u64(k);
    w.u64(promised);
  }
  static NackMsg decode(BufReader& r) {
    NackMsg m;
    m.k = r.u64();
    m.promised = r.u64();
    return m;
  }
};

// ---- rotating-coordinator engine ------------------------------------------

struct EstimateMsg {
  InstanceId k = 0;
  std::uint64_t round = 0;
  std::uint64_t ts = 0;
  Bytes est;
  void encode(BufWriter& w) const {
    w.u64(k);
    w.u64(round);
    w.u64(ts);
    w.bytes(est);
  }
  static EstimateMsg decode(BufReader& r) {
    EstimateMsg m;
    m.k = r.u64();
    m.round = r.u64();
    m.ts = r.u64();
    m.est = r.bytes();
    return m;
  }
};

struct NewEstimateMsg {
  InstanceId k = 0;
  std::uint64_t round = 0;
  Bytes value;
  void encode(BufWriter& w) const {
    w.u64(k);
    w.u64(round);
    w.bytes(value);
  }
  static NewEstimateMsg decode(BufReader& r) {
    NewEstimateMsg m;
    m.k = r.u64();
    m.round = r.u64();
    m.value = r.bytes();
    return m;
  }
};

/// Ack and Nack share a shape: instance + round. A nack's round is the
/// *sender's* current round, inviting the receiver to catch up.
struct RoundMsg {
  InstanceId k = 0;
  std::uint64_t round = 0;
  void encode(BufWriter& w) const {
    w.u64(k);
    w.u64(round);
  }
  static RoundMsg decode(BufReader& r) {
    RoundMsg m;
    m.k = r.u64();
    m.round = r.u64();
    return m;
  }
};

}  // namespace abcast::consensus_wire
