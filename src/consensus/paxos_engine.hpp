// Synod (single-decree Paxos) consensus engine for the crash-recovery model.
//
// Roles are collapsed: every process is acceptor and learner; the process
// nominated by the LeaderOracle drives proposals. Acceptor state
// (promised ballot, accepted ballot, accepted value) is logged in one record
// per instance before any reply leaves the process, which is exactly what
// makes agreement *uniform* under crash-recovery.
//
// Liveness safeguards beyond textbook Synod:
//  * retry with a higher ballot on timeout, but only while the oracle
//    nominates us (avoids duelling proposers);
//  * an acceptor holding an accepted-but-undecided value takes over as
//    proposer (with that value) if nominated — so a decision reached by a
//    proposer that then dies forever still propagates to all good processes
//    (needed for the paper's uniform Termination, lemma P7).
#pragma once

#include <map>
#include <set>

#include "consensus/engine_base.hpp"

namespace abcast {

class PaxosEngine final : public EngineBase {
 public:
  PaxosEngine(Env& env, const LeaderOracle& oracle, ConsensusConfig config);

  bool handles(MsgType type) const override {
    return type >= MsgType::kPaxosPrepare && type <= MsgType::kPaxosDecidedAck;
  }

 protected:
  void engine_start(bool recovering) override;
  void engine_propose(InstanceId k, const Bytes& value) override;
  void engine_tick() override;
  void engine_message(ProcessId from, const Wire& msg) override;
  void engine_decided(InstanceId k) override;
  void engine_truncate(InstanceId k) override;

 private:
  using Ballot = std::uint64_t;  // 0 = none; encodes (attempt, process)

  enum class Phase { kIdle, kPrepare, kAccept };

  struct PromiseInfo {
    Ballot accepted_ballot = 0;
    Bytes accepted_value;
  };

  struct Instance {
    // Proposer side (volatile).
    bool proposing = false;  // we hold a proposal (ours or taken over)
    Bytes proposal;
    Phase phase = Phase::kIdle;
    Ballot ballot = 0;          // ballot we are driving
    Ballot ballot_floor = 0;    // next ballot must exceed this (from nacks)
    std::map<ProcessId, PromiseInfo> promises;
    std::set<ProcessId> accepts;
    Bytes pushing;              // value being pushed in phase 2
    TimePoint phase_started = 0;
    TimePoint idle_since = 0;   // when we last went idle without a decision

    // Acceptor side (mirrored in stable storage).
    Ballot promised = 0;
    Ballot accepted_ballot = 0;
    Bytes accepted_value;
  };

  Ballot next_ballot(Ballot above) const;
  ProcessId ballot_owner(Ballot b) const;
  Instance& instance(InstanceId k);
  void persist_acceptor(InstanceId k, const Instance& inst);
  /// Returns false when the record fails its seal or does not decode.
  bool load_acceptor(InstanceId k, Instance& inst, const Bytes& record);
  void start_ballot(InstanceId k, Instance& inst);
  void drive(InstanceId k, Instance& inst);

  std::map<InstanceId, Instance> instances_;
};

}  // namespace abcast
