#include "consensus/consensus.hpp"
#include "consensus/coord_engine.hpp"
#include "consensus/paxos_engine.hpp"

namespace abcast {

std::unique_ptr<ConsensusService> make_consensus(ConsensusKind kind, Env& env,
                                                 const LeaderOracle& oracle,
                                                 ConsensusConfig config) {
  switch (kind) {
    case ConsensusKind::kPaxos:
      return std::make_unique<PaxosEngine>(env, oracle, config);
    case ConsensusKind::kCoord:
      return std::make_unique<CoordEngine>(env, oracle, config);
  }
  return nullptr;
}

const char* to_string(ConsensusKind kind) {
  switch (kind) {
    case ConsensusKind::kPaxos: return "paxos";
    case ConsensusKind::kCoord: return "coord";
  }
  return "?";
}

}  // namespace abcast
