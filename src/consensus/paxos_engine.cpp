#include "consensus/paxos_engine.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/codec.hpp"
#include "common/logging.hpp"
#include "consensus/consensus_wire.hpp"
#include "consensus/keys.hpp"
#include "storage/sealed_record.hpp"

namespace abcast {

using consensus_wire::AcceptedMsg;
using consensus_wire::AcceptMsg;
using consensus_wire::NackMsg;
using consensus_wire::PrepareMsg;
using consensus_wire::PromiseMsg;

PaxosEngine::PaxosEngine(Env& env, const LeaderOracle& oracle,
                         ConsensusConfig config)
    : EngineBase(env, oracle, config, MsgType::kPaxosDecided,
                 MsgType::kPaxosDecidedAck) {}

// Ballot b > 0 encodes attempt a and owner p as b = a * n + p + 1.
PaxosEngine::Ballot PaxosEngine::next_ballot(Ballot above) const {
  const std::uint64_t n = env_.group_size();
  const std::uint64_t self = env_.self();
  std::uint64_t attempt = 0;
  Ballot b = attempt * n + self + 1;
  while (b <= above) {
    attempt += 1;
    b = attempt * n + self + 1;
  }
  return b;
}

ProcessId PaxosEngine::ballot_owner(Ballot b) const {
  ABCAST_CHECK(b > 0);
  return static_cast<ProcessId>((b - 1) % env_.group_size());
}

PaxosEngine::Instance& PaxosEngine::instance(InstanceId k) {
  return instances_[k];
}

void PaxosEngine::persist_acceptor(InstanceId k, const Instance& inst) {
  BufWriter w;
  w.u64(inst.promised);
  w.u64(inst.accepted_ballot);
  w.bytes(inst.accepted_value);
  storage_.put(consensus_keys::inst_key("acc", k), seal_record(w.data()));
}

bool PaxosEngine::load_acceptor(InstanceId k, Instance& inst,
                                const Bytes& record) {
  (void)k;
  auto payload = unseal_record(record);
  if (!payload) return false;
  try {
    BufReader r(*payload);
    inst.promised = r.u64();
    inst.accepted_ballot = r.u64();
    inst.accepted_value = r.bytes();
    r.expect_done();
  } catch (const CodecError&) {
    return false;
  }
  return true;
}

void PaxosEngine::engine_start(bool recovering) {
  (void)recovering;
  for (const auto& key : storage_.keys_with_prefix("acc/")) {
    const InstanceId k = consensus_keys::parse_inst(key);
    if (k < low_water()) {
      storage_.erase(key);  // finish an interrupted truncation
      continue;
    }
    bool ok = false;
    if (auto rec = storage_.get(key)) {
      ok = load_acceptor(k, instance(k), *rec);
    }
    if (!ok) {
      // The acceptor record was torn: promises/acceptances durably made for
      // k are forgotten. Acting as an acceptor again could double-vote the
      // instance, so quarantine it — the decision is learned from peers.
      note_corrupt_record();
      quarantine_instance(k);
      instances_.erase(k);
      storage_.erase(key);
    }
  }
}

void PaxosEngine::engine_propose(InstanceId k, const Bytes& value) {
  // Proposing on a quarantined instance is NOT safe even though proposer
  // state is volatile: ballot uniqueness across our own crashes rests on
  // the self-promise stored in the (torn, discarded) acceptor record.
  // next_ballot() could then reissue an old ballot with a different value.
  // Peers drive the instance; we learn the decision.
  if (is_quarantined(k)) return;
  Instance& inst = instance(k);
  if (inst.proposing) return;
  inst.proposing = true;
  inst.proposal = value;
  inst.idle_since = env_.now();
  drive(k, inst);
}

void PaxosEngine::start_ballot(InstanceId k, Instance& inst) {
  inst.ballot = next_ballot(std::max({inst.ballot, inst.ballot_floor,
                                      inst.promised}));
  inst.phase = Phase::kPrepare;
  inst.promises.clear();
  inst.accepts.clear();
  inst.phase_started = env_.now();
  metrics_.attempts += 1;
  env_.multisend(make_wire(MsgType::kPaxosPrepare, PrepareMsg{k, inst.ballot}));
}

// Starts or retries a ballot when this process should be driving instance k.
void PaxosEngine::drive(InstanceId k, Instance& inst) {
  if (has_decision(k)) return;
  // Take over a stalled instance if we hold an accepted value: a decided
  // value must survive its decider's death (see file header).
  const bool should_drive = inst.proposing || inst.accepted_ballot > 0;
  if (!should_drive) return;

  // Normally only the oracle's nominee drives (avoids duelling proposers),
  // but a non-nominee that has waited long enough drives anyway: the
  // nominee may simply hold no proposal for this instance. The patience is
  // staggered by process id so impatient processes wake one at a time.
  const TimePoint now = env_.now();
  const Duration patience =
      config_.progress_timeout * static_cast<Duration>(3 + 2 * env_.self());
  const bool nominated = oracle_.leader() == env_.self();
  const bool impatient =
      inst.phase == Phase::kIdle && now - inst.idle_since > patience;
  if (!nominated && !impatient) return;

  if (!inst.proposing) {
    // Taking over: adopt the accepted value as our proposal. It was
    // proposed by some process, so Uniform Validity is preserved. Logged
    // first, like any proposal (P4).
    EngineBase::propose(k, inst.accepted_value);
    return;  // propose() re-enters engine_propose -> drive
  }

  if (inst.phase == Phase::kIdle) {
    start_ballot(k, inst);
  } else if (now - inst.phase_started > config_.progress_timeout) {
    start_ballot(k, inst);
  }
}

void PaxosEngine::engine_tick() {
  for (auto& [k, inst] : instances_) {
    if (!has_decision(k)) drive(k, inst);
  }
}

void PaxosEngine::engine_decided(InstanceId k) {
  // Drop proposer volatile state; keep acceptor fields (harmless, and
  // late PREPARE/ACCEPT messages still get correct answers).
  Instance& inst = instance(k);
  inst.phase = Phase::kIdle;
  inst.promises.clear();
  inst.accepts.clear();
}

void PaxosEngine::engine_truncate(InstanceId k) {
  for (auto it = instances_.begin();
       it != instances_.end() && it->first < k;) {
    storage_.erase(consensus_keys::inst_key("acc", it->first));
    it = instances_.erase(it);
  }
}

void PaxosEngine::engine_message(ProcessId from, const Wire& msg) {
  switch (msg.type) {
    case MsgType::kPaxosPrepare: {
      const auto m = decode_from_bytes<PrepareMsg>(msg.payload);
      Instance& inst = instance(m.k);
      if (m.ballot >= inst.promised) {
        if (m.ballot > inst.promised) {
          inst.promised = m.ballot;
          persist_acceptor(m.k, inst);
        }
        env_.send(from, make_wire(MsgType::kPaxosPromise,
                                  PromiseMsg{m.k, m.ballot,
                                             inst.accepted_ballot,
                                             inst.accepted_value}));
      } else {
        env_.send(from, make_wire(MsgType::kPaxosNack,
                                  NackMsg{m.k, inst.promised}));
      }
      return;
    }
    case MsgType::kPaxosPromise: {
      const auto m = decode_from_bytes<PromiseMsg>(msg.payload);
      Instance& inst = instance(m.k);
      if (inst.phase != Phase::kPrepare || m.ballot != inst.ballot) return;
      inst.promises[from] = PromiseInfo{m.accepted_ballot, m.accepted_value};
      if (inst.promises.size() < majority()) return;
      // Choose the accepted value of the highest accepted ballot, else our
      // own proposal — the Synod value-selection rule.
      Ballot best = 0;
      const Bytes* value = &inst.proposal;
      for (const auto& [p, info] : inst.promises) {
        if (info.accepted_ballot > best) {
          best = info.accepted_ballot;
          value = &info.accepted_value;
        }
      }
      inst.pushing = *value;
      inst.phase = Phase::kAccept;
      inst.accepts.clear();
      inst.phase_started = env_.now();
      env_.multisend(make_wire(MsgType::kPaxosAccept,
                               AcceptMsg{m.k, inst.ballot, inst.pushing}));
      return;
    }
    case MsgType::kPaxosAccept: {
      const auto m = decode_from_bytes<AcceptMsg>(msg.payload);
      Instance& inst = instance(m.k);
      if (m.ballot >= inst.promised) {
        inst.promised = m.ballot;
        inst.accepted_ballot = m.ballot;
        inst.accepted_value = m.value;
        persist_acceptor(m.k, inst);  // before replying: uniformity
        env_.send(from, make_wire(MsgType::kPaxosAccepted,
                                  AcceptedMsg{m.k, m.ballot}));
      } else {
        env_.send(from, make_wire(MsgType::kPaxosNack,
                                  NackMsg{m.k, inst.promised}));
      }
      return;
    }
    case MsgType::kPaxosAccepted: {
      const auto m = decode_from_bytes<AcceptedMsg>(msg.payload);
      Instance& inst = instance(m.k);
      if (inst.phase != Phase::kAccept || m.ballot != inst.ballot) return;
      inst.accepts.insert(from);
      if (inst.accepts.size() >= majority()) {
        learn_decision(m.k, inst.pushing, /*i_decided=*/true);
      }
      return;
    }
    case MsgType::kPaxosNack: {
      const auto m = decode_from_bytes<NackMsg>(msg.payload);
      Instance& inst = instance(m.k);
      if (m.promised > inst.ballot_floor) inst.ballot_floor = m.promised;
      if (inst.phase != Phase::kIdle && m.promised > inst.ballot) {
        // Preempted; back off and let the tick retry if still nominated.
        inst.phase = Phase::kIdle;
        inst.idle_since = env_.now();
      }
      return;
    }
    default:
      ABCAST_CHECK_MSG(false, "unexpected paxos message type");
  }
}

}  // namespace abcast
