#include "consensus/engine_base.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/codec.hpp"
#include "common/crc32.hpp"
#include "common/logging.hpp"
#include "consensus/consensus_wire.hpp"
#include "consensus/keys.hpp"
#include "storage/sealed_record.hpp"

namespace abcast {

using consensus_wire::DecidedAckMsg;
using consensus_wire::DecidedMsg;

EngineBase::EngineBase(Env& env, const LeaderOracle& oracle,
                       ConsensusConfig config, MsgType decided_type,
                       MsgType ack_type)
    : env_(env), oracle_(oracle), config_(config),
      storage_(env.storage(), "cons"), trunc_mark_(storage_, "trunc"),
      decided_type_(decided_type), ack_type_(ack_type),
      tracer_(env.tracer()) {
  ABCAST_CHECK(config_.tick_period > 0);
  bind_metrics();
}

void EngineBase::bind_metrics() {
  auto* registry = env_.metrics_registry();
  if (registry == nullptr) return;
  const obs::Labels labels{{"node", std::to_string(env_.self())}};
  metrics_group_ = registry->group();
  metrics_group_.bind("cons_proposals", labels, &metrics_.proposals);
  metrics_group_.bind("cons_decided_local", labels, &metrics_.decided_local);
  metrics_group_.bind("cons_decided_learned", labels,
                      &metrics_.decided_learned);
  metrics_group_.bind("cons_attempts", labels, &metrics_.attempts);
  metrics_group_.bind("cons_corrupt_records", labels,
                      &metrics_.corrupt_records);
  metrics_group_.bind("cons_quarantined", labels, &metrics_.quarantined);
  inflight_gauge_ = &registry->gauge("cons_inflight", labels);
}

void EngineBase::start(bool recovering) {
  ABCAST_CHECK_MSG(!started_, "consensus started twice");
  started_ = true;

  low_water_ = trunc_mark_.load();
  metrics_.corrupt_records += trunc_mark_.corrupt_slots();

  // Rebuild the proposal and decision maps from the logs. Decisions loaded
  // here do NOT fire the decided callback: the upper layer's recovery
  // procedure queries decision() explicitly while replaying (paper Fig. 2).
  // Records below the low-water mark may survive a crash that interrupted
  // a truncation; ignore them (and finish the erase lazily).
  //
  // A record that fails its seal was torn by a crash mid-put. A torn
  // decision was never announced (learn_decision logs before the callback),
  // so treating the instance as undecided is consistent; the value is
  // relearned from any peer holding it. A torn proposal means propose()
  // never returned: the upper layer simply proposes afresh.
  for (const auto& key : storage_.keys_with_prefix("dec/")) {
    const InstanceId k = consensus_keys::parse_inst(key);
    if (k < low_water_) {
      storage_.erase(key);
      continue;
    }
    bool ok = false;
    if (auto v = storage_.get(key)) {
      if (auto payload = unseal_record(*v)) {
        decisions_.emplace(k, std::move(*payload));
        ok = true;
      }
    }
    if (!ok) {
      metrics_.corrupt_records += 1;
      storage_.erase(key);
    }
  }
  for (const auto& key : storage_.keys_with_prefix("prop/")) {
    const InstanceId k = consensus_keys::parse_inst(key);
    if (k < low_water_) {
      storage_.erase(key);
      continue;
    }
    bool ok = false;
    if (auto v = storage_.get(key)) {
      if (auto payload = unseal_record(*v)) {
        proposals_.emplace(k, std::move(*payload));
        ok = true;
      }
    }
    if (!ok) {
      metrics_.corrupt_records += 1;
      storage_.erase(key);
    }
  }
  metrics_.proposals = proposals_.size();
  for (const auto& [k, v] : proposals_) {
    (void)v;
    if (!has_decision(k)) adjust_inflight(1);
  }

  engine_start(recovering);

  // Resume participation in every proposed-but-undecided instance; the
  // proposal log is exactly what makes this safe (P4).
  for (const auto& [k, v] : proposals_) {
    if (!has_decision(k)) engine_propose(k, v);
  }

  tick();
}

void EngineBase::propose(InstanceId k, const Bytes& value) {
  ABCAST_CHECK_MSG(started_, "propose before start");
  // Truncated instances are closed: their records are gone, so proposing
  // would re-run consensus with amnesia. A caller this far behind (its
  // checkpoint was lost to a torn write) is caught up by a state transfer,
  // not by re-deciding old instances.
  if (k < low_water_) return;
  auto it = proposals_.find(k);
  if (it == proposals_.end()) {
    // First proposal for k: log it before any other action, so the same
    // value is re-proposed after any crash (paper §4.3).
    storage_.put(consensus_keys::inst_key("prop", k), seal_record(value));
    trace(obs::EventKind::kPropose, k, crc32(value));
    it = proposals_.emplace(k, value).first;
    metrics_.proposals += 1;
    if (!has_decision(k)) adjust_inflight(1);
  }
  if (!has_decision(k)) {
    engine_propose(k, it->second);
  }
}

std::optional<Bytes> EngineBase::decision(InstanceId k) {
  auto it = decisions_.find(k);
  if (it == decisions_.end()) return std::nullopt;
  return it->second;
}

const Bytes* EngineBase::proposal_of(InstanceId k) const {
  auto it = proposals_.find(k);
  return it == proposals_.end() ? nullptr : &it->second;
}

void EngineBase::learn_decision(InstanceId k, const Bytes& value,
                                bool i_decided) {
  if (k < low_water_) return;  // already applied and truncated
  if (has_decision(k)) return;
  // Log before announcing: Uniform Agreement must hold even if we crash
  // immediately after the callback runs.
  storage_.put(consensus_keys::inst_key("dec", k), seal_record(value));
  trace(obs::EventKind::kDecide, k, crc32(value),
        i_decided ? "local" : "learned");
  decisions_.emplace(k, value);
  if (proposals_.count(k) != 0) adjust_inflight(-1);
  quarantined_.erase(k);  // the outcome is known; amnesia no longer matters
  if (i_decided) {
    metrics_.decided_local += 1;
    // We produced this decision; disseminate it until every peer acks.
    Retransmit rt;
    for (ProcessId p = 0; p < env_.group_size(); ++p) {
      if (p != env_.self()) rt.unacked.insert(p);
    }
    rt.next_at = env_.now();
    rt.interval = config_.retransmit_initial;
    if (!rt.unacked.empty()) retransmit_.emplace(k, std::move(rt));
  } else {
    metrics_.decided_learned += 1;
  }
  engine_decided(k);
  if (decided_cb_) decided_cb_(k, decisions_.at(k));
}

void EngineBase::on_message(ProcessId from, const Wire& msg) {
  if (msg.type == ack_type_) {
    const auto m = decode_from_bytes<DecidedAckMsg>(msg.payload);
    auto it = retransmit_.find(m.k);
    if (it != retransmit_.end()) {
      it->second.unacked.erase(from);
      if (it->second.unacked.empty()) retransmit_.erase(it);
    }
    return;
  }
  if (msg.type == decided_type_) {
    const auto m = decode_from_bytes<DecidedMsg>(msg.payload);
    // Ack even below the low-water mark (the value is long applied); this
    // stops the sender's retransmission loop.
    learn_decision(m.k, m.value, /*i_decided=*/false);
    env_.send(from, make_wire(ack_type_, DecidedAckMsg{m.k}));
    return;
  }
  // Contract: every engine payload begins with the u64 instance id, so we
  // can filter truncated instances generically here.
  BufReader peek(msg.payload);
  const InstanceId k = peek.u64();
  if (k < low_water_) {
    // We no longer hold records for k; the sender is behind our checkpoint.
    if (obsolete_cb_) obsolete_cb_(from, k);
    return;
  }
  if (auto it = decisions_.find(k); it != decisions_.end()) {
    // Any traffic about a decided instance means the sender has not learned
    // the outcome; short-circuit the whole protocol with the decision.
    env_.send(from, make_wire(decided_type_, DecidedMsg{k, it->second}));
    return;
  }
  if (is_quarantined(k)) {
    // Amnesiac for k: do not participate — but do not be a silent black
    // hole either. A quarantined process that peers keep trusting (it is
    // up and heartbeating) can otherwise stall the instance forever, e.g.
    // when it is the rotating coordinator of the current round. Give the
    // engine a chance to steer peers around us.
    engine_quarantined_message(from, msg);
    return;
  }
  engine_message(from, msg);
}

void EngineBase::quarantine_instance(InstanceId k) {
  if (quarantined_.insert(k).second) metrics_.quarantined += 1;
}

void EngineBase::offer_decisions(ProcessId to, InstanceId from_k,
                                 std::uint32_t max) {
  auto it = decisions_.lower_bound(std::max<InstanceId>(from_k, low_water_));
  for (std::uint32_t sent = 0; it != decisions_.end() && sent < max;
       ++it, ++sent) {
    env_.send(to, make_wire(decided_type_, DecidedMsg{it->first, it->second}));
  }
}

void EngineBase::truncate_below(InstanceId k) {
  if (k <= low_water_) return;
  // Persist the mark first: after a crash we must keep ignoring these
  // instances even if some record erases below did not complete. The mark
  // is dual-slot so a torn write of the new mark leaves the previous one —
  // which still covers every erase performed so far — intact.
  trunc_mark_.store(k);
  low_water_ = k;
  for (auto it = proposals_.begin(); it != proposals_.end() && it->first < k;
       ++it) {
    if (!has_decision(it->first)) adjust_inflight(-1);
  }
  auto erase_below = [this, k](std::map<InstanceId, Bytes>& m,
                               const char* prefix) {
    for (auto it = m.begin(); it != m.end() && it->first < k;) {
      storage_.erase(consensus_keys::inst_key(prefix, it->first));
      it = m.erase(it);
    }
  };
  erase_below(proposals_, "prop");
  erase_below(decisions_, "dec");
  retransmit_.erase(retransmit_.begin(), retransmit_.lower_bound(k));
  quarantined_.erase(quarantined_.begin(), quarantined_.lower_bound(k));
  engine_truncate(k);
}

void EngineBase::tick() {
  engine_tick();

  const TimePoint now = env_.now();
  for (auto& [k, rt] : retransmit_) {
    if (now < rt.next_at) continue;
    const auto wire = make_wire(decided_type_, DecidedMsg{k, decisions_.at(k)});
    for (const ProcessId p : rt.unacked) env_.send(p, wire);
    rt.interval = std::min(rt.interval * 2, config_.retransmit_max);
    rt.next_at = now + rt.interval;
  }

  env_.schedule_after(config_.tick_period, [this] { tick(); });
}

}  // namespace abcast
