// Uniform Consensus in the crash-recovery model (paper §3.2–§3.5).
//
// The Atomic Broadcast layer uses Consensus strictly as a black box through
// this interface, mirroring Figure 1 of the paper:
//
//   propose(k, value)  — propose `value` for the k-th Consensus instance.
//                        Idempotent; the *first* operation is logging the
//                        proposal to stable storage, so that after a crash
//                        the process always proposes the same value to the
//                        same instance (lemma P4, §4.3).
//   decision(k)        — the locally-known decision for instance k, if any.
//   decided callback   — fires once per instance when a decision first
//                        becomes known in this incarnation (lemma P5: the
//                        value is the same across re-executions).
//
// Properties (paper §3.4): Termination (every good process that proposes —
// or that participated in a quorum — eventually decides), Uniform Validity,
// and Uniform Agreement (no two processes, good or bad, decide differently).
//
// Two interchangeable engines are provided, demonstrating the paper's
// consensus-agnosticism:
//   * PaxosEngine — Synod with a leader hint; acceptor state logged.
//   * CoordEngine — rotating-coordinator (Chandra-Toueg ◇S style adapted to
//     crash-recovery à la Aguilera-Chen-Toueg); estimate adoptions logged.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "common/relaxed_counter.hpp"
#include "common/types.hpp"
#include "env/env.hpp"
#include "env/stable_storage.hpp"
#include "fd/leader_oracle.hpp"

namespace abcast {

using InstanceId = std::uint64_t;

struct ConsensusConfig {
  /// Period of the engine driver tick (retries, retransmissions).
  Duration tick_period = millis(25);
  /// How long a proposer/round waits before retrying with a new
  /// ballot/round.
  Duration progress_timeout = millis(150);
  /// Initial spacing between DECIDED retransmissions to unacked peers;
  /// doubles per attempt up to `retransmit_max`.
  Duration retransmit_initial = millis(50);
  Duration retransmit_max = seconds(1);
};

/// Engine-agnostic counters for experiments.
struct ConsensusMetrics {
  RelaxedU64 proposals;          // distinct instances proposed to
  RelaxedU64 decided_local;      // instances this process decided
  RelaxedU64 decided_learned;    // decisions learned from peers
  RelaxedU64 attempts;           // ballots (Paxos) or rounds (Coord)
  /// Stored records found torn/corrupt during recovery and discarded.
  RelaxedU64 corrupt_records;
  /// Instances whose engine-private acceptor state was damaged: the process
  /// stops acting as an acceptor for them (amnesia containment) until it
  /// learns the decision from peers.
  RelaxedU64 quarantined;
};

using DecidedCallback =
    std::function<void(InstanceId, const Bytes& value)>;

class ConsensusService {
 public:
  virtual ~ConsensusService() = default;

  ConsensusService() = default;
  ConsensusService(const ConsensusService&) = delete;
  ConsensusService& operator=(const ConsensusService&) = delete;

  /// Loads persistent state and starts the driver. Call exactly once, after
  /// set_decided_callback. With recovering=true, instances with a logged
  /// proposal and no decision resume automatically.
  virtual void start(bool recovering) = 0;

  /// See file header. The value actually used is the first one ever logged
  /// for `k` by this process; a different `value` on re-invocation is
  /// ignored (idempotence across recoveries).
  virtual void propose(InstanceId k, const Bytes& value) = 0;

  /// Locally-known decision for `k` (memory or decision log), if any.
  virtual std::optional<Bytes> decision(InstanceId k) = 0;

  virtual void set_decided_callback(DecidedCallback cb) = 0;

  /// True if this process has (durably) proposed to instance `k`.
  virtual bool proposed(InstanceId k) const = 0;

  /// True when a decision for `k` is locally known — a cheap probe (no
  /// value copy) the pipelined proposer uses to skip window slots whose
  /// outcome is already fixed.
  virtual bool decided(InstanceId k) const = 0;

  /// The value this process durably proposed to `k`, or nullptr. Recovery
  /// of the pipelining window decodes still-undecided proposals from here
  /// to rebuild its in-flight bookkeeping (see DESIGN.md §14).
  virtual const Bytes* proposal_of(InstanceId k) const = 0;

  /// Pushes locally-known decisions for instances in [from_k, from_k+max)
  /// to `to`. Used by the upper layer when gossip reveals a lagging peer:
  /// the original decider may be gone (its retransmission state is
  /// volatile), so helpers re-offer decisions on its behalf.
  virtual void offer_decisions(ProcessId to, InstanceId from_k,
                               std::uint32_t max) = 0;

  /// Durably discards all records (proposal, decision, engine state) of
  /// instances below `k`, and stops participating in them: messages about
  /// truncated instances are ignored (and reported through the obsolete
  /// callback so the upper layer can ship a state transfer instead). The
  /// caller promises it has applied every decision below `k` and has
  /// checkpointed the result — the paper's §5.1/§5.2 log truncation.
  virtual void truncate_below(InstanceId k) = 0;

  /// Instances below this are truncated (0 = nothing truncated).
  virtual InstanceId low_water() const = 0;

  /// Invoked when a peer sends us traffic about a truncated instance —
  /// the signal that `from` lags behind our checkpoint.
  virtual void set_obsolete_callback(
      std::function<void(ProcessId from, InstanceId k)> cb) = 0;

  /// Message routing: true for MsgTypes owned by this engine.
  virtual bool handles(MsgType type) const = 0;
  virtual void on_message(ProcessId from, const Wire& msg) = 0;

  /// Log-operation accounting for this layer (scope "cons/").
  virtual const StorageStats& storage_stats() const = 0;

  virtual const ConsensusMetrics& metrics() const = 0;
};

enum class ConsensusKind { kPaxos, kCoord };

/// Builds an engine. `oracle` must outlive the engine.
std::unique_ptr<ConsensusService> make_consensus(ConsensusKind kind, Env& env,
                                                 const LeaderOracle& oracle,
                                                 ConsensusConfig config = {});

const char* to_string(ConsensusKind kind);

}  // namespace abcast
