// Stable-storage key layout helpers shared by the consensus engines.
#pragma once

#include <cstdio>
#include <string>

#include "common/check.hpp"
#include "common/types.hpp"

namespace abcast::consensus_keys {

/// Builds "<prefix>/<k>" with k zero-padded to 20 digits so lexicographic
/// key order equals numeric instance order.
inline std::string inst_key(const char* prefix, std::uint64_t k) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%020llu",
                static_cast<unsigned long long>(k));
  return std::string(prefix) + "/" + buf;
}

/// Parses the instance id back out of a key produced by inst_key.
inline std::uint64_t parse_inst(const std::string& key) {
  const auto slash = key.rfind('/');
  ABCAST_CHECK_MSG(slash != std::string::npos, "malformed instance key");
  return std::stoull(key.substr(slash + 1));
}

}  // namespace abcast::consensus_keys
