#include "consensus/coord_engine.hpp"

#include "common/check.hpp"
#include "common/codec.hpp"
#include "common/logging.hpp"
#include "consensus/consensus_wire.hpp"
#include "consensus/keys.hpp"
#include "storage/sealed_record.hpp"

namespace abcast {

using consensus_wire::EstimateMsg;
using consensus_wire::NewEstimateMsg;
using consensus_wire::RoundMsg;

CoordEngine::CoordEngine(Env& env, const LeaderOracle& oracle,
                         ConsensusConfig config)
    : EngineBase(env, oracle, config, MsgType::kCoordDecide,
                 MsgType::kCoordDecideAck) {}

void CoordEngine::persist(InstanceId k, const Instance& inst) {
  BufWriter w;
  w.u64(inst.round);
  w.boolean(inst.has_est);
  w.u64(inst.ts);
  w.bytes(inst.est);
  storage_.put(consensus_keys::inst_key("st", k), seal_record(w.data()));
}

void CoordEngine::engine_start(bool recovering) {
  (void)recovering;
  for (const auto& key : storage_.keys_with_prefix("st/")) {
    const InstanceId k = consensus_keys::parse_inst(key);
    if (k < low_water()) {
      storage_.erase(key);  // finish an interrupted truncation
      continue;
    }
    auto rec = storage_.get(key);
    if (!rec) continue;
    bool ok = false;
    if (auto payload = unseal_record(*rec)) {
      try {
        Instance& inst = instance(k);
        BufReader r(*payload);
        inst.round = r.u64();
        inst.has_est = r.boolean();
        inst.ts = r.u64();
        inst.est = r.bytes();
        r.expect_done();
        ok = true;
        if (inst.has_est && !has_decision(k)) {
          inst.active = true;
          inst.round_started = env_.now();
          send_estimate(k, inst);
        }
      } catch (const CodecError&) {
      }
    }
    if (!ok) {
      // The round/estimate record was torn: the round monotonicity and any
      // estimate lock durably promised for k are forgotten. Participating
      // again could ack an older round, so quarantine the instance — the
      // decision is learned from peers.
      note_corrupt_record();
      quarantine_instance(k);
      instances_.erase(k);
      storage_.erase(key);
    }
  }
}

void CoordEngine::engine_propose(InstanceId k, const Bytes& value) {
  // A quarantined instance must not be resurrected locally: proposing would
  // persist a fresh (round 0, ts 0) record over the forgotten one and the
  // coordinator path counts our own estimate without a message, bypassing
  // the quarantine filter. Peers drive the instance; we learn the decision.
  if (is_quarantined(k)) return;
  Instance& inst = instance(k);
  if (inst.active) return;
  if (!inst.has_est) {
    inst.has_est = true;
    inst.est = value;
    inst.ts = 0;
    persist(k, inst);
  }
  inst.active = true;
  inst.round_started = env_.now();
  send_estimate(k, inst);
}

void CoordEngine::send_estimate(InstanceId k, Instance& inst) {
  ABCAST_CHECK(inst.has_est);
  inst.last_estimate_sent = env_.now();
  // Multisend rather than coordinator-only: peers that have never heard of
  // this instance adopt the estimate and start participating, which is what
  // lets the coordinator assemble a majority of estimates even when only
  // one process proposed (e.g. when the proposer IS the coordinator).
  env_.multisend(make_wire(MsgType::kCoordEstimate,
                           EstimateMsg{k, inst.round, inst.ts, inst.est}));
}

void CoordEngine::enter_round(InstanceId k, Instance& inst,
                              std::uint64_t round) {
  inst.round = round;
  inst.round_started = env_.now();
  inst.estimates.clear();
  inst.sent_newest = false;
  inst.newest.clear();
  inst.acks.clear();
  inst.nacks.clear();
  persist(k, inst);  // round monotonicity must survive crashes (P1/P2)
  if (inst.active) send_estimate(k, inst);
}

void CoordEngine::advance_round(InstanceId k, Instance& inst) {
  const ProcessId old_coord = coord_of(inst.round);
  metrics_.attempts += 1;
  enter_round(k, inst, inst.round + 1);
  // Tell the abandoned coordinator where we went, so it stops waiting.
  env_.send(old_coord,
            make_wire(MsgType::kCoordNack, RoundMsg{k, inst.round}));
}

void CoordEngine::catch_up(InstanceId k, Instance& inst, std::uint64_t round) {
  if (round <= inst.round) return;
  enter_round(k, inst, round);
}

void CoordEngine::coordinate(InstanceId k, Instance& inst) {
  if (has_decision(k) || inst.sent_newest) return;
  if (coord_of(inst.round) != env_.self()) return;
  // Include our own estimate without a network round-trip.
  if (inst.has_est) {
    inst.estimates[env_.self()] = {inst.ts, inst.est};
  }
  if (inst.estimates.size() < majority()) return;
  std::uint64_t best_ts = 0;
  const Bytes* best = nullptr;
  for (const auto& [p, e] : inst.estimates) {
    if (best == nullptr || e.first >= best_ts) {
      best_ts = e.first;
      best = &e.second;
    }
  }
  ABCAST_CHECK(best != nullptr);
  inst.newest = *best;
  inst.sent_newest = true;
  env_.multisend(make_wire(MsgType::kCoordNewEstimate,
                           NewEstimateMsg{k, inst.round, inst.newest}));
}

void CoordEngine::engine_tick() {
  const TimePoint now = env_.now();
  for (auto& [k, inst] : instances_) {
    if (has_decision(k) || !inst.active) continue;
    const ProcessId coord = coord_of(inst.round);
    if (coord == env_.self()) {
      coordinate(k, inst);
      if (inst.sent_newest) {
        // Re-push the round's value to whoever has not logged+acked yet.
        const auto wire = make_wire(
            MsgType::kCoordNewEstimate,
            NewEstimateMsg{k, inst.round, inst.newest});
        for (ProcessId p = 0; p < env_.group_size(); ++p) {
          if (inst.acks.count(p) == 0) env_.send(p, wire);
        }
      } else if (inst.has_est &&
                 now - inst.last_estimate_sent >= config_.tick_period) {
        // Still collecting: keep soliciting participation — peers that were
        // down during the first multisend must eventually hear about the
        // instance or the estimate quorum never forms.
        send_estimate(k, inst);
      }
    } else {
      // Fair-lossy channel: keep re-sending our estimate for this round.
      if (now - inst.last_estimate_sent >= config_.tick_period) {
        send_estimate(k, inst);
      }
      // Move on only when the round stalled AND the detector suspects the
      // coordinator — never while it is trusted (◇S-style accuracy use).
      if (now - inst.round_started > config_.progress_timeout &&
          !oracle_.trusted(coord)) {
        advance_round(k, inst);
      }
    }
  }
}

void CoordEngine::engine_decided(InstanceId k) {
  Instance& inst = instance(k);
  inst.active = false;
  inst.estimates.clear();
  inst.acks.clear();
  inst.nacks.clear();
}

void CoordEngine::engine_truncate(InstanceId k) {
  for (auto it = instances_.begin();
       it != instances_.end() && it->first < k;) {
    storage_.erase(consensus_keys::inst_key("st", it->first));
    it = instances_.erase(it);
  }
}

void CoordEngine::engine_quarantined_message(ProcessId from, const Wire& msg) {
  // We must not vote on this instance again, but peers keep trusting us (we
  // are up and heartbeating), so rounds we coordinate would stall forever:
  // round advancement needs suspicion, and suspicion never comes. Steer the
  // sender to the next round NOT coordinated by us. A nack only raises the
  // receiver's round — always safe (like ballot preemption), it just costs
  // an attempt.
  if (msg.type != MsgType::kCoordEstimate) return;
  // Every coord payload starts with (u64 k, u64 round).
  BufReader peek(msg.payload);
  const InstanceId k = peek.u64();
  const std::uint64_t round = peek.u64();
  // Redirect ONLY estimates for rounds we would coordinate: those are the
  // rounds that stall on our silence. Nacking anything else would yank
  // peers out of rounds where a healthy coordinator is making progress.
  if (coord_of(round) != env_.self()) return;
  std::uint64_t target = round + 1;
  if (coord_of(target) == env_.self()) target += 1;
  env_.send(from, make_wire(MsgType::kCoordNack, RoundMsg{k, target}));
}

void CoordEngine::engine_message(ProcessId from, const Wire& msg) {
  switch (msg.type) {
    case MsgType::kCoordEstimate: {
      const auto m = decode_from_bytes<EstimateMsg>(msg.payload);
      Instance& inst = instance(m.k);
      if (has_decision(m.k)) return;  // decided/ack path will cover `from`
      if (m.round < inst.round) {
        env_.send(from,
                  make_wire(MsgType::kCoordNack, RoundMsg{m.k, inst.round}));
        return;
      }
      catch_up(m.k, inst, m.round);
      if (!inst.has_est) {
        // First we hear of this instance: adopt the sender's (est, ts)
        // pair. Copying an existing pair preserves the locking invariant
        // and validity, and lets a coordinator that never proposed itself
        // contribute to the estimate quorum — without this, an instance
        // proposed by a single process could never gather a majority of
        // estimates.
        inst.has_est = true;
        inst.est = m.est;
        inst.ts = m.ts;
        inst.active = true;
        inst.round_started = env_.now();
        persist(m.k, inst);
      }
      if (coord_of(inst.round) == env_.self() && m.round == inst.round) {
        inst.estimates[from] = {m.ts, m.est};
        coordinate(m.k, inst);
      }
      return;
    }
    case MsgType::kCoordNewEstimate: {
      const auto m = decode_from_bytes<NewEstimateMsg>(msg.payload);
      Instance& inst = instance(m.k);
      if (m.round < inst.round) {
        env_.send(from,
                  make_wire(MsgType::kCoordNack, RoundMsg{m.k, inst.round}));
        return;
      }
      catch_up(m.k, inst, m.round);
      // Adopt, log, *then* acknowledge — the log-before-ack order is what
      // lets a majority of acks imply a durable majority lock on the value.
      const bool already = inst.has_est && inst.ts == m.round;
      if (!already) {
        inst.has_est = true;
        inst.est = m.value;
        inst.ts = m.round;
        inst.active = true;
        persist(m.k, inst);
      }
      env_.send(from, make_wire(MsgType::kCoordAck, RoundMsg{m.k, m.round}));
      return;
    }
    case MsgType::kCoordAck: {
      const auto m = decode_from_bytes<RoundMsg>(msg.payload);
      Instance& inst = instance(m.k);
      if (coord_of(m.round) != env_.self() || m.round != inst.round) return;
      if (!inst.sent_newest) return;
      inst.acks.insert(from);
      if (inst.acks.size() >= majority()) {
        learn_decision(m.k, inst.newest, /*i_decided=*/true);
      }
      return;
    }
    case MsgType::kCoordNack: {
      const auto m = decode_from_bytes<RoundMsg>(msg.payload);
      Instance& inst = instance(m.k);
      // The sender is in a higher round; join it.
      catch_up(m.k, inst, m.round);
      return;
    }
    default:
      ABCAST_CHECK_MSG(false, "unexpected coord message type");
  }
}

}  // namespace abcast
