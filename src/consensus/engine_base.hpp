// Scaffolding shared by both consensus engines: proposal logging (the
// paper's "log is done as the first operation of the Consensus"), the
// decision log, decided-value retransmission with backoff, and the driver
// tick.
#pragma once

#include <map>
#include <set>

#include "consensus/consensus.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "storage/durable_counter.hpp"
#include "storage/scoped_storage.hpp"

namespace abcast {

class EngineBase : public ConsensusService {
 public:
  void start(bool recovering) final;
  void propose(InstanceId k, const Bytes& value) final;
  std::optional<Bytes> decision(InstanceId k) final;
  void set_decided_callback(DecidedCallback cb) final { decided_cb_ = std::move(cb); }
  bool proposed(InstanceId k) const final { return proposals_.count(k) != 0; }
  bool decided(InstanceId k) const final { return decisions_.count(k) != 0; }
  const Bytes* proposal_of(InstanceId k) const final;
  void offer_decisions(ProcessId to, InstanceId from_k,
                       std::uint32_t max) final;
  void truncate_below(InstanceId k) final;
  InstanceId low_water() const final { return low_water_; }
  void set_obsolete_callback(
      std::function<void(ProcessId, InstanceId)> cb) final {
    obsolete_cb_ = std::move(cb);
  }
  void on_message(ProcessId from, const Wire& msg) final;
  const StorageStats& storage_stats() const final { return storage_.stats(); }
  const ConsensusMetrics& metrics() const final { return metrics_; }

 protected:
  /// `decided_type`/`ack_type` are the engine-specific MsgTypes used for the
  /// shared decision-dissemination sub-protocol.
  EngineBase(Env& env, const LeaderOracle& oracle, ConsensusConfig config,
             MsgType decided_type, MsgType ack_type);

  // ---- hooks implemented by the concrete engine -------------------------
  /// Called from start() after proposals/decisions are loaded.
  virtual void engine_start(bool recovering) = 0;
  /// Called once per instance when a (canonical) proposal becomes active.
  virtual void engine_propose(InstanceId k, const Bytes& value) = 0;
  /// Called every tick; drive retries here.
  virtual void engine_tick() = 0;
  /// Engine-specific messages (everything but decided/ack). Never called
  /// for truncated instances.
  virtual void engine_message(ProcessId from, const Wire& msg) = 0;
  /// Volatile per-instance state may be dropped once decided.
  virtual void engine_decided(InstanceId k) = 0;
  /// Durably erase engine-private records of instances below `k` and drop
  /// their volatile state.
  virtual void engine_truncate(InstanceId k) = 0;
  /// A message arrived for an instance this process is quarantined on (see
  /// quarantine_instance). The engine may NOT act on the instance's state,
  /// but it may redirect the sender so the group makes progress without us
  /// (e.g. push it past rounds this process would have coordinated).
  virtual void engine_quarantined_message(ProcessId from, const Wire& msg) {
    (void)from;
    (void)msg;
  }

  // ---- services for the concrete engine ---------------------------------
  /// Records a decision (idempotent): logs it, fires the callback, starts
  /// retransmitting to peers when `i_decided` (we produced the decision
  /// rather than learning it).
  void learn_decision(InstanceId k, const Bytes& value, bool i_decided);

  bool has_decision(InstanceId k) const { return decisions_.count(k) != 0; }
  const std::map<InstanceId, Bytes>& proposals() const { return proposals_; }

  /// Amnesia containment. An engine that finds its private acceptor record
  /// for instance `k` torn or corrupt must not participate in `k` again:
  /// promises/estimates it durably made are forgotten, and acting as if
  /// they never happened can double-vote an instance. Quarantining drops
  /// every engine message for `k` (the generic decided/ack machinery still
  /// works, so the decision is eventually learned from peers — safe as long
  /// as a majority of acceptors kept their records). Lifted automatically
  /// when the decision for `k` is learned or the instance is truncated.
  void quarantine_instance(InstanceId k);
  bool is_quarantined(InstanceId k) const {
    return quarantined_.count(k) != 0;
  }
  /// Counts a record discarded as torn/corrupt during recovery.
  void note_corrupt_record() { metrics_.corrupt_records += 1; }

  std::uint32_t majority() const { return env_.group_size() / 2 + 1; }

  /// Records a protocol trace event when the host installed a recorder.
  void trace(obs::EventKind kind, InstanceId k, std::uint64_t arg = 0,
             std::string detail = {}) {
    if (tracer_ != nullptr) {
      tracer_->record(kind, env_.now(), k, MsgId{}, arg, std::move(detail));
    }
  }

  Env& env_;
  const LeaderOracle& oracle_;
  ConsensusConfig config_;
  ScopedStorage storage_;
  ConsensusMetrics metrics_;

 private:
  void bind_metrics();
  struct Retransmit {
    std::set<ProcessId> unacked;
    TimePoint next_at = 0;
    Duration interval = 0;
  };

  void tick();
  /// Tracks the proposed-but-undecided instance count and mirrors it into
  /// the cons_inflight gauge — the live consensus pipelining depth.
  void adjust_inflight(std::int64_t by) {
    inflight_ += by;
    if (inflight_gauge_ != nullptr) inflight_gauge_->set(inflight_);
  }

  /// Dual-slot low-water mark: a torn write while truncating loses at most
  /// the latest advance, and since records are only erased AFTER the mark
  /// put returns, the surviving (older) mark still covers every completed
  /// erase — the amnesia filter never opens up.
  DurableCounter trunc_mark_;
  MsgType decided_type_;
  MsgType ack_type_;
  DecidedCallback decided_cb_;
  std::function<void(ProcessId, InstanceId)> obsolete_cb_;
  std::map<InstanceId, Bytes> proposals_;
  std::map<InstanceId, Bytes> decisions_;
  std::map<InstanceId, Retransmit> retransmit_;
  std::set<InstanceId> quarantined_;
  InstanceId low_water_ = 0;
  std::int64_t inflight_ = 0;             // proposed ∧ undecided instances
  obs::Gauge* inflight_gauge_ = nullptr;  // registry-owned; may be null
  obs::TraceRecorder* tracer_ = nullptr;  // host-owned; may be null
  bool started_ = false;
  // Declared last: unbinds metrics_ from the registry before it is
  // destroyed (crash destroys this object, not the registry).
  obs::MetricsGroup metrics_group_;
};

}  // namespace abcast
