#include "apps/kv_store.hpp"

namespace abcast::apps {

void KvCommand::encode(BufWriter& w) const {
  w.u8(static_cast<std::uint8_t>(op));
  w.str(key);
  w.str(value);
  w.str(expect);
  w.i64(delta);
}

KvCommand KvCommand::decode(BufReader& r) {
  KvCommand c;
  c.op = static_cast<Op>(r.u8());
  c.key = r.str();
  c.value = r.str();
  c.expect = r.str();
  c.delta = r.i64();
  return c;
}

Bytes KvCommand::put(std::string key, std::string value) {
  KvCommand c;
  c.op = Op::kPut;
  c.key = std::move(key);
  c.value = std::move(value);
  return encode_to_bytes(c);
}

Bytes KvCommand::del(std::string key) {
  KvCommand c;
  c.op = Op::kDel;
  c.key = std::move(key);
  return encode_to_bytes(c);
}

Bytes KvCommand::add(std::string key, std::int64_t delta) {
  KvCommand c;
  c.op = Op::kAdd;
  c.key = std::move(key);
  c.delta = delta;
  return encode_to_bytes(c);
}

Bytes KvCommand::cas(std::string key, std::string expect, std::string value) {
  KvCommand c;
  c.op = Op::kCas;
  c.key = std::move(key);
  c.expect = std::move(expect);
  c.value = std::move(value);
  return encode_to_bytes(c);
}

namespace {

std::int64_t as_int(const std::string& s) {
  try {
    return std::stoll(s);
  } catch (...) {
    return 0;
  }
}

}  // namespace

void KvStore::apply(const Bytes& command) {
  KvCommand c;
  try {
    c = decode_from_bytes<KvCommand>(command);
  } catch (const CodecError&) {
    // Deterministic rejection: every replica sees the same bytes.
    rejected_ += 1;
    return;
  }
  switch (c.op) {
    case KvCommand::Op::kPut:
      data_[c.key] = c.value;
      break;
    case KvCommand::Op::kDel:
      data_.erase(c.key);
      break;
    case KvCommand::Op::kAdd: {
      auto it = data_.find(c.key);
      const std::int64_t cur = it == data_.end() ? 0 : as_int(it->second);
      data_[c.key] = std::to_string(cur + c.delta);
      break;
    }
    case KvCommand::Op::kCas: {
      auto it = data_.find(c.key);
      if (it != data_.end() && it->second == c.expect) {
        it->second = c.value;
      } else {
        failed_cas_ += 1;
      }
      break;
    }
    default:
      rejected_ += 1;
      return;
  }
  applied_ += 1;
}

Bytes KvStore::snapshot() const {
  BufWriter w;
  w.map(data_, [](BufWriter& ww, const std::string& k, const std::string& v) {
    ww.str(k);
    ww.str(v);
  });
  w.u64(applied_);
  w.u64(rejected_);
  w.u64(failed_cas_);
  return std::move(w).take();
}

void KvStore::restore(const Bytes& snapshot) {
  data_.clear();
  applied_ = rejected_ = failed_cas_ = 0;
  if (snapshot.empty()) return;  // initial state
  BufReader r(snapshot);
  data_ = r.map<std::string, std::string>([](BufReader& rr) {
    auto k = rr.str();
    auto v = rr.str();
    return std::pair{std::move(k), std::move(v)};
  });
  applied_ = r.u64();
  rejected_ = r.u64();
  failed_cas_ = r.u64();
  r.expect_done();
}

std::optional<std::string> KvStore::get(const std::string& key) const {
  auto it = data_.find(key);
  if (it == data_.end()) return std::nullopt;
  return it->second;
}

std::int64_t KvStore::get_int(const std::string& key) const {
  auto v = get(key);
  return v ? as_int(*v) : 0;
}

std::uint64_t KvStore::digest() const {
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](const std::string& s) {
    for (const char ch : s) {
      h ^= static_cast<std::uint8_t>(ch);
      h *= 0x100000001b3ull;
    }
    h ^= 0xff;
    h *= 0x100000001b3ull;
  };
  for (const auto& [k, v] : data_) {
    mix(k);
    mix(v);
  }
  return h;
}

}  // namespace abcast::apps
