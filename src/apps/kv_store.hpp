// Replicated key-value store: the canonical state machine over Atomic
// Broadcast (software-based replication, paper §1 and [8]).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "apps/state_machine.hpp"
#include "common/codec.hpp"

namespace abcast::apps {

/// Commands understood by KvStore. Encode with KvCommand::encode and submit
/// the bytes through RsmNode::submit / A-broadcast.
struct KvCommand {
  enum class Op : std::uint8_t {
    kPut = 1,   // store[key] = value
    kDel = 2,   // erase key
    kAdd = 3,   // store[key] = as_int(store[key]) + delta (missing = 0)
    kCas = 4,   // if store[key] == expect then store[key] = value
  };

  Op op = Op::kPut;
  std::string key;
  std::string value;
  std::string expect;       // kCas only
  std::int64_t delta = 0;   // kAdd only

  void encode(BufWriter& w) const;
  static KvCommand decode(BufReader& r);

  static Bytes put(std::string key, std::string value);
  static Bytes del(std::string key);
  static Bytes add(std::string key, std::int64_t delta);
  static Bytes cas(std::string key, std::string expect, std::string value);
};

class KvStore final : public StateMachine {
 public:
  void apply(const Bytes& command) override;
  Bytes snapshot() const override;
  void restore(const Bytes& snapshot) override;

  std::optional<std::string> get(const std::string& key) const;
  /// Numeric read for kAdd counters (missing or non-numeric = 0).
  std::int64_t get_int(const std::string& key) const;
  std::size_t size() const { return data_.size(); }

  /// Order-sensitive digest of the full contents; equal digests across
  /// replicas certify convergence.
  std::uint64_t digest() const;

  std::uint64_t applied_commands() const { return applied_; }
  std::uint64_t rejected_commands() const { return rejected_; }
  std::uint64_t failed_cas() const { return failed_cas_; }

 private:
  std::map<std::string, std::string> data_;
  std::uint64_t applied_ = 0;
  std::uint64_t rejected_ = 0;   // malformed commands (rejected, not fatal)
  std::uint64_t failed_cas_ = 0;
};

}  // namespace abcast::apps
