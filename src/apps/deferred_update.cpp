#include "apps/deferred_update.hpp"

#include <algorithm>

namespace abcast::apps {

void CertRequest::encode(BufWriter& w) const {
  w.vec(read_set, [](BufWriter& ww, const auto& rv) {
    ww.str(rv.first);
    ww.u64(rv.second);
  });
  w.vec(write_set, [](BufWriter& ww, const auto& kv) {
    ww.str(kv.first);
    ww.str(kv.second);
  });
}

CertRequest CertRequest::decode(BufReader& r) {
  CertRequest req;
  req.read_set = r.vec<std::pair<std::string, std::uint64_t>>([](BufReader& rr) {
    auto k = rr.str();
    auto v = rr.u64();
    return std::pair{std::move(k), v};
  });
  req.write_set = r.vec<std::pair<std::string, std::string>>([](BufReader& rr) {
    auto k = rr.str();
    auto v = rr.str();
    return std::pair{std::move(k), std::move(v)};
  });
  return req;
}

std::optional<std::string> DeferredUpdateDb::Txn::get(const std::string& key) {
  // Read-your-own-writes within the transaction.
  for (auto it = req_.write_set.rbegin(); it != req_.write_set.rend(); ++it) {
    if (it->first == key) return it->second;
  }
  // Record the committed version we depend on (0 = "expect absent").
  const std::uint64_t version = db_.version_of(key);
  const auto already = std::find_if(
      req_.read_set.begin(), req_.read_set.end(),
      [&](const auto& rv) { return rv.first == key; });
  if (already == req_.read_set.end()) {
    req_.read_set.emplace_back(key, version);
  }
  return db_.read_committed(key);
}

void DeferredUpdateDb::Txn::put(std::string key, std::string value) {
  req_.write_set.emplace_back(std::move(key), std::move(value));
}

Bytes DeferredUpdateDb::Txn::commit_request() const {
  return encode_to_bytes(req_);
}

void DeferredUpdateDb::apply(const Bytes& command) {
  CertRequest req;
  try {
    req = decode_from_bytes<CertRequest>(command);
  } catch (const CodecError&) {
    rejected_ += 1;
    return;
  }
  // Certification: the transaction commits iff everything it read is still
  // current. Deterministic, so every replica decides identically.
  for (const auto& [key, version] : req.read_set) {
    if (version_of(key) != version) {
      aborted_ += 1;
      return;
    }
  }
  for (const auto& [key, value] : req.write_set) {
    Record& rec = data_[key];
    rec.value = value;
    rec.version += 1;
  }
  committed_ += 1;
}

std::optional<std::string> DeferredUpdateDb::read_committed(
    const std::string& key) const {
  auto it = data_.find(key);
  if (it == data_.end()) return std::nullopt;
  return it->second.value;
}

std::uint64_t DeferredUpdateDb::version_of(const std::string& key) const {
  auto it = data_.find(key);
  return it == data_.end() ? 0 : it->second.version;
}

Bytes DeferredUpdateDb::snapshot() const {
  BufWriter w;
  w.map(data_, [](BufWriter& ww, const std::string& k, const Record& rec) {
    ww.str(k);
    ww.str(rec.value);
    ww.u64(rec.version);
  });
  w.u64(committed_);
  w.u64(aborted_);
  w.u64(rejected_);
  return std::move(w).take();
}

void DeferredUpdateDb::restore(const Bytes& snapshot) {
  data_.clear();
  committed_ = aborted_ = rejected_ = 0;
  if (snapshot.empty()) return;
  BufReader r(snapshot);
  data_ = r.map<std::string, Record>([](BufReader& rr) {
    auto k = rr.str();
    Record rec;
    rec.value = rr.str();
    rec.version = rr.u64();
    return std::pair{std::move(k), std::move(rec)};
  });
  committed_ = r.u64();
  aborted_ = r.u64();
  rejected_ = r.u64();
  r.expect_done();
}

std::uint64_t DeferredUpdateDb::digest() const {
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mix_str = [&h](const std::string& s) {
    for (const char ch : s) {
      h ^= static_cast<std::uint8_t>(ch);
      h *= 0x100000001b3ull;
    }
    h ^= 0xff;
    h *= 0x100000001b3ull;
  };
  for (const auto& [k, rec] : data_) {
    mix_str(k);
    mix_str(rec.value);
    h ^= rec.version;
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace abcast::apps
