// Deferred-update replicated database with Atomic-Broadcast-based
// certification (paper §6.2, after Pedone-Guerraoui-Schiper).
//
// A transaction executes locally against one replica, collecting the
// versions it read and buffering its writes. At commit time the pair
// (read set, write set) is A-broadcast; every replica certifies delivered
// transactions in the same total order: commit iff every read version is
// still current, else abort. Since certification is deterministic and the
// order is total, all replicas take the same decision and stay identical —
// no atomic commitment protocol needed.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "apps/state_machine.hpp"
#include "common/codec.hpp"
#include "common/types.hpp"

namespace abcast::apps {

/// A certification request: what the transaction read (with versions) and
/// what it intends to write.
struct CertRequest {
  std::vector<std::pair<std::string, std::uint64_t>> read_set;
  std::vector<std::pair<std::string, std::string>> write_set;

  void encode(BufWriter& w) const;
  static CertRequest decode(BufReader& r);
};

class DeferredUpdateDb final : public StateMachine {
 public:
  /// Client-side transaction handle. Reads go through the local replica and
  /// record versions; writes are buffered (and visible to this
  /// transaction's own reads).
  class Txn {
   public:
    explicit Txn(const DeferredUpdateDb& db) : db_(db) {}

    std::optional<std::string> get(const std::string& key);
    void put(std::string key, std::string value);

    /// Serializes the certification request for A-broadcast.
    Bytes commit_request() const;

   private:
    const DeferredUpdateDb& db_;
    CertRequest req_;
  };

  Txn begin() const { return Txn(*this); }

  // StateMachine: apply() certifies one delivered request.
  void apply(const Bytes& command) override;
  Bytes snapshot() const override;
  void restore(const Bytes& snapshot) override;

  std::optional<std::string> read_committed(const std::string& key) const;
  std::uint64_t version_of(const std::string& key) const;

  std::uint64_t committed() const { return committed_; }
  std::uint64_t aborted() const { return aborted_; }
  std::uint64_t rejected() const { return rejected_; }

  /// Order-sensitive digest (data + versions) for convergence checks.
  std::uint64_t digest() const;

 private:
  struct Record {
    std::string value;
    std::uint64_t version = 0;
  };

  std::map<std::string, Record> data_;
  std::uint64_t committed_ = 0;
  std::uint64_t aborted_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace abcast::apps
