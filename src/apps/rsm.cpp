#include "apps/rsm.hpp"

namespace abcast::apps {

Rsm::Rsm(std::unique_ptr<StateMachine> machine, ApplyObserver observer)
    : machine_(std::move(machine)), observer_(std::move(observer)) {}

void Rsm::deliver(const core::AppMsg& msg) {
  machine_->apply(msg.payload);
  applied_ += 1;
  if (observer_) observer_(msg);
}

Bytes Rsm::take_checkpoint() { return machine_->snapshot(); }

void Rsm::install_checkpoint(const Bytes& state) {
  machine_->restore(state);
}

RsmNode::RsmNode(Env& env, core::StackConfig config, MachineFactory factory,
                 Rsm::ApplyObserver observer)
    : rsm_(factory(), std::move(observer)),
      stack_(env, std::move(config), rsm_) {}

}  // namespace abcast::apps
