// Quorum-based replica management over Atomic Broadcast (paper §6.3).
//
// The paper points to its companion report: "we show how to extend the
// Atomic Broadcast primitive to support the implementation of Quorum-based
// replica management in crash-recovery systems. The proposed technique
// makes a bridge between established results on Weighted Voting and recent
// results on the Consensus problem."
//
// This module reconstructs that bridge:
//
//  * The DATA path is classic Gifford weighted voting — no total order.
//    Each replica holds votes; a read gathers replies worth ≥ R votes and
//    returns the highest-versioned value; a write first reads a version
//    quorum, then installs (value, version+1) at replicas worth ≥ W votes,
//    with R + W > total votes guaranteeing intersection. Replicas log
//    accepted writes to stable storage before acking, so a quorum member
//    that crashes and recovers still holds what it acknowledged — the
//    crash-recovery requirement.
//  * The CONFIGURATION path (vote reassignment — the hard part of weighted
//    voting) goes through Atomic Broadcast: every replica installs the
//    same sequence of configurations, numbered by epoch. Data messages
//    carry the epoch; a replica in a newer epoch rejects stale operations,
//    and the coordinator restarts them under the new configuration. Total
//    order is exactly what makes "which configuration is current" a
//    well-defined question in an asynchronous crash-recovery system.
//
// Quorum intersection holds within an epoch by arithmetic, and across
// epochs because an operation completes entirely inside one epoch (stale
// replies are rejected), while AB gives all replicas the same epoch
// sequence.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/delivery_sink.hpp"
#include "core/node_stack.hpp"
#include "storage/scoped_storage.hpp"

namespace abcast::apps {

/// A version is (counter, coordinator id): totally ordered, unique per
/// write.
struct QuorumVersion {
  std::uint64_t counter = 0;
  ProcessId writer = kNoProcess;

  friend auto operator<=>(const QuorumVersion&,
                          const QuorumVersion&) = default;
};

/// A voting configuration: per-replica vote weights plus read/write
/// thresholds. Valid iff read + write > total and write > total/2... —
/// validated by validate().
struct QuorumConfig {
  std::vector<std::uint32_t> votes;  // weight per replica
  std::uint32_t read_quorum = 0;     // R
  std::uint32_t write_quorum = 0;    // W

  std::uint32_t total_votes() const;
  void validate(std::uint32_t n) const;

  void encode(BufWriter& w) const;
  static QuorumConfig decode(BufReader& r);

  /// Equal votes of 1, majority thresholds — the unweighted default.
  static QuorumConfig uniform(std::uint32_t n);
};

struct QuorumMetrics {
  std::uint64_t reads_completed = 0;
  std::uint64_t writes_completed = 0;
  std::uint64_t stale_epoch_restarts = 0;
  std::uint64_t configs_installed = 0;
};

/// One replica of the quorum-replicated store, including the client-side
/// coordinator logic for operations submitted at this replica.
class QuorumReplicaNode final : public NodeApp {
 public:
  using ReadCallback =
      std::function<void(std::optional<std::string>, QuorumVersion)>;
  using WriteCallback = std::function<void()>;

  QuorumReplicaNode(Env& env, core::StackConfig stack_config,
                    QuorumConfig initial_config,
                    Duration retry_period = millis(40));

  void start(bool recovering) override;
  void on_message(ProcessId from, const Wire& msg) override;

  /// Reads `key` from a read quorum; the callback gets the
  /// highest-versioned value (nullopt if the key was never written).
  ///
  /// Callback lifetime: operations retry until a quorum is reachable, so a
  /// callback may fire arbitrarily late (or never, if this replica crashes
  /// first). Callbacks must OWN everything they capture.
  void read(std::string key, ReadCallback cb);

  /// Writes `key` through a version-read round and a write quorum.
  /// The callback fires when ≥ W votes acknowledged the install; the same
  /// lifetime rules as read() apply.
  void write(std::string key, std::string value, WriteCallback cb);

  /// Proposes a vote reassignment; installed (everywhere, in the same
  /// epoch order) via Atomic Broadcast.
  void propose_config(const QuorumConfig& config);

  /// This replica's locally stored value (not a quorum read).
  std::optional<std::string> local_value(const std::string& key) const;
  QuorumVersion local_version(const std::string& key) const;

  std::uint64_t epoch() const { return epoch_; }
  const QuorumConfig& config() const { return config_; }
  const QuorumMetrics& metrics() const { return metrics_; }
  core::NodeStack& stack() { return stack_; }

 private:
  struct Record {
    std::string value;
    QuorumVersion version;
  };

  /// In-flight coordinator operation (read, or the two phases of a write).
  struct Op {
    enum class Kind { kRead, kWriteReadPhase, kWriteInstallPhase };
    Kind kind = Kind::kRead;
    std::string key;
    std::string value;         // writes only
    std::uint64_t epoch = 0;   // the configuration this attempt runs in
    std::uint32_t votes_gathered = 0;
    std::set<ProcessId> replied;
    std::optional<std::string> best_value;
    QuorumVersion best_version;
    QuorumVersion install_version;  // install phase
    ReadCallback read_cb;
    WriteCallback write_cb;
  };

  // Configuration installation — the DeliverySink of the embedded stack.
  class ConfigSink final : public core::DeliverySink {
   public:
    explicit ConfigSink(QuorumReplicaNode& node) : node_(node) {}
    void deliver(const core::AppMsg& msg) override {
      node_.install_config(msg);
    }

   private:
    QuorumReplicaNode& node_;
  };

  void install_config(const core::AppMsg& msg);
  void start_op(std::uint64_t op_id);
  void restart_op(Op& op);
  void finish_read(Op& op);
  void finish_write_read_phase(std::uint64_t op_id, Op& op);
  void apply_local_write(const std::string& key, const std::string& value,
                         QuorumVersion version);
  void persist_record(const std::string& key, const Record& rec);
  void tick();

  Env& env_;
  ConfigSink sink_;
  core::NodeStack stack_;
  ScopedStorage storage_;
  Duration retry_period_;

  QuorumConfig config_;
  std::uint64_t epoch_ = 0;
  std::map<std::string, Record> store_;
  std::map<std::uint64_t, Op> ops_;
  std::uint64_t next_op_ = 1;
  QuorumMetrics metrics_;
};

}  // namespace abcast::apps
