#include "apps/quorum.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/codec.hpp"
#include "common/logging.hpp"

namespace abcast::apps {
namespace {

void encode_version(BufWriter& w, const QuorumVersion& v) {
  w.u64(v.counter);
  w.u32(v.writer);
}

QuorumVersion decode_version(BufReader& r) {
  QuorumVersion v;
  v.counter = r.u64();
  v.writer = r.u32();
  return v;
}

struct ReadMsg {
  std::uint64_t op = 0;
  std::uint64_t epoch = 0;
  std::string key;

  void encode(BufWriter& w) const {
    w.u64(op);
    w.u64(epoch);
    w.str(key);
  }
  static ReadMsg decode(BufReader& r) {
    ReadMsg m;
    m.op = r.u64();
    m.epoch = r.u64();
    m.key = r.str();
    return m;
  }
};

struct ReadReplyMsg {
  std::uint64_t op = 0;
  std::uint64_t epoch = 0;
  bool has_value = false;
  std::string value;
  QuorumVersion version;

  void encode(BufWriter& w) const {
    w.u64(op);
    w.u64(epoch);
    w.boolean(has_value);
    w.str(value);
    encode_version(w, version);
  }
  static ReadReplyMsg decode(BufReader& r) {
    ReadReplyMsg m;
    m.op = r.u64();
    m.epoch = r.u64();
    m.has_value = r.boolean();
    m.value = r.str();
    m.version = decode_version(r);
    return m;
  }
};

struct WriteMsg {
  std::uint64_t op = 0;
  std::uint64_t epoch = 0;
  std::string key;
  std::string value;
  QuorumVersion version;

  void encode(BufWriter& w) const {
    w.u64(op);
    w.u64(epoch);
    w.str(key);
    w.str(value);
    encode_version(w, version);
  }
  static WriteMsg decode(BufReader& r) {
    WriteMsg m;
    m.op = r.u64();
    m.epoch = r.u64();
    m.key = r.str();
    m.value = r.str();
    m.version = decode_version(r);
    return m;
  }
};

struct AckMsg {
  std::uint64_t op = 0;
  std::uint64_t epoch = 0;

  void encode(BufWriter& w) const {
    w.u64(op);
    w.u64(epoch);
  }
  static AckMsg decode(BufReader& r) {
    AckMsg m;
    m.op = r.u64();
    m.epoch = r.u64();
    return m;
  }
};

}  // namespace

// ------------------------------------------------------------ QuorumConfig

std::uint32_t QuorumConfig::total_votes() const {
  std::uint32_t total = 0;
  for (const auto v : votes) total += v;
  return total;
}

void QuorumConfig::validate(std::uint32_t n) const {
  ABCAST_CHECK_MSG(votes.size() == n, "one vote weight per replica");
  const std::uint32_t total = total_votes();
  ABCAST_CHECK_MSG(total > 0, "no votes");
  ABCAST_CHECK_MSG(read_quorum >= 1 && read_quorum <= total,
                   "read quorum out of range");
  ABCAST_CHECK_MSG(write_quorum >= 1 && write_quorum <= total,
                   "write quorum out of range");
  // Gifford's conditions: reads see the latest write; writes serialize.
  ABCAST_CHECK_MSG(read_quorum + write_quorum > total,
                   "R + W must exceed the total votes");
  ABCAST_CHECK_MSG(2 * write_quorum > total, "2W must exceed total votes");
}

void QuorumConfig::encode(BufWriter& w) const {
  w.vec(votes, [](BufWriter& ww, std::uint32_t v) { ww.u32(v); });
  w.u32(read_quorum);
  w.u32(write_quorum);
}

QuorumConfig QuorumConfig::decode(BufReader& r) {
  QuorumConfig c;
  c.votes = r.vec<std::uint32_t>([](BufReader& rr) { return rr.u32(); });
  c.read_quorum = r.u32();
  c.write_quorum = r.u32();
  return c;
}

QuorumConfig QuorumConfig::uniform(std::uint32_t n) {
  QuorumConfig c;
  c.votes.assign(n, 1);
  c.read_quorum = n / 2 + 1;
  c.write_quorum = n / 2 + 1;
  return c;
}

// ------------------------------------------------------- QuorumReplicaNode

QuorumReplicaNode::QuorumReplicaNode(Env& env,
                                     core::StackConfig stack_config,
                                     QuorumConfig initial_config,
                                     Duration retry_period)
    : env_(env), sink_(*this), stack_(env, std::move(stack_config), sink_),
      storage_(env.storage(), "qr"), retry_period_(retry_period),
      config_(std::move(initial_config)) {
  ABCAST_CHECK(retry_period_ > 0);
  config_.validate(env.group_size());
}

void QuorumReplicaNode::start(bool recovering) {
  if (recovering) {
    // The data store is per-replica durable state (logged before acking).
    for (const auto& key : storage_.keys_with_prefix("rec/")) {
      if (auto rec = storage_.get(key)) {
        BufReader r(*rec);
        Record record;
        const std::string k = r.str();
        record.value = r.str();
        record.version = decode_version(r);
        r.expect_done();
        store_.emplace(k, std::move(record));
      }
    }
  }
  // Configuration changes replay through the stack's delivery sequence.
  stack_.start(recovering);
  tick();
}

void QuorumReplicaNode::propose_config(const QuorumConfig& config) {
  config.validate(env_.group_size());
  BufWriter w;
  config.encode(w);
  stack_.ab().broadcast(std::move(w).take());
}

void QuorumReplicaNode::install_config(const core::AppMsg& msg) {
  // Config payloads arrive through atomic broadcast, so every replica sees
  // the same bytes — but nothing guarantees those bytes decode. A malformed
  // or invalid config must be rejected deterministically (every replica
  // skips the same message), not crash the delivery path.
  QuorumConfig next;
  try {
    BufReader r(msg.payload);
    next = QuorumConfig::decode(r);
    r.expect_done();
    next.validate(env_.group_size());
  } catch (const CodecError& e) {
    ABCAST_LOG(kDebug, "quorum@" << env_.self()
                                 << " rejected config: " << e.what());
    return;
  } catch (const InvariantViolation& e) {
    ABCAST_LOG(kDebug, "quorum@" << env_.self()
                                 << " rejected config: " << e.what());
    return;
  }
  config_ = std::move(next);
  epoch_ += 1;
  metrics_.configs_installed += 1;
  // Operations straddling a reconfiguration restart from scratch under the
  // new configuration — quorum intersection is an intra-epoch argument.
  for (auto& [op_id, op] : ops_) {
    metrics_.stale_epoch_restarts += 1;
    restart_op(op);
  }
}

void QuorumReplicaNode::read(std::string key, ReadCallback cb) {
  const std::uint64_t op_id = next_op_++;
  Op op;
  op.kind = Op::Kind::kRead;
  op.key = std::move(key);
  op.read_cb = std::move(cb);
  ops_.emplace(op_id, std::move(op));
  restart_op(ops_.at(op_id));
  start_op(op_id);
}

void QuorumReplicaNode::write(std::string key, std::string value,
                              WriteCallback cb) {
  const std::uint64_t op_id = next_op_++;
  Op op;
  op.kind = Op::Kind::kWriteReadPhase;
  op.key = std::move(key);
  op.value = std::move(value);
  op.write_cb = std::move(cb);
  ops_.emplace(op_id, std::move(op));
  restart_op(ops_.at(op_id));
  start_op(op_id);
}

void QuorumReplicaNode::restart_op(Op& op) {
  op.epoch = epoch_;
  op.votes_gathered = 0;
  op.replied.clear();
  op.best_value.reset();
  op.best_version = QuorumVersion{};
  if (op.kind == Op::Kind::kWriteInstallPhase) {
    // Redo the version-read under the new configuration too.
    op.kind = Op::Kind::kWriteReadPhase;
  }
}

// (Re)sends the current phase's request to replicas that have not replied.
void QuorumReplicaNode::start_op(std::uint64_t op_id) {
  auto it = ops_.find(op_id);
  if (it == ops_.end()) return;
  Op& op = it->second;
  Wire wire;
  if (op.kind == Op::Kind::kWriteInstallPhase) {
    wire = make_wire(MsgType::kQrWrite,
                     WriteMsg{op_id, op.epoch, op.key, op.value,
                              op.install_version});
  } else {
    wire = make_wire(MsgType::kQrRead, ReadMsg{op_id, op.epoch, op.key});
  }
  for (ProcessId p = 0; p < env_.group_size(); ++p) {
    if (op.replied.count(p) == 0) env_.send(p, wire);
  }
}

void QuorumReplicaNode::tick() {
  for (const auto& [op_id, op] : ops_) start_op(op_id);
  env_.schedule_after(retry_period_, [this] { tick(); });
}

void QuorumReplicaNode::persist_record(const std::string& key,
                                       const Record& rec) {
  BufWriter w;
  w.str(key);
  w.str(rec.value);
  encode_version(w, rec.version);
  storage_.put("rec/" + key, w.data());
}

void QuorumReplicaNode::apply_local_write(const std::string& key,
                                          const std::string& value,
                                          QuorumVersion version) {
  Record& rec = store_[key];
  // A stale or duplicate install is acked without effect: the stored state
  // already carries a version ≥ the requested one, which is all a quorum
  // intersection needs.
  if (version <= rec.version) return;
  rec.value = value;
  rec.version = version;
  // Log before ack (the caller sends the ack after we return): a quorum
  // member must still hold what it acknowledged after crash-recovery.
  persist_record(key, rec);
}

void QuorumReplicaNode::finish_read(Op& op) {
  metrics_.reads_completed += 1;
  if (op.read_cb) op.read_cb(op.best_value, op.best_version);
}

void QuorumReplicaNode::finish_write_read_phase(std::uint64_t op_id,
                                                Op& op) {
  op.kind = Op::Kind::kWriteInstallPhase;
  op.install_version =
      QuorumVersion{op.best_version.counter + 1, env_.self()};
  op.votes_gathered = 0;
  op.replied.clear();
  start_op(op_id);
}

void QuorumReplicaNode::on_message(ProcessId from, const Wire& msg) {
  switch (msg.type) {
    case MsgType::kQrRead: {
      const auto m = decode_from_bytes<ReadMsg>(msg.payload);
      if (m.epoch != epoch_) {
        env_.send(from, make_wire(MsgType::kQrStaleEpoch,
                                  AckMsg{m.op, epoch_}));
        return;
      }
      ReadReplyMsg reply;
      reply.op = m.op;
      reply.epoch = epoch_;
      auto it = store_.find(m.key);
      if (it != store_.end()) {
        reply.has_value = true;
        reply.value = it->second.value;
        reply.version = it->second.version;
      }
      env_.send(from, make_wire(MsgType::kQrReadReply, reply));
      return;
    }
    case MsgType::kQrWrite: {
      const auto m = decode_from_bytes<WriteMsg>(msg.payload);
      if (m.epoch != epoch_) {
        env_.send(from, make_wire(MsgType::kQrStaleEpoch,
                                  AckMsg{m.op, epoch_}));
        return;
      }
      apply_local_write(m.key, m.value, m.version);
      env_.send(from, make_wire(MsgType::kQrWriteAck, AckMsg{m.op, epoch_}));
      return;
    }
    case MsgType::kQrReadReply: {
      const auto m = decode_from_bytes<ReadReplyMsg>(msg.payload);
      auto it = ops_.find(m.op);
      if (it == ops_.end()) return;
      Op& op = it->second;
      if (op.kind == Op::Kind::kWriteInstallPhase || m.epoch != op.epoch) {
        return;
      }
      if (!op.replied.insert(from).second) return;
      op.votes_gathered += config_.votes[from];
      if (m.has_value && (!op.best_value || op.best_version < m.version)) {
        op.best_value = m.value;
        op.best_version = m.version;
      }
      if (op.votes_gathered >= config_.read_quorum) {
        if (op.kind == Op::Kind::kRead) {
          finish_read(op);
          ops_.erase(it);
        } else {
          finish_write_read_phase(m.op, op);
        }
      }
      return;
    }
    case MsgType::kQrWriteAck: {
      const auto m = decode_from_bytes<AckMsg>(msg.payload);
      auto it = ops_.find(m.op);
      if (it == ops_.end()) return;
      Op& op = it->second;
      if (op.kind != Op::Kind::kWriteInstallPhase || m.epoch != op.epoch) {
        return;
      }
      if (!op.replied.insert(from).second) return;
      op.votes_gathered += config_.votes[from];
      if (op.votes_gathered >= config_.write_quorum) {
        metrics_.writes_completed += 1;
        if (op.write_cb) op.write_cb();
        ops_.erase(it);
      }
      return;
    }
    case MsgType::kQrStaleEpoch: {
      const auto m = decode_from_bytes<AckMsg>(msg.payload);
      auto it = ops_.find(m.op);
      if (it == ops_.end()) return;
      // A replica is in a newer configuration than this attempt. Our own
      // epoch catches up via the AB delivery (install_config restarts all
      // ops); if it already has, restart immediately.
      if (epoch_ > it->second.epoch) {
        metrics_.stale_epoch_restarts += 1;
        restart_op(it->second);
        start_op(m.op);
      }
      return;
    }
    default:
      // Everything else belongs to the embedded configuration stack.
      stack_.on_message(from, msg);
      return;
  }
}

std::optional<std::string> QuorumReplicaNode::local_value(
    const std::string& key) const {
  auto it = store_.find(key);
  if (it == store_.end()) return std::nullopt;
  return it->second.value;
}

QuorumVersion QuorumReplicaNode::local_version(const std::string& key) const {
  auto it = store_.find(key);
  return it == store_.end() ? QuorumVersion{} : it->second.version;
}

}  // namespace abcast::apps
