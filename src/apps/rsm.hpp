// Bridges a StateMachine to the Atomic Broadcast delivery interface, and
// hosts the full per-process node (stack + state machine) as one NodeApp.
#pragma once

#include <functional>
#include <memory>

#include "core/delivery_sink.hpp"
#include "core/node_stack.hpp"

#include "apps/state_machine.hpp"

namespace abcast::apps {

/// DeliverySink that applies every delivered message to a state machine and
/// implements the A-checkpoint upcalls with its snapshot/restore.
class Rsm final : public core::DeliverySink {
 public:
  /// Optional observer: invoked after each apply (clients use it to learn
  /// that their command committed). It outlives crashes only if bound to
  /// state outside the node (see RsmNode).
  using ApplyObserver = std::function<void(const core::AppMsg&)>;

  Rsm(std::unique_ptr<StateMachine> machine, ApplyObserver observer = {});

  void deliver(const core::AppMsg& msg) override;
  Bytes take_checkpoint() override;
  void install_checkpoint(const Bytes& state) override;

  StateMachine& machine() { return *machine_; }
  const StateMachine& machine() const { return *machine_; }
  std::uint64_t applied() const { return applied_; }

 private:
  std::unique_ptr<StateMachine> machine_;
  ApplyObserver observer_;
  std::uint64_t applied_ = 0;
};

/// A complete replica: protocol stack + replicated state machine, destroyed
/// and rebuilt as one unit across crashes.
class RsmNode final : public NodeApp {
 public:
  using MachineFactory = std::function<std::unique_ptr<StateMachine>()>;

  RsmNode(Env& env, core::StackConfig config, MachineFactory factory,
          Rsm::ApplyObserver observer = {});

  void start(bool recovering) override { stack_.start(recovering); }
  void on_message(ProcessId from, const Wire& msg) override {
    stack_.on_message(from, msg);
  }

  /// Submits a command for total-order replication; returns its id. The
  /// command is applied (everywhere) when delivered.
  MsgId submit(Bytes command) { return stack_.ab().broadcast(std::move(command)); }

  core::NodeStack& stack() { return stack_; }
  Rsm& rsm() { return rsm_; }

 private:
  Rsm rsm_;
  core::NodeStack stack_;
};

}  // namespace abcast::apps
