// Deterministic replicated state machine interface.
//
// Atomic Broadcast's raison d'être (paper §1): disseminate commands so all
// replicas apply the same commands in the same order. Implementations must
// be deterministic — apply() may depend only on the current state and the
// command bytes.
#pragma once

#include "common/types.hpp"

namespace abcast::apps {

class StateMachine {
 public:
  virtual ~StateMachine() = default;

  StateMachine() = default;
  StateMachine(const StateMachine&) = delete;
  StateMachine& operator=(const StateMachine&) = delete;

  /// Applies one command. Must be deterministic and total (malformed
  /// commands must be rejected deterministically, not crash).
  virtual void apply(const Bytes& command) = 0;

  /// Serializes the full state (the A-checkpoint upcall body).
  virtual Bytes snapshot() const = 0;

  /// Replaces the state; an empty snapshot means the initial state.
  virtual void restore(const Bytes& snapshot) = 0;
};

}  // namespace abcast::apps
