// Application messages as seen by Atomic Broadcast.
#pragma once

#include <algorithm>
#include <vector>

#include "common/codec.hpp"
#include "common/types.hpp"
#include "core/seq.hpp"

namespace abcast::core {

/// A message submitted to A-broadcast. Identity is (sender, seq) where seq
/// embeds the sender's incarnation, making ids unique across crashes
/// without any per-message logging (paper §2.2: "an identity being composed
/// of a pair (local sequence number, sender identity)").
struct AppMsg {
  MsgId id;
  Bytes payload;

  void encode(BufWriter& w) const {
    w.msg_id(id);
    w.bytes(payload);
  }
  static AppMsg decode(BufReader& r) {
    AppMsg m;
    m.id = r.msg_id();
    m.payload = r.bytes();
    return m;
  }

  friend bool operator<(const AppMsg& a, const AppMsg& b) {
    return a.id < b.id;
  }
  friend bool operator==(const AppMsg& a, const AppMsg& b) {
    return a.id == b.id;
  }
};

/// Serializes a batch (a Consensus proposal/decision value).
inline Bytes encode_batch(const std::vector<AppMsg>& batch) {
  BufWriter w;
  w.vec(batch, [](BufWriter& ww, const AppMsg& m) { m.encode(ww); });
  return std::move(w).take();
}

inline std::vector<AppMsg> decode_batch(const Bytes& b) {
  BufReader r(b);
  auto batch = r.vec<AppMsg>([](BufReader& rr) { return AppMsg::decode(rr); });
  r.expect_done();
  return batch;
}

/// The paper's "predetermined deterministic rule": messages decided by the
/// same Consensus instance enter the Agreed queue in MsgId order.
inline void sort_deterministic(std::vector<AppMsg>& batch) {
  std::sort(batch.begin(), batch.end());
}

}  // namespace abcast::core
