// Feature flags selecting between the paper's basic protocol (Fig. 2) and
// the alternative protocol (Figs. 3–5). Each §5 mechanism is independently
// toggleable so the ablation benches can isolate one at a time.
#pragma once

#include <cstdint>

#include "common/check.hpp"
#include "common/types.hpp"

namespace abcast::core {

struct Options {
  /// Gossip task period (paper §4.2 — "repeat forever multisend gossip").
  Duration gossip_period = millis(30);

  /// Additionally multisend each new message the moment it is broadcast
  /// (instead of waiting for the next gossip tick). This approximates the
  /// eager relay of the crash-stop Chandra-Toueg transformation and is used
  /// by the baseline configuration. Under digest_gossip the eager datagram
  /// carries only the sender's own unordered suffix (not the whole set).
  bool eager_dissemination = false;

  // ---- digest-based delta gossip (anti-entropy) --------------------------
  /// Replace full-set gossip with digest anti-entropy: the periodic
  /// datagram carries (k, total, per-sender coverage digest) instead of the
  /// whole Unordered set; a receiver replies (rate-limited, per peer) with
  /// only the per-sender suffixes the digester is missing, shipped in
  /// sender-seq order so the monotone-set invariant AgreedLog depends on is
  /// preserved by construction (see DESIGN.md "Digest gossip").
  bool digest_gossip = false;
  /// Minimum spacing of delta replies to one peer (bounds the bytes a
  /// duplicated / replayed digest can trigger).
  Duration delta_reply_interval = millis(8);
  /// Upper bound on one delta datagram's payload. A plan larger than this
  /// is split into several datagrams — each a self-contained, in-seq-order
  /// suffix the receiver's guard accepts on its own — so a delta to a
  /// deeply lagging peer never exceeds what the transport can carry (the
  /// rt/udp host silently drops frames above 64 KiB). Must leave room for
  /// the digest header plus at least one message.
  std::size_t max_delta_bytes = 56 * 1024;

  /// Skip a gossip tick when nothing changed since the last send and no
  /// peer is known to lag. A keepalive still goes out every
  /// `gossip_keepalive_periods` ticks so peers we have never heard from
  /// (and the gossip_k_ lag detection) keep working.
  bool suppress_idle_gossip = false;
  std::uint32_t gossip_keepalive_periods = 8;

  // ---- §5.1: avoiding the replay phase ---------------------------------
  /// Periodically log (k, Agreed) so recovery resumes from the checkpoint
  /// instead of replaying every decided Consensus instance.
  bool checkpointing = false;
  Duration checkpoint_period = millis(500);
  /// Also truncate Consensus records made obsolete by the checkpoint
  /// (Fig. 4 line c) — bounds the log but requires state transfer to serve
  /// processes that lag past the truncation horizon.
  bool truncate_logs = false;

  // ---- §5.2: application-level checkpoints ------------------------------
  /// Replace the delivered-message suffix with the application state from
  /// the A-checkpoint upcall at every checkpoint. Requires checkpointing.
  bool app_checkpointing = false;

  // ---- §5.3: state transfer ---------------------------------------------
  /// Send/accept state messages when a peer lags by more than `delta`
  /// rounds (Fig. 3 lines d–f).
  bool state_transfer = false;
  std::uint64_t delta = 4;
  /// §5.3's closing optimization: "the state message can be made to carry
  /// only those messages that are not known by the recipient". Gossip
  /// advertises the local delivered count; a catch-up session then streams
  /// only the missing tail of the sequence. A session whose recipient
  /// predates the sender's application checkpoint streams the checkpoint
  /// itself first (snapshot phase) regardless of this flag.
  bool trimmed_state_transfer = false;
  /// Upper bound on one catch-up chunk's payload (same framing discipline
  /// as max_delta_bytes: the rt/udp host silently drops frames above
  /// 64 KiB, so a state transfer must never produce one). Must leave room
  /// for the chunk header plus at least one message / one snapshot byte.
  std::size_t max_state_bytes = 56 * 1024;
  /// Go-back timer of the catch-up session's stop-and-wait window: when the
  /// last burst is not fully acked within this interval, the sender rewinds
  /// its cursor to the receiver's last ack and resends.
  Duration state_retransmit_interval = millis(30);
  /// Chunks a catch-up session sends per burst before waiting for the
  /// receiver's ack (bounds in-flight state bytes per lagging peer).
  std::uint32_t state_burst_chunks = 4;
  /// A catch-up session that has heard nothing from its receiver for this
  /// long is dropped (the receiver's next gossip recreates it). Also bounds
  /// how long a stuck session may defer checkpoint compaction.
  Duration state_session_timeout = millis(600);

  // ---- §5.4: message batches / early return -----------------------------
  /// Log the Unordered set on every A-broadcast so the call durably
  /// completes before ordering (higher throughput; one more log op per
  /// broadcast).
  bool log_unordered = false;

  /// Upper bound on messages per Consensus proposal; 0 means a proposal
  /// carries the whole Unordered backlog (the paper's unbounded batch).
  /// Bounding the batch gives a round pipeline a finite per-group ordering
  /// rate — the regime where multi-group sharding (E14) pays off — and
  /// models real orderers, which cap batch size to bound decision latency
  /// and proposal datagrams. Messages left out stay in Unordered and ride
  /// a later round; per-sender seq order within one proposer is preserved
  /// because the batch takes a prefix of the MsgId-ordered backlog.
  std::size_t max_proposal_msgs = 0;

  /// Number of Consensus rounds that may be in flight concurrently (the
  /// pipelining window α). 1 reproduces the paper's sequential protocol:
  /// round k must decide before k+1 is proposed. With α > 1 the process
  /// proposes rounds k..k+α-1 before k decides; delivery stays gated on the
  /// contiguous decided prefix, so out-of-order decides park in the
  /// per-instance decision log until the gap closes (see DESIGN.md §14).
  /// Slots beyond k carry the union of every in-flight proposal plus new
  /// messages, which keeps each proposal prefix-closed per sender and makes
  /// the window safe under competing proposers and supersession.
  std::uint64_t pipeline_window = 1;

  // ---- §5.5: incremental logging -----------------------------------------
  /// When logging Unordered, write only the new message instead of the
  /// whole set (one small record per message, erased once ordered).
  bool incremental_unordered_log = false;

  /// Fig. 2 exactly: the only log operation is the Consensus proposal.
  static Options basic() { return Options{}; }

  /// Figs. 3–5 with every extension on (including the §5.3 trimmed-
  /// transfer note; with app checkpoints enabled it only applies to
  /// transfers sent before the first compaction).
  static Options alternative() {
    Options o;
    o.checkpointing = true;
    o.truncate_logs = true;
    o.app_checkpointing = true;
    o.state_transfer = true;
    o.trimmed_state_transfer = true;
    o.log_unordered = true;
    o.incremental_unordered_log = true;
    return o;
  }

  void validate() const {
    ABCAST_CHECK(gossip_period > 0);
    ABCAST_CHECK_MSG(!app_checkpointing || checkpointing,
                     "app_checkpointing requires checkpointing");
    ABCAST_CHECK_MSG(!truncate_logs || checkpointing,
                     "truncate_logs requires checkpointing");
    ABCAST_CHECK_MSG(!truncate_logs || state_transfer,
                     "truncate_logs requires state_transfer (a process that "
                     "lags past the truncation horizon can only catch up "
                     "via a state message)");
    ABCAST_CHECK_MSG(!incremental_unordered_log || log_unordered,
                     "incremental_unordered_log requires log_unordered");
    ABCAST_CHECK_MSG(!trimmed_state_transfer || state_transfer,
                     "trimmed_state_transfer requires state_transfer");
    ABCAST_CHECK_MSG(max_delta_bytes >= 256,
                     "max_delta_bytes must fit the digest header plus at "
                     "least one small message");
    ABCAST_CHECK_MSG(pipeline_window >= 1,
                     "pipeline_window must be at least 1 (1 = sequential "
                     "rounds, the paper's protocol)");
    ABCAST_CHECK_MSG(max_state_bytes >= 256,
                     "max_state_bytes must fit the chunk header plus at "
                     "least one small message");
    if (checkpointing) ABCAST_CHECK(checkpoint_period > 0);
    if (state_transfer) {
      ABCAST_CHECK(delta >= 1);
      ABCAST_CHECK(state_retransmit_interval > 0);
      ABCAST_CHECK(state_burst_chunks >= 1);
      ABCAST_CHECK(state_session_timeout > 0);
    }
  }
};

}  // namespace abcast::core
