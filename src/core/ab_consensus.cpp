#include "core/ab_consensus.hpp"

#include "common/codec.hpp"

namespace abcast::core {
namespace {

// Consensus proposals ride inside ordinary A-broadcast payloads under a
// magic prefix, so they coexist with other application traffic.
constexpr std::uint32_t kTag = 0x41424353;  // "ABCS"

Bytes encode_proposal(std::uint64_t k, const Bytes& value) {
  BufWriter w;
  w.u32(kTag);
  w.u64(k);
  w.bytes(value);
  return std::move(w).take();
}

std::optional<std::pair<std::uint64_t, Bytes>> decode_proposal(
    const Bytes& payload) {
  try {
    BufReader r(payload);
    if (r.u32() != kTag) return std::nullopt;
    const std::uint64_t k = r.u64();
    Bytes value = r.bytes();
    r.expect_done();
    return std::pair{k, std::move(value)};
  } catch (const CodecError&) {
    return std::nullopt;
  }
}

}  // namespace

void AbConsensus::propose(std::uint64_t k, const Bytes& value) {
  if (decisions_.count(k) != 0) return;
  if (!proposed_.emplace(k, true).second) return;
  ab_.broadcast(encode_proposal(k, value));
}

std::optional<Bytes> AbConsensus::decision(std::uint64_t k) const {
  auto it = decisions_.find(k);
  if (it == decisions_.end()) return std::nullopt;
  return it->second;
}

void AbConsensus::feed_delivery(const AppMsg& msg) {
  auto proposal = decode_proposal(msg.payload);
  if (!proposal) return;
  auto& [k, value] = *proposal;
  // "The first value to be delivered can be chosen as the decided value":
  // total order makes this first value identical at every process.
  auto [it, inserted] = decisions_.emplace(k, std::move(value));
  if (inserted && decided_cb_) decided_cb_(k, it->second);
}

}  // namespace abcast::core
