// Upper-layer interface of Atomic Broadcast (paper Figures 1 and 5).
#pragma once

#include "common/types.hpp"
#include "core/app_msg.hpp"

namespace abcast::core {

/// What the application plugs into the Atomic Broadcast layer.
///
/// deliver() is the A-deliver upcall: invoked for every message, in the
/// single total order, exactly once per process incarnation position.
///
/// The two checkpoint methods realize the paper's augmented interface
/// (Fig. 5): take_checkpoint() is the A-checkpoint(σ) upcall returning a
/// state that "logically contains" everything delivered so far, and
/// install_checkpoint() replaces the application state wholesale (used on
/// recovery from a logged checkpoint and on state transfer). Applications
/// running the basic protocol without checkpointing can rely on the default
/// failing implementations.
class DeliverySink {
 public:
  virtual ~DeliverySink() = default;

  virtual void deliver(const AppMsg& msg) = 0;

  /// Returns the full application state. Only called when
  /// Options::app_checkpointing is enabled.
  virtual Bytes take_checkpoint();

  /// Replaces the application state with `state` (which may be empty,
  /// meaning A-checkpoint(⊥): the initial state). Called before the
  /// suffix of messages following the checkpoint is re-delivered.
  virtual void install_checkpoint(const Bytes& state);
};

}  // namespace abcast::core
