// Baseline: Chandra-Toueg-style Atomic Broadcast for the crash-stop
// (no-recovery) model (paper §5.6 observes that when crashes are definitive
// the crash-recovery protocol "reduces to" this one).
//
// The baseline is the same stack configured for a world without recovery:
//   * eager relay of new messages (no periodic gossip needed for liveness,
//     but kept as a slow fallback against channel loss);
//   * no durability: pair the stack with DiscardStorage — a crash-stop
//     process never reads its log, so every log op is a no-op. Operation
//     counters still run, which is how bench_ct_baseline reports the
//     crash-recovery machinery's logging overhead against this baseline.
#pragma once

#include "core/node_stack.hpp"

namespace abcast::core {

/// Stack configuration for the crash-stop baseline. Use together with a
/// DiscardStorage-backed host.
StackConfig crash_stop_baseline_config(ConsensusKind engine);

}  // namespace abcast::core
