#include "core/node_stack.hpp"

#include "common/check.hpp"
#include "common/codec.hpp"
#include "storage/durable_counter.hpp"
#include "storage/scoped_storage.hpp"

namespace abcast::core {

NodeStack::NodeStack(Env& env, StackConfig config, DeliverySink& sink)
    : env_(env),
      fd_(make_failure_detector(config.fd_kind, env, config.fd)),
      cons_(make_consensus(config.engine, env, *fd_, config.consensus)),
      ab_(env, *cons_, sink, config.ab) {
  cons_->set_decided_callback(
      [this](InstanceId k, const Bytes& v) { ab_.on_decided(k, v); });
  cons_->set_obsolete_callback(
      [this](ProcessId from, InstanceId k) { ab_.on_peer_truncated(from, k); });
}

// Loads, bumps, and re-logs the stack-owned incarnation counter (scope
// "node/"), used when the failure detector has bounded output and thus no
// epoch of its own.
std::uint64_t NodeStack::own_incarnation_bump() {
  // Dual-slot: a torn write must not roll the incarnation back — a reused
  // incarnation reuses message ids, and the vector-clock duplicate
  // suppression would then drop fresh messages (a Validity violation).
  ScopedStorage storage(env_.storage(), "node");
  return DurableCounter(storage, "incarnation").bump();
}

void NodeStack::start(bool recovering) {
  // Order matters: the detector logs/bumps the epoch first (it provides
  // the incarnation number), consensus reloads its logs next, and atomic
  // broadcast replays on top of those reloaded decisions.
  fd_->start(recovering);
  incarnation_ = fd_->incarnation();
  if (incarnation_ == 0) incarnation_ = own_incarnation_bump();
  cons_->start(recovering);
  ab_.start(recovering, incarnation_);
}

void NodeStack::on_message(ProcessId from, const Wire& msg) {
  if (fd_->handles(msg.type)) {
    fd_->on_message(from, msg);
  } else if (cons_->handles(msg.type)) {
    cons_->on_message(from, msg);
  } else if (ab_.handles(msg.type)) {
    ab_.on_message(from, msg);
  } else {
    ABCAST_CHECK_MSG(false, "unroutable message type");
  }
}

}  // namespace abcast::core
