#include "core/agreed_log.hpp"

namespace abcast::core {

std::vector<AppMsg> AgreedLog::append(std::vector<AppMsg> batch) {
  sort_deterministic(batch);
  std::vector<AppMsg> delivered;
  delivered.reserve(batch.size());
  for (auto& m : batch) {
    if (vc_.covers(m.id)) {
      // Either already delivered (decided twice) or superseded by a later
      // SAME-INCARNATION message of its sender that was agreed first; every
      // process skips it here, so the global sequence stays identical.
      // Supersession is deliberately per-incarnation: a new incarnation's
      // root never covers the previous incarnation's still-undelivered
      // (durably logged) messages — those stay deliverable by later
      // batches (see vector_clock.hpp).
      skipped_ += 1;
      continue;
    }
    vc_.observe(m.id);
    suffix_.push_back(m);
    delivered.push_back(std::move(m));
  }
  return delivered;
}

std::vector<AppMsg> AgreedLog::append_sequence(
    const std::vector<AppMsg>& segment) {
  std::vector<AppMsg> delivered;
  delivered.reserve(segment.size());
  for (const auto& m : segment) {
    if (vc_.covers(m.id)) {
      skipped_ += 1;
      continue;
    }
    vc_.observe(m.id);
    suffix_.push_back(m);
    delivered.push_back(m);
  }
  return delivered;
}

void AgreedLog::reset_to_base(AppCheckpoint ckpt) {
  vc_ = ckpt.vc;
  base_count_ = ckpt.count;
  base_ = std::move(ckpt);
  suffix_.clear();
}

void AgreedLog::compact(Bytes state) {
  AppCheckpoint ckpt;
  ckpt.state = std::move(state);
  ckpt.vc = vc_;
  ckpt.count = total();
  base_ = std::move(ckpt);
  base_count_ = base_->count;
  suffix_.clear();
}

void AgreedLog::encode(BufWriter& w) const {
  w.boolean(base_.has_value());
  if (base_) base_->encode(w);
  w.vec(suffix_, [](BufWriter& ww, const AppMsg& m) { m.encode(ww); });
  vc_.encode(w);
}

AgreedLog AgreedLog::decode(BufReader& r) {
  AgreedLog log;
  if (r.boolean()) {
    log.base_ = AppCheckpoint::decode(r);
    log.base_count_ = log.base_->count;
  }
  log.suffix_ =
      r.vec<AppMsg>([](BufReader& rr) { return AppMsg::decode(rr); });
  log.vc_ = VectorClock::decode(r);
  return log;
}

}  // namespace abcast::core
