#include "core/atomic_broadcast.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"
#include "common/logging.hpp"
#include "storage/sealed_record.hpp"

namespace abcast::core {
namespace {

struct GossipMsg {
  std::uint64_t k = 0;
  /// Local delivered count — advertised so peers can trim state transfers
  /// to the missing tail (§5.3 optimization).
  std::uint64_t total = 0;
  std::vector<AppMsg> unordered;

  void encode(BufWriter& w) const {
    w.u64(k);
    w.u64(total);
    w.vec(unordered, [](BufWriter& ww, const AppMsg& m) { m.encode(ww); });
  }
  static GossipMsg decode(BufReader& r) {
    GossipMsg m;
    m.k = r.u64();
    m.total = r.u64();
    m.unordered =
        r.vec<AppMsg>([](BufReader& rr) { return AppMsg::decode(rr); });
    return m;
  }
};

struct StateMsg {
  std::uint64_t k = 0;  // sender's round minus one (paper Fig. 3, line d)
  bool trimmed = false;
  // Full transfer: the complete Agreed representation.
  AgreedLog agreed;
  // Trimmed transfer: only the sequence tail after the recipient's
  // advertised position (`base_total` messages omitted).
  std::uint64_t base_total = 0;
  std::vector<AppMsg> tail;

  void encode(BufWriter& w) const {
    w.u64(k);
    w.boolean(trimmed);
    if (trimmed) {
      w.u64(base_total);
      w.vec(tail, [](BufWriter& ww, const AppMsg& m) { m.encode(ww); });
    } else {
      agreed.encode(w);
    }
  }
  static StateMsg decode(BufReader& r) {
    StateMsg m;
    m.k = r.u64();
    m.trimmed = r.boolean();
    if (m.trimmed) {
      m.base_total = r.u64();
      m.tail = r.vec<AppMsg>([](BufReader& rr) { return AppMsg::decode(rr); });
    } else {
      m.agreed = AgreedLog::decode(r);
    }
    return m;
  }
};

constexpr const char* kCkptKey = "ckpt";
constexpr const char* kUnorderedKey = "unord";

std::string unordered_item_key(const MsgId& id) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "u/%010u-%020llu", id.sender,
                static_cast<unsigned long long>(id.seq));
  return buf;
}

}  // namespace

AtomicBroadcast::AtomicBroadcast(Env& env, ConsensusService& consensus,
                                 DeliverySink& sink, Options options)
    : env_(env), cons_(consensus), sink_(sink), options_(options),
      storage_(env.storage(), "ab"), agreed_(env.group_size()),
      tracer_(env.tracer()) {
  options_.validate();
  bind_metrics();
}

void AtomicBroadcast::bind_metrics() {
  auto* registry = env_.metrics_registry();
  if (registry == nullptr) return;
  const obs::Labels labels{{"node", std::to_string(env_.self())}};
  metrics_group_ = registry->group();
  metrics_group_.bind("ab_broadcasts", labels, &metrics_.broadcasts);
  metrics_group_.bind("ab_delivered", labels, &metrics_.delivered);
  metrics_group_.bind("ab_rounds_completed", labels,
                      &metrics_.rounds_completed);
  metrics_group_.bind("ab_replayed_rounds", labels, &metrics_.replayed_rounds);
  metrics_group_.bind("ab_proposals", labels, &metrics_.proposals);
  metrics_group_.bind("ab_empty_proposals", labels,
                      &metrics_.empty_proposals);
  metrics_group_.bind("ab_gossip_sent", labels, &metrics_.gossip_sent);
  metrics_group_.bind("ab_gossip_received", labels,
                      &metrics_.gossip_received);
  metrics_group_.bind("ab_state_sent", labels, &metrics_.state_sent);
  metrics_group_.bind("ab_state_sent_trimmed", labels,
                      &metrics_.state_sent_trimmed);
  metrics_group_.bind("ab_state_applied", labels, &metrics_.state_applied);
  metrics_group_.bind("ab_checkpoints", labels, &metrics_.checkpoints);
  metrics_group_.bind("ab_corrupt_records", labels,
                      &metrics_.corrupt_records);
  batch_size_hist_ = &registry->histogram("ab_batch_size");
}

void AtomicBroadcast::start(bool recovering, std::uint64_t incarnation) {
  ABCAST_CHECK_MSG(!started_, "atomic broadcast started twice");
  started_ = true;
  incarnation_ = incarnation;
  counter_ = 0;

  if (recovering) {
    // §5.1: resume from the logged (k, Agreed) checkpoint when present;
    // otherwise replay() reconstructs everything from Consensus decisions.
    // A checkpoint that fails its seal or does not decode is a torn write:
    // discard it and recover as if it never existed — replay (and, with
    // truncated logs, a state transfer from a peer) rebuilds the sequence.
    if (options_.checkpointing) {
      if (auto raw = storage_.get(kCkptKey)) {
        bool ok = false;
        if (auto rec = unseal_record(*raw)) {
          try {
            BufReader r(*rec);
            const std::uint64_t k = r.u64();
            AgreedLog agreed = AgreedLog::decode(r);
            r.expect_done();
            k_ = k;
            agreed_ = std::move(agreed);
            ok = true;
          } catch (const CodecError&) {
          }
        }
        if (ok) {
          // Rebuild the application: install the checkpoint base (or the
          // initial state) and re-deliver the explicit suffix.
          if (agreed_.base()) {
            sink_.install_checkpoint(agreed_.base()->state);
          }
          trace(obs::EventKind::kCheckpoint, k_, MsgId{}, agreed_.total(),
                "load");
          std::uint64_t pos = agreed_.total() - agreed_.suffix().size();
          for (const auto& m : agreed_.suffix()) {
            trace(obs::EventKind::kDeliver, k_, m.id, pos++);
            sink_.deliver(m);
          }
        } else {
          metrics_.corrupt_records += 1;
          k_ = 0;
          agreed_ = AgreedLog(env_.group_size());
          storage_.erase(kCkptKey);
        }
      }
    }
    // §5.4: restore the durable Unordered set. A damaged element was torn
    // by a crash inside the broadcast() that logged it — the call never
    // returned, so dropping the message does not violate Validity.
    if (options_.log_unordered) {
      if (options_.incremental_unordered_log) {
        for (const auto& key : storage_.keys_with_prefix("u/")) {
          bool ok = false;
          if (auto raw = storage_.get(key)) {
            if (auto rec = unseal_record(*raw)) {
              try {
                BufReader r(*rec);
                AppMsg m = AppMsg::decode(r);
                r.expect_done();
                unordered_.emplace(m.id, std::move(m));
                ok = true;
              } catch (const CodecError&) {
              }
            }
          }
          if (!ok) {
            metrics_.corrupt_records += 1;
            storage_.erase(key);
          }
        }
      } else if (auto raw = storage_.get(kUnorderedKey)) {
        bool ok = false;
        if (auto rec = unseal_record(*raw)) {
          try {
            for (auto& m : decode_batch(*rec)) {
              unordered_.emplace(m.id, std::move(m));
            }
            ok = true;
          } catch (const CodecError&) {
            unordered_.clear();
          }
        }
        if (!ok) {
          metrics_.corrupt_records += 1;
          storage_.erase(kUnorderedKey);
        }
      }
    }
    // The paper's replay(): re-apply every locally decided instance from
    // k_ on. Consensus has already reloaded its decision log, so each
    // iteration is a local lookup.
    const std::uint64_t k_before = k_;
    drain();
    metrics_.replayed_rounds = k_ - k_before;
    prune_unordered();
  }

  gossip_tick();
  if (options_.checkpointing) {
    env_.schedule_after(options_.checkpoint_period,
                        [this] { checkpoint_tick(); });
  }
  maybe_propose();
}

MsgId AtomicBroadcast::broadcast(Bytes payload) {
  ABCAST_CHECK_MSG(started_, "broadcast before start");
  counter_ += 1;
  AppMsg m;
  m.id = MsgId{env_.self(), make_seq(incarnation_, counter_)};
  m.payload = std::move(payload);
  const MsgId id = m.id;
  unordered_.emplace(id, std::move(m));
  metrics_.broadcasts += 1;
  trace(obs::EventKind::kBroadcast, k_, id);

  if (options_.log_unordered) {
    // §5.4: make A-broadcast durable before returning, so the caller may
    // proceed without waiting for the ordering round.
    if (options_.incremental_unordered_log) {
      // §5.5: log only the new element, not the whole set.
      storage_.put(unordered_item_key(id),
                   seal_record(encode_to_bytes(unordered_.at(id))));
    } else {
      log_unordered_set();
    }
  }

  if (options_.eager_dissemination) {
    // Send the WHOLE unordered set, exactly like a gossip tick — never a
    // single message. Correctness depends on gossip sets being monotone:
    // any process holding an unagreed message also holds that sender's
    // earlier unagreed ones, which is what makes the vector-clock
    // duplicate-suppression rule in AgreedLog safe. A single-message
    // datagram racing ahead of its predecessor on the non-FIFO channel
    // would let a proposal contain (p,s+1) without (p,s) and drop (p,s)
    // everywhere.
    send_gossip_now();
  }

  maybe_propose();
  return id;
}

void AtomicBroadcast::log_unordered_set() {
  std::vector<AppMsg> all;
  all.reserve(unordered_.size());
  for (const auto& [id, m] : unordered_) all.push_back(m);
  storage_.put(kUnorderedKey, seal_record(encode_batch(all)));
}

void AtomicBroadcast::erase_unordered_record(const MsgId& id) {
  if (!options_.log_unordered) return;
  if (options_.incremental_unordered_log) {
    storage_.erase(unordered_item_key(id));
  }
  // Non-incremental mode rewrites the whole set on the next broadcast; no
  // need to persist the shrink eagerly (resurrected messages are filtered
  // against Agreed on recovery).
}

void AtomicBroadcast::prune_unordered() {
  for (auto it = unordered_.begin(); it != unordered_.end();) {
    if (agreed_.contains(it->first)) {
      erase_unordered_record(it->first);
      it = unordered_.erase(it);
    } else {
      ++it;
    }
  }
}

void AtomicBroadcast::maybe_propose() {
  // Paper Fig. 2, sequencer task: start round k only with something to
  // propose or when gossip revealed we lag (then even an empty proposal is
  // fine — the decision is already locked without our input).
  if (cons_.proposed(k_)) return;
  if (unordered_.empty() && gossip_k_ <= k_) return;
  std::vector<AppMsg> batch;
  batch.reserve(unordered_.size());
  for (const auto& [id, m] : unordered_) batch.push_back(m);
  metrics_.proposals += 1;
  if (batch.empty()) metrics_.empty_proposals += 1;
  cons_.propose(k_, encode_batch(batch));
}

void AtomicBroadcast::on_decided(InstanceId k, const Bytes& value) {
  (void)value;
  if (k < k_) return;  // stale: already applied (e.g. via state transfer)
  drain();
}

void AtomicBroadcast::drain() {
  while (auto decided = cons_.decision(k_)) {
    apply_batch(*decided);
  }
  maybe_propose();
}

void AtomicBroadcast::apply_batch(const Bytes& value) {
  auto batch = decode_batch(value);
  auto delivered = agreed_.append(std::move(batch));
  if (batch_size_hist_ != nullptr) batch_size_hist_->observe(delivered.size());
  std::uint64_t pos = agreed_.total() - delivered.size();
  for (auto& m : delivered) {
    erase_unordered_record(m.id);
    unordered_.erase(m.id);
    metrics_.delivered += 1;
    trace(obs::EventKind::kDeliver, k_, m.id, pos++);
    sink_.deliver(m);
  }
  // Messages that were in the decided batch but skipped as stale are also
  // covered by Agreed now; drop any lingering unordered copies.
  for (auto it = unordered_.begin(); it != unordered_.end();) {
    if (agreed_.contains(it->first)) {
      erase_unordered_record(it->first);
      it = unordered_.erase(it);
    } else {
      ++it;
    }
  }
  k_ += 1;
  metrics_.rounds_completed += 1;
}

void AtomicBroadcast::send_gossip_now() {
  GossipMsg g;
  g.k = k_;
  g.total = agreed_.total();
  g.unordered.reserve(unordered_.size());
  for (const auto& [id, m] : unordered_) g.unordered.push_back(m);
  env_.multisend(make_wire(MsgType::kAbGossip, g));
  metrics_.gossip_sent += 1;
  trace(obs::EventKind::kGossipSend, k_, MsgId{}, unordered_.size());
}

void AtomicBroadcast::gossip_tick() {
  send_gossip_now();
  env_.schedule_after(options_.gossip_period, [this] { gossip_tick(); });
}

void AtomicBroadcast::on_message(ProcessId from, const Wire& msg) {
  if (msg.type == MsgType::kAbGossip) {
    const auto g = decode_from_bytes<GossipMsg>(msg.payload);
    metrics_.gossip_received += 1;
    trace(obs::EventKind::kGossipRecv, g.k, MsgId{}, from);
    for (const auto& m : g.unordered) {
      if (!agreed_.contains(m.id)) unordered_.emplace(m.id, m);
    }
    if (g.k > k_) {
      gossip_k_ = std::max(gossip_k_, g.k);  // the sender is ahead
    } else if (options_.state_transfer && k_ > g.k + options_.delta) {
      send_state(from, g.total);  // Fig. 3 line d: the sender lags far behind
    } else if (g.k < k_) {
      // The sender lags within Δ (or state transfer is off): push it the
      // decisions it is missing — its original deciders may be gone.
      cons_.offer_decisions(from, g.k, 16);
    }
    drain();
    return;
  }
  if (msg.type == MsgType::kAbState) {
    auto s = decode_from_bytes<StateMsg>(msg.payload);
    if (options_.state_transfer && k_ + options_.delta < s.k) {
      if (s.trimmed) {
        adopt_trimmed_state(s.k, s.base_total, s.tail);
      } else {
        adopt_state(s.k, std::move(s.agreed));  // Fig. 3 lines e–f
      }
    } else if (s.k > k_) {
      gossip_k_ = std::max(gossip_k_, s.k);  // small de-synchronization
    }
    return;
  }
  ABCAST_CHECK_MSG(false, "unexpected ab message type");
}

void AtomicBroadcast::send_state(ProcessId to,
                                 std::uint64_t recipient_total) {
  if (!options_.state_transfer) return;
  // Throttle per peer: gossip arrives every gossip_period from a lagging
  // process; one state message per period is plenty.
  const TimePoint now = env_.now();
  auto it = last_state_sent_.find(to);
  if (it != last_state_sent_.end() &&
      now - it->second < options_.gossip_period) {
    return;
  }
  last_state_sent_[to] = now;
  ABCAST_CHECK(k_ >= 1);
  StateMsg s;
  s.k = k_ - 1;
  // §5.3 optimization: when our whole prefix is still explicit (no
  // application checkpoint folded it away) and we know where the recipient
  // stands, ship only the tail it is missing.
  if (options_.trimmed_state_transfer && !agreed_.base() &&
      recipient_total <= agreed_.suffix().size()) {
    s.trimmed = true;
    s.base_total = recipient_total;
    s.tail = std::vector<AppMsg>(agreed_.suffix().begin() +
                                     static_cast<std::ptrdiff_t>(recipient_total),
                                 agreed_.suffix().end());
    metrics_.state_sent_trimmed += 1;
  } else {
    s.agreed = agreed_;
  }
  env_.send(to, make_wire(MsgType::kAbState, s));
  metrics_.state_sent += 1;
  trace(obs::EventKind::kStateTransfer, s.k, MsgId{}, agreed_.total(),
        s.trimmed ? "send_trim" : "send");
}

void AtomicBroadcast::adopt_trimmed_state(std::uint64_t state_k,
                                          std::uint64_t base_total,
                                          const std::vector<AppMsg>& tail) {
  // The omitted prefix must be exactly what we already delivered (total
  // order makes equal counts mean equal prefixes). If we crashed since the
  // gossip that advertised our count, our position may be smaller — then
  // this transfer does not apply; the next gossip advertises the new count
  // and the sender re-trims.
  if (agreed_.total() < base_total) return;
  trace(obs::EventKind::kStateTransfer, state_k, MsgId{},
        base_total + tail.size(), "adopt_trim");
  auto delivered = agreed_.append_sequence(tail);
  std::uint64_t pos = agreed_.total() - delivered.size();
  for (const auto& m : delivered) {
    erase_unordered_record(m.id);
    unordered_.erase(m.id);
    metrics_.delivered += 1;
    trace(obs::EventKind::kDeliver, k_, m.id, pos++);
    sink_.deliver(m);
  }
  k_ = state_k + 1;
  metrics_.state_applied += 1;
  prune_unordered();
  if (options_.checkpointing) take_checkpoint();
  drain();
}

void AtomicBroadcast::adopt_state(std::uint64_t state_k, AgreedLog incoming) {
  // Skip the Consensus instances we missed: replace our queue wholesale
  // (total order guarantees ours is a prefix of the incoming one), rebuild
  // the application, and resume the sequencer from the sender's round.
  trace(obs::EventKind::kStateTransfer, state_k, MsgId{}, incoming.total(),
        "adopt");
  sink_.install_checkpoint(incoming.base() ? incoming.base()->state
                                           : Bytes{});
  std::uint64_t pos = incoming.total() - incoming.suffix().size();
  for (const auto& m : incoming.suffix()) {
    trace(obs::EventKind::kDeliver, k_, m.id, pos++);
    sink_.deliver(m);
  }
  agreed_ = std::move(incoming);
  k_ = state_k + 1;
  metrics_.state_applied += 1;
  prune_unordered();
  if (options_.checkpointing) {
    // Make the jump durable; otherwise a crash would replay from the old
    // checkpoint into truncated territory.
    take_checkpoint();
  }
  drain();
}

void AtomicBroadcast::checkpoint_tick() {
  take_checkpoint();
  env_.schedule_after(options_.checkpoint_period,
                      [this] { checkpoint_tick(); });
}

void AtomicBroadcast::take_checkpoint() {
  // §5.2 (Fig. 4 line b): fold the delivered suffix into an application
  // checkpoint before logging, bounding both the record and the log.
  if (options_.app_checkpointing) {
    agreed_.compact(sink_.take_checkpoint());
  }
  BufWriter w;
  w.u64(k_);
  agreed_.encode(w);
  storage_.put(kCkptKey, seal_record(w.data()));
  metrics_.checkpoints += 1;
  trace(obs::EventKind::kCheckpoint, k_, MsgId{}, agreed_.total(), "take");
  if (options_.truncate_logs) {
    // Fig. 4 line c, widened to consensus-internal records. Keep a Δ-deep
    // tail so any peer close enough NOT to trigger a state transfer can
    // still run the instances it needs (see consensus.hpp truncate_below).
    const std::uint64_t bound = k_ > options_.delta ? k_ - options_.delta : 0;
    cons_.truncate_below(bound);
  }
}

void AtomicBroadcast::on_peer_truncated(ProcessId from, InstanceId k) {
  (void)k;
  // The peer asked about an instance we truncated; only a state transfer
  // can catch it up (Options::validate() guarantees it is enabled). Its
  // position is unknown on this path: send the full state.
  if (k_ >= 1) send_state(from, std::numeric_limits<std::uint64_t>::max());
}

}  // namespace abcast::core
