#include "core/atomic_broadcast.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"
#include "common/logging.hpp"
#include "core/ab_wire.hpp"
#include "core/gossip_wire.hpp"
#include "storage/sealed_record.hpp"

namespace abcast::core {
namespace {

// GossipMsg (kAbGossip) and StateMsg (kAbState) live in core/ab_wire.hpp;
// DigestMsg (kAbGossipDigest) in core/gossip_wire.hpp, next to the
// copy-free encoder and the delta planner. Every payload layout has a
// single definition site and a round-trip test (enforced by tools/ablint).

constexpr const char* kCkptKey = "ckpt";
constexpr const char* kUnorderedKey = "unord";

std::string unordered_item_key(const MsgId& id) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "u/%010u-%020llu", id.sender,
                static_cast<unsigned long long>(id.seq));
  return buf;
}

}  // namespace

AtomicBroadcast::AtomicBroadcast(Env& env, ConsensusService& consensus,
                                 DeliverySink& sink, Options options)
    : env_(env), cons_(consensus), sink_(sink), options_(options),
      storage_(env.storage(), "ab"), agreed_(env.group_size()),
      tracer_(env.tracer()) {
  options_.validate();
  bind_metrics();
}

void AtomicBroadcast::bind_metrics() {
  auto* registry = env_.metrics_registry();
  if (registry == nullptr) return;
  const obs::Labels labels{{"node", std::to_string(env_.self())}};
  metrics_group_ = registry->group();
  metrics_group_.bind("ab_broadcasts", labels, &metrics_.broadcasts);
  metrics_group_.bind("ab_delivered", labels, &metrics_.delivered);
  metrics_group_.bind("ab_rounds_completed", labels,
                      &metrics_.rounds_completed);
  metrics_group_.bind("ab_replayed_rounds", labels, &metrics_.replayed_rounds);
  metrics_group_.bind("ab_proposals", labels, &metrics_.proposals);
  metrics_group_.bind("ab_empty_proposals", labels,
                      &metrics_.empty_proposals);
  metrics_group_.bind("ab_gossip_sent", labels, &metrics_.gossip_sent);
  metrics_group_.bind("ab_gossip_received", labels,
                      &metrics_.gossip_received);
  metrics_group_.bind("ab_gossip_bytes_sent", labels,
                      &metrics_.gossip_bytes_sent);
  metrics_group_.bind("ab_digest_sent", labels, &metrics_.digest_sent);
  metrics_group_.bind("ab_delta_sent", labels, &metrics_.delta_sent);
  metrics_group_.bind("ab_delta_msgs_sent", labels,
                      &metrics_.delta_msgs_sent);
  metrics_group_.bind("ab_delta_rejected", labels, &metrics_.delta_rejected);
  metrics_group_.bind("ab_gossip_suppressed", labels,
                      &metrics_.gossip_suppressed);
  metrics_group_.bind("ab_proposal_cache_hits", labels,
                      &metrics_.proposal_cache_hits);
  metrics_group_.bind("ab_state_sent", labels, &metrics_.state_sent);
  metrics_group_.bind("ab_state_sent_trimmed", labels,
                      &metrics_.state_sent_trimmed);
  metrics_group_.bind("ab_state_applied", labels, &metrics_.state_applied);
  metrics_group_.bind("ab_checkpoints", labels, &metrics_.checkpoints);
  metrics_group_.bind("ab_corrupt_records", labels,
                      &metrics_.corrupt_records);
  batch_size_hist_ = &registry->histogram("ab_batch_size");
}

void AtomicBroadcast::start(bool recovering, std::uint64_t incarnation) {
  ABCAST_CHECK_MSG(!started_, "atomic broadcast started twice");
  started_ = true;
  incarnation_ = incarnation;
  counter_ = 0;
  peers_.assign(env_.group_size(), PeerView{});

  if (recovering) {
    // §5.1: resume from the logged (k, Agreed) checkpoint when present;
    // otherwise replay() reconstructs everything from Consensus decisions.
    // A checkpoint that fails its seal or does not decode is a torn write:
    // discard it and recover as if it never existed — replay (and, with
    // truncated logs, a state transfer from a peer) rebuilds the sequence.
    if (options_.checkpointing) {
      if (auto raw = storage_.get(kCkptKey)) {
        bool ok = false;
        if (auto rec = unseal_record(*raw)) {
          try {
            BufReader r(*rec);
            const std::uint64_t k = r.u64();
            AgreedLog agreed = AgreedLog::decode(r);
            r.expect_done();
            k_ = k;
            agreed_ = std::move(agreed);
            ok = true;
          } catch (const CodecError&) {
          }
        }
        if (ok) {
          // Rebuild the application: install the checkpoint base (or the
          // initial state) and re-deliver the explicit suffix.
          if (agreed_.base()) {
            sink_.install_checkpoint(agreed_.base()->state);
          }
          trace(obs::EventKind::kCheckpoint, k_, MsgId{}, agreed_.total(),
                "load");
          std::uint64_t pos = agreed_.total() - agreed_.suffix().size();
          for (const auto& m : agreed_.suffix()) {
            trace(obs::EventKind::kDeliver, k_, m.id, pos++);
            sink_.deliver(m);
          }
        } else {
          metrics_.corrupt_records += 1;
          k_ = 0;
          agreed_ = AgreedLog(env_.group_size());
          storage_.erase(kCkptKey);
        }
      }
    }
    // §5.4: restore the durable Unordered set. A damaged element was torn
    // by a crash inside the broadcast() that logged it — the call never
    // returned, so dropping the message does not violate Validity.
    if (options_.log_unordered) {
      if (options_.incremental_unordered_log) {
        for (const auto& key : storage_.keys_with_prefix("u/")) {
          bool ok = false;
          if (auto raw = storage_.get(key)) {
            if (auto rec = unseal_record(*raw)) {
              try {
                BufReader r(*rec);
                AppMsg m = AppMsg::decode(r);
                r.expect_done();
                unordered_.emplace(m.id, std::move(m));
                ok = true;
              } catch (const CodecError&) {
              }
            }
          }
          if (!ok) {
            metrics_.corrupt_records += 1;
            storage_.erase(key);
          }
        }
      } else if (auto raw = storage_.get(kUnorderedKey)) {
        bool ok = false;
        if (auto rec = unseal_record(*raw)) {
          try {
            for (auto& m : decode_batch(*rec)) {
              unordered_.emplace(m.id, std::move(m));
            }
            ok = true;
          } catch (const CodecError&) {
            unordered_.clear();
          }
        }
        if (!ok) {
          metrics_.corrupt_records += 1;
          storage_.erase(kUnorderedKey);
        }
      }
    }
    // The paper's replay(): re-apply every locally decided instance from
    // k_ on. Consensus has already reloaded its decision log, so each
    // iteration is a local lookup.
    const std::uint64_t k_before = k_;
    drain();
    metrics_.replayed_rounds = k_ - k_before;
    prune_unordered();
  }

  gossip_tick();
  if (options_.checkpointing) {
    env_.schedule_after(options_.checkpoint_period,
                        [this] { checkpoint_tick(); });
  }
  maybe_propose();
}

MsgId AtomicBroadcast::broadcast(Bytes payload) {
  ABCAST_CHECK_MSG(started_, "broadcast before start");
  counter_ += 1;
  AppMsg m;
  m.id = MsgId{env_.self(), make_seq(incarnation_, counter_)};
  m.payload = std::move(payload);
  const MsgId id = m.id;
  unordered_.emplace(id, std::move(m));
  touch_unordered();
  metrics_.broadcasts += 1;
  trace(obs::EventKind::kBroadcast, k_, id);

  if (options_.log_unordered) {
    // §5.4: make A-broadcast durable before returning, so the caller may
    // proceed without waiting for the ordering round.
    if (options_.incremental_unordered_log) {
      // §5.5: log only the new element, not the whole set.
      storage_.put(unordered_item_key(id),
                   seal_record(encode_to_bytes(unordered_.at(id))));
    } else {
      log_unordered_set();
    }
  }

  if (options_.eager_dissemination) {
    if (options_.digest_gossip) {
      // The receiver-side contiguity guard makes single-suffix pushes safe:
      // a datagram racing ahead of its predecessor on the non-FIFO channel
      // is simply rejected until the predecessor lands (or the next
      // anti-entropy round repairs it). Ship each peer only what our view
      // says it is missing.
      send_eager_deltas();
    } else {
      // Send the WHOLE unordered set, exactly like a gossip tick — never a
      // single message. Correctness depends on gossip sets being monotone:
      // any process holding an unagreed message also holds that sender's
      // earlier unagreed ones, which is what makes the vector-clock
      // duplicate-suppression rule in AgreedLog safe. A single-message
      // datagram racing ahead of its predecessor on the non-FIFO channel
      // would let a proposal contain (p,s+1) without (p,s) and drop (p,s)
      // everywhere.
      send_gossip_now();
    }
  }

  maybe_propose();
  return id;
}

void AtomicBroadcast::log_unordered_set() {
  std::vector<AppMsg> all;
  all.reserve(unordered_.size());
  for (const auto& [id, m] : unordered_) all.push_back(m);
  storage_.put(kUnorderedKey, seal_record(encode_batch(all)));
}

void AtomicBroadcast::erase_unordered_record(const MsgId& id) {
  if (!options_.log_unordered) return;
  if (options_.incremental_unordered_log) {
    storage_.erase(unordered_item_key(id));
  }
  // Non-incremental mode rewrites the whole set on the next broadcast; no
  // need to persist the shrink eagerly (resurrected messages are filtered
  // against Agreed on recovery).
}

void AtomicBroadcast::prune_unordered() {
  for (auto it = unordered_.begin(); it != unordered_.end();) {
    if (agreed_.contains(it->first)) {
      erase_unordered_record(it->first);
      it = unordered_.erase(it);
      touch_unordered();
    } else {
      ++it;
    }
  }
}

void AtomicBroadcast::maybe_propose() {
  // Paper Fig. 2, sequencer task: start round k only with something to
  // propose or when gossip revealed we lag (then even an empty proposal is
  // fine — the decision is already locked without our input).
  if (cons_.proposed(k_)) return;
  if (unordered_.empty() && gossip_k_ <= k_) return;
  if (!proposal_cache_valid_) {
    // Encode straight off the map — it already iterates in MsgId order, the
    // deterministic batch order — and keep the bytes until unordered_ next
    // changes: consecutive rounds proposing the same backlog (common while
    // peers catch up) reuse the encoding instead of re-serializing it.
    BufWriter w;
    w.u32(checked_u32(unordered_.size()));
    for (const auto& [id, m] : unordered_) m.encode(w);
    proposal_cache_ = std::move(w).take();
    proposal_cache_valid_ = true;
  } else {
    metrics_.proposal_cache_hits += 1;
  }
  metrics_.proposals += 1;
  if (unordered_.empty()) metrics_.empty_proposals += 1;
  cons_.propose(k_, proposal_cache_);
}

void AtomicBroadcast::on_decided(InstanceId k, const Bytes& value) {
  (void)value;
  if (k < k_) return;  // stale: already applied (e.g. via state transfer)
  drain();
}

void AtomicBroadcast::drain() {
  while (auto decided = cons_.decision(k_)) {
    apply_batch(*decided);
  }
  maybe_propose();
}

void AtomicBroadcast::apply_batch(const Bytes& value) {
  auto batch = decode_batch(value);
  auto delivered = agreed_.append(std::move(batch));
  if (batch_size_hist_ != nullptr) batch_size_hist_->observe(delivered.size());
  std::uint64_t pos = agreed_.total() - delivered.size();
  for (auto& m : delivered) {
    erase_unordered_record(m.id);
    if (unordered_.erase(m.id) > 0) touch_unordered();
    metrics_.delivered += 1;
    trace(obs::EventKind::kDeliver, k_, m.id, pos++);
    sink_.deliver(m);
  }
  // Messages that were in the decided batch but skipped as stale are also
  // covered by Agreed now; drop any lingering unordered copies.
  prune_unordered();
  k_ += 1;
  metrics_.rounds_completed += 1;
  gossip_dirty_ = true;  // round + total advanced: peers should hear about it
}

std::vector<std::uint64_t> AtomicBroadcast::compute_cover() const {
  std::vector<std::uint64_t> cover(env_.group_size(), 0);
  for (std::size_t p = 0; p < cover.size(); ++p) {
    cover[p] = agreed_.vc().last_of(static_cast<ProcessId>(p));
  }
  for (const auto& [id, m] : unordered_) {
    if (id.sender < cover.size() && seq_extends(cover[id.sender], id.seq)) {
      cover[id.sender] = id.seq;
    }
  }
  return cover;
}

void AtomicBroadcast::send_gossip_now() {
  if (options_.digest_gossip) {
    // Anti-entropy advertisement: a few bytes per sender, independent of
    // how many messages are waiting. want_reply pulls deltas from peers.
    const Wire wire =
        make_digest_wire(k_, agreed_.total(), /*want_reply=*/true,
                         compute_cover(), {});
    metrics_.gossip_bytes_sent += wire.payload.size() * env_.group_size();
    env_.multisend(wire);
    metrics_.gossip_sent += 1;
    metrics_.digest_sent += 1;
    trace(obs::EventKind::kGossipSend, k_, MsgId{}, unordered_.size(),
          "digest");
    return;
  }
  // Full-set mode: encode the datagram straight off unordered_ — no
  // intermediate vector of AppMsg copies — and let multisend share the one
  // encoding across every recipient.
  BufWriter w;
  w.u64(k_);
  w.u64(agreed_.total());
  w.u32(checked_u32(unordered_.size()));
  for (const auto& [id, m] : unordered_) m.encode(w);
  const Wire wire{MsgType::kAbGossip, std::move(w).take()};
  metrics_.gossip_bytes_sent += wire.payload.size() * env_.group_size();
  env_.multisend(wire);
  metrics_.gossip_sent += 1;
  trace(obs::EventKind::kGossipSend, k_, MsgId{}, unordered_.size(), "full");
}

bool AtomicBroadcast::gossip_needed() const {
  if (gossip_dirty_) return true;
  if (gossip_k_ > k_) return true;  // we lag: keep soliciting help
  const auto my_cover =
      options_.digest_gossip ? compute_cover() : std::vector<std::uint64_t>{};
  for (std::size_t p = 0; p < peers_.size(); ++p) {
    if (p == env_.self()) continue;
    const PeerView& view = peers_[p];
    if (!view.heard) return true;
    if (view.k < k_ || view.total < agreed_.total()) return true;
    if (!my_cover.empty() && view.cover.size() == my_cover.size()) {
      for (std::size_t q = 0; q < my_cover.size(); ++q) {
        // Either direction: the peer lags us (keep advertising so it pulls)
        // or we lag the peer (our digest is the pull).
        if (view.cover[q] != my_cover[q]) return true;
      }
    }
  }
  return false;
}

void AtomicBroadcast::gossip_tick() {
  bool send = true;
  if (options_.suppress_idle_gossip) {
    idle_ticks_ += 1;
    // Keepalive floor: even a fully idle group gossips every N periods, so
    // the fair-lossy channel still delivers our view infinitely often (the
    // round-lag and cover-lag repairs below depend on that).
    send = idle_ticks_ >= options_.gossip_keepalive_periods ||
           gossip_needed();
  }
  if (send) {
    send_gossip_now();
    idle_ticks_ = 0;
    gossip_dirty_ = false;
  } else {
    metrics_.gossip_suppressed += 1;
  }
  env_.schedule_after(options_.gossip_period, [this] { gossip_tick(); });
}

void AtomicBroadcast::send_eager_deltas() {
  const auto my_cover = compute_cover();
  for (std::size_t p = 0; p < peers_.size(); ++p) {
    if (p == env_.self()) continue;
    PeerView& view = peers_[p];
    if (view.cover.size() != my_cover.size()) {
      // No digest heard from this peer yet: assume it holds our agreed
      // prefix and nothing more. Wrong guesses are cheap — its contiguity
      // guard drops what it cannot take and the next anti-entropy round
      // repairs the view. The agreed prefix is globally decided, so it
      // doubles as the confirmed baseline for root-jump planning.
      view.cover.resize(my_cover.size(), 0);
      for (std::size_t q = 0; q < view.cover.size(); ++q) {
        view.cover[q] = agreed_.vc().last_of(static_cast<ProcessId>(q));
      }
      view.confirmed = view.cover;
    }
    const auto plan = plan_delta(unordered_, view.cover, view.confirmed);
    if (plan.empty()) continue;
    send_delta_chunks(static_cast<ProcessId>(p), view, /*want_reply=*/false,
                      my_cover, plan, "eager");
  }
}

std::size_t AtomicBroadcast::send_delta_chunks(
    ProcessId to, PeerView& view, bool want_reply,
    const std::vector<std::uint64_t>& my_cover,
    const std::vector<const AppMsg*>& plan, const char* detail) {
  const std::size_t header = digest_header_bytes(my_cover.size());
  const std::size_t budget = std::max(options_.max_delta_bytes, header + 1);
  std::vector<const AppMsg*> chunk;
  std::size_t chunk_bytes = header;
  std::size_t shipped = 0;
  const auto flush = [&] {
    const Wire wire =
        make_digest_wire(k_, agreed_.total(), want_reply, my_cover, chunk);
    metrics_.gossip_bytes_sent += wire.payload.size();
    env_.send(to, wire);
    metrics_.delta_sent += 1;
    metrics_.delta_msgs_sent += chunk.size();
    // Optimistically assume delivery so back-to-back broadcasts ship each
    // message once; the peer's next digest overwrites with the truth. Only
    // messages actually handed to a send count — a message that never fit
    // must not be marked covered, or repair for this peer would livelock.
    for (const auto* m : chunk) {
      if (m->id.sender < view.cover.size()) view.cover[m->id.sender] = m->id.seq;
    }
    shipped += chunk.size();
    trace(obs::EventKind::kGossipSend, k_, MsgId{}, chunk.size(), detail);
    chunk.clear();
    chunk_bytes = header;
  };
  bool skipping = false;
  ProcessId skip_sender = 0;
  for (const AppMsg* m : plan) {
    if (skipping && m->id.sender == skip_sender) continue;
    skipping = false;
    const std::size_t entry = delta_entry_bytes(*m);
    if (header + entry > budget) {
      // This one message alone overflows a datagram; no chunking can ship
      // it. Skip the rest of its sender's suffix too — without this link
      // the peer's guard would park everything after it anyway — and leave
      // view.cover honest so we never believe the peer has it.
      skipping = true;
      skip_sender = m->id.sender;
      continue;
    }
    if (chunk_bytes + entry > budget) flush();
    chunk.push_back(m);
    chunk_bytes += entry;
  }
  if (!chunk.empty() || (want_reply && shipped == 0)) flush();
  return shipped;
}

void AtomicBroadcast::maybe_send_delta_reply(ProcessId to) {
  PeerView& view = peers_[to];
  const auto my_cover = compute_cover();
  if (view.cover.size() != my_cover.size()) return;
  const auto plan = plan_delta(unordered_, view.cover, view.confirmed);
  bool i_lack = false;
  for (std::size_t q = 0; q < my_cover.size(); ++q) {
    if (view.confirmed.size() == my_cover.size() &&
        view.confirmed[q] > my_cover[q]) {
      i_lack = true;
      break;
    }
  }
  // Nothing to ship and nothing to pull: the exchange is settled. This is
  // what terminates digest ping-pong between even peers.
  if (plan.empty() && !i_lack) return;
  const TimePoint now = env_.now();
  if (now < view.next_delta_ok) return;  // rate limit per peer
  view.next_delta_ok = now + options_.delta_reply_interval;
  send_delta_chunks(to, view, /*want_reply=*/i_lack, my_cover, plan, "delta");
}

std::size_t AtomicBroadcast::merge_delta(std::vector<AppMsg> msgs) {
  if (msgs.empty()) return 0;
  // Contiguity guard: accept a message only if it extends the local
  // per-sender coverage. This is what keeps the Unordered set a gap-free
  // chain above the Agreed vector clock no matter how deltas are pushed,
  // reordered, duplicated, or lost — the property the AgreedLog
  // duplicate-suppression rule depends on.
  static constexpr std::size_t kReorderBufCap = 1024;
  std::size_t rejected = 0;
  auto cover = compute_cover();
  for (auto& m : msgs) {
    const MsgId id = m.id;
    if (id.sender >= cover.size()) continue;  // malformed sender: drop
    // At or below our frontier: already held or agreed. (An orphaned
    // prior-incarnation suffix also lands here; it travels via its
    // sender's proposals, never via gossip — see DESIGN.md.)
    if (id.seq <= cover[id.sender]) continue;
    if (!seq_extends(cover[id.sender], id.seq)) {
      // Racing ahead of its predecessor on the non-FIFO channel: park it
      // until the chain below fills in, so the reorder costs no retransmit.
      metrics_.delta_rejected += 1;
      rejected += 1;
      if (reorder_buf_.size() < kReorderBufCap) {
        reorder_buf_.try_emplace(id, std::move(m));
      }
      continue;
    }
    cover[id.sender] = id.seq;
    const auto [it, inserted] = unordered_.try_emplace(id, std::move(m));
    if (inserted) touch_unordered();
  }
  // Drain the reorder buffer: repeatedly admit entries the guard now
  // accepts (MsgId order walks each sender's parked run in seq order, so
  // one sweep usually finishes; a second confirms the fixpoint). Entries
  // at or below cover are stale — drop them here, which also garbage
  // collects the buffer as rounds advance.
  bool progress = !reorder_buf_.empty();
  while (progress) {
    progress = false;
    for (auto it = reorder_buf_.begin(); it != reorder_buf_.end();) {
      const MsgId id = it->first;
      if (id.seq <= cover[id.sender]) {
        it = reorder_buf_.erase(it);
        continue;
      }
      if (!seq_extends(cover[id.sender], id.seq)) {
        ++it;
        continue;
      }
      cover[id.sender] = id.seq;
      const auto [uit, inserted] =
          unordered_.try_emplace(id, std::move(it->second));
      if (inserted) touch_unordered();
      it = reorder_buf_.erase(it);
      progress = true;
    }
  }
  return rejected;
}

void AtomicBroadcast::maybe_send_pull(ProcessId to) {
  // A rejected delta means the sender holds something we cannot take yet —
  // usually a push that overtook its predecessor. Its optimistic view now
  // believes we have it, so waiting for the periodic tick would put a whole
  // gossip period into the delivery tail. Instead, advertise our true cover
  // back right away (rate-limited); the sender re-plans a delta from it.
  PeerView& view = peers_[to];
  const TimePoint now = env_.now();
  if (now < view.next_pull_ok) return;
  view.next_pull_ok = now + options_.delta_reply_interval;
  const Wire wire = make_digest_wire(k_, agreed_.total(),
                                     /*want_reply=*/true, compute_cover(), {});
  metrics_.gossip_bytes_sent += wire.payload.size();
  env_.send(to, wire);
  metrics_.digest_sent += 1;
  trace(obs::EventKind::kGossipSend, k_, MsgId{}, 0, "pull");
}

void AtomicBroadcast::handle_round_info(ProcessId from, std::uint64_t peer_k,
                                        std::uint64_t peer_total) {
  if (peer_k > k_) {
    gossip_k_ = std::max(gossip_k_, peer_k);  // the sender is ahead
  } else if (options_.state_transfer && k_ > peer_k + options_.delta) {
    send_state(from, peer_total);  // Fig. 3 line d: sender lags far behind
  } else if (peer_k < k_) {
    // The sender lags within Δ (or state transfer is off): push it the
    // decisions it is missing — its original deciders may be gone.
    cons_.offer_decisions(from, peer_k, 16);
  }
}

void AtomicBroadcast::on_message(ProcessId from, const Wire& msg) {
  if (msg.type == MsgType::kAbGossip) {
    auto g = decode_from_bytes<GossipMsg>(msg.payload);
    metrics_.gossip_received += 1;
    trace(obs::EventKind::kGossipRecv, g.k, MsgId{}, from, "full");
    if (from < peers_.size()) {
      PeerView& view = peers_[from];
      view.heard = true;
      view.k = g.k;
      view.total = g.total;
    }
    for (auto& m : g.unordered) {
      const MsgId id = m.id;
      if (agreed_.contains(id)) continue;
      const auto [it, inserted] = unordered_.try_emplace(id, std::move(m));
      if (inserted) touch_unordered();
    }
    handle_round_info(from, g.k, g.total);
    drain();
    return;
  }
  if (msg.type == MsgType::kAbGossipDigest) {
    auto g = decode_from_bytes<DigestMsg>(msg.payload);
    metrics_.gossip_received += 1;
    trace(obs::EventKind::kGossipRecv, g.k, MsgId{}, from,
          g.msgs.empty() ? "digest" : "delta");
    if (from < peers_.size() && g.cover.size() == env_.group_size()) {
      PeerView& view = peers_[from];
      view.heard = true;
      view.k = g.k;
      view.total = g.total;
      view.cover = g.cover;  // received truth overwrites optimism
      view.confirmed = std::move(g.cover);
    }
    const std::size_t rejected = merge_delta(std::move(g.msgs));
    handle_round_info(from, g.k, g.total);
    // peers_ is empty until start(); both hosts validate the frame sender
    // today, but a digest arriving early (or from a future host without
    // sender validation) must not index past it.
    if (from != env_.self() && from < peers_.size()) {
      if (g.want_reply) maybe_send_delta_reply(from);
      if (rejected > 0) maybe_send_pull(from);
    }
    drain();
    return;
  }
  if (msg.type == MsgType::kAbState) {
    auto s = decode_from_bytes<StateMsg>(msg.payload);
    if (options_.state_transfer && k_ + options_.delta < s.k) {
      if (s.trimmed) {
        adopt_trimmed_state(s.k, s.base_total, s.tail);
      } else {
        adopt_state(s.k, std::move(s.agreed));  // Fig. 3 lines e–f
      }
    } else if (s.k > k_) {
      gossip_k_ = std::max(gossip_k_, s.k);  // small de-synchronization
    }
    return;
  }
  ABCAST_CHECK_MSG(false, "unexpected ab message type");
}

void AtomicBroadcast::send_state(ProcessId to,
                                 std::uint64_t recipient_total) {
  if (!options_.state_transfer) return;
  // Throttle per peer: gossip arrives every gossip_period from a lagging
  // process; one state message per period is plenty.
  const TimePoint now = env_.now();
  auto it = last_state_sent_.find(to);
  if (it != last_state_sent_.end() &&
      now - it->second < options_.gossip_period) {
    return;
  }
  last_state_sent_[to] = now;
  ABCAST_CHECK(k_ >= 1);
  StateMsg s;
  s.k = k_ - 1;
  // §5.3 optimization: when our whole prefix is still explicit (no
  // application checkpoint folded it away) and we know where the recipient
  // stands, ship only the tail it is missing.
  if (options_.trimmed_state_transfer && !agreed_.base() &&
      recipient_total <= agreed_.suffix().size()) {
    s.trimmed = true;
    s.base_total = recipient_total;
    s.tail = std::vector<AppMsg>(agreed_.suffix().begin() +
                                     static_cast<std::ptrdiff_t>(recipient_total),
                                 agreed_.suffix().end());
    metrics_.state_sent_trimmed += 1;
  } else {
    s.agreed = agreed_;
  }
  env_.send(to, make_wire(MsgType::kAbState, s));
  metrics_.state_sent += 1;
  trace(obs::EventKind::kStateTransfer, s.k, MsgId{}, agreed_.total(),
        s.trimmed ? "send_trim" : "send");
}

void AtomicBroadcast::adopt_trimmed_state(std::uint64_t state_k,
                                          std::uint64_t base_total,
                                          const std::vector<AppMsg>& tail) {
  // The omitted prefix must be exactly what we already delivered (total
  // order makes equal counts mean equal prefixes). If we crashed since the
  // gossip that advertised our count, our position may be smaller — then
  // this transfer does not apply; the next gossip advertises the new count
  // and the sender re-trims.
  if (agreed_.total() < base_total) return;
  trace(obs::EventKind::kStateTransfer, state_k, MsgId{},
        base_total + tail.size(), "adopt_trim");
  auto delivered = agreed_.append_sequence(tail);
  std::uint64_t pos = agreed_.total() - delivered.size();
  for (const auto& m : delivered) {
    erase_unordered_record(m.id);
    if (unordered_.erase(m.id) > 0) touch_unordered();
    metrics_.delivered += 1;
    trace(obs::EventKind::kDeliver, k_, m.id, pos++);
    sink_.deliver(m);
  }
  k_ = state_k + 1;
  gossip_dirty_ = true;
  metrics_.state_applied += 1;
  prune_unordered();
  if (options_.checkpointing) take_checkpoint();
  drain();
}

void AtomicBroadcast::adopt_state(std::uint64_t state_k, AgreedLog incoming) {
  // Skip the Consensus instances we missed: replace our queue wholesale
  // (total order guarantees ours is a prefix of the incoming one), rebuild
  // the application, and resume the sequencer from the sender's round.
  trace(obs::EventKind::kStateTransfer, state_k, MsgId{}, incoming.total(),
        "adopt");
  sink_.install_checkpoint(incoming.base() ? incoming.base()->state
                                           : Bytes{});
  std::uint64_t pos = incoming.total() - incoming.suffix().size();
  for (const auto& m : incoming.suffix()) {
    trace(obs::EventKind::kDeliver, k_, m.id, pos++);
    sink_.deliver(m);
  }
  agreed_ = std::move(incoming);
  k_ = state_k + 1;
  gossip_dirty_ = true;
  metrics_.state_applied += 1;
  prune_unordered();
  if (options_.checkpointing) {
    // Make the jump durable; otherwise a crash would replay from the old
    // checkpoint into truncated territory.
    take_checkpoint();
  }
  drain();
}

void AtomicBroadcast::checkpoint_tick() {
  take_checkpoint();
  env_.schedule_after(options_.checkpoint_period,
                      [this] { checkpoint_tick(); });
}

void AtomicBroadcast::take_checkpoint() {
  // §5.2 (Fig. 4 line b): fold the delivered suffix into an application
  // checkpoint before logging, bounding both the record and the log.
  if (options_.app_checkpointing) {
    agreed_.compact(sink_.take_checkpoint());
  }
  BufWriter w;
  w.u64(k_);
  agreed_.encode(w);
  storage_.put(kCkptKey, seal_record(w.data()));
  metrics_.checkpoints += 1;
  trace(obs::EventKind::kCheckpoint, k_, MsgId{}, agreed_.total(), "take");
  if (options_.truncate_logs) {
    // Fig. 4 line c, widened to consensus-internal records. Keep a Δ-deep
    // tail so any peer close enough NOT to trigger a state transfer can
    // still run the instances it needs (see consensus.hpp truncate_below).
    const std::uint64_t bound = k_ > options_.delta ? k_ - options_.delta : 0;
    cons_.truncate_below(bound);
  }
}

void AtomicBroadcast::on_peer_truncated(ProcessId from, InstanceId k) {
  (void)k;
  // The peer asked about an instance we truncated; only a state transfer
  // can catch it up (Options::validate() guarantees it is enabled). Its
  // position is unknown on this path: send the full state.
  if (k_ >= 1) send_state(from, std::numeric_limits<std::uint64_t>::max());
}

}  // namespace abcast::core
