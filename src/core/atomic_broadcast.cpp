#include "core/atomic_broadcast.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/logging.hpp"
#include "core/ab_wire.hpp"
#include "core/gossip_wire.hpp"
#include "storage/sealed_record.hpp"

namespace abcast::core {
namespace {

// GossipMsg (kAbGossip) and StateChunkMsg (kAbStateChunk) live in
// core/ab_wire.hpp; DigestMsg (kAbGossipDigest) in core/gossip_wire.hpp,
// next to the copy-free encoder and the delta planner. Every payload layout
// has a single definition site and a round-trip test (enforced by
// tools/ablint).

constexpr const char* kCkptKey = "ckpt";
constexpr const char* kUnorderedKey = "unord";

std::string unordered_item_key(const MsgId& id) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "u/%010u-%020llu", id.sender,
                static_cast<unsigned long long>(id.seq));
  return buf;
}

}  // namespace

AtomicBroadcast::AtomicBroadcast(Env& env, ConsensusService& consensus,
                                 DeliverySink& sink, Options options)
    : env_(env), cons_(consensus), sink_(sink), options_(options),
      storage_(env.storage(), "ab"), agreed_(env.group_size()),
      tracer_(env.tracer()) {
  options_.validate();
  bind_metrics();
}

void AtomicBroadcast::bind_metrics() {
  auto* registry = env_.metrics_registry();
  if (registry == nullptr) return;
  const obs::Labels labels{{"node", std::to_string(env_.self())}};
  metrics_group_ = registry->group();
  metrics_group_.bind("ab_broadcasts", labels, &metrics_.broadcasts);
  metrics_group_.bind("ab_delivered", labels, &metrics_.delivered);
  metrics_group_.bind("ab_rounds_completed", labels,
                      &metrics_.rounds_completed);
  metrics_group_.bind("ab_replayed_rounds", labels, &metrics_.replayed_rounds);
  metrics_group_.bind("ab_proposals", labels, &metrics_.proposals);
  metrics_group_.bind("ab_empty_proposals", labels,
                      &metrics_.empty_proposals);
  metrics_group_.bind("ab_gossip_sent", labels, &metrics_.gossip_sent);
  metrics_group_.bind("ab_gossip_received", labels,
                      &metrics_.gossip_received);
  metrics_group_.bind("ab_gossip_bytes_sent", labels,
                      &metrics_.gossip_bytes_sent);
  metrics_group_.bind("ab_digest_sent", labels, &metrics_.digest_sent);
  metrics_group_.bind("ab_delta_sent", labels, &metrics_.delta_sent);
  metrics_group_.bind("ab_delta_msgs_sent", labels,
                      &metrics_.delta_msgs_sent);
  metrics_group_.bind("ab_delta_rejected", labels, &metrics_.delta_rejected);
  metrics_group_.bind("ab_gossip_suppressed", labels,
                      &metrics_.gossip_suppressed);
  metrics_group_.bind("ab_proposal_cache_hits", labels,
                      &metrics_.proposal_cache_hits);
  metrics_group_.bind("ab_proposals_event_triggered", labels,
                      &metrics_.proposals_event_triggered);
  metrics_group_.bind("ab_state_sent", labels, &metrics_.state_sent);
  metrics_group_.bind("ab_state_sent_trimmed", labels,
                      &metrics_.state_sent_trimmed);
  metrics_group_.bind("ab_state_applied", labels, &metrics_.state_applied);
  metrics_group_.bind("ab_state_chunks_sent", labels,
                      &metrics_.state_chunks_sent);
  metrics_group_.bind("ab_state_chunk_bytes_sent", labels,
                      &metrics_.state_chunk_bytes_sent);
  metrics_group_.bind("ab_state_chunks_applied", labels,
                      &metrics_.state_chunks_applied);
  metrics_group_.bind("ab_state_snapshots_applied", labels,
                      &metrics_.state_snapshots_applied);
  metrics_group_.bind("ab_state_resumes", labels, &metrics_.state_resumes);
  metrics_group_.bind("ab_checkpoints", labels, &metrics_.checkpoints);
  metrics_group_.bind("ab_corrupt_records", labels,
                      &metrics_.corrupt_records);
  batch_size_hist_ = &registry->histogram("ab_batch_size");
  commit_gap_hist_ = &registry->histogram("ab_commit_gap");
}

void AtomicBroadcast::start(bool recovering, std::uint64_t incarnation) {
  ABCAST_CHECK_MSG(!started_, "atomic broadcast started twice");
  started_ = true;
  incarnation_ = incarnation;
  counter_ = 0;
  peers_.assign(env_.group_size(), PeerView{});

  if (recovering) {
    // §5.1: resume from the logged (k, Agreed) checkpoint when present;
    // otherwise replay() reconstructs everything from Consensus decisions.
    // A checkpoint that fails its seal or does not decode is a torn write:
    // discard it and recover as if it never existed — replay (and, with
    // truncated logs, a state transfer from a peer) rebuilds the sequence.
    if (options_.checkpointing) {
      if (auto raw = storage_.get(kCkptKey)) {
        bool ok = false;
        if (auto rec = unseal_record(*raw)) {
          try {
            BufReader r(*rec);
            const std::uint64_t k = r.u64();
            AgreedLog agreed = AgreedLog::decode(r);
            r.expect_done();
            k_ = k;
            agreed_ = std::move(agreed);
            ok = true;
          } catch (const CodecError&) {
          }
        }
        if (ok) {
          // Rebuild the application: install the checkpoint base (or the
          // initial state) and re-deliver the explicit suffix.
          if (agreed_.base()) {
            sink_.install_checkpoint(agreed_.base()->state);
          }
          trace(obs::EventKind::kCheckpoint, k_, MsgId{}, agreed_.total(),
                "load");
          std::uint64_t pos = agreed_.total() - agreed_.suffix().size();
          for (const auto& m : agreed_.suffix()) {
            trace(obs::EventKind::kDeliver, k_, m.id, pos++);
            sink_.deliver(m);
          }
        } else {
          metrics_.corrupt_records += 1;
          k_ = 0;
          agreed_ = AgreedLog(env_.group_size());
          storage_.erase(kCkptKey);
        }
      }
    }
    // §5.4: restore the durable Unordered set. A damaged element was torn
    // by a crash inside the broadcast() that logged it — the call never
    // returned, so dropping the message does not violate Validity.
    if (options_.log_unordered) {
      if (options_.incremental_unordered_log) {
        for (const auto& key : storage_.keys_with_prefix("u/")) {
          bool ok = false;
          if (auto raw = storage_.get(key)) {
            if (auto rec = unseal_record(*raw)) {
              try {
                BufReader r(*rec);
                AppMsg m = AppMsg::decode(r);
                r.expect_done();
                unordered_.emplace(m.id, std::move(m));
                ok = true;
              } catch (const CodecError&) {
              }
            }
          }
          if (!ok) {
            metrics_.corrupt_records += 1;
            storage_.erase(key);
          }
        }
      } else if (auto raw = storage_.get(kUnorderedKey)) {
        bool ok = false;
        if (auto rec = unseal_record(*raw)) {
          try {
            for (auto& m : decode_batch(*rec)) {
              unordered_.emplace(m.id, std::move(m));
            }
            ok = true;
          } catch (const CodecError&) {
            unordered_.clear();
          }
        }
        if (!ok) {
          metrics_.corrupt_records += 1;
          storage_.erase(kUnorderedKey);
        }
      }
    }
    // The paper's replay(): re-apply every locally decided instance from
    // k_ on. Consensus has already reloaded its decision log, so each
    // iteration is a local lookup.
    const std::uint64_t k_before = k_;
    drain();
    metrics_.replayed_rounds = k_ - k_before;
    prune_unordered();
    if (options_.pipeline_window > 1) rebuild_window_state();
  }

  gossip_tick();
  if (options_.checkpointing) {
    env_.schedule_after(options_.checkpoint_period,
                        [this] { checkpoint_tick(); });
  }
  maybe_propose();
}

MsgId AtomicBroadcast::broadcast(Bytes payload) {
  ABCAST_CHECK_MSG(started_, "broadcast before start");
  counter_ += 1;
  AppMsg m;
  m.id = MsgId{env_.self(), make_seq(incarnation_, counter_)};
  m.payload = std::move(payload);
  const MsgId id = m.id;
  unordered_.emplace(id, std::move(m));
  touch_unordered();
  metrics_.broadcasts += 1;
  trace(obs::EventKind::kBroadcast, k_, id);

  if (options_.log_unordered) {
    // §5.4: make A-broadcast durable before returning, so the caller may
    // proceed without waiting for the ordering round.
    if (options_.incremental_unordered_log) {
      // §5.5: log only the new element, not the whole set.
      storage_.put(unordered_item_key(id),
                   seal_record(encode_to_bytes(unordered_.at(id))));
    } else {
      log_unordered_set();
    }
    // Durability barrier for deferred-sync backends (group-commit segmented
    // log): §5.4's contract is that the record survives a crash once this
    // call returns, not merely once it is appended. No-op on backends whose
    // put is already synchronous.
    storage_.flush();
  }

  if (options_.eager_dissemination) {
    if (options_.digest_gossip) {
      // The receiver-side contiguity guard makes single-suffix pushes safe:
      // a datagram racing ahead of its predecessor on the non-FIFO channel
      // is simply rejected until the predecessor lands (or the next
      // anti-entropy round repairs it). Ship each peer only what our view
      // says it is missing.
      send_eager_deltas();
    } else {
      // Send the WHOLE unordered set, exactly like a gossip tick — never a
      // single message. Correctness depends on gossip sets being monotone:
      // any process holding an unagreed message also holds that sender's
      // earlier unagreed ones, which is what makes the vector-clock
      // duplicate-suppression rule in AgreedLog safe. A single-message
      // datagram racing ahead of its predecessor on the non-FIFO channel
      // would let a proposal contain (p,s+1) without (p,s) and drop (p,s)
      // everywhere.
      send_gossip_now();
    }
  }

  maybe_propose();
  return id;
}

void AtomicBroadcast::log_unordered_set() {
  std::vector<AppMsg> all;
  all.reserve(unordered_.size());
  for (const auto& [id, m] : unordered_) all.push_back(m);
  storage_.put(kUnorderedKey, seal_record(encode_batch(all)));
}

void AtomicBroadcast::erase_unordered_record(const MsgId& id) {
  if (!options_.log_unordered) return;
  if (options_.incremental_unordered_log) {
    storage_.erase(unordered_item_key(id));
  }
  // Non-incremental mode rewrites the whole set on the next broadcast; no
  // need to persist the shrink eagerly (resurrected messages are filtered
  // against Agreed on recovery).
}

void AtomicBroadcast::prune_unordered() {
  for (auto it = unordered_.begin(); it != unordered_.end();) {
    if (agreed_.contains(it->first)) {
      erase_unordered_record(it->first);
      it = unordered_.erase(it);
      touch_unordered();
    } else {
      ++it;
    }
  }
}

void AtomicBroadcast::maybe_propose(Trigger trigger) {
  if (options_.pipeline_window == 1) {
    // Paper Fig. 2, sequencer task: start round k only with something to
    // propose or when gossip revealed we lag (then even an empty proposal
    // is fine — the decision is already locked without our input).
    if (cons_.proposed(k_)) return;
    if (unordered_.empty() && gossip_k_ <= k_) return;
    if (!proposal_cache_valid_) {
      // Encode straight off the map — it already iterates in MsgId order,
      // the deterministic batch order — and keep the bytes until unordered_
      // next changes: consecutive rounds proposing the same backlog (common
      // while peers catch up) reuse the encoding instead of re-serializing
      // it. A max_proposal_msgs cap takes the MsgId-ordered prefix; the
      // capped encoding still depends only on unordered_'s contents, so the
      // cache invalidation rule is unchanged.
      std::size_t limit = unordered_.size();
      if (options_.max_proposal_msgs != 0) {
        limit = std::min(limit, options_.max_proposal_msgs);
      }
      BufWriter w;
      w.u32(checked_u32(limit));
      std::size_t taken = 0;
      for (const auto& [id, m] : unordered_) {
        if (taken == limit) break;
        m.encode(w);
        taken += 1;
      }
      proposal_cache_ = std::move(w).take();
      proposal_cache_valid_ = true;
    } else {
      metrics_.proposal_cache_hits += 1;
    }
    metrics_.proposals += 1;
    if (unordered_.empty()) metrics_.empty_proposals += 1;
    if (trigger == Trigger::kEvent) metrics_.proposals_event_triggered += 1;
    cons_.propose(k_, proposal_cache_);
    return;
  }
  // Pipelined sequencer: up to α rounds may be in flight. Slots fill in
  // ascending order, so the set of proposed instances stays contiguous from
  // k_ and the recovery scan in rebuild_window_state can stop at the first
  // gap.
  gc_window_slots();
  for (std::uint64_t j = k_; j < k_ + options_.pipeline_window; ++j) {
    if (cons_.proposed(j) || cons_.decided(j)) continue;
    propose_window_slot(j, trigger);
  }
}

void AtomicBroadcast::propose_window_slot(std::uint64_t j, Trigger trigger) {
  // One MsgId-ordered walk builds the slot's batch AND classifies content:
  // every message an in-flight slot already carries rides along cap-free,
  // new messages fill the remaining max_proposal_msgs budget. The riders
  // are what keeps each proposal prefix-closed per (sender, incarnation)
  // above our agreed frontier: no single decided value can then skip over a
  // still-pending predecessor, no matter which slots' proposals win which
  // rounds (DESIGN.md §14 has the induction).
  const std::size_t cap = options_.max_proposal_msgs;
  std::vector<const AppMsg*> batch;
  std::vector<MsgId> fresh;
  for (const auto& [id, m] : unordered_) {
    if (inflight_.count(id) != 0) {
      batch.push_back(&m);
      continue;
    }
    if (cap != 0 && fresh.size() >= cap) continue;
    batch.push_back(&m);
    fresh.push_back(id);
  }
  if (j == k_) {
    // Head slot: today's rule. Propose whenever anything is pending, or
    // when gossip revealed we lag (empty proposals are safe there — the
    // decision is locked without our input).
    if (batch.empty() && gossip_k_ <= k_) return;
  } else if (j >= gossip_k_) {
    // Slots past the head open only for genuinely new content — otherwise
    // consecutive slots would carry identical rider-only batches and burn
    // rounds. Event trigger: open when the new portion fills the batch
    // budget (any new message, with unbounded batches). Timer trigger (the
    // gossip tick): flush a partial batch so a trickle workload still
    // pipelines.
    if (fresh.empty()) return;
    const bool full = cap == 0 || fresh.size() >= cap;
    if (!full && trigger != Trigger::kTimer) return;
  }
  // else j < gossip_k_: some peer already finished round j, so its outcome
  // is fixed — propose (even empty) to drive our instance to the decision.
  BufWriter w;
  w.u32(checked_u32(batch.size()));
  for (const AppMsg* m : batch) m->encode(w);
  metrics_.proposals += 1;
  if (batch.empty()) metrics_.empty_proposals += 1;
  if (trigger == Trigger::kEvent) metrics_.proposals_event_triggered += 1;
  for (const MsgId& id : fresh) inflight_.insert(id);
  if (!fresh.empty()) slot_new_[j] = std::move(fresh);
  cons_.propose(j, std::move(w).take());
}

void AtomicBroadcast::gc_window_slots() {
  // The commit gate passed these slots: whatever they first proposed is
  // either delivered (their value won) or back to being plain new content
  // (a competing value won) — in both cases it leaves the in-flight set.
  while (!slot_new_.empty() && slot_new_.begin()->first < k_) {
    for (const MsgId& id : slot_new_.begin()->second) inflight_.erase(id);
    slot_new_.erase(slot_new_.begin());
  }
}

void AtomicBroadcast::rebuild_window_state() {
  // Recovery: re-derive which pending messages a logged-but-undecided
  // proposal already carries. Slots propose in ascending order, so walking
  // up from k_ and attributing each message to the first proposal holding
  // it reproduces the pre-crash bookkeeping; the scan stops at the first
  // never-proposed slot (the proposed set is contiguous from k_).
  for (std::uint64_t j = k_;; ++j) {
    const Bytes* prop = cons_.proposal_of(j);
    if (prop == nullptr) break;
    if (cons_.decided(j)) continue;  // outcome fixed; applies via drain
    std::vector<MsgId> fresh;
    try {
      for (const auto& m : decode_batch(*prop)) {
        if (inflight_.insert(m.id).second) fresh.push_back(m.id);
      }
    } catch (const CodecError&) {
      // Defensive: consensus recovery already discarded torn proposals.
    }
    if (!fresh.empty()) slot_new_[j] = std::move(fresh);
  }
}

void AtomicBroadcast::on_decided(InstanceId k, const Bytes& value) {
  (void)value;
  if (k < k_) return;  // stale: already applied (e.g. via state transfer)
  if (k > k_ && commit_gap_hist_ != nullptr) {
    // Decided above the contiguous prefix: this value parks until the gap
    // at k_ closes. Record the park-buffer depth (decided-but-undeliverable
    // rounds up to the newly decided one).
    std::uint64_t depth = 0;
    for (std::uint64_t j = k_ + 1; j <= k; ++j) {
      if (cons_.decided(j)) depth += 1;
    }
    commit_gap_hist_->observe(depth);
  }
  drain();
}

void AtomicBroadcast::drain() {
  while (auto decided = cons_.decision(k_)) {
    apply_batch(*decided);
  }
  maybe_propose();
}

void AtomicBroadcast::apply_batch(const Bytes& value) {
  auto batch = decode_batch(value);
  auto delivered = agreed_.append(std::move(batch));
  if (batch_size_hist_ != nullptr) batch_size_hist_->observe(delivered.size());
  std::uint64_t pos = agreed_.total() - delivered.size();
  for (auto& m : delivered) {
    erase_unordered_record(m.id);
    if (unordered_.erase(m.id) > 0) touch_unordered();
    metrics_.delivered += 1;
    trace(obs::EventKind::kDeliver, k_, m.id, pos++);
    sink_.deliver(m);
  }
  // Messages that were in the decided batch but skipped as stale are also
  // covered by Agreed now; drop any lingering unordered copies.
  prune_unordered();
  k_ += 1;
  metrics_.rounds_completed += 1;
  gossip_dirty_ = true;  // round + total advanced: peers should hear about it
}

std::vector<std::uint64_t> AtomicBroadcast::compute_cover() const {
  std::vector<std::uint64_t> cover(env_.group_size(), 0);
  for (std::size_t p = 0; p < cover.size(); ++p) {
    cover[p] = agreed_.vc().last_of(static_cast<ProcessId>(p));
  }
  for (const auto& [id, m] : unordered_) {
    if (id.sender < cover.size() && seq_extends(cover[id.sender], id.seq)) {
      cover[id.sender] = id.seq;
    }
  }
  return cover;
}

void AtomicBroadcast::send_gossip_now() {
  if (options_.digest_gossip) {
    // Anti-entropy advertisement: a few bytes per sender, independent of
    // how many messages are waiting. want_reply pulls deltas from peers.
    // The snapshot-staging ack fields keep a catch-up sender's view of our
    // progress truthful even when its per-chunk acks are lost.
    const Wire wire =
        make_digest_wire(k_, agreed_.total(), /*want_reply=*/true,
                         compute_cover(), {}, snap_stage_total_,
                         snap_stage_.size());
    metrics_.gossip_bytes_sent += wire.payload.size() * env_.group_size();
    env_.multisend(wire);
    metrics_.gossip_sent += 1;
    metrics_.digest_sent += 1;
    trace(obs::EventKind::kGossipSend, k_, MsgId{}, unordered_.size(),
          "digest");
    return;
  }
  // Full-set mode: encode the datagram straight off unordered_ — no
  // intermediate vector of AppMsg copies — and let multisend share the one
  // encoding across every recipient.
  BufWriter w;
  w.u64(k_);
  w.u64(agreed_.total());
  w.u32(checked_u32(unordered_.size()));
  for (const auto& [id, m] : unordered_) m.encode(w);
  const Wire wire{MsgType::kAbGossip, std::move(w).take()};
  metrics_.gossip_bytes_sent += wire.payload.size() * env_.group_size();
  env_.multisend(wire);
  metrics_.gossip_sent += 1;
  trace(obs::EventKind::kGossipSend, k_, MsgId{}, unordered_.size(), "full");
}

bool AtomicBroadcast::gossip_needed() const {
  if (gossip_dirty_) return true;
  if (gossip_k_ > k_) return true;  // we lag: keep soliciting help
  const auto my_cover =
      options_.digest_gossip ? compute_cover() : std::vector<std::uint64_t>{};
  for (std::size_t p = 0; p < peers_.size(); ++p) {
    if (p == env_.self()) continue;
    const PeerView& view = peers_[p];
    if (!view.heard) return true;
    if (view.k < k_ || view.total < agreed_.total()) return true;
    if (!my_cover.empty() && view.cover.size() == my_cover.size()) {
      for (std::size_t q = 0; q < my_cover.size(); ++q) {
        // Either direction: the peer lags us (keep advertising so it pulls)
        // or we lag the peer (our digest is the pull).
        if (view.cover[q] != my_cover[q]) return true;
      }
    }
  }
  return false;
}

void AtomicBroadcast::gossip_tick() {
  gc_state_sessions();
  bool send = true;
  if (options_.suppress_idle_gossip) {
    idle_ticks_ += 1;
    // Keepalive floor: even a fully idle group gossips every N periods, so
    // the fair-lossy channel still delivers our view infinitely often (the
    // round-lag and cover-lag repairs below depend on that).
    send = idle_ticks_ >= options_.gossip_keepalive_periods ||
           gossip_needed();
  }
  if (send) {
    send_gossip_now();
    idle_ticks_ = 0;
    gossip_dirty_ = false;
  } else {
    metrics_.gossip_suppressed += 1;
  }
  if (options_.pipeline_window > 1) {
    // Timer leg of event-driven proposing: flush partial batches into open
    // window slots so a trickle workload still pipelines instead of waiting
    // for the batch budget to fill.
    maybe_propose(Trigger::kTimer);
  }
  env_.schedule_after(options_.gossip_period, [this] { gossip_tick(); });
}

void AtomicBroadcast::send_eager_deltas() {
  const auto my_cover = compute_cover();
  for (std::size_t p = 0; p < peers_.size(); ++p) {
    if (p == env_.self()) continue;
    PeerView& view = peers_[p];
    if (view.cover.size() != my_cover.size()) {
      // No digest heard from this peer yet: assume it holds our agreed
      // prefix and nothing more. Wrong guesses are cheap — its contiguity
      // guard drops what it cannot take and the next anti-entropy round
      // repairs the view. The agreed prefix is globally decided, so it
      // doubles as the confirmed baseline for root-jump planning.
      view.cover.resize(my_cover.size(), 0);
      for (std::size_t q = 0; q < view.cover.size(); ++q) {
        view.cover[q] = agreed_.vc().last_of(static_cast<ProcessId>(q));
      }
      view.confirmed = view.cover;
    }
    const auto plan = plan_delta(unordered_, view.cover, view.confirmed);
    if (plan.empty()) continue;
    send_delta_chunks(static_cast<ProcessId>(p), view, /*want_reply=*/false,
                      my_cover, plan, "eager");
  }
}

std::size_t AtomicBroadcast::send_delta_chunks(
    ProcessId to, PeerView& view, bool want_reply,
    const std::vector<std::uint64_t>& my_cover,
    const std::vector<const AppMsg*>& plan, const char* detail) {
  const std::size_t header = digest_header_bytes(my_cover.size());
  const std::size_t budget = std::max(options_.max_delta_bytes, header + 1);
  std::vector<const AppMsg*> chunk;
  std::size_t chunk_bytes = header;
  std::size_t shipped = 0;
  const auto flush = [&] {
    const Wire wire =
        make_digest_wire(k_, agreed_.total(), want_reply, my_cover, chunk,
                         snap_stage_total_, snap_stage_.size());
    metrics_.gossip_bytes_sent += wire.payload.size();
    env_.send(to, wire);
    metrics_.delta_sent += 1;
    metrics_.delta_msgs_sent += chunk.size();
    // Optimistically assume delivery so back-to-back broadcasts ship each
    // message once; the peer's next digest overwrites with the truth. Only
    // messages actually handed to a send count — a message that never fit
    // must not be marked covered, or repair for this peer would livelock.
    for (const auto* m : chunk) {
      if (m->id.sender < view.cover.size()) view.cover[m->id.sender] = m->id.seq;
    }
    shipped += chunk.size();
    trace(obs::EventKind::kGossipSend, k_, MsgId{}, chunk.size(), detail);
    chunk.clear();
    chunk_bytes = header;
  };
  bool skipping = false;
  ProcessId skip_sender = 0;
  for (const AppMsg* m : plan) {
    if (skipping && m->id.sender == skip_sender) continue;
    skipping = false;
    const std::size_t entry = delta_entry_bytes(*m);
    if (header + entry > budget) {
      // This one message alone overflows a datagram; no chunking can ship
      // it. Skip the rest of its sender's suffix too — without this link
      // the peer's guard would park everything after it anyway — and leave
      // view.cover honest so we never believe the peer has it.
      skipping = true;
      skip_sender = m->id.sender;
      continue;
    }
    if (chunk_bytes + entry > budget) flush();
    chunk.push_back(m);
    chunk_bytes += entry;
  }
  if (!chunk.empty() || (want_reply && shipped == 0)) flush();
  return shipped;
}

void AtomicBroadcast::maybe_send_delta_reply(ProcessId to) {
  PeerView& view = peers_[to];
  const auto my_cover = compute_cover();
  if (view.cover.size() != my_cover.size()) return;
  const auto plan = plan_delta(unordered_, view.cover, view.confirmed);
  bool i_lack = false;
  for (std::size_t q = 0; q < my_cover.size(); ++q) {
    if (view.confirmed.size() == my_cover.size() &&
        view.confirmed[q] > my_cover[q]) {
      i_lack = true;
      break;
    }
  }
  // Nothing to ship and nothing to pull: the exchange is settled. This is
  // what terminates digest ping-pong between even peers.
  if (plan.empty() && !i_lack) return;
  const TimePoint now = env_.now();
  if (now < view.next_delta_ok) return;  // rate limit per peer
  view.next_delta_ok = now + options_.delta_reply_interval;
  send_delta_chunks(to, view, /*want_reply=*/i_lack, my_cover, plan, "delta");
}

std::size_t AtomicBroadcast::merge_delta(std::vector<AppMsg> msgs) {
  if (msgs.empty()) return 0;
  // Contiguity guard: accept a message only if it extends the local
  // per-sender coverage. This is what keeps the Unordered set a gap-free
  // chain above the Agreed vector clock no matter how deltas are pushed,
  // reordered, duplicated, or lost — the property the AgreedLog
  // duplicate-suppression rule depends on.
  static constexpr std::size_t kReorderBufCap = 1024;
  std::size_t rejected = 0;
  auto cover = compute_cover();
  for (auto& m : msgs) {
    const MsgId id = m.id;
    if (id.sender >= cover.size()) continue;  // malformed sender: drop
    // At or below our frontier: already held or agreed. (An orphaned
    // prior-incarnation suffix also lands here; it travels via its
    // sender's proposals, never via gossip — see DESIGN.md.)
    if (id.seq <= cover[id.sender]) continue;
    if (!seq_extends(cover[id.sender], id.seq)) {
      // Racing ahead of its predecessor on the non-FIFO channel: park it
      // until the chain below fills in, so the reorder costs no retransmit.
      metrics_.delta_rejected += 1;
      rejected += 1;
      if (reorder_buf_.size() < kReorderBufCap) {
        reorder_buf_.try_emplace(id, std::move(m));
      }
      continue;
    }
    cover[id.sender] = id.seq;
    const auto [it, inserted] = unordered_.try_emplace(id, std::move(m));
    if (inserted) touch_unordered();
  }
  // Drain the reorder buffer: repeatedly admit entries the guard now
  // accepts (MsgId order walks each sender's parked run in seq order, so
  // one sweep usually finishes; a second confirms the fixpoint). Entries
  // at or below cover are stale — drop them here, which also garbage
  // collects the buffer as rounds advance.
  bool progress = !reorder_buf_.empty();
  while (progress) {
    progress = false;
    for (auto it = reorder_buf_.begin(); it != reorder_buf_.end();) {
      const MsgId id = it->first;
      if (id.seq <= cover[id.sender]) {
        it = reorder_buf_.erase(it);
        continue;
      }
      if (!seq_extends(cover[id.sender], id.seq)) {
        ++it;
        continue;
      }
      cover[id.sender] = id.seq;
      const auto [uit, inserted] =
          unordered_.try_emplace(id, std::move(it->second));
      if (inserted) touch_unordered();
      it = reorder_buf_.erase(it);
      progress = true;
    }
  }
  return rejected;
}

void AtomicBroadcast::maybe_send_pull(ProcessId to) {
  // A rejected delta means the sender holds something we cannot take yet —
  // usually a push that overtook its predecessor. Its optimistic view now
  // believes we have it, so waiting for the periodic tick would put a whole
  // gossip period into the delivery tail. Instead, advertise our true cover
  // back right away (rate-limited); the sender re-plans a delta from it.
  PeerView& view = peers_[to];
  const TimePoint now = env_.now();
  if (now < view.next_pull_ok) return;
  view.next_pull_ok = now + options_.delta_reply_interval;
  const Wire wire =
      make_digest_wire(k_, agreed_.total(), /*want_reply=*/true,
                       compute_cover(), {}, snap_stage_total_,
                       snap_stage_.size());
  metrics_.gossip_bytes_sent += wire.payload.size();
  env_.send(to, wire);
  metrics_.digest_sent += 1;
  trace(obs::EventKind::kGossipSend, k_, MsgId{}, 0, "pull");
}

void AtomicBroadcast::handle_round_info(ProcessId from, std::uint64_t peer_k,
                                        std::uint64_t peer_total) {
  if (peer_k > k_) {
    const bool newly_behind = peer_k > gossip_k_;
    gossip_k_ = std::max(gossip_k_, peer_k);  // the sender is ahead
    if (newly_behind && from != env_.self() && from < peers_.size()) {
      // Solicit the missing decisions right away (rate-limited per peer):
      // the ahead sender only pushes them after it hears OUR round, which
      // used to be up to a whole gossip period later — a timer-only stall
      // on the follower. One unicast digest turns it into a round trip.
      maybe_send_pull(from);
    }
  } else if (options_.state_transfer && k_ > peer_k + options_.delta) {
    state_pump_for(from, peer_total);  // Fig. 3 line d: sender lags far behind
  } else if (peer_k < k_) {
    // The sender lags within Δ (or state transfer is off): push it the
    // decisions it is missing — its original deciders may be gone.
    cons_.offer_decisions(from, peer_k, 16);
  }
}

void AtomicBroadcast::on_message(ProcessId from, const Wire& msg) {
  if (msg.type == MsgType::kAbGossip) {
    auto g = decode_from_bytes<GossipMsg>(msg.payload);
    metrics_.gossip_received += 1;
    trace(obs::EventKind::kGossipRecv, g.k, MsgId{}, from, "full");
    if (from < peers_.size()) {
      PeerView& view = peers_[from];
      view.heard = true;
      view.k = g.k;
      view.total = g.total;
    }
    for (auto& m : g.unordered) {
      const MsgId id = m.id;
      if (agreed_.contains(id)) continue;
      const auto [it, inserted] = unordered_.try_emplace(id, std::move(m));
      if (inserted) touch_unordered();
    }
    // Full-set gossip carries no snapshot acks; the advertised total is
    // still the tail-phase ack of a catch-up session.
    note_state_ack(from, g.total, 0, 0);
    handle_round_info(from, g.k, g.total);
    drain();
    return;
  }
  if (msg.type == MsgType::kAbGossipDigest) {
    auto g = decode_from_bytes<DigestMsg>(msg.payload);
    metrics_.gossip_received += 1;
    trace(obs::EventKind::kGossipRecv, g.k, MsgId{}, from,
          g.msgs.empty() ? "digest" : "delta");
    if (from < peers_.size() && g.cover.size() == env_.group_size()) {
      PeerView& view = peers_[from];
      view.heard = true;
      view.k = g.k;
      view.total = g.total;
      view.cover = g.cover;  // received truth overwrites optimism
      view.confirmed = std::move(g.cover);
    }
    const std::size_t rejected = merge_delta(std::move(g.msgs));
    note_state_ack(from, g.total, g.ack_snap_total, g.ack_snap_bytes);
    handle_round_info(from, g.k, g.total);
    // peers_ is empty until start(); both hosts validate the frame sender
    // today, but a digest arriving early (or from a future host without
    // sender validation) must not index past it.
    if (from != env_.self() && from < peers_.size()) {
      if (g.want_reply) maybe_send_delta_reply(from);
      if (rejected > 0) maybe_send_pull(from);
    }
    drain();
    return;
  }
  if (msg.type == MsgType::kAbStateChunk) {
    auto s = decode_from_bytes<StateChunkMsg>(msg.payload);
    // Mirror of the sender's session gate (k_ > peer_k + Δ, chunks labeled
    // k_ - 1): accept at k_ + Δ == s.k too, or a receiver lagging exactly
    // Δ+1 rounds refuses the very transfer the sender insists on — and
    // never hears round replays either, a livelock when the cluster idles.
    if (options_.state_transfer && k_ + options_.delta <= s.k) {
      if (s.snapshot) {
        handle_snapshot_chunk(from, s);
      } else {
        handle_tail_chunk(from, s);  // Fig. 3 lines e–f, chunked
      }
    } else if (s.k > k_) {
      gossip_k_ = std::max(gossip_k_, s.k);  // small de-synchronization
      // React now rather than on the next gossip tick: the lag this chunk
      // just revealed is exactly what maybe_propose's catch-up rule feeds
      // on (the timer-only propose-on-lag stall).
      drain();
    }
    return;
  }
  ABCAST_CHECK_MSG(false, "unexpected ab message type");
}

// ---- §5.3 chunked catch-up sessions, sender side --------------------------

void AtomicBroadcast::state_pump_for(ProcessId to,
                                     std::uint64_t recipient_total) {
  if (!options_.state_transfer || k_ < 1 || to == env_.self()) return;
  auto it = state_sessions_.find(to);
  if (it == state_sessions_.end()) {
    CatchUpSession s;
    s.acked_total = std::min(recipient_total, agreed_.total());
    // sent_total starts at zero; the pump raises it to the phase floor
    // (base_count for a full transfer, the acked total when trimming), so
    // a full transfer really streams the whole explicit suffix.
    s.sent_total = 0;
    // §5.3's closing optimization, generalized: every session resumes from
    // the receiver's advertised total, so "trimmed" now just records that
    // the whole transfer is tail-only (no snapshot phase needed).
    const bool needs_snapshot =
        agreed_.base() && s.acked_total < agreed_.base_count();
    s.trimmed = options_.trimmed_state_transfer && !needs_snapshot;
    metrics_.state_sent += 1;
    if (s.trimmed) metrics_.state_sent_trimmed += 1;
    it = state_sessions_.emplace(to, std::move(s)).first;
  }
  it->second.last_heard = env_.now();
  state_pump(to, it->second);
}

void AtomicBroadcast::note_state_ack(ProcessId from, std::uint64_t peer_total,
                                     std::uint64_t ack_snap_total,
                                     std::uint64_t ack_snap_bytes) {
  auto it = state_sessions_.find(from);
  if (it == state_sessions_.end()) return;
  CatchUpSession& s = it->second;
  s.last_heard = env_.now();
  if (peer_total < s.acked_total) {
    // The receiver's delivered count regressed: it crashed mid-transfer and
    // recovered from an older checkpoint. Drop the session; its next gossip
    // recreates one that resumes from the re-advertised total.
    state_sessions_.erase(it);
    return;
  }
  s.acked_total = std::max(s.acked_total,
                           std::min(peer_total, agreed_.total()));
  if (s.snap_total != 0 && peer_total < s.snap_total) {
    if (ack_snap_total == s.snap_total) {
      s.acked_snap_bytes = std::max(s.acked_snap_bytes, ack_snap_bytes);
    } else {
      // The receiver is not staging our snapshot version (no chunk landed
      // yet, it restarted without regressing its total, or a newer version
      // superseded ours): nothing of our stream is staged there.
      s.acked_snap_bytes = 0;
    }
  }
}

void AtomicBroadcast::state_pump(ProcessId to, CatchUpSession& s) {
  ABCAST_CHECK(k_ >= 1);
  const TimePoint now = env_.now();
  const std::uint64_t state_k = k_ - 1;
  const std::uint64_t base_count = agreed_.base_count();

  if (agreed_.base() && s.acked_total < base_count) {
    // Snapshot phase: the receiver predates our application checkpoint, so
    // the explicit suffix alone cannot reach it — stream the encoded
    // checkpoint in byte slices. Encoded once per base version.
    if (snap_cache_.empty() || snap_cache_total_ != base_count) {
      snap_cache_ = encode_to_bytes(*agreed_.base());
      snap_cache_total_ = base_count;
    }
    if (s.snap_total != snap_cache_total_) {
      // First snapshot burst, or the base was re-compacted mid-session
      // (compaction deferral timed out): restart the stream at this version.
      s.snap_total = snap_cache_total_;
      s.sent_snap_bytes = 0;
      s.acked_snap_bytes = 0;
    }
    if (s.acked_snap_bytes < s.sent_snap_bytes) {
      if (now < s.resend_at) return;  // burst in flight; wait for acks
      s.sent_snap_bytes = s.acked_snap_bytes;  // go-back to the last ack
      metrics_.state_resumes += 1;
    }
    if (s.sent_snap_bytes >= snap_cache_.size()) return;  // install pending
    const std::size_t slice =
        options_.max_state_bytes > state_snap_header_bytes()
            ? options_.max_state_bytes - state_snap_header_bytes()
            : 1;
    for (std::uint32_t b = 0; b < options_.state_burst_chunks &&
                              s.sent_snap_bytes < snap_cache_.size();
         ++b) {
      StateChunkMsg c;
      c.k = state_k;
      c.snapshot = true;
      c.offset = s.sent_snap_bytes;
      c.snap_total = s.snap_total;
      c.snap_size = snap_cache_.size();
      const auto begin = snap_cache_.begin() +
                         static_cast<std::ptrdiff_t>(s.sent_snap_bytes);
      const std::size_t len = std::min<std::size_t>(
          slice, snap_cache_.size() - s.sent_snap_bytes);
      c.data.assign(begin, begin + static_cast<std::ptrdiff_t>(len));
      const Wire wire = make_wire(MsgType::kAbStateChunk, c);
      metrics_.state_chunks_sent += 1;
      metrics_.state_chunk_bytes_sent += wire.payload.size();
      trace(obs::EventKind::kStateTransfer, state_k, MsgId{},
            wire.payload.size(), "send_snap");
      env_.send(to, wire);
      s.sent_snap_bytes += len;
    }
    s.resend_at = now + options_.state_retransmit_interval;
    return;
  }

  // Tail phase: stream the explicit suffix from the receiver's confirmed
  // position (from the checkpoint boundary when trimming is off — the
  // receiver's clock filters duplicates). Only the final chunk carries the
  // round jump, so a lost tail leaves the receiver visibly lagging and the
  // session resumes from its next ack.
  std::uint64_t floor = base_count;
  if (options_.trimmed_state_transfer) floor = std::max(floor, s.acked_total);
  if (s.sent_total < floor) s.sent_total = floor;
  if (s.acked_total < s.sent_total) {
    if (now < s.resend_at) return;  // burst in flight; wait for acks
    s.sent_total = std::max(floor, s.acked_total);  // go-back to the last ack
    metrics_.state_resumes += 1;
  }
  const std::vector<AppMsg>& suffix = agreed_.suffix();
  const std::size_t header = state_chunk_header_bytes();
  const std::size_t budget = std::max(options_.max_state_bytes, header + 1);
  for (std::uint32_t b = 0; b < options_.state_burst_chunks; ++b) {
    StateChunkMsg c;
    c.k = state_k;
    c.offset = s.sent_total;
    std::size_t bytes = header;
    std::uint64_t pos = s.sent_total;
    while (pos < agreed_.total()) {
      const AppMsg& m = suffix[static_cast<std::size_t>(pos - base_count)];
      const std::size_t entry = delta_entry_bytes(m);
      // A single message above the budget ships alone: its batch already
      // crossed the transport inside one consensus decision, so one frame
      // demonstrably carries it.
      if (bytes + entry > budget && !c.msgs.empty()) break;
      c.msgs.push_back(m);
      bytes += entry;
      ++pos;
      if (bytes >= budget) break;
    }
    c.final_chunk = pos >= agreed_.total();
    const Wire wire = make_wire(MsgType::kAbStateChunk, c);
    metrics_.state_chunks_sent += 1;
    metrics_.state_chunk_bytes_sent += wire.payload.size();
    trace(obs::EventKind::kStateTransfer, state_k, MsgId{},
          wire.payload.size(), "send_chunk");
    env_.send(to, wire);
    s.sent_total = pos;
    if (c.final_chunk) break;
  }
  s.resend_at = now + options_.state_retransmit_interval;
}

void AtomicBroadcast::gc_state_sessions() {
  if (state_sessions_.empty()) return;
  const TimePoint now = env_.now();
  for (auto it = state_sessions_.begin(); it != state_sessions_.end();) {
    if (now - it->second.last_heard > options_.state_session_timeout) {
      it = state_sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

bool AtomicBroadcast::compaction_deferred() const {
  // While any live session still streams, compacting would clear the suffix
  // it reads from (tail phase) or retire the snapshot version in flight
  // (snapshot phase) and restart the transfer — a livelock when checkpoints
  // outpace one transfer. Sessions are GC'd after state_session_timeout, so
  // a dead receiver defers compaction only boundedly.
  for (const auto& [peer, s] : state_sessions_) {
    (void)peer;
    if (s.acked_total < agreed_.total()) return true;
  }
  return false;
}

// ---- §5.3 chunked catch-up sessions, receiver side ------------------------

void AtomicBroadcast::handle_snapshot_chunk(ProcessId from,
                                            const StateChunkMsg& s) {
  // A snapshot we already cover adds nothing; ack our position so the
  // sender's session advances to the tail phase.
  if (s.snap_total == 0 || agreed_.total() >= s.snap_total) {
    send_state_ack(from);
    return;
  }
  if (s.snap_total > snap_stage_total_) {
    // Prefer the newer snapshot (restart staging); never restart for an
    // older version, or two concurrent senders could ping-pong the staging
    // forever.
    snap_stage_total_ = s.snap_total;
    snap_stage_size_ = s.snap_size;
    snap_stage_.clear();
  }
  if (s.snap_total == snap_stage_total_ && s.offset == snap_stage_.size() &&
      !s.data.empty()) {
    // Contiguous extension; anything else (loss, reorder, duplicate) is
    // ignored and the ack below tells the sender where to resume.
    snap_stage_.insert(snap_stage_.end(), s.data.begin(), s.data.end());
    metrics_.state_chunks_applied += 1;
    if (snap_stage_size_ != 0 && snap_stage_.size() >= snap_stage_size_) {
      install_staged_snapshot(s.k);
    }
  }
  send_state_ack(from);
}

void AtomicBroadcast::install_staged_snapshot(std::uint64_t state_k) {
  AppCheckpoint ckpt;
  bool ok = false;
  try {
    BufReader r(snap_stage_);
    ckpt = AppCheckpoint::decode(r);
    r.expect_done();
    ok = ckpt.count == snap_stage_total_;
  } catch (const CodecError&) {
  }
  snap_stage_.clear();
  snap_stage_size_ = 0;
  if (!ok) {
    // Torn stage (interleaved versions): drop it. Our next ack advertises
    // zero staged bytes and the sender's go-back machinery re-streams.
    metrics_.corrupt_records += 1;
    snap_stage_total_ = 0;
    return;
  }
  if (agreed_.total() >= ckpt.count) return;  // raced past it meanwhile
  // Skip the Consensus instances the checkpoint covers: replace our prefix
  // wholesale (total order guarantees ours is a prefix of the checkpoint's)
  // and rebuild the application from it. The round is NOT adopted here —
  // only the tail phase's final chunk advances k, so a crash between the
  // two phases resumes cleanly from the re-advertised total.
  trace(obs::EventKind::kStateTransfer, state_k, MsgId{}, ckpt.count,
        "adopt_snap");
  sink_.install_checkpoint(ckpt.state);
  agreed_.reset_to_base(std::move(ckpt));
  metrics_.state_snapshots_applied += 1;
  gossip_dirty_ = true;
  prune_unordered();
  if (options_.checkpointing) {
    // Make the jump durable; otherwise a crash would replay from the old
    // checkpoint into truncated territory.
    take_checkpoint();
  }
  drain();
}

void AtomicBroadcast::handle_tail_chunk(ProcessId from,
                                        const StateChunkMsg& s) {
  // A chunk beyond our frontier cannot extend it (its predecessor was lost
  // or reordered); the ack below advertises our true total and the sender's
  // window rewinds. A chunk at or below it overlaps what we hold — the
  // clock filters the overlap and append_sequence delivers only the rest.
  if (s.offset > agreed_.total()) {
    send_state_ack(from);
    return;
  }
  if (!s.msgs.empty() || s.final_chunk) {
    trace(obs::EventKind::kStateTransfer, s.k, MsgId{},
          s.offset + s.msgs.size(), "adopt_chunk");
  }
  auto delivered = agreed_.append_sequence(s.msgs);
  std::uint64_t pos = agreed_.total() - delivered.size();
  for (const auto& m : delivered) {
    erase_unordered_record(m.id);
    if (unordered_.erase(m.id) > 0) touch_unordered();
    metrics_.delivered += 1;
    trace(obs::EventKind::kDeliver, k_, m.id, pos++);
    sink_.deliver(m);
  }
  if (!delivered.empty()) gossip_dirty_ = true;
  metrics_.state_chunks_applied += 1;
  if (s.final_chunk && s.k + 1 > k_) {
    // The stream is complete: adopt the sender's round (Fig. 3 line f).
    k_ = s.k + 1;
    gossip_dirty_ = true;
    metrics_.state_applied += 1;
    prune_unordered();
    if (options_.checkpointing) take_checkpoint();
    drain();
  }
  send_state_ack(from);
}

void AtomicBroadcast::send_state_ack(ProcessId to) {
  // An immediate, unicast digest: (total, snapshot staging) is the whole
  // ack. Sent in both gossip modes — the catch-up sender understands digest
  // datagrams even when periodic gossip is full-set.
  const Wire wire =
      make_digest_wire(k_, agreed_.total(), /*want_reply=*/false,
                       compute_cover(), {}, snap_stage_total_,
                       snap_stage_.size());
  metrics_.gossip_bytes_sent += wire.payload.size();
  env_.send(to, wire);
  metrics_.digest_sent += 1;
  trace(obs::EventKind::kGossipSend, k_, MsgId{}, 0, "state_ack");
}

void AtomicBroadcast::checkpoint_tick() {
  take_checkpoint();
  env_.schedule_after(options_.checkpoint_period,
                      [this] { checkpoint_tick(); });
}

void AtomicBroadcast::take_checkpoint() {
  // §5.2 (Fig. 4 line b): fold the delivered suffix into an application
  // checkpoint before logging, bounding both the record and the log.
  // Deferred while a catch-up session is mid-stream (see
  // compaction_deferred) — the (k, Agreed) record below is still written,
  // just with the suffix explicit.
  if (options_.app_checkpointing && !compaction_deferred()) {
    agreed_.compact(sink_.take_checkpoint());
    snap_cache_.clear();  // base version changed; re-encoded on demand
    snap_cache_total_ = 0;
  }
  BufWriter w;
  w.u64(k_);
  agreed_.encode(w);
  storage_.put(kCkptKey, seal_record(w.data()));
  metrics_.checkpoints += 1;
  trace(obs::EventKind::kCheckpoint, k_, MsgId{}, agreed_.total(), "take");
  if (options_.truncate_logs) {
    // Fig. 4 line c, widened to consensus-internal records. Keep a Δ-deep
    // tail so any peer close enough NOT to trigger a state transfer can
    // still run the instances it needs (see consensus.hpp truncate_below).
    const std::uint64_t bound = k_ > options_.delta ? k_ - options_.delta : 0;
    cons_.truncate_below(bound);
  }
}

void AtomicBroadcast::on_peer_truncated(ProcessId from, InstanceId k) {
  (void)k;
  // The peer asked about an instance we truncated; only a state transfer
  // can catch it up (Options::validate() guarantees it is enabled). Open
  // (or pump) its catch-up session from its last advertised position — the
  // same bounded chunk path as gossip-triggered transfers, so this trigger
  // can never regress to one oversized frame.
  if (k_ < 1 || from >= peers_.size()) return;
  const PeerView& view = peers_[from];
  state_pump_for(from, view.heard ? view.total : 0);
}

}  // namespace abcast::core
