#include "core/crash_stop_ab.hpp"

namespace abcast::core {

StackConfig crash_stop_baseline_config(ConsensusKind engine) {
  StackConfig config;
  config.engine = engine;
  config.ab = Options::basic();
  config.ab.eager_dissemination = true;
  // With eager relay the periodic gossip only repairs channel loss; slow
  // it down so it does not dominate message counts.
  config.ab.gossip_period = millis(200);
  return config;
}

}  // namespace abcast::core
