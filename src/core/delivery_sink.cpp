#include "core/delivery_sink.hpp"

#include "common/check.hpp"

namespace abcast::core {

Bytes DeliverySink::take_checkpoint() {
  ABCAST_CHECK_MSG(false,
                   "application does not implement A-checkpoint; disable "
                   "Options::app_checkpointing");
  return {};
}

void DeliverySink::install_checkpoint(const Bytes& state) {
  (void)state;
  ABCAST_CHECK_MSG(false,
                   "application does not implement checkpoint install; "
                   "disable state transfer / checkpointing");
}

}  // namespace abcast::core
