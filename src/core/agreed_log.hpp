// The Agreed queue (paper Fig. 2), optionally rooted in an application
// checkpoint (paper §5.2).
//
// Logically every process's delivery sequence is a prefix of one global
// sequence; AgreedLog represents the local prefix as
//
//     [application checkpoint (state, VC, count)] ++ [explicit suffix]
//
// where the checkpoint part is absent until compact() is first called.
// Duplicate suppression is by vector clock: a message decided again in a
// later round (possible when a batch is re-proposed by a process that
// missed the earlier decision) is skipped, deterministically at every
// process, because the same batches arrive in the same round order
// everywhere and the in-batch order is fixed. The clock is per-incarnation
// (see vector_clock.hpp), so ordering a recovered sender's new-incarnation
// root never suppresses its previous incarnation's undelivered messages.
#pragma once

#include <optional>
#include <vector>

#include "common/codec.hpp"
#include "core/app_msg.hpp"
#include "core/vector_clock.hpp"

namespace abcast::core {

/// An application-level checkpoint: opaque state, the vector clock of the
/// prefix it contains, and that prefix's length (for position accounting).
struct AppCheckpoint {
  Bytes state;
  VectorClock vc;
  std::uint64_t count = 0;

  void encode(BufWriter& w) const {
    w.bytes(state);
    vc.encode(w);
    w.u64(count);
  }
  static AppCheckpoint decode(BufReader& r) {
    AppCheckpoint c;
    c.state = r.bytes();
    c.vc = VectorClock::decode(r);
    c.count = r.u64();
    return c;
  }
};

class AgreedLog {
 public:
  AgreedLog() = default;
  explicit AgreedLog(std::uint32_t n) : vc_(n) {}

  /// Appends one decided batch. The batch is sorted by the deterministic
  /// rule and filtered against the vector clock; the messages actually
  /// appended (i.e., newly delivered) are returned in delivery order.
  std::vector<AppMsg> append(std::vector<AppMsg> batch);

  /// Appends a segment of the global delivery sequence AS GIVEN (no
  /// re-sorting — the segment spans multiple rounds, so it is not MsgId-
  /// sorted), still filtering already-contained messages. Used by trimmed
  /// state transfers (§5.3 optimization). Returns the newly appended
  /// messages in order.
  std::vector<AppMsg> append_sequence(const std::vector<AppMsg>& segment);

  /// True if `id` is in this prefix (explicitly or inside the checkpoint).
  bool contains(const MsgId& id) const { return vc_.covers(id); }

  /// Replaces the suffix with an application checkpoint containing it
  /// (paper Fig. 4, line b). `state` comes from the A-checkpoint upcall.
  void compact(Bytes state);

  /// Replaces this whole prefix with a peer's application checkpoint
  /// (chunked §5.3 state transfer, snapshot phase). The caller must have
  /// verified the checkpoint strictly extends this prefix
  /// (`ckpt.count > total()`); the suffix is discarded because the
  /// checkpoint's clock covers it.
  void reset_to_base(AppCheckpoint ckpt);

  /// Total messages in the prefix (checkpoint count + suffix length).
  std::uint64_t total() const { return base_count_ + suffix_.size(); }

  /// Messages folded into the checkpoint part (0 until compact()).
  std::uint64_t base_count() const { return base_count_; }

  const VectorClock& vc() const { return vc_; }
  const std::optional<AppCheckpoint>& base() const { return base_; }
  const std::vector<AppMsg>& suffix() const { return suffix_; }
  std::uint64_t skipped_duplicates() const { return skipped_; }

  void encode(BufWriter& w) const;
  static AgreedLog decode(BufReader& r);

 private:
  std::optional<AppCheckpoint> base_;
  std::uint64_t base_count_ = 0;
  std::vector<AppMsg> suffix_;
  VectorClock vc_;
  std::uint64_t skipped_ = 0;
};

}  // namespace abcast::core
