// Wire format and delta planning for digest-mode gossip
// (MsgType::kAbGossipDigest). One encoder serves both the struct path
// (DigestMsg::encode, used by tests and make_wire) and the copy-free path
// (make_digest_wire, which references planned AppMsgs in place) — the
// layouts cannot drift because they are the same function.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/codec.hpp"
#include "common/types.hpp"
#include "core/app_msg.hpp"
#include "env/wire.hpp"

namespace abcast::core {

/// Digest-mode gossip datagram. A periodic tick sends it with an empty
/// `msgs` — (k, total, cover) is the whole anti-entropy advertisement, a few
/// bytes per sender regardless of backlog. A delta reply or an eager push
/// carries the missing per-sender suffixes in `msgs`, each suffix in seq
/// order so the receiver's contiguity guard can accept it chain-link by
/// chain-link.
struct DigestMsg {
  std::uint64_t k = 0;
  std::uint64_t total = 0;
  /// True on pull requests: "compare my cover against yours and send me a
  /// delta". Replies set it only when the replier itself lacks coverage, so
  /// an exchange terminates as soon as both sides are even.
  bool want_reply = false;
  /// Catch-up session acks (§5.3 chunked state transfer), folded into the
  /// digest so chunk-loss recovery needs no extra message type: the version
  /// (prefix count) of the checkpoint snapshot this process is staging and
  /// how many contiguous bytes of it have landed. Zero when no snapshot is
  /// in flight; the tail-phase ack is `total` itself.
  std::uint64_t ack_snap_total = 0;
  std::uint64_t ack_snap_bytes = 0;
  std::vector<std::uint64_t> cover;  // per-sender coverage, size = group
  std::vector<AppMsg> msgs;          // delta payload (empty on pure digests)

  void encode(BufWriter& w) const;
  static DigestMsg decode(BufReader& r) {
    DigestMsg m;
    m.k = r.u64();
    m.total = r.u64();
    m.want_reply = r.boolean();
    m.ack_snap_total = r.u64();
    m.ack_snap_bytes = r.u64();
    m.cover = r.vec<std::uint64_t>([](BufReader& rr) { return rr.u64(); });
    m.msgs = r.vec<AppMsg>([](BufReader& rr) { return AppMsg::decode(rr); });
    return m;
  }
};

/// The one true kAbGossipDigest payload layout. `msgs` are referenced in
/// place (never copied into a DigestMsg) so the delta send path stays
/// copy-free.
inline void encode_digest_payload(BufWriter& w, std::uint64_t k,
                                  std::uint64_t total, bool want_reply,
                                  const std::vector<std::uint64_t>& cover,
                                  const std::vector<const AppMsg*>& msgs,
                                  std::uint64_t ack_snap_total = 0,
                                  std::uint64_t ack_snap_bytes = 0) {
  w.u64(k);
  w.u64(total);
  w.boolean(want_reply);
  w.u64(ack_snap_total);
  w.u64(ack_snap_bytes);
  w.vec(cover, [](BufWriter& ww, std::uint64_t c) { ww.u64(c); });
  w.u32(checked_u32(msgs.size()));
  for (const auto* m : msgs) m->encode(w);
}

inline void DigestMsg::encode(BufWriter& w) const {
  std::vector<const AppMsg*> refs;
  refs.reserve(msgs.size());
  for (const auto& m : msgs) refs.push_back(&m);
  encode_digest_payload(w, k, total, want_reply, cover, refs, ack_snap_total,
                        ack_snap_bytes);
}

/// Encoded size of everything in a digest datagram except the delta
/// messages themselves (k, total, want_reply, snapshot acks, cover, msgs
/// count). Used to budget delta chunks against Options::max_delta_bytes.
inline std::size_t digest_header_bytes(std::size_t group_size) {
  return 8 + 8 + 1 + 16 + (4 + 8 * group_size) + 4;
}

/// Encoded size of one delta entry: msg_id (12) + payload length prefix (4)
/// + payload.
inline std::size_t delta_entry_bytes(const AppMsg& m) {
  return 16 + m.payload.size();
}

inline Wire make_digest_wire(std::uint64_t k, std::uint64_t total,
                             bool want_reply,
                             const std::vector<std::uint64_t>& cover,
                             const std::vector<const AppMsg*>& msgs,
                             std::uint64_t ack_snap_total = 0,
                             std::uint64_t ack_snap_bytes = 0) {
  BufWriter w;
  encode_digest_payload(w, k, total, want_reply, cover, msgs, ack_snap_total,
                        ack_snap_bytes);
  return Wire{MsgType::kAbGossipDigest, std::move(w).take()};
}

/// The suffixes of our per-sender unordered chains that a peer standing at
/// `peer_cover` can accept, in map (= sender, seq) order. The walk advances
/// a per-sender cursor from the peer's cover through our chain; anything
/// that would not extend the peer's coverage (it already has it, or a gap
/// separates it) is skipped — its guard would reject it anyway.
///
/// An incarnation root (counter == 1) that does not directly succeed the
/// cursor is planned only when the cursor has not moved past the peer's
/// DIGEST-CONFIRMED cover (`confirmed_cover`). From a confirmed cursor the
/// jump is exact: the peer itself advertised it holds nothing between
/// cursor and the root. From an optimistically bumped cursor it is not — an
/// in-flight or lost delta may hold the previous incarnation's durably
/// logged suffix, and a root-only datagram overtaking it would strand that
/// suffix at the peer (deliverable only via the original sender's own
/// proposals, thanks to per-incarnation supersession, but needlessly late).
/// Deferring the root until the next digest confirms the gap costs at most
/// one anti-entropy exchange.
inline std::vector<const AppMsg*> plan_delta(
    const std::map<MsgId, AppMsg>& unordered,
    const std::vector<std::uint64_t>& peer_cover,
    const std::vector<std::uint64_t>& confirmed_cover) {
  std::vector<const AppMsg*> plan;
  ProcessId cur = 0;
  bool have_cur = false;
  std::uint64_t cursor = ~0ULL;
  std::uint64_t confirmed = 0;
  for (const auto& [id, m] : unordered) {
    if (!have_cur || id.sender != cur) {
      cur = id.sender;
      have_cur = true;
      if (id.sender < peer_cover.size()) {
        cursor = peer_cover[id.sender];
        confirmed = id.sender < confirmed_cover.size()
                        ? confirmed_cover[id.sender]
                        : cursor;
      } else {
        cursor = ~0ULL;  // malformed sender: plan nothing for it
        confirmed = 0;
      }
    }
    if (!seq_extends(cursor, id.seq)) continue;
    if (id.seq != cursor + 1 && cursor > confirmed) continue;  // root jump
    plan.push_back(&m);
    cursor = id.seq;
  }
  return plan;
}

}  // namespace abcast::core
