// Per-sender sequence numbers: (incarnation, counter) packed into 64 bits.
#pragma once

#include <cstdint>

namespace abcast::core {

/// Builds the 64-bit sequence number for the `counter`-th message of an
/// incarnation. Incarnations come from the failure-detector epoch, which is
/// already logged once per recovery — so message ids cost zero extra log
/// operations.
inline std::uint64_t make_seq(std::uint64_t incarnation,
                              std::uint64_t counter) {
  return (incarnation << 32) | counter;
}

inline std::uint64_t seq_incarnation(std::uint64_t seq) { return seq >> 32; }
inline std::uint64_t seq_counter(std::uint64_t seq) {
  return seq & 0xffff'ffffULL;
}

/// Whether a per-sender coverage digest standing at `cover` may be extended
/// by `seq` (see DESIGN.md "Digest gossip"). Two legal extensions: `cover`'s
/// direct successor within an incarnation, or the FIRST message of any later
/// incarnation (counters restart at 1 after a crash wipes the sender's
/// volatile counter).
///
/// The incarnation-root case is OPTIMISTIC: with Options::log_unordered the
/// sender's previous incarnation may have durably logged messages above
/// `cover` that this process has simply not received yet, so accepting the
/// root here can leave that prior-incarnation suffix uncovered. That is
/// safe because supersession is per-incarnation (VectorClock::covers never
/// lets a later incarnation hide an earlier one's messages) and the shipping
/// side only plans a root across an unconfirmed gap when the gap cannot
/// exist (see plan_delta in gossip_wire.hpp).
inline bool seq_extends(std::uint64_t cover, std::uint64_t seq) {
  if (seq <= cover) return false;
  if (seq == cover + 1) return true;
  return seq_counter(seq) == 1;
}

}  // namespace abcast::core
