// Consensus built FROM Atomic Broadcast (paper §6.1).
//
// The paper notes the reduction in the reverse direction of its main
// construction: "To propose a value a process atomically broadcasts it; the
// first value to be delivered can be chosen as the decided value. Thus,
// both problems are equivalent in asynchronous crash-recovery systems."
//
// This adapter implements exactly that, closing the equivalence loop in
// code: AbConsensus runs on top of an AtomicBroadcast instance (which
// itself runs on a ConsensusService — the construction is stacked, not
// circular). Each logical consensus instance `k` decides on the first
// A-delivered value tagged with `k`.
//
// Properties follow directly from Atomic Broadcast's: Total Order makes
// every process see the same first value per instance (Uniform Agreement),
// Validity carries over, and Termination holds for good processes whenever
// the AB layer is live. Crash-recovery: a recovering process re-derives
// every past decision from the replayed delivery sequence, so no extra log
// operation is needed at this layer at all.
#pragma once

#include <functional>
#include <map>
#include <optional>

#include "core/atomic_broadcast.hpp"
#include "core/delivery_sink.hpp"

namespace abcast::core {

class AbConsensus {
 public:
  using DecidedFn = std::function<void(std::uint64_t k, const Bytes& value)>;

  /// `ab` must outlive this object; feed_delivery must be wired into the
  /// application's DeliverySink (see AbConsensusSink).
  explicit AbConsensus(AtomicBroadcast& ab) : ab_(ab) {}

  /// Proposes `value` for logical instance `k`. Idempotent per (k, caller
  /// incarnation); re-proposing after a decision is a no-op. Like the
  /// paper's consensus propose(), a caller that crashes before its proposal
  /// was ordered should re-invoke propose() after recovery (unless the AB
  /// layer runs with a durable Unordered set, which re-submits it
  /// automatically).
  void propose(std::uint64_t k, const Bytes& value);

  /// The decided value of instance `k`, if known locally.
  std::optional<Bytes> decision(std::uint64_t k) const;

  void set_decided_callback(DecidedFn fn) { decided_cb_ = std::move(fn); }

  /// Must be called with every A-delivered message (in delivery order).
  /// Non-consensus payloads are ignored, so the same AB instance can carry
  /// other traffic.
  void feed_delivery(const AppMsg& msg);

  std::uint64_t decided_count() const { return decisions_.size(); }

 private:
  AtomicBroadcast& ab_;
  std::map<std::uint64_t, Bytes> decisions_;
  std::map<std::uint64_t, bool> proposed_;
  DecidedFn decided_cb_;
};

/// DeliverySink adapter: routes every delivery into an AbConsensus (and
/// optionally forwards to an inner sink for the rest of the application).
class AbConsensusSink final : public DeliverySink {
 public:
  explicit AbConsensusSink(DeliverySink* inner = nullptr) : inner_(inner) {}

  /// Late wiring: AbConsensus needs the AtomicBroadcast which needs the
  /// sink, so the sink is constructed first and bound here.
  void bind(AbConsensus* consensus) { consensus_ = consensus; }

  void deliver(const AppMsg& msg) override {
    if (consensus_ != nullptr) consensus_->feed_delivery(msg);
    if (inner_ != nullptr) inner_->deliver(msg);
  }

 private:
  AbConsensus* consensus_ = nullptr;
  DeliverySink* inner_;
};

}  // namespace abcast::core
