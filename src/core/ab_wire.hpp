// Wire formats for the Atomic Broadcast layer's full-set gossip
// (MsgType::kAbGossip) and chunked state transfer (MsgType::kAbStateChunk)
// payloads.
//
// Digest-mode gossip (kAbGossipDigest) lives in core/gossip_wire.hpp next to
// its copy-free encoder and delta planner. Keeping every layout in a *_wire
// header gives each payload exactly one definition site and makes it
// reachable from tests/wire_roundtrip_test.cpp — tools/ablint enforces both
// (wire-tag homes, registered round-trip tests).
#pragma once

#include <cstdint>
#include <vector>

#include "common/codec.hpp"
#include "core/agreed_log.hpp"
#include "core/app_msg.hpp"

namespace abcast::core {

/// Full-set gossip datagram (Options::digest_gossip == false): the sender's
/// round, delivered count, and its entire Unordered set.
struct GossipMsg {
  std::uint64_t k = 0;
  /// Local delivered count — advertised so peers can trim state transfers
  /// to the missing tail (§5.3 optimization).
  std::uint64_t total = 0;
  std::vector<AppMsg> unordered;

  void encode(BufWriter& w) const {
    w.u64(k);
    w.u64(total);
    w.vec(unordered, [](BufWriter& ww, const AppMsg& m) { m.encode(ww); });
  }
  static GossipMsg decode(BufReader& r) {
    GossipMsg m;
    m.k = r.u64();
    m.total = r.u64();
    m.unordered =
        r.vec<AppMsg>([](BufReader& rr) { return AppMsg::decode(rr); });
    return m;
  }
};

/// One self-contained chunk of a §5.3 catch-up session (replaces the
/// retired one-shot StateMsg, whose whole-AgreedLog payload could exceed
/// the transport's 64 KiB frame limit and be silently dropped forever).
///
/// A session has two phases. The snapshot phase (only when the sender's
/// prefix is folded into an application checkpoint the recipient predates)
/// streams the encoded AppCheckpoint as byte slices: `offset` is the byte
/// offset of `data` within the `snap_size`-byte encoding, `snap_total` the
/// prefix count the snapshot covers (its version — a receiver staging bytes
/// of an older snapshot restarts when a newer one appears). The tail phase
/// streams the explicit suffix: `msgs` is the contiguous run of the global
/// delivery sequence starting at position `offset`; only a chunk with
/// `final_chunk` set advances the receiver's round to k+1, so losing the
/// last chunk leaves the receiver visibly lagging and the session resumes.
struct StateChunkMsg {
  std::uint64_t k = 0;  // sender's round minus one (paper Fig. 3, line d)
  bool snapshot = false;
  /// Snapshot phase: byte offset of `data`. Tail phase: absolute sequence
  /// position of msgs.front().
  std::uint64_t offset = 0;
  // Snapshot-phase fields.
  std::uint64_t snap_total = 0;  // prefix count covered == snapshot version
  std::uint64_t snap_size = 0;   // total encoded snapshot size in bytes
  Bytes data;
  // Tail-phase fields.
  bool final_chunk = false;
  std::vector<AppMsg> msgs;

  void encode(BufWriter& w) const {
    w.u64(k);
    w.boolean(snapshot);
    w.u64(offset);
    if (snapshot) {
      w.u64(snap_total);
      w.u64(snap_size);
      w.bytes(data);
    } else {
      w.boolean(final_chunk);
      w.vec(msgs, [](BufWriter& ww, const AppMsg& m) { m.encode(ww); });
    }
  }
  static StateChunkMsg decode(BufReader& r) {
    StateChunkMsg m;
    m.k = r.u64();
    m.snapshot = r.boolean();
    m.offset = r.u64();
    if (m.snapshot) {
      m.snap_total = r.u64();
      m.snap_size = r.u64();
      m.data = r.bytes();
    } else {
      m.final_chunk = r.boolean();
      m.msgs = r.vec<AppMsg>([](BufReader& rr) { return AppMsg::decode(rr); });
    }
    return m;
  }
};

/// Encoded size of a tail chunk's fixed fields (k, snapshot, offset,
/// final_chunk, msgs count). Used to budget tail chunks against
/// Options::max_state_bytes, mirroring digest_header_bytes for deltas.
inline std::size_t state_chunk_header_bytes() { return 8 + 1 + 8 + 1 + 4; }

/// Encoded size of a snapshot chunk's fixed fields (k, snapshot, offset,
/// snap_total, snap_size, data length prefix).
inline std::size_t state_snap_header_bytes() { return 8 + 1 + 8 + 8 + 8 + 4; }

}  // namespace abcast::core
