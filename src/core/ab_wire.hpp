// Wire formats for the Atomic Broadcast layer's full-set gossip
// (MsgType::kAbGossip) and state transfer (MsgType::kAbState) payloads.
//
// Digest-mode gossip (kAbGossipDigest) lives in core/gossip_wire.hpp next to
// its copy-free encoder and delta planner. Keeping every layout in a *_wire
// header gives each payload exactly one definition site and makes it
// reachable from tests/wire_roundtrip_test.cpp — tools/ablint enforces both
// (wire-tag homes, registered round-trip tests).
#pragma once

#include <cstdint>
#include <vector>

#include "common/codec.hpp"
#include "core/agreed_log.hpp"
#include "core/app_msg.hpp"

namespace abcast::core {

/// Full-set gossip datagram (Options::digest_gossip == false): the sender's
/// round, delivered count, and its entire Unordered set.
struct GossipMsg {
  std::uint64_t k = 0;
  /// Local delivered count — advertised so peers can trim state transfers
  /// to the missing tail (§5.3 optimization).
  std::uint64_t total = 0;
  std::vector<AppMsg> unordered;

  void encode(BufWriter& w) const {
    w.u64(k);
    w.u64(total);
    w.vec(unordered, [](BufWriter& ww, const AppMsg& m) { m.encode(ww); });
  }
  static GossipMsg decode(BufReader& r) {
    GossipMsg m;
    m.k = r.u64();
    m.total = r.u64();
    m.unordered =
        r.vec<AppMsg>([](BufReader& rr) { return AppMsg::decode(rr); });
    return m;
  }
};

/// State-transfer datagram: either the sender's complete Agreed
/// representation or, when the recipient advertised its position, just the
/// missing tail (§5.3 optimization).
struct StateMsg {
  std::uint64_t k = 0;  // sender's round minus one (paper Fig. 3, line d)
  bool trimmed = false;
  // Full transfer: the complete Agreed representation.
  AgreedLog agreed;
  // Trimmed transfer: only the sequence tail after the recipient's
  // advertised position (`base_total` messages omitted).
  std::uint64_t base_total = 0;
  std::vector<AppMsg> tail;

  void encode(BufWriter& w) const {
    w.u64(k);
    w.boolean(trimmed);
    if (trimmed) {
      w.u64(base_total);
      w.vec(tail, [](BufWriter& ww, const AppMsg& m) { m.encode(ww); });
    } else {
      agreed.encode(w);
    }
  }
  static StateMsg decode(BufReader& r) {
    StateMsg m;
    m.k = r.u64();
    m.trimmed = r.boolean();
    if (m.trimmed) {
      m.base_total = r.u64();
      m.tail = r.vec<AppMsg>([](BufReader& rr) { return AppMsg::decode(rr); });
    } else {
      m.agreed = AgreedLog::decode(r);
    }
    return m;
  }
};

}  // namespace abcast::core
