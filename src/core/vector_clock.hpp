// Checkpoint vector clock (paper §5.2).
//
// vc[p] is the highest sequence number from sender p contained in a
// delivery prefix. Because the protocol delivers each sender's messages in
// increasing sequence order (a consequence of gossip-set monotonicity plus
// the deterministic in-batch rule — see AgreedLog), "everything from p up
// to vc[p]" exactly describes the prefix, which is what lets an
// application-level checkpoint replace the explicit message log.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "common/codec.hpp"
#include "common/types.hpp"

namespace abcast::core {

class VectorClock {
 public:
  VectorClock() = default;
  explicit VectorClock(std::uint32_t n) : last_(n, 0) {}

  /// True if a message with this id is contained in the prefix this clock
  /// describes.
  bool covers(const MsgId& id) const {
    ABCAST_CHECK(id.sender < last_.size());
    return last_[id.sender] >= id.seq;
  }

  /// Extends the prefix with `id`. Must advance: the caller filters
  /// non-advancing (duplicate/stale) ids with covers() first.
  void observe(const MsgId& id) {
    ABCAST_CHECK(id.sender < last_.size());
    ABCAST_CHECK_MSG(id.seq > last_[id.sender],
                     "vector clock must advance monotonically");
    last_[id.sender] = id.seq;
  }

  std::uint64_t last_of(ProcessId p) const {
    ABCAST_CHECK(p < last_.size());
    return last_[p];
  }

  /// Pointwise maximum with `other` (same width): the smallest prefix
  /// containing both. Used when reconciling checkpoints from two sources.
  void merge(const VectorClock& other) {
    ABCAST_CHECK(other.last_.size() == last_.size());
    for (std::size_t p = 0; p < last_.size(); ++p) {
      if (other.last_[p] > last_[p]) last_[p] = other.last_[p];
    }
  }

  /// True if this clock's prefix contains everything `other` describes
  /// (pointwise >=). Both dominates(a) and a.dominates(*this) hold iff
  /// the clocks are equal; neither holds iff they are concurrent.
  bool dominates(const VectorClock& other) const {
    ABCAST_CHECK(other.last_.size() == last_.size());
    for (std::size_t p = 0; p < last_.size(); ++p) {
      if (last_[p] < other.last_[p]) return false;
    }
    return true;
  }

  std::uint32_t size() const { return static_cast<std::uint32_t>(last_.size()); }

  friend bool operator==(const VectorClock&, const VectorClock&) = default;

  void encode(BufWriter& w) const {
    w.u32(size());
    for (const auto v : last_) w.u64(v);
  }
  static VectorClock decode(BufReader& r) {
    const auto n = r.u32();
    VectorClock vc(n);
    for (std::uint32_t i = 0; i < n; ++i) vc.last_[i] = r.u64();
    return vc;
  }

 private:
  std::vector<std::uint64_t> last_;
};

}  // namespace abcast::core
