// Checkpoint vector clock (paper §5.2), per-incarnation.
//
// For every sender p the clock records the highest sequence number the
// delivery prefix contains from EACH incarnation of p (`tops_[p]`, ascending
// — seq order equals (incarnation, counter) order). A message is covered
// only when its OWN incarnation's top reaches it.
//
// Why not one number per sender: with Options::log_unordered a sender's
// broadcasts survive its crash in the durable Unordered set, so messages of
// incarnation i can still be awaiting delivery after the root of incarnation
// i+1 was decided (a lost delta plus an optimistic peer view is enough to
// order the root first — see DESIGN.md "Digest gossip"). A numeric
// `last >= seq` rule would mark that logged suffix superseded everywhere,
// silently violating Validity for a recovered-and-correct sender. Per-
// incarnation tops keep those messages deliverable: they stay uncovered
// until a later batch (re-proposed by the sender, which still holds them)
// actually orders them.
//
// Within one incarnation delivery IS monotone (gossip-chain contiguity plus
// the deterministic in-batch rule), so a single top per incarnation exactly
// describes the prefix, which is what lets an application checkpoint replace
// the explicit message log. Entries are never removed: a sender has one
// incarnation per recovery, so the list stays tiny.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "common/codec.hpp"
#include "common/types.hpp"
#include "core/seq.hpp"

namespace abcast::core {

class VectorClock {
 public:
  VectorClock() = default;
  explicit VectorClock(std::uint32_t n) : tops_(n) {}

  /// True if a message with this id is contained in the prefix this clock
  /// describes.
  bool covers(const MsgId& id) const {
    ABCAST_CHECK(id.sender < tops_.size());
    const auto& tops = tops_[id.sender];
    const auto it = incarnation_slot(tops, id.seq);
    return it != tops.end() && seq_incarnation(*it) == seq_incarnation(id.seq) &&
           *it >= id.seq;
  }

  /// Extends the prefix with `id`. Must advance within its incarnation: the
  /// caller filters non-advancing (duplicate/stale) ids with covers() first.
  /// Starting a NEW incarnation is always legal, even one older than the
  /// sender's newest — that is exactly the recovered-suffix case above.
  void observe(const MsgId& id) {
    ABCAST_CHECK(id.sender < tops_.size());
    auto& tops = tops_[id.sender];
    const auto it = incarnation_slot(tops, id.seq);
    if (it != tops.end() && seq_incarnation(*it) == seq_incarnation(id.seq)) {
      ABCAST_CHECK_MSG(id.seq > *it,
                       "vector clock must advance within an incarnation");
      *it = id.seq;
    } else {
      tops.insert(it, id.seq);
    }
  }

  /// The numerically highest seq observed from p (its newest incarnation's
  /// top), 0 if none. This is the frontier coverage digests advertise.
  std::uint64_t last_of(ProcessId p) const {
    ABCAST_CHECK(p < tops_.size());
    return tops_[p].empty() ? 0 : tops_[p].back();
  }

  /// Per-incarnation maximum with `other` (same width): the smallest prefix
  /// containing both. Used when reconciling checkpoints from two sources.
  void merge(const VectorClock& other) {
    ABCAST_CHECK(other.tops_.size() == tops_.size());
    for (std::size_t p = 0; p < tops_.size(); ++p) {
      auto& tops = tops_[p];
      for (const std::uint64_t seq : other.tops_[p]) {
        const auto it = incarnation_slot(tops, seq);
        if (it != tops.end() && seq_incarnation(*it) == seq_incarnation(seq)) {
          if (seq > *it) *it = seq;
        } else {
          tops.insert(it, seq);
        }
      }
    }
  }

  /// True if this clock's prefix contains everything `other` describes
  /// (every incarnation top of `other` is covered here). Both dominates(a)
  /// and a.dominates(*this) hold iff the clocks are equal; neither holds iff
  /// they are concurrent.
  bool dominates(const VectorClock& other) const {
    ABCAST_CHECK(other.tops_.size() == tops_.size());
    for (std::size_t p = 0; p < tops_.size(); ++p) {
      for (const std::uint64_t seq : other.tops_[p]) {
        const auto it = incarnation_slot(tops_[p], seq);
        if (it == tops_[p].end() ||
            seq_incarnation(*it) != seq_incarnation(seq) || *it < seq) {
          return false;
        }
      }
    }
    return true;
  }

  std::uint32_t size() const { return checked_u32(tops_.size()); }

  friend bool operator==(const VectorClock&, const VectorClock&) = default;

  void encode(BufWriter& w) const {
    w.u32(size());
    for (const auto& tops : tops_) {
      w.vec(tops, [](BufWriter& ww, std::uint64_t v) { ww.u64(v); });
    }
  }
  static VectorClock decode(BufReader& r) {
    // Each per-sender entry is itself length-prefixed, so at least four
    // bytes must remain per claimed sender; validating through count()
    // keeps a hostile width from allocating billions of empty vectors.
    const auto n = r.count(sizeof(std::uint32_t));
    VectorClock vc(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      vc.tops_[i] = r.vec<std::uint64_t>([](BufReader& rr) { return rr.u64(); });
    }
    return vc;
  }

 private:
  /// First entry whose incarnation is >= seq's (tops are seq-sorted and
  /// counters are >= 1, so make_seq(inc, 0) is a strict lower bound for
  /// incarnation inc and above all of inc-1).
  static std::vector<std::uint64_t>::const_iterator incarnation_slot(
      const std::vector<std::uint64_t>& tops, std::uint64_t seq) {
    return std::lower_bound(tops.begin(), tops.end(),
                            make_seq(seq_incarnation(seq), 0));
  }
  static std::vector<std::uint64_t>::iterator incarnation_slot(
      std::vector<std::uint64_t>& tops, std::uint64_t seq) {
    return std::lower_bound(tops.begin(), tops.end(),
                            make_seq(seq_incarnation(seq), 0));
  }

  /// tops_[p]: per incarnation of p, the highest seq in the prefix;
  /// ascending, at most one entry per incarnation.
  std::vector<std::vector<std::uint64_t>> tops_;
};

}  // namespace abcast::core
