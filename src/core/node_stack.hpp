// Full protocol stack for one process: failure detector + consensus engine
// + atomic broadcast, wired together as a NodeApp so the same object runs
// under the simulator and the real-time runtime.
//
//        application (DeliverySink)
//              ▲ deliver / checkpoint upcalls
//   ┌──────────┴──────────┐
//   │   AtomicBroadcast   │  gossip, state ────────┐
//   │      Consensus      │  paxos / coord ────────┤ wire
//   │   FailureDetector   │  heartbeats ───────────┘
//   └─────────────────────┘
#pragma once

#include <memory>

#include "consensus/consensus.hpp"
#include "core/atomic_broadcast.hpp"
#include "core/options.hpp"
#include "env/env.hpp"
#include "fd/failure_detector.hpp"

namespace abcast::core {

struct StackConfig {
  FdConfig fd;
  FdKind fd_kind = FdKind::kEpoch;
  ConsensusConfig consensus;
  ConsensusKind engine = ConsensusKind::kPaxos;
  Options ab;
};

class NodeStack final : public NodeApp {
 public:
  /// `sink` is the application; it must outlive the stack (in a simulated
  /// host it typically lives outside the crash boundary as the test
  /// oracle, or is owned by a wrapper that recreates it — see apps::Rsm).
  NodeStack(Env& env, StackConfig config, DeliverySink& sink);

  void start(bool recovering) override;
  void on_message(ProcessId from, const Wire& msg) override;

  AtomicBroadcast& ab() { return ab_; }
  const AtomicBroadcast& ab() const { return ab_; }
  FailureDetector& fd() { return *fd_; }
  ConsensusService& consensus() { return *cons_; }
  const ConsensusService& consensus() const { return *cons_; }

  /// This incarnation's number: the detector's epoch when it maintains one,
  /// otherwise a stack-logged counter (one extra log op per recovery —
  /// the bounded-output detector's hidden cost).
  std::uint64_t incarnation() const { return incarnation_; }

 private:
  std::uint64_t own_incarnation_bump();

  Env& env_;
  std::unique_ptr<FailureDetector> fd_;
  std::unique_ptr<ConsensusService> cons_;
  AtomicBroadcast ab_;
  std::uint64_t incarnation_ = 0;
};

}  // namespace abcast::core
