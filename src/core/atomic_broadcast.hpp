// Atomic Broadcast for asynchronous crash-recovery systems — the paper's
// core contribution (Fig. 2 basic protocol; Figs. 3–5 alternative protocol).
//
// The protocol proceeds in rounds. In round k the process proposes its
// Unordered set to the k-th Consensus instance; the decided batch is moved
// to the Agreed queue under a deterministic in-batch order; gossip
// disseminates unordered messages and round numbers. The paper's blocking
// "wait until" pseudocode is realized as an event-driven state machine:
//
//   broadcast(payload)   — A-broadcast(m). Returns the message id at once;
//                          the invocation is semantically complete when the
//                          message is delivered (basic protocol) or as soon
//                          as the call returns (with Options::log_unordered,
//                          §5.4 — the Unordered set is logged before
//                          returning).
//   DeliverySink         — A-deliver upcalls, in total order.
//   is_delivered(id)     — A-delivered(m) predicate.
//
// Logging: with Options::basic() this layer performs ZERO log operations —
// the only log in the whole protocol is the proposal, written inside the
// Consensus black box as its first action (§4.3 minimal-logging claim;
// verified by bench_logops). Each §5 feature adds the specific log
// operations the paper describes.
#pragma once

#include <map>
#include <set>
#include <vector>

#include "common/relaxed_counter.hpp"
#include "common/types.hpp"
#include "core/app_msg.hpp"
#include "consensus/consensus.hpp"
#include "core/agreed_log.hpp"
#include "core/delivery_sink.hpp"
#include "core/options.hpp"
#include "env/env.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "storage/scoped_storage.hpp"

namespace abcast::core {

struct StateChunkMsg;  // core/ab_wire.hpp

struct AbMetrics {
  RelaxedU64 broadcasts;
  RelaxedU64 delivered;
  RelaxedU64 rounds_completed;
  RelaxedU64 replayed_rounds;   // rounds re-applied during recovery
  RelaxedU64 proposals;
  RelaxedU64 empty_proposals;   // proposals for missed rounds
  RelaxedU64 gossip_sent;
  RelaxedU64 gossip_received;
  /// Gossip payload bytes produced (payload size × recipients), across
  /// full-set, digest, delta, and eager datagrams.
  RelaxedU64 gossip_bytes_sent;
  RelaxedU64 digest_sent;       // digest-only multisends (anti-entropy)
  RelaxedU64 delta_sent;        // per-peer delta datagrams (reply+eager)
  RelaxedU64 delta_msgs_sent;   // AppMsgs shipped inside deltas
  /// Delta messages that did not extend the local per-sender coverage on
  /// arrival (a push overtook its predecessor on the non-FIFO channel) and
  /// were parked in the reorder buffer; see DESIGN.md.
  RelaxedU64 delta_rejected;
  RelaxedU64 gossip_suppressed;  // idle ticks skipped (satellite 1)
  RelaxedU64 proposal_cache_hits;  // proposals reusing cached encoding
  /// Proposals fired by an event (broadcast arrival, batch full, decide,
  /// gossip) rather than the periodic timer leg of the pipelined proposer.
  /// With pipeline_window == 1 every proposal is event-triggered (the timer
  /// leg exists only for partial window slots).
  RelaxedU64 proposals_event_triggered;
  /// Catch-up sessions opened toward lagging peers (§5.3). One session
  /// streams the whole missing state in bounded chunks; the chunk counters
  /// below account the individual datagrams.
  RelaxedU64 state_sent;
  RelaxedU64 state_sent_trimmed;  // of which tail-only (§5.3 opt.)
  RelaxedU64 state_applied;       // catch-up sessions adopted (k jumped)
  RelaxedU64 state_chunks_sent;   // chunk datagrams sent (snapshot + tail)
  RelaxedU64 state_chunk_bytes_sent;  // payload bytes across those chunks
  RelaxedU64 state_chunks_applied;    // chunks accepted and applied/staged
  RelaxedU64 state_snapshots_applied; // peer app checkpoints installed
  /// Go-back resumptions: the sender rewound its chunk cursor to the
  /// receiver's last ack after chunk loss, reorder, or a receiver crash.
  RelaxedU64 state_resumes;
  RelaxedU64 checkpoints;
  /// Stored records found torn/corrupt during recovery (CRC or decode
  /// failure) and discarded; the protocol fell back to replay/state
  /// transfer instead of trusting them.
  RelaxedU64 corrupt_records;
};

class AtomicBroadcast {
 public:
  /// `consensus` and `sink` must outlive this object. The consensus service
  /// must not be started yet; the owner wires the decided/obsolete
  /// callbacks to on_decided()/on_peer_truncated() before starting it
  /// (NodeStack does all of this).
  AtomicBroadcast(Env& env, ConsensusService& consensus, DeliverySink& sink,
                  Options options);

  /// Starts (or recovers) the protocol. `incarnation` must be unique per
  /// lifetime of this process (e.g. the failure detector epoch); it makes
  /// message ids unique across crashes at no extra log cost.
  void start(bool recovering, std::uint64_t incarnation);

  /// A-broadcast(m). See file header for completion semantics.
  MsgId broadcast(Bytes payload);

  /// The id the NEXT broadcast() call will assign. Lets a harness register
  /// the id with its oracle BEFORE invoking broadcast(), so a broadcast
  /// interrupted by a crash mid-log (but still durable and later delivered)
  /// is accounted for.
  MsgId next_broadcast_id() const {
    return MsgId{env_.self(), make_seq(incarnation_, counter_ + 1)};
  }

  /// A-delivered(m, ·): true once `id` is in the local delivery sequence.
  bool is_delivered(const MsgId& id) const { return agreed_.contains(id); }

  /// The local delivery sequence representation (A-deliver-sequence()).
  const AgreedLog& agreed() const { return agreed_; }

  /// Current round (the paper's kp).
  std::uint64_t round() const { return k_; }

  /// Number of messages awaiting ordering.
  std::size_t unordered_size() const { return unordered_.size(); }

  /// The Unordered set itself (tests: chain-invariant checks).
  const std::map<MsgId, AppMsg>& unordered() const { return unordered_; }

  /// Per-sender coverage digest: for every sender p, the highest seq such
  /// that agreed ∪ unordered holds p's whole chain up to it (see DESIGN.md
  /// "Digest gossip").
  std::vector<std::uint64_t> compute_cover() const;

  // ---- wiring ------------------------------------------------------------
  bool handles(MsgType type) const {
    return type == MsgType::kAbGossip || type == MsgType::kAbGossipDigest ||
           type == MsgType::kAbStateChunk;
  }
  void on_message(ProcessId from, const Wire& msg);
  /// Route of the Consensus decided callback.
  void on_decided(InstanceId k, const Bytes& value);
  /// Route of the Consensus obsolete-instance callback (a peer asked about
  /// a truncated instance: it needs a state transfer).
  void on_peer_truncated(ProcessId from, InstanceId k);

  const AbMetrics& metrics() const { return metrics_; }
  const StorageStats& storage_stats() const { return storage_.stats(); }
  const Options& options() const { return options_; }

 private:
  /// What this process last learned (or optimistically assumes) about a
  /// peer's progress. Fed by incoming gossip of either kind; `cover` only by
  /// digest gossip (and by our own optimistic bumps after delta sends).
  struct PeerView {
    bool heard = false;
    std::uint64_t k = 0;
    std::uint64_t total = 0;
    /// Working cover: digest truth, optimistically bumped for every delta
    /// message shipped so back-to-back broadcasts ship each message once.
    std::vector<std::uint64_t> cover;  // empty until known/assumed
    /// Cover the peer actually advertised (or that is globally decided —
    /// the assumed agreed-prefix baseline); never optimistic. Incarnation-
    /// root jumps are planned only from here (see plan_delta).
    std::vector<std::uint64_t> confirmed;
    TimePoint next_delta_ok = 0;       // delta-reply rate limiter
    TimePoint next_pull_ok = 0;        // reorder-repair pull rate limiter
  };

  /// Sender-side state of one §5.3 catch-up session: a stop-and-wait burst
  /// window over chunk datagrams. `acked_*` is what the receiver confirmed
  /// (via the digest acks), `sent_*` where our cursor stands; a burst goes
  /// out only when the window drained or the go-back timer fired, so chunk
  /// loss never grows the in-flight set. All volatile — a sender crash
  /// simply loses the session and the receiver's next gossip recreates it
  /// from the receiver's re-advertised total.
  struct CatchUpSession {
    std::uint64_t acked_total = 0;      // receiver's confirmed prefix length
    std::uint64_t sent_total = 0;       // tail cursor (absolute position)
    std::uint64_t acked_snap_bytes = 0;
    std::uint64_t sent_snap_bytes = 0;
    std::uint64_t snap_total = 0;       // snapshot version being streamed
    bool trimmed = false;               // classified (and counted) at creation
    TimePoint resend_at = 0;            // go-back deadline for the last burst
    TimePoint last_heard = 0;           // GC: drop silent sessions
  };

  void send_gossip_now();
  void gossip_tick();
  bool gossip_needed() const;
  void send_eager_deltas();
  /// Ships `plan` to `to` in datagrams of at most Options::max_delta_bytes
  /// each (suffix-in-seq-order chunks stay guard-acceptable on their own),
  /// bumping view.cover only for messages actually handed to a send. With
  /// `want_reply`, at least one datagram goes out even for an empty plan
  /// (the pure-pull case). Returns the number of messages shipped.
  std::size_t send_delta_chunks(ProcessId to, PeerView& view, bool want_reply,
                                const std::vector<std::uint64_t>& my_cover,
                                const std::vector<const AppMsg*>& plan,
                                const char* detail);
  void maybe_send_delta_reply(ProcessId to);
  void maybe_send_pull(ProcessId to);
  /// Returns the number of messages the contiguity guard rejected.
  std::size_t merge_delta(std::vector<AppMsg> msgs);
  void handle_round_info(ProcessId from, std::uint64_t peer_k,
                         std::uint64_t peer_total);
  /// Invalidates the cached proposal encoding and marks gossip dirty; call
  /// after EVERY unordered_ mutation.
  void touch_unordered() {
    proposal_cache_valid_ = false;
    gossip_dirty_ = true;
  }
  void checkpoint_tick();
  void take_checkpoint();
  /// What caused a proposal attempt. Timer-triggered attempts (the gossip
  /// tick) may open partial batches for window slots beyond k_; every other
  /// call site is an event (broadcast, decide, gossip arrival).
  enum class Trigger { kEvent, kTimer };
  void maybe_propose(Trigger trigger = Trigger::kEvent);
  /// One window slot j > k_ of the pipelined proposer: builds the
  /// prefix-closed cumulative batch (all in-flight messages ride along
  /// cap-free; new messages fill up to max_proposal_msgs) and proposes it.
  void propose_window_slot(std::uint64_t j, Trigger trigger);
  /// Rebuilds slot_new_/inflight_ after recovery from the per-instance
  /// proposal logs of still-undecided rounds ≥ k_.
  void rebuild_window_state();
  /// Drops window bookkeeping for slots the commit gate has passed
  /// (slot < k_): their first-proposed messages become plain "new" again if
  /// a foreign value won the round.
  void gc_window_slots();
  /// Applies every locally-known decision starting at k_, then proposes.
  void drain();
  void apply_batch(const Bytes& value);
  // ---- §5.3 chunked catch-up sessions (sender side) ----------------------
  /// Creates (or resumes) the catch-up session for `to`, whose gossip just
  /// advertised `recipient_total` delivered messages, and pumps it.
  void state_pump_for(ProcessId to, std::uint64_t recipient_total);
  /// Sends the next burst of chunks if the stop-and-wait window allows.
  void state_pump(ProcessId to, CatchUpSession& s);
  /// Folds a digest's ack fields into the peer's session, detecting
  /// receiver restarts (total regression) as a session reset.
  void note_state_ack(ProcessId from, std::uint64_t peer_total,
                      std::uint64_t ack_snap_total,
                      std::uint64_t ack_snap_bytes);
  void gc_state_sessions();
  /// True while some live session still needs the explicit suffix (or the
  /// current snapshot) — take_checkpoint() defers compaction then, so an
  /// in-flight transfer is not invalidated mid-stream.
  bool compaction_deferred() const;
  // ---- receiver side -----------------------------------------------------
  void handle_snapshot_chunk(ProcessId from, const StateChunkMsg& s);
  void handle_tail_chunk(ProcessId from, const StateChunkMsg& s);
  void install_staged_snapshot(std::uint64_t state_k);
  /// Immediate per-chunk ack: a digest datagram to the sender carrying our
  /// (total, snapshot staging) position, in both gossip modes.
  void send_state_ack(ProcessId to);
  void erase_unordered_record(const MsgId& id);
  void log_unordered_set();
  void prune_unordered();

  /// Records a protocol trace event when the host installed a recorder.
  void trace(obs::EventKind kind, std::uint64_t k, MsgId msg = MsgId{},
             std::uint64_t arg = 0, std::string detail = {}) {
    if (tracer_ != nullptr) {
      tracer_->record(kind, env_.now(), k, msg, arg, std::move(detail));
    }
  }
  void bind_metrics();

  Env& env_;
  ConsensusService& cons_;
  DeliverySink& sink_;
  Options options_;
  ScopedStorage storage_;

  std::uint64_t k_ = 0;          // round counter kp
  std::uint64_t gossip_k_ = 0;   // highest round seen via gossip
  AgreedLog agreed_;
  std::map<MsgId, AppMsg> unordered_;
  std::uint64_t incarnation_ = 0;
  std::uint64_t counter_ = 0;    // per-incarnation broadcast counter
  /// Live catch-up sessions we are serving, one per lagging peer. Volatile:
  /// a crash drops them and the receivers' gossip recreates them.
  std::map<ProcessId, CatchUpSession> state_sessions_;
  /// Encoded AppCheckpoint the snapshot phase streams from, cached so a
  /// multi-chunk stream encodes the base once. Valid while
  /// `snap_cache_total_ == agreed_.base_count()` and non-empty.
  Bytes snap_cache_;
  std::uint64_t snap_cache_total_ = 0;
  /// Receiver-side staging of an incoming snapshot: contiguous bytes of
  /// the `snap_stage_total_` version, installed once `snap_stage_size_`
  /// bytes landed. Volatile — a receiver crash restarts the snapshot, which
  /// is exactly what the re-advertised (smaller) total tells the sender.
  Bytes snap_stage_;
  std::uint64_t snap_stage_total_ = 0;
  std::uint64_t snap_stage_size_ = 0;
  std::vector<PeerView> peers_;  // indexed by ProcessId; sized in start()
  /// Volatile staging for delta messages that arrived ahead of their
  /// per-sender predecessor: merged into unordered_ as soon as the chain
  /// below them fills in, so a datagram reorder costs no extra round trip.
  /// Bounded; never logged (a lost entry is re-shipped by anti-entropy).
  std::map<MsgId, AppMsg> reorder_buf_;
  bool gossip_dirty_ = true;     // something changed since the last tick send
  std::uint32_t idle_ticks_ = 0;
  Bytes proposal_cache_;         // encoded unordered_ batch (valid flag below)
  bool proposal_cache_valid_ = false;
  /// Messages first proposed by each still-relevant window slot (keys are
  /// InstanceIds ≥ k_ once gc_window_slots ran). When slot j's round decides
  /// or is skipped, its entries leave inflight_ — if a foreign value won,
  /// they are re-proposable as new content. Empty when pipeline_window == 1.
  std::map<std::uint64_t, std::vector<MsgId>> slot_new_;
  /// Union of slot_new_ over undecided slots: messages some in-flight
  /// proposal already carries. They ride along in later slots' batches
  /// (cap-exempt, keeping every proposal prefix-closed per sender) but do
  /// not count as new content that justifies opening another slot.
  std::set<MsgId> inflight_;
  AbMetrics metrics_;
  obs::TraceRecorder* tracer_ = nullptr;      // host-owned; may be null
  obs::Histogram* batch_size_hist_ = nullptr;  // registry-owned; may be null
  /// Depth of the decided-but-undeliverable park buffer, observed whenever
  /// a decide lands above the contiguous prefix (log2 buckets).
  obs::Histogram* commit_gap_hist_ = nullptr;  // registry-owned; may be null
  bool started_ = false;
  // Declared last: unbinds the metrics_ fields from the registry before the
  // slots above are destroyed (crash destroys this object, not the registry).
  obs::MetricsGroup metrics_group_;
};

}  // namespace abcast::core
