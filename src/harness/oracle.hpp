// Correctness oracle for Atomic Broadcast runs.
//
// Lives OUTSIDE the simulated crash boundary: sinks are owned by the test,
// not by the protocol stacks, so the oracle observes every delivery across
// crashes and recoveries. It continuously checks, at every delivery:
//
//   * Total Order — every process's delivery sequence is a prefix of one
//     global sequence (the paper's Total Order property, checked in its
//     strongest prefix form);
//   * Integrity   — no message appears twice in the global sequence;
//   * Validity    — only broadcast messages are delivered.
//
// Termination is checked by the test at quiescence via all_delivered().
//
// Checkpoint semantics: the oracle sink's "application state" is just the
// delivery position plus a running hash of the delivered prefix, so
// install_checkpoint can verify that a restored/transferred state really
// corresponds to a prefix of the global sequence.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "core/delivery_sink.hpp"

namespace abcast::harness {

class Oracle;

/// Per-process DeliverySink wired into the oracle.
class OracleSink final : public core::DeliverySink {
 public:
  OracleSink(Oracle& oracle, ProcessId pid) : oracle_(oracle), pid_(pid) {}

  void deliver(const core::AppMsg& msg) override;
  Bytes take_checkpoint() override;
  void install_checkpoint(const Bytes& state) override;

 private:
  Oracle& oracle_;
  ProcessId pid_;
};

class Oracle {
 public:
  explicit Oracle(std::uint32_t n);

  /// Record that `id` was submitted to A-broadcast (validity set).
  void on_broadcast(const MsgId& id, TimePoint at);

  /// Must be called whenever process `pid`'s stack is (re)constructed:
  /// without a checkpoint the recovery replay re-delivers from scratch.
  void on_restart(ProcessId pid);

  /// Injected clock so latency stats use simulation time.
  void set_clock(std::function<TimePoint()> now) { now_ = std::move(now); }

  // ---- called by OracleSink ----------------------------------------------
  void on_deliver(ProcessId pid, const core::AppMsg& msg);
  Bytes checkpoint_state(ProcessId pid) const;
  void install_state(ProcessId pid, const Bytes& state);

  // ---- queries ------------------------------------------------------------
  /// The global total order observed so far.
  const std::vector<MsgId>& global_order() const { return global_; }

  /// Process `pid`'s current position in the global order.
  std::uint64_t position(ProcessId pid) const { return positions_[pid]; }

  bool delivered_globally(const MsgId& id) const {
    return delivered_set_.count(id) != 0;
  }

  /// True if every id has been delivered at every listed process.
  bool all_delivered(const std::vector<MsgId>& ids,
                     const std::vector<ProcessId>& at) const;

  std::uint64_t total_deliver_upcalls() const { return deliver_upcalls_; }
  std::uint64_t broadcast_count() const { return broadcast_time_.size(); }

  /// Broadcast→first-global-delivery latencies of all delivered messages.
  const std::vector<Duration>& latencies() const { return latencies_; }

  /// The same latencies with their delivery timestamps, in global-order
  /// position order — the feed for windowed (SLO-style) quantiles.
  struct TimedLatency {
    TimePoint delivered_at = 0;
    Duration latency = 0;
  };
  const std::vector<TimedLatency>& timed_latencies() const {
    return timed_latencies_;
  }

  /// Throws InvariantViolation with diagnostics if any safety property has
  /// been violated; also called internally on every event.
  void check() const;

 private:
  std::uint64_t prefix_hash_at(std::uint64_t position) const;

  std::uint32_t n_;
  std::function<TimePoint()> now_;
  std::vector<MsgId> global_;
  std::vector<std::uint64_t> prefix_hash_;  // prefix_hash_[i] = hash of first i
  std::set<MsgId> delivered_set_;
  std::vector<std::uint64_t> positions_;
  std::map<MsgId, TimePoint> broadcast_time_;
  std::map<MsgId, TimePoint> first_delivery_;
  std::vector<Duration> latencies_;
  std::vector<TimedLatency> timed_latencies_;
  std::uint64_t deliver_upcalls_ = 0;
};

}  // namespace abcast::harness
