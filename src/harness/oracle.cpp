#include "harness/oracle.hpp"

#include <sstream>

#include "common/check.hpp"
#include "common/codec.hpp"

namespace abcast::harness {
namespace {

std::uint64_t mix_hash(std::uint64_t h, const MsgId& id) {
  auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  };
  mix(id.sender);
  mix(id.seq);
  return h;
}

}  // namespace

void OracleSink::deliver(const core::AppMsg& msg) {
  oracle_.on_deliver(pid_, msg);
}

Bytes OracleSink::take_checkpoint() { return oracle_.checkpoint_state(pid_); }

void OracleSink::install_checkpoint(const Bytes& state) {
  oracle_.install_state(pid_, state);
}

Oracle::Oracle(std::uint32_t n) : n_(n), positions_(n, 0) {
  prefix_hash_.push_back(0);
  now_ = [] { return TimePoint{0}; };
}

void Oracle::on_broadcast(const MsgId& id, TimePoint at) {
  ABCAST_CHECK_MSG(broadcast_time_.emplace(id, at).second,
                   "duplicate broadcast id " + to_string(id));
}

void Oracle::on_restart(ProcessId pid) {
  ABCAST_CHECK(pid < n_);
  // A fresh incarnation re-delivers from the start unless a checkpoint is
  // installed first.
  positions_[pid] = 0;
}

void Oracle::on_deliver(ProcessId pid, const core::AppMsg& msg) {
  ABCAST_CHECK(pid < n_);
  deliver_upcalls_ += 1;

  // Validity: delivered implies broadcast.
  ABCAST_CHECK_MSG(broadcast_time_.count(msg.id) != 0,
                   "validity violated: spurious message " + to_string(msg.id) +
                       " delivered at p" + std::to_string(pid));

  const std::uint64_t pos = positions_[pid];
  if (pos < global_.size()) {
    // Prefix agreement: this process must re-trace the established order.
    ABCAST_CHECK_MSG(
        global_[pos] == msg.id,
        "total order violated at p" + std::to_string(pid) + " position " +
            std::to_string(pos) + ": expected " + to_string(global_[pos]) +
            " got " + to_string(msg.id));
  } else {
    // This process extends the global order.
    ABCAST_CHECK_MSG(pos == global_.size(), "gap in delivery position");
    // Integrity (global form): no message ordered twice.
    ABCAST_CHECK_MSG(delivered_set_.insert(msg.id).second,
                     "integrity violated: " + to_string(msg.id) +
                         " ordered twice");
    global_.push_back(msg.id);
    prefix_hash_.push_back(mix_hash(prefix_hash_.back(), msg.id));
    const TimePoint now = now_();
    first_delivery_.emplace(msg.id, now);
    latencies_.push_back(now - broadcast_time_.at(msg.id));
    timed_latencies_.push_back({now, latencies_.back()});
  }
  positions_[pid] = pos + 1;
}

Bytes Oracle::checkpoint_state(ProcessId pid) const {
  BufWriter w;
  w.u64(positions_[pid]);
  w.u64(prefix_hash_at(positions_[pid]));
  return std::move(w).take();
}

void Oracle::install_state(ProcessId pid, const Bytes& state) {
  ABCAST_CHECK(pid < n_);
  if (state.empty()) {
    // A-checkpoint(⊥): initial state.
    positions_[pid] = 0;
    return;
  }
  BufReader r(state);
  const std::uint64_t pos = r.u64();
  const std::uint64_t hash = r.u64();
  r.expect_done();
  ABCAST_CHECK_MSG(pos <= global_.size(),
                   "checkpoint beyond the global order");
  ABCAST_CHECK_MSG(hash == prefix_hash_at(pos),
                   "checkpoint state does not match the global prefix at "
                   "position " + std::to_string(pos));
  positions_[pid] = pos;
}

std::uint64_t Oracle::prefix_hash_at(std::uint64_t position) const {
  ABCAST_CHECK(position < prefix_hash_.size());
  return prefix_hash_[position];
}

bool Oracle::all_delivered(const std::vector<MsgId>& ids,
                           const std::vector<ProcessId>& at) const {
  // A process has delivered id iff its position is past id's index in the
  // global order.
  std::map<MsgId, std::uint64_t> index;
  for (std::uint64_t i = 0; i < global_.size(); ++i) index[global_[i]] = i;
  for (const auto& id : ids) {
    auto it = index.find(id);
    if (it == index.end()) return false;
    for (const ProcessId p : at) {
      ABCAST_CHECK(p < n_);
      if (positions_[p] <= it->second) return false;
    }
  }
  return true;
}

void Oracle::check() const {
  // All per-event invariants are enforced eagerly in on_deliver /
  // install_state; this re-validates cheap global ones.
  ABCAST_CHECK(global_.size() == delivered_set_.size());
  ABCAST_CHECK(prefix_hash_.size() == global_.size() + 1);
  for (const auto pos : positions_) ABCAST_CHECK(pos <= global_.size());
}

}  // namespace abcast::harness
