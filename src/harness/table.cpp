#include "harness/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/check.hpp"

namespace abcast::harness {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::row(std::vector<std::string> cells) {
  ABCAST_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& r : rows_) widths[c] = std::max(widths[c], r[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << std::setw(static_cast<int>(widths[c])) << cells[c];
    }
    os << " |\n";
  };
  print_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  os << "-|\n";
  for (const auto& r : rows_) print_row(r);
}

}  // namespace abcast::harness
