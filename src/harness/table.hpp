// Plain-text table printer for the bench binaries' paper-style rows.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace abcast::harness {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds one row; cells are pre-formatted strings.
  void row(std::vector<std::string> cells);

  /// Formats a double with fixed precision.
  static std::string num(double v, int precision = 2);

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace abcast::harness
