// One-call cluster setup: a Simulation running NodeStacks over OracleSinks,
// with broadcast/await conveniences. Shared by the test suite and by every
// bench binary.
#pragma once

#include <memory>
#include <vector>

#include "core/node_stack.hpp"
#include "harness/oracle.hpp"
#include "sim/simulation.hpp"

namespace abcast::harness {

struct ClusterConfig {
  sim::SimConfig sim;
  core::StackConfig stack;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);

  /// Starts every process at time zero.
  void start_all() { sim_.start_all(); }

  sim::Simulation& sim() { return sim_; }
  Oracle& oracle() { return oracle_; }
  const ClusterConfig& config() const { return config_; }

  /// The protocol stack of `p`, or nullptr while p is down.
  core::NodeStack* stack(ProcessId p);

  /// A-broadcasts a payload from `p` (p must be up) and registers the id
  /// with the oracle.
  MsgId broadcast(ProcessId p, Bytes payload = {});

  /// Outcome of a broadcast attempted against storage with an armed
  /// crash-point: `completed` is false when the call was interrupted by a
  /// crash. The id is registered with the oracle either way — an
  /// interrupted broadcast may still have been made durable (crash after
  /// the log op) and legitimately delivered later.
  struct BroadcastAttempt {
    MsgId id{};
    bool completed = false;
  };

  /// Like broadcast(), but tolerates the process crashing inside the call
  /// (SimulatedCrash / StorageIoError from an armed fault): the crash is
  /// converted into the usual host crash and reported in the result instead
  /// of unwinding into the test.
  BroadcastAttempt broadcast_may_crash(ProcessId p, Bytes payload = {});

  /// Broadcasts `count` small messages from `p`.
  std::vector<MsgId> broadcast_many(ProcessId p, std::size_t count);

  /// Runs until all ids are delivered at all listed processes (default: at
  /// every process). Returns false on timeout.
  bool await_delivery(const std::vector<MsgId>& ids,
                      std::vector<ProcessId> at = {},
                      Duration timeout = seconds(60));

  /// Runs until every up process has completed at least `k` rounds.
  bool await_round(std::uint64_t k, Duration timeout = seconds(60));

  /// Runs until the cluster is quiesced: every process up, all delivery
  /// sequences equally long, and no unordered messages pending anywhere.
  /// (Crashed processes must be recovered by the caller first.) A quiesced
  /// end state is what makes the offline checker's strict Termination and
  /// Validity checks sound.
  bool await_quiesced(Duration timeout = seconds(60));

  /// Merged trace of every host (requires sim.trace_capacity > 0).
  std::vector<obs::TraceEvent> collect_trace();

  /// Events overwritten in any host's ring; a checker run should require 0.
  std::uint64_t trace_dropped();

  std::vector<ProcessId> all_processes() const;
  std::vector<ProcessId> up_processes();

  /// Sum of log operations (stable-storage puts) across processes, split
  /// by layer scope. Reads each host's storage stats.
  struct LogOps {
    std::uint64_t fd = 0;
    std::uint64_t consensus = 0;
    std::uint64_t ab = 0;
    std::uint64_t total = 0;
  };
  LogOps log_ops(ProcessId p);

 private:
  ClusterConfig config_;
  sim::Simulation sim_;
  Oracle oracle_;
  std::vector<std::unique_ptr<OracleSink>> sinks_;
};

}  // namespace abcast::harness
