#include "harness/fixture.hpp"

#include "common/check.hpp"

namespace abcast::harness {

Cluster::Cluster(ClusterConfig config)
    : config_(config), sim_(config.sim), oracle_(config.sim.n) {
  oracle_.set_clock([this] { return sim_.now(); });
  sinks_.reserve(config_.sim.n);
  for (ProcessId p = 0; p < config_.sim.n; ++p) {
    sinks_.push_back(std::make_unique<OracleSink>(oracle_, p));
  }
  sim_.set_node_factory([this](Env& env) {
    const ProcessId pid = env.self();
    // A fresh incarnation restarts its delivery sequence (unless it
    // installs a checkpoint during recovery).
    oracle_.on_restart(pid);
    return std::make_unique<core::NodeStack>(env, config_.stack,
                                             *sinks_[pid]);
  });
}

core::NodeStack* Cluster::stack(ProcessId p) {
  // The factory above only ever creates NodeStacks.
  return static_cast<core::NodeStack*>(sim_.node(p));
}

MsgId Cluster::broadcast(ProcessId p, Bytes payload) {
  core::NodeStack* s = stack(p);
  ABCAST_CHECK_MSG(s != nullptr, "broadcast from a down process");
  const MsgId id = s->ab().broadcast(std::move(payload));
  oracle_.on_broadcast(id, sim_.now());
  return id;
}

Cluster::BroadcastAttempt Cluster::broadcast_may_crash(ProcessId p,
                                                       Bytes payload) {
  core::NodeStack* s = stack(p);
  ABCAST_CHECK_MSG(s != nullptr, "broadcast from a down process");
  BroadcastAttempt out;
  // Register the id BEFORE invoking broadcast: if the call crashes after
  // its log op, the message is durable and will be delivered on recovery —
  // the oracle must already know it to keep its Validity check sound.
  out.id = s->ab().next_broadcast_id();
  oracle_.on_broadcast(out.id, sim_.now());
  try {
    const MsgId actual = s->ab().broadcast(std::move(payload));
    ABCAST_CHECK(actual == out.id);
    out.completed = true;
  } catch (const SimulatedCrash&) {
    sim_.host(p).crash_from_storage_fault();
  } catch (const StorageIoError&) {
    sim_.host(p).crash_from_storage_fault();
  }
  return out;
}

std::vector<MsgId> Cluster::broadcast_many(ProcessId p, std::size_t count) {
  std::vector<MsgId> ids;
  ids.reserve(count);
  for (std::size_t i = 0; i < count; ++i) ids.push_back(broadcast(p));
  return ids;
}

bool Cluster::await_delivery(const std::vector<MsgId>& ids,
                             std::vector<ProcessId> at, Duration timeout) {
  if (at.empty()) at = all_processes();
  return sim_.run_until_pred(
      [&] { return oracle_.all_delivered(ids, at); },
      sim_.now() + timeout);
}

bool Cluster::await_round(std::uint64_t k, Duration timeout) {
  return sim_.run_until_pred(
      [&] {
        for (ProcessId p = 0; p < sim_.n(); ++p) {
          core::NodeStack* s = stack(p);
          if (s != nullptr && s->ab().round() < k) return false;
        }
        return true;
      },
      sim_.now() + timeout);
}

bool Cluster::await_quiesced(Duration timeout) {
  return sim_.run_until_pred(
      [&] {
        std::uint64_t total = 0;
        for (ProcessId p = 0; p < sim_.n(); ++p) {
          core::NodeStack* s = stack(p);
          if (s == nullptr) return false;
          if (s->ab().unordered_size() != 0) return false;
          if (p == 0) {
            total = s->ab().agreed().total();
          } else if (s->ab().agreed().total() != total) {
            return false;
          }
        }
        return true;
      },
      sim_.now() + timeout);
}

std::vector<obs::TraceEvent> Cluster::collect_trace() {
  std::vector<obs::TraceEvent> merged;
  for (ProcessId p = 0; p < sim_.n(); ++p) {
    auto* rec = sim_.host(p).recorder();
    ABCAST_CHECK_MSG(rec != nullptr,
                     "collect_trace requires sim.trace_capacity > 0");
    auto events = rec->events();
    merged.insert(merged.end(), events.begin(), events.end());
  }
  return merged;
}

std::uint64_t Cluster::trace_dropped() {
  std::uint64_t dropped = 0;
  for (ProcessId p = 0; p < sim_.n(); ++p) {
    if (auto* rec = sim_.host(p).recorder()) dropped += rec->dropped();
  }
  return dropped;
}

std::vector<ProcessId> Cluster::all_processes() const {
  std::vector<ProcessId> out;
  for (ProcessId p = 0; p < config_.sim.n; ++p) out.push_back(p);
  return out;
}

std::vector<ProcessId> Cluster::up_processes() {
  std::vector<ProcessId> out;
  for (ProcessId p = 0; p < sim_.n(); ++p) {
    if (sim_.host(p).is_up()) out.push_back(p);
  }
  return out;
}

Cluster::LogOps Cluster::log_ops(ProcessId p) {
  // Per-scope counters live in the host-side storage so they survive
  // crashes; this requires the default MemStableStorage (behind the
  // fault-injection decorator).
  auto* mem = dynamic_cast<MemStableStorage*>(&sim_.host(p).raw_storage());
  ABCAST_CHECK_MSG(mem != nullptr,
                   "log_ops requires MemStableStorage-backed hosts");
  LogOps ops;
  ops.fd = mem->scope_stats("fd").put_ops;
  ops.consensus = mem->scope_stats("cons").put_ops;
  ops.ab = mem->scope_stats("ab").put_ops;
  ops.total = mem->stats().put_ops;
  return ops;
}

}  // namespace abcast::harness
