// Fault storm: the protocol under sustained abuse.
//
// Five processes, 10% message loss, 5% duplication, continuous random
// crash/recovery churn on four of them, plus a temporary network partition
// — while a workload keeps broadcasting. The run ends with a full audit of
// the four Atomic Broadcast properties by the harness oracle, plus a
// metrics dump. Run:  ./fault_storm
#include <cstdio>

#include "harness/fixture.hpp"
#include "sim/fault_plan.hpp"

using namespace abcast;
using namespace abcast::harness;

int main() {
  ClusterConfig cfg;
  cfg.sim.n = 5;
  cfg.sim.seed = 1234;
  cfg.sim.net.drop_prob = 0.10;
  cfg.sim.net.dup_prob = 0.05;
  cfg.stack.ab = core::Options::alternative();
  Cluster cluster(cfg);
  cluster.start_all();

  sim::ChurnConfig churn;
  churn.mtbf = seconds(2);
  churn.mttr = millis(400);
  churn.victims = {1, 2, 3, 4};
  churn.stop = seconds(25);
  sim::ChurnInjector injector(cluster.sim(), churn);

  std::printf("broadcasting 100 messages into the storm...\n");
  std::vector<MsgId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(cluster.broadcast(0));
    cluster.sim().run_for(millis(60));
    if (i == 40) {
      std::printf("  t=%.1fs partitioning {3,4} away\n",
                  static_cast<double>(cluster.sim().now()) / 1e9);
      cluster.sim().partition({3, 4});
    }
    if (i == 60) {
      std::printf("  t=%.1fs healing the partition\n",
                  static_cast<double>(cluster.sim().now()) / 1e9);
      cluster.sim().heal_partition();
    }
  }

  cluster.sim().run_until(seconds(27));
  for (ProcessId p = 0; p < 5; ++p) {
    if (!cluster.sim().host(p).is_up()) cluster.sim().recover(p);
  }
  const bool done = cluster.await_delivery(ids, {}, seconds(180));
  cluster.oracle().check();  // throws if any safety property was violated

  const auto& net = cluster.sim().net_stats();
  std::printf("\nsurvived: %llu crashes injected, %llu datagrams lost, "
              "%llu duplicated\n",
              static_cast<unsigned long long>(injector.crashes_injected()),
              static_cast<unsigned long long>(net.dropped_channel +
                                              net.dropped_down +
                                              net.dropped_partition),
              static_cast<unsigned long long>(net.duplicated));
  std::printf("all 100 messages delivered at all 5 processes: %s\n",
              done ? "yes" : "NO");
  std::printf("safety (validity, integrity, total order): verified by "
              "oracle\n\nper-process metrics:\n");
  for (ProcessId p = 0; p < 5; ++p) {
    const auto& m = cluster.stack(p)->ab().metrics();
    std::printf("  p%u: round=%llu replayed=%llu state-transfers=%llu "
                "checkpoints=%llu crashes=%llu\n",
                p, static_cast<unsigned long long>(cluster.stack(p)->ab().round()),
                static_cast<unsigned long long>(m.replayed_rounds),
                static_cast<unsigned long long>(m.state_applied),
                static_cast<unsigned long long>(m.checkpoints),
                static_cast<unsigned long long>(
                    cluster.sim().host(p).stats().crashes));
  }
  return done ? 0 : 1;
}
