// Replicated bank accounts over the Atomic Broadcast RSM.
//
// Five replicas apply deposits/withdrawals in total order while two of them
// keep crashing and recovering; application-level checkpoints (paper §5.2)
// keep logs bounded and make recovery instant. At the end every replica
// holds identical balances. Run:  ./replicated_kv
#include <cstdio>

#include "apps/kv_store.hpp"
#include "apps/rsm.hpp"
#include "sim/fault_plan.hpp"
#include "sim/simulation.hpp"

using namespace abcast;
using namespace abcast::apps;

int main() {
  sim::Simulation sim({.n = 5, .seed = 7});
  core::StackConfig stack_cfg;
  stack_cfg.ab.checkpointing = true;
  stack_cfg.ab.app_checkpointing = true;   // A-checkpoint upcall (Fig. 5)
  stack_cfg.ab.truncate_logs = true;       // bounded logs (Fig. 4, line c)
  stack_cfg.ab.state_transfer = true;      // catch up long-dead replicas
  stack_cfg.ab.log_unordered = true;       // deposits survive sender crashes
  stack_cfg.ab.incremental_unordered_log = true;

  sim.set_node_factory([stack_cfg](Env& env) {
    return std::make_unique<RsmNode>(
        env, stack_cfg, [] { return std::make_unique<KvStore>(); });
  });
  sim.start_all();
  auto node = [&sim](ProcessId p) {
    return static_cast<RsmNode*>(sim.node(p));
  };
  auto kv = [&node](ProcessId p) -> KvStore& {
    return static_cast<KvStore&>(node(p)->rsm().machine());
  };

  // Replicas 3 and 4 crash and recover randomly throughout the run.
  sim::ChurnConfig churn;
  churn.mtbf = seconds(2);
  churn.mttr = millis(500);
  churn.victims = {3, 4};
  churn.stop = seconds(30);
  sim::ChurnInjector injector(sim, churn);

  // 300 banking operations, submitted via whichever replica is up.
  const char* accounts[] = {"alice", "bob", "carol"};
  int submitted = 0;
  for (int i = 0; i < 300; ++i) {
    const ProcessId via = static_cast<ProcessId>(i % 5);
    if (sim.host(via).is_up()) {
      node(via)->submit(KvCommand::add(accounts[i % 3], (i % 7) - 3));
      submitted += 1;
    }
    sim.run_for(millis(40));
  }

  // Settle: end churn, revive everyone, wait for convergence.
  sim.run_until(seconds(32));
  for (ProcessId p = 0; p < 5; ++p) {
    if (!sim.host(p).is_up()) sim.recover(p);
  }
  const bool converged = sim.run_until_pred(
      [&] {
        const auto d = kv(0).digest();
        for (ProcessId p = 1; p < 5; ++p) {
          if (kv(p).digest() != d) return false;
        }
        return kv(0).applied_commands() >= static_cast<std::uint64_t>(
                                               submitted);
      },
      sim.now() + seconds(120));

  std::printf("submitted %d ops; churn injected %llu crashes\n", submitted,
              static_cast<unsigned long long>(injector.crashes_injected()));
  std::printf("replicas converged: %s\n", converged ? "yes" : "NO");
  for (const char* account : accounts) {
    std::printf("  %-6s = %lld (identical at all %u replicas)\n", account,
                static_cast<long long>(kv(0).get_int(account)), sim.n());
  }
  std::printf("stable storage at p0: %llu bytes (bounded by checkpoints)\n",
              static_cast<unsigned long long>(
                  sim.host(0).storage().footprint_bytes()));
  return converged ? 0 : 1;
}
