// Real-time demo: the same protocol stacks on actual threads, a real
// clock, and file-backed stable storage — no simulator involved.
//
// Three replica threads run a counter RSM over a lossy in-process network;
// one replica is killed mid-run and recovers from its on-disk logs. Run:
// ./rt_demo
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <thread>

#include "apps/kv_store.hpp"
#include "apps/rsm.hpp"
#include "rt/rt_cluster.hpp"
#include "storage/file_storage.hpp"

using namespace abcast;
using namespace abcast::apps;
namespace fs = std::filesystem;

int main() {
  const fs::path dir = fs::temp_directory_path() / "abcast_rt_demo";
  fs::remove_all(dir);

  rt::RtConfig cfg;
  cfg.n = 3;
  cfg.net.drop_prob = 0.05;   // a genuinely lossy loopback network
  cfg.storage_factory = [dir](ProcessId p) {
    // Crash-atomic, CRC-checked records on disk (fsync off for demo speed).
    return std::make_unique<FileStableStorage>(
        dir / ("replica" + std::to_string(p)), /*fsync_writes=*/false);
  };
  rt::RtCluster cluster(cfg);

  core::StackConfig stack_cfg;
  stack_cfg.ab.log_unordered = true;  // submissions survive replica crashes
  stack_cfg.ab.incremental_unordered_log = true;
  cluster.set_node_factory([stack_cfg](Env& env) {
    return std::make_unique<RsmNode>(
        env, stack_cfg, [] { return std::make_unique<KvStore>(); });
  });
  cluster.start_all();

  auto submit_add = [&cluster](ProcessId via, std::int64_t delta) {
    auto& host = cluster.host(via);
    return host.call([&host, delta] {
      static_cast<RsmNode*>(host.node_unsafe())
          ->submit(KvCommand::add("counter", delta));
    });
  };
  auto read_counter = [&cluster](ProcessId at) {
    std::int64_t v = -1;
    auto& host = cluster.host(at);
    host.call([&host, &v] {
      v = static_cast<KvStore&>(
              static_cast<RsmNode*>(host.node_unsafe())->rsm().machine())
              .get_int("counter");
    });
    return v;
  };

  std::printf("submitting 30 increments across the replicas...\n");
  for (int i = 0; i < 30; ++i) {
    // If the chosen replica is down, fail over to the next one — exactly
    // what a client library would do.
    for (int attempt = 0; attempt < 3; ++attempt) {
      if (submit_add(static_cast<ProcessId>((i + attempt) % 3), 1)) break;
    }
    if (i == 14) {
      std::printf("killing replica 2 mid-stream...\n");
      cluster.crash(2);
    }
    if (i == 22) {
      std::printf("replica 2 recovering from its on-disk log...\n");
      cluster.recover(2);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  const bool ok = cluster.wait_for(
      [&] {
        for (ProcessId p = 0; p < 3; ++p) {
          if (read_counter(p) != 30) return false;
        }
        return true;
      },
      seconds(60));

  for (ProcessId p = 0; p < 3; ++p) {
    std::printf("replica %u counter = %lld\n", p,
                static_cast<long long>(read_counter(p)));
  }
  std::printf("converged across real threads + disk: %s\n",
              ok ? "yes" : "NO");
  fs::remove_all(dir);
  return ok ? 0 : 1;
}
