// Quickstart: Atomic Broadcast in ~60 lines.
//
// Three processes A-broadcast messages concurrently; every process delivers
// them in the same total order, and a crashed process recovers the full
// order from its stable storage. Run:  ./quickstart
#include <cstdio>
#include <set>
#include <string>

#include "core/delivery_sink.hpp"
#include "core/node_stack.hpp"
#include "sim/simulation.hpp"

using namespace abcast;

namespace {

// The application: print every delivery in order. The printer survives the
// simulated crash (it plays the role of an external observer), so it can
// label the re-deliveries a recovering process replays from its logs.
class Printer final : public core::DeliverySink {
 public:
  explicit Printer(ProcessId pid) : pid_(pid) {}

  void deliver(const core::AppMsg& msg) override {
    const bool replay = !seen_.insert(msg.id).second;
    std::printf("  p%u delivers #%llu from p%u: \"%s\"%s\n", pid_,
                static_cast<unsigned long long>(++count_), msg.id.sender,
                std::string(msg.payload.begin(), msg.payload.end()).c_str(),
                replay ? "   (replayed after recovery)" : "");
  }

 private:
  ProcessId pid_;
  std::uint64_t count_ = 0;
  std::set<MsgId> seen_;
};

Bytes text(const std::string& s) { return Bytes(s.begin(), s.end()); }

}  // namespace

int main() {
  // A deterministic 3-process asynchronous system with a lossy network.
  sim::Simulation sim({.n = 3, .seed = 2026});
  std::vector<Printer> apps{Printer{0}, Printer{1}, Printer{2}};
  sim.set_node_factory([&apps](Env& env) {
    // One NodeStack = failure detector + consensus + atomic broadcast.
    return std::make_unique<core::NodeStack>(env, core::StackConfig{},
                                             apps[env.self()]);
  });
  sim.start_all();
  auto stack = [&sim](ProcessId p) {
    return static_cast<core::NodeStack*>(sim.node(p));
  };

  std::printf("== concurrent broadcasts from all three processes ==\n");
  stack(0)->ab().broadcast(text("alpha from p0"));
  stack(1)->ab().broadcast(text("beta from p1"));
  stack(2)->ab().broadcast(text("gamma from p2"));
  sim.run_for(seconds(2));

  std::printf("\n== p2 crashes, misses a message, recovers, catches up ==\n");
  sim.crash(2);
  const MsgId missed = stack(0)->ab().broadcast(text("sent while p2 down"));
  sim.run_for(seconds(2));
  sim.recover(2);  // p2 replays the order from its logs + gossip
  sim.run_until_pred(
      [&] { return stack(2)->ab().is_delivered(missed); }, seconds(30));

  std::printf("\nall processes delivered %llu messages in the same order\n",
              static_cast<unsigned long long>(stack(0)->ab().round() > 0
                                                  ? stack(0)->ab().agreed().total()
                                                  : 0));
  return 0;
}
