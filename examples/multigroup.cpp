// Total-order multicast to distinct groups (paper §6.4).
//
// Nine processes form three replicated services ("users", "orders",
// "billing"); cross-service events are multicast to exactly the services
// that need them, yet any two services that share an event see all their
// shared events in the same order — without a global sequencer. Run:
// ./multigroup
#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "multicast/multicast.hpp"
#include "sim/simulation.hpp"

using namespace abcast;
using namespace abcast::multicast;

namespace {

Bytes text(const std::string& s) { return Bytes(s.begin(), s.end()); }
std::string str_of(const Bytes& b) { return std::string(b.begin(), b.end()); }

constexpr std::uint32_t kUsers = 0;
constexpr std::uint32_t kOrders = 1;
constexpr std::uint32_t kBilling = 2;
const char* kGroupNames[] = {"users", "orders", "billing"};

}  // namespace

int main() {
  const GroupTopology topology{{{0, 1, 2}, {3, 4, 5}, {6, 7, 8}}};
  sim::Simulation sim({.n = 9, .seed = 31});

  // Per-process delivery logs (payload strings) for the final report.
  std::vector<std::vector<std::string>> log(9);
  sim.set_node_factory([&](Env& env) {
    const ProcessId pid = env.self();
    log[pid].clear();
    return std::make_unique<MulticastNode>(
        env, topology, MulticastConfig{},
        [&log, pid](const McDelivery& d) {
          log[pid].push_back(str_of(d.payload));
        });
  });
  sim.start_all();
  auto node = [&sim](ProcessId p) {
    return static_cast<MulticastNode*>(sim.node(p));
  };

  // A little cross-service workload.
  node(0)->mcast(text("user:signup(alice)"), {kUsers});
  node(3)->mcast(text("order:created(#1,alice)"), {kOrders, kUsers});
  node(3)->mcast(text("order:paid(#1)"), {kOrders, kBilling});
  node(6)->mcast(text("billing:invoice(#1)"), {kBilling});
  node(0)->mcast(text("user:deleted(alice)"), {kUsers, kOrders, kBilling});
  node(4)->mcast(text("order:created(#2,bob)"), {kOrders, kUsers});

  // One replica of "orders" crashes and recovers mid-run.
  sim.crash_at(millis(80), 5);
  sim.recover_at(millis(400), 5);

  sim.run_until_pred(
      [&] {
        // users sees 4 events, orders 4, billing 3.
        return log[0].size() >= 4 && log[3].size() >= 4 &&
               log[5].size() >= 4 && log[6].size() >= 3;
      },
      seconds(60));

  for (std::uint32_t g = 0; g < 3; ++g) {
    const ProcessId rep = topology.groups[g][0];
    std::printf("%s service (replica p%u) delivered, in order:\n",
                kGroupNames[g], rep);
    for (const auto& e : log[rep]) std::printf("    %s\n", e.c_str());
  }

  // Verify the cross-group guarantee on a shared pair: "order:paid" vs
  // "user:deleted" are both delivered at orders AND billing.
  auto index_of = [&](ProcessId p, const std::string& e) {
    const auto& v = log[p];
    return std::distance(v.begin(), std::find(v.begin(), v.end(), e));
  };
  const bool same_order =
      (index_of(3, "order:paid(#1)") < index_of(3, "user:deleted(alice)")) ==
      (index_of(6, "order:paid(#1)") < index_of(6, "user:deleted(alice)"));
  std::printf("\nshared events ordered identically at 'orders' and "
              "'billing': %s\n", same_order ? "yes" : "NO");
  return same_order ? 0 : 1;
}
