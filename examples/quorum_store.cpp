// Quorum-replicated store with AB-ordered vote reassignment (paper §6.3).
//
// Five replicas serve reads/writes from weighted quorums — no total order
// on the data path — while configuration changes (vote reassignment) are
// agreed through Atomic Broadcast. The demo re-weights the system at
// runtime to keep a "primary site" in every quorum, then proves the new
// configuration is live. Run:  ./quorum_store
#include <cstdio>

#include "apps/quorum.hpp"
#include "sim/simulation.hpp"

using namespace abcast;
using namespace abcast::apps;

int main() {
  sim::Simulation sim({.n = 5, .seed = 77});
  sim.set_node_factory([](Env& env) {
    return std::make_unique<QuorumReplicaNode>(env, core::StackConfig{},
                                               QuorumConfig::uniform(5));
  });
  sim.start_all();
  auto node = [&sim](ProcessId p) {
    return static_cast<QuorumReplicaNode*>(sim.node(p));
  };
  // Quorum callbacks can outlive the await (ops retry until a quorum is
  // reachable), so they own their state via shared_ptr.
  auto write = [&](ProcessId via, std::string key, std::string value) {
    auto done = std::make_shared<bool>(false);
    node(via)->write(std::move(key), std::move(value),
                     [done] { *done = true; });
    return sim.run_until_pred([&] { return *done; }, sim.now() + seconds(30));
  };
  auto read = [&](ProcessId via, std::string key) {
    auto out = std::make_shared<std::string>("<none>");
    auto done = std::make_shared<bool>(false);
    node(via)->read(std::move(key),
                    [out, done](std::optional<std::string> v,
                                QuorumVersion ver) {
                      if (v) {
                        *out = *v + "  (version " +
                               std::to_string(ver.counter) + ")";
                      }
                      *done = true;
                    });
    sim.run_until_pred([&] { return *done; }, sim.now() + seconds(30));
    return *out;
  };

  std::printf("== uniform voting (1 vote each, R = W = 3) ==\n");
  write(0, "motd", "hello from p0");
  std::printf("read via p4: %s\n", read(4, "motd").c_str());

  std::printf("\n== two replicas crash; a 3-vote quorum remains ==\n");
  sim.crash(3);
  sim.crash(4);
  write(1, "motd", "written with two replicas down");
  std::printf("read via p2: %s\n", read(2, "motd").c_str());
  sim.recover(3);
  sim.recover(4);

  std::printf("\n== vote reassignment via Atomic Broadcast: p0 becomes a "
              "primary site (3 votes, R = W = 4) ==\n");
  QuorumConfig weighted;
  weighted.votes = {3, 1, 1, 1, 1};
  weighted.read_quorum = 4;
  weighted.write_quorum = 4;
  node(2)->propose_config(weighted);
  sim.run_until_pred(
      [&] {
        for (ProcessId p = 0; p < 5; ++p) {
          if (node(p)->epoch() != 1) return false;
        }
        return true;
      },
      sim.now() + seconds(30));
  std::printf("all replicas installed epoch 1 in the same order\n");

  std::printf("p0 plus any light replica now forms a quorum:\n");
  sim.crash(2);
  sim.crash(3);
  sim.crash(4);
  const bool ok = write(0, "motd", "anchored by the primary site");
  std::printf("write with three replicas down: %s\n", ok ? "ok" : "BLOCKED");
  std::printf("read via p1: %s\n", read(1, "motd").c_str());
  return ok ? 0 : 1;
}
