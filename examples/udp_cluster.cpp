// The full stack over REAL UDP sockets (paper §3.1's transport, verbatim:
// unreliable, duplicating, non-FIFO datagrams).
//
// Three replicas bind localhost UDP ports and order commands through the
// crash-recovery protocol; one replica is killed and recovers from its
// storage while traffic continues. Everything the simulator injected
// (loss, reordering) here comes from the actual kernel. Run:  ./udp_cluster
#include <chrono>
#include <cstdio>
#include <thread>

#include "apps/kv_store.hpp"
#include "apps/rsm.hpp"
#include "net/udp_env.hpp"

using namespace abcast;
using namespace abcast::apps;
using namespace abcast::net;

int main() {
  auto hosts = make_local_udp_cluster(3, 2026);
  std::printf("three replicas on UDP ports %u, %u, %u\n",
              hosts[0]->local_port(), hosts[1]->local_port(),
              hosts[2]->local_port());

  core::StackConfig stack;
  stack.ab.log_unordered = true;  // submissions survive replica crashes
  stack.ab.incremental_unordered_log = true;
  NodeFactory factory = [stack](Env& env) {
    return std::make_unique<RsmNode>(
        env, stack, [] { return std::make_unique<KvStore>(); });
  };
  for (auto& h : hosts) h->start_node(factory, /*recovering=*/false);

  auto submit = [&](ProcessId via) {
    auto& h = *hosts[via];
    return h.call([&h] {
      static_cast<RsmNode*>(h.node_unsafe())
          ->submit(KvCommand::add("counter", 1));
    });
  };
  auto read_counter = [&](ProcessId at) {
    std::int64_t v = -1;
    auto& h = *hosts[at];
    h.call([&h, &v] {
      v = static_cast<KvStore&>(
              static_cast<RsmNode*>(h.node_unsafe())->rsm().machine())
              .get_int("counter");
    });
    return v;
  };

  std::printf("submitting 24 increments across the replicas...\n");
  for (int i = 0; i < 24; ++i) {
    // Fail over to the next replica if the chosen one is down.
    for (int attempt = 0; attempt < 3; ++attempt) {
      if (submit(static_cast<ProcessId>((i + attempt) % 3))) break;
    }
    if (i == 11) {
      std::printf("killing replica 2 (socket stays; datagrams drop)...\n");
      hosts[2]->crash_node();
    }
    if (i == 17) {
      std::printf("replica 2 recovering from its log...\n");
      hosts[2]->start_node(factory, /*recovering=*/true);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  bool ok = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < deadline) {
    ok = read_counter(0) == 24 && read_counter(1) == 24 &&
         read_counter(2) == 24;
    if (ok) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  for (ProcessId p = 0; p < 3; ++p) {
    std::printf("replica %u counter = %lld\n", p,
                static_cast<long long>(read_counter(p)));
  }
  std::printf("converged over real UDP: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
