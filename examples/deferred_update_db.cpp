// Deferred-update replicated database (paper §6.2).
//
// Transactions execute locally at any replica; at commit time the (read
// set, write set) pair is A-broadcast and certified deterministically in
// total order at every replica — conflicting transactions abort, the rest
// commit, and no atomic-commitment protocol is needed. Run:
// ./deferred_update_db
#include <cstdio>

#include "apps/deferred_update.hpp"
#include "apps/rsm.hpp"
#include "common/rng.hpp"
#include "sim/simulation.hpp"

using namespace abcast;
using namespace abcast::apps;

int main() {
  sim::Simulation sim({.n = 3, .seed = 99});
  sim.set_node_factory([](Env& env) {
    return std::make_unique<RsmNode>(
        env, core::StackConfig{},
        [] { return std::make_unique<DeferredUpdateDb>(); });
  });
  sim.start_all();
  auto node = [&sim](ProcessId p) {
    return static_cast<RsmNode*>(sim.node(p));
  };
  auto db = [&node](ProcessId p) -> DeferredUpdateDb& {
    return static_cast<DeferredUpdateDb&>(node(p)->rsm().machine());
  };

  // Seed ten account records through replica 0.
  for (int i = 0; i < 10; ++i) {
    auto txn = db(0).begin();
    txn.put("acct" + std::to_string(i), "1000");
    node(0)->submit(txn.commit_request());
  }
  sim.run_until_pred([&] { return db(2).committed() == 10; }, seconds(30));

  // 150 transfer transactions executed at random replicas; hot accounts
  // conflict, so some must abort — identically at every replica.
  Rng rng(42);
  int attempted = 0;
  for (int i = 0; i < 150; ++i) {
    const ProcessId via = static_cast<ProcessId>(rng.uniform(0, 2));
    const std::string from = "acct" + std::to_string(rng.uniform(0, 3));
    const std::string to = "acct" + std::to_string(rng.uniform(0, 9));
    if (from == to) continue;
    auto txn = db(via).begin();
    const int balance = std::stoi(txn.get(from).value_or("0"));
    const int amount = static_cast<int>(rng.uniform(1, 50));
    if (balance < amount) continue;
    txn.put(from, std::to_string(balance - amount));
    txn.put(to, std::to_string(
                    std::stoi(txn.get(to).value_or("0")) + amount));
    node(via)->submit(txn.commit_request());
    attempted += 1;
    // Occasionally pause so some transactions certify before the next
    // batch executes (less pausing = more conflicts).
    if (i % 5 == 0) sim.run_for(millis(30));
  }

  sim.run_until_pred(
      [&] {
        for (ProcessId p = 0; p < 3; ++p) {
          if (db(p).committed() + db(p).aborted() <
              static_cast<std::uint64_t>(attempted) + 10) {
            return false;
          }
        }
        return true;
      },
      sim.now() + seconds(120));

  std::printf("attempted %d transfers\n", attempted);
  std::printf("committed  %llu   aborted (certification conflicts) %llu\n",
              static_cast<unsigned long long>(db(0).committed() - 10),
              static_cast<unsigned long long>(db(0).aborted()));

  // Money conservation + replica agreement: the whole point.
  long long total = 0;
  for (int i = 0; i < 10; ++i) {
    total += std::stoll(
        db(0).read_committed("acct" + std::to_string(i)).value_or("0"));
  }
  const bool identical = db(0).digest() == db(1).digest() &&
                         db(1).digest() == db(2).digest();
  std::printf("sum of balances = %lld (expected 10000)\n", total);
  std::printf("replicas identical: %s\n", identical ? "yes" : "NO");
  return (total == 10000 && identical) ? 0 : 1;
}
