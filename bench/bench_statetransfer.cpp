// E5 — State transfer vs instance-by-instance catch-up (paper §5.3).
//
// Claim: a process that missed D rounds needs O(D) work (and messages) to
// catch up by running the missed Consensus instances; adopting a state
// message is O(1) in rounds — the gap widens linearly with downtime.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

using namespace abcast;
using namespace abcast::bench;
using namespace abcast::harness;

namespace {

struct CatchUp {
  std::uint64_t missed_rounds = 0;
  double catch_up_ms = 0;
  std::uint64_t transfers = 0;       // state messages adopted
  std::uint64_t messages = 0;        // network messages during catch-up
  std::uint64_t state_bytes = 0;     // bytes in state messages
};

CatchUp run_once(int down_rounds, bool state_transfer,
                 bool trimmed = false) {
  ClusterConfig cfg;
  cfg.sim.n = 3;
  cfg.sim.seed = 500 + static_cast<std::uint64_t>(down_rounds);
  cfg.stack.ab.checkpointing = true;
  cfg.stack.ab.state_transfer = state_transfer;
  cfg.stack.ab.trimmed_state_transfer = trimmed;
  cfg.stack.ab.delta = 3;
  Cluster c(cfg);
  c.start_all();
  auto warm = c.broadcast_many(0, 2);
  c.await_delivery(warm);

  c.sim().crash(2);
  std::vector<MsgId> ids;
  for (int i = 0; i < down_rounds; ++i) {
    ids.push_back(c.broadcast(0));
    c.sim().run_for(millis(60));
  }
  c.await_delivery(ids, {0, 1}, seconds(600));
  const auto target = c.stack(0)->ab().round();

  const auto msgs_before = c.sim().net_stats().sent;
  const auto state_bytes_before =
      c.sim().net_stats().bytes_by_type.count(MsgType::kAbStateChunk)
          ? c.sim().net_stats().bytes_by_type.at(MsgType::kAbStateChunk)
          : 0;
  const TimePoint start = c.sim().now();
  c.sim().recover(2);
  c.sim().run_until_pred(
      [&] { return c.stack(2)->ab().round() >= target; },
      c.sim().now() + seconds(600));

  CatchUp out;
  out.missed_rounds = target - c.stack(2)->ab().metrics().replayed_rounds;
  out.catch_up_ms = static_cast<double>(c.sim().now() - start) / 1e6;
  out.transfers = c.stack(2)->ab().metrics().state_applied;
  out.messages = c.sim().net_stats().sent - msgs_before;
  const auto state_bytes_after =
      c.sim().net_stats().bytes_by_type.count(MsgType::kAbStateChunk)
          ? c.sim().net_stats().bytes_by_type.at(MsgType::kAbStateChunk)
          : 0;
  out.state_bytes = state_bytes_after - state_bytes_before;
  return out;
}

void run_tables() {
  banner("E5: catch-up after missing D rounds",
         "Claim: per-instance catch-up costs O(D) time and messages; a "
         "state transfer is ~constant — crossover at small D.");
  Table t({"D rounds", "variant", "catch-up ms", "transfers", "net msgs",
           "state KB"});
  for (const int d : {5, 10, 20, 50, 100}) {
    const auto replay = run_once(d, false);
    t.row({std::to_string(d), "per-instance", Table::num(replay.catch_up_ms),
           fmt_u64(replay.transfers), fmt_u64(replay.messages),
           Table::num(static_cast<double>(replay.state_bytes) / 1e3, 1)});
    const auto transfer = run_once(d, true);
    t.row({std::to_string(d), "state transfer (5.3)",
           Table::num(transfer.catch_up_ms), fmt_u64(transfer.transfers),
           fmt_u64(transfer.messages),
           Table::num(static_cast<double>(transfer.state_bytes) / 1e3, 1)});
    const auto trim = run_once(d, true, true);
    t.row({std::to_string(d), "trimmed transfer (5.3 opt)",
           Table::num(trim.catch_up_ms), fmt_u64(trim.transfers),
           fmt_u64(trim.messages),
           Table::num(static_cast<double>(trim.state_bytes) / 1e3, 1)});
  }
  t.print(std::cout);
}

void BM_CatchUp50RoundsTransfer(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_once(50, true).catch_up_ms);
  }
}
BENCHMARK(BM_CatchUp50RoundsTransfer)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
