// Wall-clock microbenchmarks of the hot paths underneath the protocol:
// codec, CRC, storage, scheduler, failure-detector tick, and one full
// simulated round. These are the constants behind every virtual-time
// experiment table.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "common/codec.hpp"
#include "common/crc32.hpp"
#include "core/app_msg.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/scheduler.hpp"
#include "storage/file_storage.hpp"
#include "storage/mem_storage.hpp"
#include "storage/segment_log_storage.hpp"

#include <filesystem>

using namespace abcast;
using namespace abcast::bench;

namespace {

void BM_CodecEncodeBatch(benchmark::State& state) {
  std::vector<core::AppMsg> batch;
  for (int i = 0; i < state.range(0); ++i) {
    batch.push_back({MsgId{0, static_cast<std::uint64_t>(i + 1)},
                     Bytes(128, 'x')});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::encode_batch(batch));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CodecEncodeBatch)->Arg(1)->Arg(16)->Arg(256);

void BM_CodecDecodeBatch(benchmark::State& state) {
  std::vector<core::AppMsg> batch;
  for (int i = 0; i < state.range(0); ++i) {
    batch.push_back({MsgId{0, static_cast<std::uint64_t>(i + 1)},
                     Bytes(128, 'x')});
  }
  const Bytes encoded = core::encode_batch(batch);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::decode_batch(encoded));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CodecDecodeBatch)->Arg(1)->Arg(16)->Arg(256);

void BM_Crc32(benchmark::State& state) {
  Bytes data(static_cast<std::size_t>(state.range(0)), 0x5A);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(64)->Arg(4096)->Arg(65536);

void BM_MemStoragePut(benchmark::State& state) {
  MemStableStorage storage;
  const Bytes value(256, 'v');
  std::uint64_t i = 0;
  for (auto _ : state) {
    storage.put("cons/prop/" + std::to_string(i++ % 1000), value);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MemStoragePut);

void BM_FileStoragePut(benchmark::State& state) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("abcast_bench_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  {
    FileStableStorage storage(dir, /*fsync_writes=*/false);
    const Bytes value(256, 'v');
    std::uint64_t i = 0;
    for (auto _ : state) {
      storage.put("cons/prop/" + std::to_string(i++ % 100), value);
    }
  }
  std::filesystem::remove_all(dir);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FileStoragePut);

void BM_FileStoragePutFsync(benchmark::State& state) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("abcast_bench_f_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  {
    FileStableStorage storage(dir, /*fsync_writes=*/true);
    const Bytes value(256, 'v');
    std::uint64_t i = 0;
    for (auto _ : state) {
      storage.put("cons/prop/" + std::to_string(i++ % 100), value);
    }
  }
  std::filesystem::remove_all(dir);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FileStoragePutFsync);

// The segmented-log backend (DESIGN.md §16), against the file-per-record
// numbers above: one buffered append per put instead of tmp+rename.
void BM_SegLogPut(benchmark::State& state) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("abcast_bench_sl_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  {
    SegmentedLogConfig cfg;
    cfg.dir = dir;
    cfg.sync = SyncMode::kNone;
    SegmentedLogStorage storage(cfg);
    const Bytes value(256, 'v');
    std::uint64_t i = 0;
    for (auto _ : state) {
      storage.put("cons/prop/" + std::to_string(i++ % 100), value);
    }
  }
  std::filesystem::remove_all(dir);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SegLogPut);

void BM_SegLogPutFsync(benchmark::State& state) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("abcast_bench_slf_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  {
    SegmentedLogConfig cfg;
    cfg.dir = dir;
    cfg.sync = SyncMode::kEachPut;
    SegmentedLogStorage storage(cfg);
    const Bytes value(256, 'v');
    std::uint64_t i = 0;
    for (auto _ : state) {
      storage.put("cons/prop/" + std::to_string(i++ % 100), value);
    }
  }
  std::filesystem::remove_all(dir);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SegLogPutFsync);

void BM_SchedulerChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler s;
    for (int i = 0; i < 1000; ++i) {
      s.schedule_at(i, [] {});
    }
    while (s.step()) {
    }
    benchmark::DoNotOptimize(s.now());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SchedulerChurn);

// ---- Observability hot-path overhead (see DESIGN.md "Observability") ----

void BM_MetricsCounterInc(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Counter& counter = registry.counter("bench_counter", {{"node", "0"}});
  for (auto _ : state) {
    counter.inc();
  }
  benchmark::DoNotOptimize(counter.value());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsCounterInc);

void BM_MetricsBoundSlotInc(benchmark::State& state) {
  // The protocol's actual hot path: a plain field increment on a struct the
  // registry holds a read-only binding into. The binding must cost nothing
  // here — it is only read at snapshot time. The slot is a RelaxedU64, so
  // the increment is a relaxed fetch_add.
  obs::MetricsRegistry registry;
  RelaxedU64 slot;
  obs::MetricsGroup group = registry.group();
  group.bind("bench_bound", {{"node", "0"}}, &slot);
  for (auto _ : state) {
    slot += 1;
    benchmark::DoNotOptimize(slot);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsBoundSlotInc);

void BM_MetricsHistogramObserve(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Histogram& hist = registry.histogram("bench_hist");
  std::uint64_t v = 0;
  for (auto _ : state) {
    hist.observe(v++ & 0xFFF);
  }
  benchmark::DoNotOptimize(hist.count());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsHistogramObserve);

void BM_TraceRecord(benchmark::State& state) {
  obs::TraceRecorder rec(0, 4096);
  TimePoint t = 0;
  for (auto _ : state) {
    rec.record(obs::EventKind::kDeliver, t++, 1, MsgId{0, 1}, 42);
  }
  benchmark::DoNotOptimize(rec.total_recorded());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceRecord);

void BM_SimulatedRoundTrip(benchmark::State& state) {
  // One full ordering round (broadcast -> consensus -> delivery at all 3
  // processes), including cluster construction.
  for (auto _ : state) {
    harness::ClusterConfig cfg;
    cfg.sim.n = 3;
    cfg.sim.seed = 1;
    harness::Cluster c(cfg);
    c.start_all();
    const MsgId id = c.broadcast(0);
    c.await_delivery({id});
    benchmark::DoNotOptimize(c.oracle().global_order().size());
  }
}
BENCHMARK(BM_SimulatedRoundTrip)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
