// E9 — Crash-recovery machinery vs the crash-stop Chandra-Toueg baseline
// (paper §5.6: "when crashes are definitive, the protocol reduces to the
// Chandra-Toueg Atomic Broadcast").
//
// In a crash-free run the protocols do the same ordering work; the
// crash-recovery versions additionally pay log operations. The simulator
// charges log ops zero time, so the table also projects end-to-end latency
// for several per-fsync costs — that projection is where the baseline's
// advantage (and the minimal-logging design's point) shows.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "core/crash_stop_ab.hpp"
#include "storage/discard_storage.hpp"

using namespace abcast;
using namespace abcast::bench;
using namespace abcast::harness;

namespace {

struct BaselineOutcome {
  WorkloadResult workload;
  double log_ops_per_msg = 0;     // per process, on the ordering path
  double net_msgs_per_msg = 0;
};

BaselineOutcome run_once(const char* which) {
  ClusterConfig cfg;
  cfg.sim.n = 3;
  cfg.sim.seed = 900;
  const std::string name = which;
  if (name == "crash-stop CT") {
    cfg.stack = core::crash_stop_baseline_config(ConsensusKind::kPaxos);
    cfg.sim.storage_factory = [](ProcessId) {
      return std::make_unique<DiscardStorage>();  // no durability at all
    };
  } else if (name == "basic (Fig.2)") {
    cfg.stack.ab = core::Options::basic();
  } else {
    cfg.stack.ab = core::Options::alternative();
  }
  Cluster c(cfg);
  c.start_all();
  BaselineOutcome out;
  const int kMsgs = 200;
  out.workload = run_open_loop(c, kMsgs, 8, millis(20));
  std::uint64_t puts = 0;
  for (ProcessId p = 0; p < 3; ++p) {
    puts += c.sim().host(p).storage().stats().put_ops;
  }
  // For the crash-stop baseline, durable ops are genuinely zero (writes are
  // discarded); report what WOULD have been requested as zero because no
  // stable storage exists in that model.
  out.log_ops_per_msg = name == "crash-stop CT"
                            ? 0.0
                            : static_cast<double>(puts) / (3.0 * kMsgs);
  out.net_msgs_per_msg =
      static_cast<double>(out.workload.net_messages) / kMsgs;
  return out;
}

void run_tables() {
  banner("E9: crash-recovery cost over the crash-stop baseline",
         "Claim: in a crash-free run the ordering work is the same; the "
         "crash-recovery protocol pays only its log operations — which the "
         "basic variant keeps to the Consensus-internal minimum.");
  Table t({"protocol", "p50 ms", "p99 ms", "log ops/msg",
           "net msgs/msg", "+fsync 0.1ms", "+fsync 1ms", "+fsync 10ms"});
  for (const char* which :
       {"crash-stop CT", "basic (Fig.2)", "alternative (full)"}) {
    const auto out = run_once(which);
    t.row({which, Table::num(out.workload.latency.p50_ms),
           Table::num(out.workload.latency.p99_ms),
           Table::num(out.log_ops_per_msg, 2),
           Table::num(out.net_msgs_per_msg, 1),
           Table::num(project_latency_ms(out.workload.latency.p50_ms,
                                         out.log_ops_per_msg, 0.1)),
           Table::num(project_latency_ms(out.workload.latency.p50_ms,
                                         out.log_ops_per_msg, 1.0)),
           Table::num(project_latency_ms(out.workload.latency.p50_ms,
                                         out.log_ops_per_msg, 10.0))});
  }
  t.print(std::cout);
  std::printf("\n('+fsync X' columns project p50 latency when each log "
              "operation costs X ms of synchronous disk time)\n");
}

void BM_CrashStopBaseline(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_once("crash-stop CT").workload.delivered);
  }
}
BENCHMARK(BM_CrashStopBaseline)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
