// E8 — Gossip period: dissemination latency vs bandwidth (paper §4.1–4.2).
//
// Claim: the gossip task is the only dissemination mechanism in the basic
// protocol, so broadcast-to-delivery latency of a message tracks the gossip
// period (plus one consensus round), while network traffic scales inversely
// with it.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

using namespace abcast;
using namespace abcast::bench;
using namespace abcast::harness;

namespace {

struct GossipOutcome {
  LatencyStats latency;
  double msgs_per_delivered = 0;
  double bytes_per_sec = 0;
  double gossip_share = 0;     // fraction of datagrams that are gossip
  double heartbeat_share = 0;  // fraction that are FD heartbeats
};

GossipOutcome run_once(Duration gossip_period, bool eager) {
  ClusterConfig cfg;
  cfg.sim.n = 3;
  cfg.sim.seed = 800;
  cfg.stack.ab.gossip_period = gossip_period;
  cfg.stack.ab.eager_dissemination = eager;
  Cluster c(cfg);
  c.start_all();
  // Broadcast from p2 (not the Paxos leader): the message must travel by
  // gossip before the leader can propose it.
  std::vector<MsgId> ids;
  for (int i = 0; i < 60; ++i) {
    ids.push_back(c.broadcast(2));
    c.sim().run_for(millis(100));
  }
  c.await_delivery(ids, {}, seconds(600));
  GossipOutcome out;
  out.latency = latency_stats(c.oracle().latencies());
  out.msgs_per_delivered =
      static_cast<double>(c.sim().net_stats().sent) / 60.0;
  out.bytes_per_sec = static_cast<double>(c.sim().net_stats().bytes_sent) /
                      (static_cast<double>(c.sim().now()) / 1e9);
  const auto& net = c.sim().net_stats();
  const double sent = static_cast<double>(net.sent);
  out.gossip_share = static_cast<double>(net.sent_of(MsgType::kAbGossip)) / sent;
  out.heartbeat_share =
      static_cast<double>(net.sent_of(MsgType::kFdHeartbeat)) / sent;
  return out;
}

void run_tables() {
  banner("E8: gossip period sweep",
         "Claim: delivery latency of a non-leader's message ~ gossip period "
         "+ one consensus round; traffic scales inversely with the period.");
  Table t({"gossip period ms", "p50 ms", "p99 ms", "net msgs/delivered",
           "net KB/s", "gossip %", "heartbeat %"});
  for (const Duration period : {millis(5), millis(15), millis(30), millis(60),
                                millis(120), millis(240)}) {
    const auto out = run_once(period, false);
    t.row({Table::num(static_cast<double>(period) / 1e6, 0),
           Table::num(out.latency.p50_ms), Table::num(out.latency.p99_ms),
           Table::num(out.msgs_per_delivered, 1),
           Table::num(out.bytes_per_sec / 1e3, 1),
           Table::num(out.gossip_share * 100, 0),
           Table::num(out.heartbeat_share * 100, 0)});
  }
  t.print(std::cout);

  banner("E8b: eager dissemination (relay-on-send)",
         "Eagerly multisending each new message removes the gossip-period "
         "term from latency at slight extra traffic (the crash-stop "
         "baseline's dissemination mode).");
  Table t2({"mode", "p50 ms", "p99 ms", "net msgs/delivered"});
  const auto periodic = run_once(millis(60), false);
  const auto eager = run_once(millis(60), true);
  t2.row({"periodic 60ms", Table::num(periodic.latency.p50_ms),
          Table::num(periodic.latency.p99_ms),
          Table::num(periodic.msgs_per_delivered, 1)});
  t2.row({"eager + 60ms repair", Table::num(eager.latency.p50_ms),
          Table::num(eager.latency.p99_ms),
          Table::num(eager.msgs_per_delivered, 1)});
  t2.print(std::cout);
}

void BM_Gossip30ms(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_once(millis(30), false).msgs_per_delivered);
  }
}
BENCHMARK(BM_Gossip30ms)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
