// E8 — Gossip period: dissemination latency vs bandwidth (paper §4.1–4.2).
//
// Claim: the gossip task is the only dissemination mechanism in the basic
// protocol, so broadcast-to-delivery latency of a message tracks the gossip
// period (plus one consensus round), while network traffic scales inversely
// with it.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

using namespace abcast;
using namespace abcast::bench;
using namespace abcast::harness;

namespace {

struct GossipOutcome {
  LatencyStats latency;
  double msgs_per_delivered = 0;
  double bytes_per_sec = 0;
  double gossip_share = 0;     // fraction of datagrams that are gossip
  double heartbeat_share = 0;  // fraction that are FD heartbeats
};

GossipOutcome run_once(Duration gossip_period, bool eager) {
  ClusterConfig cfg;
  cfg.sim.n = 3;
  cfg.sim.seed = 800;
  cfg.stack.ab.gossip_period = gossip_period;
  cfg.stack.ab.eager_dissemination = eager;
  Cluster c(cfg);
  c.start_all();
  // Broadcast from p2 (not the Paxos leader): the message must travel by
  // gossip before the leader can propose it.
  const int total = bench_quick() ? 15 : 60;
  std::vector<MsgId> ids;
  for (int i = 0; i < total; ++i) {
    ids.push_back(c.broadcast(2));
    c.sim().run_for(millis(100));
  }
  c.await_delivery(ids, {}, seconds(600));
  GossipOutcome out;
  out.latency = latency_stats(c.oracle().latencies());
  out.msgs_per_delivered =
      static_cast<double>(c.sim().net_stats().sent) /
      static_cast<double>(total);
  out.bytes_per_sec = static_cast<double>(c.sim().net_stats().bytes_sent) /
                      (static_cast<double>(c.sim().now()) / 1e9);
  const auto& net = c.sim().net_stats();
  const double sent = static_cast<double>(net.sent);
  out.gossip_share = static_cast<double>(net.sent_of(MsgType::kAbGossip)) / sent;
  out.heartbeat_share =
      static_cast<double>(net.sent_of(MsgType::kFdHeartbeat)) / sent;
  return out;
}

// E8c — the digest-gossip tentpole measurement: with a standing backlog of
// unordered messages, full-set gossip re-ships the whole backlog every tick
// while digest mode ships a constant-size cover plus one-shot deltas. The
// axis is the backlog depth; the figure of merit is gossip bytes per
// delivered message, with delivery latency alongside to show the digest
// indirection does not cost tail latency (eager delta pushes keep the
// one-hop path).
struct BacklogOutcome {
  LatencyStats latency;
  double gossip_bytes_per_delivered = 0;
  double gossip_datagrams = 0;
  std::uint64_t delivered = 0;
};

BacklogOutcome run_backlog(int backlog, bool digest) {
  ClusterConfig cfg;
  cfg.sim.n = 3;
  cfg.sim.seed = 801;
  cfg.stack.ab.digest_gossip = digest;
  cfg.stack.ab.eager_dissemination = true;  // both modes get the 1-hop path
  cfg.stack.ab.suppress_idle_gossip = digest;
  cfg.stack.ab.delta_reply_interval = millis(1);
  Cluster c(cfg);
  c.start_all();

  const int total = bench_quick() ? backlog + 48 : std::max(384, backlog * 3);
  std::vector<MsgId> ids;
  ids.reserve(static_cast<std::size_t>(total));
  int sent = 0;
  ProcessId sender = 0;
  // Keep `backlog` messages outstanding: top up as deliveries complete.
  while (sent < total) {
    const int outstanding =
        sent - static_cast<int>(c.oracle().global_order().size());
    for (int i = outstanding; i < backlog && sent < total; ++i, ++sent) {
      ids.push_back(c.broadcast(sender, Bytes(64)));
      sender = (sender + 1) % c.sim().n();
    }
    c.sim().run_for(millis(5));
  }
  c.await_delivery(ids, {}, seconds(600));

  BacklogOutcome out;
  out.latency = latency_stats(c.oracle().latencies());
  out.delivered = c.oracle().global_order().size();
  const auto& net = c.sim().net_stats();
  std::uint64_t gossip_bytes = 0;
  for (const auto type : {MsgType::kAbGossip, MsgType::kAbGossipDigest}) {
    auto it = net.bytes_by_type.find(type);
    if (it != net.bytes_by_type.end()) gossip_bytes += it->second;
  }
  out.gossip_bytes_per_delivered = static_cast<double>(gossip_bytes) /
                                   static_cast<double>(out.delivered);
  out.gossip_datagrams =
      static_cast<double>(net.sent_of(MsgType::kAbGossip) +
                          net.sent_of(MsgType::kAbGossipDigest));
  return out;
}

void run_backlog_tables() {
  banner("E8c: gossip bytes vs backlog (full-set vs digest delta)",
         "Claim: full-set gossip re-ships the whole backlog every tick "
         "(bytes/delivered grows with backlog); digest anti-entropy ships a "
         "constant-size cover plus each message once, at equal tail "
         "latency.");
  Table t({"backlog", "mode", "gossip B/delivered", "gossip datagrams",
           "p50 ms", "p99 ms"});
  const std::vector<int> backlogs =
      bench_quick() ? std::vector<int>{8, 64} : std::vector<int>{8, 64, 512};
  for (const int backlog : backlogs) {
    for (const bool digest : {false, true}) {
      const auto out = run_backlog(backlog, digest);
      t.row({std::to_string(backlog), digest ? "digest" : "full",
             Table::num(out.gossip_bytes_per_delivered, 1),
             Table::num(out.gossip_datagrams, 0),
             Table::num(out.latency.p50_ms), Table::num(out.latency.p99_ms)});
      Json row;
      row.field("experiment", "gossip_backlog_sweep")
          .field("backlog", backlog)
          .field("mode", digest ? "digest" : "full")
          .field("gossip_bytes_per_delivered", out.gossip_bytes_per_delivered,
                 1)
          .field("gossip_datagrams", out.gossip_datagrams, 0)
          .field("delivered", out.delivered)
          .field("p50_ms", out.latency.p50_ms, 3)
          .field("p99_ms", out.latency.p99_ms, 3);
      emit_json_row(row);
    }
  }
  t.print(std::cout);
}

void run_tables() {
  banner("E8: gossip period sweep",
         "Claim: delivery latency of a non-leader's message ~ gossip period "
         "+ one consensus round; traffic scales inversely with the period.");
  Table t({"gossip period ms", "p50 ms", "p99 ms", "net msgs/delivered",
           "net KB/s", "gossip %", "heartbeat %"});
  const std::vector<Duration> periods =
      bench_quick()
          ? std::vector<Duration>{millis(30), millis(120)}
          : std::vector<Duration>{millis(5), millis(15), millis(30),
                                  millis(60), millis(120), millis(240)};
  for (const Duration period : periods) {
    const auto out = run_once(period, false);
    t.row({Table::num(static_cast<double>(period) / 1e6, 0),
           Table::num(out.latency.p50_ms), Table::num(out.latency.p99_ms),
           Table::num(out.msgs_per_delivered, 1),
           Table::num(out.bytes_per_sec / 1e3, 1),
           Table::num(out.gossip_share * 100, 0),
           Table::num(out.heartbeat_share * 100, 0)});
    Json row;
    row.field("experiment", "gossip_period_sweep")
        .field("gossip_period_ms", static_cast<double>(period) / 1e6, 0)
        .field("p50_ms", out.latency.p50_ms, 3)
        .field("p99_ms", out.latency.p99_ms, 3)
        .field("net_msgs_per_delivered", out.msgs_per_delivered, 1)
        .field("net_bytes_per_sec", out.bytes_per_sec, 0);
    emit_json_row(row);
  }
  t.print(std::cout);

  banner("E8b: eager dissemination (relay-on-send)",
         "Eagerly multisending each new message removes the gossip-period "
         "term from latency at slight extra traffic (the crash-stop "
         "baseline's dissemination mode).");
  Table t2({"mode", "p50 ms", "p99 ms", "net msgs/delivered"});
  const auto periodic = run_once(millis(60), false);
  const auto eager = run_once(millis(60), true);
  t2.row({"periodic 60ms", Table::num(periodic.latency.p50_ms),
          Table::num(periodic.latency.p99_ms),
          Table::num(periodic.msgs_per_delivered, 1)});
  t2.row({"eager + 60ms repair", Table::num(eager.latency.p50_ms),
          Table::num(eager.latency.p99_ms),
          Table::num(eager.msgs_per_delivered, 1)});
  t2.print(std::cout);
}

void BM_Gossip30ms(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_once(millis(30), false).msgs_per_delivered);
  }
}
BENCHMARK(BM_Gossip30ms)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  init_metrics_json(argc, argv);
  run_tables();
  run_backlog_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
