// E5b — Chunked, resumable state transfer (paper §5.3, hardened).
//
// The one-shot state message of §5.3 grows with the sender's history, so a
// bounded transport (the rt/UDP host drops frames over 64 KiB) livelocks a
// rejoining process once the history outgrows one datagram. The chunked
// catch-up session streams the same state in self-contained chunks bounded
// by Options::max_state_bytes and resumes from the receiver's acked
// position after loss or a crash on either side. Measured here:
//
//   * catch-up stays feasible as the missed history grows past 64 KiB,
//     with every state datagram at or below the configured bound;
//   * a receiver crash mid-transfer costs a resume, not a restart.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "obs/trace.hpp"

using namespace abcast;
using namespace abcast::bench;
using namespace abcast::harness;

namespace {

struct ChunkedCatchUp {
  double catch_up_ms = 0;
  std::uint64_t chunks_sent = 0;
  std::uint64_t chunk_bytes = 0;
  std::uint64_t max_chunk_bytes = 0;  // largest state datagram observed
  std::uint64_t resumes = 0;          // go-back rewinds across all senders
  bool converged = false;
};

// The harness application's checkpoint is O(1) bytes (a position and a
// prefix hash), so application checkpointing would fold any history into a
// trivially small snapshot. Leaving it off keeps the missed history in the
// AgreedLog's explicit suffix — the shape that made the seed's one-shot
// state message outgrow a datagram. (The multi-slice snapshot phase is
// exercised by the UDP regression test, whose KV checkpoint is >64 KiB.)
ClusterConfig chunked_config(std::size_t max_state_bytes, std::uint64_t seed) {
  ClusterConfig cfg;
  cfg.sim.n = 3;
  cfg.sim.seed = seed;
  cfg.sim.trace_capacity = 1 << 16;  // to audit per-datagram chunk sizes
  cfg.stack.ab.checkpointing = true;
  cfg.stack.ab.truncate_logs = true;
  cfg.stack.ab.state_transfer = true;
  cfg.stack.ab.trimmed_state_transfer = true;
  cfg.stack.ab.delta = 2;
  cfg.stack.ab.checkpoint_period = millis(150);
  cfg.stack.ab.max_state_bytes = max_state_bytes;
  return cfg;
}

std::uint64_t max_chunk_wire_bytes(Cluster& c) {
  std::uint64_t max_bytes = 0;
  for (const auto& e : c.collect_trace()) {
    if (e.kind == obs::EventKind::kStateTransfer &&
        (e.detail == "send_chunk" || e.detail == "send_snap")) {
      max_bytes = std::max(max_bytes, e.arg);
    }
  }
  return max_bytes;
}

ChunkedCatchUp tally(Cluster& c, TimePoint start, bool converged) {
  ChunkedCatchUp out;
  out.converged = converged;
  out.catch_up_ms = static_cast<double>(c.sim().now() - start) / 1e6;
  for (ProcessId p = 0; p < c.sim().n(); ++p) {
    const auto& m = c.stack(p)->ab().metrics();
    out.chunks_sent += m.state_chunks_sent;
    out.chunk_bytes += m.state_chunk_bytes_sent;
    out.resumes += m.state_resumes;
  }
  out.max_chunk_bytes = max_chunk_wire_bytes(c);
  return out;
}

/// One process misses `history_kb` KiB of 1-KiB broadcasts (well past the
/// checkpoint + truncation horizon), then rejoins through the chunked
/// session. `crash_mid_transfer` additionally crashes the receiver once
/// mid-stream and lets the session resume from its re-advertised total.
ChunkedCatchUp run_chunked(int history_kb, std::size_t max_state_bytes,
                           bool crash_mid_transfer = false) {
  Cluster c(chunked_config(max_state_bytes,
                           700 + static_cast<std::uint64_t>(history_kb)));
  c.start_all();
  auto warm = c.broadcast_many(0, 2);
  c.await_delivery(warm);

  c.sim().crash(2);
  std::vector<MsgId> ids;
  for (int i = 0; i < history_kb; ++i) {
    ids.push_back(c.broadcast(0, Bytes(1024, static_cast<std::uint8_t>(i))));
    c.sim().run_for(millis(40));
  }
  c.await_delivery(ids, {0, 1}, seconds(600));
  c.sim().run_for(millis(400));  // checkpoints fold + truncate the prefix
  const auto target = c.stack(0)->ab().round();

  const TimePoint start = c.sim().now();
  c.sim().recover(2);
  if (crash_mid_transfer) {
    c.sim().run_for(millis(40));  // part of the stream lands, then the
    c.sim().crash(2);             // receiver dies and rejoins
    c.sim().run_for(millis(100));
    c.sim().recover(2);
  }
  const bool converged = c.sim().run_until_pred(
      [&] { return c.stack(2)->ab().round() >= target; },
      c.sim().now() + seconds(600));
  return tally(c, start, converged);
}

void run_tables() {
  banner("E5b: chunked catch-up past the 64 KiB datagram bound",
         "Claim: a catch-up session streams state in chunks bounded by "
         "max_state_bytes, so rejoining stays feasible on a bounded "
         "transport no matter how large the missed history is.");
  const std::size_t kBudget = 56 * 1024;
  Table t({"history KiB", "chunk budget", "catch-up ms", "chunks",
           "state KB", "max chunk B", "resumes"});
  const std::vector<int> histories =
      bench_quick() ? std::vector<int>{24} : std::vector<int>{24, 96, 192};
  for (const int kb : histories) {
    for (const std::size_t budget : {std::size_t{8 * 1024}, kBudget}) {
      const auto r = run_chunked(kb, budget);
      t.row({std::to_string(kb), fmt_u64(budget / 1024) + " KiB",
             Table::num(r.catch_up_ms), fmt_u64(r.chunks_sent),
             Table::num(static_cast<double>(r.chunk_bytes) / 1e3, 1),
             fmt_u64(r.max_chunk_bytes), fmt_u64(r.resumes)});
      Json row;
      row.field("experiment", "E5b")
          .field("scenario", "rejoin")
          .field("history_kib", kb)
          .field("max_state_bytes", budget)
          .field("catch_up_ms", r.catch_up_ms)
          .field("chunks_sent", r.chunks_sent)
          .field("chunk_bytes", r.chunk_bytes)
          .field("max_chunk_bytes", r.max_chunk_bytes)
          .field("resumes", r.resumes)
          .field("converged", r.converged);
      emit_json_row(row);
    }
  }
  t.print(std::cout);

  banner("E5b: receiver crash mid-transfer",
         "Claim: a crash mid-session costs a resume from the receiver's "
         "re-advertised position, not a restart of the whole transfer.");
  Table t2({"history KiB", "catch-up ms", "chunks", "state KB", "resumes"});
  const int kb = bench_quick() ? 24 : 96;
  const std::size_t kSmallBudget = 8 * 1024;  // many chunks -> a real mid-point
  const auto r = run_chunked(kb, kSmallBudget, /*crash_mid_transfer=*/true);
  t2.row({std::to_string(kb), Table::num(r.catch_up_ms),
          fmt_u64(r.chunks_sent),
          Table::num(static_cast<double>(r.chunk_bytes) / 1e3, 1),
          fmt_u64(r.resumes)});
  t2.print(std::cout);
  Json row;
  row.field("experiment", "E5b")
      .field("scenario", "crash_mid_transfer")
      .field("history_kib", kb)
      .field("max_state_bytes", kSmallBudget)
      .field("catch_up_ms", r.catch_up_ms)
      .field("chunks_sent", r.chunks_sent)
      .field("chunk_bytes", r.chunk_bytes)
      .field("max_chunk_bytes", r.max_chunk_bytes)
      .field("resumes", r.resumes)
      .field("converged", r.converged);
  emit_json_row(row);
}

void BM_ChunkedCatchUp24KiB(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_chunked(24, 56 * 1024).catch_up_ms);
  }
}
BENCHMARK(BM_ChunkedCatchUp24KiB)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  init_metrics_json(argc, argv);
  run_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
