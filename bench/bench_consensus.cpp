// E7 — Consensus-engine ablation (paper §1, §3.5).
//
// Claim: Atomic Broadcast treats Consensus as a black box — both engines
// yield identical orderings; they differ only in cost (log operations per
// instance, message counts, decision latency).
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

using namespace abcast;
using namespace abcast::bench;
using namespace abcast::harness;

namespace {

struct EngineOutcome {
  WorkloadResult workload;
  double cons_ops_per_round = 0;
  double msgs_per_round = 0;
  std::vector<MsgId> order;
};

EngineOutcome run_once(ConsensusKind kind, double drop, std::uint64_t seed) {
  ClusterConfig cfg;
  cfg.sim.n = 3;
  cfg.sim.seed = seed;
  cfg.sim.net.drop_prob = drop;
  cfg.stack.engine = kind;
  Cluster c(cfg);
  c.start_all();
  EngineOutcome out;
  out.workload = run_open_loop(c, 200, 8, millis(20));
  std::uint64_t cons_ops = 0;
  for (ProcessId p = 0; p < 3; ++p) cons_ops += c.log_ops(p).consensus;
  out.cons_ops_per_round =
      static_cast<double>(cons_ops) / static_cast<double>(out.workload.rounds);
  out.msgs_per_round = static_cast<double>(out.workload.net_messages) /
                       static_cast<double>(out.workload.rounds);
  out.order = c.oracle().global_order();
  return out;
}

void run_tables() {
  banner("E7: Paxos vs rotating-coordinator engine",
         "Claim: interchangeable correctness (identical total order for "
         "identical workloads), different cost profiles.");
  Table t({"engine", "drop", "p50 ms", "p99 ms", "cons log-ops/round",
           "net msgs/round", "rounds"});
  for (const double drop : {0.0, 0.10}) {
    for (const auto kind : {ConsensusKind::kPaxos, ConsensusKind::kCoord}) {
      const auto out = run_once(kind, drop, 700);
      t.row({to_string(kind), Table::num(drop, 2),
             Table::num(out.workload.latency.p50_ms),
             Table::num(out.workload.latency.p99_ms),
             Table::num(out.cons_ops_per_round, 1),
             Table::num(out.msgs_per_round, 1),
             fmt_u64(out.workload.rounds)});
    }
  }
  t.print(std::cout);

  // Black-box check: same workload, same seed => the delivered sets agree
  // in content (the interleaving may differ since engines pace rounds
  // differently, so compare sets, not sequences).
  const auto a = run_once(ConsensusKind::kPaxos, 0.0, 701);
  const auto b = run_once(ConsensusKind::kCoord, 0.0, 701);
  auto sa = a.order;
  auto sb = b.order;
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  std::printf("\nsame 200-message workload: paxos delivered %zu, coord "
              "delivered %zu, identical content: %s\n",
              sa.size(), sb.size(), sa == sb ? "yes" : "NO");
}

void BM_Paxos200(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_once(ConsensusKind::kPaxos, 0.0, 702).workload.delivered);
  }
}
BENCHMARK(BM_Paxos200)->Unit(benchmark::kMillisecond);

void BM_Coord200(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_once(ConsensusKind::kCoord, 0.0, 702).workload.delivered);
  }
}
BENCHMARK(BM_Coord200)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
