// E3 — Recovery cost: replay vs checkpointing (paper §5.1).
//
// Claim: without checkpoints, recovery replays every decided Consensus
// instance — cost linear in history length. Logging (k, Agreed)
// periodically caps the replay at one checkpoint period.
#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_util.hpp"

using namespace abcast;
using namespace abcast::bench;
using namespace abcast::harness;

namespace {

struct RecoveryOutcome {
  std::uint64_t history_rounds = 0;
  std::uint64_t replayed = 0;
  // Replay happens synchronously inside recover() (reading the local logs
  // costs no virtual time), so recovery cost is measured in wall-clock time
  // and storage reads.
  double recovery_wall_us = 0;
  std::uint64_t storage_reads = 0;
};

/// Builds `rounds` rounds of history, crashes p2, recovers it immediately,
/// and measures how long it takes to re-reach the current round.
RecoveryOutcome run_once(int rounds, bool checkpointing,
                         Duration checkpoint_period) {
  ClusterConfig cfg;
  cfg.sim.n = 3;
  cfg.sim.seed = 300 + static_cast<std::uint64_t>(rounds);
  cfg.stack.ab.checkpointing = checkpointing;
  cfg.stack.ab.checkpoint_period = checkpoint_period;
  Cluster c(cfg);
  c.start_all();

  // One message per round, paced beyond the round latency so every message
  // lands in its own round.
  std::vector<MsgId> ids;
  for (int i = 0; i < rounds; ++i) {
    ids.push_back(c.broadcast(0));
    c.sim().run_for(millis(60));
  }
  c.await_delivery(ids, {}, seconds(600));
  if (checkpointing) {
    // Keep the workload running and crash ~90% of the way through a
    // checkpoint interval, so the rounds decided since the last checkpoint
    // (≈ 0.9 × period / round-time) have to be replayed — the quantity the
    // period sweep is about.
    const TimePoint next_tick =
        ((c.sim().now() / checkpoint_period) + 1) * checkpoint_period;
    const TimePoint crash_at = next_tick + checkpoint_period * 9 / 10;
    std::vector<MsgId> tail;
    while (c.sim().now() < crash_at - millis(60)) {
      tail.push_back(c.broadcast(0));
      c.sim().run_for(millis(60));
    }
    c.await_delivery(tail, {}, seconds(600));
  } else {
    c.sim().run_for(millis(10));
  }

  const auto target = c.stack(0)->ab().round();
  c.sim().crash(2);
  const auto reads_before = c.sim().host(2).storage().stats().get_ops;
  const auto wall_start = std::chrono::steady_clock::now();
  c.sim().recover(2);
  const auto wall_end = std::chrono::steady_clock::now();
  c.sim().run_until_pred(
      [&] { return c.stack(2)->ab().round() >= target; },
      c.sim().now() + seconds(600));

  RecoveryOutcome out;
  out.history_rounds = target;
  out.replayed = c.stack(2)->ab().metrics().replayed_rounds;
  out.recovery_wall_us =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              wall_end - wall_start)
                              .count()) /
      1e3;
  out.storage_reads = c.sim().host(2).storage().stats().get_ops - reads_before;
  return out;
}

void run_tables() {
  banner("E3: recovery cost vs history length",
         "Claim: replay cost grows linearly with decided rounds; periodic "
         "(k, Agreed) checkpoints flatten it to O(checkpoint period).");
  Table t({"history rounds", "variant", "replayed rounds", "storage reads",
           "recovery wall us"});
  for (const int rounds : {10, 50, 100, 200}) {
    const auto replay = run_once(rounds, false, millis(500));
    t.row({std::to_string(rounds), "replay (basic)",
           fmt_u64(replay.replayed), fmt_u64(replay.storage_reads),
           Table::num(replay.recovery_wall_us, 0)});
    const auto ckpt = run_once(rounds, true, millis(500));
    t.row({std::to_string(rounds), "ckpt 500ms", fmt_u64(ckpt.replayed),
           fmt_u64(ckpt.storage_reads),
           Table::num(ckpt.recovery_wall_us, 0)});
  }
  t.print(std::cout);

  banner("E3b: checkpoint period sweep (history = 100 rounds)",
         "Shorter periods mean fewer rounds to replay, at the price of more "
         "checkpoint log writes (see E1).");
  Table t2({"ckpt period ms", "replayed rounds", "storage reads",
            "recovery wall us"});
  for (const Duration period : {millis(100), millis(250), millis(500),
                                millis(1000), millis(2000)}) {
    const auto out = run_once(100, true, period);
    t2.row({Table::num(static_cast<double>(period) / 1e6, 0),
            fmt_u64(out.replayed), fmt_u64(out.storage_reads),
            Table::num(out.recovery_wall_us, 0)});
  }
  t2.print(std::cout);
}

void BM_Recovery100RoundsReplay(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_once(100, false, millis(500)).replayed);
  }
}
BENCHMARK(BM_Recovery100RoundsReplay)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
