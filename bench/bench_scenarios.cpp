// E13 — Adversarial scenario sweep under open-loop load (DESIGN.md §12).
//
// Claim: across a wide band of generated hostile schedules — asymmetric
// partitions, flapping links, gray failure, clock skew, slow disks,
// correlated crash bursts, crash-point storms — every required delivery
// lands, the strict offline checker stays green, and the SLO-windowed
// latency tail degrades instead of the protocol wedging or lying.
//
// The sweep runs a seed range disjoint from the scenario_sweep_test range
// (10000+ vs 0..99), so a full build exercises well over 200 distinct
// oracle-checked scenarios. One JSON row per scenario carries the
// serialized one-line reproduction plus the windowed p50/p99/p999 series;
// any failure prints `SCENARIO-FAIL <line>` for copy-paste replay.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"

using namespace abcast;
using namespace abcast::bench;
using namespace abcast::harness;
using namespace abcast::scenario;

namespace {

constexpr std::uint64_t kSweepBase = 10000;  // disjoint from the test sweep

double ms(Duration d) { return static_cast<double>(d) / 1e6; }

/// Renders the windowed latency series as a nested JSON array:
/// [{"start_ms":..,"count":..,"p50_ms":..,"p99_ms":..,"p999_ms":..},...].
std::string windows_json(const std::vector<obs::WindowedLatency::Window>& ws) {
  std::string out = "[";
  for (const auto& w : ws) {
    if (out.size() > 1) out += ',';
    Json j;
    j.field("start_ms", ms(w.start), 1)
        .field("count", w.count)
        .field("p50_ms", ms(w.p50), 3)
        .field("p99_ms", ms(w.p99), 3)
        .field("p999_ms", ms(w.p999), 3);
    out += j.str();
  }
  out += ']';
  return out;
}

/// Runs one scenario, emits its JSON row, and prints the one-line
/// reproduction on failure.
RunResult run_one(const Scenario& s, const char* tag) {
  const std::string line = s.serialize();
  const RunResult r = run_scenario(s);
  if (!r.ok()) {
    std::printf("SCENARIO-FAIL %s\n  failure: %s\n", line.c_str(),
                r.failure.c_str());
  }
  Json row;
  row.field("experiment", "scenario_sweep")
      .field("tag", tag)
      .field("seed", s.seed)
      .field("scenario", line)
      .field("engine", to_string(s.engine))
      .field("variant", s.alternative ? "alt" : "basic")
      .field("gossip", s.digest_gossip ? "digest" : "full")
      .field("n", s.n)
      .field("clauses", s.clauses.size())
      .field("ok", r.ok())
      .field("arrivals", r.load.arrivals)
      .field("completed", r.load.completed)
      .field("rejected_down", r.load.rejected_down)
      .field("required", r.required)
      .field("delivered_global", r.delivered_global)
      .field("order_digest", r.order_digest)
      .field("p50_ms", ms(r.overall.p50), 3)
      .field("p99_ms", ms(r.overall.p99), 3)
      .field("p999_ms", ms(r.overall.p999), 3)
      .field("max_ms", ms(r.overall.max), 3)
      .raw("windows", windows_json(r.windows));
  emit_json_row(row);
  return r;
}

/// A hand-tuned heavy cell beyond what the generator draws: 4096 open-loop
/// client sessions pushing through a mid-run gray window and a slow disk.
/// Exercises the "thousands of simulated client sessions" end of the load
/// driver while everything else in the sweep stays generator-shaped.
Scenario heavy_scenario() {
  Scenario s;
  s.seed = 424242;
  s.n = 3;
  s.horizon = millis(900);
  s.engine = ConsensusKind::kPaxos;
  s.alternative = true;
  s.digest_gossip = true;
  LoadClause load;
  load.at = millis(20);
  load.hold = millis(700);
  load.mean_gap = micros(400);
  load.clients = 4096;
  load.bytes = 16;
  s.clauses.push_back(load);
  GrayClause gray;
  gray.at = millis(200);
  gray.hold = millis(250);
  gray.node = 1;
  gray.rx_factor = 6.0;
  s.clauses.push_back(gray);
  DiskClause disk;
  disk.at = millis(450);
  disk.hold = millis(200);
  disk.node = 2;
  disk.delay_min = micros(50);
  disk.delay_max = micros(500);
  disk.stall_prob = 0.01;
  disk.stall = millis(5);
  s.clauses.push_back(disk);
  return s;
}

void run_tables() {
  banner("E13: adversarial scenario sweep, open-loop load, strict oracle",
         "Claim: under generated hostile schedules the protocol never "
         "wedges and never lies — required deliveries land, traces pass "
         "the strict checker, and the latency tail absorbs the abuse.");

  const std::uint64_t count = bench_quick() ? 6 : 103;
  std::uint64_t failures = 0;
  std::uint64_t total = 0;
  Table t({"tag", "seed", "engine", "variant", "gossip", "completed",
           "delivered", "p50 ms", "p99 ms", "p999 ms", "ok"});
  // The printed table shows the first 8 cells (one per engine x variant x
  // gossip combination), every failure, and the heavy cell; the JSONL file
  // carries every row.
  for (std::uint64_t seed = kSweepBase; seed < kSweepBase + count; ++seed) {
    const Scenario s = generate_scenario(seed);
    const RunResult r = run_one(s, "generated");
    total += 1;
    if (!r.ok()) ++failures;
    if (seed < kSweepBase + 8 || !r.ok()) {
      t.row({"generated", fmt_u64(seed), to_string(s.engine),
             s.alternative ? "alt" : "basic",
             s.digest_gossip ? "digest" : "full", fmt_u64(r.load.completed),
             fmt_u64(r.delivered_global), Table::num(ms(r.overall.p50)),
             Table::num(ms(r.overall.p99)), Table::num(ms(r.overall.p999)),
             r.ok() ? "yes" : "NO"});
    }
  }

  {
    const Scenario s = heavy_scenario();
    const RunResult r = run_one(s, "heavy4096");
    total += 1;
    if (!r.ok()) ++failures;
    t.row({"heavy4096", fmt_u64(s.seed), to_string(s.engine), "alt", "digest",
           fmt_u64(r.load.completed), fmt_u64(r.delivered_global),
           Table::num(ms(r.overall.p50)), Table::num(ms(r.overall.p99)),
           Table::num(ms(r.overall.p999)), r.ok() ? "yes" : "NO"});
  }

  std::printf("\n");
  t.print(std::cout);
  std::printf("\nscenarios=%llu failures=%llu\n",
              static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(failures));
}

/// Replays one serialized scenario line (the text a failing sweep seed
/// prints) and reports the verdict. Exit code: 0 ok, 1 oracle failure,
/// 2 parse error.
int run_single(const std::string& line) {
  std::string err;
  const auto s = Scenario::parse(line, &err);
  if (!s) {
    std::fprintf(stderr, "scenario parse error: %s\n", err.c_str());
    return 2;
  }
  const RunResult r = run_one(*s, "replay");
  std::printf("replay %s: delivered=%s quiesced=%s checker=%s "
              "(completed=%llu delivered_global=%llu digest=%llu)\n",
              r.ok() ? "OK" : "FAIL", r.delivered ? "yes" : "NO",
              r.quiesced ? "yes" : "NO", r.checker_ok ? "yes" : "NO",
              static_cast<unsigned long long>(r.load.completed),
              static_cast<unsigned long long>(r.delivered_global),
              static_cast<unsigned long long>(r.order_digest));
  return r.ok() ? 0 : 1;
}

void BM_ScenarioRun(benchmark::State& state) {
  const Scenario s = generate_scenario(kSweepBase);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_scenario(s).delivered_global);
  }
}
BENCHMARK(BM_ScenarioRun)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  init_metrics_json(argc, argv);
  // --scenario='scn1 ...' replays one serialized line instead of sweeping.
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string prefix = "--scenario=";
    if (arg.rfind(prefix, 0) == 0) {
      return run_single(arg.substr(prefix.size()));
    }
  }
  run_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
