// E14 — Sharded multi-group scale-out.
//
// Claim: with the per-group round pipeline as the ordering bottleneck
// (bounded proposal batches — max_proposal_msgs — give one group a finite
// msgs/round × rounds/sec ceiling), partitioning the key space over N
// groups on the SAME nodes multiplies aggregate delivered/s by ~N: groups
// run their consensus rounds independently, so shard count is the degree
// of ordering parallelism. Acceptance: ≥3× aggregate delivered/s at
// 4 shards vs 1 shard, same node count, same load profile.
//
// A contrast table shows the failure mode: a hot-key skew collapses the
// load onto few shards and the scale-out evaporates — sharding only buys
// what the router can spread.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "apps/kv_store.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "group/sharded_cluster.hpp"
#include "scenario/load.hpp"

using namespace abcast;
using namespace abcast::bench;
using namespace abcast::group;
using abcast::harness::Table;

namespace {

constexpr std::uint32_t kNodes = 3;

ShardedClusterConfig make_config(std::uint32_t shards, std::uint64_t seed,
                                 std::uint64_t window = 1) {
  ShardedClusterConfig cfg;
  cfg.sim.n = kNodes;
  cfg.sim.seed = seed;
  cfg.node.layout = GroupConfig::uniform(kNodes, shards);
  // The E2 open-loop profile (§5.4 durable early-return), plus the bounded
  // batch that makes per-group ordering rate finite. Without the cap a
  // proposal carries the whole backlog and one group absorbs any offered
  // load in virtual time — there would be nothing for sharding to scale.
  cfg.node.stack.ab.log_unordered = true;
  cfg.node.stack.ab.incremental_unordered_log = true;
  cfg.node.stack.ab.max_proposal_msgs = 8;
  // E14c: the pipelining window (DESIGN.md §14) is the second axis of
  // ordering parallelism — α in-flight rounds inside each group, N groups
  // across the key space. The axes compose multiplicatively until the
  // offered load is absorbed.
  cfg.node.stack.ab.pipeline_window = window;
  return cfg;
}

struct ShardRunResult {
  std::uint64_t delivered = 0;
  Duration elapsed = 0;
  std::uint64_t rounds = 0;         // max over groups
  std::uint64_t group_min = 0;      // least-loaded group's agreed total
  std::uint64_t group_max = 0;      // most-loaded group's agreed total
};

/// Same driver shape as bench_util's run_open_loop, but keyed: `clients`
/// puts per 5 ms tick, round-robin senders, `key_of(i)` naming the i-th
/// submission's key. The key stream never depends on the shard count, so
/// every row of one clients-column orders the identical workload.
template <typename KeyFn>
ShardRunResult run_keyed_open_loop(ShardedCluster& c, int total, int clients,
                                   KeyFn key_of) {
  const TimePoint start = c.sim().now();
  int sent = 0;
  ProcessId sender = 0;
  while (sent < total) {
    for (int b = 0; b < clients && sent < total; ++b, ++sent) {
      const std::string key = key_of(sent);
      c.node(sender)->submit(key, apps::KvCommand::put(key, "v"));
      sender = (sender + 1) % c.sim().n();
    }
    c.sim().run_for(millis(5));
  }
  ABCAST_CHECK_MSG(c.await_quiesced(seconds(600)),
                   "bench_shards: cluster failed to quiesce");

  ShardRunResult r;
  r.delivered = c.aggregate_delivered();
  r.elapsed = c.sim().now() - start;
  r.group_min = r.delivered;
  for (std::uint32_t g = 0; g < c.layout().n_groups; ++g) {
    auto& ab = c.node(0)->stack(g).ab();
    r.rounds = std::max(r.rounds, ab.round());
    r.group_min = std::min(r.group_min, ab.agreed().total());
    r.group_max = std::max(r.group_max, ab.agreed().total());
  }
  return r;
}

double per_sec(const ShardRunResult& r) {
  if (r.elapsed <= 0) return 0;
  return static_cast<double>(r.delivered) /
         (static_cast<double>(r.elapsed) / 1e9);
}

void emit_row(const char* experiment, std::uint32_t shards, int clients,
              double hot, const ShardRunResult& r, double speedup,
              ShardedCluster& c, std::uint64_t window = 1) {
  Json row;
  row.field("experiment", experiment)
      .field("shards", shards)
      .field("window", window)
      .field("clients", clients)
      .field("hot", hot)
      .field("delivered", r.delivered)
      .field("elapsed_ms", static_cast<double>(r.elapsed) / 1e6)
      .field("throughput_per_sec", per_sec(r))
      .field("speedup_vs_1shard", speedup)
      .field("rounds", r.rounds)
      .field("group_min_delivered", r.group_min)
      .field("group_max_delivered", r.group_max);
  std::ostringstream metrics;
  c.sim().metrics_registry().snapshot().write_json(metrics);
  row.raw("metrics", metrics.str());
  emit_json_row(row);
}

void run_tables() {
  banner("E14: sharded scale-out (shards x clients)",
         "Claim: aggregate delivered/s scales ~linearly with shard count "
         "at fixed node count and load profile (>=3x at 4 shards); the "
         "per-group bounded-batch round pipeline is the unit of ordering "
         "parallelism.");

  const int kTotal = bench_quick() ? 240 : 800;
  const std::vector<int> kClients =
      bench_quick() ? std::vector<int>{16} : std::vector<int>{16, 64};
  const std::vector<std::uint32_t> kShards{1, 2, 4};
  // Uniform closed key cycle: submission i touches "k<i mod 1024>". The
  // FNV router splits this stream exactly evenly across 1/2/4 groups on
  // every prefix, so the scaling rows measure ordering parallelism, not
  // sampling luck; E14b below covers the skewed regime.
  const auto cycle_key = [](int i) { return "k" + std::to_string(i % 1024); };

  {
    Table t({"shards", "clients", "elapsed ms", "agg msgs/s", "speedup",
             "rounds", "grp min/max"});
    for (const int clients : kClients) {
      double base = 0;
      for (const std::uint32_t shards : kShards) {
        ShardedCluster c(make_config(shards, 1400 + shards));
        c.start_all();
        const auto r = run_keyed_open_loop(c, kTotal, clients, cycle_key);
        if (shards == 1) base = per_sec(r);
        const double speedup = base > 0 ? per_sec(r) / base : 0;
        t.row({std::to_string(shards), std::to_string(clients),
               Table::num(static_cast<double>(r.elapsed) / 1e6),
               Table::num(per_sec(r), 0), Table::num(speedup, 2),
               fmt_u64(r.rounds),
               fmt_u64(r.group_min) + "/" + fmt_u64(r.group_max)});
        emit_row("shards_scaleout", shards, clients, 0.0, r, speedup, c);
      }
    }
    t.print(std::cout);
  }

  banner("E14c: shards x pipelining window",
         "Both axes of ordering parallelism crossed: N independent groups, "
         "alpha in-flight rounds per group. Aggregate delivered/s should "
         "grow along both axes (diminishing once the offered load is "
         "absorbed); speedup is vs the (1 shard, window 1) cell.");
  {
    Table t({"shards", "window", "elapsed ms", "agg msgs/s", "speedup",
             "rounds", "grp min/max"});
    const std::vector<std::uint64_t> kWindows =
        bench_quick() ? std::vector<std::uint64_t>{1, 4}
                      : std::vector<std::uint64_t>{1, 4, 16};
    double base = 0;
    for (const std::uint32_t shards : kShards) {
      for (const std::uint64_t window : kWindows) {
        ShardedCluster c(make_config(shards, 1470 + shards, window));
        c.start_all();
        const auto r =
            run_keyed_open_loop(c, kTotal, kClients.front(), cycle_key);
        if (shards == 1 && window == 1) base = per_sec(r);
        const double speedup = base > 0 ? per_sec(r) / base : 0;
        t.row({std::to_string(shards), std::to_string(window),
               Table::num(static_cast<double>(r.elapsed) / 1e6),
               Table::num(per_sec(r), 0), Table::num(speedup, 2),
               fmt_u64(r.rounds),
               fmt_u64(r.group_min) + "/" + fmt_u64(r.group_max)});
        emit_row("shards_window_sweep", shards, kClients.front(), 0.0, r,
                 speedup, c, window);
      }
    }
    t.print(std::cout);
  }

  banner("E14b: hot-key skew vs scale-out (4 shards)",
         "A skewed key distribution collapses load onto few groups; the "
         "grp min/max spread widens and the aggregate rate falls back "
         "toward the 1-shard ceiling. (16-key space: the pick_key hot "
         "subset is a single key, i.e. a single group.)");
  {
    Table t({"hot", "elapsed ms", "agg msgs/s", "grp min/max"});
    const std::vector<double> kHot =
        bench_quick() ? std::vector<double>{0.0, 0.9}
                      : std::vector<double>{0.0, 0.5, 0.9};
    for (const double hot : kHot) {
      ShardedCluster c(make_config(4, 1451));
      c.start_all();
      Rng rng(0xE14B);
      const auto skew_key = [&rng, hot](int) {
        return scenario::pick_key(rng, 16, hot);
      };
      const auto r =
          run_keyed_open_loop(c, kTotal, kClients.front(), skew_key);
      t.row({Table::num(hot, 1),
             Table::num(static_cast<double>(r.elapsed) / 1e6),
             Table::num(per_sec(r), 0),
             fmt_u64(r.group_min) + "/" + fmt_u64(r.group_max)});
      emit_row("shards_hot_skew", 4, kClients.front(), hot, r, 0.0, c);
    }
    t.print(std::cout);
  }
}

void BM_ShardedOpenLoop4(benchmark::State& state) {
  for (auto _ : state) {
    ShardedCluster c(make_config(4, 1460));
    c.start_all();
    benchmark::DoNotOptimize(
        run_keyed_open_loop(c, 160, 16, [](int i) {
          return "k" + std::to_string(i % 1024);
        }).delivered);
  }
}
BENCHMARK(BM_ShardedOpenLoop4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  init_metrics_json(argc, argv);
  run_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
