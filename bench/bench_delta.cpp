// E6 — Tuning the state-transfer trigger Δ (paper §5.3, Fig. 3 line d).
//
// Claim: Δ trades spurious transfers against slow catch-up. A tiny Δ ships
// (potentially large) state messages for gaps normal catch-up would close
// anyway; a huge Δ degenerates into per-instance catch-up.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "sim/fault_plan.hpp"

using namespace abcast;
using namespace abcast::bench;
using namespace abcast::harness;

namespace {

struct DeltaOutcome {
  std::uint64_t transfers_sent = 0;
  std::uint64_t transfers_applied = 0;
  double mean_catch_up_ms = 0;
  std::uint64_t net_bytes = 0;
};

DeltaOutcome run_once(std::uint64_t delta) {
  ClusterConfig cfg;
  cfg.sim.n = 3;
  cfg.sim.seed = 600;
  cfg.stack.ab.checkpointing = true;
  cfg.stack.ab.state_transfer = true;
  cfg.stack.ab.delta = delta;
  Cluster c(cfg);
  c.start_all();
  auto warm = c.broadcast_many(0, 2);
  c.await_delivery(warm);

  // p2 repeatedly goes down for a random 0.2–2s stretch while rounds keep
  // closing every ~60ms; measure how fast it re-synchronizes each time.
  double total_catch_up_ms = 0;
  int episodes = 0;
  std::vector<MsgId> ids;
  Rng rng(99);
  for (int episode = 0; episode < 8; ++episode) {
    c.sim().crash(2);
    // 0.2–6s down at ~16 rounds/s: gaps of ~3 to ~100 rounds, bracketing
    // every Δ in the sweep.
    const Duration downtime = rng.uniform(millis(200), millis(6000));
    const TimePoint down_until = c.sim().now() + downtime;
    while (c.sim().now() < down_until) {
      ids.push_back(c.broadcast(0));
      c.sim().run_for(millis(60));
    }
    const auto target = c.stack(0)->ab().round();
    const TimePoint start = c.sim().now();
    c.sim().recover(2);
    c.sim().run_until_pred(
        [&] { return c.stack(2)->ab().round() >= target; },
        c.sim().now() + seconds(600));
    total_catch_up_ms += static_cast<double>(c.sim().now() - start) / 1e6;
    episodes += 1;
  }
  c.await_delivery(ids, {}, seconds(600));

  DeltaOutcome out;
  for (ProcessId p = 0; p < 3; ++p) {
    out.transfers_sent += c.stack(p)->ab().metrics().state_sent;
    out.transfers_applied += c.stack(p)->ab().metrics().state_applied;
  }
  out.mean_catch_up_ms = total_catch_up_ms / episodes;
  out.net_bytes = c.sim().net_stats().bytes_sent;
  return out;
}

void run_tables() {
  banner("E6: Δ sweep under repeated outages",
         "Claim: small Δ = many transfers + fast catch-up; large Δ = few "
         "transfers + catch-up cost approaching per-instance replay.");
  Table t({"delta", "transfers sent", "transfers applied",
           "mean catch-up ms", "net MB"});
  for (const std::uint64_t delta : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    const auto out = run_once(delta);
    t.row({std::to_string(delta), fmt_u64(out.transfers_sent),
           fmt_u64(out.transfers_applied),
           Table::num(out.mean_catch_up_ms),
           Table::num(static_cast<double>(out.net_bytes) / 1e6)});
  }
  t.print(std::cout);
}

void BM_DeltaEpisodes(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_once(4).transfers_applied);
  }
}
BENCHMARK(BM_DeltaEpisodes)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
