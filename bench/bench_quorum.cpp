// E12 — Quorum data path vs total-order data path (paper §6.3).
//
// Claim (the reason §6.3 exists): once configuration management is solved
// by Atomic Broadcast, the data path can use plain weighted quorums —
// cheaper than ordering every operation. This bench quantifies the gap in
// the same simulator: quorum writes (version-read + install, 2 RTTs, no
// ordering) against AB-ordered writes (one ordering round each).
#include <benchmark/benchmark.h>

#include "apps/kv_store.hpp"
#include "apps/quorum.hpp"
#include "apps/rsm.hpp"
#include "bench_util.hpp"

using namespace abcast;
using namespace abcast::bench;
using abcast::harness::Table;

namespace {

struct PathOutcome {
  LatencyStats latency;
  double msgs_per_op = 0;
};

PathOutcome run_quorum(std::uint32_t n, int ops, bool reads = false) {
  sim::Simulation sim({.n = n, .seed = 1300 + n});
  sim.set_node_factory([n](Env& env) {
    return std::make_unique<apps::QuorumReplicaNode>(
        env, core::StackConfig{}, apps::QuorumConfig::uniform(n));
  });
  sim.start_all();
  const auto msgs_before = sim.net_stats().sent;
  std::vector<Duration> latencies;
  for (int i = 0; i < ops; ++i) {
    auto* node = static_cast<apps::QuorumReplicaNode*>(
        sim.node(static_cast<ProcessId>(i) % n));
    auto done = std::make_shared<bool>(false);
    const TimePoint start = sim.now();
    if (reads) {
      node->read("k" + std::to_string(i % 8),
                 [done](std::optional<std::string>, apps::QuorumVersion) {
                   *done = true;
                 });
    } else {
      node->write("k" + std::to_string(i % 8), "v",
                  [done] { *done = true; });
    }
    sim.run_until_pred([&] { return *done; }, sim.now() + seconds(60));
    latencies.push_back(sim.now() - start);
  }
  PathOutcome out;
  out.latency = latency_stats(latencies);
  out.msgs_per_op =
      static_cast<double>(sim.net_stats().sent - msgs_before) / ops;
  return out;
}

// AB path: a linearizable operation (read or write) costs one ordering
// round — the submitter waits until its own marker is delivered.
PathOutcome run_ordered(std::uint32_t n, int ops) {
  sim::Simulation sim({.n = n, .seed = 1400 + n});
  sim.set_node_factory([](Env& env) {
    return std::make_unique<apps::RsmNode>(
        env, core::StackConfig{},
        [] { return std::make_unique<apps::KvStore>(); });
  });
  sim.start_all();
  auto node = [&sim](ProcessId p) {
    return static_cast<apps::RsmNode*>(sim.node(p));
  };
  const auto msgs_before = sim.net_stats().sent;
  std::vector<Duration> latencies;
  for (int i = 0; i < ops; ++i) {
    const ProcessId via = static_cast<ProcessId>(i) % n;
    const TimePoint start = sim.now();
    const std::uint64_t before = node(via)->rsm().applied();
    node(via)->submit(
        apps::KvCommand::put("k" + std::to_string(i % 8), "v"));
    sim.run_until_pred(
        [&] { return node(via)->rsm().applied() > before; },
        sim.now() + seconds(60));
    latencies.push_back(sim.now() - start);
  }
  PathOutcome out;
  out.latency = latency_stats(latencies);
  out.msgs_per_op =
      static_cast<double>(sim.net_stats().sent - msgs_before) / ops;
  return out;
}

void run_tables() {
  banner("E12: quorum writes vs totally-ordered writes",
         "Claim (§6.3): with configuration handled by AB, the data path "
         "can use plain weighted quorums — fewer messages and no ordering "
         "round per operation.");
  Table t({"n", "operation", "path", "p50 ms", "p99 ms", "net msgs/op"});
  const int kOps = 60;
  for (const std::uint32_t n : {3u, 5u, 7u}) {
    const auto qw = run_quorum(n, kOps);
    t.row({std::to_string(n), "write", "quorum (6.3)",
           Table::num(qw.latency.p50_ms), Table::num(qw.latency.p99_ms),
           Table::num(qw.msgs_per_op, 1)});
    const auto ow = run_ordered(n, kOps);
    t.row({std::to_string(n), "write", "AB-ordered (RSM)",
           Table::num(ow.latency.p50_ms), Table::num(ow.latency.p99_ms),
           Table::num(ow.msgs_per_op, 1)});
    const auto qr = run_quorum(n, kOps, /*reads=*/true);
    t.row({std::to_string(n), "lin. read", "quorum (6.3)",
           Table::num(qr.latency.p50_ms), Table::num(qr.latency.p99_ms),
           Table::num(qr.msgs_per_op, 1)});
    const auto onr = run_ordered(n, kOps);  // a read marker = one round
    t.row({std::to_string(n), "lin. read", "AB-ordered (RSM)",
           Table::num(onr.latency.p50_ms), Table::num(onr.latency.p99_ms),
           Table::num(onr.msgs_per_op, 1)});
  }
  t.print(std::cout);
  std::printf("\nReading: a quorum LINEARIZABLE READ is one direct RTT — "
              "roughly half the AB ordering round it replaces. Writes pay "
              "two phases and land close to an ordering round in a "
              "zero-fsync simulator; the quorum store trades away general "
              "RSM semantics for that read path and per-op independence.\n");
}

void BM_QuorumWrite(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_quorum(3, 30).msgs_per_op);
  }
}
BENCHMARK(BM_QuorumWrite)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
