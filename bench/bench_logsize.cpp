// E4 — Log size growth and application-level checkpoints (paper §5.2).
//
// Claim: without truncation the stable-storage footprint grows without
// bound (one proposal + decision + engine record per round); application
// checkpoints plus truncation keep it bounded (sawtooth).
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

using namespace abcast;
using namespace abcast::bench;
using namespace abcast::harness;

namespace {

struct FootprintSeries {
  std::vector<std::uint64_t> samples;  // bytes at p0 per sample interval
};

FootprintSeries run_once(bool bounded, int bursts) {
  ClusterConfig cfg;
  cfg.sim.n = 3;
  cfg.sim.seed = 400;
  if (bounded) {
    cfg.stack.ab.checkpointing = true;
    cfg.stack.ab.app_checkpointing = true;
    cfg.stack.ab.truncate_logs = true;
    cfg.stack.ab.state_transfer = true;
    cfg.stack.ab.checkpoint_period = millis(300);
  }
  Cluster c(cfg);
  c.start_all();
  FootprintSeries series;
  std::vector<MsgId> ids;
  for (int burst = 0; burst < bursts; ++burst) {
    for (int i = 0; i < 5; ++i) ids.push_back(c.broadcast(0, Bytes(64, 'x')));
    c.sim().run_for(millis(100));
    if (burst % 10 == 9) {
      series.samples.push_back(c.sim().host(0).storage().footprint_bytes());
    }
  }
  c.await_delivery(ids, {}, seconds(600));
  series.samples.push_back(c.sim().host(0).storage().footprint_bytes());
  return series;
}

void run_tables() {
  banner("E4: stable-storage footprint over time",
         "Claim: unbounded linear growth without truncation; bounded "
         "sawtooth with app-level checkpoints + truncation (Fig.4 lines "
         "b-c).");
  const int kBursts = 100;  // 500 messages, ~100 rounds
  const auto unbounded = run_once(false, kBursts);
  const auto bounded = run_once(true, kBursts);

  Table t({"progress", "unbounded bytes", "bounded bytes", "ratio"});
  const std::size_t samples =
      std::min(unbounded.samples.size(), bounded.samples.size());
  for (std::size_t i = 0; i < samples; ++i) {
    const double ratio =
        bounded.samples[i] == 0
            ? 0
            : static_cast<double>(unbounded.samples[i]) /
                  static_cast<double>(bounded.samples[i]);
    t.row({std::to_string((i + 1) * 10) + "%",
           fmt_u64(unbounded.samples[i]), fmt_u64(bounded.samples[i]),
           Table::num(ratio, 1)});
  }
  t.print(std::cout);
  std::printf("\nExpected shape: the 'unbounded' column keeps climbing; the "
              "'bounded' column plateaus.\n");

  banner("E4b: bytes written per delivered message",
         "Incremental logging (§5.5) writes only deltas of the Unordered "
         "set.");
  Table t2({"variant", "ab bytes/msg"});
  for (const bool incremental : {false, true}) {
    ClusterConfig cfg;
    cfg.sim.n = 3;
    cfg.sim.seed = 401;
    cfg.stack.ab.log_unordered = true;
    cfg.stack.ab.incremental_unordered_log = incremental;
    Cluster c(cfg);
    c.start_all();
    const int kMsgs = 300;
    run_open_loop(c, kMsgs, 16, millis(5));
    auto* mem =
        dynamic_cast<MemStableStorage*>(&c.sim().host(0).raw_storage());
    t2.row({incremental ? "incremental (5.5)" : "whole-set (5.4)",
            Table::num(static_cast<double>(
                           mem->scope_stats("ab").bytes_written) /
                       kMsgs, 1)});
  }
  t2.print(std::cout);
}

void BM_HundredRoundsBounded(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_once(true, 50).samples.size());
  }
}
BENCHMARK(BM_HundredRoundsBounded)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
