// E11 — Multi-group total order multicast (paper §6.4, after [17]).
//
// Claim (the "scalable atomic multicast" argument): ordering cost should
// scale with the number of *destination* groups, not with the system size —
// a message to one group pays one AB round; a message to k groups pays one
// AB round per group plus one timestamp exchange plus a FINAL round.
#include <benchmark/benchmark.h>

#include <map>

#include "bench_util.hpp"
#include "multicast/multicast.hpp"

using namespace abcast;
using namespace abcast::bench;
using namespace abcast::multicast;
using abcast::harness::Table;

namespace {

struct McOutcome {
  LatencyStats latency;
  double net_msgs_per_mc = 0;
};

/// `group_count` groups of 3; every multicast goes to `dest_count` groups.
McOutcome run_once(std::uint32_t group_count, std::uint32_t dest_count,
                   std::uint64_t seed) {
  GroupTopology topology;
  for (std::uint32_t g = 0; g < group_count; ++g) {
    std::vector<ProcessId> members;
    for (ProcessId i = 0; i < 3; ++i) members.push_back(g * 3 + i);
    topology.groups.push_back(members);
  }
  sim::Simulation sim(
      {.n = group_count * 3, .seed = seed});

  std::map<McId, TimePoint> sent;
  std::map<McId, TimePoint> done;
  std::map<McId, std::uint32_t> want;  // deliveries still outstanding
  sim.set_node_factory([&](Env& env) {
    return std::make_unique<MulticastNode>(
        env, topology, MulticastConfig{},
        [&](const McDelivery& d) {
          auto it = want.find(d.id);
          if (it == want.end()) return;
          if (--it->second == 0) done[d.id] = sim.now();
        });
  });
  sim.start_all();
  auto node = [&sim](ProcessId p) {
    return static_cast<MulticastNode*>(sim.node(p));
  };

  const int kMsgs = 40;
  for (int i = 0; i < kMsgs; ++i) {
    // Destinations: initiator's group plus the next dest_count-1 groups.
    const std::uint32_t origin = static_cast<std::uint32_t>(i) % group_count;
    std::vector<std::uint32_t> dests;
    for (std::uint32_t d = 0; d < dest_count; ++d) {
      dests.push_back((origin + d) % group_count);
    }
    const ProcessId from = static_cast<ProcessId>(origin * 3);
    const auto net_ignore = sim.net_stats();
    (void)net_ignore;
    const McId id = node(from)->mcast({}, dests);
    sent[id] = sim.now();
    want[id] = dest_count * 3;  // every member of every dest group
    sim.run_for(millis(40));
  }
  sim.run_until_pred([&] { return done.size() == sent.size(); },
                     sim.now() + seconds(300));

  McOutcome out;
  std::vector<Duration> latencies;
  for (const auto& [id, t0] : sent) {
    auto it = done.find(id);
    if (it != done.end()) latencies.push_back(it->second - t0);
  }
  out.latency = latency_stats(latencies);
  out.net_msgs_per_mc =
      static_cast<double>(sim.net_stats().sent) / kMsgs;
  return out;
}

void run_tables() {
  banner("E11: multicast cost vs destination-group count",
         "Claim (after [17]): latency and traffic scale with the number of "
         "destination groups, not with the total number of groups.");
  Table t({"groups total", "dest groups", "p50 ms", "p99 ms",
           "net msgs/mc (incl. bg)"});
  for (const std::uint32_t total : {2u, 4u}) {
    for (std::uint32_t dests = 1; dests <= total; dests *= 2) {
      const auto out = run_once(total, dests, 1100 + total * 10 + dests);
      t.row({std::to_string(total), std::to_string(dests),
             Table::num(out.latency.p50_ms), Table::num(out.latency.p99_ms),
             Table::num(out.net_msgs_per_mc, 1)});
    }
  }
  t.print(std::cout);
  std::printf("\nReading: within one row-group, cost rises with 'dest "
              "groups'; across row-groups at equal dest count, total system "
              "size barely matters.\n");
}

void BM_TwoGroupMulticast(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_once(2, 2, 1200).latency.samples);
  }
}
BENCHMARK(BM_TwoGroupMulticast)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
