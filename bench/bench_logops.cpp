// E1 — Minimal logging (paper §4.3, abstract).
//
// Claim: the basic Atomic Broadcast protocol performs ZERO log operations
// beyond those of the Consensus black box — the AB column must be exactly 0.
// Each §5 feature then adds precisely its own documented log operations.
//
// E15 — Batched I/O hot path (DESIGN.md §16). Two wall-clock tables:
// logged-ops/s per storage backend × proposer count (the group-commit
// segmented log must beat the fsync-per-put file backend under concurrency
// by coalescing fdatasyncs), and syscalls per delivered message over the
// real UDP transport with sendmmsg/recvmmsg batching off vs on.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <mutex>
#include <thread>

#include "apps/kv_store.hpp"
#include "apps/rsm.hpp"
#include "bench_util.hpp"
#include "net/udp_env.hpp"
#include "storage/file_storage.hpp"
#include "storage/segment_log_storage.hpp"

using namespace abcast;
using namespace abcast::bench;
using namespace abcast::harness;

namespace {

struct VariantSpec {
  const char* name;
  core::Options options;
};

std::vector<VariantSpec> variants() {
  core::Options ckpt;
  ckpt.checkpointing = true;
  ckpt.checkpoint_period = millis(250);
  core::Options batching;
  batching.log_unordered = true;
  core::Options batching_inc = batching;
  batching_inc.incremental_unordered_log = true;
  return {
      {"basic (Fig.2)", core::Options::basic()},
      {"+ckpt (5.1)", ckpt},
      {"+unordered log (5.4)", batching},
      {"+incremental (5.5)", batching_inc},
      {"alternative (full)", core::Options::alternative()},
  };
}

void run_table() {
  banner("E1: log operations per layer",
         "Claim: basic AB adds 0 log ops beyond Consensus; each extension "
         "adds only its own.");
  Table t({"variant", "n", "msgs", "rounds", "ab ops", "cons ops", "fd ops",
           "ab/msg", "cons/msg", "total/msg"});
  for (const auto& v : variants()) {
    for (const std::uint32_t n : {3u, 5u}) {
      ClusterConfig cfg;
      cfg.sim.n = n;
      cfg.sim.seed = 100 + n;
      cfg.stack.ab = v.options;
      Cluster c(cfg);
      c.start_all();
      const int kMsgs = 200;
      const auto res = run_open_loop(c, kMsgs, 8, millis(20));
      Cluster::LogOps total{};
      for (ProcessId p = 0; p < n; ++p) {
        const auto ops = c.log_ops(p);
        total.ab += ops.ab;
        total.consensus += ops.consensus;
        total.fd += ops.fd;
        total.total += ops.total;
      }
      const double per = static_cast<double>(kMsgs) * n;
      t.row({v.name, std::to_string(n), std::to_string(kMsgs),
             fmt_u64(res.rounds), fmt_u64(total.ab), fmt_u64(total.consensus),
             fmt_u64(total.fd),
             Table::num(static_cast<double>(total.ab) / per, 3),
             Table::num(static_cast<double>(total.consensus) / per, 3),
             Table::num(static_cast<double>(total.total) / per, 3)});
    }
  }
  t.print(std::cout);
  std::printf("\n(ops are summed over all n processes; '/msg' columns are "
              "per delivered message per process)\n");
}

// ---------------------------------------------------------------------------
// E15a — logged-ops throughput per storage backend (wall clock, real disk).
//
// `threads` concurrent proposers each log `ops_per_thread` sealed records.
// file-fsync pays one tmp+write+fsync+rename per put; seglog-eachput pays
// one append+fdatasync; seglog-group lets the flusher thread coalesce the
// fdatasyncs of every proposer blocked in the same commit window.

struct LogOpsRow {
  std::uint64_t ops = 0;
  double elapsed_ms = 0;
  double ops_per_sec = 0;
  std::uint64_t fsyncs = 0;  // 0 = backend does not expose a sync counter
};

template <typename PutFn>
LogOpsRow drive_proposers(int threads, int ops_per_thread, PutFn&& put) {
  const Bytes value(200, 'v');
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> proposers;
  for (int t = 0; t < threads; ++t) {
    proposers.emplace_back([t, ops_per_thread, &value, &put] {
      for (int i = 0; i < ops_per_thread; ++i) {
        put("cons/prop/t" + std::to_string(t) + "/" + std::to_string(i % 128),
            value);
      }
    });
  }
  for (auto& p : proposers) p.join();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  LogOpsRow r;
  r.ops = static_cast<std::uint64_t>(threads) *
          static_cast<std::uint64_t>(ops_per_thread);
  r.elapsed_ms =
      std::chrono::duration<double, std::milli>(elapsed).count();
  r.ops_per_sec =
      r.elapsed_ms > 0 ? 1e3 * static_cast<double>(r.ops) / r.elapsed_ms : 0;
  return r;
}

void run_logged_ops_table() {
  banner("E15a: logged-ops throughput by storage backend",
         "Claim: group-commit coalesces concurrent proposers' fdatasyncs — "
         "seglog-group must scale with threads where fsync-per-put cannot.");
  const int ops_per_thread = bench_quick() ? 32 : 256;
  Table t({"backend", "threads", "ops", "elapsed ms", "ops/s", "fsyncs"});
  const auto root = std::filesystem::temp_directory_path() /
                    ("abcast_bench_logops_" + std::to_string(::getpid()));
  int cell = 0;
  for (const int threads : {1, 4}) {
    for (const char* backend :
         {"file-fsync", "seglog-eachput", "seglog-group"}) {
      const auto dir = root / (std::string(backend) + "-" +
                               std::to_string(threads) + "-" +
                               std::to_string(cell++));
      std::filesystem::remove_all(dir);
      LogOpsRow row;
      if (std::string(backend) == "file-fsync") {
        // FileStableStorage is single-owner; serialize puts externally the
        // way a shared log would have to. Every put still fsyncs.
        FileStableStorage storage(dir, /*fsync_writes=*/true);
        std::mutex mu;
        row = drive_proposers(
            threads, ops_per_thread,
            [&storage, &mu](const std::string& key, const Bytes& value) {
              std::lock_guard<std::mutex> lock(mu);
              storage.put(key, value);
            });
        row.fsyncs = row.ops;  // fsync-per-put by construction
      } else {
        SegmentedLogConfig cfg;
        cfg.dir = dir;
        cfg.sync = std::string(backend) == "seglog-group"
                       ? SyncMode::kGroupCommit
                       : SyncMode::kEachPut;
        SegmentedLogStorage storage(cfg);
        row = drive_proposers(
            threads, ops_per_thread,
            [&storage](const std::string& key, const Bytes& value) {
              storage.put(key, value);
            });
        row.fsyncs = storage.seg_stats().fsyncs;
      }
      std::filesystem::remove_all(dir);
      t.row({backend, std::to_string(threads), fmt_u64(row.ops),
             Table::num(row.elapsed_ms, 1), Table::num(row.ops_per_sec, 0),
             fmt_u64(row.fsyncs)});
      Json j;
      j.field("experiment", "logops_throughput")
          .field("backend", backend)
          .field("threads", threads)
          .field("ops", row.ops)
          .field("elapsed_ms", row.elapsed_ms, 2)
          .field("ops_per_sec", row.ops_per_sec, 1)
          .field("fsyncs", row.fsyncs);
      emit_json_row(j);
    }
  }
  std::filesystem::remove_all(root);
  t.print(std::cout);
  std::printf("\n(every record is durable before put returns in all three "
              "backends; group-commit's win is syncs shared across blocked "
              "proposers, visible in the fsyncs column)\n");
}

// ---------------------------------------------------------------------------
// E15b — syscalls per delivered message over the real UDP transport.
//
// A 3-node RSM cluster on localhost sockets orders `kCmds` commands; the
// in-process NetMetrics counters give exact syscall and datagram counts.
// Unbatched, send syscalls == datagrams by construction; with
// sendmmsg/recvmmsg batching each 3-way multisend and each poll wakeup
// coalesces, so the ratio must drop well below 1.

struct UdpBenchCluster {
  UdpBenchCluster(std::uint64_t seed, const net::UdpBatchConfig& batch)
      : applied(3),
        registry(std::make_unique<obs::MetricsRegistry>()),
        hosts(net::make_local_udp_cluster(3, seed, batch, registry.get())) {
    for (auto& a : applied) {
      a = std::make_unique<std::atomic<std::uint64_t>>(0);
    }
    const auto factory = [this](Env& env) -> std::unique_ptr<NodeApp> {
      const ProcessId pid = env.self();
      return std::make_unique<apps::RsmNode>(
          env, core::StackConfig{},
          [] { return std::make_unique<apps::KvStore>(); },
          [this, pid](const core::AppMsg&) { applied[pid]->fetch_add(1); });
    };
    for (auto& h : hosts) h->start_node(factory, /*recovering=*/false);
  }

  // Declaration order: counters and registry outlive the hosts (loop threads
  // increment / stay bound until ~UdpHost joins).
  std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> applied;
  std::unique_ptr<obs::MetricsRegistry> registry;
  std::vector<std::unique_ptr<net::UdpHost>> hosts;
};

void run_udp_syscalls_table() {
  banner("E15b: syscalls per delivered message (real UDP, localhost)",
         "Claim: sendmmsg/recvmmsg batching coalesces the per-datagram "
         "syscall tax without changing ordering behavior.");
  const int kCmds = bench_quick() ? 12 : 48;
  Table t({"batched", "cmds", "send sys", "send dgrams", "sys/dgram",
           "recv sys", "recv dgrams"});
  for (const bool batched : {false, true}) {
    net::UdpBatchConfig batch;
    batch.enabled = batched;
    UdpBenchCluster c(batched ? 11 : 10, batch);
    for (int i = 0; i < kCmds; ++i) {
      auto& h = *c.hosts[static_cast<ProcessId>(i % 3)];
      h.call([&h] {
        static_cast<apps::RsmNode*>(h.node_unsafe())
            ->submit(apps::KvCommand::add("n", 1));
      });
    }
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(120);
    const auto all_applied = [&c, kCmds] {
      for (ProcessId p = 0; p < 3; ++p) {
        if (c.applied[p]->load() < static_cast<std::uint64_t>(kCmds)) {
          return false;
        }
      }
      return true;
    };
    while (!all_applied() && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    std::uint64_t send_sys = 0, send_dgrams = 0, recv_sys = 0,
                  recv_dgrams = 0;
    for (const auto& h : c.hosts) {
      send_sys += h->net_metrics().send_syscalls.load();
      send_dgrams += h->net_metrics().send_datagrams.load();
      recv_sys += h->net_metrics().recv_syscalls.load();
      recv_dgrams += h->net_metrics().recv_datagrams.load();
    }
    const double ratio =
        send_dgrams > 0
            ? static_cast<double>(send_sys) / static_cast<double>(send_dgrams)
            : 0;
    t.row({batched ? "on" : "off", std::to_string(kCmds), fmt_u64(send_sys),
           fmt_u64(send_dgrams), Table::num(ratio, 3), fmt_u64(recv_sys),
           fmt_u64(recv_dgrams)});
    Json j;
    j.field("experiment", "udp_syscalls")
        .field("batched", batched)
        .field("cmds", kCmds)
        .field("converged", all_applied())
        .field("send_syscalls", send_sys)
        .field("send_datagrams", send_dgrams)
        .field("syscalls_per_datagram", ratio, 4)
        .field("recv_syscalls", recv_sys)
        .field("recv_datagrams", recv_dgrams);
    emit_json_row(j);
  }
  t.print(std::cout);
  std::printf("\n(counters summed over all 3 hosts; unbatched sys/dgram is "
              "1.0 by construction — one sendto per datagram)\n");
}

// Wall-clock cost of the full ordering pipeline per message, for reference.
void BM_EndToEnd200Msgs(benchmark::State& state) {
  for (auto _ : state) {
    ClusterConfig cfg;
    cfg.sim.n = 3;
    cfg.sim.seed = 1;
    Cluster c(cfg);
    c.start_all();
    const auto res = run_open_loop(c, 200, 8, millis(20));
    benchmark::DoNotOptimize(res.delivered);
  }
  state.counters["msgs"] = 200;
}
BENCHMARK(BM_EndToEnd200Msgs)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  init_metrics_json(argc, argv);
  run_table();
  run_logged_ops_table();
  run_udp_syscalls_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
