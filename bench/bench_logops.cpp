// E1 — Minimal logging (paper §4.3, abstract).
//
// Claim: the basic Atomic Broadcast protocol performs ZERO log operations
// beyond those of the Consensus black box — the AB column must be exactly 0.
// Each §5 feature then adds precisely its own documented log operations.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

using namespace abcast;
using namespace abcast::bench;
using namespace abcast::harness;

namespace {

struct VariantSpec {
  const char* name;
  core::Options options;
};

std::vector<VariantSpec> variants() {
  core::Options ckpt;
  ckpt.checkpointing = true;
  ckpt.checkpoint_period = millis(250);
  core::Options batching;
  batching.log_unordered = true;
  core::Options batching_inc = batching;
  batching_inc.incremental_unordered_log = true;
  return {
      {"basic (Fig.2)", core::Options::basic()},
      {"+ckpt (5.1)", ckpt},
      {"+unordered log (5.4)", batching},
      {"+incremental (5.5)", batching_inc},
      {"alternative (full)", core::Options::alternative()},
  };
}

void run_table() {
  banner("E1: log operations per layer",
         "Claim: basic AB adds 0 log ops beyond Consensus; each extension "
         "adds only its own.");
  Table t({"variant", "n", "msgs", "rounds", "ab ops", "cons ops", "fd ops",
           "ab/msg", "cons/msg", "total/msg"});
  for (const auto& v : variants()) {
    for (const std::uint32_t n : {3u, 5u}) {
      ClusterConfig cfg;
      cfg.sim.n = n;
      cfg.sim.seed = 100 + n;
      cfg.stack.ab = v.options;
      Cluster c(cfg);
      c.start_all();
      const int kMsgs = 200;
      const auto res = run_open_loop(c, kMsgs, 8, millis(20));
      Cluster::LogOps total{};
      for (ProcessId p = 0; p < n; ++p) {
        const auto ops = c.log_ops(p);
        total.ab += ops.ab;
        total.consensus += ops.consensus;
        total.fd += ops.fd;
        total.total += ops.total;
      }
      const double per = static_cast<double>(kMsgs) * n;
      t.row({v.name, std::to_string(n), std::to_string(kMsgs),
             fmt_u64(res.rounds), fmt_u64(total.ab), fmt_u64(total.consensus),
             fmt_u64(total.fd),
             Table::num(static_cast<double>(total.ab) / per, 3),
             Table::num(static_cast<double>(total.consensus) / per, 3),
             Table::num(static_cast<double>(total.total) / per, 3)});
    }
  }
  t.print(std::cout);
  std::printf("\n(ops are summed over all n processes; '/msg' columns are "
              "per delivered message per process)\n");
}

// Wall-clock cost of the full ordering pipeline per message, for reference.
void BM_EndToEnd200Msgs(benchmark::State& state) {
  for (auto _ : state) {
    ClusterConfig cfg;
    cfg.sim.n = 3;
    cfg.sim.seed = 1;
    Cluster c(cfg);
    c.start_all();
    const auto res = run_open_loop(c, 200, 8, millis(20));
    benchmark::DoNotOptimize(res.delivered);
  }
  state.counters["msgs"] = 200;
}
BENCHMARK(BM_EndToEnd200Msgs)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
