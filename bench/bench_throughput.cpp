// E2 — Batching and throughput (paper §5.4).
//
// Claims: (a) batching many messages into one Consensus instance raises
// throughput (fewer instances per message); (b) the early-return
// A-broadcast (durable Unordered log) lets clients run open-loop instead of
// closed-loop, which is where the batching headroom actually comes from.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

using namespace abcast;
using namespace abcast::bench;
using namespace abcast::harness;

namespace {

ClusterConfig make_config(bool durable_unordered, std::uint64_t seed) {
  ClusterConfig cfg;
  cfg.sim.n = 3;
  cfg.sim.seed = seed;
  if (durable_unordered) {
    cfg.stack.ab.log_unordered = true;
    cfg.stack.ab.incremental_unordered_log = true;
  }
  return cfg;
}

void run_tables() {
  banner("E2: throughput vs batch size",
         "Claim: throughput grows with batch size (one Consensus instance "
         "orders a whole batch); early-return batching >> closed-loop at "
         "high offered load.");

  const int kTotal = bench_quick() ? 120 : 400;
  const int kClosed = bench_quick() ? 30 : 100;
  {
    Table t({"client mode", "batch", "elapsed ms", "msgs/s", "rounds",
             "msgs/round", "p50 ms", "p99 ms"});
    // Closed loop: the basic A-broadcast blocks until delivery.
    {
      Cluster c(make_config(false, 201));
      c.start_all();
      const auto r = run_closed_loop(c, kClosed);  // slow: fewer msgs
      t.row({"closed-loop (basic)", "1",
             Table::num(static_cast<double>(r.elapsed) / 1e6),
             Table::num(r.throughput_per_sec(), 0), fmt_u64(r.rounds),
             Table::num(static_cast<double>(kClosed) /
                        static_cast<double>(r.rounds), 1),
             Table::num(r.latency.p50_ms), Table::num(r.latency.p99_ms)});
    }
    // Open loop with durable Unordered (§5.4 early return): batch sweep.
    const std::vector<int> batches =
        bench_quick() ? std::vector<int>{1, 4, 16, 64}
                      : std::vector<int>{1, 2, 4, 8, 16, 32, 64};
    for (const int batch : batches) {
      Cluster c(make_config(true, 202));
      c.start_all();
      const auto r = run_open_loop(c, kTotal, batch, millis(5));
      t.row({"open-loop (5.4)", std::to_string(batch),
             Table::num(static_cast<double>(r.elapsed) / 1e6),
             Table::num(r.throughput_per_sec(), 0), fmt_u64(r.rounds),
             Table::num(static_cast<double>(kTotal) /
                        static_cast<double>(r.rounds), 1),
             Table::num(r.latency.p50_ms), Table::num(r.latency.p99_ms)});
      Json row;
      row.field("experiment", "throughput_batch_sweep")
          .field("batch", batch)
          .field("elapsed_ms", static_cast<double>(r.elapsed) / 1e6)
          .field("throughput_per_sec", r.throughput_per_sec())
          .field("rounds", r.rounds)
          .field("p50_ms", r.latency.p50_ms, 3)
          .field("p99_ms", r.latency.p99_ms, 3);
      with_metrics(row, c);
      emit_json_row(row);
    }
    t.print(std::cout);
  }

  banner("E2w: pipelining window sweep (batch = 1, capped batches)",
         "Claim: with bounded proposal batches (max_proposal_msgs = 8) one "
         "round at a time is the ordering bottleneck; alpha in-flight rounds "
         "multiply the msgs/round x rounds/sec ceiling until the offered "
         "load is absorbed. Single-message submissions at high offered load "
         "isolate the pipeline (unbounded batches would absorb the backlog "
         "in one proposal and hide it).");
  {
    Table t({"window", "elapsed ms", "msgs/s", "rounds", "p50 ms", "p99 ms"});
    const int kWinTotal = bench_quick() ? 160 : 800;
    const Duration kWinGap = micros(100);  // 10k msgs/s offered
    const std::vector<std::uint64_t> windows =
        bench_quick() ? std::vector<std::uint64_t>{1, 16}
                      : std::vector<std::uint64_t>{1, 4, 16, 64};
    for (const std::uint64_t window : windows) {
      ClusterConfig cfg = make_config(true, 205);
      cfg.stack.ab.max_proposal_msgs = 8;
      cfg.stack.ab.pipeline_window = window;
      Cluster c(cfg);
      c.start_all();
      const auto r = run_open_loop(c, kWinTotal, 1, kWinGap);
      t.row({std::to_string(window),
             Table::num(static_cast<double>(r.elapsed) / 1e6),
             Table::num(r.throughput_per_sec(), 0), fmt_u64(r.rounds),
             Table::num(r.latency.p50_ms), Table::num(r.latency.p99_ms)});
      Json row;
      row.field("experiment", "throughput_window_sweep")
          .field("window", window)
          .field("batch", 1)
          .field("max_proposal_msgs", 8)
          .field("elapsed_ms", static_cast<double>(r.elapsed) / 1e6)
          .field("throughput_per_sec", r.throughput_per_sec())
          .field("rounds", r.rounds)
          .field("p50_ms", r.latency.p50_ms, 3)
          .field("p99_ms", r.latency.p99_ms, 3);
      with_metrics(row, c);
      emit_json_row(row);
    }
    t.print(std::cout);
  }

  banner("E2b: offered load sweep (batch = 16)",
         "Higher offered load amortizes rounds until the round pipeline "
         "saturates.");
  {
    Table t({"gap ms", "msgs/s offered", "msgs/s achieved", "rounds",
             "p99 ms"});
    const std::vector<Duration> gaps =
        bench_quick()
            ? std::vector<Duration>{millis(20), millis(5)}
            : std::vector<Duration>{millis(50), millis(20), millis(10),
                                    millis(5), millis(2), millis(1)};
    for (const Duration gap : gaps) {
      Cluster c(make_config(true, 203));
      c.start_all();
      const auto r = run_open_loop(c, kTotal, 16, gap);
      const double offered = 16.0 / (static_cast<double>(gap) / 1e9);
      t.row({Table::num(static_cast<double>(gap) / 1e6, 0),
             Table::num(offered, 0), Table::num(r.throughput_per_sec(), 0),
             fmt_u64(r.rounds), Table::num(r.latency.p99_ms)});
    }
    t.print(std::cout);
  }
}

void BM_OpenLoopBatch16(benchmark::State& state) {
  for (auto _ : state) {
    Cluster c(make_config(true, 204));
    c.start_all();
    benchmark::DoNotOptimize(run_open_loop(c, 200, 16, millis(5)).delivered);
  }
}
BENCHMARK(BM_OpenLoopBatch16)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  init_metrics_json(argc, argv);
  run_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
