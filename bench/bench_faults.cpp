// E10 — Liveness under crash/recovery churn (paper §1, §7: the protocol is
// non-blocking — live whenever the underlying Consensus is live).
//
// Claim: goodput degrades gracefully as the crash rate rises, and the
// system never wedges while a majority stays up.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "sim/fault_plan.hpp"

using namespace abcast;
using namespace abcast::bench;
using namespace abcast::harness;

namespace {

struct ChurnOutcome {
  double goodput_per_sec = 0;
  LatencyStats latency;
  std::uint64_t crashes = 0;
  bool all_delivered = false;
};

ChurnOutcome run_once(Duration mtbf, ConsensusKind engine) {
  ClusterConfig cfg;
  cfg.sim.n = 5;
  cfg.sim.seed = 1000;
  cfg.sim.net.drop_prob = 0.05;
  cfg.stack.engine = engine;
  cfg.stack.ab = core::Options::alternative();
  Cluster c(cfg);
  c.start_all();

  std::unique_ptr<sim::ChurnInjector> injector;
  if (mtbf > 0) {
    sim::ChurnConfig churn;
    churn.mtbf = mtbf;
    churn.mttr = millis(400);
    churn.stop = seconds(20);
    churn.victims = {1, 2, 3, 4};  // the broadcaster stays good
    injector = std::make_unique<sim::ChurnInjector>(c.sim(), churn);
  }

  std::vector<MsgId> ids;
  const TimePoint start = c.sim().now();
  for (int i = 0; i < 200; ++i) {
    ids.push_back(c.broadcast(0));
    c.sim().run_for(millis(100));
  }
  c.sim().run_until(seconds(22));
  for (ProcessId p = 0; p < 5; ++p) {
    if (!c.sim().host(p).is_up()) c.sim().recover(p);
  }
  ChurnOutcome out;
  out.all_delivered = c.await_delivery(ids, {}, seconds(300));
  out.goodput_per_sec =
      static_cast<double>(c.oracle().global_order().size()) /
      (static_cast<double>(c.sim().now() - start) / 1e9);
  out.latency = latency_stats(c.oracle().latencies());
  out.crashes = injector ? injector->crashes_injected() : 0;
  return out;
}

void run_tables() {
  banner("E10: goodput vs crash rate (MTTR fixed at 400ms; majority "
         "always up)",
         "Claim: graceful degradation, no wedging; latency tail grows with "
         "churn while goodput tracks the offered load.");
  Table t({"engine", "MTBF", "crashes", "goodput msg/s", "p50 ms", "p99 ms",
           "all delivered"});
  for (const auto engine : {ConsensusKind::kPaxos, ConsensusKind::kCoord}) {
    for (const Duration mtbf :
         {Duration{0}, seconds(10), seconds(5), seconds(2), seconds(1)}) {
      const auto out = run_once(mtbf, engine);
      t.row({to_string(engine),
             mtbf == 0 ? "none" : Table::num(static_cast<double>(mtbf) / 1e9,
                                             0) + "s",
             fmt_u64(out.crashes), Table::num(out.goodput_per_sec, 1),
             Table::num(out.latency.p50_ms), Table::num(out.latency.p99_ms),
             out.all_delivered ? "yes" : "NO"});
    }
  }
  t.print(std::cout);
}

void BM_ChurnMarathonPaxos(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_once(seconds(2), ConsensusKind::kPaxos).goodput_per_sec);
  }
}
BENCHMARK(BM_ChurnMarathonPaxos)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
