// E10 — Liveness under crash/recovery churn (paper §1, §7: the protocol is
// non-blocking — live whenever the underlying Consensus is live).
//
// Claim: goodput degrades gracefully as the crash rate rises, and the
// system never wedges while a majority stays up.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <functional>

#include "bench_util.hpp"
#include "sim/fault_plan.hpp"

using namespace abcast;
using namespace abcast::bench;
using namespace abcast::harness;

namespace {

struct ChurnOutcome {
  double goodput_per_sec = 0;
  LatencyStats latency;
  std::uint64_t crashes = 0;
  bool all_delivered = false;
};

ChurnOutcome run_once(Duration mtbf, ConsensusKind engine) {
  ClusterConfig cfg;
  cfg.sim.n = 5;
  cfg.sim.seed = 1000;
  cfg.sim.net.drop_prob = 0.05;
  cfg.stack.engine = engine;
  cfg.stack.ab = core::Options::alternative();
  Cluster c(cfg);
  c.start_all();

  std::unique_ptr<sim::ChurnInjector> injector;
  if (mtbf > 0) {
    sim::ChurnConfig churn;
    churn.mtbf = mtbf;
    churn.mttr = millis(400);
    churn.stop = seconds(20);
    churn.victims = {1, 2, 3, 4};  // the broadcaster stays good
    injector = std::make_unique<sim::ChurnInjector>(c.sim(), churn);
  }

  std::vector<MsgId> ids;
  const TimePoint start = c.sim().now();
  for (int i = 0; i < 200; ++i) {
    ids.push_back(c.broadcast(0));
    c.sim().run_for(millis(100));
  }
  c.sim().run_until(seconds(22));
  for (ProcessId p = 0; p < 5; ++p) {
    if (!c.sim().host(p).is_up()) c.sim().recover(p);
  }
  ChurnOutcome out;
  out.all_delivered = c.await_delivery(ids, {}, seconds(300));
  out.goodput_per_sec =
      static_cast<double>(c.oracle().global_order().size()) /
      (static_cast<double>(c.sim().now() - start) / 1e9);
  out.latency = latency_stats(c.oracle().latencies());
  out.crashes = injector ? injector->crashes_injected() : 0;
  return out;
}

void run_tables() {
  banner("E10: goodput vs crash rate (MTTR fixed at 400ms; majority "
         "always up)",
         "Claim: graceful degradation, no wedging; latency tail grows with "
         "churn while goodput tracks the offered load.");
  Table t({"engine", "MTBF", "crashes", "goodput msg/s", "p50 ms", "p99 ms",
           "all delivered"});
  for (const auto engine : {ConsensusKind::kPaxos, ConsensusKind::kCoord}) {
    for (const Duration mtbf :
         {Duration{0}, seconds(10), seconds(5), seconds(2), seconds(1)}) {
      const auto out = run_once(mtbf, engine);
      t.row({to_string(engine),
             mtbf == 0 ? "none" : Table::num(static_cast<double>(mtbf) / 1e9,
                                             0) + "s",
             fmt_u64(out.crashes), Table::num(out.goodput_per_sec, 1),
             Table::num(out.latency.p50_ms), Table::num(out.latency.p99_ms),
             out.all_delivered ? "yes" : "NO"});
    }
  }
  t.print(std::cout);
}

// ---- E10b: storage-fault-rate sweep -------------------------------------
//
// Every host's storage injects rate-driven I/O errors, silent torn puts and
// read bit-rot, plus churn delivered as storage crash-points (the process
// dies AT a log operation, in a random phase). AutoMedic revives whatever
// goes down. Reports recovery latency and the corruption-handling counters,
// and emits one JSON object per sweep point for machine consumption.

struct StorageFaultOutcome {
  double goodput_per_sec = 0;
  std::uint64_t storage_crashes = 0;
  std::uint64_t failed_recoveries = 0;
  std::uint64_t io_errors = 0;
  std::uint64_t torn_puts = 0;
  std::uint64_t bit_flips = 0;
  std::uint64_t crash_points_fired = 0;
  std::uint64_t corrupt_cons = 0;   // consensus records discarded as torn
  std::uint64_t corrupt_ab = 0;     // ab records discarded as torn
  std::uint64_t quarantined = 0;    // instances fenced off after amnesia
  double recovery_p50_ms = 0;
  double recovery_max_ms = 0;
  bool all_delivered = false;
};

StorageFaultOutcome run_storage_once(double scale, ConsensusKind engine) {
  constexpr std::uint32_t kN = 3;
  ClusterConfig cfg;
  cfg.sim.n = kN;
  cfg.sim.seed = 2000 + static_cast<std::uint64_t>(scale * 100);
  cfg.stack.engine = engine;
  cfg.stack.ab = core::Options::alternative();
  cfg.stack.ab.checkpoint_period = millis(100);
  // Rate faults on every host's storage, scaled by the sweep parameter.
  StorageFaultProfile profile;
  profile.put_io_error_prob = 0.002 * scale;
  profile.get_io_error_prob = 0.001 * scale;
  profile.silent_torn_put_prob = 0.001 * scale;
  profile.read_bit_flip_prob = 0.001 * scale;
  cfg.sim.storage_faults = profile;
  Cluster c(cfg);
  c.start_all();

  // Churn delivered as storage crash-points, so crashes land mid-log-op.
  std::unique_ptr<sim::ChurnInjector> injector;
  if (scale > 0) {
    sim::ChurnConfig churn;
    churn.mtbf = seconds(2);
    churn.mttr = millis(200);
    churn.stop = seconds(15);
    churn.storage_crash_prob = 1.0;
    injector = std::make_unique<sim::ChurnInjector>(c.sim(), churn);
  }
  sim::AutoMedic medic(c.sim(), millis(50));

  // Sample host up/down transitions to measure recovery latency (crash to
  // the first successful restart, failed recovery attempts included).
  std::vector<double> recovery_ms;
  std::vector<TimePoint> down_since(kN, 0);
  std::function<void()> sampler = [&] {
    for (ProcessId p = 0; p < kN; ++p) {
      const bool up = c.sim().host(p).is_up();
      if (!up && down_since[p] == 0) down_since[p] = c.sim().now();
      if (up && down_since[p] != 0) {
        recovery_ms.push_back(
            static_cast<double>(c.sim().now() - down_since[p]) / 1e6);
        down_since[p] = 0;
      }
    }
    c.sim().after(millis(5), sampler);
  };
  c.sim().after(millis(5), sampler);

  // Offered load: sender rotates to whoever is up; a broadcast interrupted
  // by a crash-point is tolerated and only counted when it durably
  // completed (log_unordered is on, so completion == durability).
  std::vector<MsgId> must_deliver;
  const TimePoint start = c.sim().now();
  ProcessId sender = 0;
  for (int i = 0; i < 150; ++i) {
    for (std::uint32_t tries = 0; tries < kN; ++tries) {
      sender = (sender + 1) % kN;
      if (c.sim().host(sender).is_up()) break;
    }
    if (c.sim().host(sender).is_up()) {
      const auto attempt = c.broadcast_may_crash(sender);
      if (attempt.completed) must_deliver.push_back(attempt.id);
    }
    c.sim().run_for(millis(100));
  }

  // Quiesce: stop injecting, revive everyone, drain.
  injector.reset();
  for (ProcessId p = 0; p < kN; ++p) {
    c.sim().storage_faults(p).set_profile(StorageFaultProfile{});
    c.sim().storage_faults(p).disarm_crash_point();
  }
  c.sim().run_for(seconds(1));  // let the medic finish revivals

  StorageFaultOutcome out;
  out.all_delivered = c.await_delivery(must_deliver, {}, seconds(300));
  c.oracle().check();
  out.goodput_per_sec =
      static_cast<double>(c.oracle().global_order().size()) /
      (static_cast<double>(c.sim().now() - start) / 1e9);
  for (ProcessId p = 0; p < kN; ++p) {
    const auto& hs = c.sim().host(p).stats();
    out.storage_crashes += hs.storage_crashes;
    out.failed_recoveries += hs.failed_recoveries;
    const auto& fs = c.sim().storage_faults(p).fault_stats();
    out.io_errors += fs.io_errors;
    out.torn_puts += fs.torn_puts;
    out.bit_flips += fs.bit_flips;
    out.crash_points_fired += fs.crash_points_fired;
    auto* st = c.stack(p);
    out.corrupt_cons += st->consensus().metrics().corrupt_records;
    out.quarantined += st->consensus().metrics().quarantined;
    out.corrupt_ab += st->ab().metrics().corrupt_records;
  }
  if (!recovery_ms.empty()) {
    std::sort(recovery_ms.begin(), recovery_ms.end());
    out.recovery_p50_ms = recovery_ms[recovery_ms.size() / 2];
    out.recovery_max_ms = recovery_ms.back();
  }

  Json row;
  row.field("experiment", "storage_fault_sweep")
      .field("engine", to_string(engine))
      .field("scale", scale, 1)
      .field("storage_crashes", out.storage_crashes)
      .field("failed_recoveries", out.failed_recoveries)
      .field("io_errors", out.io_errors)
      .field("torn_puts", out.torn_puts)
      .field("bit_flips", out.bit_flips)
      .field("crash_points_fired", out.crash_points_fired)
      .field("corrupt_records_consensus", out.corrupt_cons)
      .field("corrupt_records_ab", out.corrupt_ab)
      .field("quarantined_instances", out.quarantined)
      .field("recovery_p50_ms", out.recovery_p50_ms)
      .field("recovery_max_ms", out.recovery_max_ms)
      .field("goodput_per_sec", out.goodput_per_sec)
      .field("all_delivered", out.all_delivered);
  with_metrics(row, c);
  emit_json_row(row);
  return out;
}

void run_storage_tables() {
  banner("E10b: goodput and recovery latency vs storage-fault rate",
         "Claim: torn/corrupt records are detected and contained (replayed "
         "around or quarantined), so safety holds and goodput degrades "
         "gracefully as the storage gets worse.");
  Table t({"engine", "scale", "storage crashes", "failed recov", "io errs",
           "torn", "corrupt recs", "quarantined", "recov p50 ms",
           "goodput msg/s", "all delivered"});
  std::printf("\n[storage-fault sweep JSON]\n");
  for (const auto engine : {ConsensusKind::kPaxos, ConsensusKind::kCoord}) {
    for (const double scale : {0.0, 1.0, 2.0, 5.0, 10.0}) {
      const auto out = run_storage_once(scale, engine);
      t.row({to_string(engine), Table::num(scale, 0),
             fmt_u64(out.storage_crashes), fmt_u64(out.failed_recoveries),
             fmt_u64(out.io_errors), fmt_u64(out.torn_puts),
             fmt_u64(out.corrupt_cons + out.corrupt_ab),
             fmt_u64(out.quarantined), Table::num(out.recovery_p50_ms, 1),
             Table::num(out.goodput_per_sec, 1),
             out.all_delivered ? "yes" : "NO"});
    }
  }
  std::printf("\n");
  t.print(std::cout);
}

void BM_ChurnMarathonPaxos(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_once(seconds(2), ConsensusKind::kPaxos).goodput_per_sec);
  }
}
BENCHMARK(BM_ChurnMarathonPaxos)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  init_metrics_json(argc, argv);
  run_tables();
  run_storage_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
