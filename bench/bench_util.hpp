// Shared machinery for the experiment binaries: workload drivers over the
// simulated cluster, latency statistics, and fsync-cost projection.
//
// All experiment numbers are *virtual-time* measurements from the
// deterministic simulator, so runs are reproducible; wall-clock
// microbenchmarks of hot paths use google-benchmark (see bench_micro and
// the per-binary registrations).
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

#include "harness/fixture.hpp"
#include "harness/table.hpp"
#include "obs/metrics.hpp"

namespace abcast::bench {

struct LatencyStats {
  double mean_ms = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  std::size_t samples = 0;
};

inline LatencyStats latency_stats(const std::vector<Duration>& latencies) {
  LatencyStats s;
  if (latencies.empty()) return s;
  std::vector<Duration> sorted = latencies;
  std::sort(sorted.begin(), sorted.end());
  double sum = 0;
  for (const auto l : sorted) sum += static_cast<double>(l);
  s.samples = sorted.size();
  s.mean_ms = sum / static_cast<double>(sorted.size()) / 1e6;
  s.p50_ms = static_cast<double>(sorted[sorted.size() / 2]) / 1e6;
  s.p99_ms =
      static_cast<double>(sorted[sorted.size() * 99 / 100]) / 1e6;
  return s;
}

struct WorkloadResult {
  std::uint64_t delivered = 0;
  Duration elapsed = 0;  // virtual time from first broadcast to last delivery
  LatencyStats latency;
  std::uint64_t rounds = 0;      // max round reached
  std::uint64_t net_messages = 0;
  std::uint64_t net_bytes = 0;

  double throughput_per_sec() const {
    if (elapsed <= 0) return 0;
    return static_cast<double>(delivered) /
           (static_cast<double>(elapsed) / 1e9);
  }
};

/// Open-loop driver: submits `total` messages in batches of `batch` from
/// round-robin senders, one batch every `gap`; waits for full delivery at
/// every process.
inline WorkloadResult run_open_loop(harness::Cluster& c, int total,
                                    int batch, Duration gap,
                                    Duration timeout = seconds(600)) {
  const auto net_before = c.sim().net_stats();
  const TimePoint start = c.sim().now();
  std::vector<MsgId> ids;
  ids.reserve(static_cast<std::size_t>(total));
  int sent = 0;
  ProcessId sender = 0;
  while (sent < total) {
    for (int b = 0; b < batch && sent < total; ++b, ++sent) {
      while (!c.sim().host(sender).is_up()) {
        sender = (sender + 1) % c.sim().n();
      }
      ids.push_back(c.broadcast(sender));
      sender = (sender + 1) % c.sim().n();
    }
    c.sim().run_for(gap);
  }
  c.await_delivery(ids, {}, timeout);

  WorkloadResult r;
  r.delivered = c.oracle().global_order().size();
  r.elapsed = c.sim().now() - start;
  r.latency = latency_stats(c.oracle().latencies());
  for (ProcessId p = 0; p < c.sim().n(); ++p) {
    if (c.stack(p) != nullptr) {
      r.rounds = std::max(r.rounds, c.stack(p)->ab().round());
    }
  }
  r.net_messages = c.sim().net_stats().sent - net_before.sent;
  r.net_bytes = c.sim().net_stats().bytes_sent - net_before.bytes_sent;
  return r;
}

/// Closed-loop driver: one outstanding message at a time (the basic
/// protocol's "A-broadcast returns when delivered" semantics).
inline WorkloadResult run_closed_loop(harness::Cluster& c, int total,
                                      Duration timeout = seconds(600)) {
  const auto net_before = c.sim().net_stats();
  const TimePoint start = c.sim().now();
  for (int i = 0; i < total; ++i) {
    const MsgId id = c.broadcast(0);
    c.await_delivery({id}, {}, timeout);
  }
  WorkloadResult r;
  r.delivered = c.oracle().global_order().size();
  r.elapsed = c.sim().now() - start;
  r.latency = latency_stats(c.oracle().latencies());
  r.rounds = c.stack(0)->ab().round();
  r.net_messages = c.sim().net_stats().sent - net_before.sent;
  r.net_bytes = c.sim().net_stats().bytes_sent - net_before.bytes_sent;
  return r;
}

/// Projects end-to-end latency when each log operation on the critical
/// path costs `fsync_ms` (the simulator itself charges log ops zero time).
inline double project_latency_ms(double base_ms, double log_ops_per_msg,
                                 double fsync_ms) {
  return base_ms + log_ops_per_msg * fsync_ms;
}

inline std::string fmt_u64(std::uint64_t v) { return std::to_string(v); }

/// True when ABCAST_BENCH_QUICK is set (non-empty): experiment binaries trim
/// their sweeps to smoke-test size. CI uses this to validate the bench
/// pipeline and artifact format without paying for the full sweeps.
inline bool bench_quick() {
  const char* v = std::getenv("ABCAST_BENCH_QUICK");
  return v != nullptr && *v != '\0';
}

/// Prints the standard experiment banner.
inline void banner(const char* id, const char* claim) {
  std::printf("\n=== %s ===\n%s\n\n", id, claim);
}

// ---------------------------------------------------------------------------
// Machine-readable result rows.
//
// Experiment binaries emit one single-line JSON object per measured
// configuration through emit_json_row(). Rows always go to stdout (tagged
// streams are easy to grep); passing --metrics-json=PATH — stripped from
// argv by init_metrics_json() before google-benchmark parses it — appends
// every row to PATH as JSONL for sweep scripts.

/// Ordered single-line JSON object builder. Fields appear in insertion
/// order; string values are escaped.
class Json {
 public:
  Json& field(const std::string& name, const std::string& v) {
    key(name);
    body_ += '"';
    append_escaped(v);
    body_ += '"';
    return *this;
  }
  Json& field(const std::string& name, const char* v) {
    return field(name, std::string(v));
  }
  Json& field(const std::string& name, bool v) {
    key(name);
    body_ += v ? "true" : "false";
    return *this;
  }
  Json& field(const std::string& name, double v, int precision = 2) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    key(name);
    body_ += buf;
    return *this;
  }
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  Json& field(const std::string& name, T v) {
    key(name);
    body_ += std::to_string(v);
    return *this;
  }
  /// Inserts a pre-rendered JSON value (e.g. a nested snapshot object).
  Json& raw(const std::string& name, const std::string& json) {
    key(name);
    body_ += json;
    return *this;
  }

  std::string str() const { return "{" + body_ + "}"; }

 private:
  void key(const std::string& name) {
    if (!body_.empty()) body_ += ',';
    body_ += '"';
    append_escaped(name);
    body_ += "\":";
  }
  void append_escaped(const std::string& s) {
    for (const char c : s) {
      switch (c) {
        case '"': body_ += "\\\""; break;
        case '\\': body_ += "\\\\"; break;
        case '\n': body_ += "\\n"; break;
        case '\t': body_ += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(static_cast<unsigned char>(c)));
            body_ += buf;
          } else {
            body_ += c;
          }
      }
    }
  }
  std::string body_;
};

/// Path given via --metrics-json=PATH; empty when rows go to stdout only.
inline std::string& metrics_json_path() {
  static std::string path;
  return path;
}

/// Strips --metrics-json=PATH from argv and truncates the file. Call before
/// benchmark::Initialize so google-benchmark never sees the flag.
inline void init_metrics_json(int& argc, char** argv) {
  int out = 1;
  const std::string prefix = "--metrics-json=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      metrics_json_path() = arg.substr(prefix.size());
      std::ofstream truncate(metrics_json_path(), std::ios::trunc);
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
}

/// Prints the row to stdout and appends it to the --metrics-json file.
inline void emit_json_row(const Json& row) {
  const std::string line = row.str();
  std::printf("%s\n", line.c_str());
  if (!metrics_json_path().empty()) {
    std::ofstream out(metrics_json_path(), std::ios::app);
    out << line << '\n';
  }
}

/// Appends the cluster registry's full snapshot as a nested "metrics"
/// object, so a row carries every protocol counter alongside the workload
/// numbers.
inline Json& with_metrics(Json& row, harness::Cluster& c) {
  std::ostringstream metrics;
  c.sim().metrics_registry().snapshot().write_json(metrics);
  return row.raw("metrics", metrics.str());
}

}  // namespace abcast::bench
