# Empty dependencies file for bench_gossip.
# This may be replaced when dependencies are built.
