# Empty dependencies file for bench_logops.
# This may be replaced when dependencies are built.
