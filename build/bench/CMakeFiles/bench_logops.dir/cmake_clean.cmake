file(REMOVE_RECURSE
  "CMakeFiles/bench_logops.dir/bench_logops.cpp.o"
  "CMakeFiles/bench_logops.dir/bench_logops.cpp.o.d"
  "bench_logops"
  "bench_logops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_logops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
