file(REMOVE_RECURSE
  "CMakeFiles/bench_logsize.dir/bench_logsize.cpp.o"
  "CMakeFiles/bench_logsize.dir/bench_logsize.cpp.o.d"
  "bench_logsize"
  "bench_logsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_logsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
