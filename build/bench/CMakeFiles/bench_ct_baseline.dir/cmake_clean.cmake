file(REMOVE_RECURSE
  "CMakeFiles/bench_ct_baseline.dir/bench_ct_baseline.cpp.o"
  "CMakeFiles/bench_ct_baseline.dir/bench_ct_baseline.cpp.o.d"
  "bench_ct_baseline"
  "bench_ct_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ct_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
