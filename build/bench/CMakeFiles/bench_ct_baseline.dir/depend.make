# Empty dependencies file for bench_ct_baseline.
# This may be replaced when dependencies are built.
