# Empty compiler generated dependencies file for bench_statetransfer.
# This may be replaced when dependencies are built.
