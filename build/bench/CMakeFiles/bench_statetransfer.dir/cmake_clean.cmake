file(REMOVE_RECURSE
  "CMakeFiles/bench_statetransfer.dir/bench_statetransfer.cpp.o"
  "CMakeFiles/bench_statetransfer.dir/bench_statetransfer.cpp.o.d"
  "bench_statetransfer"
  "bench_statetransfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_statetransfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
