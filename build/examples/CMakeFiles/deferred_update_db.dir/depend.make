# Empty dependencies file for deferred_update_db.
# This may be replaced when dependencies are built.
