file(REMOVE_RECURSE
  "CMakeFiles/deferred_update_db.dir/deferred_update_db.cpp.o"
  "CMakeFiles/deferred_update_db.dir/deferred_update_db.cpp.o.d"
  "deferred_update_db"
  "deferred_update_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deferred_update_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
