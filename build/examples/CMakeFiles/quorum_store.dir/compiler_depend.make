# Empty compiler generated dependencies file for quorum_store.
# This may be replaced when dependencies are built.
