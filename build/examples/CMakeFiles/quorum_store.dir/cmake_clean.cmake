file(REMOVE_RECURSE
  "CMakeFiles/quorum_store.dir/quorum_store.cpp.o"
  "CMakeFiles/quorum_store.dir/quorum_store.cpp.o.d"
  "quorum_store"
  "quorum_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quorum_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
