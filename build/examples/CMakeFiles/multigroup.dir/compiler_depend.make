# Empty compiler generated dependencies file for multigroup.
# This may be replaced when dependencies are built.
