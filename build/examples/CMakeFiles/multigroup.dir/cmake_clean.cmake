file(REMOVE_RECURSE
  "CMakeFiles/multigroup.dir/multigroup.cpp.o"
  "CMakeFiles/multigroup.dir/multigroup.cpp.o.d"
  "multigroup"
  "multigroup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multigroup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
