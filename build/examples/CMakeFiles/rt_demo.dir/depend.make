# Empty dependencies file for rt_demo.
# This may be replaced when dependencies are built.
