# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/fd_test[1]_include.cmake")
include("/root/repo/build/tests/consensus_test[1]_include.cmake")
include("/root/repo/build/tests/agreed_log_test[1]_include.cmake")
include("/root/repo/build/tests/ab_basic_test[1]_include.cmake")
include("/root/repo/build/tests/ab_alternative_test[1]_include.cmake")
include("/root/repo/build/tests/ab_properties_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/rt_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/smoke_test[1]_include.cmake")
include("/root/repo/build/tests/ab_consensus_test[1]_include.cmake")
include("/root/repo/build/tests/regression_test[1]_include.cmake")
include("/root/repo/build/tests/multicast_test[1]_include.cmake")
include("/root/repo/build/tests/quorum_test[1]_include.cmake")
include("/root/repo/build/tests/udp_test[1]_include.cmake")
add_test([=[stress_probe]=] "/root/repo/build/tests/stress_probe")
set_tests_properties([=[stress_probe]=] PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;32;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[rt_probe]=] "/root/repo/build/tests/rt_probe")
set_tests_properties([=[rt_probe]=] PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;37;add_test;/root/repo/tests/CMakeLists.txt;0;")
