# Empty compiler generated dependencies file for stress_probe.
# This may be replaced when dependencies are built.
