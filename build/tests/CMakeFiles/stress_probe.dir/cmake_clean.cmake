file(REMOVE_RECURSE
  "CMakeFiles/stress_probe.dir/stress_probe.cpp.o"
  "CMakeFiles/stress_probe.dir/stress_probe.cpp.o.d"
  "stress_probe"
  "stress_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stress_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
