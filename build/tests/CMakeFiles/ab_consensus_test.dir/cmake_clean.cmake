file(REMOVE_RECURSE
  "CMakeFiles/ab_consensus_test.dir/ab_consensus_test.cpp.o"
  "CMakeFiles/ab_consensus_test.dir/ab_consensus_test.cpp.o.d"
  "ab_consensus_test"
  "ab_consensus_test.pdb"
  "ab_consensus_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ab_consensus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
