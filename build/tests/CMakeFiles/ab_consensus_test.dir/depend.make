# Empty dependencies file for ab_consensus_test.
# This may be replaced when dependencies are built.
