# Empty dependencies file for agreed_log_test.
# This may be replaced when dependencies are built.
