file(REMOVE_RECURSE
  "CMakeFiles/agreed_log_test.dir/agreed_log_test.cpp.o"
  "CMakeFiles/agreed_log_test.dir/agreed_log_test.cpp.o.d"
  "agreed_log_test"
  "agreed_log_test.pdb"
  "agreed_log_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agreed_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
