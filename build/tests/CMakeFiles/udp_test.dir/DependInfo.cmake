
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/udp_test.cpp" "tests/CMakeFiles/udp_test.dir/udp_test.cpp.o" "gcc" "tests/CMakeFiles/udp_test.dir/udp_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/abcast_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/abcast_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/abcast_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/abcast_net.dir/DependInfo.cmake"
  "/root/repo/build/src/multicast/CMakeFiles/abcast_multicast.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/abcast_core.dir/DependInfo.cmake"
  "/root/repo/build/src/consensus/CMakeFiles/abcast_consensus.dir/DependInfo.cmake"
  "/root/repo/build/src/fd/CMakeFiles/abcast_fd.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/abcast_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/abcast_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/env/CMakeFiles/abcast_env.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/abcast_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
