# Empty dependencies file for ab_properties_test.
# This may be replaced when dependencies are built.
