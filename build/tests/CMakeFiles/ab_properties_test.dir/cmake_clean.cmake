file(REMOVE_RECURSE
  "CMakeFiles/ab_properties_test.dir/ab_properties_test.cpp.o"
  "CMakeFiles/ab_properties_test.dir/ab_properties_test.cpp.o.d"
  "ab_properties_test"
  "ab_properties_test.pdb"
  "ab_properties_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ab_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
