file(REMOVE_RECURSE
  "CMakeFiles/rt_probe.dir/rt_probe.cpp.o"
  "CMakeFiles/rt_probe.dir/rt_probe.cpp.o.d"
  "rt_probe"
  "rt_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
