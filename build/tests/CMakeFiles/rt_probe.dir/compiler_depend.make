# Empty compiler generated dependencies file for rt_probe.
# This may be replaced when dependencies are built.
