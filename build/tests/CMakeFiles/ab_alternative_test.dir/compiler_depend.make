# Empty compiler generated dependencies file for ab_alternative_test.
# This may be replaced when dependencies are built.
