file(REMOVE_RECURSE
  "CMakeFiles/ab_alternative_test.dir/ab_alternative_test.cpp.o"
  "CMakeFiles/ab_alternative_test.dir/ab_alternative_test.cpp.o.d"
  "ab_alternative_test"
  "ab_alternative_test.pdb"
  "ab_alternative_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ab_alternative_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
