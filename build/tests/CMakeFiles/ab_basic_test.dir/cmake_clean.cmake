file(REMOVE_RECURSE
  "CMakeFiles/ab_basic_test.dir/ab_basic_test.cpp.o"
  "CMakeFiles/ab_basic_test.dir/ab_basic_test.cpp.o.d"
  "ab_basic_test"
  "ab_basic_test.pdb"
  "ab_basic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ab_basic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
