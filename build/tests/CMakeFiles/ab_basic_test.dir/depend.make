# Empty dependencies file for ab_basic_test.
# This may be replaced when dependencies are built.
