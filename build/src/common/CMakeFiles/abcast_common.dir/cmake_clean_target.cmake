file(REMOVE_RECURSE
  "libabcast_common.a"
)
