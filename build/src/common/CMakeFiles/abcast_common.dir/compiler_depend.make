# Empty compiler generated dependencies file for abcast_common.
# This may be replaced when dependencies are built.
