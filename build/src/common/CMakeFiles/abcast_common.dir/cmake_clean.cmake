file(REMOVE_RECURSE
  "CMakeFiles/abcast_common.dir/codec.cpp.o"
  "CMakeFiles/abcast_common.dir/codec.cpp.o.d"
  "CMakeFiles/abcast_common.dir/crc32.cpp.o"
  "CMakeFiles/abcast_common.dir/crc32.cpp.o.d"
  "CMakeFiles/abcast_common.dir/logging.cpp.o"
  "CMakeFiles/abcast_common.dir/logging.cpp.o.d"
  "libabcast_common.a"
  "libabcast_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abcast_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
