# Empty compiler generated dependencies file for abcast_sim.
# This may be replaced when dependencies are built.
