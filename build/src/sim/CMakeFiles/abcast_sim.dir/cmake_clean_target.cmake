file(REMOVE_RECURSE
  "libabcast_sim.a"
)
