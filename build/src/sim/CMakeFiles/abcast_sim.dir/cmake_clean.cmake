file(REMOVE_RECURSE
  "CMakeFiles/abcast_sim.dir/fault_plan.cpp.o"
  "CMakeFiles/abcast_sim.dir/fault_plan.cpp.o.d"
  "CMakeFiles/abcast_sim.dir/scheduler.cpp.o"
  "CMakeFiles/abcast_sim.dir/scheduler.cpp.o.d"
  "CMakeFiles/abcast_sim.dir/simulation.cpp.o"
  "CMakeFiles/abcast_sim.dir/simulation.cpp.o.d"
  "libabcast_sim.a"
  "libabcast_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abcast_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
