# Empty compiler generated dependencies file for abcast_storage.
# This may be replaced when dependencies are built.
