file(REMOVE_RECURSE
  "libabcast_storage.a"
)
