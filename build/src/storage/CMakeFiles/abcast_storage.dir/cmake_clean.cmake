file(REMOVE_RECURSE
  "CMakeFiles/abcast_storage.dir/file_storage.cpp.o"
  "CMakeFiles/abcast_storage.dir/file_storage.cpp.o.d"
  "CMakeFiles/abcast_storage.dir/mem_storage.cpp.o"
  "CMakeFiles/abcast_storage.dir/mem_storage.cpp.o.d"
  "libabcast_storage.a"
  "libabcast_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abcast_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
