
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/consensus/coord_engine.cpp" "src/consensus/CMakeFiles/abcast_consensus.dir/coord_engine.cpp.o" "gcc" "src/consensus/CMakeFiles/abcast_consensus.dir/coord_engine.cpp.o.d"
  "/root/repo/src/consensus/engine_base.cpp" "src/consensus/CMakeFiles/abcast_consensus.dir/engine_base.cpp.o" "gcc" "src/consensus/CMakeFiles/abcast_consensus.dir/engine_base.cpp.o.d"
  "/root/repo/src/consensus/factory.cpp" "src/consensus/CMakeFiles/abcast_consensus.dir/factory.cpp.o" "gcc" "src/consensus/CMakeFiles/abcast_consensus.dir/factory.cpp.o.d"
  "/root/repo/src/consensus/paxos_engine.cpp" "src/consensus/CMakeFiles/abcast_consensus.dir/paxos_engine.cpp.o" "gcc" "src/consensus/CMakeFiles/abcast_consensus.dir/paxos_engine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/env/CMakeFiles/abcast_env.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/abcast_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/fd/CMakeFiles/abcast_fd.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/abcast_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
