file(REMOVE_RECURSE
  "libabcast_consensus.a"
)
