file(REMOVE_RECURSE
  "CMakeFiles/abcast_consensus.dir/coord_engine.cpp.o"
  "CMakeFiles/abcast_consensus.dir/coord_engine.cpp.o.d"
  "CMakeFiles/abcast_consensus.dir/engine_base.cpp.o"
  "CMakeFiles/abcast_consensus.dir/engine_base.cpp.o.d"
  "CMakeFiles/abcast_consensus.dir/factory.cpp.o"
  "CMakeFiles/abcast_consensus.dir/factory.cpp.o.d"
  "CMakeFiles/abcast_consensus.dir/paxos_engine.cpp.o"
  "CMakeFiles/abcast_consensus.dir/paxos_engine.cpp.o.d"
  "libabcast_consensus.a"
  "libabcast_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abcast_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
