# Empty dependencies file for abcast_consensus.
# This may be replaced when dependencies are built.
