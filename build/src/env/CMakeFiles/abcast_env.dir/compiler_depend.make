# Empty compiler generated dependencies file for abcast_env.
# This may be replaced when dependencies are built.
