file(REMOVE_RECURSE
  "libabcast_env.a"
)
