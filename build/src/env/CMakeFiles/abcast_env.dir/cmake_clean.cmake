file(REMOVE_RECURSE
  "CMakeFiles/abcast_env.dir/env.cpp.o"
  "CMakeFiles/abcast_env.dir/env.cpp.o.d"
  "libabcast_env.a"
  "libabcast_env.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abcast_env.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
