# Empty compiler generated dependencies file for abcast_multicast.
# This may be replaced when dependencies are built.
