file(REMOVE_RECURSE
  "libabcast_multicast.a"
)
