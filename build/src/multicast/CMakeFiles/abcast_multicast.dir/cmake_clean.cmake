file(REMOVE_RECURSE
  "CMakeFiles/abcast_multicast.dir/group_env.cpp.o"
  "CMakeFiles/abcast_multicast.dir/group_env.cpp.o.d"
  "CMakeFiles/abcast_multicast.dir/multicast.cpp.o"
  "CMakeFiles/abcast_multicast.dir/multicast.cpp.o.d"
  "libabcast_multicast.a"
  "libabcast_multicast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abcast_multicast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
