file(REMOVE_RECURSE
  "libabcast_net.a"
)
