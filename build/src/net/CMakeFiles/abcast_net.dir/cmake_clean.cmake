file(REMOVE_RECURSE
  "CMakeFiles/abcast_net.dir/udp_env.cpp.o"
  "CMakeFiles/abcast_net.dir/udp_env.cpp.o.d"
  "libabcast_net.a"
  "libabcast_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abcast_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
