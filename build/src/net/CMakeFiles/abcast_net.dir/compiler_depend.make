# Empty compiler generated dependencies file for abcast_net.
# This may be replaced when dependencies are built.
