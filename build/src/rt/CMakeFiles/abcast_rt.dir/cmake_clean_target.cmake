file(REMOVE_RECURSE
  "libabcast_rt.a"
)
