# Empty compiler generated dependencies file for abcast_rt.
# This may be replaced when dependencies are built.
