file(REMOVE_RECURSE
  "CMakeFiles/abcast_rt.dir/rt_cluster.cpp.o"
  "CMakeFiles/abcast_rt.dir/rt_cluster.cpp.o.d"
  "libabcast_rt.a"
  "libabcast_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abcast_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
