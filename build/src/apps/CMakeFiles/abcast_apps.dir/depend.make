# Empty dependencies file for abcast_apps.
# This may be replaced when dependencies are built.
