
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/deferred_update.cpp" "src/apps/CMakeFiles/abcast_apps.dir/deferred_update.cpp.o" "gcc" "src/apps/CMakeFiles/abcast_apps.dir/deferred_update.cpp.o.d"
  "/root/repo/src/apps/kv_store.cpp" "src/apps/CMakeFiles/abcast_apps.dir/kv_store.cpp.o" "gcc" "src/apps/CMakeFiles/abcast_apps.dir/kv_store.cpp.o.d"
  "/root/repo/src/apps/quorum.cpp" "src/apps/CMakeFiles/abcast_apps.dir/quorum.cpp.o" "gcc" "src/apps/CMakeFiles/abcast_apps.dir/quorum.cpp.o.d"
  "/root/repo/src/apps/rsm.cpp" "src/apps/CMakeFiles/abcast_apps.dir/rsm.cpp.o" "gcc" "src/apps/CMakeFiles/abcast_apps.dir/rsm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/abcast_core.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/abcast_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/abcast_common.dir/DependInfo.cmake"
  "/root/repo/build/src/consensus/CMakeFiles/abcast_consensus.dir/DependInfo.cmake"
  "/root/repo/build/src/fd/CMakeFiles/abcast_fd.dir/DependInfo.cmake"
  "/root/repo/build/src/env/CMakeFiles/abcast_env.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
