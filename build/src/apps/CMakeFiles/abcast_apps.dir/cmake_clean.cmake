file(REMOVE_RECURSE
  "CMakeFiles/abcast_apps.dir/deferred_update.cpp.o"
  "CMakeFiles/abcast_apps.dir/deferred_update.cpp.o.d"
  "CMakeFiles/abcast_apps.dir/kv_store.cpp.o"
  "CMakeFiles/abcast_apps.dir/kv_store.cpp.o.d"
  "CMakeFiles/abcast_apps.dir/quorum.cpp.o"
  "CMakeFiles/abcast_apps.dir/quorum.cpp.o.d"
  "CMakeFiles/abcast_apps.dir/rsm.cpp.o"
  "CMakeFiles/abcast_apps.dir/rsm.cpp.o.d"
  "libabcast_apps.a"
  "libabcast_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abcast_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
