file(REMOVE_RECURSE
  "libabcast_apps.a"
)
