file(REMOVE_RECURSE
  "libabcast_core.a"
)
