
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/ab_consensus.cpp" "src/core/CMakeFiles/abcast_core.dir/ab_consensus.cpp.o" "gcc" "src/core/CMakeFiles/abcast_core.dir/ab_consensus.cpp.o.d"
  "/root/repo/src/core/agreed_log.cpp" "src/core/CMakeFiles/abcast_core.dir/agreed_log.cpp.o" "gcc" "src/core/CMakeFiles/abcast_core.dir/agreed_log.cpp.o.d"
  "/root/repo/src/core/atomic_broadcast.cpp" "src/core/CMakeFiles/abcast_core.dir/atomic_broadcast.cpp.o" "gcc" "src/core/CMakeFiles/abcast_core.dir/atomic_broadcast.cpp.o.d"
  "/root/repo/src/core/crash_stop_ab.cpp" "src/core/CMakeFiles/abcast_core.dir/crash_stop_ab.cpp.o" "gcc" "src/core/CMakeFiles/abcast_core.dir/crash_stop_ab.cpp.o.d"
  "/root/repo/src/core/delivery_sink.cpp" "src/core/CMakeFiles/abcast_core.dir/delivery_sink.cpp.o" "gcc" "src/core/CMakeFiles/abcast_core.dir/delivery_sink.cpp.o.d"
  "/root/repo/src/core/node_stack.cpp" "src/core/CMakeFiles/abcast_core.dir/node_stack.cpp.o" "gcc" "src/core/CMakeFiles/abcast_core.dir/node_stack.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/consensus/CMakeFiles/abcast_consensus.dir/DependInfo.cmake"
  "/root/repo/build/src/fd/CMakeFiles/abcast_fd.dir/DependInfo.cmake"
  "/root/repo/build/src/env/CMakeFiles/abcast_env.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/abcast_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/abcast_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
