file(REMOVE_RECURSE
  "CMakeFiles/abcast_core.dir/ab_consensus.cpp.o"
  "CMakeFiles/abcast_core.dir/ab_consensus.cpp.o.d"
  "CMakeFiles/abcast_core.dir/agreed_log.cpp.o"
  "CMakeFiles/abcast_core.dir/agreed_log.cpp.o.d"
  "CMakeFiles/abcast_core.dir/atomic_broadcast.cpp.o"
  "CMakeFiles/abcast_core.dir/atomic_broadcast.cpp.o.d"
  "CMakeFiles/abcast_core.dir/crash_stop_ab.cpp.o"
  "CMakeFiles/abcast_core.dir/crash_stop_ab.cpp.o.d"
  "CMakeFiles/abcast_core.dir/delivery_sink.cpp.o"
  "CMakeFiles/abcast_core.dir/delivery_sink.cpp.o.d"
  "CMakeFiles/abcast_core.dir/node_stack.cpp.o"
  "CMakeFiles/abcast_core.dir/node_stack.cpp.o.d"
  "libabcast_core.a"
  "libabcast_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abcast_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
