# Empty compiler generated dependencies file for abcast_core.
# This may be replaced when dependencies are built.
