# Empty dependencies file for abcast_fd.
# This may be replaced when dependencies are built.
