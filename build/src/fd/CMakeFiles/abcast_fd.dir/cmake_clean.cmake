file(REMOVE_RECURSE
  "CMakeFiles/abcast_fd.dir/failure_detector.cpp.o"
  "CMakeFiles/abcast_fd.dir/failure_detector.cpp.o.d"
  "CMakeFiles/abcast_fd.dir/suspect_list_detector.cpp.o"
  "CMakeFiles/abcast_fd.dir/suspect_list_detector.cpp.o.d"
  "libabcast_fd.a"
  "libabcast_fd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abcast_fd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
