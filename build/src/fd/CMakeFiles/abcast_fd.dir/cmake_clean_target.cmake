file(REMOVE_RECURSE
  "libabcast_fd.a"
)
