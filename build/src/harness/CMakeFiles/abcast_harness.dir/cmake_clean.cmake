file(REMOVE_RECURSE
  "CMakeFiles/abcast_harness.dir/fixture.cpp.o"
  "CMakeFiles/abcast_harness.dir/fixture.cpp.o.d"
  "CMakeFiles/abcast_harness.dir/oracle.cpp.o"
  "CMakeFiles/abcast_harness.dir/oracle.cpp.o.d"
  "CMakeFiles/abcast_harness.dir/table.cpp.o"
  "CMakeFiles/abcast_harness.dir/table.cpp.o.d"
  "libabcast_harness.a"
  "libabcast_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abcast_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
