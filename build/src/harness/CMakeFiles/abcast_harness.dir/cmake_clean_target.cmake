file(REMOVE_RECURSE
  "libabcast_harness.a"
)
