# Empty compiler generated dependencies file for abcast_harness.
# This may be replaced when dependencies are built.
