// Fuzz family: the checkpoint data model — per-incarnation vector clocks,
// application checkpoints, and the AgreedLog prefix representation
// (src/core/vector_clock.hpp, src/core/agreed_log.hpp). These decoders face
// both hostile datagrams (StateChunkMsg snapshot bytes decode into an
// AppCheckpoint) and torn stable-storage records (the (k, Agreed)
// checkpoint record), so they must reject, never allocate absurdly.
#include "core/agreed_log.hpp"
#include "core/vector_clock.hpp"
#include "fuzz/fuzz_util.hpp"

namespace abcast::fuzz {

int fuzz_vector_clock(const std::uint8_t* data, std::size_t size) {
  if (size == 0) return 0;
  const Bytes payload = tail(data, size);
  switch (data[0] % 3) {
    // ablint:fuzz VectorClock
    case 0:
      decode_then_reencode<core::VectorClock>("vector_clock", payload);
      break;
    // ablint:fuzz AppCheckpoint
    case 1:
      decode_then_reencode<core::AppCheckpoint>("vector_clock", payload);
      break;
    // ablint:fuzz AgreedLog
    default:
      decode_then_reencode<core::AgreedLog>("vector_clock", payload);
      break;
  }
  return 0;
}

}  // namespace abcast::fuzz

ABCAST_FUZZ_TARGET(fuzz_vector_clock)
