// Registry of every fuzz harness family (DESIGN.md §15).
//
// One entry per decoder family; the name doubles as the corpus subdirectory
// under fuzz/corpus/ and the harness executable suffix (fuzz_<name>).
// tests/fuzz_regression_test.cpp walks this table to replay checked-in
// crashers, and gen_corpus walks it to lay out seed corpora, so adding a
// family here wires it into tier-1 CI automatically.
#pragma once

#include <cstddef>
#include <cstdint>

namespace abcast::fuzz {

int fuzz_consensus_wire(const std::uint8_t* data, std::size_t size);
int fuzz_ab_wire(const std::uint8_t* data, std::size_t size);
int fuzz_group_wire(const std::uint8_t* data, std::size_t size);
int fuzz_vector_clock(const std::uint8_t* data, std::size_t size);
int fuzz_app_checkpoint(const std::uint8_t* data, std::size_t size);
int fuzz_storage_record(const std::uint8_t* data, std::size_t size);
int fuzz_scenario(const std::uint8_t* data, std::size_t size);
int fuzz_tracecheck(const std::uint8_t* data, std::size_t size);

struct FuzzTarget {
  const char* name;
  int (*fn)(const std::uint8_t* data, std::size_t size);
};

inline constexpr FuzzTarget kFuzzTargets[] = {
    {"consensus_wire", fuzz_consensus_wire},
    {"ab_wire", fuzz_ab_wire},
    {"group_wire", fuzz_group_wire},
    {"vector_clock", fuzz_vector_clock},
    {"app_checkpoint", fuzz_app_checkpoint},
    {"storage_record", fuzz_storage_record},
    {"scenario", fuzz_scenario},
    {"tracecheck", fuzz_tracecheck},
};

}  // namespace abcast::fuzz
