// gen_corpus: writes the auto-generated seed corpora (one subdirectory per
// fuzz family) into the given directory. Driven by scripts/run_fuzz.sh;
// tests/fuzz_regression_test generates the same seeds in-process.
#include <cstdio>

#include "fuzz/corpus_gen.hpp"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: gen_corpus <out_dir>\n");
    return 2;
  }
  const int n = abcast::fuzz::write_seed_corpora(argv[1]);
  std::fprintf(stderr, "gen_corpus: wrote %d seeds under %s\n", n, argv[1]);
  return 0;
}
