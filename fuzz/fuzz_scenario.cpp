// Fuzz family: the scenario DSL's one-line grammar (src/scenario/). A
// scenario line is the repro artifact printed by failing sweeps and fed
// back on the command line, so the parser faces arbitrary text. Contract:
// parse() either rejects with a non-empty reason or accepts a scenario
// whose serialize()/parse() round-trip is an exact fixpoint — the property
// ablint rule 5 pins per clause kind, extended here to every input the
// mutator can invent.
#include <string>

#include "fuzz/fuzz_util.hpp"
#include "scenario/scenario.hpp"

namespace abcast::fuzz {

int fuzz_scenario(const std::uint8_t* data, std::size_t size) {
  // Whole input is the candidate line (no selector: one grammar).
  const std::string line(reinterpret_cast<const char*>(data), size);
  std::string error;
  const auto s = scenario::Scenario::parse(line, &error);
  if (!s) {
    ABCAST_FUZZ_REQUIRE("scenario", !error.empty());
    return 0;
  }
  const std::string canon = s->serialize();
  std::string error2;
  const auto again = scenario::Scenario::parse(canon, &error2);
  if (!again) die("scenario", "serialize() of an accepted scenario rejected");
  if (!(*again == *s)) {
    die("scenario", "serialize()/parse() round-trip changed the scenario");
  }
  ABCAST_FUZZ_REQUIRE("scenario", again->serialize() == canon);
  return 0;
}

}  // namespace abcast::fuzz

ABCAST_FUZZ_TARGET(fuzz_scenario)
