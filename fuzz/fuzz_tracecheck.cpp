// Fuzz family: tracecheck's JSONL ingest (src/obs/trace.cpp). tools/
// tracecheck reads externally supplied trace files; a malformed line must
// surface as a CodecError diagnostic (the tool prints it per file), never a
// crash or UB. Accepted traces must re-emit through event_to_json and parse
// back to the same emission — the lossless-export property trace merging
// depends on.
#include <sstream>
#include <vector>

#include "fuzz/fuzz_util.hpp"
#include "obs/trace.hpp"

namespace abcast::fuzz {

int fuzz_tracecheck(const std::uint8_t* data, std::size_t size) {
  std::istringstream in(std::string(reinterpret_cast<const char*>(data),
                                    size));
  std::vector<obs::TraceEvent> events;
  try {
    events = obs::parse_trace_jsonl(in);
  } catch (const CodecError&) {
    return 0;  // the diagnostic path tracecheck reports per file
  }
  for (const auto& e : events) {
    const std::string json = obs::event_to_json(e);
    std::istringstream one(json);
    const auto back = obs::parse_trace_jsonl(one);  // must not throw
    ABCAST_FUZZ_REQUIRE("tracecheck", back.size() == 1);
    ABCAST_FUZZ_REQUIRE("tracecheck",
                        obs::event_to_json(back.front()) == json);
  }
  return 0;
}

}  // namespace abcast::fuzz

ABCAST_FUZZ_TARGET(fuzz_tracecheck)
