// Fuzz family: every consensus-layer datagram payload
// (src/consensus/consensus_wire.hpp). The first byte selects the message,
// the rest is the payload handed to its decoder, exactly as an arbitrary
// UDP datagram would reach it through drain_socket's Wire dispatch.
#include "consensus/consensus_wire.hpp"

#include "fuzz/fuzz_util.hpp"

namespace abcast::fuzz {

int fuzz_consensus_wire(const std::uint8_t* data, std::size_t size) {
  if (size == 0) return 0;
  const Bytes payload = tail(data, size);
  using namespace consensus_wire;
  switch (data[0] % 10) {
    // ablint:fuzz DecidedMsg
    case 0: decode_then_reencode<DecidedMsg>("consensus_wire", payload); break;
    // ablint:fuzz DecidedAckMsg
    case 1:
      decode_then_reencode<DecidedAckMsg>("consensus_wire", payload);
      break;
    // ablint:fuzz PrepareMsg
    case 2: decode_then_reencode<PrepareMsg>("consensus_wire", payload); break;
    // ablint:fuzz PromiseMsg
    case 3: decode_then_reencode<PromiseMsg>("consensus_wire", payload); break;
    // ablint:fuzz AcceptMsg
    case 4: decode_then_reencode<AcceptMsg>("consensus_wire", payload); break;
    // ablint:fuzz AcceptedMsg
    case 5: decode_then_reencode<AcceptedMsg>("consensus_wire", payload); break;
    // ablint:fuzz NackMsg
    case 6: decode_then_reencode<NackMsg>("consensus_wire", payload); break;
    // ablint:fuzz EstimateMsg
    case 7: decode_then_reencode<EstimateMsg>("consensus_wire", payload); break;
    // ablint:fuzz NewEstimateMsg
    case 8:
      decode_then_reencode<NewEstimateMsg>("consensus_wire", payload);
      break;
    // ablint:fuzz RoundMsg
    default: decode_then_reencode<RoundMsg>("consensus_wire", payload); break;
  }
  return 0;
}

}  // namespace abcast::fuzz

ABCAST_FUZZ_TARGET(fuzz_consensus_wire)
