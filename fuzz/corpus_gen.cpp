#include "fuzz/corpus_gen.hpp"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "apps/deferred_update.hpp"
#include "apps/kv_store.hpp"
#include "apps/quorum.hpp"
#include "common/codec.hpp"
#include "consensus/consensus_wire.hpp"
#include "core/ab_wire.hpp"
#include "core/agreed_log.hpp"
#include "core/app_msg.hpp"
#include "core/gossip_wire.hpp"
#include "core/vector_clock.hpp"
#include "group/group_wire.hpp"
#include "obs/trace.hpp"
#include "scenario/scenario.hpp"
#include "storage/sealed_record.hpp"

namespace abcast::fuzz {

namespace {

namespace fs = std::filesystem;

class CorpusWriter {
 public:
  explicit CorpusWriter(const std::string& root) : root_(root) {}

  /// Binary seed: the family's selector byte followed by the payload.
  void seed(const std::string& family, std::uint8_t selector,
            const Bytes& payload) {
    Bytes data;
    data.push_back(selector);
    data.insert(data.end(), payload.begin(), payload.end());
    raw(family, data);
  }

  /// Selector-free seed (text grammars: scenario lines, JSONL).
  void text(const std::string& family, const std::string& s) {
    raw(family, Bytes(s.begin(), s.end()));
  }

  int written() const { return written_; }

 private:
  void raw(const std::string& family, const Bytes& data) {
    const fs::path dir = fs::path(root_) / family;
    fs::create_directories(dir);
    char name[32];
    std::snprintf(name, sizeof(name), "seed-%03d", written_);
    std::ofstream out(dir / name, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
    ++written_;
  }

  std::string root_;
  int written_ = 0;
};

core::AppMsg make_app_msg(std::uint32_t sender, std::uint64_t seq,
                          Bytes payload) {
  core::AppMsg m;
  m.id = MsgId{sender, seq};
  m.payload = std::move(payload);
  return m;
}

void consensus_wire_seeds(CorpusWriter& w) {
  using namespace consensus_wire;
  w.seed("consensus_wire", 0,
         encode_to_bytes(DecidedMsg{3, Bytes{1, 2, 3}}));
  w.seed("consensus_wire", 1, encode_to_bytes(DecidedAckMsg{8}));
  w.seed("consensus_wire", 2, encode_to_bytes(PrepareMsg{1, 42}));
  w.seed("consensus_wire", 3,
         encode_to_bytes(PromiseMsg{1, 42, 17, Bytes{9}}));
  w.seed("consensus_wire", 4, encode_to_bytes(AcceptMsg{6, 13, Bytes{1, 2}}));
  w.seed("consensus_wire", 5, encode_to_bytes(AcceptedMsg{6, 13}));
  w.seed("consensus_wire", 6, encode_to_bytes(NackMsg{4, 99}));
  w.seed("consensus_wire", 7,
         encode_to_bytes(EstimateMsg{2, 3, 1, Bytes{7, 7}}));
  w.seed("consensus_wire", 8,
         encode_to_bytes(NewEstimateMsg{2, 3, Bytes{5}}));
  w.seed("consensus_wire", 9, encode_to_bytes(RoundMsg{11, 4}));
}

void ab_wire_seeds(CorpusWriter& w) {
  core::GossipMsg g;
  g.k = 7;
  g.total = 3;
  g.unordered = {make_app_msg(0, 1, {5}), make_app_msg(1, 2, {6, 7})};
  w.seed("ab_wire", 0, encode_to_bytes(g));

  core::StateChunkMsg snap;
  snap.k = 4;
  snap.snapshot = true;
  snap.offset = 1024;
  snap.snap_total = 40;
  snap.snap_size = 4096;
  snap.data = {1, 2, 3, 4};
  w.seed("ab_wire", 1, encode_to_bytes(snap));

  core::StateChunkMsg chunk_tail;
  chunk_tail.k = 9;
  chunk_tail.offset = 5;
  chunk_tail.final_chunk = true;
  chunk_tail.msgs = {make_app_msg(1, 3, {8}), make_app_msg(0, 2, {})};
  w.seed("ab_wire", 1, encode_to_bytes(chunk_tail));

  core::DigestMsg d;
  d.k = 12;
  d.total = 6;
  d.want_reply = true;
  d.ack_snap_total = 40;
  d.ack_snap_bytes = 2048;
  d.cover = {3, 0, 9};
  d.msgs = {make_app_msg(2, 10, {1, 1})};
  w.seed("ab_wire", 2, encode_to_bytes(d));

  w.seed("ab_wire", 3, encode_to_bytes(make_app_msg(2, 17, {1, 2, 3})));
  w.seed("ab_wire", 4,
         core::encode_batch({make_app_msg(0, 1, {1}),
                             make_app_msg(1, 1, {2, 2})}));
}

void group_wire_seeds(CorpusWriter& w) {
  group::GroupEnvelopeMsg env;
  env.group = 3;
  env.inner = Wire{MsgType::kAbGossip, Bytes{1, 2, 3, 4}};
  w.seed("group_wire", 0, encode_to_bytes(env));

  w.seed("group_wire", 1,
         encode_to_bytes(group::ShardCommandMsg::plain({9, 8, 7})));
  w.seed("group_wire", 1,
         encode_to_bytes(group::ShardCommandMsg::pair(0xdeadbeefull, 1,
                                                      {1, 1}, 4, {2, 2, 2})));
}

void vector_clock_seeds(CorpusWriter& w) {
  core::VectorClock vc(3);
  vc.observe(MsgId{0, 1});
  vc.observe(MsgId{2, 5});
  w.seed("vector_clock", 0, encode_to_bytes(vc));

  core::AppCheckpoint c;
  c.state = {9, 8, 7};
  c.vc = core::VectorClock(2);
  c.vc.observe(MsgId{1, 4});
  c.count = 11;
  w.seed("vector_clock", 1, encode_to_bytes(c));

  core::AgreedLog log(2);
  log.append({make_app_msg(0, 1, {1}), make_app_msg(1, 1, {2})});
  w.seed("vector_clock", 2, encode_to_bytes(log));

  core::AgreedLog compacted(2);
  compacted.append({make_app_msg(0, 1, {1})});
  compacted.compact({42});
  compacted.append({make_app_msg(1, 1, {3, 4})});
  w.seed("vector_clock", 2, encode_to_bytes(compacted));
}

void app_checkpoint_seeds(CorpusWriter& w) {
  w.seed("app_checkpoint", 0, apps::KvCommand::put("alpha", "1"));
  w.seed("app_checkpoint", 0, apps::KvCommand::del("alpha"));
  w.seed("app_checkpoint", 0, apps::KvCommand::add("ctr", -3));
  w.seed("app_checkpoint", 1, apps::KvCommand::cas("alpha", "1", "2"));

  apps::KvStore kv;
  kv.apply(apps::KvCommand::put("k", "v"));
  kv.apply(apps::KvCommand::add("n", 7));
  w.seed("app_checkpoint", 2, kv.snapshot());

  apps::DeferredUpdateDb db;
  auto txn = db.begin();
  txn.put("x", "1");
  const Bytes cert = txn.commit_request();
  w.seed("app_checkpoint", 3, cert);
  w.seed("app_checkpoint", 4, cert);
  db.apply(cert);
  w.seed("app_checkpoint", 5, db.snapshot());

  w.seed("app_checkpoint", 6,
         encode_to_bytes(apps::QuorumConfig::uniform(3)));
}

void storage_record_seeds(CorpusWriter& w) {
  w.seed("storage_record", 0, Bytes{1, 2, 3, 4, 5});

  {  // (k, Agreed) checkpoint record
    core::AgreedLog log(2);
    log.append({make_app_msg(0, 1, {1})});
    log.compact({7});
    BufWriter body;
    body.u64(3);
    log.encode(body);
    w.seed("storage_record", 1, seal_record(body.data()));
  }
  w.seed("storage_record", 2,
         seal_record(core::encode_batch({make_app_msg(0, 1, {1}),
                                         make_app_msg(1, 2, {2})})));
  {  // Paxos acceptor record
    BufWriter body;
    body.u64(5);   // promised
    body.u64(4);   // accepted_ballot
    body.bytes(Bytes{1, 2, 3});
    w.seed("storage_record", 3, seal_record(body.data()));
  }
  {  // coordinator state record
    BufWriter body;
    body.u64(2);        // round
    body.boolean(true); // has_est
    body.u64(1);        // ts
    body.bytes(Bytes{9});
    w.seed("storage_record", 4, seal_record(body.data()));
  }
  {  // durable counter slot
    BufWriter body;
    body.u64(41);
    w.seed("storage_record", 5, seal_record(body.data()));
  }
}

void scenario_seeds(CorpusWriter& w) {
  // The adversary's own output covers the generated grammar...
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    w.text("scenario", scenario::generate_scenario(seed).serialize());
  }
  // ...plus hand-rolled lines for the corners it rarely emits.
  w.text("scenario",
         "scn1 seed=9 n=5 horizon=900ms engine=coord variant=alt "
         "gossip=digest groups=2 part(at=100ms,for=250ms,side=0|2,mode=in) "
         "flap(at=50ms,a=1,b=3,period=40ms,count=3) "
         "gray(at=100ms,for=200ms,node=4,rx=8.5) skew(node=0,scale=1.25) "
         "disk(at=10ms,for=300ms,node=2,min=100us,max=2ms,stallp=0.02,"
         "stall=20ms) burst(at=400ms,victims=1|2,down=100ms) "
         "storm(at=200ms,node=3,ops=4,phase=torn,times=2,gap=80ms) "
         "load(at=0s,for=700ms,gap=5ms,clients=8,bytes=32,keys=64,hot=0.9) "
         "win(a=4)");
  w.text("scenario", "scn1 seed=1 n=3");
}

void tracecheck_seeds(CorpusWriter& w) {
  using obs::EventKind;
  using obs::TraceEvent;
  auto line = [](TraceEvent e) { return obs::event_to_json(e); };
  TraceEvent deliver;
  deliver.kind = EventKind::kDeliver;
  deliver.node = 1;
  deliver.seq = 4;
  deliver.t = 120000;
  deliver.k = 2;
  deliver.msg = MsgId{0, 9};
  deliver.arg = 3;
  TraceEvent logw;
  logw.kind = EventKind::kLogWrite;
  logw.node = 0;
  logw.seq = 1;
  logw.t = -5;  // rt traces can carry negative clock deltas
  logw.arg = 64;
  logw.detail = "dec/3 with \"quotes\" and\nnewline";
  TraceEvent grouped;
  grouped.kind = EventKind::kCrossShard;
  grouped.node = 2;
  grouped.seq = 7;
  grouped.group = 1;
  grouped.k = 3;
  grouped.arg = 0xdead;
  grouped.detail = "hold";
  w.text("tracecheck",
         line(deliver) + "\n" + line(logw) + "\n" + line(grouped) + "\n");
  w.text("tracecheck", line(deliver));
}

}  // namespace

int write_seed_corpora(const std::string& root) {
  CorpusWriter w(root);
  consensus_wire_seeds(w);
  ab_wire_seeds(w);
  group_wire_seeds(w);
  vector_clock_seeds(w);
  app_checkpoint_seeds(w);
  storage_record_seeds(w);
  scenario_seeds(w);
  tracecheck_seeds(w);
  return w.written();
}

}  // namespace abcast::fuzz
