// Shared plumbing for the decoder fuzz harnesses (DESIGN.md §15).
//
// Every harness is one function `int fuzz_<family>(const uint8_t*, size_t)`
// that dispatches the input across a whole decoder family by selector byte,
// so a single corpus exercises every message layout the family owns. The
// contract mirrors the production exception boundary (udp_env drain_socket,
// the storage recovery paths): CodecError is the ONE accepted rejection
// path; any other exception, signal, sanitizer report, or invariant failure
// escaping the harness is a bug.
//
// The same function body serves three builds:
//   * libFuzzer executables (clang, -fsanitize=fuzzer): the macro emits
//     LLVMFuzzerTestOneInput.
//   * fallback mutation executables (any compiler, fuzz/standalone_main.cpp
//     provides main): the macro emits the C entry point the driver calls.
//   * the abcast_fuzz_targets registry library linked into gen_corpus and
//     tests/fuzz_regression_test: no entry point at all, every family
//     callable side by side (see fuzz/targets.hpp).
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "common/codec.hpp"
#include "common/types.hpp"

namespace abcast::fuzz {

[[noreturn]] inline void die(const char* family, const char* what) {
  std::fprintf(stderr, "fuzz_%s: harness invariant failed: %s\n", family,
               what);
  std::abort();
}

/// The input after the selector byte (empty when only the selector arrived).
inline Bytes tail(const std::uint8_t* data, std::size_t size) {
  return size <= 1 ? Bytes{} : Bytes(data + 1, data + size);
}

/// The family workhorse: a malformed input may only be rejected with
/// CodecError; an accepted input must re-encode to a byte-stable fixpoint
/// (decode(enc) must succeed and re-encode to the same bytes — the fuzzing
/// analogue of wire_roundtrip_test's expect_roundtrip).
template <typename T>
void decode_then_reencode(const char* family, const Bytes& in) {
  T msg;
  try {
    msg = decode_from_bytes<T>(in);
  } catch (const CodecError&) {
    return;  // rejection is the contract, not a finding
  }
  const Bytes enc = encode_to_bytes(msg);
  const T again = decode_from_bytes<T>(enc);  // throwing here IS a finding
  if (encode_to_bytes(again) != enc) {
    die(family, "re-encode of a decoded message is not byte-stable");
  }
}

}  // namespace abcast::fuzz

// ABCAST_FUZZ_REQUIRE: harness-level assertion that survives NDEBUG.
#define ABCAST_FUZZ_REQUIRE(family, cond)                  \
  do {                                                     \
    if (!(cond)) ::abcast::fuzz::die((family), #cond);     \
  } while (false)

// The per-build entry-point emitter (see the header comment).
#if defined(ABCAST_FUZZ_LIBFUZZER)
#define ABCAST_FUZZ_TARGET(fn)                                               \
  extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,            \
                                        std::size_t size) {                  \
    return ::abcast::fuzz::fn(data, size);                                   \
  }
#elif defined(ABCAST_FUZZ_ENTRY)
#define ABCAST_FUZZ_TARGET(fn)                                               \
  extern "C" int abcast_fuzz_entry(const std::uint8_t* data,                 \
                                   std::size_t size) {                       \
    return ::abcast::fuzz::fn(data, size);                                   \
  }
#else
#define ABCAST_FUZZ_TARGET(fn)
#endif
