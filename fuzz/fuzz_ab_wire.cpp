// Fuzz family: the Atomic Broadcast layer's datagram payloads — full-set
// gossip and chunked state transfer (src/core/ab_wire.hpp), digest gossip
// (src/core/gossip_wire.hpp), the AppMsg element layout they all embed, and
// the batch encoding consensus values carry (src/core/app_msg.hpp).
#include "core/ab_wire.hpp"
#include "core/app_msg.hpp"
#include "core/gossip_wire.hpp"
#include "fuzz/fuzz_util.hpp"

namespace abcast::fuzz {

namespace {

// decode_batch is a free-function codec (the value inside every consensus
// proposal/decision); give it the same reject-or-fixpoint treatment.
void batch_roundtrip(const Bytes& in) {
  std::vector<core::AppMsg> batch;
  try {
    batch = core::decode_batch(in);
  } catch (const CodecError&) {
    return;
  }
  const Bytes enc = core::encode_batch(batch);
  const auto again = core::decode_batch(enc);
  ABCAST_FUZZ_REQUIRE("ab_wire", core::encode_batch(again) == enc);
}

}  // namespace

int fuzz_ab_wire(const std::uint8_t* data, std::size_t size) {
  if (size == 0) return 0;
  const Bytes payload = tail(data, size);
  switch (data[0] % 5) {
    // ablint:fuzz GossipMsg
    case 0: decode_then_reencode<core::GossipMsg>("ab_wire", payload); break;
    // ablint:fuzz StateChunkMsg
    case 1:
      decode_then_reencode<core::StateChunkMsg>("ab_wire", payload);
      break;
    // ablint:fuzz DigestMsg
    case 2: decode_then_reencode<core::DigestMsg>("ab_wire", payload); break;
    // ablint:fuzz AppMsg
    case 3: decode_then_reencode<core::AppMsg>("ab_wire", payload); break;
    default: batch_roundtrip(payload); break;
  }
  return 0;
}

}  // namespace abcast::fuzz

ABCAST_FUZZ_TARGET(fuzz_ab_wire)
