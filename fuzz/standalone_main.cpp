// Fallback fuzzing driver: main() for harness executables built WITHOUT
// libFuzzer (plain gcc/g++ plus asan+ubsan). Links against one family's
// abcast_fuzz_entry (emitted by ABCAST_FUZZ_TARGET under ABCAST_FUZZ_ENTRY).
//
// Two modes:
//   fuzz_<family> FILE...              replay inputs (regression / triage)
//   fuzz_<family> --corpus DIR [opts]  seed-corpus mutation fuzzing
//
// The mutation loop is corpus-driven but coverage-blind: it draws a seed,
// applies a burst of structure-agnostic mutations (bit flips, interesting
// values, truncate/extend, block splice), and feeds the result to the
// harness. Before every execution the input is written to
// <artifacts>/cur_input, so a sanitizer abort (which never unwinds) leaves
// the crasher on disk; an escaping C++ exception is caught here, saved as
// <artifacts>/crash-<fnv1a>, and exits nonzero. run_fuzz.sh prefers real
// libFuzzer when clang is available and falls back to this driver so the
// asan+ubsan budget always runs somewhere.
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <chrono>
#include <exception>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

extern "C" int abcast_fuzz_entry(const std::uint8_t* data, std::size_t size);

namespace {

namespace fs = std::filesystem;
using Input = std::vector<std::uint8_t>;

Input read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  return Input(std::istreambuf_iterator<char>(in),
               std::istreambuf_iterator<char>());
}

void write_file(const fs::path& p, const Input& data) {
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
}

std::uint64_t fnv1a(const Input& data) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const std::uint8_t b : data) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  return h;
}

struct Options {
  std::string corpus;
  std::string artifacts = ".";
  std::uint64_t iters = 0;   // 0 = run until the time budget expires
  double seconds = 10.0;
  std::uint64_t seed = 1;
  std::size_t max_len = 1 << 16;
  std::vector<std::string> replay;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s FILE...                         replay inputs\n"
               "       %s --corpus DIR [--seconds S] [--iters N]\n"
               "          [--seed X] [--max-len N] [--artifacts DIR]\n",
               argv0, argv0);
  return 2;
}

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--corpus") {
      const char* v = value();
      if (!v) return false;
      opt.corpus = v;
    } else if (arg == "--artifacts") {
      const char* v = value();
      if (!v) return false;
      opt.artifacts = v;
    } else if (arg == "--iters") {
      const char* v = value();
      if (!v) return false;
      opt.iters = std::strtoull(v, nullptr, 10);
    } else if (arg == "--seconds") {
      const char* v = value();
      if (!v) return false;
      opt.seconds = std::strtod(v, nullptr);
    } else if (arg == "--seed") {
      const char* v = value();
      if (!v) return false;
      opt.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--max-len") {
      const char* v = value();
      if (!v) return false;
      opt.max_len = std::strtoull(v, nullptr, 10);
    } else if (!arg.empty() && arg[0] == '-') {
      return false;
    } else {
      opt.replay.push_back(arg);
    }
  }
  return !opt.replay.empty() || !opt.corpus.empty();
}

class Mutator {
 public:
  Mutator(std::uint64_t seed, std::size_t max_len)
      : rng_(seed), max_len_(max_len) {}

  Input mutate(const Input& base, const std::vector<Input>& pool) {
    Input out = base;
    const int burst = 1 + static_cast<int>(rng_() % 8);
    for (int i = 0; i < burst; ++i) apply_one(out, pool);
    if (out.size() > max_len_) out.resize(max_len_);
    return out;
  }

 private:
  std::size_t pick_pos(const Input& v) {
    return v.empty() ? 0 : static_cast<std::size_t>(rng_() % v.size());
  }

  void apply_one(Input& v, const std::vector<Input>& pool) {
    switch (rng_() % 8) {
      case 0:  // bit flip
        if (!v.empty()) v[pick_pos(v)] ^= static_cast<std::uint8_t>(
            1u << (rng_() % 8));
        break;
      case 1:  // random byte
        if (!v.empty()) v[pick_pos(v)] = static_cast<std::uint8_t>(rng_());
        break;
      case 2: {  // interesting little-endian value over 1/2/4 bytes
        static constexpr std::uint32_t kInteresting[] = {
            0, 1, 0x7F, 0x80, 0xFF, 0x100, 0x7FFF, 0x8000, 0xFFFF,
            0x10000, 0x7FFFFFFF, 0x80000000u, 0xFFFFFFFFu};
        const std::uint32_t val =
            kInteresting[rng_() % (sizeof(kInteresting) /
                                   sizeof(kInteresting[0]))];
        const std::size_t width = std::size_t{1} << (rng_() % 3);  // 1,2,4
        if (v.size() < width) break;
        const std::size_t at =
            static_cast<std::size_t>(rng_() % (v.size() - width + 1));
        for (std::size_t b = 0; b < width; ++b) {
          v[at + b] = static_cast<std::uint8_t>(val >> (8 * b));
        }
        break;
      }
      case 3:  // truncate
        if (!v.empty()) v.resize(pick_pos(v));
        break;
      case 4: {  // insert a small random run
        const std::size_t n = 1 + rng_() % 8;
        const std::size_t at = v.empty() ? 0 : pick_pos(v);
        Input run(n);
        for (auto& b : run) b = static_cast<std::uint8_t>(rng_());
        v.insert(v.begin() + static_cast<std::ptrdiff_t>(at), run.begin(),
                 run.end());
        break;
      }
      case 5: {  // erase a small run
        if (v.empty()) break;
        const std::size_t at = pick_pos(v);
        const std::size_t n =
            std::min<std::size_t>(1 + rng_() % 8, v.size() - at);
        v.erase(v.begin() + static_cast<std::ptrdiff_t>(at),
                v.begin() + static_cast<std::ptrdiff_t>(at + n));
        break;
      }
      case 6: {  // duplicate a block in place
        if (v.empty()) break;
        const std::size_t at = pick_pos(v);
        const std::size_t n =
            std::min<std::size_t>(1 + rng_() % 16, v.size() - at);
        Input block(v.begin() + static_cast<std::ptrdiff_t>(at),
                    v.begin() + static_cast<std::ptrdiff_t>(at + n));
        v.insert(v.begin() + static_cast<std::ptrdiff_t>(at), block.begin(),
                 block.end());
        break;
      }
      default: {  // splice with another pool member
        if (pool.empty()) break;
        const Input& other = pool[rng_() % pool.size()];
        if (other.empty()) break;
        const std::size_t cut_a = v.empty() ? 0 : pick_pos(v);
        const std::size_t cut_b = pick_pos(other);
        v.resize(cut_a);
        v.insert(v.end(), other.begin() + static_cast<std::ptrdiff_t>(cut_b),
                 other.end());
        break;
      }
    }
  }

  std::mt19937_64 rng_;
  std::size_t max_len_;
};

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) return usage(argv[0]);

  if (!opt.replay.empty()) {
    for (const auto& file : opt.replay) {
      const Input in = read_file(file);
      abcast_fuzz_entry(in.data(), in.size());  // a crash aborts right here
      std::fprintf(stderr, "ok  %s (%zu bytes)\n", file.c_str(), in.size());
    }
    return 0;
  }

  std::vector<Input> pool;
  for (const auto& entry : fs::directory_iterator(opt.corpus)) {
    if (entry.is_regular_file()) pool.push_back(read_file(entry.path()));
  }
  if (pool.empty()) pool.push_back(Input{});
  fs::create_directories(opt.artifacts);
  const fs::path cur_input = fs::path(opt.artifacts) / "cur_input";

  Mutator mut(opt.seed, opt.max_len);
  std::mt19937_64 rng(opt.seed ^ 0x9e3779b97f4a7c15ull);
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(opt.seconds));

  std::uint64_t execs = 0;
  while ((opt.iters == 0 || execs < opt.iters) &&
         (opt.iters != 0 || std::chrono::steady_clock::now() < deadline)) {
    const Input& base = pool[rng() % pool.size()];
    const Input in = mut.mutate(base, pool);
    write_file(cur_input, in);  // survives a non-unwinding sanitizer abort
    try {
      abcast_fuzz_entry(in.data(), in.size());
    } catch (const std::exception& e) {
      char name[64];
      std::snprintf(name, sizeof(name), "crash-%016" PRIx64, fnv1a(in));
      const fs::path crash = fs::path(opt.artifacts) / name;
      write_file(crash, in);
      std::fprintf(stderr,
                   "CRASH: escaping exception: %s\n  input: %zu bytes -> %s\n",
                   e.what(), in.size(), crash.string().c_str());
      return 1;
    }
    ++execs;
    // Occasionally adopt the mutant so the pool random-walks outward even
    // without coverage feedback.
    if (rng() % 64 == 0 && pool.size() < 4096) pool.push_back(in);
  }

  std::error_code ec;
  fs::remove(cur_input, ec);
  std::fprintf(stderr, "done: %" PRIu64 " execs, %zu pool inputs, clean\n",
               execs, pool.size());
  return 0;
}
