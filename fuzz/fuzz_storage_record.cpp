// Fuzz family: stable-storage records as a recovering process reads them —
// raw backend bytes through unseal_record, then the layout each recovery
// path decodes (src/storage/sealed_record.hpp and its call sites). Fault
// injection (PR 1) tears and bit-rots these records on purpose; recovery
// must treat every damaged record as "the log operation never completed",
// never crash on it.
//
// The engine-internal record layouts (Paxos acceptor, coordinator state,
// the (k, Agreed) checkpoint, the durable counter slot) are private to
// their modules, so this harness mirrors them field-for-field. If one of
// them changes shape, update the matching case here AND the seed generator
// in fuzz/corpus_gen.cpp.
#include "core/agreed_log.hpp"
#include "core/app_msg.hpp"
#include "fuzz/fuzz_util.hpp"
#include "storage/sealed_record.hpp"

namespace abcast::fuzz {

namespace {

void seal_property(const Bytes& body) {
  // Sealing then unsealing any payload is the identity; unsealing arbitrary
  // bytes either fails or yields the CRC-consistent body.
  const Bytes sealed = seal_record(body);
  const auto back = unseal_record(sealed);
  ABCAST_FUZZ_REQUIRE("storage_record", back.has_value());
  ABCAST_FUZZ_REQUIRE("storage_record", *back == body);
}

template <typename Fn>
void unseal_then(const Bytes& raw, Fn&& decode_body) {
  const auto body = unseal_record(raw);
  if (!body) return;  // damaged: recovery discards it, nothing to decode
  try {
    decode_body(*body);
  } catch (const CodecError&) {
    // A seal-valid record that does not decode is a torn write caught
    // mid-layout; every recovery call site catches exactly this.
  }
}

}  // namespace

int fuzz_storage_record(const std::uint8_t* data, std::size_t size) {
  if (size == 0) return 0;
  const Bytes payload = tail(data, size);
  switch (data[0] % 6) {
    case 0: seal_property(payload); break;
    case 1:
      // (k, Agreed) checkpoint record (atomic_broadcast.cpp recovery).
      unseal_then(payload, [](const Bytes& body) {
        BufReader r(body);
        (void)r.u64();
        (void)core::AgreedLog::decode(r);
        r.expect_done();
      });
      break;
    case 2:
      // Unordered-set record: one batch (kUnorderedKey) — and the
      // incremental per-message records share AppMsg's layout.
      unseal_then(payload, [](const Bytes& body) {
        (void)core::decode_batch(body);
      });
      break;
    case 3:
      // Paxos acceptor record (paxos_engine.cpp persist_acceptor).
      unseal_then(payload, [](const Bytes& body) {
        BufReader r(body);
        (void)r.u64();    // promised
        (void)r.u64();    // accepted_ballot
        (void)r.bytes();  // accepted_value
        r.expect_done();
      });
      break;
    case 4:
      // Coordinator state record (coord_engine.cpp persist).
      unseal_then(payload, [](const Bytes& body) {
        BufReader r(body);
        (void)r.u64();      // round
        (void)r.boolean();  // has_est
        (void)r.u64();      // ts
        (void)r.bytes();    // est
        r.expect_done();
      });
      break;
    default:
      // Durable counter slot (storage/durable_counter.hpp): a sealed u64.
      unseal_then(payload, [](const Bytes& body) {
        BufReader r(body);
        (void)r.u64();
        r.expect_done();
      });
      break;
  }
  return 0;
}

}  // namespace abcast::fuzz

ABCAST_FUZZ_TARGET(fuzz_storage_record)
