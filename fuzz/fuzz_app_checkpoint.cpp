// Fuzz family: application-layer codecs — the KV command and snapshot, the
// deferred-update certification request and snapshot, and the quorum voting
// configuration (src/apps/). Commands and configs arrive through Atomic
// Broadcast delivery, snapshots through checkpoint installation; both paths
// carry peer-supplied bytes, and the state machines promise deterministic
// rejection (never a crash) so replicas stay identical.
//
// These codecs are not wire-tag payloads, so they carry no ablint:fuzz
// markers — rule 6 maps markers 1:1 onto ablint:roundtrip registrations.
#include "apps/deferred_update.hpp"
#include "apps/kv_store.hpp"
#include "apps/quorum.hpp"
#include "fuzz/fuzz_util.hpp"

namespace abcast::fuzz {

namespace {

// StateMachine::restore takes raw snapshot bytes; acceptance means a
// re-snapshot must be a fixpoint (restore(snapshot()) is lossless).
template <typename Sm>
void restore_roundtrip(const char* what, const Bytes& in) {
  Sm sm;
  try {
    sm.restore(in);
  } catch (const CodecError&) {
    return;
  }
  const Bytes snap = sm.snapshot();
  Sm again;
  again.restore(snap);
  if (again.snapshot() != snap) die("app_checkpoint", what);
}

// apply() must NEVER throw: delivery is below the CodecError boundary on
// some paths (RSM replay), and the deterministic-rejection contract says a
// malformed command increments a counter instead.
template <typename Sm>
void apply_never_throws(const Bytes& in) {
  Sm sm;
  try {
    sm.apply(in);
  } catch (...) {
    die("app_checkpoint", "apply() threw on a delivered command");
  }
}

}  // namespace

int fuzz_app_checkpoint(const std::uint8_t* data, std::size_t size) {
  if (size == 0) return 0;
  const Bytes payload = tail(data, size);
  switch (data[0] % 7) {
    case 0:
      decode_then_reencode<apps::KvCommand>("app_checkpoint", payload);
      break;
    case 1: apply_never_throws<apps::KvStore>(payload); break;
    case 2:
      restore_roundtrip<apps::KvStore>("KvStore snapshot not a fixpoint",
                                       payload);
      break;
    case 3:
      decode_then_reencode<apps::CertRequest>("app_checkpoint", payload);
      break;
    case 4: apply_never_throws<apps::DeferredUpdateDb>(payload); break;
    case 5:
      restore_roundtrip<apps::DeferredUpdateDb>(
          "DeferredUpdateDb snapshot not a fixpoint", payload);
      break;
    default:
      decode_then_reencode<apps::QuorumConfig>("app_checkpoint", payload);
      break;
  }
  return 0;
}

}  // namespace abcast::fuzz

ABCAST_FUZZ_TARGET(fuzz_app_checkpoint)
