// Fuzz family: the multi-group layer's envelope and the sharded-KV command
// riding inside ordered streams (src/group/group_wire.hpp). The envelope is
// the one tag the demux unwraps straight off the UDP socket, so its decoder
// faces raw datagrams.
#include "group/group_wire.hpp"

#include "fuzz/fuzz_util.hpp"

namespace abcast::fuzz {

int fuzz_group_wire(const std::uint8_t* data, std::size_t size) {
  if (size == 0) return 0;
  const Bytes payload = tail(data, size);
  switch (data[0] % 2) {
    // ablint:fuzz GroupEnvelopeMsg
    case 0:
      decode_then_reencode<group::GroupEnvelopeMsg>("group_wire", payload);
      break;
    // ablint:fuzz ShardCommandMsg
    default:
      decode_then_reencode<group::ShardCommandMsg>("group_wire", payload);
      break;
  }
  return 0;
}

}  // namespace abcast::fuzz

ABCAST_FUZZ_TARGET(fuzz_group_wire)
