// Seed-corpus generation from the registered round-trip encoders
// (DESIGN.md §15). Every message with an `ablint:roundtrip` registration is
// serialized through its own encode() into fuzz/corpus-style seed files, so
// the fuzzers start from structurally valid inputs instead of random bytes.
// Shared by the gen_corpus tool (scripts/run_fuzz.sh) and
// tests/fuzz_regression_test.cpp (which replays the seeds under ctest).
#pragma once

#include <string>

namespace abcast::fuzz {

/// Writes one subdirectory per fuzz family under `root` (created if
/// needed), each holding selector-prefixed seed inputs for every message
/// the family dispatches. Returns the number of seed files written.
int write_seed_corpora(const std::string& root);

}  // namespace abcast::fuzz
