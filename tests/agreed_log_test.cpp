// Unit tests for the Agreed queue representation: vector clock semantics,
// deterministic batch ordering, duplicate suppression, compaction,
// serialization — the machinery behind total order and §5.2 checkpoints.
#include <gtest/gtest.h>

#include "core/agreed_log.hpp"
#include "core/app_msg.hpp"
#include "core/vector_clock.hpp"

using namespace abcast;
using namespace abcast::core;

namespace {

AppMsg msg(ProcessId sender, std::uint64_t seq, std::string body = "") {
  AppMsg m;
  m.id = MsgId{sender, seq};
  m.payload = Bytes(body.begin(), body.end());
  return m;
}

std::vector<MsgId> ids_of(const std::vector<AppMsg>& msgs) {
  std::vector<MsgId> out;
  for (const auto& m : msgs) out.push_back(m.id);
  return out;
}

}  // namespace

// ------------------------------------------------------------ VectorClock

TEST(VectorClock, CoversAfterObserve) {
  VectorClock vc(3);
  EXPECT_FALSE(vc.covers(MsgId{1, 1}));
  vc.observe(MsgId{1, 5});
  EXPECT_TRUE(vc.covers(MsgId{1, 5}));
  EXPECT_TRUE(vc.covers(MsgId{1, 3}));  // earlier seqs are contained
  EXPECT_FALSE(vc.covers(MsgId{1, 6}));
  EXPECT_FALSE(vc.covers(MsgId{0, 1}));
}

TEST(VectorClock, ObserveMustAdvance) {
  VectorClock vc(2);
  vc.observe(MsgId{0, 4});
  EXPECT_THROW(vc.observe(MsgId{0, 4}), InvariantViolation);
  EXPECT_THROW(vc.observe(MsgId{0, 2}), InvariantViolation);
}

TEST(VectorClock, EncodeDecodeRoundTrip) {
  VectorClock vc(4);
  vc.observe(MsgId{0, 10});
  vc.observe(MsgId{3, 7});
  BufWriter w;
  vc.encode(w);
  BufReader r(w.data());
  const VectorClock back = VectorClock::decode(r);
  EXPECT_EQ(back, vc);
  EXPECT_EQ(back.last_of(0), 10u);
  EXPECT_EQ(back.last_of(3), 7u);
}

// -------------------------------------------------------------- AgreedLog

TEST(AgreedLog, AppendsBatchInDeterministicOrder) {
  AgreedLog log(3);
  // Deliberately unsorted batch: the deterministic rule is MsgId order.
  auto delivered = log.append({msg(2, 1), msg(0, 1), msg(1, 1)});
  EXPECT_EQ(ids_of(delivered),
            (std::vector<MsgId>{{0, 1}, {1, 1}, {2, 1}}));
  EXPECT_EQ(log.total(), 3u);
}

TEST(AgreedLog, SkipsMessagesAlreadyContained) {
  AgreedLog log(2);
  log.append({msg(0, 1)});
  auto delivered = log.append({msg(0, 1), msg(0, 2)});  // 0,1 decided twice
  EXPECT_EQ(ids_of(delivered), (std::vector<MsgId>{{0, 2}}));
  EXPECT_EQ(log.skipped_duplicates(), 1u);
  EXPECT_EQ(log.total(), 2u);
}

TEST(AgreedLog, SkipsStaleLowerSeqAfterHigherSeqDelivered) {
  // If (p,2) was agreed before (p,1) ever got in, (p,1) is dropped — and
  // every process drops it identically, keeping the order total.
  AgreedLog log(2);
  log.append({msg(0, 2)});
  auto delivered = log.append({msg(0, 1)});
  EXPECT_TRUE(delivered.empty());
  EXPECT_TRUE(log.contains(MsgId{0, 1}));  // logically contained
}

// The REVIEW regression, at the queue level: a recovered sender's
// new-incarnation root gets ordered BEFORE its previous incarnation's
// durably logged messages (a lost delta plus an optimistic peer view is
// enough). Those messages must still deliver when a later batch carries
// them — supersession is per-incarnation, never across.
TEST(AgreedLog, NewIncarnationRootDoesNotSupersedePriorIncarnation) {
  AgreedLog log(2);
  auto first = log.append({msg(0, make_seq(2, 1))});  // root ordered first
  EXPECT_EQ(first.size(), 1u);
  EXPECT_FALSE(log.contains(MsgId{0, make_seq(1, 4)}));

  auto recovered =
      log.append({msg(0, make_seq(1, 5)), msg(0, make_seq(1, 4))});
  EXPECT_EQ(ids_of(recovered),
            (std::vector<MsgId>{{0, make_seq(1, 4)}, {0, make_seq(1, 5)}}));
  EXPECT_EQ(log.skipped_duplicates(), 0u);
  EXPECT_EQ(log.total(), 3u);
  EXPECT_TRUE(log.contains(MsgId{0, make_seq(1, 5)}));
  EXPECT_TRUE(log.contains(MsgId{0, make_seq(2, 1)}));

  // Within one incarnation the stale-drop rule is unchanged.
  EXPECT_TRUE(log.append({msg(0, make_seq(1, 3))}).empty());
  EXPECT_EQ(log.skipped_duplicates(), 1u);
}

TEST(AgreedLog, ContainsMatchesVc) {
  AgreedLog log(2);
  log.append({msg(1, 3)});
  EXPECT_TRUE(log.contains(MsgId{1, 3}));
  EXPECT_TRUE(log.contains(MsgId{1, 2}));
  EXPECT_FALSE(log.contains(MsgId{1, 4}));
  EXPECT_FALSE(log.contains(MsgId{0, 1}));
}

TEST(AgreedLog, CompactFoldsSuffixIntoCheckpoint) {
  AgreedLog log(2);
  log.append({msg(0, 1), msg(1, 1)});
  log.compact(Bytes{42});
  EXPECT_TRUE(log.suffix().empty());
  ASSERT_TRUE(log.base().has_value());
  EXPECT_EQ(log.base()->state, Bytes{42});
  EXPECT_EQ(log.base()->count, 2u);
  EXPECT_EQ(log.total(), 2u);
  // Containment is preserved through compaction.
  EXPECT_TRUE(log.contains(MsgId{0, 1}));

  auto delivered = log.append({msg(0, 2)});
  EXPECT_EQ(delivered.size(), 1u);
  EXPECT_EQ(log.total(), 3u);
  EXPECT_EQ(log.suffix().size(), 1u);
}

TEST(AgreedLog, ResetToBaseAdoptsPeerCheckpointWholesale) {
  // A chunked state transfer installs a peer's application checkpoint by
  // wholesale-replacing the local prefix (total order guarantees ours is a
  // prefix of the peer's), dropping any explicit suffix.
  AgreedLog log(2);
  log.append({msg(0, 1), msg(1, 1)});

  AppCheckpoint peer;
  peer.state = Bytes{9};
  peer.vc = VectorClock(2);
  peer.vc.observe(MsgId{0, 1});
  peer.vc.observe(MsgId{0, 2});
  peer.vc.observe(MsgId{1, 1});
  peer.vc.observe(MsgId{1, 2});
  peer.count = 4;
  log.reset_to_base(peer);

  EXPECT_EQ(log.total(), 4u);
  EXPECT_EQ(log.base_count(), 4u);
  EXPECT_TRUE(log.suffix().empty());
  ASSERT_TRUE(log.base().has_value());
  EXPECT_EQ(log.base()->state, Bytes{9});
  EXPECT_TRUE(log.contains(MsgId{0, 2}));
  EXPECT_TRUE(log.contains(MsgId{1, 2}));
  EXPECT_FALSE(log.contains(MsgId{0, 3}));

  // The adopted clock filters duplicates and admits only the true tail.
  auto delivered = log.append({msg(0, 2), msg(0, 3)});
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].id, (MsgId{0, 3}));
  EXPECT_EQ(log.total(), 5u);
}

TEST(AgreedLog, RepeatedCompaction) {
  AgreedLog log(1);
  log.append({msg(0, 1)});
  log.compact(Bytes{1});
  log.append({msg(0, 2)});
  log.compact(Bytes{2});
  EXPECT_EQ(log.base()->state, Bytes{2});
  EXPECT_EQ(log.base()->count, 2u);
  EXPECT_TRUE(log.suffix().empty());
}

TEST(AgreedLog, EncodeDecodeWithoutBase) {
  AgreedLog log(3);
  log.append({msg(0, 1, "a"), msg(2, 1, "b")});
  BufWriter w;
  log.encode(w);
  BufReader r(w.data());
  AgreedLog back = AgreedLog::decode(r);
  r.expect_done();
  EXPECT_FALSE(back.base().has_value());
  EXPECT_EQ(back.total(), 2u);
  EXPECT_EQ(ids_of(back.suffix()), ids_of(log.suffix()));
  EXPECT_EQ(back.vc(), log.vc());
  EXPECT_EQ(back.suffix()[0].payload, Bytes{'a'});
}

TEST(AgreedLog, EncodeDecodeWithBaseAndSuffix) {
  AgreedLog log(2);
  log.append({msg(0, 1)});
  log.compact(Bytes{7, 8});
  log.append({msg(1, 1, "tail")});
  BufWriter w;
  log.encode(w);
  BufReader r(w.data());
  AgreedLog back = AgreedLog::decode(r);
  ASSERT_TRUE(back.base().has_value());
  EXPECT_EQ(back.base()->state, (Bytes{7, 8}));
  EXPECT_EQ(back.base()->count, 1u);
  EXPECT_EQ(back.suffix().size(), 1u);
  EXPECT_EQ(back.total(), 2u);
  EXPECT_TRUE(back.contains(MsgId{0, 1}));
  EXPECT_TRUE(back.contains(MsgId{1, 1}));
}

TEST(AgreedLog, DecodedLogContinuesCorrectly) {
  AgreedLog log(2);
  log.append({msg(0, 1)});
  BufWriter w;
  log.encode(w);
  BufReader r(w.data());
  AgreedLog back = AgreedLog::decode(r);
  // Appending the same message again is suppressed in the decoded copy.
  EXPECT_TRUE(back.append({msg(0, 1)}).empty());
  EXPECT_EQ(back.append({msg(1, 1)}).size(), 1u);
}

// ---------------------------------------------------------------- AppMsg

TEST(AppMsg, BatchRoundTrip) {
  std::vector<AppMsg> batch{msg(0, 1, "x"), msg(1, 9, "yy")};
  const Bytes b = encode_batch(batch);
  const auto back = decode_batch(b);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].id, (MsgId{0, 1}));
  EXPECT_EQ(back[1].payload, (Bytes{'y', 'y'}));
}

TEST(AppMsg, EmptyBatchRoundTrip) {
  EXPECT_TRUE(decode_batch(encode_batch({})).empty());
}

TEST(AppMsg, MakeSeqEmbedsIncarnation) {
  const auto s1 = make_seq(1, 1);
  const auto s2 = make_seq(1, 2);
  const auto s3 = make_seq(2, 1);
  EXPECT_LT(s1, s2);
  EXPECT_LT(s2, s3);  // later incarnations sort after earlier ones
}

TEST(AppMsg, SortDeterministicOrdersByMsgId) {
  std::vector<AppMsg> batch{msg(1, 2), msg(1, 1), msg(0, 9)};
  sort_deterministic(batch);
  EXPECT_EQ(ids_of(batch), (std::vector<MsgId>{{0, 9}, {1, 1}, {1, 2}}));
}
