// Tests for total-order multicast to distinct groups (paper §6.4).
//
// Specification checked here: (a) per group, multicast deliveries are
// totally ordered (member sequences are prefixes of each other);
// (b) across groups, any two multicasts that share a destination are
// delivered in the same relative order at every destination; (c) liveness
// through initiator crashes, member crashes, loss and partitions.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "multicast/multicast.hpp"
#include "sim/simulation.hpp"

using namespace abcast;
using namespace abcast::multicast;

namespace {

struct McCluster {
  McCluster(sim::SimConfig sim_cfg, GroupTopology topo,
            MulticastConfig mc_cfg = {})
      : sim(sim_cfg), topology(std::move(topo)), delivered(sim_cfg.n) {
    sim.set_node_factory([this, mc_cfg](Env& env) {
      const ProcessId pid = env.self();
      // A fresh incarnation replays its delivery sequence from scratch.
      delivered[pid].clear();
      return std::make_unique<MulticastNode>(
          env, topology, mc_cfg, [this, pid](const McDelivery& d) {
            delivered[pid].push_back(d.id);
          });
    });
    sim.start_all();
  }

  MulticastNode* node(ProcessId p) {
    return static_cast<MulticastNode*>(sim.node(p));
  }

  McId mcast(ProcessId from, std::vector<std::uint32_t> dests,
             Bytes payload = {}) {
    return node(from)->mcast(std::move(payload), std::move(dests));
  }

  /// True once `id` appears in the delivered sequence of every member of
  /// every group in `groups`.
  bool delivered_at_groups(const McId& id,
                           const std::vector<std::uint32_t>& groups) {
    for (const auto g : groups) {
      for (const ProcessId p : topology.groups[g]) {
        if (!sim.host(p).is_up()) return false;
        const auto& seq = delivered[p];
        if (std::find(seq.begin(), seq.end(), id) == seq.end()) return false;
      }
    }
    return true;
  }

  bool await(const std::vector<std::pair<McId, std::vector<std::uint32_t>>>&
                 expectations,
             Duration timeout = seconds(120)) {
    return sim.run_until_pred(
        [&] {
          for (const auto& [id, groups] : expectations) {
            if (!delivered_at_groups(id, groups)) return false;
          }
          return true;
        },
        sim.now() + timeout);
  }

  /// (a) per-group prefix consistency; (b) pairwise cross-group order.
  void check_order() {
    for (const auto& group : topology.groups) {
      for (std::size_t i = 0; i + 1 < group.size(); ++i) {
        const auto& a = delivered[group[i]];
        const auto& b = delivered[group[i + 1]];
        const std::size_t common = std::min(a.size(), b.size());
        for (std::size_t k = 0; k < common; ++k) {
          ASSERT_EQ(a[k], b[k])
              << "group order diverged between p" << group[i] << " and p"
              << group[i + 1] << " at position " << k;
        }
      }
    }
    // Pairwise order on shared messages, across ALL processes.
    for (ProcessId p = 0; p < sim.n(); ++p) {
      for (ProcessId q = static_cast<ProcessId>(p + 1); q < sim.n(); ++q) {
        std::map<McId, std::size_t> pos;
        for (std::size_t i = 0; i < delivered[p].size(); ++i) {
          pos[delivered[p][i]] = i;
        }
        std::size_t last = 0;
        bool first = true;
        for (const auto& id : delivered[q]) {
          auto it = pos.find(id);
          if (it == pos.end()) continue;
          if (!first) {
            ASSERT_GT(it->second, last)
                << "cross-group order violated between p" << p << " and p"
                << q << " on " << to_string(id);
          }
          last = it->second;
          first = false;
        }
      }
    }
  }

  sim::Simulation sim;
  GroupTopology topology;
  std::vector<std::vector<McId>> delivered;
};

GroupTopology two_groups() { return GroupTopology{{{0, 1, 2}, {3, 4, 5}}}; }
GroupTopology three_groups() {
  return GroupTopology{{{0, 1, 2}, {3, 4, 5}, {6, 7, 8}}};
}

}  // namespace

TEST(GroupTopology, GroupOfAndValidation) {
  const auto topo = two_groups();
  EXPECT_EQ(topo.group_of(0), 0u);
  EXPECT_EQ(topo.group_of(5), 1u);
  topo.validate(6);
  GroupTopology overlapping{{{0, 1}, {1, 2}}};
  EXPECT_THROW(overlapping.validate(3), InvariantViolation);
}

TEST(Multicast, SingleGroupFastPath) {
  McCluster c({.n = 6, .seed = 1}, two_groups());
  const McId id = c.mcast(0, {0});
  ASSERT_TRUE(c.await({{id, {0}}}));
  // The other group never hears about it.
  c.sim.run_for(millis(500));
  EXPECT_TRUE(c.delivered[3].empty());
  c.check_order();
}

TEST(Multicast, TwoGroupMessageReachesBothGroups) {
  McCluster c({.n = 6, .seed = 2}, two_groups());
  const McId id = c.mcast(1, {0, 1}, Bytes{'x'});
  ASSERT_TRUE(c.await({{id, {0, 1}}}));
  c.check_order();
  // All six processes delivered exactly this one message.
  for (ProcessId p = 0; p < 6; ++p) {
    EXPECT_EQ(c.delivered[p], std::vector<McId>{id});
  }
}

TEST(Multicast, SharedMessagesKeepOneRelativeOrderEverywhere) {
  McCluster c({.n = 6, .seed = 3}, two_groups());
  std::vector<std::pair<McId, std::vector<std::uint32_t>>> expect;
  for (int i = 0; i < 12; ++i) {
    // Alternate initiators across both groups; all to both groups.
    const ProcessId from = static_cast<ProcessId>(i % 6);
    expect.push_back({c.mcast(from, {0, 1}), {0, 1}});
    c.sim.run_for(millis(25));
  }
  ASSERT_TRUE(c.await(expect));
  c.check_order();
  // Both groups delivered the full set (12 messages each process).
  for (ProcessId p = 0; p < 6; ++p) {
    EXPECT_EQ(c.delivered[p].size(), 12u);
  }
}

TEST(Multicast, MixedSingleAndMultiGroupTraffic) {
  McCluster c({.n = 6, .seed = 4}, two_groups());
  std::vector<std::pair<McId, std::vector<std::uint32_t>>> expect;
  for (int i = 0; i < 8; ++i) {
    expect.push_back({c.mcast(0, {0}), {0}});          // group-0 local
    expect.push_back({c.mcast(3, {1}), {1}});          // group-1 local
    expect.push_back({c.mcast(static_cast<ProcessId>(i % 6), {0, 1}),
                      {0, 1}});                        // shared
    c.sim.run_for(millis(30));
  }
  ASSERT_TRUE(c.await(expect));
  c.check_order();
}

TEST(Multicast, ThreeGroupsWithOverlappingDestinations) {
  McCluster c({.n = 9, .seed = 5}, three_groups());
  std::vector<std::pair<McId, std::vector<std::uint32_t>>> expect;
  expect.push_back({c.mcast(0, {0, 1}), {0, 1}});
  expect.push_back({c.mcast(3, {1, 2}), {1, 2}});
  expect.push_back({c.mcast(6, {0, 1, 2}), {0, 1, 2}});
  expect.push_back({c.mcast(1, {0, 2}), {0, 2}});
  ASSERT_TRUE(c.await(expect));
  c.check_order();
}

TEST(Multicast, MemberCrashRecoveryReplaysMulticastState) {
  McCluster c({.n = 6, .seed = 6}, two_groups());
  std::vector<std::pair<McId, std::vector<std::uint32_t>>> expect;
  for (int i = 0; i < 5; ++i) {
    expect.push_back({c.mcast(0, {0, 1}), {0, 1}});
    c.sim.run_for(millis(60));
  }
  ASSERT_TRUE(c.await(expect));
  c.sim.crash(4);
  c.sim.recover(4);
  // p4's multicast state (clock, delivered set) rebuilds from AB replay.
  ASSERT_TRUE(c.await(expect));
  c.check_order();
  EXPECT_EQ(c.delivered[4].size(), 5u);
}

TEST(Multicast, CrashDuringExchangeStillDeliversEverywhere) {
  McCluster c({.n = 6, .seed = 7}, two_groups());
  const McId id = c.mcast(2, {0, 1});
  // Crash the initiator almost immediately: its group may already have the
  // PROPOSE in flight; the fill exchange must finish the job without it.
  c.sim.run_for(millis(40));
  c.sim.crash(2);
  const bool delivered_without_initiator = c.await(
      {{id, {1}}}, seconds(60));
  c.sim.recover(2);
  if (!delivered_without_initiator) {
    // The PROPOSE died with the initiator's volatile state before being
    // ordered — legal (same excuse as a crashed A-broadcast caller). Then
    // nobody ever delivers it.
    c.sim.run_for(seconds(5));
    EXPECT_TRUE(c.delivered[3].empty());
  } else {
    ASSERT_TRUE(c.await({{id, {0, 1}}}));
  }
  c.check_order();
}

TEST(Multicast, PartitionedGroupsCatchUpAfterHeal) {
  McCluster c({.n = 6, .seed = 8}, two_groups());
  // Cut every inter-group link; intra-group quorums stay intact.
  c.sim.partition({0, 1, 2});
  const McId id = c.mcast(0, {0, 1});
  c.sim.run_for(seconds(2));
  // Group 0 proposed but cannot finalize (needs group 1's proposal); group
  // 1 has never heard of the message.
  EXPECT_TRUE(c.delivered[0].empty());
  EXPECT_TRUE(c.delivered[3].empty());
  c.sim.heal_partition();
  ASSERT_TRUE(c.await({{id, {0, 1}}}));
  c.check_order();
}

TEST(Multicast, SurvivesLossyNetwork) {
  sim::SimConfig cfg{.n = 6, .seed = 9};
  cfg.net.drop_prob = 0.15;
  cfg.net.dup_prob = 0.05;
  McCluster c(cfg, two_groups());
  std::vector<std::pair<McId, std::vector<std::uint32_t>>> expect;
  for (int i = 0; i < 8; ++i) {
    expect.push_back({c.mcast(static_cast<ProcessId>(i % 6), {0, 1}),
                      {0, 1}});
    c.sim.run_for(millis(50));
  }
  ASSERT_TRUE(c.await(expect, seconds(240)));
  c.check_order();
}

TEST(Multicast, GroupClocksStayReplicated) {
  McCluster c({.n = 6, .seed = 10}, two_groups());
  std::vector<std::pair<McId, std::vector<std::uint32_t>>> expect;
  for (int i = 0; i < 6; ++i) {
    expect.push_back({c.mcast(0, {0, 1}), {0, 1}});
    c.sim.run_for(millis(40));
  }
  ASSERT_TRUE(c.await(expect));
  c.sim.run_for(seconds(1));
  // The logical clock is replicated group state: equal within each group.
  EXPECT_EQ(c.node(0)->service().clock(), c.node(1)->service().clock());
  EXPECT_EQ(c.node(1)->service().clock(), c.node(2)->service().clock());
  EXPECT_EQ(c.node(3)->service().clock(), c.node(4)->service().clock());
  EXPECT_EQ(c.node(0)->service().pending_count(), 0u);
}

TEST(Multicast, RejectsBadUsage) {
  McCluster c({.n = 6, .seed = 11}, two_groups());
  EXPECT_THROW(c.mcast(0, {}), InvariantViolation);       // no destinations
  EXPECT_THROW(c.mcast(0, {1}), InvariantViolation);      // own group absent
  EXPECT_THROW(c.mcast(0, {0, 9}), InvariantViolation);   // unknown group
}

TEST(Multicast, PropertySweepUnderChurnAndLoss) {
  // Random member churn (never the initiator, never a full group) + loss;
  // safety checked by check_order, liveness by full delivery.
  for (std::uint64_t seed = 20; seed < 24; ++seed) {
    sim::SimConfig cfg{.n = 6, .seed = seed};
    cfg.net.drop_prob = 0.08;
    McCluster c(cfg, two_groups());

    std::vector<std::pair<McId, std::vector<std::uint32_t>>> expect;
    Rng rng(seed);
    int crashes = 0;
    for (int i = 0; i < 15; ++i) {
      expect.push_back({c.mcast(0, {0, 1}), {0, 1}});
      c.sim.run_for(millis(70));
      // Crash/recover one non-initiator member per group occasionally.
      if (rng.chance(0.4)) {
        const ProcessId victim =
            static_cast<ProcessId>(rng.chance(0.5) ? 2 : 4);
        if (c.sim.host(victim).is_up()) {
          c.sim.crash(victim);
          c.sim.recover_at(c.sim.now() + millis(300), victim);
          crashes += 1;
        }
      }
    }
    c.sim.run_for(seconds(1));
    for (ProcessId p = 0; p < 6; ++p) {
      if (!c.sim.host(p).is_up()) c.sim.recover(p);
    }
    ASSERT_TRUE(c.await(expect, seconds(240)))
        << "seed " << seed << " after " << crashes << " crashes";
    c.check_order();
  }
}

// ----------------------------------------------- multicast on the rt runtime

#include <mutex>

#include "rt/rt_cluster.hpp"

TEST(Multicast, RunsOnTheRealTimeRuntime) {
  // The multicast node is Env-agnostic: the same code runs over threads
  // and the steady clock.
  rt::RtConfig cfg{.n = 6, .seed = 30};
  cfg.net.drop_prob = 0.05;
  rt::RtCluster cluster(cfg);
  const GroupTopology topology{{{0, 1, 2}, {3, 4, 5}}};

  std::mutex mu;
  std::vector<std::vector<McId>> delivered(6);
  cluster.set_node_factory([&](Env& env) {
    const ProcessId pid = env.self();
    {
      std::lock_guard<std::mutex> lock(mu);
      delivered[pid].clear();
    }
    return std::make_unique<MulticastNode>(
        env, topology, MulticastConfig{},
        [&mu, &delivered, pid](const McDelivery& d) {
          std::lock_guard<std::mutex> lock(mu);
          delivered[pid].push_back(d.id);
        });
  });
  cluster.start_all();

  std::vector<McId> ids;
  for (int i = 0; i < 6; ++i) {
    auto& host = cluster.host(static_cast<ProcessId>(i % 6));
    ASSERT_TRUE(host.call([&] {
      ids.push_back(static_cast<MulticastNode*>(host.node_unsafe())
                        ->mcast({}, {0, 1}));
    }));
  }
  ASSERT_TRUE(cluster.wait_for(
      [&] {
        std::lock_guard<std::mutex> lock(mu);
        for (ProcessId p = 0; p < 6; ++p) {
          if (delivered[p].size() < ids.size()) return false;
        }
        return true;
      },
      seconds(60)));
  // Same order at every process (all messages went to both groups).
  std::lock_guard<std::mutex> lock(mu);
  for (ProcessId p = 1; p < 6; ++p) {
    EXPECT_EQ(delivered[p], delivered[0]) << "p" << p;
  }
}

TEST(Multicast, DeterministicAcrossRuns) {
  auto run = [](std::uint64_t seed) {
    sim::SimConfig cfg{.n = 6, .seed = seed};
    cfg.net.drop_prob = 0.1;
    McCluster c(cfg, two_groups());
    std::vector<std::pair<McId, std::vector<std::uint32_t>>> expect;
    for (int i = 0; i < 8; ++i) {
      expect.push_back({c.mcast(static_cast<ProcessId>(i % 6), {0, 1}),
                        {0, 1}});
      c.sim.run_for(millis(40));
    }
    c.await(expect, seconds(120));
    return c.delivered[0];
  };
  const auto a = run(40);
  EXPECT_EQ(a, run(40));
  EXPECT_EQ(a.size(), 8u);
}
