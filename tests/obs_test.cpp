// Unit tests for the observability subsystem: MetricsRegistry semantics
// (owned instruments, bindings, group RAII, snapshot/diff, export),
// Histogram bucket boundaries, TraceRecorder ring behavior, the trace
// JSONL round-trip including escaping, and counter/trace agreement over a
// full cluster run.
#include <gtest/gtest.h>

#include <sstream>

#include "common/codec.hpp"
#include "common/logging.hpp"
#include "harness/fixture.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace abcast::obs {
namespace {

// ---- MetricsRegistry ----------------------------------------------------

TEST(MetricsRegistryTest, CounterGetOrCreateIsStable) {
  MetricsRegistry reg;
  Counter& a = reg.counter("hits", {{"node", "0"}});
  Counter& b = reg.counter("hits", {{"node", "0"}});
  Counter& other = reg.counter("hits", {{"node", "1"}});
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &other);
  a.inc();
  b.inc(2);
  EXPECT_EQ(a.value(), 3u);
  EXPECT_EQ(other.value(), 0u);
}

TEST(MetricsRegistryTest, SnapshotValueAndSumByName) {
  MetricsRegistry reg;
  reg.counter("hits", {{"node", "0"}}).inc(5);
  reg.counter("hits", {{"node", "1"}}).inc(7);
  reg.gauge("depth").set(-3);

  const Snapshot s = reg.snapshot();
  EXPECT_EQ(s.value("hits", {{"node", "0"}}), 5);
  EXPECT_EQ(s.value("hits", {{"node", "1"}}), 7);
  EXPECT_EQ(s.value("hits", {{"node", "9"}}), 0);
  EXPECT_EQ(s.sum_by_name("hits"), 12);
  EXPECT_EQ(s.value("depth"), -3);
}

TEST(MetricsRegistryTest, BoundSlotsAppearInSnapshots) {
  MetricsRegistry reg;
  RelaxedU64 slot_a, slot_b;
  MetricsGroup g = reg.group();
  g.bind("field", {{"node", "0"}}, &slot_a);
  g.bind("field", {{"node", "1"}}, &slot_b);

  slot_a = 4;
  slot_b = 6;
  EXPECT_EQ(reg.snapshot().sum_by_name("field"), 10);

  // Two slots bound under the SAME key sum at snapshot time (a recovered
  // incarnation re-binding while the metric name persists).
  RelaxedU64 slot_a2 = 100;
  g.bind("field", {{"node", "0"}}, &slot_a2);
  EXPECT_EQ(reg.snapshot().value("field", {{"node", "0"}}), 104);
}

TEST(MetricsRegistryTest, GroupResetAndDestructionUnbind) {
  MetricsRegistry reg;
  RelaxedU64 slot = 9;
  {
    MetricsGroup g = reg.group();
    g.bind("field", {}, &slot);
    EXPECT_EQ(reg.snapshot().value("field"), 9);
    g.reset();  // detaches: bindings dropped, further bind() is a no-op
    EXPECT_EQ(reg.snapshot().value("field"), 0);
    EXPECT_FALSE(g.attached());
    g.bind("field", {}, &slot);
    EXPECT_EQ(reg.snapshot().value("field"), 0);
  }
  {
    MetricsGroup g = reg.group();
    g.bind("field", {}, &slot);
    EXPECT_EQ(reg.snapshot().value("field"), 9);
  }  // destructor unbinds
  EXPECT_EQ(reg.snapshot().value("field"), 0);
}

TEST(MetricsRegistryTest, DetachedGroupBindIsNoop) {
  MetricsGroup g;
  RelaxedU64 slot = 1;
  EXPECT_FALSE(g.attached());
  g.bind("x", {}, &slot);  // must not crash
  g.reset();
}

TEST(MetricsRegistryTest, MoveTransfersBindings) {
  MetricsRegistry reg;
  RelaxedU64 slot = 2;
  MetricsGroup g = reg.group();
  g.bind("x", {}, &slot);
  MetricsGroup g2 = std::move(g);
  EXPECT_FALSE(g.attached());  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(reg.snapshot().value("x"), 2);
  g2.reset();
  EXPECT_EQ(reg.snapshot().value("x"), 0);
}

TEST(MetricsRegistryTest, DiffSubtractsCountersKeepsGauges) {
  MetricsRegistry reg;
  Counter& c = reg.counter("ops");
  Gauge& gg = reg.gauge("depth");
  c.inc(10);
  gg.set(5);
  const Snapshot before = reg.snapshot();
  c.inc(7);
  gg.set(2);
  const Snapshot delta = reg.snapshot().diff(before);
  EXPECT_EQ(delta.value("ops"), 7);
  EXPECT_EQ(delta.value("depth"), 2);  // gauge: current value, not a delta
}

TEST(MetricsRegistryTest, TextAndJsonExport) {
  MetricsRegistry reg;
  reg.counter("ops", {{"node", "0"}}).inc(3);
  reg.histogram("lat").observe(5);

  std::ostringstream text;
  reg.snapshot().write_text(text);
  EXPECT_NE(text.str().find("ops{node=\"0\"} 3"), std::string::npos);

  std::ostringstream json;
  reg.snapshot().write_json(json);
  EXPECT_NE(json.str().find("\"ops|node=0\":3"), std::string::npos);
  EXPECT_NE(json.str().find("\"lat\""), std::string::npos);
}

// ---- Histogram ----------------------------------------------------------

TEST(HistogramTest, BucketBoundaries) {
  // bucket_index(v) = bit_width(v): 0 -> 0, 1 -> 1, [2,3] -> 2, [4,7] -> 3.
  EXPECT_EQ(Histogram::bucket_index(0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1), 1u);
  EXPECT_EQ(Histogram::bucket_index(2), 2u);
  EXPECT_EQ(Histogram::bucket_index(3), 2u);
  EXPECT_EQ(Histogram::bucket_index(4), 3u);
  EXPECT_EQ(Histogram::bucket_index(7), 3u);
  EXPECT_EQ(Histogram::bucket_index(8), 4u);
  EXPECT_EQ(Histogram::bucket_index(~std::uint64_t{0}), 64u);

  EXPECT_EQ(Histogram::bucket_bound(0), 0u);
  EXPECT_EQ(Histogram::bucket_bound(1), 1u);
  EXPECT_EQ(Histogram::bucket_bound(2), 3u);
  EXPECT_EQ(Histogram::bucket_bound(3), 7u);
  EXPECT_EQ(Histogram::bucket_bound(64), ~std::uint64_t{0});

  // Every value lands in the bucket whose bound is the first >= it.
  for (const std::uint64_t v : {0ull, 1ull, 2ull, 3ull, 4ull, 255ull,
                                256ull, 1ull << 40}) {
    const auto b = Histogram::bucket_index(v);
    EXPECT_LE(v, Histogram::bucket_bound(b)) << v;
    if (b > 0) {
      EXPECT_GT(v, Histogram::bucket_bound(b - 1)) << v;
    }
  }
}

TEST(HistogramTest, ObserveAccumulates) {
  Histogram h;
  h.observe(0);
  h.observe(1);
  h.observe(3);
  h.observe(3);
  h.observe(1000);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 1007u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 2u);
  EXPECT_EQ(h.bucket_count(10), 1u);  // 1000 in (511, 1023]
}

TEST(HistogramTest, SnapshotCarriesBuckets) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("sizes");
  h.observe(3);
  h.observe(3);
  const Snapshot s = reg.snapshot();
  ASSERT_EQ(s.entries().size(), 1u);
  const SnapshotEntry& e = s.entries()[0];
  EXPECT_EQ(e.type, MetricType::kHistogram);
  EXPECT_EQ(e.count, 2u);
  EXPECT_EQ(e.sum, 6u);
  ASSERT_EQ(e.buckets.size(), 1u);
  EXPECT_EQ(e.buckets[0].first, 2u);
  EXPECT_EQ(e.buckets[0].second, 2u);
}

// ---- TraceRecorder ------------------------------------------------------

TraceEvent ev(const TraceRecorder& rec, std::size_t i) {
  return rec.events().at(i);
}

TEST(TraceRecorderTest, RecordsInOrderWithSeq) {
  TraceRecorder rec(3, 16);
  rec.record(EventKind::kBroadcast, 10, 1, MsgId{3, 1});
  rec.record(EventKind::kDeliver, 20, 1, MsgId{3, 1}, 0);
  EXPECT_EQ(rec.total_recorded(), 2u);
  EXPECT_EQ(rec.dropped(), 0u);
  EXPECT_EQ(ev(rec, 0).kind, EventKind::kBroadcast);
  EXPECT_EQ(ev(rec, 0).node, 3u);
  EXPECT_EQ(ev(rec, 0).seq, 0u);
  EXPECT_EQ(ev(rec, 1).seq, 1u);
  EXPECT_EQ(ev(rec, 1).arg, 0u);
  EXPECT_TRUE(ev(rec, 0).has_msg());
}

TEST(TraceRecorderTest, RingOverwritesOldest) {
  TraceRecorder rec(0, 4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    rec.record(EventKind::kGossipSend, static_cast<TimePoint>(i), i);
  }
  EXPECT_EQ(rec.total_recorded(), 10u);
  EXPECT_EQ(rec.dropped(), 6u);
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first: rounds 6,7,8,9 survive with their original seq stamps.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].k, 6 + i);
    EXPECT_EQ(events[i].seq, 6 + i);
  }
}

TEST(TraceRecorderTest, ClearResetsState) {
  TraceRecorder rec(0, 4);
  rec.record(EventKind::kCrash, 1);
  rec.clear();
  EXPECT_TRUE(rec.events().empty());
  EXPECT_EQ(rec.total_recorded(), 0u);
  EXPECT_EQ(rec.dropped(), 0u);
  rec.record(EventKind::kRecoverBegin, 2);  // seq restarts at 0
  EXPECT_EQ(rec.events().at(0).seq, 0u);
}

TEST(TraceRecorderTest, LogLineUsesClock) {
  TraceRecorder rec(1, 8);
  rec.set_clock([] { return TimePoint{42}; });
  rec.log_line("hello");
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, EventKind::kLogLine);
  EXPECT_EQ(events[0].t, 42);
  EXPECT_EQ(events[0].detail, "hello");
}

TEST(TraceRecorderTest, LoggerTraceRouting) {
  TraceRecorder rec(0, 8);
  route_trace_logs(&rec);
  EXPECT_TRUE(Logger::instance().enabled(LogLevel::kTrace));
  ABCAST_LOG(kTrace, "round " << 7);
  route_trace_logs(nullptr);
  ABCAST_LOG(kTrace, "after uninstall");

  const auto events = rec.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_NE(events[0].detail.find("round 7"), std::string::npos);
}

// ---- JSONL round-trip ---------------------------------------------------

TEST(TraceJsonTest, RoundTripAllFields) {
  TraceEvent e;
  e.kind = EventKind::kStateTransfer;
  e.node = 2;
  e.seq = 17;
  e.t = 123456789;
  e.k = 9;
  e.msg = MsgId{1, 44};
  e.arg = 1000;
  e.detail = "adopt_trim";

  std::stringstream ss;
  ss << event_to_json(e) << '\n';
  const auto parsed = parse_trace_jsonl(ss);
  ASSERT_EQ(parsed.size(), 1u);
  const TraceEvent& p = parsed[0];
  EXPECT_EQ(p.kind, e.kind);
  EXPECT_EQ(p.node, e.node);
  EXPECT_EQ(p.seq, e.seq);
  EXPECT_EQ(p.t, e.t);
  EXPECT_EQ(p.k, e.k);
  EXPECT_EQ(p.msg, e.msg);
  EXPECT_EQ(p.arg, e.arg);
  EXPECT_EQ(p.detail, e.detail);
}

TEST(TraceJsonTest, RoundTripEscaping) {
  TraceEvent e;
  e.kind = EventKind::kLogLine;
  e.detail = "quote\" backslash\\ newline\n tab\t ctrl\x01 end";
  std::stringstream ss;
  ss << event_to_json(e) << '\n';
  // The line must not contain a raw newline inside the JSON string.
  EXPECT_EQ(ss.str().find('\n'), ss.str().size() - 1);
  const auto parsed = parse_trace_jsonl(ss);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].detail, e.detail);
}

TEST(TraceJsonTest, OmitsEmptyOptionalFields) {
  TraceEvent e;
  e.kind = EventKind::kCrash;
  const std::string json = event_to_json(e);
  EXPECT_EQ(json.find("\"msg\""), std::string::npos);
  EXPECT_EQ(json.find("\"detail\""), std::string::npos);
}

TEST(TraceJsonTest, WriteJsonlMatchesEvents) {
  TraceRecorder rec(1, 8);
  rec.record(EventKind::kBroadcast, 5, 0, MsgId{1, 1});
  rec.record(EventKind::kDeliver, 6, 0, MsgId{1, 1}, 0);
  std::stringstream ss;
  rec.write_jsonl(ss);
  const auto parsed = parse_trace_jsonl(ss);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].kind, EventKind::kBroadcast);
  EXPECT_EQ(parsed[1].kind, EventKind::kDeliver);
  EXPECT_EQ(parsed[1].node, 1u);
}

TEST(TraceJsonTest, MalformedLineThrowsWithLineNumber) {
  std::stringstream ss("{\"node\":0,\"kind\":\"crash\"}\nnot json\n");
  try {
    parse_trace_jsonl(ss);
    FAIL() << "expected CodecError";
  } catch (const CodecError& e) {
    EXPECT_NE(std::string(e.what()).find("2"), std::string::npos);
  }
}

TEST(TraceJsonTest, UnknownKindRejected) {
  std::stringstream ss("{\"node\":0,\"kind\":\"warp_drive\"}\n");
  EXPECT_THROW(parse_trace_jsonl(ss), CodecError);
}

TEST(TraceJsonTest, KindNamesRoundTrip) {
  for (int i = 0; i <= static_cast<int>(EventKind::kLogLine); ++i) {
    const auto kind = static_cast<EventKind>(i);
    EventKind back{};
    EXPECT_TRUE(event_kind_from_string(to_string(kind), back));
    EXPECT_EQ(back, kind);
  }
  EventKind out{};
  EXPECT_FALSE(event_kind_from_string("bogus", out));
}

// ---- counter/trace agreement through a chunked catch-up -----------------

// The delivered counter and the kDeliver trace stream must agree on every
// node, including one that catches up through a chunked state-transfer
// session: tail chunks deliver through the same accounting path as normal
// drains, and a snapshot install skips the counter and the trace
// symmetrically. The lag comes from a partition, not a crash — recovery
// replay legitimately re-delivers without bumping the counter, which
// would make the comparison meaningless.
TEST(TraceMetricsAgreement, DeliveredCounterMatchesTraceThroughCatchUp) {
  harness::ClusterConfig cfg;
  cfg.sim.n = 3;
  cfg.sim.seed = 77;
  cfg.sim.trace_capacity = 1 << 16;
  cfg.stack.ab = core::Options::alternative();
  cfg.stack.ab.checkpoint_period = millis(50);
  cfg.stack.ab.delta = 2;
  cfg.stack.ab.max_state_bytes = 512;  // several chunks even for tiny state
  harness::Cluster c(cfg);
  c.start_all();

  auto warm = c.broadcast_many(0, 2);
  ASSERT_TRUE(c.await_delivery(warm));

  c.sim().partition({0, 1});  // node 2 falls far behind without crashing
  std::vector<MsgId> ids;
  for (int b = 0; b < 10; ++b) {
    ids.push_back(c.broadcast(static_cast<ProcessId>(b % 2),
                              Bytes(96, static_cast<std::uint8_t>(b))));
    ASSERT_TRUE(c.await_delivery({ids.back()}, {0, 1}, seconds(60)));
  }
  c.sim().run_for(millis(300));  // checkpoints fold the prefix away
  c.sim().heal_partition();
  ASSERT_TRUE(c.await_delivery(ids, {2}, seconds(120)));
  ASSERT_TRUE(c.await_quiesced(seconds(120)));
  ASSERT_EQ(c.trace_dropped(), 0u);

  EXPECT_GE(c.stack(2)->ab().metrics().state_chunks_applied, 1u);
  std::vector<std::uint64_t> traced(3, 0);
  for (const auto& e : c.collect_trace()) {
    if (e.kind == EventKind::kDeliver) traced[e.node] += 1;
  }
  for (ProcessId p = 0; p < 3; ++p) {
    EXPECT_EQ(c.stack(p)->ab().metrics().delivered, traced[p])
        << "node " << p;
  }
}

}  // namespace
}  // namespace abcast::obs
