// Tests for the application layer: KvStore and DeferredUpdateDb state
// machines (unit level) and their replication over the full stack
// (integration level, replica convergence under crashes).
#include <gtest/gtest.h>

#include "apps/deferred_update.hpp"
#include "apps/kv_store.hpp"
#include "apps/rsm.hpp"
#include "sim/simulation.hpp"

using namespace abcast;
using namespace abcast::apps;

// ------------------------------------------------------------- KvCommand

TEST(KvCommand, RoundTripsAllFields) {
  KvCommand c;
  c.op = KvCommand::Op::kCas;
  c.key = "k";
  c.value = "v";
  c.expect = "e";
  c.delta = -7;
  const auto back = decode_from_bytes<KvCommand>(encode_to_bytes(c));
  EXPECT_EQ(back.op, KvCommand::Op::kCas);
  EXPECT_EQ(back.key, "k");
  EXPECT_EQ(back.value, "v");
  EXPECT_EQ(back.expect, "e");
  EXPECT_EQ(back.delta, -7);
}

// --------------------------------------------------------------- KvStore

TEST(KvStore, PutGetDel) {
  KvStore kv;
  kv.apply(KvCommand::put("a", "1"));
  EXPECT_EQ(kv.get("a"), "1");
  kv.apply(KvCommand::put("a", "2"));
  EXPECT_EQ(kv.get("a"), "2");
  kv.apply(KvCommand::del("a"));
  EXPECT_FALSE(kv.get("a").has_value());
  EXPECT_EQ(kv.applied_commands(), 3u);
}

TEST(KvStore, AddTreatsMissingAsZeroAndAccumulates) {
  KvStore kv;
  kv.apply(KvCommand::add("n", 5));
  kv.apply(KvCommand::add("n", -2));
  EXPECT_EQ(kv.get_int("n"), 3);
  kv.apply(KvCommand::put("s", "not-a-number"));
  kv.apply(KvCommand::add("s", 1));
  EXPECT_EQ(kv.get_int("s"), 1);  // non-numeric coerces to 0
}

TEST(KvStore, CasAppliesOnlyOnMatch) {
  KvStore kv;
  kv.apply(KvCommand::put("k", "old"));
  kv.apply(KvCommand::cas("k", "wrong", "x"));
  EXPECT_EQ(kv.get("k"), "old");
  EXPECT_EQ(kv.failed_cas(), 1u);
  kv.apply(KvCommand::cas("k", "old", "new"));
  EXPECT_EQ(kv.get("k"), "new");
  kv.apply(KvCommand::cas("missing", "", "v"));  // absent key: fails
  EXPECT_EQ(kv.failed_cas(), 2u);
}

TEST(KvStore, MalformedCommandIsRejectedDeterministically) {
  KvStore kv;
  kv.apply(Bytes{1, 2, 3});  // garbage
  EXPECT_EQ(kv.rejected_commands(), 1u);
  EXPECT_EQ(kv.applied_commands(), 0u);
  EXPECT_EQ(kv.size(), 0u);
}

TEST(KvStore, SnapshotRestoreRoundTrip) {
  KvStore kv;
  kv.apply(KvCommand::put("a", "1"));
  kv.apply(KvCommand::put("b", "2"));
  kv.apply(KvCommand::cas("a", "zzz", "nope"));
  const Bytes snap = kv.snapshot();

  KvStore kv2;
  kv2.restore(snap);
  EXPECT_EQ(kv2.get("a"), "1");
  EXPECT_EQ(kv2.get("b"), "2");
  EXPECT_EQ(kv2.digest(), kv.digest());
  EXPECT_EQ(kv2.failed_cas(), 1u);

  kv2.restore({});  // empty snapshot = initial state
  EXPECT_EQ(kv2.size(), 0u);
  EXPECT_EQ(kv2.applied_commands(), 0u);
}

TEST(KvStore, DigestIsContentSensitive) {
  KvStore a, b;
  a.apply(KvCommand::put("x", "1"));
  b.apply(KvCommand::put("x", "2"));
  EXPECT_NE(a.digest(), b.digest());
  b.apply(KvCommand::put("x", "1"));
  EXPECT_EQ(a.digest(), b.digest());
}

// -------------------------------------------------------- DeferredUpdateDb

TEST(DeferredUpdate, CommitAppliesWritesAndBumpsVersions) {
  DeferredUpdateDb db;
  auto txn = db.begin();
  EXPECT_FALSE(txn.get("acct").has_value());
  txn.put("acct", "100");
  db.apply(txn.commit_request());
  EXPECT_EQ(db.committed(), 1u);
  EXPECT_EQ(db.read_committed("acct"), "100");
  EXPECT_EQ(db.version_of("acct"), 1u);
}

TEST(DeferredUpdate, ConflictingTransactionAborts) {
  DeferredUpdateDb db;
  auto t0 = db.begin();
  t0.put("acct", "100");
  db.apply(t0.commit_request());

  // Two concurrent read-modify-write transactions on the same record.
  auto t1 = db.begin();
  auto t2 = db.begin();
  const auto v1 = *t1.get("acct");
  const auto v2 = *t2.get("acct");
  t1.put("acct", std::to_string(std::stoi(v1) - 30));
  t2.put("acct", std::to_string(std::stoi(v2) - 50));

  db.apply(t1.commit_request());  // certified first: commits
  db.apply(t2.commit_request());  // stale read version: aborts
  EXPECT_EQ(db.committed(), 2u);
  EXPECT_EQ(db.aborted(), 1u);
  EXPECT_EQ(db.read_committed("acct"), "70");
}

TEST(DeferredUpdate, NonConflictingTransactionsBothCommit) {
  DeferredUpdateDb db;
  auto t1 = db.begin();
  auto t2 = db.begin();
  t1.get("a");
  t1.put("a", "1");
  t2.get("b");
  t2.put("b", "2");
  db.apply(t1.commit_request());
  db.apply(t2.commit_request());
  EXPECT_EQ(db.committed(), 2u);
  EXPECT_EQ(db.aborted(), 0u);
}

TEST(DeferredUpdate, ReadYourOwnWrites) {
  DeferredUpdateDb db;
  auto txn = db.begin();
  txn.put("k", "buffered");
  EXPECT_EQ(txn.get("k"), "buffered");  // sees its own write, no version dep
  db.apply(txn.commit_request());
  EXPECT_EQ(db.committed(), 1u);
}

TEST(DeferredUpdate, ReadOfAbsentKeyGuardsAgainstCreation) {
  DeferredUpdateDb db;
  auto t1 = db.begin();
  t1.get("new");  // records version 0 = "expect absent"
  t1.put("new", "mine");
  auto t2 = db.begin();
  t2.get("new");
  t2.put("new", "theirs");
  db.apply(t1.commit_request());
  db.apply(t2.commit_request());
  EXPECT_EQ(db.committed(), 1u);
  EXPECT_EQ(db.aborted(), 1u);
  EXPECT_EQ(db.read_committed("new"), "mine");
}

TEST(DeferredUpdate, BlindWritesNeverAbort) {
  DeferredUpdateDb db;
  for (int i = 0; i < 5; ++i) {
    auto txn = db.begin();
    txn.put("k", std::to_string(i));  // no reads: nothing to invalidate
    db.apply(txn.commit_request());
  }
  EXPECT_EQ(db.committed(), 5u);
  EXPECT_EQ(db.read_committed("k"), "4");
  EXPECT_EQ(db.version_of("k"), 5u);
}

TEST(DeferredUpdate, SnapshotRestorePreservesVersions) {
  DeferredUpdateDb db;
  auto t = db.begin();
  t.put("k", "v");
  db.apply(t.commit_request());
  DeferredUpdateDb db2;
  db2.restore(db.snapshot());
  EXPECT_EQ(db2.version_of("k"), 1u);
  EXPECT_EQ(db2.digest(), db.digest());
  // A transaction started on the restored replica certifies identically.
  auto t2 = db2.begin();
  t2.get("k");
  t2.put("k", "w");
  db2.apply(t2.commit_request());
  EXPECT_EQ(db2.committed(), 2u);
}

TEST(DeferredUpdate, MalformedRequestRejected) {
  DeferredUpdateDb db;
  db.apply(Bytes{0xde, 0xad});
  EXPECT_EQ(db.rejected(), 1u);
}

// ----------------------------------------------------- replicated KV (sim)

namespace {

struct KvCluster {
  explicit KvCluster(sim::SimConfig cfg, core::StackConfig stack = {})
      : sim(cfg) {
    sim.set_node_factory([stack](Env& env) {
      return std::make_unique<RsmNode>(
          env, stack, [] { return std::make_unique<KvStore>(); });
    });
    sim.start_all();
  }

  RsmNode* node(ProcessId p) { return static_cast<RsmNode*>(sim.node(p)); }
  KvStore& kv(ProcessId p) {
    return static_cast<KvStore&>(node(p)->rsm().machine());
  }

  bool converged(std::uint64_t expect_applied) {
    for (ProcessId p = 0; p < sim.n(); ++p) {
      if (!sim.host(p).is_up()) return false;
      if (kv(p).applied_commands() + kv(p).rejected_commands() +
              kv(p).failed_cas() <
          expect_applied)
        return false;
    }
    // applied counts can overshoot the check above; digest seals equality
    const auto d0 = kv(0).digest();
    for (ProcessId p = 1; p < sim.n(); ++p) {
      if (kv(p).digest() != d0) return false;
    }
    return true;
  }

  sim::Simulation sim;
};

}  // namespace

TEST(ReplicatedKv, AllReplicasConvergeToSameContents) {
  KvCluster c({.n = 3, .seed = 41});
  for (int i = 0; i < 20; ++i) {
    c.node(static_cast<ProcessId>(i % 3))
        ->submit(KvCommand::put("key" + std::to_string(i % 5),
                                "v" + std::to_string(i)));
  }
  ASSERT_TRUE(c.sim.run_until_pred([&] { return c.converged(20); },
                                   seconds(60)));
  EXPECT_EQ(c.kv(0).applied_commands(), 20u);
}

TEST(ReplicatedKv, CountersAreExactDespiteInterleaving) {
  KvCluster c({.n = 3, .seed = 42});
  for (int i = 0; i < 30; ++i) {
    c.node(static_cast<ProcessId>(i % 3))->submit(KvCommand::add("n", 1));
    if (i % 7 == 0) c.sim.run_for(millis(10));
  }
  ASSERT_TRUE(c.sim.run_until_pred(
      [&] {
        for (ProcessId p = 0; p < 3; ++p) {
          if (c.kv(p).get_int("n") != 30) return false;
        }
        return true;
      },
      seconds(60)));
}

TEST(ReplicatedKv, ReplicaRebuildsStateAfterCrash) {
  KvCluster c({.n = 3, .seed = 43});
  for (int i = 0; i < 10; ++i) {
    c.node(0)->submit(KvCommand::add("n", 1));
  }
  ASSERT_TRUE(c.sim.run_until_pred(
      [&] { return c.kv(2).get_int("n") == 10; }, seconds(60)));
  c.sim.crash(2);
  c.sim.recover(2);
  // Replay rebuilt the KV from the decision log.
  ASSERT_TRUE(c.sim.run_until_pred(
      [&] { return c.kv(2).get_int("n") == 10; }, seconds(60)));
  EXPECT_EQ(c.kv(2).digest(), c.kv(0).digest());
}

TEST(ReplicatedKv, AppCheckpointingRestoresViaSnapshot) {
  core::StackConfig stack;
  stack.ab.checkpointing = true;
  stack.ab.app_checkpointing = true;
  stack.ab.checkpoint_period = millis(200);
  KvCluster c({.n = 3, .seed = 44}, stack);
  for (int i = 0; i < 10; ++i) {
    c.node(0)->submit(KvCommand::add("n", 1));
    c.sim.run_for(millis(80));
  }
  ASSERT_TRUE(c.sim.run_until_pred(
      [&] { return c.kv(2).get_int("n") == 10; }, seconds(60)));
  c.sim.run_for(millis(400));  // ensure a checkpoint covers everything
  c.sim.crash(2);
  c.sim.recover(2);
  EXPECT_EQ(c.kv(2).get_int("n"), 10);  // instantly: restored from snapshot
  EXPECT_EQ(c.kv(2).digest(), c.kv(0).digest());
}

// --------------------------------------------- replicated deferred-update DB

namespace {

struct DbCluster {
  explicit DbCluster(sim::SimConfig cfg) : sim(cfg) {
    sim.set_node_factory([](Env& env) {
      return std::make_unique<RsmNode>(
          env, core::StackConfig{},
          [] { return std::make_unique<DeferredUpdateDb>(); });
    });
    sim.start_all();
  }
  RsmNode* node(ProcessId p) { return static_cast<RsmNode*>(sim.node(p)); }
  DeferredUpdateDb& db(ProcessId p) {
    return static_cast<DeferredUpdateDb&>(node(p)->rsm().machine());
  }
  sim::Simulation sim;
};

}  // namespace

TEST(ReplicatedDb, ConcurrentConflictingTxnsExactlyOneCommits) {
  DbCluster c({.n = 3, .seed = 45});
  // Seed the account.
  auto init = c.db(0).begin();
  init.put("acct", "100");
  c.node(0)->submit(init.commit_request());
  ASSERT_TRUE(c.sim.run_until_pred(
      [&] { return c.db(2).committed() == 1; }, seconds(60)));

  // Two replicas run conflicting withdrawals concurrently.
  auto t1 = c.db(1).begin();
  auto t2 = c.db(2).begin();
  t1.get("acct");
  t2.get("acct");
  t1.put("acct", "60");
  t2.put("acct", "10");
  c.node(1)->submit(t1.commit_request());
  c.node(2)->submit(t2.commit_request());

  ASSERT_TRUE(c.sim.run_until_pred(
      [&] { return c.db(0).committed() + c.db(0).aborted() == 3; },
      seconds(60)));
  EXPECT_EQ(c.db(0).committed(), 2u);  // init + one of the withdrawals
  EXPECT_EQ(c.db(0).aborted(), 1u);
  // All replicas agree on the surviving value.
  ASSERT_TRUE(c.sim.run_until_pred(
      [&] {
        return c.db(1).digest() == c.db(0).digest() &&
               c.db(2).digest() == c.db(0).digest();
      },
      seconds(60)));
  const auto v = c.db(0).read_committed("acct");
  EXPECT_TRUE(v == "60" || v == "10");
}

TEST(ReplicatedDb, ThroughputWorkloadStaysConsistent) {
  DbCluster c({.n = 3, .seed = 46});
  // 30 transactions over 10 keys submitted from all replicas; some
  // conflict, some do not. Every replica must reach identical state.
  for (int i = 0; i < 30; ++i) {
    const ProcessId p = static_cast<ProcessId>(i % 3);
    auto txn = c.db(p).begin();
    const std::string key = "k" + std::to_string(i % 10);
    txn.get(key);
    txn.put(key, "v" + std::to_string(i));
    c.node(p)->submit(txn.commit_request());
    if (i % 5 == 4) c.sim.run_for(millis(30));
  }
  ASSERT_TRUE(c.sim.run_until_pred(
      [&] {
        for (ProcessId p = 0; p < 3; ++p) {
          if (c.db(p).committed() + c.db(p).aborted() +
                  c.db(p).rejected() < 30) {
            return false;
          }
        }
        return c.db(0).digest() == c.db(1).digest() &&
               c.db(1).digest() == c.db(2).digest();
      },
      seconds(120)));
  EXPECT_GT(c.db(0).committed(), 0u);
}
