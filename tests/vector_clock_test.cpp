// VectorClock unit tests: covers/observe, merge, dominance, and the codec
// round-trip (the clock travels inside checkpoints, §5.2).
#include <gtest/gtest.h>

#include "common/codec.hpp"
#include "core/vector_clock.hpp"

namespace abcast::core {
namespace {

VectorClock make(std::initializer_list<std::uint64_t> seqs) {
  VectorClock vc(static_cast<std::uint32_t>(seqs.size()));
  ProcessId p = 0;
  for (const auto s : seqs) {
    if (s != 0) vc.observe(MsgId{p, s});
    ++p;
  }
  return vc;
}

TEST(VectorClockTest, CoversAndObserve) {
  VectorClock vc(3);
  EXPECT_FALSE(vc.covers(MsgId{1, 1}));
  vc.observe(MsgId{1, 1});
  vc.observe(MsgId{1, 2});
  EXPECT_TRUE(vc.covers(MsgId{1, 1}));
  EXPECT_TRUE(vc.covers(MsgId{1, 2}));
  EXPECT_FALSE(vc.covers(MsgId{1, 3}));
  EXPECT_FALSE(vc.covers(MsgId{0, 1}));
  EXPECT_EQ(vc.last_of(1), 2u);
  EXPECT_EQ(vc.last_of(0), 0u);
}

TEST(VectorClockTest, ObserveMustAdvance) {
  VectorClock vc(2);
  vc.observe(MsgId{0, 2});
  EXPECT_THROW(vc.observe(MsgId{0, 2}), InvariantViolation);
  EXPECT_THROW(vc.observe(MsgId{0, 1}), InvariantViolation);
}

TEST(VectorClockTest, MergeIsPointwiseMax) {
  VectorClock a = make({3, 0, 7});
  const VectorClock b = make({1, 5, 7});
  a.merge(b);
  EXPECT_EQ(a, make({3, 5, 7}));
  // Merge is idempotent and absorbs the argument.
  a.merge(b);
  EXPECT_EQ(a, make({3, 5, 7}));
  EXPECT_TRUE(a.dominates(b));
}

TEST(VectorClockTest, MergeWithSelfIsIdentity) {
  VectorClock a = make({2, 4});
  a.merge(a);
  EXPECT_EQ(a, make({2, 4}));
}

TEST(VectorClockTest, Dominance) {
  const VectorClock lo = make({1, 2, 3});
  const VectorClock hi = make({2, 2, 4});
  const VectorClock conc = make({9, 0, 0});

  EXPECT_TRUE(hi.dominates(lo));
  EXPECT_FALSE(lo.dominates(hi));

  // Equal clocks dominate each other.
  EXPECT_TRUE(lo.dominates(make({1, 2, 3})));
  EXPECT_TRUE(make({1, 2, 3}).dominates(lo));

  // Concurrent clocks: neither dominates.
  EXPECT_FALSE(conc.dominates(lo));
  EXPECT_FALSE(lo.dominates(conc));

  // The zero clock is dominated by everything.
  EXPECT_TRUE(lo.dominates(VectorClock(3)));
}

TEST(VectorClockTest, WidthMismatchIsAnError) {
  VectorClock a(2);
  const VectorClock b(3);
  EXPECT_THROW(a.merge(b), InvariantViolation);
  EXPECT_THROW((void)a.dominates(b), InvariantViolation);
}

TEST(VectorClockTest, CodecRoundTrip) {
  const VectorClock vc = make({0, 7, 123456789, 1});
  BufWriter w;
  vc.encode(w);
  BufReader r(w.data());
  const VectorClock back = VectorClock::decode(r);
  EXPECT_EQ(back, vc);
  EXPECT_EQ(back.size(), 4u);
  EXPECT_EQ(back.last_of(2), 123456789u);

  // Empty clock round-trips too.
  BufWriter w2;
  VectorClock(0).encode(w2);
  BufReader r2(w2.data());
  EXPECT_EQ(VectorClock::decode(r2), VectorClock(0));
}

}  // namespace
}  // namespace abcast::core
