// VectorClock unit tests: covers/observe, merge, dominance, and the codec
// round-trip (the clock travels inside checkpoints, §5.2).
#include <gtest/gtest.h>

#include "common/codec.hpp"
#include "core/vector_clock.hpp"

namespace abcast::core {
namespace {

VectorClock make(std::initializer_list<std::uint64_t> seqs) {
  VectorClock vc(static_cast<std::uint32_t>(seqs.size()));
  ProcessId p = 0;
  for (const auto s : seqs) {
    if (s != 0) vc.observe(MsgId{p, s});
    ++p;
  }
  return vc;
}

TEST(VectorClockTest, CoversAndObserve) {
  VectorClock vc(3);
  EXPECT_FALSE(vc.covers(MsgId{1, 1}));
  vc.observe(MsgId{1, 1});
  vc.observe(MsgId{1, 2});
  EXPECT_TRUE(vc.covers(MsgId{1, 1}));
  EXPECT_TRUE(vc.covers(MsgId{1, 2}));
  EXPECT_FALSE(vc.covers(MsgId{1, 3}));
  EXPECT_FALSE(vc.covers(MsgId{0, 1}));
  EXPECT_EQ(vc.last_of(1), 2u);
  EXPECT_EQ(vc.last_of(0), 0u);
}

TEST(VectorClockTest, ObserveMustAdvance) {
  VectorClock vc(2);
  vc.observe(MsgId{0, 2});
  EXPECT_THROW(vc.observe(MsgId{0, 2}), InvariantViolation);
  EXPECT_THROW(vc.observe(MsgId{0, 1}), InvariantViolation);
}

TEST(VectorClockTest, MergeIsPointwiseMax) {
  VectorClock a = make({3, 0, 7});
  const VectorClock b = make({1, 5, 7});
  a.merge(b);
  EXPECT_EQ(a, make({3, 5, 7}));
  // Merge is idempotent and absorbs the argument.
  a.merge(b);
  EXPECT_EQ(a, make({3, 5, 7}));
  EXPECT_TRUE(a.dominates(b));
}

TEST(VectorClockTest, MergeWithSelfIsIdentity) {
  VectorClock a = make({2, 4});
  a.merge(a);
  EXPECT_EQ(a, make({2, 4}));
}

TEST(VectorClockTest, Dominance) {
  const VectorClock lo = make({1, 2, 3});
  const VectorClock hi = make({2, 2, 4});
  const VectorClock conc = make({9, 0, 0});

  EXPECT_TRUE(hi.dominates(lo));
  EXPECT_FALSE(lo.dominates(hi));

  // Equal clocks dominate each other.
  EXPECT_TRUE(lo.dominates(make({1, 2, 3})));
  EXPECT_TRUE(make({1, 2, 3}).dominates(lo));

  // Concurrent clocks: neither dominates.
  EXPECT_FALSE(conc.dominates(lo));
  EXPECT_FALSE(lo.dominates(conc));

  // The zero clock is dominated by everything.
  EXPECT_TRUE(lo.dominates(VectorClock(3)));
}

// Supersession is per-incarnation: a later incarnation's messages never
// cover an earlier incarnation's — the property that keeps a recovered
// sender's durably logged broadcasts deliverable after its new-incarnation
// root was ordered first (see vector_clock.hpp header).
TEST(VectorClockTest, LaterIncarnationDoesNotCoverEarlierOne) {
  VectorClock vc(2);
  vc.observe(MsgId{0, make_seq(2, 1)});
  EXPECT_TRUE(vc.covers(MsgId{0, make_seq(2, 1)}));
  EXPECT_FALSE(vc.covers(MsgId{0, make_seq(1, 4)}));
  EXPECT_FALSE(vc.covers(MsgId{0, make_seq(1, 1)}));
  EXPECT_EQ(vc.last_of(0), make_seq(2, 1));

  // The earlier incarnation can still be observed AFTER the later one —
  // this is exactly the recovered-suffix delivery order.
  vc.observe(MsgId{0, make_seq(1, 4)});
  EXPECT_TRUE(vc.covers(MsgId{0, make_seq(1, 4)}));
  EXPECT_TRUE(vc.covers(MsgId{0, make_seq(1, 3)}));  // same-incarnation prefix
  EXPECT_FALSE(vc.covers(MsgId{0, make_seq(1, 5)}));
  vc.observe(MsgId{0, make_seq(1, 5)});
  EXPECT_TRUE(vc.covers(MsgId{0, make_seq(1, 5)}));
  // The frontier stays the newest incarnation's top.
  EXPECT_EQ(vc.last_of(0), make_seq(2, 1));
  // Within an incarnation the monotonicity contract still holds.
  EXPECT_THROW(vc.observe(MsgId{0, make_seq(1, 5)}), InvariantViolation);
  EXPECT_THROW(vc.observe(MsgId{0, make_seq(2, 1)}), InvariantViolation);
}

TEST(VectorClockTest, MergeAndDominanceArePerIncarnation) {
  VectorClock a(1);
  a.observe(MsgId{0, make_seq(1, 5)});
  VectorClock b(1);
  b.observe(MsgId{0, make_seq(2, 1)});
  // Concurrent: each covers an incarnation the other lacks.
  EXPECT_FALSE(a.dominates(b));
  EXPECT_FALSE(b.dominates(a));

  VectorClock m = a;
  m.merge(b);
  EXPECT_TRUE(m.covers(MsgId{0, make_seq(1, 5)}));
  EXPECT_TRUE(m.covers(MsgId{0, make_seq(2, 1)}));
  EXPECT_TRUE(m.dominates(a));
  EXPECT_TRUE(m.dominates(b));
  // Merge takes the per-incarnation maximum, not the overall maximum.
  VectorClock c(1);
  c.observe(MsgId{0, make_seq(1, 7)});
  m.merge(c);
  EXPECT_TRUE(m.covers(MsgId{0, make_seq(1, 7)}));
  EXPECT_EQ(m.last_of(0), make_seq(2, 1));
}

TEST(VectorClockTest, MultiIncarnationCodecRoundTrip) {
  VectorClock vc(3);
  vc.observe(MsgId{0, make_seq(1, 9)});
  vc.observe(MsgId{0, make_seq(3, 2)});
  vc.observe(MsgId{2, make_seq(2, 1)});
  BufWriter w;
  vc.encode(w);
  BufReader r(w.data());
  const VectorClock back = VectorClock::decode(r);
  EXPECT_EQ(back, vc);
  EXPECT_TRUE(back.covers(MsgId{0, make_seq(1, 9)}));
  EXPECT_FALSE(back.covers(MsgId{0, make_seq(2, 1)}));
  EXPECT_TRUE(back.covers(MsgId{0, make_seq(3, 2)}));
}

TEST(VectorClockTest, WidthMismatchIsAnError) {
  VectorClock a(2);
  const VectorClock b(3);
  EXPECT_THROW(a.merge(b), InvariantViolation);
  EXPECT_THROW((void)a.dominates(b), InvariantViolation);
}

TEST(VectorClockTest, CodecRoundTrip) {
  const VectorClock vc = make({0, 7, 123456789, 1});
  BufWriter w;
  vc.encode(w);
  BufReader r(w.data());
  const VectorClock back = VectorClock::decode(r);
  EXPECT_EQ(back, vc);
  EXPECT_EQ(back.size(), 4u);
  EXPECT_EQ(back.last_of(2), 123456789u);

  // Empty clock round-trips too.
  BufWriter w2;
  VectorClock(0).encode(w2);
  BufReader r2(w2.data());
  EXPECT_EQ(VectorClock::decode(r2), VectorClock(0));
}

}  // namespace
}  // namespace abcast::core
