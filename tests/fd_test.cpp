// Tests for the epoch failure detector: completeness (crashed processes get
// suspected), eventual accuracy (timeouts adapt), epochs, leader hint.
#include <gtest/gtest.h>

#include "fd/failure_detector.hpp"
#include "sim/simulation.hpp"

using namespace abcast;
using namespace abcast::sim;

namespace {

class FdNode final : public NodeApp {
 public:
  explicit FdNode(Env& env) : fd_(env, FdConfig{}) {}

  void start(bool recovering) override { fd_.start(recovering); }
  void on_message(ProcessId from, const Wire& msg) override {
    if (fd_.handles(msg.type)) fd_.on_message(from, msg);
  }

  EpochFailureDetector& fd() { return fd_; }

 private:
  EpochFailureDetector fd_;
};

struct FdCluster {
  explicit FdCluster(SimConfig cfg) : sim(cfg) {
    sim.set_node_factory(
        [](Env& env) { return std::make_unique<FdNode>(env); });
    sim.start_all();
  }
  EpochFailureDetector& fd(ProcessId p) {
    return static_cast<FdNode*>(sim.node(p))->fd();
  }
  Simulation sim;
};

}  // namespace

TEST(Fd, EventuallyTrustsAllLiveProcesses) {
  FdCluster c({.n = 4, .seed = 1});
  c.sim.run_for(seconds(2));
  for (ProcessId p = 0; p < 4; ++p) {
    EXPECT_EQ(c.fd(p).trusted_set().size(), 4u) << "at p" << p;
  }
}

TEST(Fd, SuspectsACrashedProcess) {
  FdCluster c({.n = 3, .seed = 1});
  c.sim.run_for(seconds(1));
  c.sim.crash(2);
  c.sim.run_for(seconds(2));
  EXPECT_FALSE(c.fd(0).trusted(2));
  EXPECT_FALSE(c.fd(1).trusted(2));
}

TEST(Fd, TrustsAgainAfterRecovery) {
  FdCluster c({.n = 3, .seed = 1});
  c.sim.run_for(seconds(1));
  c.sim.crash(2);
  c.sim.run_for(seconds(2));
  c.sim.recover(2);
  c.sim.run_for(seconds(2));
  EXPECT_TRUE(c.fd(0).trusted(2));
  EXPECT_TRUE(c.fd(1).trusted(2));
}

TEST(Fd, AlwaysTrustsSelf) {
  FdCluster c({.n = 2, .seed = 1});
  EXPECT_TRUE(c.fd(0).trusted(0));
  c.sim.run_for(seconds(1));
  EXPECT_TRUE(c.fd(1).trusted(1));
}

TEST(Fd, EpochIncrementsOnEveryRecovery) {
  FdCluster c({.n = 2, .seed = 1});
  EXPECT_EQ(c.fd(0).epoch(), 1u);
  c.sim.crash(0);
  c.sim.recover(0);
  EXPECT_EQ(c.fd(0).epoch(), 2u);
  c.sim.crash(0);
  c.sim.recover(0);
  EXPECT_EQ(c.fd(0).epoch(), 3u);
}

TEST(Fd, PeersObserveEpochBump) {
  FdCluster c({.n = 2, .seed = 1});
  c.sim.run_for(seconds(1));
  EXPECT_EQ(c.fd(1).epoch_of(0), 1u);
  c.sim.crash(0);
  c.sim.recover(0);
  c.sim.run_for(seconds(1));
  EXPECT_EQ(c.fd(1).epoch_of(0), 2u);
}

TEST(Fd, LeaderIsSmallestTrustedId) {
  FdCluster c({.n = 3, .seed = 1});
  c.sim.run_for(seconds(1));
  EXPECT_EQ(c.fd(1).leader(), 0u);
  EXPECT_EQ(c.fd(2).leader(), 0u);
  c.sim.crash(0);
  c.sim.run_for(seconds(2));
  EXPECT_EQ(c.fd(1).leader(), 1u);
  EXPECT_EQ(c.fd(2).leader(), 1u);
  c.sim.recover(0);
  c.sim.run_for(seconds(2));
  EXPECT_EQ(c.fd(1).leader(), 0u);
}

TEST(Fd, WrongSuspicionGrowsTimeout) {
  // A transient outage (partition, not crash) makes p0 suspect p1 while p1
  // is actually alive in the same epoch; when heartbeats resume, the
  // detector must register the wrong suspicion and grow its timeout.
  FdCluster c({.n = 2, .seed = 2});
  c.sim.run_for(seconds(1));
  EXPECT_TRUE(c.fd(0).trusted(1));

  c.sim.block_link(1, 0);
  c.sim.run_for(millis(500));  // well past the 100ms initial timeout
  EXPECT_FALSE(c.fd(0).trusted(1));

  c.sim.unblock_link(1, 0);
  c.sim.run_for(millis(500));
  EXPECT_TRUE(c.fd(0).trusted(1));
  EXPECT_EQ(c.fd(0).wrong_suspicions(), 1u);

  // Second episode shorter than the grown timeout (100+50 = 150ms): the
  // adapted detector no longer flaps.
  c.sim.block_link(1, 0);
  c.sim.run_for(millis(120));
  EXPECT_TRUE(c.fd(0).trusted(1));
  c.sim.unblock_link(1, 0);
  c.sim.run_for(millis(500));
  EXPECT_EQ(c.fd(0).wrong_suspicions(), 1u);
}

TEST(Fd, OneLogOperationPerIncarnation) {
  FdCluster c({.n = 1, .seed = 1});
  auto* mem = dynamic_cast<MemStableStorage*>(&c.sim.host(0).raw_storage());
  ASSERT_NE(mem, nullptr);
  EXPECT_EQ(mem->scope_stats("fd").put_ops, 1u);
  c.sim.run_for(seconds(5));
  EXPECT_EQ(mem->scope_stats("fd").put_ops, 1u);  // heartbeats don't log
  c.sim.crash(0);
  c.sim.recover(0);
  EXPECT_EQ(mem->scope_stats("fd").put_ops, 2u);
}

// ------------------------------------------------ suspect-list detector

#include "fd/suspect_list_detector.hpp"

namespace {

class SuspectNode final : public NodeApp {
 public:
  explicit SuspectNode(Env& env) : fd_(env, FdConfig{}) {}
  void start(bool recovering) override { fd_.start(recovering); }
  void on_message(ProcessId from, const Wire& msg) override {
    if (fd_.handles(msg.type)) fd_.on_message(from, msg);
  }
  SuspectListDetector& fd() { return fd_; }

 private:
  SuspectListDetector fd_;
};

struct SuspectCluster {
  explicit SuspectCluster(SimConfig cfg) : sim(cfg) {
    sim.set_node_factory(
        [](Env& env) { return std::make_unique<SuspectNode>(env); });
    sim.start_all();
  }
  SuspectListDetector& fd(ProcessId p) {
    return static_cast<SuspectNode*>(sim.node(p))->fd();
  }
  Simulation sim;
};

}  // namespace

TEST(SuspectFd, SuspectsCrashedAndRetrustsRecovered) {
  SuspectCluster c({.n = 3, .seed = 11});
  c.sim.run_for(seconds(1));
  EXPECT_TRUE(c.fd(0).suspects().empty());
  c.sim.crash(2);
  c.sim.run_for(seconds(2));
  EXPECT_EQ(c.fd(0).suspects(), std::vector<ProcessId>{2});
  c.sim.recover(2);
  c.sim.run_for(seconds(2));
  EXPECT_TRUE(c.fd(0).suspects().empty());
}

TEST(SuspectFd, BoundedOutputCountsEveryFlapAsWrong) {
  // Without epochs the detector cannot tell recovery from wrong suspicion:
  // a crash+recovery cycle inflates the wrong-suspicion count and grows
  // the timeout — the §3.5 trade-off made observable.
  SuspectCluster c({.n = 2, .seed = 12});
  c.sim.run_for(seconds(1));
  c.sim.crash(1);
  c.sim.run_for(seconds(1));
  c.sim.recover(1);
  c.sim.run_for(seconds(1));
  EXPECT_GE(c.fd(0).wrong_suspicions(), 1u);
}

TEST(SuspectFd, PerformsZeroLogOperations) {
  SuspectCluster c({.n = 2, .seed = 13});
  c.sim.run_for(seconds(2));
  c.sim.crash(1);
  c.sim.recover(1);
  c.sim.run_for(seconds(1));
  auto* mem = dynamic_cast<MemStableStorage*>(&c.sim.host(1).raw_storage());
  ASSERT_NE(mem, nullptr);
  EXPECT_EQ(mem->scope_stats("fd").put_ops, 0u);
}

TEST(SuspectFd, LeaderIsSmallestNonSuspected) {
  SuspectCluster c({.n = 3, .seed = 14});
  c.sim.run_for(seconds(1));
  EXPECT_EQ(c.fd(2).leader(), 0u);
  c.sim.crash(0);
  c.sim.run_for(seconds(2));
  EXPECT_EQ(c.fd(2).leader(), 1u);
}

TEST(SuspectFd, FactoryBuildsBothKinds) {
  SuspectCluster c({.n = 1, .seed = 15});
  // Compile/link-level check of the factory with both kinds.
  struct Holder final : NodeApp {
    explicit Holder(Env& env)
        : a(make_failure_detector(FdKind::kEpoch, env, FdConfig{})),
          b(make_failure_detector(FdKind::kSuspectList, env, FdConfig{})) {}
    void start(bool) override {}
    void on_message(ProcessId, const Wire&) override {}
    std::unique_ptr<FailureDetector> a, b;
  };
  sim::Simulation sim({.n = 1, .seed = 15});
  sim.set_node_factory([](Env& env) { return std::make_unique<Holder>(env); });
  sim.start_all();
  auto* h = static_cast<Holder*>(sim.node(0));
  EXPECT_NE(h->a, nullptr);
  EXPECT_NE(h->b, nullptr);
  EXPECT_STREQ(to_string(FdKind::kEpoch), "epoch");
  EXPECT_STREQ(to_string(FdKind::kSuspectList), "suspect-list");
}
